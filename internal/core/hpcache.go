package core

import (
	"sync"

	"toprr/internal/geom"
	"toprr/internal/topk"
)

// HyperplaneCache interns the splitting hyperplanes wHP(p_i, p_j) of
// one dataset generation across queries. The hyperplane depends only on
// the option pair — not on the query region or k — so an engine serving
// many queries over the same dataset recomputes each pair at most once.
//
// The cache is generation-aware: lookups and stores name the scorer the
// solve is pinned to and take effect only while that scorer is the
// cache's current generation, so a solve pinned to an old generation can
// neither read nor write stale geometry once Advance moved the cache
// forward. Advance invalidates *incrementally*: only pairs touching a
// dirty slot are dropped, every other hyperplane is carried into the new
// generation. Safe for concurrent use.
type HyperplaneCache struct {
	mu        sync.RWMutex
	scorer    *topk.Scorer
	m         map[int64]hpEntry
	evictions int // entries dropped by Advance or refused at the cap
}

type hpEntry struct {
	hs geom.Halfspace
	ok bool // false: score functions (numerically) parallel, no cut
}

// hyperplaneCacheLimit bounds interned pairs so a long-lived engine's
// memory does not grow with query diversity (up to O(|D'|^2) pairs
// exist); beyond the limit, hyperplanes are recomputed on demand.
const hyperplaneCacheLimit = 1 << 20

// NewHyperplaneCache builds an empty cache bound to one dataset
// generation's scorer.
func NewHyperplaneCache(scorer *topk.Scorer) *HyperplaneCache {
	return &HyperplaneCache{scorer: scorer, m: make(map[int64]hpEntry)}
}

// pairKey packs an ordered option pair (the hyperplane's halfspace
// orientation depends on the order).
func pairKey(i, j int) int64 { return int64(i)<<32 | int64(uint32(j)) }

// lookupFor returns the cached hyperplane for the ordered pair (i, j),
// provided sc is the cache's current generation.
func (c *HyperplaneCache) lookupFor(sc *topk.Scorer, i, j int) (hpEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.scorer != sc {
		return hpEntry{}, false
	}
	e, ok := c.m[pairKey(i, j)]
	return e, ok
}

// storeFor records the hyperplane for the ordered pair (i, j), unless
// the cache is full or has advanced past sc's generation (a stale solve
// must not publish geometry into a newer generation).
func (c *HyperplaneCache) storeFor(sc *topk.Scorer, i, j int, e hpEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scorer != sc {
		return
	}
	if len(c.m) < hyperplaneCacheLimit {
		c.m[pairKey(i, j)] = e
	} else {
		c.evictions++
	}
}

// Advance moves the cache to a new dataset generation, dropping exactly
// the pairs that involve a dirty slot (see store.Delta): an insert
// touches no existing slot and keeps every hyperplane, a delete or
// update drops only the pairs of the affected slots.
func (c *HyperplaneCache) Advance(sc *topk.Scorer, dirty []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Slots at or beyond the old generation's length cannot appear in an
	// interned pair; filtering them lets a pure insert advance without
	// scanning the map at all.
	oldLen := c.scorer.Len()
	dirtySet := make(map[int]bool, len(dirty))
	for _, i := range dirty {
		if i < oldLen {
			dirtySet[i] = true
		}
	}
	if len(dirtySet) > 0 {
		for key := range c.m {
			i, j := int(key>>32), int(uint32(key))
			if dirtySet[i] || dirtySet[j] {
				delete(c.m, key)
				c.evictions++
			}
		}
	}
	c.scorer = sc
}

// Len reports the number of interned hyperplanes.
func (c *HyperplaneCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Evictions reports entries dropped by generation advances or refused at
// the size cap.
func (c *HyperplaneCache) Evictions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evictions
}
