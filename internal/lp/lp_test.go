package lp

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

func TestMaximizeBasic(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0), value 12.
	r := Maximize(vec.Of(3, 2), []Constraint{
		{A: vec.Of(1, 1), Rel: LE, B: 4},
		{A: vec.Of(1, 3), Rel: LE, B: 6},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Value-12) > 1e-7 {
		t.Errorf("value = %v, want 12", r.Value)
	}
	if !r.X.Equal(vec.Of(4, 0), 1e-7) {
		t.Errorf("x = %v, want (4,0)", r.X)
	}
}

func TestMinimizeBasic(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), value 14/5.
	r := Minimize(vec.Of(1, 1), []Constraint{
		{A: vec.Of(1, 2), Rel: GE, B: 4},
		{A: vec.Of(3, 1), Rel: GE, B: 6},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Value-2.8) > 1e-7 {
		t.Errorf("value = %v, want 2.8", r.Value)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x s.t. x + y = 1, x,y >= 0 -> x = 1.
	r := Maximize(vec.Of(1, 0), []Constraint{
		{A: vec.Of(1, 1), Rel: EQ, B: 1},
	})
	if r.Status != Optimal || math.Abs(r.Value-1) > 1e-7 {
		t.Fatalf("r = %+v", r)
	}
}

func TestInfeasible(t *testing.T) {
	r := Maximize(vec.Of(1), []Constraint{
		{A: vec.Of(1), Rel: GE, B: 2},
		{A: vec.Of(1), Rel: LE, B: 1},
	})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	r := Maximize(vec.Of(1, 0), []Constraint{
		{A: vec.Of(0, 1), Rel: LE, B: 1},
	})
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// a·x <= -1 with a = (-1): means -x <= -1, i.e. x >= 1. min x -> 1.
	r := Minimize(vec.Of(1), []Constraint{
		{A: vec.Of(-1), Rel: LE, B: -1},
	})
	if r.Status != Optimal || math.Abs(r.Value-1) > 1e-7 {
		t.Fatalf("r = %+v", r)
	}
}

func TestFeasiblePoint(t *testing.T) {
	x, ok := Feasible(2, []Constraint{
		{A: vec.Of(1, 1), Rel: EQ, B: 1},
		{A: vec.Of(1, 0), Rel: GE, B: 0.25},
	})
	if !ok {
		t.Fatal("system should be feasible")
	}
	if math.Abs(x.Sum()-1) > 1e-7 || x[0] < 0.25-1e-7 {
		t.Errorf("point %v does not satisfy constraints", x)
	}
	if _, ok := Feasible(1, []Constraint{
		{A: vec.Of(1), Rel: GE, B: 1},
		{A: vec.Of(1), Rel: LE, B: 0},
	}); ok {
		t.Error("infeasible system reported feasible")
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	r := Maximize(vec.Of(0.75, -150, 0.02, -6), []Constraint{
		{A: vec.Of(0.25, -60, -0.04, 9), Rel: LE, B: 0},
		{A: vec.Of(0.5, -90, -0.02, 3), Rel: LE, B: 0},
		{A: vec.Of(0, 0, 1, 0), Rel: LE, B: 1},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Value-0.05) > 1e-6 {
		t.Errorf("value = %v, want 0.05", r.Value)
	}
}

// TestAgainstVertexEnumeration cross-checks the simplex against brute
// force enumeration of basic feasible solutions on random 2-D problems.
func TestAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		nCons := 2 + rng.Intn(4)
		cons := make([]Constraint, nCons)
		for i := range cons {
			cons[i] = Constraint{
				A:   vec.Of(rng.Float64(), rng.Float64()),
				Rel: LE,
				B:   0.5 + rng.Float64(),
			}
		}
		c := vec.Of(rng.Float64(), rng.Float64())
		r := Maximize(c, cons)
		if r.Status != Optimal {
			t.Fatalf("iter %d: random LE problem with positive rhs must be optimal, got %v", iter, r.Status)
		}
		// Brute force over intersections of constraint boundaries and axes.
		lines := make([][3]float64, 0, nCons+2)
		for _, con := range cons {
			lines = append(lines, [3]float64{con.A[0], con.A[1], con.B})
		}
		lines = append(lines, [3]float64{1, 0, 0}, [3]float64{0, 1, 0})
		best := 0.0 // origin is feasible
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				det := lines[i][0]*lines[j][1] - lines[j][0]*lines[i][1]
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (lines[i][2]*lines[j][1] - lines[j][2]*lines[i][1]) / det
				y := (lines[i][0]*lines[j][2] - lines[j][0]*lines[i][2]) / det
				if x < -1e-9 || y < -1e-9 {
					continue
				}
				ok := true
				for _, con := range cons {
					if con.A[0]*x+con.A[1]*y > con.B+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x + c[1]*y; v > best {
						best = v
					}
				}
			}
		}
		if math.Abs(r.Value-best) > 1e-6 {
			t.Fatalf("iter %d: simplex value %v, brute force %v", iter, r.Value, best)
		}
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(3)
		cons := make([]Constraint, 0, 5)
		for i := 0; i < 4; i++ {
			a := vec.New(n)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			cons = append(cons, Constraint{A: a, Rel: LE, B: 1 + rng.Float64()})
		}
		c := vec.New(n)
		for j := range c {
			c[j] = rng.Float64()
		}
		r := Maximize(c, cons)
		if r.Status != Optimal {
			continue // may legitimately be unbounded
		}
		for _, con := range cons {
			if con.A.Dot(r.X) > con.B+1e-6 {
				t.Fatalf("iter %d: solution violates constraint", iter)
			}
		}
		for _, x := range r.X {
			if x < -1e-9 {
				t.Fatalf("iter %d: negative variable %v", iter, x)
			}
		}
	}
}

func TestMaximizeFreeNegativeOptimum(t *testing.T) {
	// max x s.t. x <= -2: solution x = -2, impossible with x >= 0.
	r := MaximizeFree(vec.Of(1), []Constraint{
		{A: vec.Of(1), Rel: LE, B: -2},
	})
	if r.Status != Optimal || math.Abs(r.Value+2) > 1e-7 {
		t.Fatalf("r = %+v, want value -2", r)
	}
	if math.Abs(r.X[0]+2) > 1e-7 {
		t.Errorf("x = %v, want -2", r.X)
	}
}

func TestMinimizeFree(t *testing.T) {
	// min x + y s.t. x >= -1, y >= -3: optimum -4.
	r := MinimizeFree(vec.Of(1, 1), []Constraint{
		{A: vec.Of(1, 0), Rel: GE, B: -1},
		{A: vec.Of(0, 1), Rel: GE, B: -3},
	})
	if r.Status != Optimal || math.Abs(r.Value+4) > 1e-7 {
		t.Fatalf("r = %+v, want value -4", r)
	}
}

func TestFreeMatchesNonNegativeWhenApplicable(t *testing.T) {
	// On a problem whose optimum has x >= 0 anyway, both solvers agree.
	cons := []Constraint{
		{A: vec.Of(1, 1), Rel: LE, B: 4},
		{A: vec.Of(1, 3), Rel: LE, B: 6},
		{A: vec.Of(1, 0), Rel: GE, B: 0},
		{A: vec.Of(0, 1), Rel: GE, B: 0},
	}
	a := Maximize(vec.Of(3, 2), cons)
	b := MaximizeFree(vec.Of(3, 2), cons)
	if a.Status != Optimal || b.Status != Optimal || math.Abs(a.Value-b.Value) > 1e-7 {
		t.Fatalf("free %v vs nonneg %v", b.Value, a.Value)
	}
}

func TestMaximizeFreeUnbounded(t *testing.T) {
	r := MaximizeFree(vec.Of(1), nil)
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "status(9)" {
		t.Error("status strings wrong")
	}
}

func TestConstraintDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Maximize(vec.Of(1, 2), []Constraint{{A: vec.Of(1), Rel: LE, B: 1}})
}
