// Budgeted market impact (Section 3.1 of the paper).
//
// Given a redesign budget B, find the strongest ranking guarantee an
// existing option can buy: the smallest k such that the option can be
// upgraded, at modification cost at most B, to rank among the top-k for
// every preference in the target region. The paper observes that the
// optimal redesign cost grows monotonically as k shrinks, so the search
// simply walks k downward.
//
// Run with: go run ./examples/marketimpact
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/dataset"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	ctx := context.Background()
	market := dataset.Laptops()
	// A mid-market model to upgrade.
	target := vec.Of(0.55, 0.6)
	wr := toprr.PrefBox(vec.Of(0.4), vec.Of(0.6)) // balanced customers

	fmt.Printf("upgrading option %v for clientele wR=[0.4, 0.6] (%d rivals)\n\n", target, market.Len())
	for _, budget := range []float64{0.05, 0.15, 0.30, 0.60} {
		res, err := toprr.MarketImpact(ctx, market.Pts, wr, target, budget, 10, toprr.Options{Alg: toprr.TASStar})
		if err != nil {
			fmt.Printf("budget %.2f: %v\n", budget, err)
			continue
		}
		fmt.Printf("budget %.2f: best guarantee top-%d, placement %v, cost %.4f\n",
			budget, res.K, res.Placement, res.Cost)
	}

	// Sanity check the monotonicity claim underlying the search. The
	// engine's cross-query caches amortize the ten related solves.
	fmt.Println("\nper-k optimal upgrade costs:")
	engine := toprr.NewEngine(market.Pts)
	prev := -1.0
	for k := 10; k >= 1; k-- {
		sol, err := engine.Solve(ctx, toprr.Query{K: k, WR: wr})
		if err != nil {
			log.Fatal(err)
		}
		_, cost, err := toprr.Enhance(sol.OR, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%2d  cost %.4f\n", k, cost)
		if cost < prev-1e-9 {
			log.Fatal("BUG: cost decreased as k dropped")
		}
		prev = cost
	}
}
