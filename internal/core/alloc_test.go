package core

// CI-enforced zero-allocation invariants for the solve hot path (see
// docs/PERFORMANCE.md): warm hyperplane interning and streaming impact
// dedup allocate nothing once their tables reach steady state.

import (
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/race"
	"toprr/internal/topk"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("alloc counts are inflated under -race")
	}
}

func TestAllocsWarmHyperplaneInterning(t *testing.T) {
	skipUnderRace(t)
	ds := dataset.Generate(dataset.Independent, 200, 4, 5)
	scorer := topk.NewScorer(ds.Pts)
	c := NewShardedHyperplaneCache(scorer, 4)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			hs, ok := computeSplitHyperplane(scorer, i, j)
			c.storeFor(scorer, i, j, hpEntry{hs: hs, ok: ok})
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 40; i++ {
			for j := i + 1; j < 40; j++ {
				if _, ok := c.lookupFor(scorer, i, j); !ok {
					t.Fatal("missing interned pair")
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm hyperplane lookups allocate %.1f per run, want 0", allocs)
	}
}

func TestAllocsInsertOnlyHyperplaneAdvance(t *testing.T) {
	skipUnderRace(t)
	ds := dataset.Generate(dataset.Independent, 200, 4, 5)
	scorer := topk.NewScorer(ds.Pts)
	c := NewShardedHyperplaneCache(scorer, 4)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			hs, ok := computeSplitHyperplane(scorer, i, j)
			c.storeFor(scorer, i, j, hpEntry{hs: hs, ok: ok})
		}
	}
	want := c.Len()
	// AllocsPerRun invokes the body runs+1 times; pre-build a scorer and
	// pure-insert dirty list per invocation so the measured path is only
	// the advance itself.
	const runs = 50
	scorers := make([]*topk.Scorer, 0, 2*(runs+2))
	dirties := make([][]int, 0, 2*(runs+2))
	pts := ds.Pts
	for i := 0; i < 2*(runs+2); i++ {
		pts = append(pts[:len(pts):len(pts)], pts[0])
		scorers = append(scorers, topk.NewScorer(pts))
		dirties = append(dirties, []int{len(pts) - 1})
	}
	next := 0
	allocs := testing.AllocsPerRun(runs, func() {
		// Both entry points must advance a pure insert without allocating:
		// the classified fast path and the generic path fed insert-only
		// dirt.
		c.AdvanceInsert(scorers[next])
		c.Advance(scorers[next+1], dirties[next+1])
		next += 2
	})
	if allocs != 0 {
		t.Fatalf("insert-only hyperplane advance allocates %.1f per run, want 0", allocs)
	}
	if got := c.Len(); got != want {
		t.Fatalf("interned pairs after insert advances = %d, want %d", got, want)
	}
}

func TestAllocsStreamPushDuplicate(t *testing.T) {
	skipUnderRace(t)
	scorer, vall := streamTestInstance(t)
	st := ClipAssembler{}.NewStream(scorer, 5000)
	for _, iv := range vall {
		st.Push(iv)
	}
	// Re-pushing the same vertices hits the dedup fast path: hash, probe,
	// compare — no clone, no key string, no growth.
	allocs := testing.AllocsPerRun(50, func() {
		for _, iv := range vall {
			st.Push(iv)
		}
	})
	if allocs != 0 {
		t.Fatalf("duplicate stream pushes allocate %.1f per run, want 0", allocs)
	}
}
