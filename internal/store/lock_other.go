//go:build !unix

package store

import "os"

// lockFile is best-effort on platforms without flock: the LOCK file is
// created as a marker but no kernel-level exclusion is enforced, so
// single-process ownership of a data directory is the operator's
// responsibility there.
func lockFile(*os.File) error { return nil }
