package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// ReverseTopK computes the monochromatic reverse top-k of option index
// pi over preference region wR: the maximal subregions of wR in whose
// every preference pi ranks among the top-k. This is the query of Tang
// et al. (SIGMOD 2017, reference [41] of the paper), obtained here as a
// by-product of the kIPR partitioning machinery: within each kIPR the
// top-k set is constant, so pi's membership is decided at any one
// vertex.
//
// The returned polytopes are disjoint up to shared boundaries and their
// union is exactly {w in wR : pi in top-k at w}.
func ReverseTopK(pts []vec.Vector, k int, wr *geom.Polytope, pi int, opt Options) ([]*geom.Polytope, error) {
	return ReverseTopKContext(context.Background(), pts, k, wr, pi, opt)
}

// ReverseTopKContext is ReverseTopK honoring cancellation and deadlines
// on ctx.
func ReverseTopKContext(ctx context.Context, pts []vec.Vector, k int, wr *geom.Polytope, pi int, opt Options) ([]*geom.Polytope, error) {
	p := NewProblem(pts, k, wr)
	opt.Alg = TAS // kIPR partitioning without Lemma 5/7 shortcuts, which
	// could otherwise accept regions where pi drifts in and out of the
	// k-th rank.
	opt = opt.withDefaults()
	s := &solver{
		prob: p,
		opt:  opt,
		rng:  rand.New(rand.NewSource(opt.Seed + 1)),
		vall: make(map[uint64]ImpactVertex),
	}
	s.stats.InputOptions = p.Scorer.Len()
	active, err := SkybandPrefilter{}.Filter(ctx, p)
	if err != nil {
		return nil, err
	}
	// pi itself must stay in the candidate set even if the filter would
	// drop it (its membership is the question being answered).
	hasPi := false
	for _, idx := range active {
		if idx == pi {
			hasPi = true
			break
		}
	}
	if !hasPi {
		active = append(active, pi)
	}
	s.stats.FilteredOptions = len(active)

	// Collect confirmed regions through the accept hook. Membership is
	// decided at the centroid, a strictly interior point: region
	// vertices sit on score-tie hyperplanes by construction, where the
	// deterministic tie-break could misstate pi's (interior) membership.
	var (
		outMu sync.Mutex
		out   []*geom.Polytope
	)
	s.onAccept = func(region *geom.Polytope, cache *topk.Cache) {
		r := p.Scorer.TopK(region.Centroid(), cache.K(), cache.Active())
		if r.Contains(pi) {
			outMu.Lock()
			out = append(out, region)
			outMu.Unlock()
		}
	}
	root := regionCtx{region: wr, cache: s.newCache(k, active)}
	if err := s.drive(ctx, root, time.Now()); err != nil {
		return nil, err
	}
	return out, nil
}
