package geom

import (
	"math"
	"testing"

	"toprr/internal/vec"
)

func boxHS(d int) []Halfspace {
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	return NewBox(lo, hi).HS
}

func TestChebyshevCenterUnitSquare(t *testing.T) {
	c, r, ok := ChebyshevCenter(boxHS(2), 2)
	if !ok {
		t.Fatal("square should have a center")
	}
	if !c.Equal(vec.Of(0.5, 0.5), 1e-7) {
		t.Errorf("center = %v, want (0.5,0.5)", c)
	}
	if math.Abs(r-0.5) > 1e-7 {
		t.Errorf("radius = %v, want 0.5", r)
	}
}

func TestChebyshevCenterTriangle(t *testing.T) {
	// x >= 0, y >= 0, x + y <= 1: incircle radius = 1/(2+sqrt 2).
	hs := append(boxHS(2), NewHalfspace(vec.Of(-1, -1), -1))
	c, r, ok := ChebyshevCenter(hs, 2)
	if !ok {
		t.Fatal("triangle should have a center")
	}
	want := 1 / (2 + math.Sqrt2)
	if math.Abs(r-want) > 1e-7 {
		t.Errorf("radius = %v, want %v", r, want)
	}
	if math.Abs(c[0]-want) > 1e-6 || math.Abs(c[1]-want) > 1e-6 {
		t.Errorf("center = %v, want (%v,%v)", c, want, want)
	}
}

func TestChebyshevCenterInfeasible(t *testing.T) {
	hs := []Halfspace{
		NewHalfspace(vec.Of(1), 2),   // x >= 2
		NewHalfspace(vec.Of(-1), -1), // x <= 1
	}
	if _, _, ok := ChebyshevCenter(hs, 1); ok {
		t.Error("infeasible region should report !ok")
	}
}

func TestRemoveRedundantKeepsFacets(t *testing.T) {
	hs := boxHS(2)
	// Add two redundant constraints and one binding diagonal.
	redundant1 := NewHalfspace(vec.Of(1, 1), -1)   // x+y >= -1: useless
	redundant2 := NewHalfspace(vec.Of(1, 0), -0.5) // x >= -0.5: useless
	binding := NewHalfspace(vec.Of(-1, -1), -1.5)  // x+y <= 1.5: cuts the corner
	all := append(append([]Halfspace{}, hs...), redundant1, redundant2, binding)
	out := RemoveRedundant(all, 2)
	if len(out) != 5 { // 4 box sides + diagonal
		t.Fatalf("kept %d constraints, want 5: %v", len(out), out)
	}
	found := false
	for _, h := range out {
		if h.A.Equal(binding.A, 1e-12) && math.Abs(h.B-binding.B) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Error("binding diagonal was dropped")
	}
}

func TestRemoveRedundantDuplicates(t *testing.T) {
	hs := append(boxHS(2), boxHS(2)...) // every constraint twice
	out := RemoveRedundant(hs, 2)
	if len(out) != 4 {
		t.Fatalf("kept %d constraints, want 4", len(out))
	}
}

func TestRemoveRedundantPreservesRegion(t *testing.T) {
	// Region membership must be identical before and after.
	hs := append(boxHS(3),
		NewHalfspace(vec.Of(-1, -1, -1), -2),      // sum <= 2 (binding)
		NewHalfspace(vec.Of(-1, -1, -1), -2.9),    // sum <= 2.9 (redundant)
		NewHalfspace(vec.Of(0.5, 0.5, 0.5), -0.1), // redundant
	)
	out := RemoveRedundant(hs, 3)
	if len(out) >= len(hs) {
		t.Fatal("nothing was removed")
	}
	probe := func(x vec.Vector, set []Halfspace) bool {
		for _, h := range set {
			if h.Eval(x) < -Eps {
				return false
			}
		}
		return true
	}
	for _, x := range []vec.Vector{
		vec.Of(0.5, 0.5, 0.5), vec.Of(1, 1, 0), vec.Of(1, 1, 0.5),
		vec.Of(0.9, 0.9, 0.9), vec.Of(0, 0, 0), vec.Of(1, 0.6, 0.3),
	} {
		if probe(x, hs) != probe(x, out) {
			t.Errorf("membership of %v changed after reduction", x)
		}
	}
}
