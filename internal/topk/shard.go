package topk

// The sharded evaluation plane: a dataset generation is split into S
// stable shards, each owning a disjoint subset of the options. A
// sharded cache memoizes, per shard, the shard's *partial* top-k result
// at each queried vertex (the best min(k, |shard|) options with their
// scores), and merges the partials into the global top-k on lookup.
//
// The merge is exact: every option of the global top-k ranks within the
// top-k of its own shard, so the global result is the k best entries of
// the concatenated partials — and because each partial is ordered by
// (score desc, index asc), the same comparator the unsharded sort uses,
// the merged ordering (ties included) is bit-identical to the unsharded
// one. Sharded and unsharded solves therefore produce identical
// results; sharding changes only where the work and the memoized state
// live:
//
//   - each shard's memo has its own lock, so parallel solver workers
//     never contend on one shared cache mutex;
//   - invalidation is per shard: a mutation drops only the partials of
//     the shards whose membership or contents changed, and the other
//     S-1 shards keep their warm state — even for whole-dataset
//     configurations, which the unsharded registry must drop on any op;
//   - cache budgets split across shards, bounding each memo
//     independently.
//
// Shard assignment hashes the option's *contents*, not its slot index,
// so it is stable under the store's swap-delete: an option moved into a
// freed slot keeps its shard, and only the slots a mutation actually
// touched change hands.

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"toprr/internal/vec"
)

// MaxShards bounds the shard count of every sharded structure in the
// package; it keeps shard ids byte-sized and fan-out bounded.
const MaxShards = 64

// ShardOfPoint assigns an option to one of shards buckets by FNV-1a
// over its coordinate bits. The assignment depends only on the option's
// contents, so it is stable under swap-delete relocation.
func ShardOfPoint(p vec.Vector, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range p {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return int(h % uint64(shards))
}

// ShardAssignment maps every slot of a scorer's dataset to its shard.
func ShardAssignment(sc *Scorer, shards int) []uint8 {
	assign := make([]uint8, sc.Len())
	if shards <= 1 {
		return assign
	}
	for i := range assign {
		assign[i] = uint8(ShardOfPoint(sc.Point(i), shards))
	}
	return assign
}

// partial is one shard's contribution to a vertex's top-k: the shard's
// best min(k, |shard members|) options in (score desc, index asc)
// order, with their scores so the merge needs no rescoring. For
// whole-dataset (nil active set) configurations, w retains the vertex
// itself so patch-on-insert (patch.go) can score inserted options at it;
// all of a vertex's partials share one private clone.
type partial struct {
	idx    []int
	scores []float64
	w      vec.Vector
}

// shardMemo is one shard's per-vertex partial memo. Each memo has its
// own lock, so shards never contend with each other.
type shardMemo struct {
	mu        sync.Mutex
	scorer    *Scorer
	members   []int // slots owned by this shard (within the cache's active set), ascending
	m         map[uint64]*partial
	limit     int // max memoized vertices (0 = unlimited)
	hits      int
	misses    int
	evictions int
}

// computePartial scores the memo's members at w and returns the best
// min(k, len(members)) with scores. members and scorer are snapshotted
// by the caller; the computation runs without the memo lock. The sort
// comparator is exactly Scorer.TopK's, so merged orderings — ties
// included — are bit-identical to unsharded results.
func computePartial(sc *Scorer, members []int, w vec.Vector, k int) *partial {
	ss := sortPool.Get().(*sortScratch)
	defer sortPool.Put(ss)
	all, scores := ss.for_(len(members))
	sc.scoreInto(w, members, scores)
	for i, idx := range members {
		all[i] = scored{idx: idx, score: scores[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].idx < all[j].idx
	})
	if k > len(all) {
		k = len(all)
	}
	p := &partial{idx: make([]int, k), scores: make([]float64, k)}
	for i := 0; i < k; i++ {
		p.idx[i] = all[i].idx
		p.scores[i] = all[i].score
	}
	return p
}

// mergePartials k-way-merges the per-shard partials into the global
// top-k. Exactness: each global top-k option is in its shard's partial,
// and the shared (score desc, index asc) comparator reproduces the
// unsharded ordering exactly. The caller guarantees the partials hold
// at least k entries in total.
func mergePartials(parts []*partial, k int) *Result {
	heads := make([]int, len(parts))
	ordered := make([]int, 0, k)
	scores := make([]float64, 0, k)
	for len(ordered) < k {
		best := -1
		var bestScore float64
		var bestIdx int
		for i, p := range parts {
			h := heads[i]
			if p == nil || h >= len(p.idx) {
				continue
			}
			s, ix := p.scores[h], p.idx[h]
			if best < 0 || s > bestScore || (s == bestScore && ix < bestIdx) {
				best, bestScore, bestIdx = i, s, ix
			}
		}
		if best < 0 {
			panic("topk: sharded partials exhausted before k entries")
		}
		ordered = append(ordered, bestIdx)
		scores = append(scores, bestScore)
		heads[best]++
	}
	return newResult(ordered, scores)
}

// ShardAccum attributes sharded top-k work to one solve: Partials
// counts the partial computations each shard performed for the solve,
// Scored the options scored doing so. Counters are atomic so the
// parallel solver's workers update them without a lock.
type ShardAccum struct {
	Partials []atomic.Int64
	Scored   []atomic.Int64
}

// NewShardAccum builds a zeroed accumulator for n shards.
func NewShardAccum(n int) *ShardAccum {
	return &ShardAccum{Partials: make([]atomic.Int64, n), Scored: make([]atomic.Int64, n)}
}

// sharded is the shard-mode state of a Cache: per-shard partial memos
// plus a merged-result memo so repeat lookups of a vertex skip the
// k-way merge entirely. The merged memo is read under a shared RWMutex
// (concurrent hit paths never block each other); it is cleared whenever
// per-shard invalidation drops any shard, since a merged result depends
// on all of them.
type sharded struct {
	memos []*shardMemo

	mergedMu    sync.RWMutex
	merged      map[uint64]*Result
	mergedLimit int // max merged vertices (0 = unlimited); mirrors the per-shard entry limit
}

// bucketMembers splits an active set (nil = the whole dataset) into
// per-shard member lists using assign (slot -> shard); assign may be
// nil, in which case membership is hashed from the scorer's contents.
func bucketMembers(sc *Scorer, active []int, shards int, assign []uint8) [][]int {
	members := make([][]int, shards)
	add := func(slot int) {
		var sh int
		if assign != nil {
			sh = int(assign[slot])
		} else {
			sh = ShardOfPoint(sc.pts[slot], shards)
		}
		members[sh] = append(members[sh], slot)
	}
	if active == nil {
		for i := range sc.pts {
			add(i)
		}
	} else {
		for _, i := range active {
			add(i)
		}
	}
	return members
}

// NewShardedCache builds a cache whose evaluation plane is split into
// shards: per-vertex partial results are memoized per shard (each with
// its own lock and entry limit) and merged into exact global top-k
// results on lookup. shards <= 1 falls back to a plain Cache.
// entryLimitPerShard caps each shard memo (0 = unlimited). assign may
// carry a precomputed slot-to-shard map for the scorer's generation
// (nil = hash on demand).
func NewShardedCache(scorer *Scorer, k int, active []int, shards, entryLimitPerShard int, assign []uint8) *Cache {
	if shards <= 1 {
		return NewCache(scorer, k, active)
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	members := bucketMembers(scorer, active, shards, assign)
	sh := &sharded{
		memos:  make([]*shardMemo, shards),
		merged: make(map[uint64]*Result),
		// The merged memo holds one Result per vertex — the same unit
		// the unsharded cache's map holds — so it gets the whole entry
		// budget, not a per-shard slice of it; capping it at the
		// per-shard share would shrink vertex-level hit capacity S-fold.
		mergedLimit: entryLimitPerShard * shards,
	}
	for i := range sh.memos {
		sh.memos[i] = &shardMemo{
			scorer:  scorer,
			members: members[i],
			m:       make(map[uint64]*partial),
			limit:   entryLimitPerShard,
		}
	}
	return &Cache{scorer: scorer, k: k, active: active, sh: sh}
}

// Shards returns the cache's shard count (1 for unsharded caches).
func (c *Cache) Shards() int {
	if c.sh == nil {
		return 1
	}
	return len(c.sh.memos)
}

// shardParallelThreshold is the total member count missing shards must
// exceed before a sharded lookup fans the partial computations out to
// goroutines; below it the per-goroutine overhead would dominate the
// scoring work.
const shardParallelThreshold = 4096

// lookupSharded serves one vertex from the sharded plane: per-shard
// partials are read (or computed) under each shard's own lock and
// merged into the exact global result. When several shards miss and
// their combined member count is large, the partial computations run
// concurrently; ctx cancellation stops unstarted sibling shards and
// fails the lookup, leaving already-computed partials memoized (they
// are idempotent). hit reports whether every shard served from memory.
func (c *Cache) lookupSharded(ctx context.Context, w vec.Vector, acc *ShardAccum) (r *Result, hit bool, err error) {
	key := w.Hash(1e-10)

	// Fast path: the merged memo serves repeat vertices without touching
	// any shard — a shared read lock, so hitting goroutines never block
	// each other.
	c.sh.mergedMu.RLock()
	r, ok := c.sh.merged[key]
	c.sh.mergedMu.RUnlock()
	if ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return r, true, nil
	}

	memos := c.sh.memos
	parts := make([]*partial, len(memos))
	var missing []int
	missingMembers := 0
	for i, sm := range memos {
		sm.mu.Lock()
		if p, ok := sm.m[key]; ok {
			parts[i] = p
			sm.hits++
		} else {
			missing = append(missing, i)
			missingMembers += len(sm.members)
		}
		sm.mu.Unlock()
	}
	if len(missing) == 0 {
		// Every shard had its partial (the merged entry was dropped by a
		// partial invalidation of a *different* vertex, or lost a store
		// race): remerge and re-memoize.
		r = mergePartials(parts, c.k)
		c.storeMerged(key, r)
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return r, true, nil
	}

	// Patchable (whole-dataset) configurations retain the vertex with
	// each stored partial; one private clone is shared by every partial
	// this lookup stores (lookup vertices may live in a recycled arena).
	var wkeep vec.Vector
	if c.active == nil {
		wkeep = w.Clone()
	}

	// A remote shard among the missing forces the parallel fan-out
	// below so the scatter's requests overlap on the wire instead of
	// paying one round trip per shard. Active-set configurations ship
	// their member slots with each request (shipMembers below).
	remote := c.remote
	remoteMissing := false
	if remote != nil {
		for _, i := range missing {
			if remote.Owns(i) {
				remoteMissing = true
				break
			}
		}
	}

	compute := func(i int) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sm := memos[i]
		sm.mu.Lock()
		sc, members, limit := sm.scorer, sm.members, sm.limit
		sm.mu.Unlock()
		var p *partial
		if remote != nil && remote.Owns(i) {
			// Remote-or-local: a sound remote answer is bit-identical to
			// the local computation; nil (error, refusal, hedge expiry)
			// falls through to computing the shard here.
			p = remote.fetch(ctx, sc, members, i, w, c.k, c.active != nil)
		}
		if p == nil {
			p = computePartial(sc, members, w, c.k)
			if acc != nil {
				acc.Partials[i].Add(1)
				acc.Scored[i].Add(int64(len(members)))
			}
		}
		p.w = wkeep
		sm.mu.Lock()
		if limit <= 0 || len(sm.m) < limit {
			sm.m[key] = p
		} else {
			sm.evictions++
		}
		sm.misses++
		sm.mu.Unlock()
		parts[i] = p
		return nil
	}

	if len(missing) > 1 && (missingMembers >= shardParallelThreshold || remoteMissing) {
		// Fan the missing shards out; a ctx cancellation makes every
		// not-yet-started sibling return immediately. Remote-owned
		// shards always fan out: their cost is a network round trip,
		// not member scoring, and concurrent dispatch is what lets the
		// pipelined connection overlap the scatter on the wire.
		var wg sync.WaitGroup
		errs := make([]error, len(missing))
		for t, i := range missing {
			wg.Add(1)
			go func(t, i int) {
				defer wg.Done()
				errs[t] = compute(i)
			}(t, i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, false, e
			}
		}
	} else {
		for _, i := range missing {
			if err := compute(i); err != nil {
				return nil, false, err
			}
		}
	}

	r = mergePartials(parts, c.k)
	c.storeMerged(key, r)
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return r, false, nil
}

// storeMerged memoizes a merged result under the merged-vertex cap.
func (c *Cache) storeMerged(key uint64, r *Result) {
	c.sh.mergedMu.Lock()
	if c.sh.mergedLimit <= 0 || len(c.sh.merged) < c.sh.mergedLimit {
		c.sh.merged[key] = r
	}
	c.sh.mergedMu.Unlock()
}

// rebindSharded points every shard memo (and the cache itself) at a new
// generation's scorer; sound under the same bit-identical-members
// argument as Cache.rebind.
func (c *Cache) rebindSharded(sc *Scorer) {
	for _, sm := range c.sh.memos {
		sm.mu.Lock()
		sm.scorer = sc
		sm.mu.Unlock()
	}
	c.mu.Lock()
	c.scorer = sc
	c.mu.Unlock()
}

// cloneAdvance builds this sharded cache's successor for a new
// generation: a new Cache object whose affected shards — those whose
// membership or member contents changed — start with fresh memos bound
// to the new scorer and assignment, while every unaffected shard memo
// is carried forward *by pointer*. Sharing the unaffected memos is
// sound by the rebind argument (their members are bit-identical across
// the two generations, so both sides compute and read identical
// partials); replacing the object — rather than mutating this one — is
// what keeps in-flight solves pinned to the old generation correct:
// they keep this cache, whose affected shards still hold the old
// scorer, members and partials. The merged memo starts empty (merged
// results depend on the affected shards). It returns the successor and
// the number of old-generation partials left behind with it.
func (c *Cache) cloneAdvance(sc *Scorer, assign []uint8, affected map[int]bool) (*Cache, int) {
	members := bucketMembers(sc, c.active, len(c.sh.memos), assign)
	memos := make([]*shardMemo, len(c.sh.memos))
	evicted := 0
	for i, sm := range c.sh.memos {
		if affected[i] {
			sm.mu.Lock()
			// The partials left behind plus the old memo's own refusal
			// count, so the registry's Evictions stays monotone when the
			// old object retires.
			evicted += len(sm.m) + sm.evictions
			limit := sm.limit
			sm.mu.Unlock()
			memos[i] = &shardMemo{
				scorer:  sc,
				members: members[i],
				m:       make(map[uint64]*partial),
				limit:   limit,
			}
			continue
		}
		// Shared between the old and new cache: rebind to the new
		// scorer (results identical under either, see Cache.rebind).
		sm.mu.Lock()
		sm.scorer = sc
		sm.mu.Unlock()
		memos[i] = sm
	}
	return &Cache{
		scorer: sc,
		k:      c.k,
		active: c.active,
		remote: c.remote, // successors keep routing to the same owners
		sh: &sharded{
			memos:       memos,
			merged:      make(map[uint64]*Result),
			mergedLimit: c.sh.mergedLimit,
		},
	}, evicted
}

// ShardCacheStats is one shard's aggregate cache occupancy, summed by
// Registry.ShardStats across every interned configuration. The top-k
// columns are truly shard-owned (each shard memoizes only its own
// options' partials). Hyperplanes is the occupancy of the hyperplane
// cache's like-numbered *stripe* — stripes are pair-hash buckets that
// divide lock contention and budget, not ownership by option shard, so
// the column reads as "this stripe's share of the interned pairs".
type ShardCacheStats struct {
	Shard       int
	TopKEntries int // memoized partials
	TopKHits    int
	TopKMisses  int
	TopKEvicted int
	Hyperplanes int
	// RemotePartials counts this shard's partials served by its remote
	// owner (cumulative across the registry's remote plane; zero
	// without one). Filled by Registry.ShardStats, not addShardStats —
	// the counter lives on the shared plane, not on any one cache.
	RemotePartials int64
}

// addShardStats folds one sharded cache's per-shard counters into out
// (indexed by shard id).
func (c *Cache) addShardStats(out []ShardCacheStats) {
	if c.sh == nil {
		return
	}
	for i, sm := range c.sh.memos {
		if i >= len(out) {
			break
		}
		sm.mu.Lock()
		out[i].TopKEntries += len(sm.m)
		out[i].TopKHits += sm.hits
		out[i].TopKMisses += sm.misses
		out[i].TopKEvicted += sm.evictions
		sm.mu.Unlock()
	}
}
