package core

import (
	"fmt"
	"time"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Algorithm selects a TopRR solver.
type Algorithm int

// The three TopRR algorithms of the paper.
const (
	PAC Algorithm = iota
	TAS
	TASStar
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case PAC:
		return "PAC"
	case TAS:
		return "TAS"
	case TASStar:
		return "TAS*"
	default:
		return fmt.Sprintf("alg(%d)", int(a))
	}
}

// Problem is a TopRR instance.
type Problem struct {
	Scorer *topk.Scorer   // the dataset D
	K      int            // rank threshold
	WR     *geom.Polytope // target preference region (convex polytope in W)
}

// NewProblem assembles a TopRR instance over the given options.
func NewProblem(pts []vec.Vector, k int, wr *geom.Polytope) Problem {
	s := topk.NewScorer(pts)
	if wr.Dim != s.PrefDim() {
		panic(fmt.Sprintf("core: wR dimension %d, want %d", wr.Dim, s.PrefDim()))
	}
	if k <= 0 || k > s.Len() {
		panic(fmt.Sprintf("core: k=%d out of range for %d options", k, s.Len()))
	}
	return Problem{Scorer: s, K: k, WR: wr}
}

// PrefBox builds a preference region wR as the axis-aligned box
// [lo, hi] in W, intersected with the validity constraints of the
// preference space: w[j] >= 0 and Σ w[j] <= 1 (so that the derived last
// weight is nonnegative). It panics if the intersection is empty.
func PrefBox(lo, hi vec.Vector) *geom.Polytope {
	m := len(lo)
	clampedLo := lo.Clone()
	for j := range clampedLo {
		if clampedLo[j] < 0 {
			clampedLo[j] = 0
		}
	}
	p := geom.NewBox(clampedLo, hi)
	ones := vec.New(m)
	for j := range ones {
		ones[j] = -1
	}
	p = p.Clip(geom.NewHalfspace(ones, -1)) // Σ w[j] <= 1
	if p.IsEmpty() {
		panic("core: preference region is empty after simplex clipping")
	}
	return p
}

// Options tunes a Solve call. The Disable* switches exist for the
// paper's ablation study (Section 6.5) and only affect TAS*.
//
// The pipeline-stage fields (Prefilter, Traversal, Assembler) select
// alternative strategies for the three solve stages; their zero values
// are the paper's defaults (r-skyband, depth-first, incremental
// clipping). Hyperplanes and TopKCaches accept engine-owned cross-query
// caches so batches of solves over one dataset amortize geometric and
// scoring work; both must be bound to the problem's dataset.
type Options struct {
	Alg              Algorithm
	DisableLemma5    bool          // TAS*: skip consistent top-λ pruning (Section 5.1)
	DisableLemma7    bool          // TAS*: skip optimized region testing (Section 5.2)
	DisableKSwitch   bool          // TAS*: random Case-1 pair instead of k-switch (Section 5.3)
	DisableTopKCache bool          // ablation: recompute top-k at every vertex instead of caching
	Workers          int           // parallel region processing (default 1 = sequential)
	Shards           int           // shard count of the top-k evaluation plane (0/1 = unsharded; results are identical either way)
	MaxRegions       int           // safety valve on the recursion (default 2,000,000)
	ORVertexBudget   int           // vertex cap for enumerating oR's geometry (default 5,000)
	Timeout          time.Duration // wall-clock budget for one solve (0 = unlimited)
	Seed             int64         // seed for the random pair choices of PAC/TAS

	Prefilter   Prefilter        // candidate filtering stage (nil = SkybandPrefilter)
	Traversal   Traversal        // region scheduling order (default DepthFirst)
	Assembler   Assembler        // oR assembly stage (nil = ClipAssembler; sharded engines default to ParallelClipAssembler)
	Hyperplanes *HyperplaneCache // optional cross-query split-hyperplane interning
	TopKCaches  *topk.Registry   // optional cross-query top-k memoization

	// SketchGate accelerates the default r-skyband prefilter: when the
	// hook certifies that every option outside its candidate list can
	// never enter a top-k result over wR, the exact dominance sweep runs
	// only over the certified candidates. The gate engages only for the
	// default prefilter, only with a certificate, and only to skip work
	// whose outcome the certificate pins — a gated solve is bit-identical
	// to an ungated one. DisableSketchGate turns the hook off for one
	// solve (ablation and A/B harnesses).
	SketchGate        GateFn
	DisableSketchGate bool
}

// GateFn is the sketch-certification hook of the prefilter stage
// (Options.SketchGate). Given the solve's dataset, the query region's
// vertices and the rank threshold, it either certifies — deterministic
// sketch bounds, never heuristics — that every option outside cands is
// r-dominated by at least k options over the region (ok true; skipped
// counts the options certified out), or declines (ok false) and the
// solve runs the full unassisted prefilter. Implementations must be
// safe for concurrent use and must decline for any dataset generation
// other than the one they summarize.
type GateFn func(sc *topk.Scorer, verts []vec.Vector, k int) (cands []int, skipped int, ok bool)

func (o Options) withDefaults() Options {
	if o.MaxRegions <= 0 {
		o.MaxRegions = 2000000
	}
	if o.ORVertexBudget <= 0 {
		o.ORVertexBudget = 5000
	}
	return o
}

// Stats captures the instrumentation the paper reports in Sections 6.4
// and 6.5, plus the per-shard work breakdown of sharded solves.
type Stats struct {
	InputOptions     int           // |D|
	FilteredOptions  int           // |D'| after the r-skyband filter
	ProcessedMin     int           // smallest active set seen (Lemma 5 shrinks it)
	Regions          int           // confirmed regions (kIPRs, or Lemma 7 accepts)
	Splits           int           // split operations performed
	Lemma5Prunes     int           // options removed by Lemma 5 across the recursion
	Lemma7Accepts    int           // non-kIPR regions accepted by Lemma 7
	DegenerateStops  int           // regions accepted because no valid cut existed (ties)
	VallSize         int           // |Vall| (Theorem 1 vertex set)
	TopKQueries      int           // top-k computations incl. cache hits
	TopKMisses       int           // top-k computations that did real work
	ImpactClips      int           // impact halfspaces applied to build oR
	StreamedVertices int           // vertices streamed into the assembler during partition (0 = buffered)
	UniqueImpacts    int           // deduplicated impact halfspaces in the H-representation
	Shards           int           // shard count of the evaluation plane (0/1 = unsharded)
	ShardStats       []ShardStat   // per-shard work breakdown (sharded solves only)
	SketchGated      bool          // the sketch gate certified this solve's prefilter
	SketchSkips      int           // options the certificate excused from exact dominance tests
	Elapsed          time.Duration // wall-clock time of Solve
}

// ShardStat is one shard's share of a solve's work: its population of
// the filtered candidate set, the partial top-k computations it
// performed for this solve (with the options scored doing so), and the
// constraint clips its chunk of the merge stage applied. LP/QP solves
// are reported process-wide (toprr.ReadCounters) rather than per shard:
// the sharded phases — scoring and clipping — are LP-free by
// construction, so per-shard LP/QP counts would always read zero.
type ShardStat struct {
	Shard      int
	Options    int   // shard population within the filtered candidate set
	Partials   int   // partial top-k computations attributed to this solve
	Scored     int64 // options scored computing those partials
	MergeClips int   // constraint clips applied by this shard's merge chunk
}

// Result is the output of a TopRR solve.
//
// The exact answer is ORConstraints: oR is precisely the set of options
// satisfying every constraint (Theorem 1's halfspace intersection plus
// the option-space box). OR additionally carries the explicit geometry
// (vertices and facets) of that region; in high dimensions with many
// near-parallel impact halfspaces the vertex enumeration can exceed
// Options.ORVertexBudget, in which case OR is nil while ORConstraints —
// and hence membership tests and all placement optimizations — remain
// exact.
type Result struct {
	OR            *geom.Polytope   // explicit geometry of oR, nil if the vertex budget was exceeded
	ORConstraints []geom.Halfspace // exact H-representation of oR (always set)
	Vall          []ImpactVertex   // defining vertices of the confirmed regions
	Stats         Stats
	Problem       Problem
}

// ImpactVertex is an element of Vall: a preference-space vertex together
// with TopK(v), the k-th highest score of D at it, which defines the
// impact halfspace oH(v) of Definition 2.
type ImpactVertex struct {
	W        vec.Vector // reduced weight vector (vertex of a confirmed region)
	KthScore float64    // TopK(v) in the paper's notation
}

// ImpactHalfspace returns oH(v) = {o : S_v(o) >= TopK(v)} as a halfspace
// in option space.
func (iv ImpactVertex) ImpactHalfspace(scorer *topk.Scorer) geom.Halfspace {
	return geom.NewHalfspace(scorer.FullWeight(iv.W), iv.KthScore)
}

// IsTopRanking reports whether placing a new option at o makes it
// top-ranking, i.e. whether o lies in oR. It evaluates the exact
// H-representation, so it works even when the explicit geometry was too
// large to enumerate.
func (r *Result) IsTopRanking(o vec.Vector) bool {
	for _, h := range r.ORConstraints {
		if h.Eval(o) < -geom.Eps {
			return false
		}
	}
	return true
}
