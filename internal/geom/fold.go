package geom

import "sync"

// Fold incrementally intersects halfspaces into a polytope — the oR
// assembly loop of Theorem 1 — while keeping every intermediate
// polytope's vertex storage inside two ping-pong arenas. Each effective
// clip writes the surviving geometry into the idle arena and recycles
// the one backing the previous step, so a fold of thousands of clips
// touches a constant amount of slab memory instead of allocating (and
// abandoning) every intermediate vertex set.
//
// A Fold follows the package ownership rule (see arena.go): it is owned
// by one goroutine from NewFold until Release, Current's result aliases
// arena storage and must not be retained across the next Clip or
// Release, and the final polytope escapes only via Detach.
type Fold struct {
	cur    *Polytope
	arenas [2]Arena
	// live is the arena index backing cur's storage, or -1 while cur is
	// still the caller-owned starting polytope (or an empty result).
	live    int
	scratch *Scratch
	clips   int
}

var foldPool = sync.Pool{New: func() any { return new(Fold) }}

// NewFold leases a Fold from the shared pool, starting from polytope
// start (which is never mutated).
func NewFold(start *Polytope) *Fold {
	f := foldPool.Get().(*Fold)
	f.cur = start
	f.live = -1
	f.clips = 0
	if f.scratch == nil {
		f.scratch = GetScratch()
	}
	return f
}

// Clip intersects the current polytope with h and reports whether the
// polytope changed (false means the clip was redundant). Redundant clips
// cost one evaluation pass and no arena traffic.
func (f *Fold) Clip(h Halfspace) bool {
	f.clips++
	next := 0
	if f.live == 0 {
		next = 1
	}
	out := f.cur.clipPosInto(h, f.scratch, &f.arenas[next])
	if out == f.cur {
		return false
	}
	// The new polytope's storage lives in arenas[next] (or nowhere, when
	// it is empty); the previous step's arena is now garbage.
	if f.live >= 0 {
		f.arenas[f.live].Reset()
	}
	f.cur = out
	if out.IsEmpty() {
		f.live = -1
		f.arenas[next].Reset()
	} else {
		f.live = next
	}
	return true
}

// Current returns the polytope as folded so far. The result may alias
// arena storage: it is only valid until the next Clip or Release, and
// must never be retained — use Detach for a result that escapes.
func (f *Fold) Current() *Polytope { return f.cur }

// Clips returns the number of Clip calls so far (redundant or not).
func (f *Fold) Clips() int { return f.clips }

// Detach deep-copies the current polytope out of the arenas and returns
// it; the copy is an ordinary heap polytope safe to retain after
// Release. When the current polytope never entered an arena (no
// effective clip, or an empty result) it is returned as-is.
func (f *Fold) Detach() *Polytope {
	if f.live < 0 {
		return f.cur
	}
	p := f.cur
	verts := make([]Vertex, len(p.Verts))
	for i, v := range p.Verts {
		verts[i] = Vertex{Point: v.Point.Clone(), Tight: v.Tight.Clone()}
	}
	return &Polytope{Dim: p.Dim, HS: p.HS, Verts: verts}
}

// Release recycles the fold's arenas and scratch back to the pool. Any
// un-Detached Current result is invalid after this call.
func (f *Fold) Release() {
	f.cur = nil
	f.arenas[0].Reset()
	f.arenas[1].Reset()
	f.live = -1
	foldPool.Put(f)
}
