package core

import (
	"math/rand"
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// streamTestInstance solves a mid-size problem and returns its scorer
// and Vall, the raw material for assemble-stage equivalence tests.
func streamTestInstance(t *testing.T) (*topk.Scorer, []ImpactVertex) {
	t.Helper()
	ds := dataset.Generate(dataset.Independent, 1500, 4, 7)
	wr := testRegion(3, 0.06, 9)
	prob := NewProblem(ds.Pts, 8, wr)
	res, err := Solve(prob, Options{Alg: TASStar, Seed: 5})
	if err != nil {
		t.Fatalf("instance solve: %v", err)
	}
	if len(res.Vall) < 10 {
		t.Fatalf("degenerate instance: |Vall| = %d", len(res.Vall))
	}
	return prob.Scorer, res.Vall
}

// testRegion builds a small random box region inside the simplex.
func testRegion(m int, side float64, seed int64) *geom.Polytope {
	rng := rand.New(rand.NewSource(seed))
	lo := make(vec.Vector, m)
	hi := make(vec.Vector, m)
	for j := range lo {
		lo[j] = 0.1 + 0.5*rng.Float64()/float64(m)
		hi[j] = lo[j] + side
	}
	return PrefBox(lo, hi)
}

// assertSameOutput requires bit-identical assemble outputs: the same
// constraint list (exact float equality) and the same explicit
// geometry.
func assertSameOutput(t *testing.T, want, got AssembleOutput, label string) {
	t.Helper()
	if len(want.Constraints) != len(got.Constraints) {
		t.Fatalf("%s: %d constraints, want %d", label, len(got.Constraints), len(want.Constraints))
	}
	for i := range want.Constraints {
		a, b := want.Constraints[i], got.Constraints[i]
		if a.B != b.B || !a.A.Equal(b.A, 0) {
			t.Fatalf("%s: constraint %d differs: %v vs %v", label, i, b, a)
		}
	}
	if (want.OR == nil) != (got.OR == nil) {
		t.Fatalf("%s: OR presence differs: %v vs %v", label, got.OR != nil, want.OR != nil)
	}
	if want.OR != nil && got.OR.CanonicalKey() != want.OR.CanonicalKey() {
		t.Fatalf("%s: OR geometry differs", label)
	}
	if want.Clips != got.Clips {
		t.Fatalf("%s: clips = %d, want %d", label, got.Clips, want.Clips)
	}
}

// TestStreamingMatchesBufferedAnyOrder: a streaming assembly must be
// bit-identical to the buffered Assemble call over the same vertex set,
// regardless of the order vertices arrive in — dedup and the
// deepest-cut sort are arrival-order independent by construction.
func TestStreamingMatchesBufferedAnyOrder(t *testing.T) {
	scorer, vall := streamTestInstance(t)
	assemblers := []StreamAssembler{
		ClipAssembler{},
		ParallelClipAssembler{Shards: 3},
	}
	for _, asm := range assemblers {
		want := asm.Assemble(scorer, vall, 5000)
		for trial := 0; trial < 4; trial++ {
			shuffled := append([]ImpactVertex(nil), vall...)
			rng := rand.New(rand.NewSource(int64(trial + 1)))
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			st := asm.NewStream(scorer, 5000)
			for _, iv := range shuffled {
				st.Push(iv)
			}
			assertSameOutput(t, want, st.Finish(), asm.Name())
		}
	}
}

// TestStreamingDuplicateRepresentative: when two distinct vertices
// quantize to the same impact halfspace, the kept representative must
// not depend on arrival order (the buffered path keeps the
// lexicographically smallest vertex's halfspace; streaming must too).
func TestStreamingDuplicateRepresentative(t *testing.T) {
	scorer, vall := streamTestInstance(t)
	// Perturb a copy of the first vertex far below the dedup quantum:
	// same quantized halfspace, different raw bits.
	twin := vall[0]
	w := twin.W.Clone()
	w[0] += 1e-13
	twin.W = w
	twin.KthScore += 1e-13
	withTwin := append([]ImpactVertex{twin}, vall...)

	want := ClipAssembler{}.Assemble(scorer, vall, 5000)
	forward := ClipAssembler{}.Assemble(scorer, withTwin, 5000)
	// Reverse order pushes the twin last.
	st := ClipAssembler{}.NewStream(scorer, 5000)
	for i := len(withTwin) - 1; i >= 0; i-- {
		st.Push(withTwin[i])
	}
	backward := st.Finish()
	assertSameOutput(t, forward, backward, "twin-order")
	// The twin is raw-lexicographically larger than the original, so the
	// original's halfspace must be the representative either way and the
	// output must match the twin-free assembly bit for bit.
	assertSameOutput(t, want, forward, "twin-vs-clean")
}

// bufferedOnlyAssembler wraps ClipAssembler without implementing
// StreamAssembler, forcing the solver's buffered fallback.
type bufferedOnlyAssembler struct{}

func (bufferedOnlyAssembler) Name() string { return "buffered-only" }
func (bufferedOnlyAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	return ClipAssembler{}.Assemble(scorer, vall, vertexBudget)
}

// TestSolveStreamsByDefault: the default solve streams every Vall
// vertex into the assembler during partition, and its result is
// bit-identical to a solve forced onto the buffered fallback.
func TestSolveStreamsByDefault(t *testing.T) {
	ds := dataset.Generate(dataset.Independent, 1200, 4, 3)
	wr := testRegion(3, 0.06, 4)
	prob := NewProblem(ds.Pts, 6, wr)

	def, err := Solve(prob, Options{Alg: TASStar, Seed: 2})
	if err != nil {
		t.Fatalf("default solve: %v", err)
	}
	if def.Stats.StreamedVertices == 0 {
		t.Fatal("default solve did not stream")
	}
	if def.Stats.StreamedVertices != def.Stats.VallSize {
		t.Fatalf("streamed %d vertices, want |Vall| = %d",
			def.Stats.StreamedVertices, def.Stats.VallSize)
	}
	if def.Stats.UniqueImpacts != len(def.ORConstraints)-2*prob.Scorer.Dim() {
		t.Fatalf("UniqueImpacts = %d, want %d",
			def.Stats.UniqueImpacts, len(def.ORConstraints)-2*prob.Scorer.Dim())
	}

	buf, err := Solve(prob, Options{Alg: TASStar, Seed: 2, Assembler: bufferedOnlyAssembler{}})
	if err != nil {
		t.Fatalf("buffered solve: %v", err)
	}
	if buf.Stats.StreamedVertices != 0 {
		t.Fatalf("buffered fallback streamed %d vertices, want 0", buf.Stats.StreamedVertices)
	}
	assertSameOutput(t,
		AssembleOutput{Constraints: def.ORConstraints, OR: def.OR, Clips: def.Stats.ImpactClips},
		AssembleOutput{Constraints: buf.ORConstraints, OR: buf.OR, Clips: buf.Stats.ImpactClips},
		"solve")
	if len(def.Vall) != len(buf.Vall) {
		t.Fatalf("Vall sizes differ: %d vs %d", len(def.Vall), len(buf.Vall))
	}
	for i := range def.Vall {
		if !def.Vall[i].W.Equal(buf.Vall[i].W, 0) || def.Vall[i].KthScore != buf.Vall[i].KthScore {
			t.Fatalf("Vall[%d] differs", i)
		}
	}
}

// TestDedupImpactMatchesStream pins the buffered dedup helper to the
// streaming set: same constraints from either entry point.
func TestDedupImpactMatchesStream(t *testing.T) {
	scorer, vall := streamTestInstance(t)
	want := dedupImpact(scorer, vall)
	set := impactSet{scorer: scorer}
	for i := len(vall) - 1; i >= 0; i-- { // reversed arrival
		set.add(vall[i])
	}
	got := set.sorted()
	if len(want) != len(got) {
		t.Fatalf("%d halfspaces, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].B != got[i].B || !want[i].A.Equal(got[i].A, 0) {
			t.Fatalf("halfspace %d differs", i)
		}
	}
}
