package core

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"toprr/internal/geom"
)

// Traversal selects the order in which the partition stage expands the
// region tree. All orders produce the same oR (the set of confirmed
// regions is traversal-invariant); they differ in memory footprint and
// in how quickly the budget valve bites on pathological inputs.
type Traversal int

const (
	// DepthFirst (the default) expands the most recently produced
	// region first. Minimal frontier memory.
	DepthFirst Traversal = iota
	// BreadthFirst expands regions level by level, which keeps sibling
	// regions of similar size together and makes progress uniform
	// across wR — useful when a timeout may interrupt the solve.
	BreadthFirst
	// PriorityOrder expands the geometrically largest frontier region
	// first (by bounding-box extent), so the biggest undecided chunks
	// of wR are resolved earliest.
	PriorityOrder
)

// String returns a short name for the traversal order.
func (t Traversal) String() string {
	switch t {
	case DepthFirst:
		return "dfs"
	case BreadthFirst:
		return "bfs"
	case PriorityOrder:
		return "priority"
	default:
		return fmt.Sprintf("traversal(%d)", int(t))
	}
}

// frontier is the partition stage's scheduling interface: the set of
// regions awaiting processing. Implementations are used only from the
// scheduler goroutine and need not be thread-safe.
type frontier interface {
	push(regionCtx)
	pop() (regionCtx, bool)
	len() int
}

// newFrontier builds the frontier for a traversal order.
func newFrontier(t Traversal) frontier {
	switch t {
	case BreadthFirst:
		return &fifoFrontier{}
	case PriorityOrder:
		return &priorityFrontier{}
	default:
		return &lifoFrontier{}
	}
}

// lifoFrontier is a stack (depth-first).
type lifoFrontier struct{ items []regionCtx }

func (f *lifoFrontier) push(rc regionCtx) { f.items = append(f.items, rc) }
func (f *lifoFrontier) len() int          { return len(f.items) }
func (f *lifoFrontier) pop() (regionCtx, bool) {
	if len(f.items) == 0 {
		return regionCtx{}, false
	}
	rc := f.items[len(f.items)-1]
	f.items = f.items[:len(f.items)-1]
	return rc, true
}

// fifoFrontier is a queue (breadth-first) with amortized compaction.
type fifoFrontier struct {
	items []regionCtx
	head  int
}

func (f *fifoFrontier) push(rc regionCtx) { f.items = append(f.items, rc) }
func (f *fifoFrontier) len() int          { return len(f.items) - f.head }
func (f *fifoFrontier) pop() (regionCtx, bool) {
	if f.head >= len(f.items) {
		return regionCtx{}, false
	}
	rc := f.items[f.head]
	f.items[f.head] = regionCtx{}
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
	return rc, true
}

// priorityFrontier pops the region with the largest bounding-box extent
// first.
type priorityFrontier struct{ h prioHeap }

type prioItem struct {
	rc   regionCtx
	size float64
}

type prioHeap []prioItem

func (h prioHeap) Len() int            { return len(h) }
func (h prioHeap) Less(i, j int) bool  { return h[i].size > h[j].size }
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// regionExtent scores a region by the sum of its bounding-box side
// lengths — cheap, and monotone under splitting.
func regionExtent(p *geom.Polytope) float64 {
	lo, hi := p.BoundingBox()
	s := 0.0
	for j := range lo {
		s += hi[j] - lo[j]
	}
	return s
}

func (f *priorityFrontier) push(rc regionCtx) {
	heap.Push(&f.h, prioItem{rc: rc, size: regionExtent(rc.region)})
}
func (f *priorityFrontier) len() int { return len(f.h) }
func (f *priorityFrontier) pop() (regionCtx, bool) {
	if len(f.h) == 0 {
		return regionCtx{}, false
	}
	return heap.Pop(&f.h).(prioItem).rc, true
}

// checkBudget enforces context cancellation, MaxRegions and Timeout.
func (s *solver) checkBudget(ctx context.Context, start time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.budgetUsed() > s.opt.MaxRegions {
		return fmt.Errorf("core: exceeded MaxRegions=%d (k=%d)", s.opt.MaxRegions, s.prob.K)
	}
	if s.opt.Timeout > 0 && time.Since(start) > s.opt.Timeout {
		return fmt.Errorf("core: exceeded timeout %v (k=%d)", s.opt.Timeout, s.prob.K)
	}
	return nil
}

// drive runs the partition stage: it processes the region tree from
// root until the frontier is exhausted, honoring context cancellation
// and the recursion and wall-clock budgets, sequentially or with a
// channel-based worker pool when Options.Workers > 1 (the parallelism
// direction of the paper's future-work section; results are identical,
// traversal order and the Seed-dependent split choices may differ).
func (s *solver) drive(ctx context.Context, root regionCtx, start time.Time) error {
	f := newFrontier(s.opt.Traversal)
	f.push(root)
	if s.opt.Workers <= 1 {
		for {
			rc, ok := f.pop()
			if !ok {
				return nil
			}
			if err := s.checkBudget(ctx, start); err != nil {
				return err
			}
			children, err := s.process(ctx, rc)
			if err != nil {
				return err
			}
			for _, c := range children {
				f.push(c)
			}
		}
	}
	return s.driveParallel(ctx, f, start)
}

// processOutcome is a worker's report back to the scheduler.
type processOutcome struct {
	children []regionCtx
	err      error
}

// driveParallel is the worker-pool driver. A single scheduler goroutine
// (this one) owns the frontier and dispatches regions to workers over a
// channel; workers report children and errors back on a second channel.
// The scheduler stops dispatching on the first error or context
// cancellation, drains in-flight work, and only then returns, so no
// worker is left writing to a closed or abandoned channel.
func (s *solver) driveParallel(ctx context.Context, f frontier, start time.Time) error {
	tasks := make(chan regionCtx)
	outcomes := make(chan processOutcome)
	done := make(chan struct{})
	defer close(done)

	for w := 0; w < s.opt.Workers; w++ {
		go func() {
			for rc := range tasks {
				children, err := s.process(ctx, rc)
				if err == nil {
					err = s.checkBudget(ctx, start)
				}
				select {
				case outcomes <- processOutcome{children: children, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	defer close(tasks)

	var (
		firstErr    error
		inflight    int
		pending     regionCtx
		havePending bool
		ctxDone     = ctx.Done()
	)
	for {
		if !havePending && firstErr == nil {
			pending, havePending = f.pop()
		}
		if inflight == 0 && (firstErr != nil || !havePending) {
			return firstErr
		}
		sendCh := chan regionCtx(nil)
		if havePending && firstErr == nil {
			sendCh = tasks
		}
		select {
		case sendCh <- pending:
			pending = regionCtx{}
			havePending = false
			inflight++
		case out := <-outcomes:
			inflight--
			if out.err != nil && firstErr == nil {
				firstErr = out.err
			}
			for _, c := range out.children {
				f.push(c)
			}
		case <-ctxDone:
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			ctxDone = nil // drain in-flight work without re-firing
		}
	}
}
