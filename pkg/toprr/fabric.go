package toprr

// Coordinator side of the solve fabric: WithRemoteShards routes each
// configured shard's partial solve to its owning worker process over
// the internal/fabric wire protocol, gathers the returned constraint
// chunks into the same mergePartials path an in-process sharded solve
// uses, and falls back to local scoring — bit-identically, since remote
// and local partials are the same computation at the same generation —
// on any timeout, connection error, refusal or hedge expiry.
// docs/FABRIC.md specifies the protocol and the fallback contract.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"toprr/internal/fabric"
	"toprr/internal/vec"
)

// RemoteShards configures an engine's coordinator mode: which solve
// shards route to which worker process. Shards not owned by any worker
// stay local, so a partial assignment scatters only part of each solve.
type RemoteShards struct {
	// Workers maps a worker address (host:port) to the shard indices it
	// owns. A shard may have at most one owner; an index outside the
	// engine's shard range is rejected by OpenEngine (note a durable
	// engine keeps the shard layout its snapshot records, which is then
	// the range that applies).
	Workers map[string][]int
	// Dataset names the dataset pinned by the connection handshake
	// (default "default"; a Registry pins each tenant's own name).
	Dataset string
	// Timeout bounds one partial round trip (default fabric
	// DefaultTimeout). Syncs get a 10x budget.
	Timeout time.Duration
	// DialTimeout bounds a TCP connect (default fabric
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// Hedge is the deadline fraction after which a remote partial is
	// re-dispatched locally and the straggler discarded (default
	// topk.DefaultHedgeDelay).
	Hedge time.Duration
	// Conns sets the pipelined connections per worker (default fabric
	// DefaultConns).
	Conns int
	// Serial disables pipelining — one in-flight request per connection.
	// It exists as the benchmark referee for the fabric experiment, not
	// for production use.
	Serial bool
}

// WithRemoteShards puts the engine in coordinator mode over the given
// worker fleet. Solves keep working — and keep their exact results —
// when every worker is down; the fabric only relocates scoring work.
func WithRemoteShards(cfg RemoteShards) EngineOption {
	return func(e *Engine) { c := cfg; e.remoteCfg = &c }
}

// FabricStats is a coordinator's cumulative fabric accounting, the
// remote plane's counters joined with the wire totals summed over the
// worker pool.
type FabricStats struct {
	RemotePartials   int64 // partials served by remote workers
	HedgedDispatches int64 // remote fetches abandoned to a hedged local dispatch
	Fallbacks        int64 // remote attempts answered locally after an error or refusal
	BytesOut         int64 // request bytes written, framing included
	BytesIn          int64 // response bytes read
	MaxInflight      int64 // peak pipelining depth across the pool
	Workers          int   // configured worker processes
}

// fabricWorker is one worker's slot in the router: the connection pool
// plus the resync busy-flag that keeps at most one full-state push to
// that worker in flight.
type fabricWorker struct {
	addr    string
	cl      *fabric.Client
	syncing atomic.Bool
}

// fabricRouter implements topk.RemotePartialer over the worker fleet:
// Owns consults the shard→owner table, Partial runs the wire round
// trip, and refusals that mark a stale or restarted worker kick an
// asynchronous full-state resync (never a replay — workers are
// stateless readers) while the solve falls back locally.
type fabricRouter struct {
	eng     *Engine
	workers []*fabricWorker
	owner   []*fabricWorker // shard index → owning worker (nil = local)
	timeout time.Duration   // per-partial budget, used to bound resyncs too
}

// errShardLocal reports a Partial call for a shard no worker owns; the
// remote plane never issues one (Owns gates it), so it only guards
// against misuse.
var errShardLocal = errors.New("toprr: shard has no remote owner")

// newFabricRouter validates the shard assignment against the engine's
// (possibly persisted) shard count and builds the per-worker pools.
// Connections dial lazily — a fleet that is down at OpenEngine time
// costs nothing until a solve first routes to it.
func newFabricRouter(e *Engine, cfg RemoteShards) (*fabricRouter, error) {
	fr := &fabricRouter{
		eng:     e,
		owner:   make([]*fabricWorker, e.shards),
		timeout: cfg.Timeout,
	}
	if fr.timeout <= 0 {
		fr.timeout = fabric.DefaultTimeout
	}
	for addr, shards := range cfg.Workers {
		if addr == "" {
			return nil, fmt.Errorf("toprr: remote shards: empty worker address")
		}
		w := &fabricWorker{
			addr: addr,
			cl: fabric.NewClient(fabric.ClientConfig{
				Addr:        addr,
				Dataset:     cfg.Dataset,
				Conns:       cfg.Conns,
				Timeout:     cfg.Timeout,
				DialTimeout: cfg.DialTimeout,
				Serial:      cfg.Serial,
			}),
		}
		for _, s := range shards {
			if s < 0 || s >= e.shards {
				return nil, fmt.Errorf("toprr: remote shards: worker %s owns shard %d, engine has shards [0, %d)", addr, s, e.shards)
			}
			if prev := fr.owner[s]; prev != nil {
				return nil, fmt.Errorf("toprr: remote shards: shard %d owned by both %s and %s", s, prev.addr, addr)
			}
			fr.owner[s] = w
		}
		fr.workers = append(fr.workers, w)
	}
	return fr, nil
}

// Owns reports whether a shard routes to a worker.
func (fr *fabricRouter) Owns(shard int) bool {
	return shard >= 0 && shard < len(fr.owner) && fr.owner[shard] != nil
}

// Partial fetches one shard's partial from its owner at exactly
// generation gen. A nil members means the shard's full member list
// under the worker's own assignment; otherwise the ascending slots ship
// with the request (active-set configurations). A worker known to be at
// a different generation is not asked — the call fails immediately (the
// solve computes locally) and a resync starts in the background;
// likewise a worker that refuses with a generation mismatch or
// not-synced is re-pinned asynchronously.
func (fr *fabricRouter) Partial(ctx context.Context, gen uint64, shard, k int, w vec.Vector, members []int) ([]int, []float64, error) {
	fw := fr.owner[shard]
	if fw == nil {
		return nil, nil, errShardLocal
	}
	if synced := fw.cl.SyncedGen(); synced != gen {
		// Stale (or pinned-old-generation) solve: the worker holds one
		// generation and it is not this one. Skip the doomed round trip;
		// push the current state in the background if the worker is
		// behind it.
		if synced < fr.eng.store.Snapshot().Scorer.Generation() || synced < gen {
			fr.resync(fw, false)
		}
		return nil, nil, fmt.Errorf("%w: worker %s synced at generation %d, want %d", fabric.ErrGenMismatch, fw.addr, synced, gen)
	}
	var m32 []uint32
	if len(members) > 0 {
		m32 = make([]uint32, len(members))
		for i, s := range members {
			m32[i] = uint32(s)
		}
	}
	idx32, scores, err := fw.cl.Partial(ctx, gen, shard, k, w, m32)
	if err != nil {
		if errors.Is(err, fabric.ErrGenMismatch) || errors.Is(err, fabric.ErrNotSynced) {
			// The worker's actual state disagrees with what this client
			// pushed — the restart signature. Forget the recorded sync so
			// the re-push is not skipped as already-done.
			fr.resync(fw, true)
		}
		return nil, nil, err
	}
	idx := make([]int, len(idx32))
	for i, v := range idx32 {
		idx[i] = int(v)
	}
	return idx, scores, nil
}

// resync pushes the current dataset generation to one worker in the
// background, at most one push per worker at a time. force forgets the
// client's recorded sync first (worker-restart recovery).
func (fr *fabricRouter) resync(fw *fabricWorker, force bool) {
	if !fw.syncing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer fw.syncing.Store(false)
		if force {
			fw.cl.ResetSync()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*fr.timeout)
		defer cancel()
		// Best effort: a failed push leaves the worker unsynced and its
		// shards answering locally; the next refusal retries.
		fr.syncTo(ctx, fw) //nolint:errcheck
	}()
}

// syncTo ships the current generation's full state to one worker. The
// flattening copy is the cost of "resync, don't replay": a worker
// rejoins by replacing its copy wholesale, so no op log is kept for it.
func (fr *fabricRouter) syncTo(ctx context.Context, fw *fabricWorker) error {
	sc := fr.eng.store.Snapshot().Scorer
	gen := sc.Generation()
	if fw.cl.SyncedGen() >= gen {
		return nil
	}
	pts := sc.Points()
	d := sc.Dim()
	flat := make([]float64, 0, len(pts)*d)
	for _, p := range pts {
		flat = append(flat, p...)
	}
	return fw.cl.Sync(ctx, fabric.SyncMsg{
		Gen:    gen,
		Shards: uint32(fr.eng.shards),
		Dim:    uint32(d),
		Pts:    flat,
	})
}

// syncAll pushes the current generation to every worker, synchronously;
// the first error wins but every worker is attempted.
func (fr *fabricRouter) syncAll(ctx context.Context) error {
	var first error
	for _, fw := range fr.workers {
		if err := fr.syncTo(ctx, fw); err != nil && first == nil {
			first = fmt.Errorf("toprr: sync worker %s: %w", fw.addr, err)
		}
	}
	return first
}

// wire sums the pool's transport counters.
func (fr *fabricRouter) wire() (out, in, maxInflight int64) {
	for _, fw := range fr.workers {
		ws := fw.cl.Wire()
		out += ws.BytesOut
		in += ws.BytesIn
		if ws.MaxInflight > maxInflight {
			maxInflight = ws.MaxInflight
		}
	}
	return out, in, maxInflight
}

// drain quiesces every worker pool: new remote fetches fail fast (their
// shards answer locally — the solve plane never notices), in-flight
// requests get until ctx to finish, then the connections close with a
// clean FIN.
func (fr *fabricRouter) drain(ctx context.Context) error {
	var first error
	for _, fw := range fr.workers {
		if err := fw.cl.Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close tears every pool down immediately.
func (fr *fabricRouter) close() {
	for _, fw := range fr.workers {
		fw.cl.Close()
	}
}

// SyncRemote pushes the current dataset generation to every configured
// fabric worker and returns the first error (nil when the engine has no
// fabric). Solves route remotely only at generations a worker has been
// pinned to; the background resync converges there on its own, and
// SyncRemote exists for callers that want the remote path warm now —
// after boot, or deterministically in tests and benchmarks.
func (e *Engine) SyncRemote(ctx context.Context) error {
	if e.fabric == nil {
		return nil
	}
	return e.fabric.syncAll(ctx)
}

// DrainFabric gracefully quiesces the engine's fabric connections: new
// remote fetches fail fast and their shards answer locally, in-flight
// requests get until ctx expires, then the connections close cleanly.
// A nil error means every in-flight request finished. No-op without
// coordinator mode; solving continues — entirely locally — after the
// drain.
func (e *Engine) DrainFabric(ctx context.Context) error {
	if e.fabric == nil {
		return nil
	}
	return e.fabric.drain(ctx)
}

// FabricStats reports the coordinator's cumulative fabric counters
// (zero-valued without coordinator mode).
func (e *Engine) FabricStats() FabricStats {
	if e.fabric == nil || e.remotePlane == nil {
		return FabricStats{}
	}
	rs := e.remotePlane.Stats()
	out, in, depth := e.fabric.wire()
	return FabricStats{
		RemotePartials:   rs.Partials,
		HedgedDispatches: rs.Hedged,
		Fallbacks:        rs.Fallbacks,
		BytesOut:         out,
		BytesIn:          in,
		MaxInflight:      depth,
		Workers:          len(e.fabric.workers),
	}
}
