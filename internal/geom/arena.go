package geom

// Per-solve slab allocation for the clip hot path. Assembling oR clips
// the option box by hundreds-to-thousands of impact halfspaces; without
// reuse every clip heap-allocates evaluation buffers, cut points and
// tight-set bitsets that die one clip later. An Arena bump-allocates
// vertex storage from recycled blocks, and a Scratch bundles the
// transient buffers Split/Clip need, recycled through a sync.Pool.
//
// Ownership rule for every pooled object in this package (Scratch via
// GetScratch/Release, Fold via NewFold/Release): the object is owned by
// exactly one goroutine from Get until Release, and no reference into
// its buffers — including any *Polytope whose storage an Arena backs —
// may outlive Release. Anything that must escape a solve is deep-copied
// out first (Fold.Detach). Violating this rule is a data race: the pool
// hands the same buffers to another goroutine after Release.

import (
	"sync"

	"toprr/internal/vec"
)

// arenaChunk is the block size (in elements) arenas allocate at a time.
const arenaChunk = 4096

// Arena is a bump allocator over chunked slabs of float64 (vertex
// coordinates) and uint64 (tight-set words). Reset recycles all slabs
// without freeing them, invalidating every slice previously returned.
// The zero Arena is ready to use. Not goroutine-safe.
type Arena struct {
	fblocks [][]float64
	fbi     int
	foff    int
	ublocks [][]uint64
	ubi     int
	uoff    int
}

// Floats returns an owned, zero-length-capacity-exact slice of n floats
// from the arena. Contents are unspecified (callers overwrite).
func (a *Arena) Floats(n int) []float64 {
	for {
		if a.fbi < len(a.fblocks) {
			blk := a.fblocks[a.fbi]
			if a.foff+n <= len(blk) {
				s := blk[a.foff : a.foff+n : a.foff+n]
				a.foff += n
				return s
			}
			a.fbi++
			a.foff = 0
			continue
		}
		size := arenaChunk
		if n > size {
			size = n
		}
		a.fblocks = append(a.fblocks, make([]float64, size))
	}
}

// Uints returns an owned slice of n uint64 words from the arena.
// Contents are unspecified (callers overwrite).
func (a *Arena) Uints(n int) []uint64 {
	for {
		if a.ubi < len(a.ublocks) {
			blk := a.ublocks[a.ubi]
			if a.uoff+n <= len(blk) {
				s := blk[a.uoff : a.uoff+n : a.uoff+n]
				a.uoff += n
				return s
			}
			a.ubi++
			a.uoff = 0
			continue
		}
		size := arenaChunk
		if n > size {
			size = n
		}
		a.ublocks = append(a.ublocks, make([]uint64, size))
	}
}

// Reset recycles the arena: every slice previously returned by Floats or
// Uints becomes invalid and its storage is reused by later allocations.
func (a *Arena) Reset() {
	a.fbi, a.foff = 0, 0
	a.ubi, a.uoff = 0, 0
}

// Scratch holds the transient buffers one Split/Clip call chain needs:
// evaluations, candidate points, tight pairs and halfspace staging. See
// the package ownership rule above: one goroutine from GetScratch until
// Release, no retained references afterward.
type Scratch struct {
	evals   []float64
	seen    map[uint64]struct{}
	uniq    []vec.Vector
	cut     []vec.Vector
	negPts  []vec.Vector
	posPts  []vec.Vector
	pairH   []int32
	pairV   []int32
	keptNew []int32
	hsBuf   []Halfspace
}

var scratchPool = sync.Pool{New: func() any {
	return &Scratch{seen: make(map[uint64]struct{}, 64)}
}}

// GetScratch leases a Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the scratch to the pool. The caller must hold no
// references into its buffers past this call.
func (s *Scratch) Release() { scratchPool.Put(s) }

// evalsFor returns the evaluation buffer resized to n.
func (s *Scratch) evalsFor(n int) []float64 {
	if cap(s.evals) < n {
		s.evals = make([]float64, n)
	}
	s.evals = s.evals[:n]
	return s.evals
}
