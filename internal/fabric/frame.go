package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ProtoVersion is the wire protocol version. A frame carrying any other
// version is rejected at decode, so mixed deployments fail the
// handshake loudly instead of misparsing payloads.
const ProtoVersion = 1

// MaxFrame bounds one frame's wire size (length prefix included). A
// sync frame carries a whole dataset generation, so the bound is
// generous; anything larger is surely a corrupt length prefix.
const MaxFrame = 256 << 20

// frameOverhead is the fixed wire size around a payload: u32 length
// prefix + u8 version + u8 type + u64 request id + u32 CRC.
const frameOverhead = 4 + 1 + 1 + 8 + 4

// FrameType discriminates protocol messages.
type FrameType uint8

// The protocol's frame types. Hello/HelloAck open a connection and pin
// it to one dataset; Sync installs a dataset generation on a worker;
// PartialReq/PartialResp are the scatter-gather unit (one shard's
// partial top-k at one vertex); StatsReq/StatsResp expose worker-side
// counters; Error carries a typed refusal for any request frame.
const (
	FrameHello FrameType = iota + 1
	FrameHelloAck
	FrameSync
	FrameSyncAck
	FramePartialReq
	FramePartialResp
	FrameStatsReq
	FrameStatsResp
	FrameError
	frameTypeEnd
)

// Frame is one decoded protocol frame.
type Frame struct {
	Type    FrameType
	ReqID   uint64
	Payload []byte
}

// Decode errors. ErrFrameTooShort means the buffer ends before the
// frame does (a torn tail: read more, or reject the stream); the other
// errors mark the stream unrecoverable.
var (
	ErrFrameTooShort = errors.New("fabric: truncated frame")
	ErrFrameCorrupt  = errors.New("fabric: corrupt frame")
	ErrBadVersion    = errors.New("fabric: protocol version mismatch")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame encodes f onto dst and returns the extended buffer. The
// layout is: u32 length (everything after the prefix), u8 version, u8
// type, u64 request id, payload, u32 CRC-32C over version..payload.
func AppendFrame(dst []byte, f Frame) []byte {
	body := 1 + 1 + 8 + len(f.Payload) + 4
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, ProtoVersion, byte(f.Type))
	dst = binary.BigEndian.AppendUint64(dst, f.ReqID)
	dst = append(dst, f.Payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// DecodeFrame decodes one frame from the head of buf, returning the
// frame and the bytes consumed. ErrFrameTooShort reports an incomplete
// frame (the caller reads more input); ErrFrameCorrupt and
// ErrBadVersion reject the stream.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, ErrFrameTooShort
	}
	body := binary.BigEndian.Uint32(buf)
	if int64(body)+4 > MaxFrame || body < 1+1+8+4 {
		return Frame{}, 0, fmt.Errorf("%w: body length %d", ErrFrameCorrupt, body)
	}
	total := int(body) + 4
	if len(buf) < total {
		return Frame{}, 0, ErrFrameTooShort
	}
	raw := buf[4:total]
	crcWant := binary.BigEndian.Uint32(raw[len(raw)-4:])
	checked := raw[:len(raw)-4]
	if crc32.Checksum(checked, crcTable) != crcWant {
		return Frame{}, 0, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	if checked[0] != ProtoVersion {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, checked[0], ProtoVersion)
	}
	t := FrameType(checked[1])
	if t == 0 || t >= frameTypeEnd {
		return Frame{}, 0, fmt.Errorf("%w: unknown frame type %d", ErrFrameCorrupt, t)
	}
	f := Frame{
		Type:  t,
		ReqID: binary.BigEndian.Uint64(checked[2:10]),
	}
	if len(checked) > 10 {
		f.Payload = append([]byte(nil), checked[10:]...)
	}
	return f, total, nil
}

// WriteFrame encodes f onto w, returning the bytes written.
func WriteFrame(w io.Writer, f Frame) (int, error) {
	return w.Write(AppendFrame(nil, f))
}

// ReadFrame reads exactly one frame from r, returning it and the bytes
// consumed. Streams ending mid-frame return ErrFrameTooShort (wrapped
// over the underlying io error when there was one).
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, 0, io.EOF
		}
		return Frame{}, 0, fmt.Errorf("%w: %v", ErrFrameTooShort, err)
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if int64(body)+4 > MaxFrame || body < 1+1+8+4 {
		return Frame{}, 0, fmt.Errorf("%w: body length %d", ErrFrameCorrupt, body)
	}
	buf := make([]byte, 4+body)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return Frame{}, 0, fmt.Errorf("%w: %v", ErrFrameTooShort, err)
	}
	return DecodeFrame(buf)
}

// Typed worker refusals carried by FrameError payloads.
const (
	CodeGenMismatch    = 1 // worker holds a different generation than the request names
	CodeNotSynced      = 2 // worker has no generation for the dataset yet
	CodeBadRequest     = 3 // malformed or out-of-range request
	CodeInternal       = 4 // worker-side failure
	CodeUnknownDataset = 5 // handshake or request names a dataset the worker refuses
)

// Sentinel errors the client maps refusal codes onto. The coordinator
// treats every one of them — like any transport error — as "answer this
// shard locally"; ErrGenMismatch and ErrNotSynced additionally trigger
// a background resync.
var (
	ErrGenMismatch = errors.New("fabric: generation mismatch")
	ErrNotSynced   = errors.New("fabric: worker not synced")
	ErrBadRequest  = errors.New("fabric: bad request")
	ErrRemote      = errors.New("fabric: worker error")
)

// codeErr maps a refusal code to its sentinel.
func codeErr(code uint32, msg string) error {
	switch code {
	case CodeGenMismatch:
		return fmt.Errorf("%w: %s", ErrGenMismatch, msg)
	case CodeNotSynced:
		return fmt.Errorf("%w: %s", ErrNotSynced, msg)
	case CodeBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, msg)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}

// Hello opens a connection: it names the dataset every subsequent frame
// on the connection refers to.
type Hello struct {
	Dataset string
}

// HelloAck answers a Hello with the generation the worker currently
// holds for the dataset (0 = not yet synced).
type HelloAck struct {
	Gen    uint64
	Shards uint32
}

// SyncMsg installs one dataset generation on a worker: the full option
// matrix (row-major, n x dim) plus the shard count of the coordinator's
// solve plane. Workers are stateless readers — they replace, never
// replay.
type SyncMsg struct {
	Gen    uint64
	Shards uint32
	Dim    uint32
	Pts    []float64 // len = n*Dim
}

// PartialReq asks for one shard's partial top-k at vertex W, valid only
// at exactly generation Gen. An empty Members means the shard's full
// member list under the worker's own content-hash assignment (the
// whole-dataset configuration); a non-empty Members restricts the
// partial to exactly those option slots, ascending — how prefiltered
// and derived configurations scatter without the worker knowing the
// coordinator's active sets.
type PartialReq struct {
	Gen     uint64
	Shard   uint32
	K       uint32
	W       []float64
	Members []uint32
}

// PartialResp is one shard's partial top-k: the best min(k, |shard|)
// member slots in (score desc, index asc) order with their exact
// float64 score bits — the constraint chunk the coordinator's k-way
// merge consumes unchanged.
type PartialResp struct {
	Gen    uint64
	Idx    []uint32
	Scores []float64
}

// StatsResp reports worker-side counters for the connection's dataset.
type StatsResp struct {
	Gen      uint64
	Partials uint64 // partials computed since sync
	Hits     uint64 // partials served from the worker memo
}

// ErrorMsg is a typed refusal.
type ErrorMsg struct {
	Code uint32
	Msg  string
}

// Payload encoders/decoders. All integers are big-endian; float64s
// travel as raw IEEE-754 bits so worker-computed scores are
// bit-identical to coordinator-computed ones.

func appendU32(b []byte, v uint32) []byte  { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte  { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: short payload", ErrFrameCorrupt)
	}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFrameCorrupt, len(r.b)-r.off)
	}
	return nil
}

func (h Hello) encode() []byte {
	b := appendU32(nil, uint32(len(h.Dataset)))
	return append(b, h.Dataset...)
}

func decodeHello(b []byte) (Hello, error) {
	r := &reader{b: b}
	n := r.u32()
	name := r.bytes(int(n))
	if err := r.done(); err != nil {
		return Hello{}, err
	}
	return Hello{Dataset: string(name)}, nil
}

func (h HelloAck) encode() []byte {
	return appendU32(appendU64(nil, h.Gen), h.Shards)
}

func decodeHelloAck(b []byte) (HelloAck, error) {
	r := &reader{b: b}
	ack := HelloAck{Gen: r.u64(), Shards: r.u32()}
	return ack, r.done()
}

func (m SyncMsg) encode() []byte {
	if m.Dim == 0 {
		panic("fabric: sync with dim 0")
	}
	b := make([]byte, 0, 8+4+4+4+8*len(m.Pts))
	b = appendU64(b, m.Gen)
	b = appendU32(b, m.Shards)
	b = appendU32(b, m.Dim)
	b = appendU32(b, uint32(len(m.Pts)/int(m.Dim)))
	for _, x := range m.Pts {
		b = appendF64(b, x)
	}
	return b
}

func decodeSync(b []byte) (SyncMsg, error) {
	r := &reader{b: b}
	m := SyncMsg{Gen: r.u64(), Shards: r.u32(), Dim: r.u32()}
	n := r.u32()
	if r.err == nil {
		if m.Dim == 0 || m.Dim > 1024 {
			return SyncMsg{}, fmt.Errorf("%w: sync dim %d", ErrFrameCorrupt, m.Dim)
		}
		want := int(n) * int(m.Dim)
		if len(r.b)-r.off != want*8 {
			return SyncMsg{}, fmt.Errorf("%w: sync payload %d bytes, want %d", ErrFrameCorrupt, len(r.b)-r.off, want*8)
		}
		m.Pts = make([]float64, want)
		for i := range m.Pts {
			m.Pts[i] = r.f64()
		}
	}
	return m, r.done()
}

func (m PartialReq) encode() []byte {
	b := make([]byte, 0, 8+4+4+4+8*len(m.W)+4+4*len(m.Members))
	b = appendU64(b, m.Gen)
	b = appendU32(b, m.Shard)
	b = appendU32(b, m.K)
	b = appendU32(b, uint32(len(m.W)))
	for _, x := range m.W {
		b = appendF64(b, x)
	}
	b = appendU32(b, uint32(len(m.Members)))
	for _, s := range m.Members {
		b = appendU32(b, s)
	}
	return b
}

func decodePartialReq(b []byte) (PartialReq, error) {
	r := &reader{b: b}
	m := PartialReq{Gen: r.u64(), Shard: r.u32(), K: r.u32()}
	n := r.u32()
	if r.err == nil {
		if n > 1024 {
			return PartialReq{}, fmt.Errorf("%w: vertex dim %d", ErrFrameCorrupt, n)
		}
		m.W = make([]float64, n)
		for i := range m.W {
			m.W[i] = r.f64()
		}
	}
	mc := r.u32()
	if r.err == nil && mc > 0 {
		if len(r.b)-r.off != int(mc)*4 {
			return PartialReq{}, fmt.Errorf("%w: member list %d bytes for %d slots", ErrFrameCorrupt, len(r.b)-r.off, mc)
		}
		m.Members = make([]uint32, mc)
		for i := range m.Members {
			m.Members[i] = r.u32()
			if i > 0 && m.Members[i] <= m.Members[i-1] {
				return PartialReq{}, fmt.Errorf("%w: member list not ascending", ErrFrameCorrupt)
			}
		}
	}
	return m, r.done()
}

func (m PartialResp) encode() []byte {
	b := make([]byte, 0, 8+4+12*len(m.Idx))
	b = appendU64(b, m.Gen)
	b = appendU32(b, uint32(len(m.Idx)))
	for i := range m.Idx {
		b = appendU32(b, m.Idx[i])
		b = appendF64(b, m.Scores[i])
	}
	return b
}

func decodePartialResp(b []byte) (PartialResp, error) {
	r := &reader{b: b}
	m := PartialResp{Gen: r.u64()}
	n := r.u32()
	if r.err == nil {
		if len(r.b)-r.off != int(n)*12 {
			return PartialResp{}, fmt.Errorf("%w: partial payload %d bytes for %d entries", ErrFrameCorrupt, len(r.b)-r.off, n)
		}
		m.Idx = make([]uint32, n)
		m.Scores = make([]float64, n)
		for i := range m.Idx {
			m.Idx[i] = r.u32()
			m.Scores[i] = r.f64()
		}
	}
	return m, r.done()
}

func (m StatsResp) encode() []byte {
	return appendU64(appendU64(appendU64(nil, m.Gen), m.Partials), m.Hits)
}

func decodeStatsResp(b []byte) (StatsResp, error) {
	r := &reader{b: b}
	m := StatsResp{Gen: r.u64(), Partials: r.u64(), Hits: r.u64()}
	return m, r.done()
}

func (m ErrorMsg) encode() []byte {
	b := appendU32(nil, m.Code)
	b = appendU32(b, uint32(len(m.Msg)))
	return append(b, m.Msg...)
}

func decodeError(b []byte) (ErrorMsg, error) {
	r := &reader{b: b}
	m := ErrorMsg{Code: r.u32()}
	n := r.u32()
	msg := r.bytes(int(n))
	if err := r.done(); err != nil {
		return ErrorMsg{}, err
	}
	m.Msg = string(msg)
	return m, nil
}
