package topk

// The remote partial plane: a sharded cache may route the computation
// of a shard's per-vertex partial to that shard's owning worker process
// instead of scoring locally. The owner runs the same PartialTopK over
// the same generation's member list, so a remote answer is
// bit-identical to the local one — which is what makes the fallback
// free: on any transport error, worker refusal, generation mismatch or
// hedge expiry the coordinator just computes the partial itself, and
// the solve's result cannot depend on which side answered. Remote or
// local, every partial feeds the same mergePartials.

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"toprr/internal/vec"
)

// PartialTopK computes one shard's partial top-k — the best
// min(k, len(members)) member slots at vertex w in (score desc, index
// asc) order, with their exact scores. It is the extraction the fabric
// worker serves: coordinator-side shard memos and worker processes run
// exactly this computation, so their answers are interchangeable bit
// for bit.
func PartialTopK(sc *Scorer, members []int, w vec.Vector, k int) ([]int, []float64) {
	p := computePartial(sc, members, w, k)
	return p.idx, p.scores
}

// RemotePartialer fetches one shard's partial from its owner. Owns
// reports whether a shard is remote-routed at all; Partial must answer
// at exactly generation gen or fail (typically with the fabric
// package's ErrGenMismatch). A nil members asks for the shard's full
// member list under the worker's own assignment; otherwise the partial
// covers exactly the given ascending slots (how prefiltered
// configurations scatter). Implementations are safe for concurrent use.
type RemotePartialer interface {
	Owns(shard int) bool
	Partial(ctx context.Context, gen uint64, shard, k int, w vec.Vector, members []int) (idx []int, scores []float64, err error)
}

// DefaultHedgeDelay is the deadline fraction after which a remote
// partial is hedged with a local dispatch: past it the coordinator
// computes the shard itself and discards whatever the straggler
// eventually answers.
const DefaultHedgeDelay = 250 * time.Millisecond

// RemoteStats is the remote plane's cumulative accounting.
type RemoteStats struct {
	Partials  int64 // partials served by remote owners
	Hedged    int64 // hedged local dispatches (remote answer abandoned after the hedge delay)
	Fallbacks int64 // remote attempts answered locally after an error or refusal
}

// RemotePlane couples a RemotePartialer with the hedging policy and the
// attribution counters, and is shared by every sharded cache of a
// registry. Whole-dataset (nil active set) configurations scatter by
// shard index alone; active-set configurations — notably the
// prefiltered root configuration every solve runs on — ship each
// shard's member slots with the request, so the worker computes over
// exactly the coordinator's subset without knowing how it was derived.
type RemotePlane struct {
	r     RemotePartialer
	hedge time.Duration

	partials  atomic.Int64
	hedged    atomic.Int64
	fallbacks atomic.Int64
	perShard  []atomic.Int64
}

// NewRemotePlane builds a remote plane over r for a solve plane of the
// given shard count. hedge <= 0 keeps DefaultHedgeDelay.
func NewRemotePlane(r RemotePartialer, hedge time.Duration, shards int) *RemotePlane {
	if hedge <= 0 {
		hedge = DefaultHedgeDelay
	}
	return &RemotePlane{r: r, hedge: hedge, perShard: make([]atomic.Int64, shards)}
}

// Owns reports whether shard routes to a remote owner.
func (rp *RemotePlane) Owns(shard int) bool { return rp.r.Owns(shard) }

// Stats snapshots the plane's counters.
func (rp *RemotePlane) Stats() RemoteStats {
	return RemoteStats{
		Partials:  rp.partials.Load(),
		Hedged:    rp.hedged.Load(),
		Fallbacks: rp.fallbacks.Load(),
	}
}

// ShardRemotes reports the remote partials served per shard.
func (rp *RemotePlane) ShardRemotes() []int64 {
	out := make([]int64, len(rp.perShard))
	for i := range rp.perShard {
		out[i] = rp.perShard[i].Load()
	}
	return out
}

// remoteAns carries one remote fetch's outcome to the hedging select.
type remoteAns struct {
	idx    []int
	scores []float64
	err    error
}

// fetch attempts a remote partial for one shard, hedging with a local
// dispatch: it returns the remote partial when the owner answers
// soundly before the hedge delay, and nil when the caller should
// compute locally (error, refusal, malformed answer, hedge expiry or
// cancellation — every nil is safe because local and remote answers are
// identical). shipMembers marks an active-set configuration: the
// member slots travel with the request instead of being derived from
// the worker's assignment. The fetched vertex is cloned before crossing
// the goroutine boundary: w may live in a recycled solver arena
// (members is immutable per generation, so it crosses as is).
func (rp *RemotePlane) fetch(ctx context.Context, sc *Scorer, members []int, shard int, w vec.Vector, k int, shipMembers bool) *partial {
	if ctx == nil {
		ctx = context.Background()
	}
	gen := sc.Generation()
	wr := w.Clone()
	var explicit []int
	if shipMembers {
		explicit = members
	}
	ch := make(chan remoteAns, 1)
	go func() {
		idx, scores, err := rp.r.Partial(ctx, gen, shard, k, wr, explicit)
		ch <- remoteAns{idx: idx, scores: scores, err: err}
	}()

	timer := time.NewTimer(rp.hedge)
	defer timer.Stop()
	select {
	case a := <-ch:
		if a.err == nil && soundPartial(a.idx, a.scores, members, k) {
			rp.partials.Add(1)
			if shard < len(rp.perShard) {
				rp.perShard[shard].Add(1)
			}
			return &partial{idx: a.idx, scores: a.scores}
		}
		rp.fallbacks.Add(1)
		return nil
	case <-timer.C:
		// Hedged local dispatch: the straggler's eventual answer is
		// discarded (the buffered channel lets its goroutine finish).
		rp.hedged.Add(1)
		return nil
	case <-ctx.Done():
		return nil
	}
}

// soundPartial verifies a remote answer's structure before it enters
// the merge: exact length min(k, |members|), matching score slice,
// members of this shard only, the partial's (score desc, index asc)
// order, and finite scores. It cannot prove the scores correct — that
// is the worker contract — but it keeps a buggy worker from panicking
// or corrupting the coordinator's merge invariants; an unsound answer
// just falls back to the local computation.
func soundPartial(idx []int, scores []float64, members []int, k int) bool {
	want := k
	if len(members) < want {
		want = len(members)
	}
	if len(idx) != want || len(scores) != want {
		return false
	}
	for i := range idx {
		if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
			return false
		}
		j := sort.SearchInts(members, idx[i])
		if j >= len(members) || members[j] != idx[i] {
			return false
		}
		if i > 0 {
			if scores[i] > scores[i-1] {
				return false
			}
			if scores[i] == scores[i-1] && idx[i] <= idx[i-1] {
				return false
			}
		}
	}
	return true
}
