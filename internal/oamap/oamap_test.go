package oamap

import (
	"math/rand"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	var m Map[int]
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map claims presence")
	}
	for i := 0; i < 1000; i++ {
		m.Put(uint64(i)*0x9e37, i)
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", m.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get(uint64(i) * 0x9e37)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Overwrite does not duplicate.
	m.Put(0, -1)
	if v, _ := m.Get(0); v != -1 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.Len() != 1000 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	for i := 0; i < 500; i++ {
		if !m.Delete(uint64(i) * 0x9e37) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if m.Delete(uint64(0)) {
		t.Fatal("double delete succeeded")
	}
	if m.Len() != 500 {
		t.Fatalf("Len after deletes = %d", m.Len())
	}
	for i := 500; i < 1000; i++ {
		if _, ok := m.Get(uint64(i) * 0x9e37); !ok {
			t.Fatalf("survivor %d lost", i)
		}
	}
}

func TestRangeInsertionOrder(t *testing.T) {
	var m Map[string]
	keys := []uint64{7, 3, 99, 1, 42}
	for _, k := range keys {
		m.Put(k, "v")
	}
	var got []uint64
	m.Range(func(k uint64, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(keys))
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("Range order %v, want %v", got, keys)
		}
	}
}

func TestRangeAfterDeleteAndReinsert(t *testing.T) {
	var m Map[int]
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(3, 3)
	m.Delete(2)
	m.Put(2, 22)
	visits := map[uint64]int{}
	m.Range(func(k uint64, v int) bool {
		visits[k]++
		return true
	})
	for k, n := range visits {
		if n != 1 {
			t.Fatalf("key %d visited %d times", k, n)
		}
	}
	if len(visits) != 3 {
		t.Fatalf("visited %d keys, want 3", len(visits))
	}
	if v, _ := m.Get(2); v != 22 {
		t.Fatalf("reinserted value = %d", v)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	var m Map[int]
	for i := 0; i < 10; i++ {
		m.Put(uint64(i), i)
	}
	n := 0
	m.Range(func(uint64, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestChurnAgainstReference drives random operations against a builtin
// map oracle, exercising tombstone reuse and same-size rehashing.
func TestChurnAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map[int]
	ref := map[uint64]int{}
	for op := 0; op < 50000; op++ {
		k := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 2:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, v, ok, rv, rok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	count := 0
	m.Range(func(k uint64, v int) bool {
		if rv, ok := ref[k]; !ok || rv != v {
			t.Fatalf("Range emitted %d=%d not in reference", k, v)
		}
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("Range visited %d, want %d", count, len(ref))
	}
}

func BenchmarkWarmGet(b *testing.B) {
	var m Map[int]
	for i := 0; i < 1024; i++ {
		m.Put(uint64(i)*0x9e3779b9, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i%1024) * 0x9e3779b9)
	}
}
