package topk

import (
	"sort"
	"strconv"
	"sync"
)

// Registry interns top-k caches of one dataset by their (k, active-set)
// configuration, so that queries sharing a dataset also share memoized
// per-vertex top-k results. The TopRR recursion derives its cache
// configurations deterministically from the query region (the r-skyband
// active set, then Lemma 5 reductions), so batches of queries over
// nearby regions converge on the same configurations and amortize the
// scoring work.
//
// A Registry is generation-aware: it is bound to the scorer of one
// dataset generation and hands interned caches only to solves pinned to
// that generation (GetFor). When the store publishes a new generation,
// Advance moves the registry forward *incrementally* — configurations
// untouched by the mutation keep their memoized results; only
// configurations involving a dirty slot (or spanning the whole dataset)
// are dropped. A Registry is safe for concurrent use.
type Registry struct {
	mu            sync.Mutex
	scorer        *Scorer
	m             map[string]*Cache
	limit         int // max interned configurations
	entryLimit    int // max memoized vertices per interned cache
	evictions     int // configurations dropped by Advance or refused interning
	retiredHits   int // counters of caches dropped by Advance, kept so Stats stays monotone
	retiredMisses int

	// Patch-on-insert counters (see AdvanceInsert in patch.go).
	patchedEntries    int // memo entries changed by splices
	patchInserts      int // inserted options applied through the patch path
	untouchedAdvances int // patch advances in which no memoized top-k changed

	// Sharded plane (shards > 1): interned caches are sharded, assign
	// maps each slot of the current generation to its shard, and Advance
	// invalidates per shard instead of per configuration.
	shards int
	assign []uint8

	// remote routes shard partials to owning workers (remote.go);
	// attached to every sharded cache the registry hands out.
	remote *RemotePlane
}

// registryLimit caps the interned configurations and cacheEntryLimit
// caps each interned cache's memoized vertices. Beyond the limits, Get
// hands out unregistered caches and full caches stop storing: a
// long-lived engine keeps its hottest configurations and vertices
// without growing without bound. Both are defaults; the engine overrides
// them via SetLimits.
const (
	registryLimit   = 512
	cacheEntryLimit = 1 << 18
)

// NewRegistry builds an empty cache registry bound to one dataset
// generation's scorer.
func NewRegistry(scorer *Scorer) *Registry {
	return NewShardedRegistry(scorer, 1)
}

// NewShardedRegistry is NewRegistry with a sharded evaluation plane:
// interned caches split their memos (and their entry budgets) across
// shards, and Advance invalidates per shard — a mutation drops only the
// partials of the shards whose slots it touched, keeping the warm state
// of the rest, even for whole-dataset configurations. shards <= 1 is
// the plain unsharded registry.
func NewShardedRegistry(scorer *Scorer, shards int) *Registry {
	if shards > MaxShards {
		shards = MaxShards
	}
	if shards < 1 {
		shards = 1
	}
	r := &Registry{
		scorer:     scorer,
		m:          make(map[string]*Cache),
		limit:      registryLimit,
		entryLimit: cacheEntryLimit,
		shards:     shards,
	}
	if shards > 1 {
		r.assign = ShardAssignment(scorer, shards)
	}
	return r
}

// Shards returns the registry's shard count (1 = unsharded).
func (r *Registry) Shards() int { return r.shards }

// SetRemote attaches a remote partial plane to the registry: every
// interned sharded cache — present and future, including successors
// built by generation advances — routes remote-owned shards' partials
// through it. Attach once, before the registry serves solves.
func (r *Registry) SetRemote(rp *RemotePlane) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remote = rp
	for _, c := range r.m {
		c.SetRemote(rp)
	}
}

// SetLimits overrides the interned-configuration cap and the per-cache
// memoized-vertex cap (0 keeps the current value). It applies to caches
// interned from now on; already-interned caches keep their limit.
func (r *Registry) SetLimits(maxConfigs, maxEntriesPerCache int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if maxConfigs > 0 {
		r.limit = maxConfigs
	}
	if maxEntriesPerCache > 0 {
		r.entryLimit = maxEntriesPerCache
	}
}

// Scorer returns the dataset generation the registry currently serves.
func (r *Registry) Scorer() *Scorer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scorer
}

// configKey canonicalizes a cache configuration: the active set is
// keyed order-insensitively so permutations of the same subset share.
func configKey(k int, active []int) string {
	if active == nil {
		return strconv.Itoa(k) + "|*"
	}
	ix := append([]int(nil), active...)
	sort.Ints(ix)
	return strconv.Itoa(k) + "|" + joinInts(ix)
}

// GetFor returns the shared cache for (k, active) when sc is the
// registry's current generation, creating it on first use; it returns
// nil when sc is a different (typically older, pinned) generation, in
// which case the caller falls back to a solve-local cache. The scorer
// check happens under the registry lock, so a solve can never receive a
// cache bound to a generation other than its own.
func (r *Registry) GetFor(sc *Scorer, k int, active []int) *Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sc != r.scorer {
		return nil
	}
	return r.getLocked(k, active)
}

// Get returns the shared cache for (k, active) under the registry's
// current generation, creating it on first use. Once the registry is
// full, unseen configurations receive fresh unregistered caches instead
// of growing the registry.
func (r *Registry) Get(k int, active []int) *Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(k, active)
}

func (r *Registry) getLocked(k int, active []int) *Cache {
	key := configKey(k, active)
	if c, ok := r.m[key]; ok {
		return c
	}
	var c *Cache
	if r.shards > 1 {
		// The entry budget splits evenly across the shard memos.
		per := r.entryLimit / r.shards
		if per < 1 {
			per = 1
		}
		c = NewShardedCache(r.scorer, k, active, r.shards, per, r.assign)
		c.SetRemote(r.remote)
	} else {
		c = NewBoundedCache(r.scorer, k, active, r.entryLimit)
	}
	if len(r.m) < r.limit {
		r.m[key] = c
	} else {
		r.evictions++
	}
	return c
}

// Advance moves the registry to a new dataset generation. dirty lists
// the slots whose identity changed (see store.Delta).
//
// Unsharded: configurations spanning the whole dataset (nil active set)
// are dropped — any mutation changes their membership — as are
// configurations whose active set touches a dirty slot. Every other
// configuration is carried forward *by pointer* (an O(configs) pass,
// not a copy of the memoized maps): its active options are
// bit-identical across the two generations, so the same Cache object
// keeps serving in-flight solves pinned to the old generation and
// new-generation solves alike — both compute identical results over it
// (see Cache.rebind).
//
// Sharded: each dirty slot is routed to its owning shard(s) — the shard
// of its old contents and the shard of its new contents — and a touched
// configuration drops only those shards' partial memos, recomputing
// their member lists from the new generation; the other shards keep
// their warm partials. An insert therefore invalidates one shard of a
// whole-dataset configuration instead of the whole configuration, and a
// delete or update drops only the touched shards' slots. Configurations
// made invalid outright (an explicit active slot truncated away, or the
// dataset shrinking below k) are still dropped.
func (r *Registry) Advance(sc *Scorer, dirty []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advanceLocked(sc, dirty)
}

// advanceLocked is Advance's body; AdvanceInsert (patch.go) reuses it
// as the fallback for deltas that break the pure-insert contract.
func (r *Registry) advanceLocked(sc *Scorer, dirty []int) {
	oldLen, newLen := r.scorer.Len(), sc.Len()

	// Count the dirty slots that existed in the old generation before
	// allocating anything: a pure insert dirties only slots at or beyond
	// oldLen, which no interned active set and no old shard assignment
	// can reference, so such deltas must advance allocation-free (a
	// CI-gated invariant, see alloc_test.go).
	nOld := 0
	for _, i := range dirty {
		if i < oldLen {
			nOld++
		}
	}

	newAssign := r.assign
	if r.shards > 1 {
		if nOld == 0 && newLen >= oldLen {
			// Pure insert: no existing slot changes hands; grow the
			// assignment in place (amortized append, no per-advance copy).
			for i := oldLen; i < newLen; i++ {
				r.assign = append(r.assign, uint8(ShardOfPoint(sc.Point(i), r.shards)))
			}
			newAssign = r.assign
		} else {
			// Incrementally advance the slot-to-shard map: only dirty slots
			// can change hands (shard assignment hashes contents, which are
			// bit-identical everywhere else).
			newAssign = make([]uint8, newLen)
			copy(newAssign, r.assign)
			for _, s := range dirty {
				if s < newLen {
					newAssign[s] = uint8(ShardOfPoint(sc.Point(s), r.shards))
				}
			}
		}
	}

	// Slots at or beyond the old generation's length cannot appear in an
	// interned active set; pre-shard registries filter them so a pure
	// insert advances without touching any configuration. The set is
	// built only when some old slot actually is dirty.
	var dirtySet map[int]bool
	if nOld > 0 {
		dirtySet = make(map[int]bool, nOld)
		for _, i := range dirty {
			if i < oldLen {
				dirtySet[i] = true
			}
		}
	}

	for key, c := range r.m {
		if r.shards <= 1 {
			if c.active != nil && !touches(c.active, dirtySet) {
				c.rebind(sc)
				continue
			}
			r.dropLocked(key, c)
			continue
		}

		// Sharded plane: route the dirty slots to their owning shards.
		if c.active != nil {
			if !touches(c.active, dirtySet) {
				c.rebind(sc)
				continue
			}
			// A truncated slot leaves the active set referring to
			// nothing; the configuration is unsalvageable.
			invalid := false
			for _, s := range c.active {
				if s >= newLen {
					invalid = true
					break
				}
			}
			if invalid {
				r.dropLocked(key, c)
				continue
			}
		} else {
			// Whole-dataset configuration: every mutation is relevant
			// (any dirty slot is a member), so only an empty delta can
			// rebind-and-skip.
			if len(dirty) == 0 {
				c.rebind(sc)
				continue
			}
			if newLen < c.k {
				r.dropLocked(key, c)
				continue
			}
		}
		var inActive map[int]bool
		if c.active != nil {
			inActive = make(map[int]bool, len(c.active))
			for _, s := range c.active {
				inActive[s] = true
			}
		}
		affected := make(map[int]bool, 2*len(dirty))
		for _, s := range dirty {
			if inActive != nil && !inActive[s] {
				continue // slot outside this configuration's active set
			}
			if s < oldLen {
				affected[int(r.assign[s])] = true
			}
			if s < newLen {
				affected[int(newAssign[s])] = true
			}
		}
		// Replace the configuration with its successor rather than
		// mutating it: in-flight solves pinned to the old generation
		// keep the old object (old scorer, members and partials on the
		// affected shards), while the successor shares the unaffected
		// shards' warm memos by pointer. The old object's merged-level
		// counters fold into the retired totals so Stats stays monotone.
		next, evicted := c.cloneAdvance(sc, newAssign, affected)
		h, m := c.Stats()
		r.retiredHits += h
		r.retiredMisses += m
		r.evictions += evicted
		r.m[key] = next
	}
	r.scorer = sc
	r.assign = newAssign
}

// dropLocked retires one interned configuration, folding its counters
// into the retired totals so Stats and Evictions stay monotone across
// generations.
func (r *Registry) dropLocked(key string, c *Cache) {
	h, m := c.Stats()
	r.retiredHits += h
	r.retiredMisses += m
	r.evictions += 1 + c.Evictions()
	delete(r.m, key)
}

// touches reports whether any index of active is in dirty.
func touches(active []int, dirty map[int]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for _, i := range active {
		if dirty[i] {
			return true
		}
	}
	return false
}

// Len reports the number of interned cache configurations.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Stats sums hits and misses over every interned cache, plus those of
// caches retired by Advance (so the totals are monotone across
// generations).
func (r *Registry) Stats() (hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hits, misses = r.retiredHits, r.retiredMisses
	for _, c := range r.m {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ShardStats aggregates the per-shard cache counters across every
// interned configuration, indexed by shard id. It returns nil for an
// unsharded registry.
func (r *Registry) ShardStats() []ShardCacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shards <= 1 {
		return nil
	}
	out := make([]ShardCacheStats, r.shards)
	for i := range out {
		out[i].Shard = i
	}
	for _, c := range r.m {
		c.addShardStats(out)
	}
	if r.remote != nil {
		for i, n := range r.remote.ShardRemotes() {
			if i < len(out) {
				out[i].RemotePartials = n
			}
		}
	}
	return out
}

// Evictions reports configurations dropped by generation advances or
// refused interning at the registry cap, plus per-cache results declined
// at the entry cap.
func (r *Registry) Evictions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.evictions
	for _, c := range r.m {
		n += c.Evictions()
	}
	return n
}
