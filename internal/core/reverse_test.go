package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"toprr/internal/geom"
	"toprr/internal/vec"
)

// figure1Market is the running example of the paper (Figure 1).
func figure1Market() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
}

// TestReverseTopKSpans reproduces the quantitative shares of the
// Figure 1 market: p2 is top-3 everywhere in wR (full span), p6
// nowhere.
func TestReverseTopKSpans(t *testing.T) {
	pts := figure1Market()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	span := func(pi int) float64 {
		regions, err := ReverseTopK(pts, 3, wr, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, r := range regions {
			lo, hi := r.BoundingBox()
			total += hi[0] - lo[0]
		}
		return total
	}
	if s := span(1); math.Abs(s-0.6) > 1e-6 { // p2 spans all of wR
		t.Errorf("p2 span = %v, want 0.6", s)
	}
	if s := span(5); s > 1e-9 { // p6 is never top-3
		t.Errorf("p6 span = %v, want 0", s)
	}
}

// TestReverseTopKParallelMatches: the reverse query through the
// worker-pool driver covers the same preference span as the sequential
// one (region decompositions may differ; the covered set may not).
func TestReverseTopKParallelMatches(t *testing.T) {
	pts := figure1Market()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	span := func(regions []*geom.Polytope) float64 {
		total := 0.0
		for _, r := range regions {
			lo, hi := r.BoundingBox()
			total += hi[0] - lo[0]
		}
		return total
	}
	for pi := range pts {
		seq, err := ReverseTopK(pts, 3, wr, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := ReverseTopK(pts, 3, wr, pi, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if s, p := span(seq), span(par); math.Abs(s-p) > 1e-9 {
			t.Errorf("p%d: sequential span %v != parallel span %v", pi+1, s, p)
		}
	}
}

// TestReverseTopKContextCancelled: reverse top-k honors cancellation.
func TestReverseTopKContextCancelled(t *testing.T) {
	pts := figure1Market()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReverseTopKContext(ctx, pts, 3, wr, 0, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
