package core

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/geom"
	"toprr/internal/skyband"
	"toprr/internal/vec"
)

func TestRegionContainsMatchesPolytope(t *testing.T) {
	res := solveFig1(t)
	g := res.Region()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		o := vec.Of(rng.Float64(), rng.Float64())
		if g.Contains(o) != res.OR.Contains(o) {
			t.Fatalf("Region and polytope disagree at %v", o)
		}
	}
}

func TestRegionIntersectManufacturingConstraint(t *testing.T) {
	// Section 3.1: impose the attribute interdependency p1 + p2 <= 1.5
	// on oR after computation.
	res := solveFig1(t)
	budgeted := res.Region().Intersect(geom.NewHalfspace(vec.Of(-1, -1), -1.5))
	if budgeted.Contains(vec.Of(0.9, 0.9)) {
		t.Error("constraint p1+p2 <= 1.5 not enforced")
	}
	// A feasible corner of the constrained region still exists.
	if _, ok := budgeted.Feasible(); !ok {
		t.Fatal("constrained region should be feasible")
	}
	o, err := budgeted.CostOptimalNew()
	if err != nil {
		t.Fatal(err)
	}
	if !budgeted.Contains(o) {
		t.Fatalf("optimal %v violates the constrained region", o)
	}
	if o.Sum() > 1.5+1e-6 {
		t.Errorf("optimal %v violates the budget plane", o)
	}
	// The constrained optimum can only be costlier or equal.
	free, err := res.CostOptimalNew()
	if err != nil {
		t.Fatal(err)
	}
	if o.Dot(o) < free.Dot(free)-1e-9 {
		t.Error("adding constraints made the optimum cheaper")
	}
}

func TestRegionInfeasibleIntersection(t *testing.T) {
	res := solveFig1(t)
	impossible := res.Region().Intersect(geom.NewHalfspace(vec.Of(-1, -1), -0.1)) // p1+p2 <= 0.1
	if _, ok := impossible.Feasible(); ok {
		t.Error("region below every threshold should be infeasible")
	}
	if _, err := impossible.CostOptimalNew(); err == nil {
		t.Error("QP over infeasible region should error")
	}
}

func TestRegionMinimal(t *testing.T) {
	res := solveFig1(t)
	g := res.Region()
	min := g.Minimal()
	if len(min.HS) > len(g.HS) {
		t.Fatal("Minimal grew the constraint set")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		o := vec.Of(rng.Float64(), rng.Float64())
		if g.Contains(o) != min.Contains(o) {
			t.Fatalf("Minimal changed membership at %v", o)
		}
	}
	// Fig 1 example: oR is bounded by oH(0.2), oH(0.4), oH(2/3) plus
	// the upper box sides; at most 2 box + 4 impact constraints remain
	// (oH(0.8) is implied). Expect a clearly reduced set.
	if len(min.HS) > 6 {
		t.Errorf("minimal H-rep has %d constraints, expected <= 6", len(min.HS))
	}
}

func TestRegionEnhanceMatchesResultEnhance(t *testing.T) {
	res := solveFig1(t)
	p4 := vec.Of(0.3, 0.8)
	a, costA, err := res.Enhance(p4)
	if err != nil {
		t.Fatal(err)
	}
	b, costB, err := res.Region().Enhance(p4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costA-costB) > 1e-9 || !a.Equal(b, 1e-7) {
		t.Errorf("Result.Enhance %v/%v vs Region.Enhance %v/%v", a, costA, b, costB)
	}
	// Enhancing into a tighter region costs at least as much.
	tight := res.Region().Intersect(geom.NewHalfspace(vec.Of(1, 0), 0.6)) // perf >= 0.6
	_, costT, err := tight.Enhance(p4)
	if err != nil {
		t.Fatal(err)
	}
	if costT < costA-1e-9 {
		t.Error("tighter region cannot be cheaper to enter")
	}
}

func TestFilterSizes(t *testing.T) {
	prob := fig1Problem()
	rsky, withL5 := FilterSizes(prob)
	if rsky <= 0 || withL5 <= 0 || withL5 > rsky {
		t.Fatalf("FilterSizes = (%d, %d)", rsky, withL5)
	}
	// Independent r-skyband count.
	pts := fig1Dataset()
	direct := len(skyband.RSkyband(pts, prob.K, skyband.NewRDomVerts(prob.WR.VertexPoints())))
	if rsky != direct {
		t.Errorf("r-skyband size %d, FilterSizes reported %d", direct, rsky)
	}
	// On a dataset with a universally dominant option, Lemma 5 at the
	// root must discard it: withLemma5 < rSkyband.
	dom := append([]vec.Vector{vec.Of(0.99, 0.99)}, fig1Dataset()...)
	r2, l2 := FilterSizes(NewProblem(dom, 3, PrefBox(vec.Of(0.2), vec.Of(0.8))))
	if l2 >= r2 {
		t.Errorf("dominant option not pruned by root Lemma 5: (%d, %d)", r2, l2)
	}
}

func TestDisableTopKCacheSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	prob := randomProblem(rng, 80, 3, 5)
	a, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(prob, Options{Alg: TASStar, DisableTopKCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
		if a.IsTopRanking(o) != b.IsTopRanking(o) {
			t.Fatalf("cache ablation changed the answer at %v", o)
		}
	}
	if b.Stats.TopKMisses < a.Stats.TopKMisses {
		t.Error("pass-through cache should do at least as many computations")
	}
}

func TestRegionFeasibleCenter(t *testing.T) {
	res := solveFig1(t)
	c, ok := res.Region().Feasible()
	if !ok {
		t.Fatal("oR must be feasible")
	}
	if !res.Region().Contains(c) {
		t.Errorf("Chebyshev center %v outside region", c)
	}
}

func TestRegionPolytope(t *testing.T) {
	res := solveFig1(t)
	p := res.Region().Polytope(0)
	if p == nil || p.IsEmpty() {
		t.Fatal("region polytope missing")
	}
	if p.CanonicalKey() != res.OR.CanonicalKey() {
		t.Error("Region.Polytope disagrees with the solver's oR")
	}
}

func TestSolveUnionNonConvexWR(t *testing.T) {
	// Non-convex clientele: speed weight in [0.2, 0.35] ∪ [0.6, 0.8].
	pts := fig1Dataset()
	pieces := []*geom.Polytope{
		PrefBox(vec.Of(0.2), vec.Of(0.35)),
		PrefBox(vec.Of(0.6), vec.Of(0.8)),
	}
	union, results, err := SolveUnion(pts, 3, pieces, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d piece results", len(results))
	}
	// The union result must equal solving the covering interval
	// intersected appropriately: membership = in both pieces' oR.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		o := vec.Of(rng.Float64(), rng.Float64())
		want := results[0].IsTopRanking(o) && results[1].IsTopRanking(o)
		if union.Contains(o) != want {
			t.Fatalf("union membership wrong at %v", o)
		}
	}
	// Oracle: a sampled point of the union region is top-3 in BOTH
	// preference intervals.
	poly := union.Polytope(0)
	if poly == nil || poly.IsEmpty() {
		t.Fatal("union region should be explicit at d=2")
	}
	for i := 0; i < 10; i++ {
		o := poly.SamplePoint(rng)
		for pi, res := range results {
			if w := VerifyTopRanking(res.Problem, o, 100, rng); w != nil {
				t.Fatalf("union point %v fails piece %d at w=%v", o, pi, w)
			}
		}
	}
	// And the union is genuinely more restrictive than either piece
	// alone whenever their oRs differ.
	vol0 := results[0].OR.Volume(0)
	volU := poly.Volume(0)
	if volU > vol0+1e-9 {
		t.Error("union region larger than a piece's region")
	}
}

func TestSolveUnionPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolveUnion(fig1Dataset(), 3, nil, Options{})
}

func TestReverseTopKFig1(t *testing.T) {
	// For p3 (index 2) with k=3 over wR=[0.2, 0.8], Figure 1(d) shows p3
	// enters the top-3 exactly at w >= 2/3.
	pts := fig1Dataset()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	regions, err := ReverseTopK(pts, 3, wr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) == 0 {
		t.Fatal("p3 should be in the top-3 somewhere in wR")
	}
	lo, hi := 1.0, 0.0
	for _, r := range regions {
		l, h := r.BoundingBox()
		lo = math.Min(lo, l[0])
		hi = math.Max(hi, h[0])
	}
	if math.Abs(lo-2.0/3.0) > 1e-6 || math.Abs(hi-0.8) > 1e-6 {
		t.Errorf("p3's impact region = [%v, %v], want [2/3, 0.8]", lo, hi)
	}

	// p4 (index 3) is in the top-3 for w in [0.2, 2/3].
	regions, err = ReverseTopK(pts, 3, wr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi = 1.0, 0.0
	for _, r := range regions {
		l, h := r.BoundingBox()
		lo = math.Min(lo, l[0])
		hi = math.Max(hi, h[0])
	}
	if math.Abs(lo-0.2) > 1e-6 || math.Abs(hi-2.0/3.0) > 1e-6 {
		t.Errorf("p4's impact region = [%v, %v], want [0.2, 2/3]", lo, hi)
	}
}

func TestReverseTopKMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 6; iter++ {
		prob := randomProblem(rng, 60, 3, 4)
		pts := make([]vec.Vector, prob.Scorer.Len())
		for i := range pts {
			pts[i] = prob.Scorer.Point(i)
		}
		pi := rng.Intn(len(pts))
		regions, err := ReverseTopK(pts, prob.K, prob.WR, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		inRegions := func(w vec.Vector) bool {
			for _, r := range regions {
				if r.Contains(w) {
					return true
				}
			}
			return false
		}
		for s := 0; s < 300; s++ {
			w := prob.WR.SamplePoint(rng)
			want := prob.Scorer.TopK(w, prob.K, nil).Contains(pi)
			if got := inRegions(w); got != want {
				// Boundary points may flip either way; tolerate only
				// points near a region boundary.
				if !nearBoundary(regions, prob.WR, w) {
					t.Fatalf("iter %d: reverse top-k wrong at %v (want %v)", iter, w, want)
				}
			}
		}
	}
}

// nearBoundary reports whether w is within tolerance of any region's
// bounding hyperplane (where oracle and partition may legitimately
// disagree on ties).
func nearBoundary(regions []*geom.Polytope, wr *geom.Polytope, w vec.Vector) bool {
	const tol = 1e-6
	check := func(p *geom.Polytope) bool {
		for _, h := range p.HS {
			n := h.Normalize()
			if math.Abs(n.Eval(w)) < tol {
				return true
			}
		}
		return false
	}
	for _, r := range regions {
		if check(r) {
			return true
		}
	}
	return check(wr)
}
