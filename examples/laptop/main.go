// Laptop case study (Section 6.2 / Figure 7 of the paper).
//
// A manufacturer plans a new laptop for two different client types over
// a CNET-like market of 149 rated laptops:
//
//   - designers, who weigh performance heavily: wR = [0.7, 0.8], and
//   - business travellers, who want battery life: wR = [0.1, 0.2].
//
// For each type we compute the region oR where the new model is
// guaranteed a top-3 ranking, then the cost-optimal placement inside it
// (cost = performance^2 + battery^2), and compare with the existing
// laptops that occupy oR.
//
// Run with: go run ./examples/laptop
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/dataset"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	market := dataset.Laptops()
	fmt.Printf("market: %d laptops rated on (performance, battery)\n\n", market.Len())

	scenarios := []struct {
		who    string
		lo, hi float64
	}{
		{"designers (performance-leaning)", 0.7, 0.8},
		{"business travellers (battery-leaning)", 0.1, 0.2},
	}

	// One engine serves both clienteles, sharing the dataset's interned
	// hyperplanes and top-k caches across the queries.
	engine := toprr.NewEngine(market.Pts)
	queries := make([]toprr.Query, len(scenarios))
	for i, sc := range scenarios {
		queries[i] = toprr.Query{K: 3, WR: toprr.PrefBox(vec.Of(sc.lo), vec.Of(sc.hi))}
	}
	resultsBatch, err := engine.SolveBatch(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}

	for i, sc := range scenarios {
		fmt.Printf("=== target clientele: %s, wR=[%.1f, %.1f], k=3 ===\n", sc.who, sc.lo, sc.hi)
		res := resultsBatch[i]
		fmt.Printf("oR: %d vertices; solve took %v (|D'|=%d, |Vall|=%d)\n",
			res.OR.NumVertices(), res.Stats.Elapsed, res.Stats.FilteredOptions, res.Stats.VallSize)

		opt, err := res.CostOptimalNew()
		if err != nil {
			log.Fatal(err)
		}
		cost := opt.Dot(opt)
		fmt.Printf("cost-optimal placement: perf=%.2f battery=%.2f (cost %.3f)\n", opt[0], opt[1], cost)

		// Which existing models already sit in oR, and how much cheaper
		// is the optimal new design?
		fmt.Println("existing laptops inside oR (the direct competitors):")
		for i, p := range market.Pts {
			if res.IsTopRanking(p) {
				pc := p.Dot(p)
				fmt.Printf("  %-22s perf=%.2f battery=%.2f cost=%.3f (new design saves %.1f%%)\n",
					market.Label(i), p[0], p[1], pc, (pc-cost)/pc*100)
			}
		}
		fmt.Println()
	}
}
