package topk

// The randomized patch-vs-recompute oracle (ISSUE 7 / ROADMAP item 3):
// random mutation sequences — pure-insert batches routed through
// AdvanceInsert, deletes/updates/mixed batches through Advance — at
// shard counts 1, 2, 3 and 8, asserting after every advance that each
// memoized entry served by the patched caches is bit-identical (order,
// tie-breaks, every score) to a fresh recompute over the new
// generation. Runs under -race in CI alongside the rest of the package.

import (
	"context"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// patchOracleVertex draws a reduced weight vector safely inside the
// simplex.
func patchOracleVertex(rng *rand.Rand, d int) vec.Vector {
	w := vec.New(d - 1)
	for j := range w {
		w[j] = rng.Float64() / float64(d)
	}
	return w
}

// swapDelete removes slot i with the store's swap-delete semantics and
// returns the dirty slots it produces.
func swapDelete(pts []vec.Vector, i int) ([]vec.Vector, []int) {
	last := len(pts) - 1
	dirty := []int{i}
	if i != last {
		pts[i] = pts[last]
		dirty = append(dirty, last)
	}
	return pts[:last], dirty
}

func TestPatchAdvanceOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run(map[int]string{1: "S1", 2: "S2", 3: "S3", 8: "S8"}[shards], func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(40 + shards)))
			const k = 6
			n, d := 80, 4
			pts := randomPts(rng, n, d)
			gen := uint64(1)
			sc := NewScorerAt(append([]vec.Vector(nil), pts...), gen)
			reg := NewShardedRegistry(sc, shards)
			cache := reg.Get(k, nil)

			verts := make([]vec.Vector, 12)
			for i := range verts {
				verts[i] = patchOracleVertex(rng, d)
			}
			warm := func() {
				for _, w := range verts {
					if _, _, err := cache.LookupCtx(context.Background(), w, nil); err != nil {
						t.Fatal(err)
					}
				}
			}
			check := func(round int) {
				oracle := NewScorer(append([]vec.Vector(nil), pts...))
				for vi, w := range verts {
					got, _, err := cache.LookupCtx(context.Background(), w, nil)
					if err != nil {
						t.Fatal(err)
					}
					want := oracle.TopK(w, k, nil)
					if got.OrderKey() != want.OrderKey() || got.KthScore != want.KthScore {
						t.Fatalf("round %d vertex %d: got %v (kth %v), want %v (kth %v)",
							round, vi, got.Ordered, got.KthScore, want.Ordered, want.KthScore)
					}
					for i := range want.scores {
						if got.scores[i] != want.scores[i] {
							t.Fatalf("round %d vertex %d: score[%d] = %v, want %v",
								round, vi, i, got.scores[i], want.scores[i])
						}
					}
				}
			}

			warm()
			check(0)
			for round := 1; round <= 30; round++ {
				var dirty []int
				var inserted []int
				switch op := rng.Intn(4); {
				case op == 0 || len(pts) < k+4: // pure-insert batch
					batch := 1 + rng.Intn(3)
					for b := 0; b < batch; b++ {
						var p vec.Vector
						if rng.Intn(4) == 0 {
							// Duplicate an existing option: forces exact
							// score ties through the splice comparator.
							p = pts[rng.Intn(len(pts))].Clone()
						} else {
							p = randomPts(rng, 1, d)[0]
						}
						inserted = append(inserted, len(pts))
						pts = append(pts, p)
					}
				case op == 1: // swap-delete
					pts, dirty = swapDelete(pts, rng.Intn(len(pts)))
				case op == 2: // update in place
					i := rng.Intn(len(pts))
					pts[i] = randomPts(rng, 1, d)[0]
					dirty = []int{i}
				default: // mixed: update + insert in one batch
					i := rng.Intn(len(pts))
					pts[i] = randomPts(rng, 1, d)[0]
					dirty = []int{i, len(pts)}
					pts = append(pts, randomPts(rng, 1, d)[0])
				}
				gen++
				sc = NewScorerAt(append([]vec.Vector(nil), pts...), gen)
				if inserted != nil {
					if sum := reg.AdvanceInsert(sc, inserted); sum.Fallback {
						t.Fatalf("round %d: pure insert fell back to drop", round)
					}
				} else {
					reg.Advance(sc, dirty)
				}
				cache = reg.Get(k, nil)
				check(round) // patched entries must already be exact
				warm()       // refill what the drop path lost
				check(round)
			}

			patched, pins, _ := reg.PatchStats()
			if pins == 0 {
				t.Error("no inserts went through the patch path")
			}
			t.Logf("shards=%d: patched %d entries over %d patch-inserted options", shards, patched, pins)
		})
	}
}

// TestPatchAdvanceUntouchedInsert: an insert that cracks no memoized
// top-k (a dominated option scoring below every memoized k-th) patches
// nothing, drops nothing — entry count unchanged, merged results kept,
// post-advance lookups all hits — and reports Changed() == false: the
// region-delta signal that every standing result survived the batch.
func TestPatchAdvanceUntouchedInsert(t *testing.T) {
	for _, shards := range []int{1, 8} {
		rng := rand.New(rand.NewSource(77))
		const k, n, d = 5, 400, 4
		pts := randomPts(rng, n, d)
		sc1 := NewScorerAt(pts, 1)
		reg := NewShardedRegistry(sc1, shards)
		cache := reg.Get(k, nil)
		for i := 0; i < 10; i++ {
			cache.Get(patchOracleVertex(rng, d))
		}
		entries := cache.Len()

		// The all-zeros option scores 0 under every weight vector while
		// every random option scores positive: it can crack no top-k.
		pts2 := append(append([]vec.Vector(nil), pts...), vec.New(d))
		sc2 := NewScorerAt(pts2, 2)
		sum := reg.AdvanceInsert(sc2, []int{n})
		if sum.Changed() || sum.Patched != 0 {
			t.Fatalf("shards=%d: dominated insert reported changes: %+v", shards, sum)
		}
		if sum.Fallback {
			t.Fatalf("shards=%d: pure insert fell back", shards)
		}
		cache = reg.Get(k, nil)
		if got := cache.Len(); got != entries {
			t.Errorf("shards=%d: entry count %d -> %d; an untouched advance must drop zero entries", shards, entries, got)
		}
		// The successor starts its hit/miss counters fresh (the retired
		// object's fold into Registry.Stats); what matters is that every
		// warm vertex still serves from memory — zero new misses.
		rng = rand.New(rand.NewSource(77)) // replay the same vertices
		_ = randomPts(rng, n, d)
		for i := 0; i < 10; i++ {
			if _, hit := cache.Lookup(patchOracleVertex(rng, d)); !hit {
				t.Errorf("shards=%d: warm vertex missed after untouched advance", shards)
			}
		}
		if _, misses := cache.Stats(); misses != 0 {
			t.Errorf("shards=%d: %d misses after untouched advance, want 0", shards, misses)
		}
		if _, _, untouched := reg.PatchStats(); untouched != 1 {
			t.Errorf("shards=%d: untouchedAdvances = %d, want 1", shards, untouched)
		}
	}
}

// TestPatchAdvancePinnedOldGeneration: the successor-object pattern —
// after AdvanceInsert the retired cache object keeps answering solves
// pinned to the old generation with old-generation results.
func TestPatchAdvancePinnedOldGeneration(t *testing.T) {
	for _, shards := range []int{1, 4} {
		rng := rand.New(rand.NewSource(9))
		const k, n, d = 4, 60, 4
		pts := randomPts(rng, n, d)
		sc1 := NewScorerAt(pts, 1)
		reg := NewShardedRegistry(sc1, shards)
		old := reg.Get(k, nil)
		w := patchOracleVertex(rng, d)
		old.Get(w)

		// Insert an option that certainly cracks every top-k: near the
		// all-ones corner it dominates the random points.
		best := vec.New(d)
		for j := range best {
			best[j] = 0.999
		}
		pts2 := append(append([]vec.Vector(nil), pts...), best)
		sc2 := NewScorerAt(pts2, 2)
		sum := reg.AdvanceInsert(sc2, []int{n})
		if !sum.Changed() {
			t.Fatalf("shards=%d: dominant insert patched nothing", shards)
		}

		oldWant := sc1.TopK(w, k, nil)
		if got := old.Get(w); got.OrderKey() != oldWant.OrderKey() {
			t.Errorf("shards=%d: pinned old cache: got %v, want %v", shards, got.Ordered, oldWant.Ordered)
		}
		newWant := sc2.TopK(w, k, nil)
		if got := reg.Get(k, nil).Get(w); got.OrderKey() != newWant.OrderKey() {
			t.Errorf("shards=%d: patched cache: got %v, want %v", shards, got.Ordered, newWant.Ordered)
		}
		if newWant.Ordered[0] != n {
			t.Fatalf("test setup: dominant option not ranked first (%v)", newWant.Ordered)
		}
	}
}

// TestAdvanceInsertFallback: a delta that breaks the pure-insert
// contract (non-contiguous slots) must take Advance's drop semantics,
// not corrupt the patch path.
func TestAdvanceInsertFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const k, n, d = 3, 30, 3
	pts := randomPts(rng, n, d)
	sc1 := NewScorerAt(pts, 1)
	reg := NewRegistry(sc1)
	reg.Get(k, nil).Get(patchOracleVertex(rng, d))

	// An update masquerading as an insert: slot 5 changed, same length
	// plus one appended.
	pts2 := append(append([]vec.Vector(nil), pts...), patchOracleVertex(rng, d+1))
	pts2[5] = patchOracleVertex(rng, d+1)
	sc2 := NewScorerAt(pts2, 2)
	sum := reg.AdvanceInsert(sc2, []int{5, n})
	if !sum.Fallback {
		t.Fatal("non-contiguous delta did not fall back to the drop path")
	}
	// The whole-dataset config must have been dropped (drop semantics),
	// and a fresh one must answer from the new generation.
	w := patchOracleVertex(rng, d)
	want := sc2.TopK(w, k, nil)
	if got := reg.Get(k, nil).Get(w); got.OrderKey() != want.OrderKey() {
		t.Errorf("post-fallback lookup: got %v, want %v", got.Ordered, want.Ordered)
	}
}

// TestAllocsNoopRegistryAdvance gates the satellite fix: a pure-insert
// delta (all dirty slots at or beyond the old length) reaching an
// unsharded registry holding only explicit-active configurations is a
// no-op advance — rebind the survivors, swap the scorer — and must not
// allocate at all.
func TestAllocsNoopRegistryAdvance(t *testing.T) {
	skipUnderRace(t)
	const runs = 100
	base := allocDataset(32, 3, 5)
	sc := NewScorerAt(append([]vec.Vector(nil), base...), 1)
	r := NewRegistry(sc)
	r.Get(4, []int{0, 1, 2, 3, 4, 5}).Get(vec.Of(0.3, 0.2))
	r.Get(2, []int{7, 8, 9}).Get(vec.Of(0.1, 0.4))

	// Pre-build every generation the timed loop advances through: one
	// appended option per run (the warm-up call included).
	pts := base
	scorers := make([]*Scorer, runs+2)
	dirties := make([][]int, runs+2)
	for i := range scorers {
		dirties[i] = []int{len(pts)}
		pts = append(append([]vec.Vector(nil), pts...), vec.Of(0.5, 0.5, 0.5))
		scorers[i] = NewScorerAt(pts, uint64(i+2))
	}
	step := 0
	allocs := testing.AllocsPerRun(runs, func() {
		r.Advance(scorers[step], dirties[step])
		step++
	})
	if allocs != 0 {
		t.Fatalf("no-op Advance allocates %.1f per run, want 0", allocs)
	}
	if r.Len() != 2 {
		t.Fatalf("no-op advances dropped configs: len=%d", r.Len())
	}
}

// TestAllocsAdvanceInsertExplicitOnly: AdvanceInsert over a registry
// with no patchable configuration is the same no-op and likewise must
// not allocate (unsharded plane; the sharded plane's assignment growth
// is amortized-append).
func TestAllocsAdvanceInsertExplicitOnly(t *testing.T) {
	skipUnderRace(t)
	const runs = 100
	base := allocDataset(32, 3, 6)
	sc := NewScorerAt(append([]vec.Vector(nil), base...), 1)
	r := NewRegistry(sc)
	r.Get(3, []int{0, 1, 2, 3}).Get(vec.Of(0.25, 0.25))

	pts := base
	scorers := make([]*Scorer, runs+2)
	inserts := make([][]int, runs+2)
	for i := range scorers {
		inserts[i] = []int{len(pts)}
		pts = append(append([]vec.Vector(nil), pts...), vec.Of(0.4, 0.4, 0.4))
		scorers[i] = NewScorerAt(pts, uint64(i+2))
	}
	step := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if sum := r.AdvanceInsert(scorers[step], inserts[step]); sum.Fallback {
			t.Fatal("pure insert fell back")
		}
		step++
	})
	if allocs != 0 {
		t.Fatalf("explicit-only AdvanceInsert allocates %.1f per run, want 0", allocs)
	}
}

// TestMaybeChangedFallbackHazard pins the fallback hazard fix (ISSUE
// 8): a summary whose advance dropped memos without splicing anything —
// fallback to the drop path, or merged results discarded with zero
// patches — reports Changed() false, so a notification plane keying
// suppression off Changed() would provably miss updates. MaybeChanged
// must be true in every such case, and false only for the genuinely
// inert advance.
func TestMaybeChangedFallbackHazard(t *testing.T) {
	cases := []struct {
		name string
		sum  PatchSummary
		want bool
	}{
		{"inert", PatchSummary{Configs: 2, Entries: 9}, false},
		{"patched", PatchSummary{Entries: 4, Patched: 1}, true},
		{"merged-dropped-only", PatchSummary{Entries: 4, MergedDropped: 2}, true},
		{"fallback", PatchSummary{Fallback: true}, true},
	}
	for _, c := range cases {
		if got := c.sum.MaybeChanged(); got != c.want {
			t.Errorf("%s: MaybeChanged() = %v, want %v", c.name, got, c.want)
		}
	}
	if (PatchSummary{Fallback: true}).Changed() {
		t.Error("Changed() on a fallback summary became true; MaybeChanged exists because it is not")
	}

	// End to end: an inserted list that breaks the contiguous-tail
	// contract runs the drop path and must come back MaybeChanged even
	// though nothing was patched.
	rng := rand.New(rand.NewSource(85))
	pts := randomPts(rng, 40, 3)
	sc := NewScorerAt(append([]vec.Vector(nil), pts...), 1)
	reg := NewRegistry(sc)
	reg.Get(4, nil).Get(patchOracleVertex(rng, 3))

	pts = append(append([]vec.Vector(nil), pts...), vec.Of(0.5, 0.5, 0.5), vec.Of(0.4, 0.4, 0.4))
	scn := NewScorerAt(pts, 2)
	sum := reg.AdvanceInsert(scn, []int{41, 40}) // out of order: contract broken
	if !sum.Fallback {
		t.Fatal("out-of-order inserted list did not fall back")
	}
	if sum.Changed() {
		t.Fatal("fallback summary reports Changed")
	}
	if !sum.MaybeChanged() {
		t.Fatal("fallback summary reports !MaybeChanged: suppression would miss the dropped memos")
	}
}
