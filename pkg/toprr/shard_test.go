package toprr_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// oracleOptions pins the solve deterministic (one worker, fixed seed)
// so sharded and unsharded engines run bit-identical recursions.
func oracleOptions() *toprr.Options {
	return &toprr.Options{Alg: toprr.TASStar, Workers: 1, Seed: 17}
}

// sameRegion cross-checks two results by membership sampling.
func sameRegion(t *testing.T, tag string, rng *rand.Rand, d int, a, b *toprr.Result) {
	t.Helper()
	for probe := 0; probe < 300; probe++ {
		o := vec.New(d)
		for j := range o {
			o[j] = rng.Float64()
		}
		if a.IsTopRanking(o) != b.IsTopRanking(o) {
			t.Fatalf("%s: regions differ at %v", tag, o)
		}
	}
}

// TestShardedEngineMatchesOracle is the sharded-solve property suite:
// for S in {1, 2, 3, 8}, random datasets, dimensionalities and k, a
// sharded engine must produce exactly the unsharded engine's regions —
// including after mutation batches, where the per-shard invalidation
// path has to keep the warm caches consistent with the new generation.
func TestShardedEngineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ctx := context.Background()
	for iter := 0; iter < 4; iter++ {
		d := 3 + iter%2
		n := 80 + rng.Intn(80)
		pts := randomMarket(rng, n, d)
		oracle := toprr.NewEngine(pts, toprr.WithShards(1))

		engines := make(map[int]*toprr.Engine)
		for _, s := range []int{2, 3, 8} {
			engines[s] = toprr.NewEngine(pts, toprr.WithShards(s))
			if engines[s].Shards() != s {
				t.Fatalf("WithShards(%d) built %d shards", s, engines[s].Shards())
			}
		}

		check := func(stage string) {
			for q := 0; q < 3; q++ {
				query := randomQuery(rng, d, 1+rng.Intn(5))
				query.Options = oracleOptions()
				want, err := oracle.Solve(ctx, query)
				if err != nil {
					t.Fatalf("%s: oracle: %v", stage, err)
				}
				for s, eng := range engines {
					got, err := eng.Solve(ctx, query)
					if err != nil {
						t.Fatalf("%s: shards=%d: %v", stage, s, err)
					}
					// Deterministic options make the recursion — and
					// hence Vall and the constraint list — identical.
					if len(got.Vall) != len(want.Vall) {
						t.Fatalf("%s: shards=%d: |Vall| %d != %d", stage, s, len(got.Vall), len(want.Vall))
					}
					if len(got.ORConstraints) != len(want.ORConstraints) {
						t.Fatalf("%s: shards=%d: constraints %d != %d", stage, s, len(got.ORConstraints), len(want.ORConstraints))
					}
					sameRegion(t, stage, rng, d, got, want)
				}
			}
		}

		check("fresh")

		// Mutation batches: inserts, updates and swap-deletes applied to
		// every engine alike; warm caches must advance per shard without
		// diverging from the oracle.
		for step := 0; step < 3; step++ {
			var ops []toprr.Op
			for o := 0; o < 1+rng.Intn(3); o++ {
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, toprr.Insert(randomPoint(rng, d)))
				case 1:
					ops = append(ops, toprr.Update(rng.Intn(oracle.Len()), randomPoint(rng, d)))
				default:
					if oracle.Len() > 40 {
						ops = append(ops, toprr.Delete(rng.Intn(oracle.Len())))
					} else {
						ops = append(ops, toprr.Insert(randomPoint(rng, d)))
					}
				}
			}
			if _, err := oracle.Apply(ctx, ops); err != nil {
				t.Fatal(err)
			}
			for s, eng := range engines {
				if _, err := eng.Apply(ctx, ops); err != nil {
					t.Fatalf("shards=%d: %v", s, err)
				}
			}
			check("after mutations")
		}
	}
}

// TestShardedEngineReopenKeepsLayout: a durable sharded engine records
// its shard count in the snapshot metadata; a reopen — even one that
// asks for a different count — keeps the persisted layout and still
// matches the oracle after recovery.
func TestShardedEngineReopenKeepsLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "ds")
	pts := randomMarket(rng, 100, 3)

	eng, err := toprr.OpenEngine(pts, toprr.WithShards(3), toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", eng.Shards())
	}
	var ops []toprr.Op
	for i := 0; i < 7; i++ {
		ops = append(ops, toprr.Insert(randomPoint(rng, 3)))
	}
	if _, err := eng.Apply(ctx, ops); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen requesting a different count: the persisted layout wins.
	re, err := toprr.OpenEngine(nil, toprr.WithShards(8), toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 3 {
		t.Fatalf("reopened shards = %d, want persisted 3", re.Shards())
	}

	oracle := toprr.NewEngine(re.Scorer().Points(), toprr.WithShards(1))
	for q := 0; q < 3; q++ {
		query := randomQuery(rng, 3, 2+rng.Intn(3))
		query.Options = oracleOptions()
		want, err := oracle.Solve(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.Solve(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Vall) != len(want.Vall) {
			t.Fatalf("reopened |Vall| %d != %d", len(got.Vall), len(want.Vall))
		}
		sameRegion(t, "reopen", rng, 3, got, want)
	}
}

// TestWithShardsValidation: out-of-range shard counts are rejected and
// the auto default is GOMAXPROCS-derived and at least 1.
func TestWithShardsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomMarket(rng, 20, 3)
	if _, err := toprr.OpenEngine(pts, toprr.WithShards(-1)); err == nil {
		t.Error("negative shard count should error")
	}
	if _, err := toprr.OpenEngine(pts, toprr.WithShards(toprr.MaxShards+1)); err == nil {
		t.Error("oversized shard count should error")
	}
	eng := toprr.NewEngine(pts)
	if eng.Shards() < 1 {
		t.Errorf("auto shard count %d < 1", eng.Shards())
	}
	cs := eng.CacheStats()
	if cs.Shards != eng.Shards() {
		t.Errorf("CacheStats.Shards = %d, want %d", cs.Shards, eng.Shards())
	}
}

// TestShardedCacheStatsBreakdown: a warm sharded engine reports its
// per-shard cache occupancy, and the breakdown sums to the totals.
func TestShardedCacheStatsBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ctx := context.Background()
	pts := randomMarket(rng, 120, 3)
	eng := toprr.NewEngine(pts, toprr.WithShards(4))
	for i := 0; i < 4; i++ {
		if _, err := eng.Solve(ctx, randomQuery(rng, 3, 2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	cs := eng.CacheStats()
	if cs.Shards != 4 || len(cs.ShardStats) != 4 {
		t.Fatalf("shard stats missing: %+v", cs)
	}
	entries, hyper := 0, 0
	for _, ss := range cs.ShardStats {
		entries += ss.TopKEntries
		hyper += ss.Hyperplanes
	}
	if entries == 0 {
		t.Error("no memoized partials reported per shard")
	}
	if hyper != cs.Hyperplanes {
		t.Errorf("per-shard hyperplanes sum to %d, total says %d", hyper, cs.Hyperplanes)
	}
}

// TestShardedConcurrentSolveApply: on a sharded engine, solves racing
// a mutation stream must answer exactly for their pinned generation —
// the per-shard invalidation path swaps cache objects on advance, so a
// solve that acquired a shared sharded cache before the mutation keeps
// old-generation partials, never the successor's. Run under -race in
// CI.
func TestShardedConcurrentSolveApply(t *testing.T) {
	seedRng := rand.New(rand.NewSource(26))
	ctx := context.Background()
	pts := randomMarket(seedRng, 100, 3)
	engine := toprr.NewEngine(pts, toprr.WithShards(4))

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wrng := rand.New(rand.NewSource(77))
		for i := 0; i < 30; i++ {
			var op toprr.Op
			n := engine.Len()
			switch wrng.Intn(3) {
			case 0:
				op = toprr.Insert(randomPoint(wrng, 3))
			case 1:
				if n > 60 {
					op = toprr.Delete(wrng.Intn(n))
				} else {
					op = toprr.Insert(randomPoint(wrng, 3))
				}
			default:
				op = toprr.Update(wrng.Intn(n), randomPoint(wrng, 3))
			}
			if _, err := engine.Apply(ctx, []toprr.Op{op}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := engine.Snapshot()
				q := randomQuery(rr, 3, 2+rr.Intn(3))
				res, err := engine.SolveAt(ctx, snap, q)
				if err != nil {
					t.Errorf("solve at gen %d: %v", snap.Gen, err)
					return
				}
				// Verify against the PINNED scorer: a stale or
				// next-generation partial leaking into the solve makes
				// the accepted options fail the pinned-rank oracle.
				prob := toprr.Problem{Scorer: snap.Scorer, K: q.K, WR: q.WR}
				for probe := 0; probe < 40; probe++ {
					o := randomPoint(rr, 3)
					if !res.IsTopRanking(o) {
						continue
					}
					if w := toprr.VerifyTopRanking(prob, o, 20, rr); w != nil {
						t.Errorf("gen %d: option accepted but not top-%d at pinned weights %v", snap.Gen, q.K, w)
					}
					break
				}
			}
		}(int64(300 + r))
	}
	wg.Wait()
}

// TestEngineConcurrentApplyGroupCommit: concurrent Apply callers on a
// durable engine must coalesce on the WAL fsync (strictly fewer syncs
// than batches), publish every generation exactly once in order, and
// recover the identical dataset after reopen.
func TestEngineConcurrentApplyGroupCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "gc")
	pts := randomMarket(rng, 60, 3)
	eng, err := toprr.OpenEngine(pts, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		batches = 10
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				op := toprr.Insert(randomPoint(wr, 3))
				if _, err := eng.Apply(ctx, []toprr.Op{op}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()

	if got, want := eng.Generation(), toprr.Generation(1+writers*batches); got != want {
		t.Fatalf("generation = %d, want %d", got, want)
	}
	if got, want := eng.Len(), 60+writers*batches; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	ps := eng.PersistStats()
	if ps.WALSyncs == 0 {
		t.Fatal("no fsyncs recorded")
	}
	// Sanity rather than timing-dependent coalescing: never more syncs
	// than batches plus the handful of maintenance flushes.
	if ps.WALSyncs > int64(writers*batches+8) {
		t.Errorf("WALSyncs = %d for %d batches; group commit not bounding flushes", ps.WALSyncs, writers*batches)
	}
	finalPts := eng.Scorer().Points()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := toprr.OpenEngine(nil, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(finalPts) {
		t.Fatalf("recovered %d options, want %d", re.Len(), len(finalPts))
	}
	rec := re.Scorer().Points()
	for i := range finalPts {
		if !rec[i].Equal(finalPts[i], 0) {
			t.Fatalf("recovered option %d differs", i)
		}
	}
}
