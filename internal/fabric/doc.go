// Package fabric is the cross-box solve plane: a dependency-free
// (stdlib net only) binary protocol over which a coordinating engine
// scatters per-shard partial top-k requests to shard-owning worker
// processes and gathers their answers — the constraint chunks of the
// Section-3.1 union/intersection merge — back into the in-process merge
// path.
//
// The wire protocol (frame.go) is length-prefixed and CRC-checked:
// every frame carries a protocol version, a frame type, a request id
// and a checksummed payload, so torn writes, truncated streams and
// corrupt bytes are rejected deterministically instead of being
// misparsed. Connections are pipelined (client.go): a client keeps many
// partial requests in flight per connection and matches responses by
// request id, so a scatter across S shards overlaps on the wire instead
// of paying S serial round trips.
//
// Workers (server.go, cmd/toprr-worker) are stateless readers: they
// hold no WAL and no snapshot directory, and learn a dataset generation
// only by being synced one over the wire (resync, don't replay — see
// docs/PERSISTENCE.md). A partial request names the exact generation it
// wants; a worker at any other generation refuses with ErrGenMismatch
// and the coordinator answers from its local shard instead, so a stale,
// slow or dead worker costs latency, never correctness
// (docs/FABRIC.md).
package fabric
