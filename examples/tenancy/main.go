// Tenancy: one process, many markets. A Registry serves several named
// datasets — each an independent engine with snapshot-isolated
// mutations — from one process, sharing a single cache budget across
// them. This example runs two markets side by side and shows that
//
//   - each dataset mutates on its own generation clock: shipping a
//     laptop never moves the phone market's generation,
//   - queries route to their tenant's warm caches, and
//   - the process-wide cache budget re-apportions as tenants come and
//     go (drop a market and the survivors get its share).
//
// With a registry root (WithRegistryRoot) the same API is durable: each
// dataset persists in <root>/<name>/ and an idle TTL pages cold tenants
// out of memory. cmd/toprrd serves this registry over HTTP.
//
// Run with: go run ./examples/tenancy
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	ctx := context.Background()

	// A memory-only registry with a shared budget of 64 interned top-k
	// cache configurations across however many markets it serves.
	reg, err := toprr.NewRegistry(toprr.WithCacheBudget(64, 1<<14))
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Two markets: the laptop dataset of Figure 1(a), and a phone
	// market with its own options.
	laptops, err := reg.Create("laptops", []vec.Vector{
		vec.Of(0.9, 0.4), vec.Of(0.7, 0.9), vec.Of(0.6, 0.2),
		vec.Of(0.3, 0.8), vec.Of(0.2, 0.3), vec.Of(0.1, 0.1),
	})
	if err != nil {
		log.Fatal(err)
	}
	phones, err := reg.Create("phones", []vec.Vector{
		vec.Of(0.8, 0.6), vec.Of(0.5, 0.9), vec.Of(0.4, 0.4), vec.Of(0.9, 0.2),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ds := range reg.Stats() {
		fmt.Printf("%-8s %d options, share of cache budget: %d configs\n",
			ds.Name, ds.Options, ds.MaxConfigs)
	}

	// The same clientele, asked of each market.
	clientele := toprr.Query{K: 2, WR: toprr.PrefBox(vec.Of(0.3), vec.Of(0.7))}
	for name, eng := range map[string]*toprr.Engine{"laptops": laptops, "phones": phones} {
		res, err := eng.Solve(ctx, clientele)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s oR has %d constraints at generation %d\n",
			name, len(res.ORConstraints), eng.Generation())
	}

	// Mutations are isolated: shipping a laptop moves only the laptop
	// market's generation.
	if _, err := laptops.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.85, 0.85))}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after shipping a laptop: laptops at generation %d, phones still at %d\n",
		laptops.Generation(), phones.Generation())

	// Dropping a market hands its cache share to the survivors.
	if err := reg.Drop("phones"); err != nil {
		log.Fatal(err)
	}
	for _, ds := range reg.Stats() {
		fmt.Printf("after drop: %s share is %d configs\n", ds.Name, ds.MaxConfigs)
	}
}
