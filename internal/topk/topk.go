package topk

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"toprr/internal/vec"
)

// Scorer evaluates linear scores of a fixed dataset under reduced
// weight vectors. A Scorer is an immutable snapshot: the versioned
// store hands out one Scorer per dataset generation, and in-flight
// queries keep scoring against theirs while writers publish successors.
// It is safe for concurrent use.
type Scorer struct {
	pts []vec.Vector
	d   int    // option-space dimensionality
	gen uint64 // dataset generation (0 for standalone scorers)

	// Struct-of-arrays mirror of pts for the batch scoring loop, built
	// lazily on the first top-k query (sync.Once keeps the Scorer safe
	// for concurrent use). lastCol[i] = pts[i][d-1] and
	// diff[j][i] = pts[i][j] - pts[i][d-1], exactly the operands of
	// ScorePoint, so columnar scoring is bit-identical to the scalar
	// path while the inner loop runs over contiguous float64 columns.
	soaOnce sync.Once
	lastCol []float64
	diff    [][]float64
}

// NewScorer wraps a dataset of d-dimensional options.
func NewScorer(pts []vec.Vector) *Scorer { return NewScorerAt(pts, 0) }

// NewScorerAt wraps a dataset as the snapshot of dataset generation gen.
// The slice is adopted, not copied: the caller guarantees it is never
// mutated afterwards.
func NewScorerAt(pts []vec.Vector, gen uint64) *Scorer {
	if len(pts) == 0 {
		panic("topk: empty dataset")
	}
	return &Scorer{pts: pts, d: pts[0].Dim(), gen: gen}
}

// Generation returns the dataset generation this scorer snapshots (0 for
// standalone scorers built outside a store).
func (s *Scorer) Generation() uint64 { return s.gen }

// Points returns the underlying option slice. It is shared, not copied:
// callers must treat it as read-only.
func (s *Scorer) Points() []vec.Vector { return s.pts }

// Dim returns the option-space dimensionality d.
func (s *Scorer) Dim() int { return s.d }

// PrefDim returns the preference-space dimensionality d-1.
func (s *Scorer) PrefDim() int { return s.d - 1 }

// Len returns the number of options.
func (s *Scorer) Len() int { return len(s.pts) }

// Point returns option i.
func (s *Scorer) Point(i int) vec.Vector { return s.pts[i] }

// FullWeight expands a reduced weight vector w in W to the full
// d-dimensional weight vector, deriving the last component as
// 1 - Σ w[j].
func (s *Scorer) FullWeight(w vec.Vector) vec.Vector {
	if len(w) != s.d-1 {
		panic(fmt.Sprintf("topk: reduced weight dim %d, want %d", len(w), s.d-1))
	}
	full := vec.New(s.d)
	copy(full, w)
	full[s.d-1] = 1 - w.Sum()
	return full
}

// Score returns S_w(p_i) for reduced weight vector w.
func (s *Scorer) Score(w vec.Vector, i int) float64 {
	return ScorePoint(w, s.pts[i])
}

// ScorePoint returns the score of an arbitrary point p (not necessarily
// in the dataset) under reduced weight vector w.
func ScorePoint(w vec.Vector, p vec.Vector) float64 {
	m := len(w)
	last := p[m]
	score := last // weight of last attribute starts at 1
	for j, wj := range w {
		score += wj * (p[j] - last)
	}
	return score
}

// buildSoA materializes the columnar scoring mirror. Called once per
// Scorer via soaOnce.
func (s *Scorer) buildSoA() {
	n := len(s.pts)
	s.lastCol = make([]float64, n)
	s.diff = make([][]float64, s.d-1)
	for j := range s.diff {
		s.diff[j] = make([]float64, n)
	}
	for i, p := range s.pts {
		last := p[s.d-1]
		s.lastCol[i] = last
		for j := 0; j < s.d-1; j++ {
			s.diff[j][i] = p[j] - last
		}
	}
}

// scoreInto writes ScorePoint(w, pts[idx]) for every member into dst
// (members nil = the whole dataset, dst sized accordingly) through the
// struct-of-arrays mirror. Each option accumulates its score in the
// same operation order as ScorePoint — start at the last attribute,
// then add wj*(pj - last) in ascending j — so the results are
// bit-identical to the scalar path while the inner loop streams over
// contiguous columns and allocates nothing.
func (s *Scorer) scoreInto(w vec.Vector, members []int, dst []float64) {
	m := len(w)
	if m != s.d-1 { // non-reduced weights: scalar fallback
		if members == nil {
			for i := range dst {
				dst[i] = ScorePoint(w, s.pts[i])
			}
			return
		}
		for t, idx := range members {
			dst[t] = ScorePoint(w, s.pts[idx])
		}
		return
	}
	s.soaOnce.Do(s.buildSoA)
	if members == nil {
		copy(dst, s.lastCol)
		for j := 0; j < m; j++ {
			wj, dj := w[j], s.diff[j]
			for i := range dst {
				dst[i] += wj * dj[i]
			}
		}
		return
	}
	for t, idx := range members {
		dst[t] = s.lastCol[idx]
	}
	for j := 0; j < m; j++ {
		wj, dj := w[j], s.diff[j]
		for t, idx := range members {
			dst[t] += wj * dj[idx]
		}
	}
}

// Result is the outcome of a top-k query: the k best option indices in
// score order (ties broken by ascending index for determinism), the k-th
// score, and canonical identities for set and order comparison. The
// identities are precomputed at construction so a Result is immutable
// and safe to share across the parallel solver's workers.
type Result struct {
	Ordered  []int   // option indices, best first
	KthScore float64 // score of Ordered[len-1], i.e. TopK(w) in the paper
	scores   []float64
	setKey   string
	orderKey string
}

// Kth returns the index of the top-k-th option.
func (r *Result) Kth() int { return r.Ordered[len(r.Ordered)-1] }

// SetKey returns a canonical identity of the (order-insensitive) top-k
// set.
func (r *Result) SetKey() string { return r.setKey }

// OrderKey returns a canonical identity of the score-ordered top-k
// result.
func (r *Result) OrderKey() string { return r.orderKey }

// SameSet reports whether two results contain the same top-k set.
func (r *Result) SameSet(o *Result) bool { return r.SetKey() == o.SetKey() }

// SameKth reports whether two results share the top-k-th option.
func (r *Result) SameKth(o *Result) bool { return r.Kth() == o.Kth() }

// Contains reports whether option i belongs to the top-k set.
func (r *Result) Contains(i int) bool {
	for _, x := range r.Ordered {
		if x == i {
			return true
		}
	}
	return false
}

func joinInts(ix []int) string {
	var b strings.Builder
	for _, x := range ix {
		b.WriteString(strconv.Itoa(x))
		b.WriteByte(',')
	}
	return b.String()
}

// scored pairs an option index with its score for sorting.
type scored struct {
	idx   int
	score float64
}

// sortScratch bundles the transient buffers of one top-k computation,
// recycled through sortPool. Ownership rule: leased by exactly one
// TopK/computePartial call from Get until Put — no reference into its
// buffers may survive the Put (results copy what they keep).
type sortScratch struct {
	all    []scored
	scores []float64
}

var sortPool = sync.Pool{New: func() any { return new(sortScratch) }}

func (ss *sortScratch) for_(n int) ([]scored, []float64) {
	if cap(ss.all) < n {
		ss.all = make([]scored, n)
	}
	if cap(ss.scores) < n {
		ss.scores = make([]float64, n)
	}
	ss.all, ss.scores = ss.all[:n], ss.scores[:n]
	return ss.all, ss.scores
}

// TopK runs a top-k query at reduced weight vector w over the options
// listed in active (indices into the dataset). When active is nil the
// whole dataset is considered. It panics if fewer than k options are
// available.
func (s *Scorer) TopK(w vec.Vector, k int, active []int) *Result {
	n := len(active)
	useAll := active == nil
	if useAll {
		n = len(s.pts)
	}
	if k <= 0 || k > n {
		panic(fmt.Sprintf("topk: k=%d out of range for %d options", k, n))
	}
	ss := sortPool.Get().(*sortScratch)
	all, scores := ss.for_(n)
	s.scoreInto(w, active, scores)
	for i := 0; i < n; i++ {
		idx := i
		if !useAll {
			idx = active[i]
		}
		all[i] = scored{idx: idx, score: scores[i]}
	}
	// The filtered candidate sets TopRR works on are small (tens to a
	// few hundred options), so a full sort is both simple and fast; ties
	// break by ascending index so results are deterministic.
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].idx < all[j].idx
	})
	ordered := make([]int, k)
	rsc := make([]float64, k)
	for i := 0; i < k; i++ {
		ordered[i] = all[i].idx
		rsc[i] = all[i].score
	}
	r := newResult(ordered, rsc)
	sortPool.Put(ss)
	return r
}

// newResult assembles a Result from a score-ordered index list and the
// matching scores, precomputing the canonical set and order identities.
// The full score column (not just the k-th) is retained so patch-on-
// insert (patch.go) can splice a new option into the ranked list without
// rescoring the survivors.
func newResult(ordered []int, scores []float64) *Result {
	sorted := append([]int(nil), ordered...)
	sort.Ints(sorted)
	return &Result{
		Ordered:  ordered,
		KthScore: scores[len(scores)-1],
		scores:   scores,
		setKey:   joinInts(sorted),
		orderKey: joinInts(ordered),
	}
}

// Cache memoizes top-k results per vertex of the preference space.
// Splitting reuses parent vertices heavily, so TAS hits the cache on the
// majority of its queries. A Cache is bound to one (dataset subset, k)
// configuration; the TopRR recursion creates a fresh cache whenever
// Lemma 5 changes the active set or k. It is safe for concurrent use —
// the parallel solver shares one cache across its workers.
//
// A cache built by NewShardedCache runs in sharded mode (see shard.go):
// the evaluation plane is split into per-shard memos with independent
// locks, and lookups merge per-shard partials into the exact global
// result. Sharded and unsharded caches return identical Results.
type Cache struct {
	scorer    *Scorer
	k         int
	active    []int
	limit     int // max memoized vertices (0 = unlimited)
	mu        sync.Mutex
	m         map[uint64]memoEntry
	hits      int
	misses    int
	evictions int      // results not memoized because the cache was full
	sh        *sharded // non-nil: sharded evaluation plane (shard.go)

	// remote routes shard partials to their owning workers (remote.go).
	// Only consulted in sharded mode for whole-dataset configurations;
	// the registry attaches it and successors carry it forward.
	remote *RemotePlane
}

// SetRemote attaches a remote partial plane: lookups of whole-dataset
// configurations route remote-owned shards' partials to their owners,
// falling back to the local computation on any failure. Attach before
// the cache starts serving; the plane itself is safe for concurrent
// use.
func (c *Cache) SetRemote(rp *RemotePlane) { c.remote = rp }

// memoEntry pairs a memoized result with the vertex it was computed at.
// The vertex is retained only for whole-dataset (nil active set)
// configurations — the patchable ones: patch-on-insert (patch.go) must
// score the inserted options *at each memoized vertex*, and the map key
// is a quantized hash from which the vertex cannot be recovered. The
// vertex is a private clone: lookup vertices may live in a recycled
// solver arena.
type memoEntry struct {
	w vec.Vector
	r *Result
}

// NewCache builds a cache for top-k queries with the given parameters.
func NewCache(scorer *Scorer, k int, active []int) *Cache {
	return &Cache{scorer: scorer, k: k, active: active, m: make(map[uint64]memoEntry)}
}

// NewBoundedCache is NewCache with a cap on memoized vertices; past the
// cap, lookups of unseen vertices compute without storing. Registry
// uses it so engine-shared caches stay bounded across query streams.
func NewBoundedCache(scorer *Scorer, k int, active []int, limit int) *Cache {
	c := NewCache(scorer, k, active)
	c.limit = limit
	return c
}

// NewPassthroughCache builds a Cache that never memoizes — every Get
// recomputes. It exists for the cache-effectiveness ablation benchmarks.
func NewPassthroughCache(scorer *Scorer, k int, active []int) *Cache {
	return &Cache{scorer: scorer, k: k, active: active}
}

// K returns the cache's k parameter.
func (c *Cache) K() int { return c.k }

// Active returns the active option subset (nil means all).
func (c *Cache) Active() []int { return c.active }

// Scorer returns the underlying scorer (the registry may rebind it on a
// generation advance, hence the lock).
func (c *Cache) Scorer() *Scorer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scorer
}

// Get returns the top-k result at vertex w, computing it on a miss.
func (c *Cache) Get(w vec.Vector) *Result {
	r, _ := c.Lookup(w)
	return r
}

// LookupCtx is Lookup with context-aware sharded evaluation: in sharded
// mode, missing per-shard partials are computed (concurrently when the
// work is large), ctx cancellation stops unstarted sibling shards and
// returns the context error, and acc (optional) receives per-shard work
// attribution. For unsharded caches it is exactly Lookup — cancellation
// between whole lookups is the driver's job there.
func (c *Cache) LookupCtx(ctx context.Context, w vec.Vector, acc *ShardAccum) (*Result, bool, error) {
	if c.sh != nil {
		return c.lookupSharded(ctx, w, acc)
	}
	r, hit := c.Lookup(w)
	return r, hit, nil
}

// Lookup is Get, additionally reporting whether the result was served
// from the cache — so callers sharing a cache can attribute misses to
// their own queries.
func (c *Cache) Lookup(w vec.Vector) (*Result, bool) {
	if c.sh != nil {
		r, hit, _ := c.lookupSharded(context.Background(), w, nil)
		return r, hit
	}
	if c.m == nil { // pass-through mode
		c.mu.Lock()
		c.misses++
		sc := c.scorer
		c.mu.Unlock()
		return sc.TopK(w, c.k, c.active), false
	}
	key := w.Hash(1e-10)
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e.r, true
	}
	// Snapshot the scorer pointer under the lock (rebind may swap it
	// concurrently) and compute outside it; a racing duplicate
	// computation is harmless (results are identical under either
	// generation's scorer — see rebind — and idempotent to store).
	sc := c.scorer
	c.mu.Unlock()
	r := sc.TopK(w, c.k, c.active)
	e := memoEntry{r: r}
	if c.active == nil {
		e.w = w.Clone()
	}
	c.mu.Lock()
	if c.limit <= 0 || len(c.m) < c.limit {
		c.m[key] = e
	} else {
		c.evictions++
	}
	c.misses++
	c.mu.Unlock()
	return r, false
}

// Stats reports cache hits and misses (total queries = hits + misses).
// A sharded cache counts at the merged-lookup level — a hit means every
// shard served from memory — so the figures stay comparable with
// unsharded caches.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports results the cache declined to memoize because it
// was full; a sharded cache sums its shard memos' refusals and the
// partials dropped by per-shard invalidation.
func (c *Cache) Evictions() int {
	c.mu.Lock()
	n := c.evictions
	c.mu.Unlock()
	if c.sh != nil {
		for _, sm := range c.sh.memos {
			sm.mu.Lock()
			n += sm.evictions
			sm.mu.Unlock()
		}
	}
	return n
}

// Len reports the number of memoized vertices (for a sharded cache, the
// total memoized partials across shards).
func (c *Cache) Len() int {
	if c.sh != nil {
		n := 0
		for _, sm := range c.sh.memos {
			sm.mu.Lock()
			n += len(sm.m)
			sm.mu.Unlock()
		}
		return n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// rebind points the cache at a new generation's scorer. Only sound when
// every option in the cache's active set is bit-identical between the
// old and new scorer (the registry's Advance guarantees it by dropping
// any configuration touching a dirty slot): then every memoized result,
// and every future computation by either a pinned old-generation solve
// or a new-generation solve, is identical under both scorers, so the
// same Cache object safely serves both sides.
func (c *Cache) rebind(sc *Scorer) {
	if c.sh != nil {
		c.rebindSharded(sc)
		return
	}
	c.mu.Lock()
	c.scorer = sc
	c.mu.Unlock()
}
