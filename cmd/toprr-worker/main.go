// Command toprr-worker is a solve-fabric worker: it serves partial
// top-k solves for the shards a coordinator routes to it, over the
// length-prefixed, CRC-checked wire protocol of internal/fabric.
//
//	toprr-worker -listen :9090
//
// A worker is a stateless reader. It holds no WAL and no snapshot
// directory: the coordinator pushes whole dataset generations over the
// connection (a Sync frame replaces the worker's copy wholesale — resync,
// not replay), pins every connection to a dataset at handshake, and
// tags every partial-solve request with the exact generation it must be
// answered at. A request for any other generation is refused, and the
// coordinator computes that shard locally — remote and local partials
// are the same computation over the same content-hashed member lists,
// so the answers are interchangeable bit for bit. Killing a worker
// never changes a coordinator's results; it only moves the scoring work
// back. docs/FABRIC.md specifies the protocol and this contract.
//
// One worker process serves many datasets (bounded by -max-datasets)
// and many coordinators; per-dataset partial results are memoized by
// (shard, k, vertex) until the next sync replaces the generation.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"toprr/internal/fabric"
)

// version identifies the build; release builds override it via
// -ldflags "-X main.version=...".
var version = "dev"

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toprr-worker:", err)
	os.Exit(1)
}

func main() {
	var (
		listen      = flag.String("listen", ":9090", "listen address for coordinator connections")
		memoLimit   = flag.Int("memo-limit", 0, "memoized partial results kept per dataset (0 = default)")
		maxDatasets = flag.Int("max-datasets", 0, "datasets one worker serves at once (0 = default)")
	)
	flag.Parse()

	backend := fabric.NewEngineBackend(fabric.BackendConfig{
		MemoLimit:   *memoLimit,
		MaxDatasets: *maxDatasets,
	})
	srv := fabric.NewServer(backend)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Coordinators treat the dropped connections as ordinary
		// failures: every in-flight partial falls back to a local
		// compute, so a worker shutdown is always safe.
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "toprr-worker %s: serving partial solves on %s\n", version, ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "toprr-worker: bye")
}
