package core

// CI-enforced zero-allocation invariants for the solve hot path (see
// docs/PERFORMANCE.md): warm hyperplane interning and streaming impact
// dedup allocate nothing once their tables reach steady state.

import (
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/race"
	"toprr/internal/topk"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("alloc counts are inflated under -race")
	}
}

func TestAllocsWarmHyperplaneInterning(t *testing.T) {
	skipUnderRace(t)
	ds := dataset.Generate(dataset.Independent, 200, 4, 5)
	scorer := topk.NewScorer(ds.Pts)
	c := NewShardedHyperplaneCache(scorer, 4)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			hs, ok := computeSplitHyperplane(scorer, i, j)
			c.storeFor(scorer, i, j, hpEntry{hs: hs, ok: ok})
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 40; i++ {
			for j := i + 1; j < 40; j++ {
				if _, ok := c.lookupFor(scorer, i, j); !ok {
					t.Fatal("missing interned pair")
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm hyperplane lookups allocate %.1f per run, want 0", allocs)
	}
}

func TestAllocsStreamPushDuplicate(t *testing.T) {
	skipUnderRace(t)
	scorer, vall := streamTestInstance(t)
	st := ClipAssembler{}.NewStream(scorer, 5000)
	for _, iv := range vall {
		st.Push(iv)
	}
	// Re-pushing the same vertices hits the dedup fast path: hash, probe,
	// compare — no clone, no key string, no growth.
	allocs := testing.AllocsPerRun(50, func() {
		for _, iv := range vall {
			st.Push(iv)
		}
	})
	if allocs != 0 {
		t.Fatalf("duplicate stream pushes allocate %.1f per run, want 0", allocs)
	}
}
