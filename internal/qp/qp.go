// Package qp solves the strictly convex quadratic programs that TopRR
// uses for cost-optimal option placement (Section 1 and the Figure 7
// case study of the paper):
//
//   - creating a new option at minimum manufacturing cost, modeled as
//     min Σ o[j]^2 over the option region oR, and
//   - enhancing an existing option p at minimum modification cost,
//     modeled as min ||o - p||^2 over oR.
//
// Both are instances of
//
//	minimize  ½ xᵀ diag(q) x + cᵀ x
//	subject to G x <= h
//
// with strictly positive q, which this package solves with Hildreth's
// dual coordinate-ascent method — a compact, dependency-free algorithm
// that is exact in the limit and, with the tolerances used here,
// accurate far beyond what the experiments need.
package qp

import (
	"errors"
	"math"
	"sync/atomic"

	"toprr/internal/vec"
)

// solves counts quadratic-program solves since process start (one per
// SolveDiagonal call; the lazy constraint-generation inner iterations
// are not counted separately). Used for benchmark instrumentation.
var solves atomic.Int64

// Solves returns the number of QP solves performed so far.
func Solves() int64 { return solves.Load() }

// Options tunes the Hildreth iteration.
type Options struct {
	MaxSweeps int     // maximum coordinate sweeps (default 10000)
	Tol       float64 // convergence tolerance on multiplier change (default 1e-12)
}

func (o Options) withDefaults() Options {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 10000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	return o
}

// ErrInfeasible is returned when the constraint system admits no
// solution (detected through diverging multipliers).
var ErrInfeasible = errors.New("qp: constraints are infeasible")

// lazyThreshold is the constraint count beyond which SolveDiagonal
// switches to constraint generation: Hildreth's dual matrix is m x m, so
// thousands of (mostly redundant) constraints — typical for option
// regions assembled from large Vall sets — would dominate the solve.
const lazyThreshold = 64

// SolveDiagonal minimizes ½ xᵀ diag(q) x + cᵀ x subject to G x <= h,
// with q strictly positive. It returns the optimizer. Large constraint
// systems are handled by constraint generation: repeatedly solve over a
// working subset and add the most violated constraint until feasible,
// which is exact because a solution of the relaxation that satisfies all
// constraints is optimal for the full problem.
func SolveDiagonal(q, c vec.Vector, g []vec.Vector, h vec.Vector, opt Options) (vec.Vector, error) {
	solves.Add(1)
	if len(g) > lazyThreshold {
		return solveLazy(q, c, g, h, opt)
	}
	return solveDense(q, c, g, h, opt)
}

// solveLazy runs the constraint-generation outer loop.
func solveLazy(q, c vec.Vector, g []vec.Vector, h vec.Vector, opt Options) (vec.Vector, error) {
	m := len(g)
	working := make([]int, 0, 64)
	inWorking := make([]bool, m)
	var gw []vec.Vector
	var hw vec.Vector
	x, err := solveDense(q, c, nil, nil, opt)
	if err != nil {
		return nil, err
	}
	for iter := 0; iter <= m; iter++ {
		// Most violated constraint at the current relaxed optimum.
		worstI, worstV := -1, 1e-9
		for i := 0; i < m; i++ {
			if inWorking[i] {
				continue
			}
			if v := g[i].Dot(x) - h[i]; v > worstV {
				worstI, worstV = i, v
			}
		}
		if worstI < 0 {
			return x, nil
		}
		working = append(working, worstI)
		inWorking[worstI] = true
		gw = append(gw, g[worstI])
		hw = append(hw, h[worstI])
		if x, err = solveDense(q, c, gw, hw, opt); err != nil {
			return nil, err
		}
	}
	return nil, errors.New("qp: constraint generation did not converge")
}

// solveDense is the direct Hildreth solver.
func solveDense(q, c vec.Vector, g []vec.Vector, h vec.Vector, opt Options) (vec.Vector, error) {
	opt = opt.withDefaults()
	n := len(q)
	for _, qi := range q {
		if qi <= 0 {
			return nil, errors.New("qp: q must be strictly positive")
		}
	}
	m := len(g)
	if len(h) != m {
		return nil, errors.New("qp: G and h size mismatch")
	}
	// Unconstrained minimizer.
	x0 := vec.New(n)
	for j := range x0 {
		x0[j] = -c[j] / q[j]
	}
	if m == 0 {
		return x0, nil
	}
	// Dual: min ½ λᵀPλ + dᵀλ, λ >= 0, with
	//   P = G Q⁻¹ Gᵀ,  d = h - G x0  (note x0 = -Q⁻¹c).
	// Hildreth's coordinate update:
	//   λ_i ← max(0, -(d_i + Σ_{j≠i} P_ij λ_j) / P_ii).
	p := make([][]float64, m)
	d := make([]float64, m)
	for i := 0; i < m; i++ {
		p[i] = make([]float64, m)
		gi := g[i]
		for j := 0; j <= i; j++ {
			var s float64
			for t := 0; t < n; t++ {
				s += gi[t] * g[j][t] / q[t]
			}
			p[i][j] = s
			p[j][i] = s
		}
		d[i] = h[i] - gi.Dot(x0)
	}
	lambda := make([]float64, m)
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		var maxDelta, maxLambda float64
		for i := 0; i < m; i++ {
			if p[i][i] < 1e-15 {
				continue // zero-normal constraint: nothing to do
			}
			s := d[i]
			for j := 0; j < m; j++ {
				if j != i {
					s += p[i][j] * lambda[j]
				}
			}
			next := -s / p[i][i]
			if next < 0 {
				next = 0
			}
			if delta := math.Abs(next - lambda[i]); delta > maxDelta {
				maxDelta = delta
			}
			lambda[i] = next
			if next > maxLambda {
				maxLambda = next
			}
		}
		if maxLambda > 1e12 {
			return nil, ErrInfeasible
		}
		if maxDelta < opt.Tol*(1+maxLambda) {
			break
		}
	}
	// Recover the primal: x = x0 - Q⁻¹ Gᵀ λ.
	x := x0.Clone()
	for i := 0; i < m; i++ {
		if lambda[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			x[j] -= g[i][j] * lambda[i] / q[j]
		}
	}
	// Hildreth's primal iterate can sit a hair outside the feasible set
	// when the optimum lies on the boundary (which it almost always does
	// here). Restore feasibility with cyclic projections; each pass
	// moves x by at most the current violation, so optimality degrades
	// only by the same tiny amount.
	for pass := 0; pass < 200; pass++ {
		worst := 0.0
		for i := 0; i < m; i++ {
			viol := g[i].Dot(x) - h[i]
			if viol <= 0 {
				continue
			}
			if viol > worst {
				worst = viol
			}
			nn := g[i].Dot(g[i])
			if nn < 1e-15 {
				continue
			}
			step := (viol + 1e-13) / nn
			for j := 0; j < n; j++ {
				x[j] -= step * g[i][j]
			}
		}
		if worst == 0 {
			break
		}
	}
	// On an infeasible system Hildreth's multipliers diverge and the
	// primal never becomes feasible; surface that instead of returning a
	// violating point.
	for i := 0; i < m; i++ {
		if g[i].Dot(x) > h[i]+1e-6*(1+math.Abs(h[i])) {
			return nil, ErrInfeasible
		}
	}
	return x, nil
}

// MinSquaredNorm minimizes Σ x[j]^2 subject to G x <= h. This is the
// paper's "manufacturing cost proportional to summed squares" model.
func MinSquaredNorm(n int, g []vec.Vector, h vec.Vector, opt Options) (vec.Vector, error) {
	q := vec.New(n)
	for j := range q {
		q[j] = 2
	}
	return SolveDiagonal(q, vec.New(n), g, h, opt)
}

// NearestPoint minimizes ||x - target||^2 subject to G x <= h: the
// paper's minimum-modification-cost enhancement of an existing option.
func NearestPoint(target vec.Vector, g []vec.Vector, h vec.Vector, opt Options) (vec.Vector, error) {
	n := len(target)
	q := vec.New(n)
	c := vec.New(n)
	for j := range q {
		q[j] = 2
		c[j] = -2 * target[j]
	}
	return SolveDiagonal(q, c, g, h, opt)
}
