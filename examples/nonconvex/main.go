// Non-convex clientele and manufacturing constraints (Section 3.1).
//
// A manufacturer targets two disjoint customer segments at once — a
// performance-leaning group and a battery-leaning group — i.e. a
// NON-convex preference region. Per the paper, the union is handled by
// solving each convex piece and intersecting the option regions. On top
// of that, engineering imposes an attribute interdependency
// (performance + battery <= 1.75): it is intersected with oR after TopRR
// computation, and the cost-optimal placement honors it.
//
// Run with: go run ./examples/nonconvex
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	market := dataset.Laptops()
	pieces := []*geom.Polytope{
		toprr.PrefBox(vec.Of(0.15), vec.Of(0.25)), // battery-leaning segment
		toprr.PrefBox(vec.Of(0.65), vec.Of(0.75)), // performance-leaning segment
	}
	k := 5

	region, results, err := toprr.SolveUnion(context.Background(), market.Pts, k, pieces, toprr.Options{Alg: toprr.TASStar})
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		lo, hi := pieces[i].BoundingBox()
		fmt.Printf("segment %d (wR=[%.2f, %.2f]): |Vall|=%d, solved in %v\n",
			i+1, lo[0], hi[0], res.Stats.VallSize, res.Stats.Elapsed)
	}

	// Unconstrained cost-optimal placement for the combined clientele.
	free, err := region.CostOptimalNew()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost-optimal for BOTH segments: perf=%.3f battery=%.3f (cost %.3f)\n",
		free[0], free[1], free.Dot(free))

	// Engineering constraint: perf + battery <= 1.75.
	constrained := region.Intersect(geom.NewHalfspace(vec.Of(-1, -1), -1.75))
	if _, ok := constrained.Feasible(); !ok {
		fmt.Println("the engineering envelope admits no top-ranking design")
		return
	}
	opt, err := constrained.CostOptimalNew()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with perf+battery <= 1.75:      perf=%.3f battery=%.3f (cost %.3f)\n",
		opt[0], opt[1], opt.Dot(opt))

	// The minimal H-representation shows which constraints truly shape
	// the design space.
	min := constrained.Minimal()
	fmt.Printf("\nbinding constraints of the final design space (%d of %d):\n",
		len(min.HS), len(constrained.HS))
	for _, h := range min.HS {
		fmt.Printf("  %.3f*perf + %.3f*battery >= %.3f\n", h.A[0], h.A[1], h.B)
	}
}
