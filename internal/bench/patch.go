package bench

// The patch-on-insert experiment: two identically warmed top-k
// registries take the same pure-insert stream, one through
// AdvanceInsert (splice repair) and one through Advance (drop); the
// table records the options each side scores to be warm again at the
// new generation, per shard count. The counts are deterministic —
// pinned seeds, exact work accounting — so BENCH_patch.json rows are
// gated by cmd/benchrunner -compare: the scored-options ratio must stay
// above the floor, and a dominated insert must drop nothing.

import (
	"context"
	"fmt"
	"math/rand"

	"toprr/internal/dataset"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// PatchShardGrid is the shard counts the patch experiment sweeps.
var PatchShardGrid = []int{1, 2, 4, 8}

const (
	patchBenchK    = DefaultK
	patchVertices  = 32 // memoized preference vertices warmed per registry
	patchBatches   = 4  // single-insert batches applied to the warm caches
	patchRatioMin  = 5  // scored-options floor enforced by -compare
	patchTableID   = "Patch"
	patchTableHdr  = "shards"
	patchDropsWant = 0
)

// patchWeights draws the pinned set of reduced preference vectors whose
// top-k results the experiment memoizes.
func patchWeights(d int) []vec.Vector {
	rng := rand.New(rand.NewSource(71))
	ws := make([]vec.Vector, patchVertices)
	for i := range ws {
		w := vec.New(d - 1)
		for j := range w {
			w[j] = rng.Float64() / float64(d)
		}
		ws[i] = w
	}
	return ws
}

// warmRegistry populates the whole-dataset (k, nil) configuration with
// every pinned vertex.
func warmRegistry(reg *topk.Registry, ws []vec.Vector) {
	c := reg.Get(patchBenchK, nil)
	for _, w := range ws {
		c.Get(w)
	}
}

// lookupScored replays the vertices against the registry's current
// whole-dataset cache and returns the options scored to serve them —
// zero when every lookup hits. Sharded caches attribute scoring work
// through a ShardAccum; unsharded misses each rescore the full dataset.
func lookupScored(reg *topk.Registry, ws []vec.Vector, shards, n int) (scored int, keys []string) {
	ctx := context.Background()
	c := reg.Get(patchBenchK, nil)
	keys = make([]string, len(ws))
	if shards > 1 {
		acc := topk.NewShardAccum(shards)
		for i, w := range ws {
			r, _, err := c.LookupCtx(ctx, w, acc)
			if err != nil {
				panic("bench: patch lookup failed: " + err.Error())
			}
			keys[i] = r.OrderKey()
		}
		for i := range acc.Scored {
			scored += int(acc.Scored[i].Load())
		}
		return scored, keys
	}
	for i, w := range ws {
		r, hit := c.Lookup(w)
		if !hit {
			scored += n
		}
		keys[i] = r.OrderKey()
	}
	return scored, keys
}

// Patch measures patched-advance vs drop-and-recompute lookup cost
// after pure inserts, per shard count, plus the dominated-insert
// invariant (an insert cracking no memoized top-k drops nothing).
func Patch(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	d := DefaultD
	ws := patchWeights(d)
	insRng := rand.New(rand.NewSource(72))

	t := &Table{
		ID: patchTableID,
		Caption: fmt.Sprintf("patch-on-insert vs drop-recompute, IND n=%s d=%d k=%d, %d vertices, %d inserts (options scored to re-warm)",
			humanN(len(ds.Pts)), d, patchBenchK, patchVertices, patchBatches),
		Header: []string{patchTableHdr, "entries", "patch scored", "cold scored", "ratio", "untouched drops"},
	}

	for _, shards := range PatchShardGrid {
		// Two identically warmed registries over the same base points.
		sc0 := topk.NewScorerAt(ds.Pts, 1)
		regPatch := topk.NewShardedRegistry(sc0, shards)
		regCold := topk.NewShardedRegistry(sc0, shards)
		warmRegistry(regPatch, ws)
		warmRegistry(regCold, ws)

		// The same single-insert stream advances both: splice repair on
		// one side, the pre-existing drop path on the other. Patch-side
		// advance work is PatchSummary.Entries scores per insert (each
		// examined entry scores the one inserted option).
		pts := ds.Pts
		patchScored := 0
		rng := rand.New(rand.NewSource(insRng.Int63()))
		for b := 0; b < patchBatches; b++ {
			p := vec.New(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts = append(pts[:len(pts):len(pts)], p)
			scn := topk.NewScorerAt(pts, uint64(2+b))
			slot := []int{len(pts) - 1}
			sum := regPatch.AdvanceInsert(scn, slot)
			if sum.Fallback {
				panic("bench: patch advance fell back to drop")
			}
			patchScored += sum.Entries * len(slot)
			regCold.Advance(scn, slot)
		}

		// Re-warming: the patched side should hit everywhere (its extra
		// cost stays the advance-time splices), the cold side rescoreds
		// whatever the drop path discarded.
		postScored, patchKeys := lookupScored(regPatch, ws, shards, len(pts))
		patchScored += postScored
		coldScored, coldKeys := lookupScored(regCold, ws, shards, len(pts))
		for i := range patchKeys {
			if patchKeys[i] != coldKeys[i] {
				panic(fmt.Sprintf("bench: patched and recomputed rankings diverge at vertex %d (shards=%d)", i, shards))
			}
		}

		// The dominated-insert invariant: an option no memoized vertex
		// ranks must patch nothing and drop nothing.
		entries := 0
		drops := 0
		{
			evBefore := regPatch.Evictions()
			pts = append(pts[:len(pts):len(pts)], vec.New(d))
			scn := topk.NewScorerAt(pts, uint64(2+patchBatches))
			sum := regPatch.AdvanceInsert(scn, []int{len(pts) - 1})
			entries = sum.Entries
			if sum.Changed() {
				panic("bench: dominated insert patched an entry")
			}
			drops = sum.MergedDropped + (regPatch.Evictions() - evBefore)
			if again, _ := lookupScored(regPatch, ws, shards, len(pts)); again != 0 {
				drops += again // replay should be all hits; count rescoring as drops
			}
		}

		ratio := float64(coldScored) / float64(patchScored)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", entries),
			fmt.Sprintf("%d", patchScored),
			fmt.Sprintf("%d", coldScored),
			fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%d", drops),
		})
	}
	return []*Table{t}
}
