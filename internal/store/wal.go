package store

// The write-ahead-log codec. A WAL segment file is
//
//	8-byte magic "TOPRRWL1"
//	zero or more records
//
// and one record encodes exactly one Apply batch (so batch atomicity
// survives a crash — a batch is either wholly on disk or not at all):
//
//	u32  payload length
//	u32  CRC-32 (IEEE) of the payload
//	payload:
//	  u64 generation the batch published
//	  u64 sequence number of the batch's first op
//	  u32 op count
//	  per op: u8 kind · u32 index · u32 point dim · dim × u64 float bits
//
// All integers are little-endian. Deletes carry dim 0; inserts carry
// index 0. A record is *torn* when the file ends inside the header or
// payload, or the checksum mismatches; recovery truncates the segment
// to the end of the last complete record (see persist.go).
//
// Segments are named wal-<first-generation>.seg with the generation in
// zero-padded hex, so the lexicographic file order is the replay order.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"toprr/internal/vec"
)

const (
	walMagic      = "TOPRRWL1"
	walHeaderSize = 8 // u32 length + u32 crc
	// maxRecordBytes rejects absurd lengths from corrupt headers before
	// they become allocations.
	maxRecordBytes = 1 << 30
)

// segmentName names the WAL segment whose first record publishes gen.
func segmentName(gen Generation) string {
	return fmt.Sprintf("wal-%016x.seg", uint64(gen))
}

// encodeBatch serializes one applied batch as a WAL record payload. recs
// carry the store's own cloned point vectors, so the encoded bytes are
// immune to caller mutation.
func encodeBatch(gen Generation, firstSeq uint64, recs []AppliedOp) []byte {
	// Deletes carry no payload on the wire (dim 0), whatever their
	// in-memory Op holds.
	dim := func(r AppliedOp) int {
		if r.Op.Kind == OpDelete {
			return 0
		}
		return len(r.Op.Point)
	}
	n := 8 + 8 + 4
	for _, r := range recs {
		n += 1 + 4 + 4 + dim(r)*8
	}
	buf := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(gen))
	le.PutUint64(buf[8:], firstSeq)
	le.PutUint32(buf[16:], uint32(len(recs)))
	off := 20
	for _, r := range recs {
		buf[off] = byte(r.Op.Kind)
		le.PutUint32(buf[off+1:], uint32(r.Op.Index))
		le.PutUint32(buf[off+5:], uint32(dim(r)))
		off += 9
		for _, x := range r.Op.Point[:dim(r)] {
			le.PutUint64(buf[off:], math.Float64bits(x))
			off += 8
		}
	}
	return buf
}

// decodeBatch parses one WAL record payload back into its op batch.
func decodeBatch(p []byte) (gen Generation, firstSeq uint64, ops []Op, err error) {
	le := binary.LittleEndian
	if len(p) < 20 {
		return 0, 0, nil, fmt.Errorf("payload %d bytes, want >= 20", len(p))
	}
	gen = Generation(le.Uint64(p[0:]))
	firstSeq = le.Uint64(p[8:])
	nops := int(le.Uint32(p[16:]))
	// Each op takes at least 9 payload bytes, so the claimed count is
	// bounded by the payload actually present — before any allocation.
	if nops < 0 || nops > (len(p)-20)/9 {
		return 0, 0, nil, fmt.Errorf("op count %d exceeds payload", nops)
	}
	ops = make([]Op, 0, nops)
	off := 20
	for i := 0; i < nops; i++ {
		if len(p)-off < 9 {
			return 0, 0, nil, fmt.Errorf("op %d: truncated header", i)
		}
		kind := OpKind(p[off])
		index := int(le.Uint32(p[off+1:]))
		dim := int(le.Uint32(p[off+5:]))
		off += 9
		if dim > (len(p)-off)/8 {
			return 0, 0, nil, fmt.Errorf("op %d: truncated point (dim %d)", i, dim)
		}
		var pt vec.Vector
		if dim > 0 {
			pt = vec.New(dim)
			for j := 0; j < dim; j++ {
				pt[j] = math.Float64frombits(le.Uint64(p[off:]))
				off += 8
			}
		}
		switch kind {
		case OpInsert, OpDelete, OpUpdate:
		default:
			return 0, 0, nil, fmt.Errorf("op %d: unknown kind %d", i, int(kind))
		}
		ops = append(ops, Op{Kind: kind, Index: index, Point: pt})
	}
	if off != len(p) {
		return 0, 0, nil, fmt.Errorf("%d trailing bytes", len(p)-off)
	}
	return gen, firstSeq, ops, nil
}

// segmentInfo is one on-disk WAL segment.
type segmentInfo struct {
	path string
	size int64
}

// listSegments returns the directory's WAL segments in replay
// (lexicographic, i.e. first-generation) order.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].path < segs[j].path })
	return segs, nil
}

// scanSegment iterates the complete, checksummed records of one segment,
// calling fn for each. It returns the offset of the end of the last good
// record — the size the file must be truncated to when torn — and
// whether the tail is torn (short magic/header/payload, checksum
// mismatch, or an undecodable payload). A record that checksums and
// decodes but is *rejected by fn* is different: the bytes are intact, so
// this is not a crash artifact recovery may truncate away — it is
// surfaced as a fatal err (as are I/O failures) and the file is left
// untouched for inspection.
func scanSegment(path string, fn func(gen Generation, firstSeq uint64, ops []Op) error) (valid int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		// The crash landed inside the 8-byte magic itself; nothing in the
		// file is usable.
		return 0, true, nil
	}
	le := binary.LittleEndian
	off := int64(len(walMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, false, nil
		}
		if len(rest) < walHeaderSize {
			return off, true, nil
		}
		length := int64(le.Uint32(rest[0:]))
		sum := le.Uint32(rest[4:])
		if length > maxRecordBytes || int64(len(rest))-walHeaderSize < length {
			return off, true, nil
		}
		payload := rest[walHeaderSize : walHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, true, nil
		}
		gen, firstSeq, ops, err := decodeBatch(payload)
		if err != nil {
			return off, true, nil
		}
		if fn != nil {
			if err := fn(gen, firstSeq, ops); err != nil {
				return off, false, fmt.Errorf("%s: record at offset %d: %w", path, off, err)
			}
		}
		off += walHeaderSize + length
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed file name
// is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// walWriter appends batch records to the active WAL segment and tracks
// the sealed ones. File writes (f, broken) are serialized by the
// store's writer lock, NOT self-locked; the size/segment metadata
// carries its own mutex so stats readers can observe it while an append
// is in flight.
//
// Fsyncs are group-committed: append writes the record and returns a
// monotone ticket without syncing; waitSync (called after the writer
// lock is released) blocks until a sync covers the ticket. Concurrent
// callers elect one leader, whose single fsync covers every record
// appended before it started, so N concurrent Apply batches pay one
// disk flush instead of N — they coalesce instead of serializing on the
// platter. Single-caller behavior is unchanged: its own waitSync leads
// and syncs its own record. Segment swaps (roll, restart, close) first
// quiesce the group: they wait out an in-flight leader, sync the active
// file themselves and advance the watermark past every append, so no
// leader ever syncs a closed file and no waiter is left behind.
type walWriter struct {
	dir    string
	f      *os.File
	path   string
	always bool  // group-commit fsync per batch (SyncAlways)
	broken error // first append/sync failure; sticky so a half-written tail is never appended past

	appendSeq atomic.Uint64 // tickets: records appended so far
	syncCount atomic.Int64  // fsyncs issued (observability: PersistStats.WALSyncs)

	gcMu      sync.Mutex // group-commit state below
	gcCond    *sync.Cond
	syncedSeq uint64 // ticket watermark made durable
	syncing   bool   // a leader's fsync is in flight
	gcErr     error  // first sync failure; sticky

	mu     sync.Mutex // guards size and sealed (metadata for stats readers)
	size   int64      // bytes of the active segment, magic included
	sealed []segmentInfo
}

// openWAL opens a writer over the directory's existing segments (segs,
// already truncated to their valid sizes by recovery), appending to the
// last one, or starting a fresh segment named for nextGen when none
// exist.
func openWAL(dir string, segs []segmentInfo, nextGen Generation, always bool) (*walWriter, error) {
	w := &walWriter{dir: dir, always: always}
	w.gcCond = sync.NewCond(&w.gcMu)
	if len(segs) == 0 {
		if err := w.openSegment(nextGen); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.f, w.path, w.size = f, last.path, last.size
	w.sealed = append(w.sealed, segs[:len(segs)-1]...)
	return w, nil
}

// openSegment creates a fresh active segment and makes its name durable.
// On failure the writer is untouched (the half-created file is removed),
// so callers can keep using the previous segment.
func (w *walWriter) openSegment(gen Generation) error {
	path := filepath.Join(w.dir, segmentName(gen))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := syncDir(w.dir); err != nil {
		return fail(err)
	}
	w.f, w.path = f, path
	w.mu.Lock()
	w.size = int64(len(walMagic))
	w.mu.Unlock()
	return nil
}

// append writes one record (header + payload) to the active segment —
// without syncing — and returns the record's group-commit ticket; under
// SyncAlways the caller must waitSync the ticket (after releasing the
// writer lock) before treating the batch as durable. The first failure
// is sticky: a partial tail may be on disk, so further appends would
// land after garbage and are refused until the store reopens (recovery
// truncates the tear). A sticky group-sync failure likewise breaks the
// writer: records after a failed flush would be acknowledged on top of
// an undurable prefix.
func (w *walWriter) append(payload []byte) (uint64, error) {
	if w.broken != nil {
		return 0, w.broken
	}
	w.gcMu.Lock()
	gcErr := w.gcErr
	w.gcMu.Unlock()
	if gcErr != nil {
		w.broken = gcErr
		return 0, gcErr
	}
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	if _, err := w.f.Write(rec); err != nil {
		w.broken = err
		return 0, err
	}
	ticket := w.appendSeq.Add(1)
	w.mu.Lock()
	w.size += int64(len(rec))
	w.mu.Unlock()
	return ticket, nil
}

// waitSync blocks until a group fsync covers ticket (a no-op unless the
// writer runs SyncAlways). The first caller to find no sync in flight
// becomes the leader: it snapshots the append watermark, fsyncs once
// outside the lock, and wakes every waiter the flush covered — however
// many batches queued behind it. Waiters whose ticket is already under
// the watermark return without touching the disk at all. A sync failure
// is sticky and fails every waiter above the watermark.
func (w *walWriter) waitSync(ticket uint64) error {
	if !w.always {
		return nil
	}
	w.gcMu.Lock()
	defer w.gcMu.Unlock()
	for {
		if w.syncedSeq >= ticket {
			return nil
		}
		if w.gcErr != nil {
			return w.gcErr
		}
		if w.syncing {
			w.gcCond.Wait()
			continue
		}
		w.syncing = true
		// Everything appended before the fsync starts is covered by it.
		// The leader's own append happened-after any segment swap (both
		// order through the store's writer lock), so f is stable here.
		target := w.appendSeq.Load()
		f := w.f
		w.gcMu.Unlock()
		err := f.Sync()
		w.syncCount.Add(1)
		w.gcMu.Lock()
		w.syncing = false
		if err != nil {
			if w.gcErr == nil {
				w.gcErr = err
			}
		} else if target > w.syncedSeq {
			w.syncedSeq = target
		}
		w.gcCond.Broadcast()
	}
}

// quiesce drains the group-commit machinery before a segment swap: it
// waits out an in-flight leader, syncs the active file itself (holding
// the leader slot so no new fsync can race the swap), and advances the
// watermark past every append — the caller holds the writer lock, so no
// new records can arrive and every present or future waiter is
// satisfied without touching the old file.
func (w *walWriter) quiesce() error {
	w.gcMu.Lock()
	for w.syncing {
		w.gcCond.Wait()
	}
	w.syncing = true
	w.gcMu.Unlock()
	err := w.f.Sync()
	w.syncCount.Add(1)
	w.gcMu.Lock()
	w.syncing = false
	if err != nil {
		if w.gcErr == nil {
			w.gcErr = err
		}
	} else if t := w.appendSeq.Load(); t > w.syncedSeq {
		w.syncedSeq = t
	}
	w.gcCond.Broadcast()
	w.gcMu.Unlock()
	return err
}

// syncs reports the fsyncs issued so far; with group commit this can be
// far below the batches appended.
func (w *walWriter) syncs() int64 { return w.syncCount.Load() }

// roll seals the active segment and starts a fresh one named for gen.
// The new segment opens before the old one closes, so a failed roll
// leaves the writer on the old, still-open segment and appends keep
// working (the roll retries on a later maintenance cycle).
func (w *walWriter) roll(gen Generation) error {
	if err := w.quiesce(); err != nil {
		return err
	}
	oldF, oldPath := w.f, w.path
	w.mu.Lock()
	oldSize := w.size
	w.mu.Unlock()
	if err := w.openSegment(gen); err != nil {
		return err
	}
	oldF.Close()
	w.mu.Lock()
	w.sealed = append(w.sealed, segmentInfo{path: oldPath, size: oldSize})
	w.mu.Unlock()
	return nil
}

// sealedCount reports how many segments are sealed right now.
func (w *walWriter) sealedCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed)
}

// activeSize reports the active segment's current size.
func (w *walWriter) activeSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// restartActive replaces the active segment with a fresh, empty one
// named for gen, removing the old file. Compaction calls it once the
// base snapshot covering the active segment's records is durable. Like
// roll, the new segment opens before the old closes, so a failure
// leaves the writer appending to the old segment.
func (w *walWriter) restartActive(gen Generation) error {
	oldF, oldPath := w.f, w.path
	if err := w.openSegment(gen); err != nil {
		return err
	}
	oldF.Close()
	if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(w.dir)
}

// dropSealed removes the n oldest sealed segments from disk. Compaction
// calls it once the base snapshot covering them is durable. Already-gone
// files are tolerated so a partially failed drop retries cleanly.
func (w *walWriter) dropSealed(n int) error {
	w.mu.Lock()
	drop := append([]segmentInfo(nil), w.sealed[:n]...)
	w.mu.Unlock()
	for _, seg := range drop {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	w.mu.Lock()
	w.sealed = append(w.sealed[:0], w.sealed[n:]...)
	w.mu.Unlock()
	return syncDir(w.dir)
}

// bytes reports the total on-disk WAL size across all segments.
func (w *walWriter) bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.size
	for _, seg := range w.sealed {
		n += seg.size
	}
	return n
}

// segments reports the number of on-disk WAL segments.
func (w *walWriter) segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// close syncs (draining any in-flight group commit) and closes the
// active segment.
func (w *walWriter) close() error {
	if err := w.quiesce(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
