package core

import (
	"sort"
	"sync"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Assembler is the final pipeline stage of a TopRR solve: given the
// collected impact vertices Vall, it produces oR per Theorem 1 — the
// intersection of the option box with the impact halfspaces of every
// vertex. Implementations must be deterministic for a given Vall.
type Assembler interface {
	// Name identifies the assembler in stats and logs.
	Name() string
	// Assemble returns the exact H-representation of oR and, when it
	// fits within vertexBudget, its explicit geometry.
	Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput
}

// AssembleOutput is the result of the assemble stage.
type AssembleOutput struct {
	Constraints []geom.Halfspace // exact H-representation (always set)
	OR          *geom.Polytope   // explicit geometry, nil if over budget
	Clips       int              // halfspaces that actually cut during enumeration
	ShardClips  []int            // per-shard clip counts (ParallelClipAssembler only)
}

// ClipAssembler is the default assembler: incremental halfspace
// clipping of the option box.
//
// It always returns the exact H-representation (box constraints plus
// the deduplicated impact halfspaces). The explicit polytope is built
// by incremental clipping — halfspaces already satisfied by every
// current vertex are skipped, and deeper cuts are applied first so most
// later halfspaces hit that fast path — but with a small preference
// region the impact halfspaces are nearly parallel, and in high
// dimensions their intersection can have intractably many vertices; if
// the enumeration exceeds vertexBudget the polytope is abandoned (nil)
// while the H-representation stays exact.
type ClipAssembler struct{}

// Name implements Assembler.
func (ClipAssembler) Name() string { return "clip" }

// optionBox returns the [0,1]^d option-space box.
func optionBox(d int) *geom.Polytope {
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	return geom.NewBox(lo, hi)
}

// dedupImpact deduplicates the impact halfspaces of Vall on a quantized
// grid and orders them deepest-cut first (higher threshold binds more
// of the box), with a deterministic tie-break so runs are reproducible.
// Both assemblers share it, so their constraint lists are identical.
func dedupImpact(scorer *topk.Scorer, vall []ImpactVertex) []geom.Halfspace {
	type keyed struct {
		h   geom.Halfspace
		key string
	}
	seen := make(map[string]bool, len(vall))
	impactKeyed := make([]keyed, 0, len(vall))
	for _, iv := range vall {
		h := iv.ImpactHalfspace(scorer)
		key := append(h.A.Clone(), h.B).Key(1e-9)
		if seen[key] {
			continue
		}
		seen[key] = true
		impactKeyed = append(impactKeyed, keyed{h: h, key: key})
	}
	sort.Slice(impactKeyed, func(i, j int) bool {
		if impactKeyed[i].h.B != impactKeyed[j].h.B {
			return impactKeyed[i].h.B > impactKeyed[j].h.B
		}
		return impactKeyed[i].key < impactKeyed[j].key
	})
	impact := make([]geom.Halfspace, len(impactKeyed))
	for i, k := range impactKeyed {
		impact[i] = k.h
	}
	return impact
}

// clipFold runs the sequential incremental clip of impact against box:
// the explicit polytope (nil when the enumeration exceeds
// vertexBudget) and the number of halfspaces that actually cut.
func clipFold(box *geom.Polytope, impact []geom.Halfspace, vertexBudget int) (or *geom.Polytope, clips int) {
	or = box
	for _, h := range impact {
		next := or.Clip(h)
		if next != or {
			clips++
		}
		or = next
		if or.NumVertices() > vertexBudget {
			return nil, clips
		}
	}
	return or, clips
}

// Assemble implements Assembler.
func (ClipAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	box := optionBox(scorer.Dim())
	impact := dedupImpact(scorer, vall)
	out := AssembleOutput{
		Constraints: append(append([]geom.Halfspace(nil), box.HS...), impact...),
	}
	out.OR, out.Clips = clipFold(box, impact, vertexBudget)
	return out
}

// ParallelClipAssembler is the sharded merge stage: the deduplicated
// impact halfspaces are split round-robin into one constraint chunk per
// shard, each chunk is clipped against the option box concurrently, and
// the per-shard polytopes are intersected — constraint intersection
// over the existing geom machinery — into the final region. Because
// halfspace intersection is commutative and associative, the result is
// exactly ClipAssembler's region, and the shared dedup keeps the
// H-representation identical too; only the explicit vertex enumeration
// may differ by float noise in degenerate cases. When an intermediate
// chunk polytope exceeds the vertex budget, the assembler falls back to
// the sequential fold, so whether OR geometry is present matches the
// unsharded assembler exactly as well. Per-shard clip counts
// land in AssembleOutput.ShardClips, summing to Clips (the
// intersection fold's cuts are attributed to the chunk that
// contributed the cutting halfspace; when a fallback runs the
// sequential fold instead, its cuts are attributed to shard 0).
type ParallelClipAssembler struct {
	// Shards is the chunk count (values < 2 fall back to the sequential
	// ClipAssembler path; values above topk.MaxShards are clamped).
	Shards int
}

// Name implements Assembler.
func (ParallelClipAssembler) Name() string { return "clip-sharded" }

// Assemble implements Assembler.
func (a ParallelClipAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	s := a.Shards
	if s > topk.MaxShards {
		s = topk.MaxShards
	}
	impact := dedupImpact(scorer, vall)
	box := optionBox(scorer.Dim())
	out := AssembleOutput{
		Constraints: append(append([]geom.Halfspace(nil), box.HS...), impact...),
	}
	// Sequential path, reusing the already-deduplicated impact list:
	// too few constraints for the fan-out to pay for itself, or an
	// over-budget intermediate in the chunked phases below. Its clips
	// are attributed to shard 0, keeping sum(ShardClips) == Clips.
	sequential := func() AssembleOutput {
		out.OR, out.Clips = clipFold(box, impact, vertexBudget)
		out.ShardClips = make([]int, a.Shards)
		if a.Shards > 0 {
			out.ShardClips[0] = out.Clips
		}
		return out
	}
	if s < 2 || len(impact) < 2*s {
		return sequential()
	}
	out.ShardClips = make([]int, s)

	// Round-robin assignment keeps the deepest cuts (the front of the
	// deduplicated order) spread across chunks.
	chunks := make([][]geom.Halfspace, s)
	for i, h := range impact {
		chunks[i%s] = append(chunks[i%s], h)
	}

	// Phase 1 — clip each chunk against the box concurrently. Each
	// chunk's polytope prunes that chunk's redundant halfspaces, so the
	// fold below only pays for constraints that still matter. A chunk
	// holds only ~1/S of the constraints, so its intermediate polytope
	// can exceed the vertex budget where the sequential deepest-cut
	// fold would not; over-budget falls back to the sequential path
	// below rather than dropping the geometry, so OR presence matches
	// the unsharded assembler exactly.
	polys := make([]*geom.Polytope, s)
	over := make([]bool, s)
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			or := box
			for _, h := range chunks[i] {
				next := or.Clip(h)
				if next != or {
					out.ShardClips[i]++
				}
				or = next
				if or.NumVertices() > vertexBudget {
					over[i] = true
					return
				}
			}
			polys[i] = or
		}(i)
	}
	wg.Wait()
	for _, o := range over {
		if o {
			return sequential()
		}
	}
	for i := range out.ShardClips {
		out.Clips += out.ShardClips[i]
	}

	// Phase 2 — intersect the per-shard polytopes in shard order. Each
	// polytope's H-representation describes exactly its region, so
	// clipping by it is intersection; empty chunks short-circuit. An
	// over-budget intermediate falls back to the sequential fold for
	// the same reason as phase 1.
	or := polys[0]
	for i := 1; i < s && !or.IsEmpty(); i++ {
		for _, h := range polys[i].HS {
			next := or.Clip(h)
			if next != or {
				out.ShardClips[i]++
				out.Clips++
			}
			or = next
			if or.NumVertices() > vertexBudget {
				return sequential()
			}
		}
	}
	out.OR = or
	return out
}

// sortedVall returns Vall in a deterministic order.
func (s *solver) sortedVall() []ImpactVertex {
	keys := make([]string, 0, len(s.vall))
	for k := range s.vall {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ImpactVertex, len(keys))
	for i, k := range keys {
		out[i] = s.vall[k]
	}
	return out
}
