package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// statsJSON mirrors the /v1/stats fields this suite asserts on.
type statsJSON struct {
	Generation     uint64 `json:"generation"`
	Options        int    `json:"options"`
	LiveGens       int    `json:"live_generations"`
	RetainedBytes  int64  `json:"retained_snapshot_bytes"`
	Persistent     bool   `json:"persistent"`
	WALBytes       int64  `json:"wal_bytes"`
	WALSegments    int    `json:"wal_segments"`
	LastCompaction uint64 `json:"last_compaction_generation"`
}

func getStats(t *testing.T, url string) statsJSON {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsJSON
	decodeJSON(t, resp, &stats)
	return stats
}

// durableServer builds an httptest server over a durable registry
// rooted at root whose default dataset, when absent, is bootstrapped
// from pts. The registry is returned for explicit shutdown.
func durableServer(t *testing.T, root string, pts []vec.Vector, cfg toprr.PersistConfig) (*httptest.Server, *toprr.Registry) {
	t.Helper()
	cfg.Dir = root
	reg, err := toprr.NewRegistry(toprr.WithRegistryPersistence(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("default", pts); err != nil {
		reg.Close()
		t.Fatal(err)
	}
	return httptest.NewServer(newServer(reg, time.Minute, 32<<20)), reg
}

// TestDaemonRestartServesSameState is the legacy-route acceptance
// scenario: a durable daemon takes mutations over HTTP on the default
// dataset, shuts down, and a restarted daemon over the same registry
// root serves the same generation contents through the same pre-tenancy
// routes.
func TestDaemonRestartServesSameState(t *testing.T) {
	root := t.TempDir()
	ts, reg := durableServer(t, root, testPts(40), toprr.PersistConfig{})

	resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{
			{Op: "insert", Point: []float64{0.9, 0.9, 0.9}},
			{Op: "update", Index: 3, Point: []float64{0.95, 0.1, 0.5}},
			{Op: "delete", Index: 0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	before := getStats(t, ts.URL)
	if !before.Persistent || before.WALBytes <= 0 {
		t.Fatalf("durable daemon stats = %+v", before)
	}
	engine, err := reg.Get("default")
	if err != nil {
		t.Fatal(err)
	}
	wantPts := engine.Scorer().Points()
	ts.Close()
	// Close releases the directory flocks like a process death would; it
	// writes nothing, so the restart recovers purely from base snapshot
	// + WAL replay (true kill -9 recovery is exercised by the store
	// suite, where the lock fd can be dropped without Close).
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same root; the bootstrap dataset is a decoy the
	// recovery must ignore.
	ts2, reg2 := durableServer(t, root, []vec.Vector{vec.Of(0.1, 0.1, 0.1)}, toprr.PersistConfig{})
	defer reg2.Close()
	defer ts2.Close()

	after := getStats(t, ts2.URL)
	if after.Generation != before.Generation || after.Options != before.Options {
		t.Fatalf("restarted daemon at generation %d with %d options, want %d with %d",
			after.Generation, after.Options, before.Generation, before.Options)
	}
	engine2, err := reg2.Get("default")
	if err != nil {
		t.Fatal(err)
	}
	got := engine2.Scorer().Points()
	for i := range wantPts {
		if !got[i].Equal(wantPts[i], 0) {
			t.Fatalf("slot %d = %v after restart, want %v", i, got[i], wantPts[i])
		}
	}
	// GC observability fields are live on the wire.
	if after.LiveGens < 1 || after.RetainedBytes <= 0 {
		t.Fatalf("GC stats on the wire = %+v", after)
	}
}

// TestStatsReportCompaction: once mutations cross the compaction
// threshold, /v1/stats shows the truncated WAL and the advanced base
// snapshot watermark.
func TestStatsReportCompaction(t *testing.T) {
	ts, reg := durableServer(t, t.TempDir(),
		[]vec.Vector{vec.Of(0.2, 0.8, 0.5), vec.Of(0.8, 0.2, 0.5)},
		toprr.PersistConfig{CompactOps: 4})
	defer reg.Close()
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
			"ops": []opJSON{{Op: "insert", Point: []float64{0.5, 0.5, 0.5}}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	stats := getStats(t, ts.URL)
	if stats.LastCompaction <= 1 {
		t.Fatalf("no compaction visible in stats: %+v", stats)
	}
	if stats.WALSegments != 1 {
		t.Fatalf("stats report %d segments after compaction, want 1", stats.WALSegments)
	}
}
