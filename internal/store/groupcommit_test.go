package store

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// TestWALGroupCommitCoalesces: one leader fsync covers every record
// appended before it, so waiters behind the leader finish without
// issuing their own flush. Deterministic: all appends land before any
// waitSync.
func TestWALGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, nil, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()

	var tickets []uint64
	for i := 0; i < 5; i++ {
		rec := AppliedOp{Seq: uint64(i + 1), Gen: 2, Op: Insert(vec.Of(0.5, 0.5))}
		tk, err := w.append(encodeBatch(2, uint64(i+1), []AppliedOp{rec}))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	// The highest ticket leads one flush; every lower ticket must then
	// return under the watermark without another fsync.
	if err := w.waitSync(tickets[len(tickets)-1]); err != nil {
		t.Fatal(err)
	}
	after := w.syncs()
	if after != 1 {
		t.Fatalf("leader flush issued %d fsyncs, want 1", after)
	}
	var wg sync.WaitGroup
	for _, tk := range tickets[:len(tickets)-1] {
		wg.Add(1)
		go func(tk uint64) {
			defer wg.Done()
			if err := w.waitSync(tk); err != nil {
				t.Errorf("waitSync(%d): %v", tk, err)
			}
		}(tk)
	}
	wg.Wait()
	if got := w.syncs(); got != after {
		t.Fatalf("covered waiters issued %d extra fsyncs", got-after)
	}
}

// TestStoreConcurrentApply: concurrent Apply batches on a durable store
// publish gapless generations with strictly ordered log sequence
// numbers, and the WAL replays the identical dataset.
func TestStoreConcurrentApply(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(PersistConfig{Dir: dir}, []vec.Vector{vec.Of(0.1, 0.2), vec.Of(0.3, 0.4)})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		batches = 15
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				x := float64(w*batches+b) / float64(writers*batches)
				if _, _, err := s.Apply([]Op{Insert(vec.Of(x, 1-x))}); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := s.Generation(), Generation(1+writers*batches); got != want {
		t.Fatalf("generation = %d, want %d", got, want)
	}
	log := s.Log(0)
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatalf("log sequence gap: %d then %d", log[i-1].Seq, log[i].Seq)
		}
		if log[i].Gen < log[i-1].Gen {
			t.Fatalf("log generations out of order: %d then %d", log[i-1].Gen, log[i].Gen)
		}
	}
	want := s.Snapshot().Scorer.Points()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(PersistConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Snapshot().Scorer.Points()
	if len(got) != len(want) {
		t.Fatalf("recovered %d options, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i], 0) {
			t.Fatalf("recovered option %d differs", i)
		}
	}
	if re.Generation() != Generation(1+writers*batches) {
		t.Fatalf("recovered generation %d", re.Generation())
	}
}

// TestSnapshotShardCountRoundtrip: the shard count written into the
// base snapshot wins over the reopening configuration, so a dataset
// keeps its layout across restarts.
func TestSnapshotShardCountRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(PersistConfig{Dir: dir, Shards: 5}, []vec.Vector{vec.Of(0.1, 0.2), vec.Of(0.3, 0.4)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 5 {
		t.Fatalf("fresh store shards = %d, want 5", s.Shards())
	}
	if _, _, err := s.Apply([]Op{Insert(vec.Of(0.5, 0.5))}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(PersistConfig{Dir: dir, Shards: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 5 {
		t.Fatalf("reopened shards = %d, want persisted 5", re.Shards())
	}
	if re.Len() != 3 {
		t.Fatalf("reopened %d options, want 3 (WAL replay on top of the sharded snapshot)", re.Len())
	}
}

// TestSnapshotLegacyFormatReads: a TOPRRSN1 snapshot (no shard-count
// word) still opens, reads shard count 0, and adopts the opener's
// configured count.
func TestSnapshotLegacyFormatReads(t *testing.T) {
	dir := t.TempDir()
	pts := []vec.Vector{vec.Of(0.1, 0.2), vec.Of(0.3, 0.4)}

	// Hand-craft the legacy format: magic TOPRRSN1, 24-byte header
	// without the shard word, row-major points, trailing CRC.
	d := 2
	payload := make([]byte, 8+8+4+4+len(pts)*d*8)
	le := binary.LittleEndian
	le.PutUint64(payload[0:], 1)
	le.PutUint64(payload[8:], 0)
	le.PutUint32(payload[16:], uint32(len(pts)))
	le.PutUint32(payload[20:], uint32(d))
	off := 24
	for _, p := range pts {
		for _, x := range p {
			le.PutUint64(payload[off:], math.Float64bits(x))
			off += 8
		}
	}
	buf := append([]byte(snapMagicV1), payload...)
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(PersistConfig{Dir: dir, Shards: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("legacy snapshot recovered %d options, want 2", s.Len())
	}
	// Legacy data has no recorded layout: the opener's count applies.
	if s.Shards() != 4 {
		t.Fatalf("legacy open shards = %d, want adopted 4", s.Shards())
	}
}

// TestDeltaShardsTouched: a sharded store routes each batch to the
// owning shards — an insert touches exactly the new option's shard, an
// update the shards of the old and new contents, and a swap-delete the
// shards of the deleted and relocated options.
func TestDeltaShardsTouched(t *testing.T) {
	const shards = 8
	pts := []vec.Vector{
		vec.Of(0.10, 0.90),
		vec.Of(0.20, 0.80),
		vec.Of(0.30, 0.70),
		vec.Of(0.40, 0.60),
	}
	s, err := NewSharded(pts, shards)
	if err != nil {
		t.Fatal(err)
	}

	contains := func(list []int, x int) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}

	// Insert: exactly the new option's shard.
	p := vec.Of(0.55, 0.45)
	_, delta, err := s.Apply([]Op{Insert(p)})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.ShardsTouched) != 1 || delta.ShardsTouched[0] != topk.ShardOfPoint(p, shards) {
		t.Fatalf("insert touched %v, want [%d]", delta.ShardsTouched, topk.ShardOfPoint(p, shards))
	}

	// Update slot 0: old and new contents' shards.
	oldShard := topk.ShardOfPoint(pts[0], shards)
	repl := vec.Of(0.77, 0.23)
	_, delta, err = s.Apply([]Op{Update(0, repl)})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(delta.ShardsTouched, oldShard) || !contains(delta.ShardsTouched, topk.ShardOfPoint(repl, shards)) {
		t.Fatalf("update touched %v, want old shard %d and new shard %d", delta.ShardsTouched, oldShard, topk.ShardOfPoint(repl, shards))
	}

	// Swap-delete slot 1: the deleted option's shard and the relocated
	// (former last) option's shard.
	cur := s.Snapshot().Scorer.Points()
	deleted := topk.ShardOfPoint(cur[1], shards)
	moved := topk.ShardOfPoint(cur[len(cur)-1], shards)
	_, delta, err = s.Apply([]Op{Delete(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(delta.ShardsTouched, deleted) || !contains(delta.ShardsTouched, moved) {
		t.Fatalf("delete touched %v, want deleted shard %d and moved shard %d", delta.ShardsTouched, deleted, moved)
	}

	// Unsharded stores route nothing.
	u, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	_, delta, err = u.Apply([]Op{Insert(p)})
	if err != nil {
		t.Fatal(err)
	}
	if delta.ShardsTouched != nil {
		t.Fatalf("unsharded store reported ShardsTouched %v", delta.ShardsTouched)
	}
}
