// Package sketch implements the mergeable streaming top-m sketch tier
// of ROADMAP item 5a: a geometric adaptation of filtered space-saving
// (Homem & Carvalho) that answers "is this option plausibly top-k in
// this region?" in microseconds, with deterministic over/under-count
// bounds instead of probabilistic ones.
//
// Classic filtered space-saving monitors m stream items with exact
// counters and summarizes every evicted item by a shared error term.
// Here the "counter" of an option is its coordinate vector — scores are
// linear in the preference, so exact coordinates give exact scores at
// any preference — and the shared error term is a componentwise
// threshold vector: every member ever evicted from the monitored set is
// folded into the threshold by componentwise max. Because scores under
// a valid reduced preference (w >= 0, Σw <= 1) are monotone in the
// coordinates, the threshold's score upper-bounds every unmonitored
// member's score at every preference — the deterministic over-count
// bound everything in this package leans on. The under-count side is
// exact: monitored entries carry exact coordinates.
//
// One sketch summarizes one shard of the dataset (shard.go's
// content-stable assignment), and per-shard sketches merge on demand:
// Merge is associative and commutative — entry-set union plus
// componentwise threshold max — so sketches compose exactly like the
// exact plane's mergePartials, in any order and grouping.
package sketch

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// DefaultCapacity is the monitored-slot budget of one per-shard sketch.
// Memory per shard is capacity slice headers plus one threshold vector
// (the entry coordinates alias the dataset, so the sketch plane costs
// O(capacity · shards) pointers, not a dataset copy); see docs/APPROX.md
// for the budget arithmetic and how capacity trades against skew.
const DefaultCapacity = 64

// Entry is one monitored option: its dataset slot and exact
// coordinates. P aliases the dataset vector of the generation the
// sketch was built against (snapshots are immutable, so the alias is
// stable for the sketch's lifetime).
type Entry struct {
	Idx int
	P   vec.Vector
}

// Sketch is a filtered-space-saving top-m summary of a set of options.
// The zero value is not usable; build with New and fill with Insert in
// ascending slot order, or obtain one from Merge. A filled sketch is
// immutable by convention (the plane clones before further inserts) and
// safe for concurrent readers.
type Sketch struct {
	d   int
	cap int // monitored-slot budget; 0 = unbounded (merged sketches)

	entries []Entry   // monitored options, ascending Idx
	keys    []float64 // retention key per entry (coordinate sum), aligned with entries

	// thresh componentwise-dominates every folded member; nil until the
	// first eviction. folded counts the members it summarizes.
	thresh vec.Vector
	folded int
}

// New returns an empty sketch over d-dimensional options with the given
// monitored-slot capacity (<= 0 means unbounded).
func New(d, capacity int) *Sketch {
	if capacity < 0 {
		capacity = 0
	}
	return &Sketch{d: d, cap: capacity}
}

// Dim returns the option-space dimensionality.
func (s *Sketch) Dim() int { return s.d }

// Len returns the number of monitored entries.
func (s *Sketch) Len() int { return len(s.entries) }

// Folded returns the number of members summarized only by the
// threshold.
func (s *Sketch) Folded() int { return s.folded }

// Members returns the total number of options the sketch summarizes.
func (s *Sketch) Members() int { return len(s.entries) + s.folded }

// Entries exposes the monitored entries (ascending Idx). Callers must
// not mutate the returned slice.
func (s *Sketch) Entries() []Entry { return s.entries }

// retentionKey orders options for eviction: the coordinate sum, i.e.
// the score under the uniform preference. Any fixed monotone key keeps
// the bounds sound; the sum keeps high-scoring options monitored under
// every preference direction at once.
func retentionKey(p vec.Vector) float64 {
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	return sum
}

// Insert adds option idx with coordinates p. Calls must arrive in
// ascending idx order (the plane rebuilds and patches in slot order),
// which keeps entries sorted without re-sorting. When the monitored set
// is full, the entry with the smallest retention key — the incoming one
// included — is folded into the threshold; ties fold the larger slot,
// so the outcome is deterministic.
func (s *Sketch) Insert(idx int, p vec.Vector) {
	if n := len(s.entries); n > 0 && idx <= s.entries[n-1].Idx {
		panic(fmt.Sprintf("sketch: Insert(%d) out of order after slot %d", idx, s.entries[n-1].Idx))
	}
	key := retentionKey(p)
	if s.cap == 0 || len(s.entries) < s.cap {
		s.entries = append(s.entries, Entry{Idx: idx, P: p})
		s.keys = append(s.keys, key)
		return
	}
	// Full: pick the victim among the monitored entries and the incoming
	// option. The incoming slot is the largest, so "tie folds the larger
	// slot" means a tie with the incoming option folds the incoming one —
	// which the min<= comparison below encodes by defaulting to it.
	victim := -1 // -1 = the incoming option (the largest slot)
	minKey := key
	for i, k := range s.keys {
		if k < minKey || (k == minKey && victim >= 0 && s.entries[i].Idx > s.entries[victim].Idx) {
			minKey = k
			victim = i
		}
	}
	if victim < 0 {
		s.fold(p)
		return
	}
	s.fold(s.entries[victim].P)
	copy(s.entries[victim:], s.entries[victim+1:])
	copy(s.keys[victim:], s.keys[victim+1:])
	s.entries[len(s.entries)-1] = Entry{Idx: idx, P: p}
	s.keys[len(s.keys)-1] = key
}

// fold absorbs a member into the threshold.
func (s *Sketch) fold(p vec.Vector) {
	if s.thresh == nil {
		s.thresh = p.Clone()
	} else {
		for j, x := range p {
			if x > s.thresh[j] {
				s.thresh[j] = x
			}
		}
	}
	s.folded++
}

// clone returns a deep-enough copy for successor-object advances: the
// entry and key slices are copied (entry coordinates still alias the
// dataset) and the threshold is cloned, so inserts into the clone never
// mutate state a pinned reader of the original observes.
func (s *Sketch) clone() *Sketch {
	c := &Sketch{d: s.d, cap: s.cap, folded: s.folded}
	c.entries = append(make([]Entry, 0, len(s.entries)+1), s.entries...)
	c.keys = append(make([]float64, 0, len(s.keys)+1), s.keys...)
	if s.thresh != nil {
		c.thresh = s.thresh.Clone()
	}
	return c
}

// Merge combines two sketches over disjoint member sets (distinct
// shards of one dataset) into an unbounded sketch: the union of the
// monitored entries and the componentwise max of the thresholds. Both
// halves survive unchanged. Merge is associative and commutative —
// MergeAll composes per-shard sketches in any order or grouping to the
// same summary, exactly like the exact plane's mergePartials.
func Merge(a, b *Sketch) *Sketch {
	if a.d != b.d {
		panic(fmt.Sprintf("sketch: merging dimensions %d and %d", a.d, b.d))
	}
	out := &Sketch{d: a.d, folded: a.folded + b.folded}
	out.entries = make([]Entry, 0, len(a.entries)+len(b.entries))
	out.keys = make([]float64, 0, len(a.keys)+len(b.keys))
	i, j := 0, 0
	for i < len(a.entries) && j < len(b.entries) {
		if a.entries[i].Idx <= b.entries[j].Idx {
			out.entries = append(out.entries, a.entries[i])
			out.keys = append(out.keys, a.keys[i])
			i++
		} else {
			out.entries = append(out.entries, b.entries[j])
			out.keys = append(out.keys, b.keys[j])
			j++
		}
	}
	out.entries = append(out.entries, a.entries[i:]...)
	out.keys = append(out.keys, a.keys[i:]...)
	out.entries = append(out.entries, b.entries[j:]...)
	out.keys = append(out.keys, b.keys[j:]...)
	switch {
	case a.thresh == nil && b.thresh == nil:
	case a.thresh == nil:
		out.thresh = b.thresh.Clone()
	case b.thresh == nil:
		out.thresh = a.thresh.Clone()
	default:
		out.thresh = a.thresh.Clone()
		for j, x := range b.thresh {
			if x > out.thresh[j] {
				out.thresh[j] = x
			}
		}
	}
	return out
}

// MergeAll k-way merges per-shard sketches. nil and empty inputs are
// skipped; MergeAll(nil) returns nil.
func MergeAll(ss []*Sketch) *Sketch {
	var out *Sketch
	for _, s := range ss {
		if s == nil {
			continue
		}
		if out == nil {
			// Merge with an empty sketch clones, so the result never
			// aliases a per-shard sketch's mutable slices.
			out = Merge(New(s.d, 0), s)
			continue
		}
		out = Merge(out, s)
	}
	return out
}

// UpperUnmonitored returns the deterministic over-count bound: an upper
// bound on S_w(q) for every member folded into the threshold, under a
// valid reduced preference w. -Inf when nothing was folded (the sketch
// is exact). The bound is the threshold point's own score: scores are
// monotone in the coordinates when w >= 0 and Σw <= 1, and every folded
// member is componentwise below the threshold.
func (s *Sketch) UpperUnmonitored(w vec.Vector) float64 {
	if s.folded == 0 {
		return math.Inf(-1)
	}
	return topk.ScorePoint(w, s.thresh)
}

// scorePool recycles the scratch buffer KthBest sorts in, so warm
// certified-path calls allocate nothing (the same idiom as the topk
// sort pool; CI gates the invariant in pkg/toprr's alloc test).
var scorePool = sync.Pool{New: func() any { s := make([]float64, 0, 256); return &s }}

// KthBest returns the k-th highest exact score among the monitored
// entries at reduced preference w, computed with the scalar scoring
// kernel (topk.ScorePoint) so the value is bit-identical to the exact
// plane's. ok is false when fewer than k entries are monitored.
func (s *Sketch) KthBest(w vec.Vector, k int) (kth float64, ok bool) {
	if k <= 0 || k > len(s.entries) {
		return 0, false
	}
	bufp := scorePool.Get().(*[]float64)
	buf := (*bufp)[:0]
	for i := range s.entries {
		buf = append(buf, topk.ScorePoint(w, s.entries[i].P))
	}
	slices.Sort(buf)
	kth = buf[len(buf)-k]
	*bufp = buf
	scorePool.Put(bufp)
	return kth, true
}

// CountAbove returns the number of monitored entries scoring strictly
// above t at reduced preference w.
func (s *Sketch) CountAbove(w vec.Vector, t float64) int {
	n := 0
	for i := range s.entries {
		if topk.ScorePoint(w, s.entries[i].P) > t {
			n++
		}
	}
	return n
}

// gateEps is the strict r-dominance margin the prefilter gate demands.
// It must be at least the skyband package's dominance tolerance (1e-12)
// for the certificate to imply RDominates; the extra headroom absorbs
// float rounding in the monotone threshold bound, and erring large only
// makes the gate decline more often — the conservative direction.
const gateEps = 1e-9

// CertifySkyband decides whether the monitored set alone is a sound
// input to the r-skyband sweep for a query region with the given
// vertices and rank threshold k. It certifies when at least k monitored
// entries r-dominate the threshold point with margin — then every
// unmonitored member is r-dominated by >= k options and can never
// appear in the r-skyband, so sweeping only the returned slots yields
// the sweep's exact full-dataset output. A sketch that never folded is
// trivially certified (it monitors everything).
func (s *Sketch) CertifySkyband(verts []vec.Vector, k int) (slots []int, ok bool) {
	if s.folded > 0 {
		dominators := 0
		for i := range s.entries {
			margin := math.Inf(1)
			for _, v := range verts {
				m := topk.ScorePoint(v, s.entries[i].P) - topk.ScorePoint(v, s.thresh)
				if m < margin {
					margin = m
				}
			}
			if margin >= gateEps {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			return nil, false
		}
	}
	slots = make([]int, len(s.entries))
	for i := range s.entries {
		slots[i] = s.entries[i].Idx
	}
	return slots, true
}
