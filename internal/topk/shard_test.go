package topk

import (
	"context"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

func randomPts(rng *rand.Rand, n, d int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	return pts
}

// TestShardOfPointStable: assignment depends only on contents, so a
// swap-deleted option keeps its shard wherever it lands.
func TestShardOfPointStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	for _, s := range []int{1, 2, 3, 8, 64} {
		a := ShardOfPoint(p, s)
		if a < 0 || a >= s {
			t.Fatalf("shards=%d: assignment %d out of range", s, a)
		}
		if b := ShardOfPoint(p.Clone(), s); b != a {
			t.Fatalf("shards=%d: clone assigned %d, original %d", s, b, a)
		}
	}
	if ShardOfPoint(p, 1) != 0 || ShardOfPoint(p, 0) != 0 {
		t.Error("degenerate shard counts must assign shard 0")
	}
}

// TestShardedLookupMatchesTopK: merged sharded results must be
// bit-identical to the unsharded oracle — ordering, tie-breaks and
// KthScore included — across random data, duplicate points (forced
// score ties), k values and active subsets.
func TestShardedLookupMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 40; iter++ {
		n := 5 + rng.Intn(60)
		d := 2 + rng.Intn(4)
		pts := randomPts(rng, n, d)
		// Duplicate a few points so exact score ties exercise the
		// index tie-break through the merge.
		for c := 0; c < 3 && n > 1; c++ {
			pts[rng.Intn(n)] = pts[rng.Intn(n)].Clone()
		}
		sc := NewScorer(pts)
		k := 1 + rng.Intn(n)

		var active []int
		if rng.Intn(2) == 0 {
			perm := rng.Perm(n)
			m := k + rng.Intn(n-k+1)
			active = append([]int(nil), perm[:m]...)
			if len(active) < k {
				continue
			}
		}

		for _, shards := range []int{2, 3, 8} {
			cache := NewShardedCache(sc, k, active, shards, 0, nil)
			for probe := 0; probe < 5; probe++ {
				w := vec.New(d - 1)
				for j := range w {
					w[j] = rng.Float64() / float64(d)
				}
				want := sc.TopK(w, k, active)
				got, _, err := cache.LookupCtx(context.Background(), w, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.OrderKey() != want.OrderKey() {
					t.Fatalf("iter %d shards=%d: order %q != %q", iter, shards, got.OrderKey(), want.OrderKey())
				}
				if got.KthScore != want.KthScore {
					t.Fatalf("iter %d shards=%d: kth score %v != %v", iter, shards, got.KthScore, want.KthScore)
				}
				// Second lookup must be a full hit and identical.
				again, hit, err := cache.LookupCtx(context.Background(), w, nil)
				if err != nil || !hit {
					t.Fatalf("iter %d: repeat lookup hit=%v err=%v", iter, hit, err)
				}
				if again.OrderKey() != want.OrderKey() {
					t.Fatal("repeat lookup diverged")
				}
			}
		}
	}
}

// TestShardedLookupCancellation: a cancelled context fails the lookup
// instead of computing.
func TestShardedLookupCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc := NewScorer(randomPts(rng, 50, 3))
	cache := NewShardedCache(sc, 5, nil, 4, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cache.LookupCtx(ctx, vec.Of(0.3, 0.3), nil); err == nil {
		t.Fatal("cancelled sharded lookup should error")
	}
	// The cache still works with a live context afterwards.
	if _, _, err := cache.LookupCtx(context.Background(), vec.Of(0.3, 0.3), nil); err != nil {
		t.Fatal(err)
	}
}

// TestShardedAccum: per-shard work attribution counts one partial per
// missing shard and the members it scored.
func TestShardedAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sc := NewScorer(randomPts(rng, 40, 3))
	const shards = 4
	cache := NewShardedCache(sc, 3, nil, shards, 0, nil)
	acc := NewShardAccum(shards)
	if _, _, err := cache.LookupCtx(context.Background(), vec.Of(0.25, 0.25), acc); err != nil {
		t.Fatal(err)
	}
	partials, scored := 0, int64(0)
	for i := 0; i < shards; i++ {
		partials += int(acc.Partials[i].Load())
		scored += acc.Scored[i].Load()
	}
	if partials != shards {
		t.Errorf("first lookup computed %d partials, want %d", partials, shards)
	}
	if scored != int64(sc.Len()) {
		t.Errorf("scored %d options, want %d", scored, sc.Len())
	}
	// A hit attributes nothing further.
	if _, hit, _ := cache.LookupCtx(context.Background(), vec.Of(0.25, 0.25), acc); !hit {
		t.Fatal("expected hit")
	}
	after := 0
	for i := 0; i < shards; i++ {
		after += int(acc.Partials[i].Load())
	}
	if after != partials {
		t.Error("hit changed the partial attribution")
	}
}

// TestShardedRegistryAdvance: per-shard invalidation keeps the warm
// state of untouched shards — an insert into a whole-dataset
// configuration drops exactly the shards the new option joined, and a
// delete/update drops only the touched shards' partials.
func TestShardedRegistryAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPts(rng, 64, 3)
	sc1 := NewScorerAt(pts, 1)
	const shards = 4
	reg := NewShardedRegistry(sc1, shards)
	cache := reg.Get(5, nil) // whole-dataset configuration

	// Warm every shard at several vertices.
	for probe := 0; probe < 6; probe++ {
		w := vec.Of(0.1+0.05*float64(probe), 0.2)
		if _, _, err := cache.LookupCtx(context.Background(), w, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := cache.Len()
	if before == 0 {
		t.Fatal("warmup memoized nothing")
	}

	// Insert: only the new option's shard may drop.
	p := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	pts2 := append(append([]vec.Vector(nil), pts...), p)
	sc2 := NewScorerAt(pts2, 2)
	oldCache := cache
	reg.Advance(sc2, []int{len(pts)})
	if reg.Len() != 1 {
		t.Fatalf("insert dropped the whole-dataset configuration (configs=%d); sharded advance should keep it", reg.Len())
	}
	// The registry swaps in a successor object; in-flight solves keep
	// the old one, which must still answer for the OLD generation.
	wOld := vec.Of(0.22, 0.31)
	gotOld, _, err := oldCache.LookupCtx(context.Background(), wOld, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := sc1.TopK(wOld, 5, nil); gotOld.OrderKey() != want.OrderKey() {
		t.Fatalf("pinned old-generation cache answered %q, want old-gen %q", gotOld.OrderKey(), want.OrderKey())
	}
	cache = reg.Get(5, nil)
	joined := ShardOfPoint(p, shards)
	perShard := make([]int, shards)
	for _, ss := range reg.ShardStats() {
		perShard[ss.Shard] = ss.TopKEntries
	}
	for i, n := range perShard {
		if i == joined {
			if n != 0 {
				t.Errorf("joined shard %d kept %d stale partials", i, n)
			}
		} else if n == 0 {
			t.Errorf("untouched shard %d lost its partials", i)
		}
	}

	// The advanced cache answers exactly for the new generation.
	w := vec.Of(0.3, 0.25)
	got, _, err := cache.LookupCtx(context.Background(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := sc2.TopK(w, 5, nil); got.OrderKey() != want.OrderKey() {
		t.Fatalf("post-insert lookup %q != oracle %q", got.OrderKey(), want.OrderKey())
	}

	// Update slot 0: drops the shards owning its old and new contents.
	pts3 := append([]vec.Vector(nil), pts2...)
	oldShard := ShardOfPoint(pts3[0], shards)
	repl := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	newShard := ShardOfPoint(repl, shards)
	pts3[0] = repl
	sc3 := NewScorerAt(pts3, 3)
	reg.Advance(sc3, []int{0})
	if reg.Len() != 1 {
		t.Fatal("update dropped the configuration; sharded advance should keep it")
	}
	cache = reg.Get(5, nil)
	for _, ss := range reg.ShardStats() {
		touched := ss.Shard == oldShard || ss.Shard == newShard
		if touched && ss.TopKEntries != 0 {
			t.Errorf("touched shard %d kept %d stale partials", ss.Shard, ss.TopKEntries)
		}
	}
	got, _, err = cache.LookupCtx(context.Background(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := sc3.TopK(w, 5, nil); got.OrderKey() != want.OrderKey() {
		t.Fatalf("post-update lookup %q != oracle %q", got.OrderKey(), want.OrderKey())
	}
}

// TestShardedRegistryDropsInvalidConfigs: a configuration whose
// explicit active set loses a slot to truncation, or whose dataset
// shrinks below k, is dropped rather than served wrong.
func TestShardedRegistryDropsInvalidConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPts(rng, 10, 3)
	sc1 := NewScorerAt(pts, 1)
	reg := NewShardedRegistry(sc1, 3)

	last := len(pts) - 1
	c := reg.Get(2, []int{0, 3, last})
	if _, _, err := c.LookupCtx(context.Background(), vec.Of(0.3, 0.3), nil); err != nil {
		t.Fatal(err)
	}

	// Delete the last option: slot `last` is truncated away, so the
	// explicit config referencing it must go.
	pts2 := append([]vec.Vector(nil), pts[:last]...)
	sc2 := NewScorerAt(pts2, 2)
	reg.Advance(sc2, []int{last})
	if reg.Len() != 0 {
		t.Fatalf("config referencing a truncated slot survived (configs=%d)", reg.Len())
	}
}
