package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// statsJSON mirrors the /v1/stats fields this suite asserts on.
type statsJSON struct {
	Generation     uint64 `json:"generation"`
	Options        int    `json:"options"`
	LiveGens       int    `json:"live_generations"`
	RetainedBytes  int64  `json:"retained_snapshot_bytes"`
	Persistent     bool   `json:"persistent"`
	WALBytes       int64  `json:"wal_bytes"`
	WALSegments    int    `json:"wal_segments"`
	LastCompaction uint64 `json:"last_compaction_generation"`
}

func getStats(t *testing.T, url string) statsJSON {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsJSON
	decodeJSON(t, resp, &stats)
	return stats
}

// TestDaemonRestartServesSameState is the acceptance scenario: a
// durable daemon takes mutations over HTTP, crashes (no Close), and a
// restarted daemon over the same data directory serves the same
// generation contents.
func TestDaemonRestartServesSameState(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	pts := make([]vec.Vector, 40)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	engine, err := toprr.OpenEngine(pts, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(engine, time.Minute))

	resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{
			{Op: "insert", Point: []float64{0.9, 0.9, 0.9}},
			{Op: "update", Index: 3, Point: []float64{0.95, 0.1, 0.5}},
			{Op: "delete", Index: 0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	before := getStats(t, ts.URL)
	if !before.Persistent || before.WALBytes <= 0 {
		t.Fatalf("durable daemon stats = %+v", before)
	}
	wantPts := engine.Scorer().Points()
	ts.Close()
	// Close releases the directory flock like a process death would; it
	// writes nothing, so the restart recovers purely from base snapshot
	// + WAL replay (true kill -9 recovery is exercised by the store
	// suite, where the lock fd can be dropped without Close).
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory; the bootstrap dataset is a decoy
	// the recovery must ignore.
	engine2, err := toprr.OpenEngine([]vec.Vector{vec.Of(0.1, 0.1, 0.1)}, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer engine2.Close()
	ts2 := httptest.NewServer(newServer(engine2, time.Minute))
	defer ts2.Close()

	after := getStats(t, ts2.URL)
	if after.Generation != before.Generation || after.Options != before.Options {
		t.Fatalf("restarted daemon at generation %d with %d options, want %d with %d",
			after.Generation, after.Options, before.Generation, before.Options)
	}
	got := engine2.Scorer().Points()
	for i := range wantPts {
		if !got[i].Equal(wantPts[i], 0) {
			t.Fatalf("slot %d = %v after restart, want %v", i, got[i], wantPts[i])
		}
	}
	// GC observability fields are live on the wire.
	if after.LiveGens < 1 || after.RetainedBytes <= 0 {
		t.Fatalf("GC stats on the wire = %+v", after)
	}
}

// TestStatsReportCompaction: once mutations cross the compaction
// threshold, /v1/stats shows the truncated WAL and the advanced base
// snapshot watermark.
func TestStatsReportCompaction(t *testing.T) {
	engine, err := toprr.OpenEngine(
		[]vec.Vector{vec.Of(0.2, 0.8, 0.5), vec.Of(0.8, 0.2, 0.5)},
		toprr.WithPersistenceConfig(toprr.PersistConfig{Dir: t.TempDir(), CompactOps: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	ts := httptest.NewServer(newServer(engine, time.Minute))
	defer ts.Close()

	for i := 0; i < 6; i++ {
		resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
			"ops": []opJSON{{Op: "insert", Point: []float64{0.5, 0.5, 0.5}}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	stats := getStats(t, ts.URL)
	if stats.LastCompaction <= 1 {
		t.Fatalf("no compaction visible in stats: %+v", stats)
	}
	if stats.WALSegments != 1 {
		t.Fatalf("stats report %d segments after compaction, want 1", stats.WALSegments)
	}
}
