package core

import (
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// TestParallelMatchesSequential verifies that the worker-pool driver
// computes the same oR as the sequential driver (membership-compared;
// split choices may differ, the region may not).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 6; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 120, d, 2+rng.Intn(6))
		seq, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(prob, Options{Alg: TASStar, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 400; probe++ {
			o := vec.New(d)
			for j := range o {
				o[j] = rng.Float64()
			}
			if seq.IsTopRanking(o) != par.IsTopRanking(o) {
				t.Fatalf("iter %d: parallel result differs at %v", iter, o)
			}
		}
		if par.Stats.Regions == 0 || par.Stats.VallSize == 0 {
			t.Fatal("parallel stats not populated")
		}
	}
}

// TestParallelAllAlgorithms smoke-tests the pool with PAC and TAS too.
func TestParallelAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	prob := randomProblem(rng, 100, 3, 5)
	base, err := Solve(prob, Options{Alg: TAS})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PAC, TAS, TASStar} {
		res, err := Solve(prob, Options{Alg: alg, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for probe := 0; probe < 200; probe++ {
			o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
			if res.IsTopRanking(o) != base.IsTopRanking(o) {
				t.Fatalf("%v parallel differs at %v", alg, o)
			}
		}
	}
}

// TestParallelBudgetStops ensures the budget valve also fires under the
// worker pool.
func TestParallelBudgetStops(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	prob := randomProblem(rng, 400, 4, 10)
	if _, err := Solve(prob, Options{Alg: TAS, Workers: 4, MaxRegions: 2}); err == nil {
		t.Error("expected MaxRegions error under parallel driver")
	}
}
