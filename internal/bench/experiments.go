package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/skyband"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// humanN renders a dataset size compactly (250k, 1.6M).
func humanN(n int) string {
	if n >= 1000000 {
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	}
	return fmt.Sprintf("%dk", n/1000)
}

// Parameter grids of Table 5.
var (
	GridK     = []int{1, 5, 10, 20, 40}
	GridSigma = []float64{0.001, 0.005, 0.01, 0.05, 0.10}
	GridN     = []int{100000, 200000, 400000, 800000, 1600000}
	GridD     = []int{2, 4, 6, 8, 10, 12}
	GridGamma = []float64{0.25, 0.5, 1, 2, 4}
	AllDists  = []dataset.Distribution{dataset.Correlated, dataset.Independent, dataset.Anticorrelated}
	AllAlgs   = []toprr.Algorithm{toprr.PAC, toprr.TAS, toprr.TASStar}
)

// Experiment is a named driver that produces one or more tables.
type Experiment struct {
	ID      string
	Caption string
	Run     func(s Scale) []*Table
}

// All returns every experiment of the evaluation, in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig7", "Case study: introducing a new laptop (Section 6.2)", Fig7},
		{"fig8", "Filter trade-offs: |D'| vs time (Section 6.3)", Fig8},
		{"fig9a", "PAC/TAS/TAS* vs k", Fig9a},
		{"fig9b", "PAC/TAS/TAS* vs sigma", Fig9b},
		{"fig9c", "PAC/TAS/TAS* vs n", Fig9c},
		{"fig9d", "PAC/TAS/TAS* vs d", Fig9d},
		{"fig10a", "TAS* data distributions vs k", Fig10a},
		{"fig10b", "TAS* data distributions vs sigma", Fig10b},
		{"fig10c", "TAS* data distributions vs n", Fig10c},
		{"fig10d", "TAS* data distributions vs d", Fig10d},
		{"fig11a", "TAS* on real datasets vs k", Fig11a},
		{"fig11b", "TAS* on real datasets vs sigma", Fig11b},
		{"table6", "Real vs synthetic datasets", Table6},
		{"table7", "Effect of wR elongation", Table7},
		{"fig12", "Lemma 5 pruning power (|D'|)", Fig12},
		{"fig13", "Lemma 7 effect on |Vall|", Fig13},
		{"fig14", "k-switch effect on |Vall|", Fig14},
		{"shards", "Sharded solve plane scaling (S=1/2/4/8)", ShardScaling},
		{"alloc", "Hot-path allocation profile (ns/op, B/op, allocs/op)", Alloc},
		{"patch", "Patch-on-insert vs drop-recompute (options scored to re-warm)", Patch},
		{"watch", "Standing queries: events delivered vs solves avoided", Watch},
		{"sketch", "Sketch gate and approximate fast path (certified skips, ns/op)", Sketch},
		{"fabric", "Distributed solve fabric: scatter-gather vs in-process (S=1/2/4/8)", Fabric},
	}
}

// options builds solver options carrying the scale's recursion and time
// budgets.
func (s Scale) options(alg toprr.Algorithm) toprr.Options {
	return toprr.Options{Alg: alg, MaxRegions: s.MaxRegions, Timeout: s.Timeout}
}

// cell renders a measurement's mean time, annotating budget-exceeded
// queries the way the paper annotates PAC's ">24 hours" cells.
func (s Scale) cell(m Measurement, total int) string {
	if m.Failed == total {
		if s.Timeout > 0 {
			return fmt.Sprintf(">%v", s.Timeout)
		}
		return "budget exceeded"
	}
	out := fmtDur(m.Time)
	if m.Failed > 0 {
		out += fmt.Sprintf(" (%d/%d failed)", m.Failed, total)
	}
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------- Fig 7

// Fig7 reruns the case study: a 2-attribute laptop market, two client
// types, k = 3, quadratic manufacturing cost.
func Fig7(s Scale) []*Table {
	lap := dataset.Laptops()
	t := &Table{
		ID:      "Fig7",
		Caption: "laptop case study, k=3, cost = performance^2 + battery^2",
		Header:  []string{"wR", "|oR verts|", "optimal placement", "cost", "savings vs in-region rivals"},
	}
	for _, wr := range []struct{ lo, hi float64 }{{0.7, 0.8}, {0.1, 0.2}} {
		prob := toprr.NewProblem(lap.Pts, 3, toprr.PrefBox(vec.Of(wr.lo), vec.Of(wr.hi)))
		res, err := toprr.Solve(context.Background(), prob, toprr.Options{Alg: toprr.TASStar})
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("[%.1f,%.1f]", wr.lo, wr.hi), "error: " + err.Error(), "", "", ""})
			continue
		}
		opt, err := res.CostOptimalNew()
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("[%.1f,%.1f]", wr.lo, wr.hi), "error: " + err.Error(), "", "", ""})
			continue
		}
		cost := opt.Dot(opt)
		minSave, maxSave := math.Inf(1), math.Inf(-1)
		for _, p := range lap.Pts {
			if res.IsTopRanking(p) {
				if pc := p.Dot(p); pc > cost {
					save := (pc - cost) / pc * 100
					minSave = math.Min(minSave, save)
					maxSave = math.Max(maxSave, save)
				}
			}
		}
		savings := "n/a"
		if !math.IsInf(minSave, 1) {
			savings = fmt.Sprintf("%.1f%%-%.1f%%", minSave, maxSave)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%.1f,%.1f]", wr.lo, wr.hi),
			fmt.Sprintf("%d", res.OR.NumVertices()), // d=2: geometry always enumerable
			opt.String(),
			fmt.Sprintf("%.3f", cost),
			savings,
		})
	}
	return []*Table{t}
}

// ---------------------------------------------------------------- Fig 8

// Fig8 compares the four fast filters on |D'| and computation time at
// default parameters. The onion and UTK filters are super-linear, so the
// driver caps their input size and notes the cap in the caption.
func Fig8(s Scale) []*Table {
	const onionCap = 4000
	full := s.data(dataset.Independent, DefaultN, DefaultD)
	small := full.Pts
	if len(small) > onionCap {
		small = small[:onionCap]
	}
	wr := s.Regions(DefaultD-1, DefaultSigma, 1, 11)[0]
	rd := skyband.NewRDomVerts(wr.VertexPoints())

	t := &Table{
		ID:      "Fig8",
		Caption: fmt.Sprintf("filter trade-offs, IND n=%d d=%d k=%d sigma=%.1f%% (k-onion on first %d options)", len(full.Pts), DefaultD, DefaultK, DefaultSigma*100, len(small)),
		Header:  []string{"filter", "|D'|", "time"},
	}
	type filt struct {
		name string
		run  func() int
	}
	filters := []filt{
		{"k-skyband", func() int { return len(skyband.KSkyband(full.Pts, DefaultK)) }},
		{"k-onion layers", func() int { return len(skyband.OnionLayers(small, DefaultK)) }},
		{"r-skyband", func() int { return len(skyband.RSkyband(full.Pts, DefaultK, rd)) }},
		{"UTK", func() int {
			// UTK pre-filters with the r-skyband internally, so it runs
			// on the full dataset; its time is r-skyband's plus the kIPR
			// partitioning — the paper's "optimal size, twice the time".
			out, err := toprr.UTKFilter(context.Background(), full.Pts, DefaultK, wr)
			if err != nil {
				return -1
			}
			return len(out)
		}},
	}
	for _, f := range filters {
		t0 := time.Now()
		size := f.run()
		t.Rows = append(t.Rows, []string{f.name, fmt.Sprintf("%d", size), fmtDur(time.Since(t0))})
	}
	return []*Table{t}
}

// ---------------------------------------------------------------- Fig 9

func collective(s Scale, id, caption, varName string, points []string, build func(i int) ([]vec.Vector, int, []*geom.Polytope)) []*Table {
	t := &Table{ID: id, Caption: caption,
		Header: []string{varName, "PAC", "TAS", "TAS*", "|D'|", "|Vall| TAS*"}}
	for i, label := range points {
		pts, k, regions := build(i)
		row := []string{label}
		var last Measurement
		for _, alg := range AllAlgs {
			m := RunAlg(pts, k, regions, s.options(alg))
			row = append(row, s.cell(m, len(regions)))
			last = m
		}
		row = append(row, fmtF(last.Filtered), fmtF(last.Vall))
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// Fig9a varies k at the defaults.
func Fig9a(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	labels := make([]string, len(GridK))
	for i, k := range GridK {
		labels[i] = fmt.Sprintf("%d", k)
	}
	return collective(s, "Fig9a", "PAC/TAS/TAS* running time vs k (IND, defaults)", "k", labels,
		func(i int) ([]vec.Vector, int, []*geom.Polytope) {
			return ds.Pts, GridK[i], s.Regions(DefaultD-1, DefaultSigma, 1, int64(100+i))
		})
}

// Fig9b varies the preference-region side length sigma.
func Fig9b(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	labels := make([]string, len(GridSigma))
	for i, sg := range GridSigma {
		labels[i] = fmt.Sprintf("%.1f%%", sg*100)
	}
	return collective(s, "Fig9b", "PAC/TAS/TAS* running time vs sigma (IND, defaults)", "sigma", labels,
		func(i int) ([]vec.Vector, int, []*geom.Polytope) {
			return ds.Pts, DefaultK, s.Regions(DefaultD-1, GridSigma[i], 1, int64(200+i))
		})
}

// Fig9c varies the dataset size n.
func Fig9c(s Scale) []*Table {
	labels := make([]string, len(GridN))
	for i, n := range GridN {
		labels[i] = humanN(s.n(n))
	}
	return collective(s, "Fig9c", "PAC/TAS/TAS* running time vs n (IND, defaults)", "n", labels,
		func(i int) ([]vec.Vector, int, []*geom.Polytope) {
			ds := s.data(dataset.Independent, GridN[i], DefaultD)
			return ds.Pts, DefaultK, s.Regions(DefaultD-1, DefaultSigma, 1, int64(300+i))
		})
}

// dGrid returns the dimensionality sweep for the given scale. Below
// paper scale the grid stops at d = 8: a single d >= 10 query costs what
// the paper itself reports as ~10^3 seconds, which defeats a reduced-
// scale run (use -scale 1 to sweep the full grid).
func (s Scale) dGrid() []int {
	if s.N < 1 {
		return []int{2, 4, 6, 8}
	}
	return GridD
}

// Fig9d varies the dimensionality d.
func Fig9d(s Scale) []*Table {
	grid := s.dGrid()
	labels := make([]string, len(grid))
	for i, d := range grid {
		labels[i] = fmt.Sprintf("%d", d)
	}
	caption := "PAC/TAS/TAS* running time vs d (IND, defaults)"
	if s.N < 1 {
		caption += " [d capped at 8 below paper scale]"
	}
	return collective(s, "Fig9d", caption, "d", labels,
		func(i int) ([]vec.Vector, int, []*geom.Polytope) {
			d := grid[i]
			ds := s.data(dataset.Independent, DefaultN, d)
			return ds.Pts, DefaultK, s.Regions(d-1, DefaultSigma, 1, int64(400+i))
		})
}

// --------------------------------------------------------------- Fig 10

func distSweep(s Scale, id, caption, varName string, labels []string, build func(dist dataset.Distribution, i int) ([]vec.Vector, int, []*geom.Polytope)) []*Table {
	t := &Table{ID: id, Caption: caption, Header: append([]string{varName}, "COR", "IND", "ANTI")}
	for i, label := range labels {
		row := []string{label}
		for _, dist := range AllDists {
			pts, k, regions := build(dist, i)
			m := RunAlg(pts, k, regions, s.options(toprr.TASStar))
			row = append(row, s.cell(m, len(regions)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// Fig10a runs TAS* per distribution, varying k.
func Fig10a(s Scale) []*Table {
	labels := make([]string, len(GridK))
	for i, k := range GridK {
		labels[i] = fmt.Sprintf("%d", k)
	}
	return distSweep(s, "Fig10a", "TAS* per data distribution vs k", "k", labels,
		func(dist dataset.Distribution, i int) ([]vec.Vector, int, []*geom.Polytope) {
			ds := s.data(dist, DefaultN, DefaultD)
			return ds.Pts, GridK[i], s.Regions(DefaultD-1, DefaultSigma, 1, int64(500+i))
		})
}

// Fig10b runs TAS* per distribution, varying sigma.
func Fig10b(s Scale) []*Table {
	labels := make([]string, len(GridSigma))
	for i, sg := range GridSigma {
		labels[i] = fmt.Sprintf("%.1f%%", sg*100)
	}
	return distSweep(s, "Fig10b", "TAS* per data distribution vs sigma", "sigma", labels,
		func(dist dataset.Distribution, i int) ([]vec.Vector, int, []*geom.Polytope) {
			ds := s.data(dist, DefaultN, DefaultD)
			return ds.Pts, DefaultK, s.Regions(DefaultD-1, GridSigma[i], 1, int64(600+i))
		})
}

// Fig10c runs TAS* per distribution, varying n.
func Fig10c(s Scale) []*Table {
	labels := make([]string, len(GridN))
	for i, n := range GridN {
		labels[i] = humanN(s.n(n))
	}
	return distSweep(s, "Fig10c", "TAS* per data distribution vs n", "n", labels,
		func(dist dataset.Distribution, i int) ([]vec.Vector, int, []*geom.Polytope) {
			ds := s.data(dist, GridN[i], DefaultD)
			return ds.Pts, DefaultK, s.Regions(DefaultD-1, DefaultSigma, 1, int64(700+i))
		})
}

// Fig10d runs TAS* per distribution, varying d.
func Fig10d(s Scale) []*Table {
	grid := s.dGrid()
	labels := make([]string, len(grid))
	for i, d := range grid {
		labels[i] = fmt.Sprintf("%d", d)
	}
	caption := "TAS* per data distribution vs d"
	if s.N < 1 {
		caption += " [d capped at 8 below paper scale]"
	}
	return distSweep(s, "Fig10d", caption, "d", labels,
		func(dist dataset.Distribution, i int) ([]vec.Vector, int, []*geom.Polytope) {
			d := grid[i]
			ds := s.data(dist, DefaultN, d)
			return ds.Pts, DefaultK, s.Regions(d-1, DefaultSigma, 1, int64(800+i))
		})
}

// --------------------------------------------------------------- Fig 11

// realSets returns the simulated real datasets scaled by s.N (they are
// sliced, preserving distribution).
func realSets(s Scale) []*dataset.Dataset {
	sets := []*dataset.Dataset{dataset.Hotel(), dataset.House(), dataset.NBA()}
	for _, ds := range sets {
		n := int(float64(ds.Len()) * s.N)
		if n < 1000 {
			n = 1000
		}
		if n < ds.Len() {
			ds.Pts = ds.Pts[:n]
		}
	}
	return sets
}

// Fig11a runs TAS* on the real datasets, varying k.
func Fig11a(s Scale) []*Table {
	sets := realSets(s)
	t := &Table{ID: "Fig11a", Caption: "TAS* on real datasets vs k",
		Header: []string{"k", "HOTEL", "HOUSE", "NBA"}}
	for i, k := range GridK {
		row := []string{fmt.Sprintf("%d", k)}
		for _, ds := range sets {
			m := RunAlg(ds.Pts, k, s.Regions(ds.Dim()-1, DefaultSigma, 1, int64(900+i)), s.options(toprr.TASStar))
			row = append(row, fmtDur(m.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// Fig11b runs TAS* on the real datasets, varying sigma.
func Fig11b(s Scale) []*Table {
	sets := realSets(s)
	t := &Table{ID: "Fig11b", Caption: "TAS* on real datasets vs sigma",
		Header: []string{"sigma", "HOTEL", "HOUSE", "NBA"}}
	for i, sg := range GridSigma {
		row := []string{fmt.Sprintf("%.1f%%", sg*100)}
		for _, ds := range sets {
			m := RunAlg(ds.Pts, DefaultK, s.Regions(ds.Dim()-1, sg, 1, int64(1000+i)), s.options(toprr.TASStar))
			row = append(row, fmtDur(m.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// -------------------------------------------------------------- Table 6

// Table6 compares each real dataset against synthetic data of the same
// cardinality and dimensionality.
func Table6(s Scale) []*Table {
	t := &Table{ID: "Table6", Caption: "real vs synthetic datasets of matching (n, d), TAS*, defaults",
		Header: []string{"dataset", "n", "d", "COR", "IND", "ANTI", "Real"}}
	for i, real := range realSets(s) {
		n, d := real.Len(), real.Dim()
		row := []string{real.Name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", d)}
		regions := s.Regions(d-1, DefaultSigma, 1, int64(1100+i))
		for _, dist := range AllDists {
			syn := dataset.Generate(dist, n, d, 7)
			m := RunAlg(syn.Pts, DefaultK, regions, s.options(toprr.TASStar))
			row = append(row, fmtDur(m.Time))
		}
		m := RunAlg(real.Pts, DefaultK, regions, s.options(toprr.TASStar))
		row = append(row, fmtDur(m.Time))
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// -------------------------------------------------------------- Table 7

// Table7 elongates wR by gamma at constant volume.
func Table7(s Scale) []*Table {
	t := &Table{ID: "Table7", Caption: "effect of wR elongation (gamma), TAS*",
		Header: []string{"gamma", "HOTEL", "HOUSE", "NBA"}}
	sets := realSets(s)
	for i, g := range GridGamma {
		row := []string{fmt.Sprintf("%.2f", g)}
		for _, ds := range sets {
			m := RunAlg(ds.Pts, DefaultK, s.Regions(ds.Dim()-1, DefaultSigma, g, int64(1200+i)), s.options(toprr.TASStar))
			row = append(row, fmtDur(m.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// --------------------------------------------------------- Figs 12-14

// Fig12 measures |D'| under r-skyband alone vs r-skyband + Lemma 5.
func Fig12(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	varyK := &Table{ID: "Fig12a", Caption: "|D'|: r-skyband vs r-skyband+Lemma 5, varying k",
		Header: []string{"k", "r-skyband", "+Lemma 5"}}
	for i, k := range GridK {
		var r, l float64
		regions := s.Regions(DefaultD-1, DefaultSigma, 1, int64(1300+i))
		for _, wr := range regions {
			a, b := toprr.FilterSizes(toprr.NewProblem(ds.Pts, k, wr))
			r += float64(a)
			l += float64(b)
		}
		q := float64(len(regions))
		varyK.Rows = append(varyK.Rows, []string{fmt.Sprintf("%d", k), fmtF(r / q), fmtF(l / q)})
	}
	varyS := &Table{ID: "Fig12b", Caption: "|D'|: r-skyband vs r-skyband+Lemma 5, varying sigma",
		Header: []string{"sigma", "r-skyband", "+Lemma 5"}}
	for i, sg := range GridSigma {
		var r, l float64
		regions := s.Regions(DefaultD-1, sg, 1, int64(1400+i))
		for _, wr := range regions {
			a, b := toprr.FilterSizes(toprr.NewProblem(ds.Pts, DefaultK, wr))
			r += float64(a)
			l += float64(b)
		}
		q := float64(len(regions))
		varyS.Rows = append(varyS.Rows, []string{fmt.Sprintf("%.1f%%", sg*100), fmtF(r / q), fmtF(l / q)})
	}
	return []*Table{varyK, varyS}
}

// ablationVall builds the Figures 13/14 tables: |Vall| with one TAS*
// optimization toggled.
func ablationVall(s Scale, id, caption, optName string, disable func(*toprr.Options)) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	run := func(k int, sigma float64, seed int64, off bool) float64 {
		opt := s.options(toprr.TASStar)
		if off {
			disable(&opt)
		}
		m := RunAlg(ds.Pts, k, s.Regions(DefaultD-1, sigma, 1, seed), opt)
		return m.Vall
	}
	varyK := &Table{ID: id + "a", Caption: caption + ", varying k",
		Header: []string{"k", optName + " disabled", optName + " enabled"}}
	for i, k := range GridK {
		seed := int64(1500 + i)
		varyK.Rows = append(varyK.Rows, []string{fmt.Sprintf("%d", k),
			fmtF(run(k, DefaultSigma, seed, true)), fmtF(run(k, DefaultSigma, seed, false))})
	}
	varyS := &Table{ID: id + "b", Caption: caption + ", varying sigma",
		Header: []string{"sigma", optName + " disabled", optName + " enabled"}}
	for i, sg := range GridSigma {
		seed := int64(1600 + i)
		varyS.Rows = append(varyS.Rows, []string{fmt.Sprintf("%.1f%%", sg*100),
			fmtF(run(DefaultK, sg, seed, true)), fmtF(run(DefaultK, sg, seed, false))})
	}
	return []*Table{varyK, varyS}
}

// Fig13 measures |Vall| with Lemma 7 enabled/disabled.
func Fig13(s Scale) []*Table {
	return ablationVall(s, "Fig13", "|Vall| with/without Lemma 7", "Lemma 7",
		func(o *toprr.Options) { o.DisableLemma7 = true })
}

// Fig14 measures |Vall| with the k-switch strategy enabled/disabled.
func Fig14(s Scale) []*Table {
	return ablationVall(s, "Fig14", "|Vall| with/without k-switch", "k-switch",
		func(o *toprr.Options) { o.DisableKSwitch = true })
}
