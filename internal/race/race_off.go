//go:build !race

// Package race reports whether the race detector instruments this
// build. Allocation-count regression tests consult it: -race adds
// bookkeeping allocations that would make testing.AllocsPerRun gates
// flap, so those gates skip themselves under instrumentation while the
// race lane still exercises the same code paths for safety.
package race

// Enabled is true when the build is race-instrumented.
const Enabled = false
