package topk

// Patch-on-insert: incremental cross-generation cache repair. A
// pure-insert batch cannot change the score, rank or identity of any
// existing option — it can only introduce new options at the tail of
// the dataset. A memoized top-k entry therefore stays correct as-is
// unless an inserted option beats its k-th score, and in that case it
// is repaired exactly by scoring *only the inserted options* at the
// memoized vertex and splicing the winners into the ranked list:
// O(entries × inserts) scalar scores per advance, instead of the
// drop-and-recompute path's O(entries × shard) rescore on the next
// warm-up.
//
// Bit-identity argument: a recompute over the grown dataset sorts all
// options under the (score desc, index asc) comparator. Relative to the
// old generation's sort, the surviving entries keep their exact order
// (their scores and indices are untouched), and each inserted option
// lands at its comparator position — with ties resolving against it
// relative to every pre-existing option, since inserted slots are
// assigned past the old tail and the comparator breaks ties by
// ascending index. Splicing performs precisely that insertion, and
// ScorePoint is bit-identical to the SoA scoring a recompute would use
// (see Scorer.scoreInto), so a patched entry equals the recomputed one
// bit for bit, ties included. The randomized oracle in patch_test.go
// pins this against fresh recomputes.

import "toprr/internal/vec"

// PatchSummary reports what one AdvanceInsert did to the registry's
// interned caches. It is the region-delta signal for standing queries:
// when Changed() is false, no memoized top-k admitted any inserted
// option, so every standing result region derived from these caches is
// untouched by the batch.
type PatchSummary struct {
	Configs       int  // patchable (whole-dataset) configurations processed
	Entries       int  // memo entries examined (unsharded results + shard partials)
	Patched       int  // entries changed by splicing an inserted option in
	MergedDropped int  // sharded merged results dropped because a constituent partial changed
	Fallback      bool // delta broke the pure-insert contract; the drop path ran instead
}

// Changed reports whether any memoized entry changed under the patch.
// It is a pure patch-plane observation — NOT a safe suppression signal:
// a Fallback summary dropped memos wholesale with Patched == 0, and a
// sharded advance can drop merged results it cannot vouch for without
// patching anything. Consumers that skip work when "nothing changed"
// (the notification hub) must use MaybeChanged.
func (s PatchSummary) Changed() bool { return s.Patched > 0 }

// MaybeChanged is the conservative region-delta signal: false proves no
// memoized top-k state moved under the advance — no entry was patched,
// no merged result was dropped, and the pure-insert contract held (no
// fallback to the drop path). Only a false MaybeChanged licenses a
// standing-query plane to suppress re-evaluation; the three true cases
// each admit a region change Changed() would miss.
func (s PatchSummary) MaybeChanged() bool {
	return s.Patched > 0 || s.MergedDropped > 0 || s.Fallback
}

// splicePos returns the comparator position of (slot, s) in a ranked
// entry list — the index before which it belongs under the shared
// (score desc, index asc) order. len(idx) means "after the last entry".
func splicePos(idx []int, scores []float64, slot int, s float64) int {
	for i, sc := range scores {
		if s > sc || (s == sc && slot < idx[i]) {
			return i
		}
	}
	return len(idx)
}

// spliceAt inserts (slot, s) at position pos, growing the lists while
// they are below k and dropping the displaced last entry otherwise. The
// slices must be private to the caller.
func spliceAt(idx []int, scores []float64, k, pos, slot int, s float64) ([]int, []float64) {
	if len(idx) < k {
		idx = append(idx, 0)
		scores = append(scores, 0)
	}
	copy(idx[pos+1:], idx[pos:])
	copy(scores[pos+1:], scores[pos:])
	idx[pos] = slot
	scores[pos] = s
	return idx, scores
}

// spliceResult patches one memoized whole-dataset Result for a batch of
// inserted slots. It returns the original Result (and false) when no
// insert cracks the top-k — the carried-forward entry is shared by
// pointer with the old generation, never copied.
func spliceResult(r *Result, w vec.Vector, sc *Scorer, inserted []int, k int) (*Result, bool) {
	var ord []int
	var scs []float64
	for _, slot := range inserted {
		s := ScorePoint(w, sc.Point(slot))
		ci, cs := r.Ordered, r.scores
		if ord != nil {
			ci, cs = ord, scs
		}
		pos := splicePos(ci, cs, slot, s)
		if pos == len(ci) && len(ci) >= k {
			continue // ranks below the k-th: the entry is already exact
		}
		if ord == nil {
			ord = append(make([]int, 0, k), r.Ordered...)
			scs = append(make([]float64, 0, k), r.scores...)
		}
		ord, scs = spliceAt(ord, scs, k, pos, slot, s)
	}
	if ord == nil {
		return r, false
	}
	return newResult(ord, scs), true
}

// splicePartial is spliceResult for one shard's partial. A partial
// holds min(k, |members|) entries, so while it is below k every insert
// routed to its shard must enter (the partial ranks *all* members), not
// only the ones that beat the current tail.
func splicePartial(p *partial, sc *Scorer, inserted []int, k int) (*partial, bool) {
	var np *partial
	for _, slot := range inserted {
		s := ScorePoint(p.w, sc.Point(slot))
		cur := p
		if np != nil {
			cur = np
		}
		pos := splicePos(cur.idx, cur.scores, slot, s)
		if pos == len(cur.idx) && len(cur.idx) >= k {
			continue
		}
		if np == nil {
			room := len(p.idx) + len(inserted)
			if room > k {
				room = k
			}
			np = &partial{
				idx:    append(make([]int, 0, room), p.idx...),
				scores: append(make([]float64, 0, room), p.scores...),
				w:      p.w,
			}
		}
		np.idx, np.scores = spliceAt(np.idx, np.scores, k, pos, slot, s)
	}
	if np == nil {
		return p, false
	}
	return np, true
}

// patchAdvance builds this unsharded whole-dataset cache's successor
// for a pure-insert generation, patching every memoized entry in place
// of recomputation. Successor-object pattern as in cloneAdvance:
// in-flight solves pinned to the old generation keep this object
// untouched, and entries no insert cracked are shared by pointer. The
// eviction counter is carried so Registry.Evictions stays monotone when
// this object retires.
func (c *Cache) patchAdvance(sc *Scorer, inserted []int) (*Cache, PatchSummary) {
	var sum PatchSummary
	next := &Cache{scorer: sc, k: c.k, limit: c.limit}
	c.mu.Lock()
	next.evictions = c.evictions
	next.m = make(map[uint64]memoEntry, len(c.m))
	for key, e := range c.m {
		sum.Entries++
		r2, changed := spliceResult(e.r, e.w, sc, inserted, c.k)
		if changed {
			sum.Patched++
		}
		next.m[key] = memoEntry{w: e.w, r: r2}
	}
	c.mu.Unlock()
	return next, sum
}

// patchAdvanceSharded is patchAdvance for a sharded cache. byShard
// routes the inserted slots to their owning shards (indexed by shard
// id); a shard no insert landed in is shared by pointer exactly like
// cloneAdvance's unaffected shards, a shard with inserts gets a patched
// copy of its memo with the inserts appended to its member list.
//
// Merged results are carried when provably still exact: a key whose
// partial changed in any patched shard is dropped (the merge is stale),
// and a key absent from a patched shard's memo cannot be vouched for
// and is dropped too — its next lookup re-merges from the patched
// partials, recomputing nothing. Keys verified unchanged in every
// patched shard merge to the identical Result and are kept.
func (c *Cache) patchAdvanceSharded(sc *Scorer, byShard [][]int) (*Cache, PatchSummary) {
	var sum PatchSummary
	memos := make([]*shardMemo, len(c.sh.memos))
	var changed map[uint64]bool
	for i, sm := range c.sh.memos {
		ins := byShard[i]
		if len(ins) == 0 {
			sm.mu.Lock()
			sm.scorer = sc
			sm.mu.Unlock()
			memos[i] = sm
			continue
		}
		sm.mu.Lock()
		members := make([]int, 0, len(sm.members)+len(ins))
		members = append(append(members, sm.members...), ins...)
		nm := make(map[uint64]*partial, len(sm.m))
		for key, p := range sm.m {
			sum.Entries++
			np, ch := splicePartial(p, sc, ins, c.k)
			if ch {
				sum.Patched++
				if changed == nil {
					changed = make(map[uint64]bool)
				}
				changed[key] = true
			}
			nm[key] = np
		}
		// Counters carry into the successor: the patched memo is the
		// same shard's state repaired, not a cold restart, so ShardStats
		// and Evictions stay monotone when the old object retires.
		memos[i] = &shardMemo{
			scorer:    sc,
			members:   members,
			m:         nm,
			limit:     sm.limit,
			hits:      sm.hits,
			misses:    sm.misses,
			evictions: sm.evictions,
		}
		sm.mu.Unlock()
	}

	c.sh.mergedMu.RLock()
	merged := make(map[uint64]*Result, len(c.sh.merged))
outer:
	for key, r := range c.sh.merged {
		if changed[key] {
			sum.MergedDropped++
			continue
		}
		for i := range memos {
			if len(byShard[i]) == 0 {
				continue
			}
			// Patched memos are private until this cache is published,
			// so reading them lock-free here is safe.
			if _, ok := memos[i].m[key]; !ok {
				sum.MergedDropped++
				continue outer
			}
		}
		merged[key] = r
	}
	c.sh.mergedMu.RUnlock()

	c.mu.Lock()
	ev := c.evictions
	c.mu.Unlock()
	return &Cache{
		scorer:    sc,
		k:         c.k,
		evictions: ev,
		sh: &sharded{
			memos:       memos,
			merged:      merged,
			mergedLimit: c.sh.mergedLimit,
		},
	}, sum
}

// AdvanceInsert moves the registry to a new dataset generation produced
// by a pure-insert batch, repairing interned caches instead of the
// dropping Advance performs. inserted must be exactly the new tail
// slots [oldLen, newLen) in ascending order (store.Delta.Inserted
// provides this); any other delta falls back to Advance's drop
// semantics, reported via the summary's Fallback flag.
//
// Explicit-active configurations only rebind — an insert cannot touch
// their members. Whole-dataset configurations are patched entry by
// entry (see spliceResult / splicePartial). The returned summary is the
// region-delta signal described on PatchSummary.
func (r *Registry) AdvanceInsert(sc *Scorer, inserted []int) PatchSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldLen, newLen := r.scorer.Len(), sc.Len()
	ok := len(inserted) > 0 && newLen == oldLen+len(inserted)
	if ok {
		for t, s := range inserted {
			if s != oldLen+t {
				ok = false
				break
			}
		}
	}
	if !ok {
		r.advanceLocked(sc, inserted)
		return PatchSummary{Fallback: true}
	}

	var byShard [][]int
	if r.shards > 1 {
		// Grow the slot-to-shard map in place (amortized): no existing
		// slot changes hands under a pure insert.
		byShard = make([][]int, r.shards)
		for _, s := range inserted {
			sh := ShardOfPoint(sc.Point(s), r.shards)
			r.assign = append(r.assign, uint8(sh))
			byShard[sh] = append(byShard[sh], s)
		}
	}

	var sum PatchSummary
	for key, c := range r.m {
		if c.active != nil {
			c.rebind(sc) // inserts cannot touch an explicit active set
			continue
		}
		sum.Configs++
		var next *Cache
		var s PatchSummary
		if c.sh != nil {
			next, s = c.patchAdvanceSharded(sc, byShard)
		} else {
			next, s = c.patchAdvance(sc, inserted)
		}
		h, m := c.Stats()
		r.retiredHits += h
		r.retiredMisses += m
		sum.Entries += s.Entries
		sum.Patched += s.Patched
		sum.MergedDropped += s.MergedDropped
		r.m[key] = next
	}
	r.scorer = sc
	r.patchInserts += len(inserted)
	r.patchedEntries += sum.Patched
	if !sum.Changed() {
		r.untouchedAdvances++
	}
	return sum
}

// PatchStats reports the cumulative patch-on-insert counters:
// patchedEntries is memo entries changed by AdvanceInsert splices,
// patchInserts the options applied through the patch path, and
// untouchedAdvances the patch advances in which no memoized top-k
// changed — batches proven to leave every standing result region
// unchanged.
func (r *Registry) PatchStats() (patchedEntries, patchInserts, untouchedAdvances int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.patchedEntries, r.patchInserts, r.untouchedAdvances
}
