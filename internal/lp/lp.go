// Package lp implements a dense two-phase simplex solver for small to
// medium linear programs.
//
// It serves the TopRR reproduction in three roles: convex-hull layer
// peeling for the k-onion filter (Section 6.3 of the paper), feasibility
// and redundancy probes over polytope H-representations, and as an
// independent oracle in tests of the geometry engine.
//
// The solver handles problems of the form
//
//	maximize (or minimize) c·x
//	subject to a_i·x {<=,=,>=} b_i  for each constraint i
//	           x >= 0
//
// using the standard two-phase tableau method with Bland's rule, which
// guarantees termination.
package lp

import (
	"fmt"
	"math"
	"sync/atomic"

	"toprr/internal/vec"
)

// Eps is the pivoting and feasibility tolerance.
const Eps = 1e-9

// solves counts simplex invocations since process start. Every public
// entry point funnels through solve(), so the counter is a faithful
// process-wide LP call count for benchmark instrumentation.
var solves atomic.Int64

// Solves returns the number of LP solves performed so far.
func Solves() int64 { return solves.Load() }

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a·x <= b
	EQ            // a·x  = b
	GE            // a·x >= b
)

// Constraint is a single linear constraint a·x REL b.
type Constraint struct {
	A   vec.Vector
	Rel Rel
	B   float64
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result carries the solution of a linear program.
type Result struct {
	Status Status
	X      vec.Vector // primal solution (valid when Status == Optimal)
	Value  float64    // objective value at X
}

// Maximize solves: max c·x subject to cons and x >= 0.
func Maximize(c vec.Vector, cons []Constraint) Result {
	return solve(c, cons, false)
}

// Minimize solves: min c·x subject to cons and x >= 0.
func Minimize(c vec.Vector, cons []Constraint) Result {
	r := solve(c.Scale(-1), cons, false)
	r.Value = -r.Value
	return r
}

// Feasible reports whether the system {cons, x >= 0} has a solution and
// returns one if so.
func Feasible(n int, cons []Constraint) (vec.Vector, bool) {
	r := solve(vec.New(n), cons, true)
	if r.Status != Optimal {
		return nil, false
	}
	return r.X, true
}

// MaximizeFree solves max c·x subject to cons with x unrestricted in
// sign, via the standard substitution x = u - v with u, v >= 0.
func MaximizeFree(c vec.Vector, cons []Constraint) Result {
	n := len(c)
	cc := make(vec.Vector, 2*n)
	copy(cc, c)
	for j := 0; j < n; j++ {
		cc[n+j] = -c[j]
	}
	cons2 := make([]Constraint, len(cons))
	for i, con := range cons {
		a := make(vec.Vector, 2*n)
		copy(a, con.A)
		for j := 0; j < n; j++ {
			a[n+j] = -con.A[j]
		}
		cons2[i] = Constraint{A: a, Rel: con.Rel, B: con.B}
	}
	r := solve(cc, cons2, false)
	if r.Status != Optimal {
		return Result{Status: r.Status}
	}
	x := make(vec.Vector, n)
	for j := 0; j < n; j++ {
		x[j] = r.X[j] - r.X[n+j]
	}
	return Result{Status: Optimal, X: x, Value: r.Value}
}

// MinimizeFree solves min c·x subject to cons with x unrestricted in
// sign.
func MinimizeFree(c vec.Vector, cons []Constraint) Result {
	r := MaximizeFree(c.Scale(-1), cons)
	r.Value = -r.Value
	return r
}

// tableau is a dense simplex tableau. Row 0..m-1 are constraints, the
// last two rows hold the phase-2 and phase-1 objectives.
type tableau struct {
	m, n  int // constraints, total columns (vars + slacks + artificials + rhs)
	data  []float64
	basis []int // basic variable per row
}

func (t *tableau) at(i, j int) float64     { return t.data[i*t.n+j] }
func (t *tableau) set(i, j int, v float64) { t.data[i*t.n+j] = v }
func (t *tableau) add(i, j int, v float64) { t.data[i*t.n+j] += v }

// solve maximizes c·x. feasOnly skips phase 2.
func solve(c vec.Vector, cons []Constraint, feasOnly bool) Result {
	solves.Add(1)
	nVars := len(c)
	// Count auxiliary columns.
	nSlack, nArt := 0, 0
	for _, con := range cons {
		if len(con.A) != nVars {
			panic("lp: constraint dimension mismatch")
		}
		b := con.B
		rel := con.Rel
		if b < 0 { // normalize to b >= 0 by flipping the row
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	m := len(cons)
	cols := nVars + nSlack + nArt + 1 // +1 rhs
	t := &tableau{m: m, n: cols, data: make([]float64, (m+2)*cols), basis: make([]int, m)}
	rhs := cols - 1
	objRow, artRow := m, m+1

	slackCol := nVars
	artCol := nVars + nSlack
	for i, con := range cons {
		a, b, rel := con.A, con.B, con.Rel
		if b < 0 {
			a = a.Scale(-1)
			b = -b
			rel = flip(rel)
		}
		for j, v := range a {
			t.set(i, j, v)
		}
		t.set(i, rhs, b)
		switch rel {
		case LE:
			t.set(i, slackCol, 1)
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.set(i, slackCol, -1)
			slackCol++
			t.set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		}
	}
	// Phase-2 objective row: maximize c·x -> row holds -c (reduced costs).
	for j, v := range c {
		t.set(objRow, j, -v)
	}
	// Phase-1 objective: minimize sum of artificials -> maximize -sum.
	for j := nVars + nSlack; j < nVars+nSlack+nArt; j++ {
		t.set(artRow, j, 1)
	}
	// Price out the artificial basic variables from the phase-1 row.
	for i := 0; i < m; i++ {
		if t.basis[i] >= nVars+nSlack {
			for j := 0; j < cols; j++ {
				t.add(artRow, j, -t.at(i, j))
			}
		}
	}
	if nArt > 0 {
		if !t.pivotLoop(artRow, nVars+nSlack+nArt) {
			// Phase 1 of an LP is always bounded; reaching here means a
			// numeric breakdown, treat as infeasible.
			return Result{Status: Infeasible}
		}
		if -t.at(artRow, rhs) > 1e-7 {
			return Result{Status: Infeasible}
		}
		// Drive any artificial variables that remain basic at zero level
		// out of the basis when possible.
		for i := 0; i < m; i++ {
			if t.basis[i] < nVars+nSlack {
				continue
			}
			for j := 0; j < nVars+nSlack; j++ {
				if math.Abs(t.at(i, j)) > Eps {
					t.pivot(i, j)
					break
				}
			}
		}
	}
	if feasOnly {
		return Result{Status: Optimal, X: t.extract(nVars, rhs), Value: 0}
	}
	if !t.pivotLoop(objRow, nVars+nSlack) {
		return Result{Status: Unbounded}
	}
	x := t.extract(nVars, rhs)
	return Result{Status: Optimal, X: x, Value: t.at(objRow, rhs)}
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// pivotLoop runs simplex iterations maximizing the given objective row,
// considering entering columns < limit. It returns false on unboundedness.
func (t *tableau) pivotLoop(objRow, limit int) bool {
	rhs := t.n - 1
	for iter := 0; ; iter++ {
		// Bland's rule: smallest-index column with negative reduced cost.
		col := -1
		for j := 0; j < limit; j++ {
			if t.at(objRow, j) < -Eps {
				col = j
				break
			}
		}
		if col < 0 {
			return true
		}
		// Ratio test, Bland tie-break on basis index.
		row, best := -1, math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.at(i, col)
			if a <= Eps {
				continue
			}
			r := t.at(i, rhs) / a
			if r < best-Eps || (r < best+Eps && (row < 0 || t.basis[i] < t.basis[row])) {
				row, best = i, r
			}
		}
		if row < 0 {
			return false
		}
		t.pivot(row, col)
	}
}

// pivot makes (row, col) the basic entry.
func (t *tableau) pivot(row, col int) {
	pv := t.at(row, col)
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		t.set(row, j, t.at(row, j)*inv)
	}
	for i := 0; i < t.m+2; i++ {
		if i == row {
			continue
		}
		f := t.at(i, col)
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.add(i, j, -f*t.at(row, j))
		}
	}
	t.basis[row] = col
}

// extract reads the primal solution for the first nVars columns.
func (t *tableau) extract(nVars, rhs int) vec.Vector {
	x := vec.New(nVars)
	for i, b := range t.basis {
		if b < nVars {
			x[b] = t.at(i, rhs)
		}
	}
	return x
}
