package fabric

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// startWorker runs a Server over an EngineBackend on 127.0.0.1:0 and
// returns its address plus a kill function.
func startWorker(t *testing.T) (string, *Server) {
	t.Helper()
	backend := NewEngineBackend(BackendConfig{})
	srv := NewServer(backend)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// randomPts builds n points in [0,1]^d.
func randomPts(rng *rand.Rand, n, d int) ([]vec.Vector, []float64) {
	pts := make([]vec.Vector, n)
	flat := make([]float64, 0, n*d)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
		flat = append(flat, p...)
	}
	return pts, flat
}

// syncClient pushes one generation and fails the test on error.
func syncClient(t *testing.T, cl *Client, gen uint64, shards, d int, flat []float64) {
	t.Helper()
	if err := cl.Sync(context.Background(), SyncMsg{Gen: gen, Shards: uint32(shards), Dim: uint32(d), Pts: flat}); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// TestClientServerPartials: a synced worker answers partials
// bit-identically to a local PartialTopK over the same member lists.
func TestClientServerPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	addr, _ := startWorker(t)
	const (
		n      = 200
		d      = 3
		shards = 4
		gen    = 9
	)
	pts, flat := randomPts(rng, n, d)
	scorer := topk.NewScorerAt(pts, gen)
	assign := topk.ShardAssignment(scorer, shards)
	members := make([][]int, shards)
	for slot, sh := range assign {
		members[sh] = append(members[sh], slot)
	}

	cl := NewClient(ClientConfig{Addr: addr, Dataset: "t"})
	defer cl.Close()
	syncClient(t, cl, gen, shards, d, flat)

	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		w := vec.New(d - 1)
		rest := 1.0
		for j := range w {
			w[j] = rng.Float64() * rest
			rest -= w[j]
		}
		k := 1 + rng.Intn(8)
		sh := rng.Intn(shards)
		idx, scores, err := cl.Partial(ctx, gen, sh, k, w, nil)
		if err != nil {
			t.Fatalf("partial: %v", err)
		}
		wantIdx, wantScores := topk.PartialTopK(scorer, members[sh], w, k)
		if len(idx) != len(wantIdx) {
			t.Fatalf("partial len %d != %d", len(idx), len(wantIdx))
		}
		for i := range idx {
			if int(idx[i]) != wantIdx[i] || scores[i] != wantScores[i] {
				t.Fatalf("trial %d slot %d: remote (%d, %v) != local (%d, %v)",
					trial, i, idx[i], scores[i], wantIdx[i], wantScores[i])
			}
		}
	}

	// The worker memoizes: repeating a vertex serves from its memo.
	w := vec.Vector{0.3, 0.3}
	if _, _, err := cl.Partial(ctx, gen, 0, 3, w, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Partial(ctx, gen, 0, 3, w, nil); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != gen || st.Hits == 0 {
		t.Fatalf("stats = %+v, want gen %d and memo hits", st, gen)
	}
}

// TestClientPipelining: many concurrent partials overlap on few
// connections, and the recorded pipelining depth shows they truly rode
// the wire together.
func TestClientPipelining(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	addr, _ := startWorker(t)
	_, flat := randomPts(rng, 300, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "p", Conns: 1})
	defer cl.Close()
	syncClient(t, cl, 1, 4, 3, flat)

	const inFlight = 32
	var wg sync.WaitGroup
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := vec.Vector{float64(i) / (2 * inFlight), 0.25}
			if _, _, err := cl.Partial(context.Background(), 1, i%4, 3, w, nil); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ws := cl.Wire()
	if ws.Partials != inFlight {
		t.Fatalf("partials = %d, want %d", ws.Partials, inFlight)
	}
	if ws.MaxInflight < 2 {
		t.Fatalf("max inflight = %d; pipelining never overlapped", ws.MaxInflight)
	}
	if ws.BytesOut == 0 || ws.BytesIn == 0 {
		t.Fatal("wire byte counters not moving")
	}
}

// TestSerialModeDoesNotPipeline: the benchmark-referee mode keeps at
// most one request in flight per connection.
func TestSerialModeDoesNotPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	addr, _ := startWorker(t)
	_, flat := randomPts(rng, 100, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "s", Conns: 1, Serial: true})
	defer cl.Close()
	syncClient(t, cl, 1, 2, 3, flat)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := vec.Vector{float64(i) / 32, 0.25}
			cl.Partial(context.Background(), 1, i%2, 2, w, nil)
		}(i)
	}
	wg.Wait()
	// The sync frame itself also occupies the single token, so depth 1
	// is the hard ceiling for request concurrency on the wire.
	if ws := cl.Wire(); ws.MaxInflight > 1 {
		t.Fatalf("serial mode reached inflight depth %d", ws.MaxInflight)
	}
}

// TestGenerationMismatchRefused: a worker resident at one generation
// refuses requests for any other with ErrGenMismatch, and a fresh sync
// re-pins it.
func TestGenerationMismatchRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	addr, _ := startWorker(t)
	_, flat := randomPts(rng, 80, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "g"})
	defer cl.Close()

	// Never synced: refusal maps to ErrNotSynced.
	if _, _, err := cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.3, 0.3}, nil); !errors.Is(err, ErrNotSynced) {
		t.Fatalf("unsynced err = %v, want ErrNotSynced", err)
	}

	syncClient(t, cl, 5, 2, 3, flat)
	if _, _, err := cl.Partial(context.Background(), 6, 0, 2, vec.Vector{0.3, 0.3}, nil); !errors.Is(err, ErrGenMismatch) {
		t.Fatalf("stale err = %v, want ErrGenMismatch", err)
	}
	if _, _, err := cl.Partial(context.Background(), 5, 0, 2, vec.Vector{0.3, 0.3}, nil); err != nil {
		t.Fatalf("resident generation refused: %v", err)
	}

	// Re-pin at the newer generation: now 6 answers and 5 refuses.
	syncClient(t, cl, 6, 2, 3, flat)
	if _, _, err := cl.Partial(context.Background(), 6, 0, 2, vec.Vector{0.3, 0.3}, nil); err != nil {
		t.Fatalf("after resync: %v", err)
	}
	if _, _, err := cl.Partial(context.Background(), 5, 0, 2, vec.Vector{0.3, 0.3}, nil); !errors.Is(err, ErrGenMismatch) {
		t.Fatalf("old generation err = %v, want ErrGenMismatch", err)
	}
}

// TestWorkerKillMidStream: killing the server fails in-flight and
// subsequent requests with transport errors — never a wrong answer —
// and a restarted worker on the same address serves again after the
// client redials.
func TestWorkerKillMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	backend := NewEngineBackend(BackendConfig{})
	srv := NewServer(backend)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	_, flat := randomPts(rng, 100, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "k", Timeout: 500 * time.Millisecond})
	defer cl.Close()
	syncClient(t, cl, 1, 2, 3, flat)
	if _, _, err := cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.2, 0.4}, nil); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// Every request now errors (connection death or dial failure), in
	// bounded time; no request hangs past its deadline.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 8; i++ {
		if _, _, err := cl.Partial(context.Background(), 1, i%2, 2, vec.Vector{0.2, 0.3}, nil); err == nil {
			t.Fatal("partial succeeded against a killed worker")
		}
		if time.Now().After(deadline) {
			t.Fatal("requests not failing fast after worker kill")
		}
	}

	// Restart on the same address: a fresh backend (empty — the restart
	// lost the stateless copy), so the first partial is refused until
	// the coordinator resyncs.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := NewServer(NewEngineBackend(BackendConfig{}))
	go srv2.Serve(ln2)
	defer srv2.Close()

	var perr error
	for i := 0; i < 50; i++ {
		_, _, perr = cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.2, 0.4}, nil)
		if errors.Is(perr, ErrNotSynced) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !errors.Is(perr, ErrNotSynced) {
		t.Fatalf("restarted worker err = %v, want ErrNotSynced", perr)
	}
	cl.ResetSync()
	syncClient(t, cl, 1, 2, 3, flat)
	if _, _, err := cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.2, 0.4}, nil); err != nil {
		t.Fatalf("after restart resync: %v", err)
	}
}

// TestClientDrain: a draining client fails new requests with
// ErrDraining and lets in-flight ones finish.
func TestClientDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	addr, _ := startWorker(t)
	_, flat := randomPts(rng, 60, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "d"})
	syncClient(t, cl, 1, 2, 3, flat)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := cl.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, err := cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.3, 0.3}, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain err = %v, want ErrDraining", err)
	}
}

// TestHandshakePinsDataset: two clients for different dataset names on
// one worker see independent states.
func TestHandshakePinsDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	addr, _ := startWorker(t)
	_, flatA := randomPts(rng, 50, 3)
	_, flatB := randomPts(rng, 70, 4)

	a := NewClient(ClientConfig{Addr: addr, Dataset: "a"})
	defer a.Close()
	b := NewClient(ClientConfig{Addr: addr, Dataset: "b"})
	defer b.Close()

	syncClient(t, a, 3, 2, 3, flatA)
	syncClient(t, b, 8, 4, 4, flatB)

	if _, _, err := a.Partial(context.Background(), 3, 1, 2, vec.Vector{0.3, 0.3}, nil); err != nil {
		t.Fatalf("dataset a: %v", err)
	}
	if _, _, err := b.Partial(context.Background(), 8, 3, 2, vec.Vector{0.2, 0.2, 0.2}, nil); err != nil {
		t.Fatalf("dataset b: %v", err)
	}
	// a's generation does not leak into b.
	if _, _, err := b.Partial(context.Background(), 3, 0, 2, vec.Vector{0.2, 0.2, 0.2}, nil); !errors.Is(err, ErrGenMismatch) {
		t.Fatalf("cross-dataset err = %v, want ErrGenMismatch", err)
	}
}

// TestServerRejectsGarbageConnection: a connection that opens with a
// corrupt or non-Hello frame is hung up on, and the listener keeps
// serving others.
func TestServerRejectsGarbageConnection(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	addr, _ := startWorker(t)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	if n, _ := c.Read(buf); n != 0 {
		// Whatever came back, the connection must close rather than
		// serve the garbage stream.
		if _, err := c.Read(buf); err == nil {
			t.Fatal("server kept a garbage connection alive")
		}
	}
	c.Close()

	// The worker still serves proper clients.
	_, flat := randomPts(rng, 40, 3)
	cl := NewClient(ClientConfig{Addr: addr, Dataset: "ok"})
	defer cl.Close()
	syncClient(t, cl, 1, 2, 3, flat)
	if _, _, err := cl.Partial(context.Background(), 1, 0, 2, vec.Vector{0.3, 0.3}, nil); err != nil {
		t.Fatalf("post-garbage partial: %v", err)
	}
}

// TestMemberListPartials: a request carrying an explicit member list is
// answered over exactly those slots — bit-identical to the local subset
// computation — memoized separately from the whole-shard partial at the
// same vertex, and validated against the resident dataset's bounds.
func TestMemberListPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	addr, _ := startWorker(t)
	const (
		n      = 150
		d      = 3
		shards = 2
		gen    = 4
	)
	pts, flat := randomPts(rng, n, d)
	scorer := topk.NewScorerAt(pts, gen)

	cl := NewClient(ClientConfig{Addr: addr, Dataset: "members"})
	defer cl.Close()
	syncClient(t, cl, gen, shards, d, flat)
	ctx := context.Background()

	// A strict subset, ascending — the shape an active-set shard memo
	// ships.
	subset32 := make([]uint32, 0, n/3)
	subset := make([]int, 0, n/3)
	for i := 0; i < n; i += 3 {
		subset32 = append(subset32, uint32(i))
		subset = append(subset, i)
	}
	w := vec.Vector{0.25, 0.35}
	const k = 6
	idx, scores, err := cl.Partial(ctx, gen, 0, k, w, subset32)
	if err != nil {
		t.Fatalf("member-list partial: %v", err)
	}
	wantIdx, wantScores := topk.PartialTopK(scorer, subset, w, k)
	if len(idx) != len(wantIdx) {
		t.Fatalf("partial len %d != %d", len(idx), len(wantIdx))
	}
	for i := range idx {
		if int(idx[i]) != wantIdx[i] || scores[i] != wantScores[i] {
			t.Fatalf("slot %d: remote (%d, %v) != local (%d, %v)", i, idx[i], scores[i], wantIdx[i], wantScores[i])
		}
	}

	// The whole-shard partial at the same vertex is a different answer —
	// the memo must not conflate the two keys.
	whole, _, err := cl.Partial(ctx, gen, 0, k, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := len(whole) == len(idx)
	if same {
		for i := range whole {
			if whole[i] != idx[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("whole-shard and member-list partials identical; memo keys likely conflated")
	}

	// Out-of-range member slots are refused, not computed.
	if _, _, err := cl.Partial(ctx, gen, 0, k, w, []uint32{5, uint32(n)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range member slot: err = %v, want ErrBadRequest", err)
	}
}
