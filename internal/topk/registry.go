package topk

import (
	"sort"
	"strconv"
	"sync"
)

// Registry interns top-k caches of one dataset by their (k, active-set)
// configuration, so that queries sharing a dataset also share memoized
// per-vertex top-k results. The TopRR recursion derives its cache
// configurations deterministically from the query region (the r-skyband
// active set, then Lemma 5 reductions), so batches of queries over
// nearby regions converge on the same configurations and amortize the
// scoring work. A Registry is safe for concurrent use.
type Registry struct {
	scorer *Scorer
	mu     sync.Mutex
	m      map[string]*Cache
	limit  int
}

// registryLimit caps the interned configurations and cacheEntryLimit
// caps each interned cache's memoized vertices. Beyond the limits, Get
// hands out unregistered caches and full caches stop storing: a
// long-lived engine keeps its hottest configurations and vertices
// without growing without bound.
const (
	registryLimit   = 512
	cacheEntryLimit = 1 << 18
)

// NewRegistry builds an empty cache registry bound to one dataset.
func NewRegistry(scorer *Scorer) *Registry {
	return &Registry{scorer: scorer, m: make(map[string]*Cache), limit: registryLimit}
}

// Scorer returns the dataset the registry is bound to. Callers must
// verify identity before handing the registry results for a different
// dataset.
func (r *Registry) Scorer() *Scorer { return r.scorer }

// configKey canonicalizes a cache configuration: the active set is
// keyed order-insensitively so permutations of the same subset share.
func configKey(k int, active []int) string {
	if active == nil {
		return strconv.Itoa(k) + "|*"
	}
	ix := append([]int(nil), active...)
	sort.Ints(ix)
	return strconv.Itoa(k) + "|" + joinInts(ix)
}

// Get returns the shared cache for (k, active), creating it on first
// use. The returned cache memoizes across every query that requests the
// same configuration. Once the registry is full, unseen configurations
// receive fresh unregistered caches instead of growing the registry.
func (r *Registry) Get(k int, active []int) *Cache {
	key := configKey(k, active)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.m[key]; ok {
		return c
	}
	c := NewBoundedCache(r.scorer, k, active, cacheEntryLimit)
	if len(r.m) < r.limit {
		r.m[key] = c
	}
	return c
}

// Len reports the number of interned cache configurations.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Stats sums hits and misses over every interned cache.
func (r *Registry) Stats() (hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.m {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}
