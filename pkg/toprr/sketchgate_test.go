package toprr_test

import (
	"context"
	"math/rand"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// dominatedMarket builds a skewed dataset: a small elite well inside
// [0.7,1]^d above a large mass capped at 0.6 per coordinate. The elite
// fits the sketches' monitored budget and r-dominates everything the
// thresholds summarize, so the prefilter gate has room to certify.
func dominatedMarket(rng *rand.Rand, n, d int) []vec.Vector {
	const elite = 32
	pts := make([]vec.Vector, 0, n)
	for i := 0; i < n-elite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64() * 0.6
		}
		pts = append(pts, p)
	}
	for i := 0; i < elite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.7 + rng.Float64()*0.3
		}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// dominatedPoint draws an insert from the same skewed distribution
// (mostly mass, occasionally elite).
func dominatedPoint(rng *rand.Rand, d int) vec.Vector {
	p := vec.New(d)
	if rng.Intn(10) == 0 {
		for j := range p {
			p[j] = 0.7 + rng.Float64()*0.3
		}
		return p
	}
	for j := range p {
		p[j] = rng.Float64() * 0.6
	}
	return p
}

// requireIdentical fails unless two results are bit-identical:
// constraints, region fingerprint, and the defining vertex set.
func requireIdentical(t *testing.T, tag string, got, want *toprr.Result) {
	t.Helper()
	if toprr.RegionFingerprint(got) != toprr.RegionFingerprint(want) {
		t.Fatalf("%s: region fingerprints differ", tag)
	}
	if len(got.ORConstraints) != len(want.ORConstraints) {
		t.Fatalf("%s: %d constraints, want %d", tag, len(got.ORConstraints), len(want.ORConstraints))
	}
	for i := range got.ORConstraints {
		g, w := got.ORConstraints[i], want.ORConstraints[i]
		if g.B != w.B || !g.A.Equal(w.A, 0) {
			t.Fatalf("%s: constraint %d differs: %v|%v vs %v|%v", tag, i, g.A, g.B, w.A, w.B)
		}
	}
	if len(got.Vall) != len(want.Vall) {
		t.Fatalf("%s: |Vall| = %d, want %d", tag, len(got.Vall), len(want.Vall))
	}
	for i := range got.Vall {
		g, w := got.Vall[i], want.Vall[i]
		if g.KthScore != w.KthScore || !g.W.Equal(w.W, 0) {
			t.Fatalf("%s: Vall[%d] differs: %v@%v vs %v@%v", tag, i, g.W, g.KthScore, w.W, w.KthScore)
		}
	}
}

// TestSketchGateBitIdentity: a gated solve must be bit-identical to an
// ungated one — same constraints, fingerprint and Vall — across shard
// counts, with mutations interleaved between rounds. This is the
// acceptance property of the sketch gate: it may only skip work whose
// outcome its certificate pins.
func TestSketchGateBitIdentity(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(100 + shards)))
			d := 4
			pts := dominatedMarket(rng, 600, d)
			engine := toprr.NewEngine(pts, toprr.WithShards(shards))

			ungated := toprr.Options{Alg: toprr.TASStar, DisableSketchGate: true}
			for round := 0; round < 4; round++ {
				snap := engine.Snapshot()
				for qi := 0; qi < 3; qi++ {
					q := randomQuery(rng, d, 2+rng.Intn(4))
					got, err := engine.SolveAt(ctx, snap, q)
					if err != nil {
						t.Fatal(err)
					}
					q.Options = &ungated
					want, err := engine.SolveAt(ctx, snap, q)
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, "gated vs ungated", got, want)
					if want.Stats.SketchGated {
						t.Fatal("ungated solve reports a sketch certificate")
					}
				}
				// Mutate between rounds: a pure-insert batch on even rounds
				// (patch advance), a reshape batch on odd ones (rebuild
				// advance).
				var ops []toprr.Op
				if round%2 == 0 {
					for i := 0; i < 5; i++ {
						ops = append(ops, toprr.Insert(dominatedPoint(rng, d)))
					}
				} else {
					n := engine.Snapshot().Scorer.Len()
					ops = append(ops,
						toprr.Update(rng.Intn(n), dominatedPoint(rng, d)),
						toprr.Delete(rng.Intn(n)),
						toprr.Insert(dominatedPoint(rng, d)),
					)
				}
				if _, err := engine.Apply(ctx, ops); err != nil {
					t.Fatal(err)
				}
			}
			cs := engine.CacheStats()
			if cs.SketchGateHits == 0 {
				t.Error("gate never certified on dominated-heavy data")
			}
			if cs.SketchCertifiedSkips == 0 {
				t.Error("gate certified without excusing any option")
			}
		})
	}
}

// TestSketchGateStatsSurface: a gated solve reports the certificate in
// its Stats, and the skip count matches dataset minus candidates.
func TestSketchGateStatsSurface(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	pts := dominatedMarket(rng, 600, 4)
	engine := toprr.NewEngine(pts, toprr.WithShards(1))

	res, err := engine.Solve(ctx, randomQuery(rng, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.SketchGated {
		t.Fatal("solve on dominated-heavy data was not gated")
	}
	if res.Stats.SketchSkips <= 0 {
		t.Fatalf("SketchSkips = %d, want > 0", res.Stats.SketchSkips)
	}
	if res.Stats.SketchSkips != 600-64 {
		t.Fatalf("SketchSkips = %d, want %d (dataset minus monitored budget)", res.Stats.SketchSkips, 600-64)
	}
}
