package core

import (
	"toprr/internal/skyband"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// FilterSizes reports the candidate-set sizes behind Figure 12 of the
// paper: |D'| after the r-skyband filter alone, and after additionally
// applying the consistent top-λ pruning of Lemma 5 at the root region
// wR itself.
func FilterSizes(p Problem) (rSkyband, withLemma5 int) {
	pts := make([]vec.Vector, p.Scorer.Len())
	for i := range pts {
		pts[i] = p.Scorer.Point(i)
	}
	rd := skyband.NewRDomVerts(p.WR.VertexPoints())
	active := skyband.RSkyband(pts, p.K, rd)
	rSkyband = len(active)

	// Root-level Lemma 5: largest λ < k with a common top-λ set at all
	// vertices of wR.
	cache := topk.NewCache(p.Scorer, p.K, active)
	verts := p.WR.VertexPoints()
	results := make([]*topk.Result, len(verts))
	for i, v := range verts {
		results[i] = cache.Get(v)
	}
	lambda := 0
	for l := p.K - 1; l >= 1; l-- {
		same := true
		for _, r := range results[1:] {
			if !samePrefixSet(results[0], r, l) {
				same = false
				break
			}
		}
		if same {
			lambda = l
			break
		}
	}
	return rSkyband, rSkyband - lambda
}
