module toprr

go 1.21
