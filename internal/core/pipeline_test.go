package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// cancellingPrefilter runs the real skyband prefilter, then cancels the
// solve's context — so the partition stage deterministically starts
// with a cancelled context, exercising the driver's abort path.
type cancellingPrefilter struct{ cancel context.CancelFunc }

func (cancellingPrefilter) Name() string { return "cancelling" }

func (c cancellingPrefilter) Filter(ctx context.Context, p Problem) ([]int, error) {
	active, err := SkybandPrefilter{}.Filter(ctx, p)
	c.cancel()
	return active, err
}

// TestSolveContextPreCancelled: a cancelled context aborts before any
// work is done.
func TestSolveContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	prob := randomProblem(rng, 120, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, prob, Options{Alg: TASStar}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveContextCancelDuringPartition cancels between the prefilter
// and partition stages, for both the sequential and the channel-based
// parallel driver.
func TestSolveContextCancelDuringPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	prob := randomProblem(rng, 150, 3, 5)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		opt := Options{Alg: TASStar, Workers: workers, Prefilter: cancellingPrefilter{cancel: cancel}}
		_, err := SolveContext(ctx, prob, opt)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSolveContextDeadline: an already-expired deadline surfaces as
// DeadlineExceeded through the pipeline.
func TestSolveContextDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	prob := randomProblem(rng, 120, 3, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := SolveContext(ctx, prob, Options{Alg: TAS, Workers: 3}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolveContextMidFlightCancel starts a solve, waits for the
// partition stage to make real progress, cancels, and requires the
// solve to return promptly with the cancellation error.
func TestSolveContextMidFlightCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	prob := randomProblem(rng, 500, 4, 12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	before := RegionsProcessed()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := SolveContext(ctx, prob, Options{Alg: TAS, Workers: 4})
		done <- outcome{res, err}
	}()
	// Wait until the partition stage has processed some regions, then
	// cancel. If the solve beats the cancel it must still be correct,
	// so either outcome is legal — but a cancelled solve must report
	// context.Canceled and must not hang.
	for RegionsProcessed()-before < 8 {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("solve failed before cancellation: %v", o.err)
			}
			return // finished legitimately before we could cancel
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	cancel()
	select {
	case o := <-done:
		if o.err != nil && !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solve did not return after cancellation")
	}
}

// TestTraversalOrdersAgree: DFS, BFS and priority-driven partitioning
// confirm the same oR (membership-compared).
func TestTraversalOrdersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for iter := 0; iter < 4; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 120, d, 2+rng.Intn(5))
		base, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range []Traversal{BreadthFirst, PriorityOrder} {
			res, err := Solve(prob, Options{Alg: TASStar, Traversal: tr})
			if err != nil {
				t.Fatalf("%v: %v", tr, err)
			}
			for probe := 0; probe < 300; probe++ {
				o := vec.New(d)
				for j := range o {
					o[j] = rng.Float64()
				}
				if base.IsTopRanking(o) != res.IsTopRanking(o) {
					t.Fatalf("iter %d: %v traversal differs at %v", iter, tr, o)
				}
			}
			if res.Stats.Regions == 0 {
				t.Fatalf("%v: stats not populated", tr)
			}
		}
	}
}

// TestSharedCachesMatch: solving with engine-style shared caches
// (hyperplane interning + top-k registry) is an optimization only — the
// results must be identical to isolated solves, and repeated solves
// must actually hit the shared state.
func TestSharedCachesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	prob := randomProblem(rng, 150, 3, 4)
	hp := NewHyperplaneCache(prob.Scorer)
	reg := topk.NewRegistry(prob.Scorer)
	shared := Options{Alg: TASStar, Hyperplanes: hp, TopKCaches: reg}

	base, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Solve(prob, shared)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Len() == 0 && first.Stats.Splits > 0 {
		t.Error("hyperplane cache not populated by a splitting solve")
	}
	if reg.Len() == 0 {
		t.Error("top-k registry not populated")
	}
	hpAfterFirst := hp.Len()
	second, err := Solve(prob, shared)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Len() != hpAfterFirst {
		t.Errorf("identical repeat solve grew the hyperplane cache: %d -> %d", hpAfterFirst, hp.Len())
	}
	hits, _ := reg.Stats()
	if hits == 0 {
		t.Error("repeat solve produced no top-k cache hits")
	}
	for probe := 0; probe < 400; probe++ {
		o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
		if base.IsTopRanking(o) != first.IsTopRanking(o) || base.IsTopRanking(o) != second.IsTopRanking(o) {
			t.Fatalf("shared-cache solve differs at %v", o)
		}
	}
}

// TestNoPrefilterMatches: disabling the prefilter changes cost, never
// the answer.
func TestNoPrefilterMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	prob := randomProblem(rng, 90, 3, 3)
	base, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(prob, Options{Alg: TASStar, Prefilter: NoPrefilter{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilteredOptions != prob.Scorer.Len() {
		t.Errorf("NoPrefilter kept %d of %d options", res.Stats.FilteredOptions, prob.Scorer.Len())
	}
	for probe := 0; probe < 300; probe++ {
		o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
		if base.IsTopRanking(o) != res.IsTopRanking(o) {
			t.Fatalf("NoPrefilter solve differs at %v", o)
		}
	}
}
