package sketch

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/skyband"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// randPoints builds n points in [0,1]^d from a pinned source.
func randPoints(rng *rand.Rand, n, d int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// randPref draws a valid reduced preference: w >= 0, Σw <= 1.
func randPref(rng *rand.Rand, m int) vec.Vector {
	w := vec.New(m)
	rem := 1.0
	for j := range w {
		w[j] = rng.Float64() * rem / float64(m)
		rem -= w[j]
	}
	return w
}

// build streams pts[lo:hi) into a fresh sketch with the given capacity.
func build(pts []vec.Vector, lo, hi, capacity int) *Sketch {
	s := New(pts[0].Dim(), capacity)
	for i := lo; i < hi; i++ {
		s.Insert(i, pts[i])
	}
	return s
}

// sketchEqual compares two sketches structurally: monitored entries
// (slot and coordinates), threshold, and folded count.
func sketchEqual(a, b *Sketch) bool {
	if a.Len() != b.Len() || a.Folded() != b.Folded() {
		return false
	}
	ae, be := a.Entries(), b.Entries()
	for i := range ae {
		if ae[i].Idx != be[i].Idx || !ae[i].P.Equal(be[i].P, 0) {
			return false
		}
	}
	switch {
	case a.thresh == nil && b.thresh == nil:
		return true
	case a.thresh == nil || b.thresh == nil:
		return false
	default:
		return a.thresh.Equal(b.thresh, 0)
	}
}

func TestInsertEvictInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, d, capacity = 200, 4, 16
	pts := randPoints(rng, n, d)
	s := build(pts, 0, n, capacity)

	if s.Len() != capacity {
		t.Fatalf("Len = %d, want %d", s.Len(), capacity)
	}
	if s.Members() != n {
		t.Fatalf("Members = %d, want %d", s.Members(), n)
	}
	if s.Folded() != n-capacity {
		t.Fatalf("Folded = %d, want %d", s.Folded(), n-capacity)
	}

	// Every dataset member is either monitored with exact coordinates or
	// componentwise dominated by the threshold.
	monitored := make(map[int]vec.Vector, s.Len())
	prev := -1
	for _, e := range s.Entries() {
		if e.Idx <= prev {
			t.Fatalf("entries not in ascending slot order: %d after %d", e.Idx, prev)
		}
		prev = e.Idx
		monitored[e.Idx] = e.P
	}
	for i, p := range pts {
		if mp, ok := monitored[i]; ok {
			if !mp.Equal(p, 0) {
				t.Fatalf("monitored slot %d has wrong coordinates", i)
			}
			continue
		}
		for j, x := range p {
			if x > s.thresh[j] {
				t.Fatalf("folded slot %d exceeds threshold in component %d: %v > %v", i, j, x, s.thresh[j])
			}
		}
	}

	// The monitored survivors are exactly the capacity members with the
	// largest retention keys (coordinate sums), ties kept on lower slots.
	for _, e := range s.Entries() {
		better := 0
		ek := retentionKey(e.P)
		for i, p := range pts {
			k := retentionKey(p)
			if k > ek || (k == ek && i < e.Idx) {
				better++
			}
		}
		if better >= capacity {
			t.Fatalf("slot %d survived with %d stronger members (capacity %d)", e.Idx, better, capacity)
		}
	}
}

func TestBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, d, capacity = 300, 5, 24
	pts := randPoints(rng, n, d)
	s := build(pts, 0, n, capacity)

	monitored := make(map[int]bool, s.Len())
	for _, e := range s.Entries() {
		monitored[e.Idx] = true
	}
	for trial := 0; trial < 50; trial++ {
		w := randPref(rng, d-1)
		u := s.UpperUnmonitored(w)
		for i, p := range pts {
			if monitored[i] {
				continue
			}
			if got := topk.ScorePoint(w, p); got > u+1e-9 {
				t.Fatalf("trial %d: folded slot %d scores %v above bound %v", trial, i, got, u)
			}
		}
	}

	empty := build(pts, 0, capacity, capacity)
	if u := empty.UpperUnmonitored(randPref(rng, d-1)); !math.IsInf(u, -1) {
		t.Fatalf("unfolded sketch bound = %v, want -Inf", u)
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d, capacity = 240, 4, 16
	pts := randPoints(rng, n, d)
	a := build(pts, 0, 80, capacity)
	b := build(pts, 80, 160, capacity)
	c := build(pts, 160, n, capacity)

	if !sketchEqual(Merge(a, b), Merge(b, a)) {
		t.Fatal("Merge is not commutative")
	}
	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	if !sketchEqual(left, right) {
		t.Fatal("Merge is not associative")
	}
	if got := MergeAll([]*Sketch{a, nil, b, c}); !sketchEqual(got, left) {
		t.Fatal("MergeAll differs from pairwise merges")
	}
	if left.Members() != n {
		t.Fatalf("merged Members = %d, want %d", left.Members(), n)
	}
}

func TestKthBestAndCountAbove(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, d, capacity = 100, 4, 32
	pts := randPoints(rng, n, d)
	s := build(pts, 0, n, capacity)

	for trial := 0; trial < 20; trial++ {
		w := randPref(rng, d-1)
		scores := make([]float64, 0, s.Len())
		for _, e := range s.Entries() {
			scores = append(scores, topk.ScorePoint(w, e.P))
		}
		for k := 1; k <= len(scores); k += 7 {
			got, ok := s.KthBest(w, k)
			if !ok {
				t.Fatalf("KthBest(%d) declined with %d entries", k, len(scores))
			}
			// Brute-force k-th highest.
			above, equal := 0, 0
			for _, sc := range scores {
				if sc > got {
					above++
				} else if sc == got {
					equal++
				}
			}
			if !(above < k && above+equal >= k) {
				t.Fatalf("KthBest(%d) = %v inconsistent: %d above, %d equal", k, got, above, equal)
			}
		}
		if _, ok := s.KthBest(w, s.Len()+1); ok {
			t.Fatal("KthBest beyond monitored budget must decline")
		}
		t0 := topk.ScorePoint(w, pts[0])
		want := 0
		for _, e := range s.Entries() {
			if topk.ScorePoint(w, e.P) > t0 {
				want++
			}
		}
		if got := s.CountAbove(w, t0); got != want {
			t.Fatalf("CountAbove = %d, want %d", got, want)
		}
	}
}

func TestCertifySkybandSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 4
	// A dominated-heavy dataset: a small elite well above a large mass,
	// so the certificate has room to fire.
	pts := make([]vec.Vector, 0, 400)
	for i := 0; i < 360; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64() * 0.6
		}
		pts = append(pts, p)
	}
	for i := 0; i < 40; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.7 + rng.Float64()*0.3
		}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	s := build(pts, 0, len(pts), DefaultCapacity)
	verts := []vec.Vector{
		{0.2, 0.2, 0.2},
		{0.4, 0.2, 0.2},
		{0.2, 0.4, 0.2},
		{0.2, 0.2, 0.4},
	}
	const k = 5
	cands, ok := s.CertifySkyband(verts, k)
	if !ok {
		t.Fatal("certificate expected to hold on dominated-heavy data")
	}
	sub := make([]vec.Vector, len(pts))
	for _, i := range cands {
		sub[i] = pts[i]
	}
	rd := skyband.NewRDomVerts(verts)
	got := skyband.RSkybandSubset(sub, cands, k, rd)
	want := skyband.RSkyband(pts, k, rd)
	if len(got) != len(want) {
		t.Fatalf("gated r-skyband size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("gated r-skyband differs at %d: %d != %d", i, got[i], want[i])
		}
	}

	// Uniform data offers no k dominators of the threshold: must decline.
	u := build(randPoints(rng, 400, d), 0, 400, 16)
	if _, ok := u.CertifySkyband(verts, 200); ok {
		t.Fatal("certificate must decline when too few dominators exist")
	}
}

func TestPlaneAdvanceMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const d = 4
	for _, shards := range []int{1, 2, 4} {
		pts := randPoints(rng, 150, d)
		sc1 := topk.NewScorer(pts)
		pl := NewPlane(sc1, shards, 16)

		// Pure-insert advance: successor sketches must equal a rebuild.
		pts2 := append(append([]vec.Vector(nil), pts...), randPoints(rng, 30, d)...)
		inserted := make([]int, 30)
		for i := range inserted {
			inserted[i] = 150 + i
		}
		sc2 := topk.NewScorer(pts2)
		pl.AdvanceInsert(sc2, inserted)
		fresh := NewPlane(sc2, shards, 16)
		if !sketchEqual(pl.MergedFor(sc2), fresh.MergedFor(sc2)) {
			t.Fatalf("shards=%d: insert advance diverges from rebuild", shards)
		}

		// Stale generations are declined.
		if pl.MergedFor(sc1) != nil {
			t.Fatalf("shards=%d: plane served a stale generation", shards)
		}

		// Reshape advance with an empty touched list rebuilds everything.
		pts3 := append([]vec.Vector(nil), pts2...)
		pts3[7] = randPoints(rng, 1, d)[0]
		sc3 := topk.NewScorer(pts3)
		pl.Advance(sc3, nil)
		fresh3 := NewPlane(sc3, shards, 16)
		if !sketchEqual(pl.MergedFor(sc3), fresh3.MergedFor(sc3)) {
			t.Fatalf("shards=%d: reshape advance diverges from rebuild", shards)
		}
	}
}

// FuzzSketchMerge drives the merge algebra and the deterministic bounds
// from raw bytes: three disjoint sketches built from fuzzer-chosen
// points must merge commutatively and associatively, and the merged
// bound must dominate every folded member's score under a
// fuzzer-chosen valid preference.
func FuzzSketchMerge(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(3), uint8(4))
	f.Add(int64(7), uint8(90), uint8(2), uint8(1))
	f.Add(int64(42), uint8(255), uint8(5), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw, capRaw uint8) {
		n := 3 + int(nRaw)%120
		d := 2 + int(dRaw)%5
		capacity := 1 + int(capRaw)%24
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 3*n, d)

		a := build(pts, 0, n, capacity)
		b := build(pts, n, 2*n, capacity)
		c := build(pts, 2*n, 3*n, capacity)

		if !sketchEqual(Merge(a, b), Merge(b, a)) {
			t.Fatal("Merge is not commutative")
		}
		m := Merge(Merge(a, b), c)
		if !sketchEqual(m, Merge(a, Merge(b, c))) {
			t.Fatal("Merge is not associative")
		}
		if m.Members() != 3*n {
			t.Fatalf("merged Members = %d, want %d", m.Members(), 3*n)
		}

		monitored := make(map[int]bool, m.Len())
		for _, e := range m.Entries() {
			monitored[e.Idx] = true
		}
		w := randPref(rng, d-1)
		u := m.UpperUnmonitored(w)
		exactMax := math.Inf(-1)
		for i, p := range pts {
			if monitored[i] {
				continue
			}
			if s := topk.ScorePoint(w, p); s > exactMax {
				exactMax = s
			}
		}
		if exactMax > u+1e-9 {
			t.Fatalf("bound %v below exact unmonitored max %v", u, exactMax)
		}
	})
}
