// Mutations: the engine as a living market. The paper's applications —
// placement, enhancement, market impact — assume the option set changes:
// vendors ship, upgrade and withdraw products. This example drives the
// versioned store through that lifecycle and shows that
//
//   - every mutation publishes a new dataset generation,
//   - solves answer against the generation they pin, so a snapshot taken
//     before a mutation still answers for the old market, and
//   - the engine's warm caches survive mutations incrementally instead
//     of resetting.
//
// Run with: go run ./examples/mutations
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	ctx := context.Background()

	// The laptop market of Figure 1(a): speed and battery life.
	laptops := []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
	engine := toprr.NewEngine(laptops)
	clientele := toprr.Query{K: 3, WR: toprr.PrefBox(vec.Of(0.2), vec.Of(0.8))}

	// Generation 1: where must a new laptop land to be top-3 for every
	// targeted customer?
	before := engine.Snapshot()
	res, err := engine.SolveAt(ctx, before, clientele)
	if err != nil {
		log.Fatal(err)
	}
	target, err := res.CostOptimalNew()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: %d laptops, cost-optimal top-3 placement %v\n",
		before.Gen, engine.Len(), target)

	// A competitor ships exactly that laptop.
	gen, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(target)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d: competitor shipped %v\n", gen, target)

	// The same query now solves against the crowded market...
	after, err := engine.Solve(ctx, clientele)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  new market: placement %v top-ranking? %v\n", target, after.IsTopRanking(target))

	// ...while the pinned snapshot still answers for the old market.
	old, err := engine.SolveAt(ctx, before, clientele)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pinned generation %d still reports: %v top-ranking? %v\n",
		before.Gen, target, old.IsTopRanking(target))

	// The incumbent p5 upgrades its battery; p6 is withdrawn.
	gen, err = engine.Apply(ctx, []toprr.Op{
		toprr.Update(4, vec.Of(0.2, 0.95)),
		toprr.Delete(5),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Solve(ctx, clientele); err != nil {
		log.Fatal(err)
	}
	cs := engine.CacheStats()
	fmt.Printf("generation %d: %d laptops after upgrade + withdrawal\n", gen, engine.Len())
	fmt.Printf("  warm caches carried across generations: %d hyperplanes, %d top-k configs, %d evictions\n",
		cs.Hyperplanes, cs.TopKConfigs, cs.Evictions)

	// The full history is on the op log.
	fmt.Println("applied-ops log:")
	for _, e := range engine.Log(0) {
		fmt.Printf("  seq %d -> generation %d: %s index=%d point=%v\n",
			e.Seq, e.Gen, e.Op.Kind, e.Op.Index, e.Op.Point)
	}
}
