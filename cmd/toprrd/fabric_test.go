package main

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"toprr/internal/fabric"
	"toprr/pkg/toprr"
)

// startFabricWorker boots an in-process fabric worker (the same backend
// cmd/toprr-worker serves) on a loopback port.
func startFabricWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := fabric.NewServer(fabric.NewEngineBackend(fabric.BackendConfig{}))
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// fabricServer is a toprrd server whose default dataset routes shards 0
// and 1 to an in-process worker, pre-synced so solves scatter
// deterministically.
func fabricServer(t *testing.T) (*httptest.Server, *server, *toprr.Engine) {
	t.Helper()
	addr := startFabricWorker(t)
	reg, err := toprr.NewRegistry(toprr.WithRegistryRemote(map[string]toprr.RemoteShards{
		defaultDataset: {Workers: map[string][]int{addr: {0, 1}}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	engine, err := reg.CreateWithShards(defaultDataset, testPts(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.SyncRemote(context.Background()); err != nil {
		t.Fatalf("sync workers: %v", err)
	}
	api := newServer(reg, time.Minute, 32<<20)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts, api, engine
}

// solveOnce posts one /v1/solve query and fails the test on a non-200.
func solveOnce(t *testing.T, ts *httptest.Server, seed int) {
	t.Helper()
	lo := 0.20 + float64(seed%5)/100
	resp := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"k":  2 + seed%3,
		"lo": []float64{lo, lo}, "hi": []float64{lo + 0.02, lo + 0.02},
	})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("solve %d: status %d", seed, resp.StatusCode)
	}
}

// TestStatsCarriesFabricCounters: /v1/stats reports the coordinator's
// fabric accounting — per dataset, in the totals, and attributed per
// shard — after solves that scattered to a worker.
func TestStatsCarriesFabricCounters(t *testing.T) {
	ts, _, engine := fabricServer(t)
	for i := 0; i < 4; i++ {
		solveOnce(t, ts, i)
	}
	fs := engine.FabricStats()
	if fs.RemotePartials == 0 {
		t.Fatalf("solves served no remote partials: %+v", fs)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Datasets []struct {
			Name     string `json:"name"`
			Partials int64  `json:"fabric_remote_partials"`
			Hedged   int64  `json:"fabric_hedged_dispatches"`
			Falls    int64  `json:"fabric_fallbacks"`
			Bytes    int64  `json:"fabric_remote_bytes"`
			Shards   []struct {
				Remote int64 `json:"remote_partials"`
			} `json:"shard_stats"`
		} `json:"datasets"`
		Totals struct {
			Partials int64 `json:"fabric_remote_partials"`
			Bytes    int64 `json:"fabric_remote_bytes"`
		} `json:"totals"`
	}
	decodeJSON(t, resp, &body)
	if len(body.Datasets) != 1 {
		t.Fatalf("datasets = %d, want 1", len(body.Datasets))
	}
	ds := body.Datasets[0]
	if ds.Partials == 0 || ds.Bytes == 0 {
		t.Fatalf("dataset fabric counters flat: %+v", ds)
	}
	if body.Totals.Partials != ds.Partials || body.Totals.Bytes != ds.Bytes {
		t.Fatalf("totals %+v disagree with the only dataset %+v", body.Totals, ds)
	}
	var perShard int64
	for _, ss := range ds.Shards {
		perShard += ss.Remote
	}
	if perShard != ds.Partials {
		t.Fatalf("per-shard remote partials sum %d != dataset total %d", perShard, ds.Partials)
	}
}

// TestShutdownDrainsFabric: the drainFabric hook — registered via
// RegisterOnShutdown in main, alongside the SSE drain — quiesces worker
// connections inside the HTTP drain window; solves keep answering
// (locally) afterwards, so a draining node degrades instead of erroring.
func TestShutdownDrainsFabric(t *testing.T) {
	ts, api, engine := fabricServer(t)
	solveOnce(t, ts, 0)
	before := engine.FabricStats()
	if before.RemotePartials == 0 {
		t.Fatal("warm solve served no remote partials")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		api.drainFabric(5 * time.Second)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drainFabric hung past its budget")
	}

	// The engine is still serving; new solves answer locally.
	for i := 1; i < 3; i++ {
		solveOnce(t, ts, i)
	}
	if after := engine.FabricStats(); after.RemotePartials != before.RemotePartials {
		t.Fatalf("drained fabric still served partials: %d -> %d", before.RemotePartials, after.RemotePartials)
	}
}

// TestParseFabricWorkers: the -fabric-workers grammar and its
// rejections.
func TestParseFabricWorkers(t *testing.T) {
	got, err := parseFabricWorkers("hostA:9090=0,2;hostB:9090=1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{"hostA:9090": {0, 2}, "hostB:9090": {1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for _, bad := range []string{
		"hostA:9090",                 // no shard list
		"hostA:9090=",                // empty shard list
		"hostA:9090=x",               // non-numeric shard
		"hostA:9090=0;hostA:9090=1",  // duplicate worker address
		"hostA:9090=0;hostB:9090=0",  // doubly-owned shard
		"hostA:9090=-1",              // negative shard
		fmt.Sprintf("h:1=%d", 1<<20), // shard beyond MaxShards
		"=0",                         // empty address
	} {
		if _, err := parseFabricWorkers(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
