// Package skyband implements the fast pre-filters the paper surveys in
// Section 6.3 for discarding options that can never appear in a top-k
// result for any preference in the target region wR:
//
//   - the k-skyband (dominated by fewer than k options) [34],
//   - k-onion layers (the first k convex-hull layers) [11], and
//   - the r-skyband (r-dominated w.r.t. wR by fewer than k options) [14],
//     which the paper selects as the filter of choice (Figure 8).
//
// The fourth alternative of Section 6.3, the exact UTK filter, needs the
// preference-space partitioning machinery and therefore lives in
// internal/core.
//
// All filters return a superset of the options that can appear in a
// top-k result, which is the only property TopRR correctness needs;
// tolerance choices below are deliberately conservative (an uncertain
// dominance relation keeps the option).
package skyband

import (
	"sort"

	"toprr/internal/lp"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// domEps is the strictness margin for (r-)dominance: a pair closer than
// this is treated as incomparable, which can only enlarge the filter
// output (safe direction).
const domEps = 1e-12

// Dominates reports whether p dominates q: p is no smaller in every
// attribute and strictly larger in at least one.
func Dominates(p, q vec.Vector) bool {
	strict := false
	for j, x := range p {
		if x < q[j]-domEps {
			return false
		}
		if x > q[j]+domEps {
			strict = true
		}
	}
	return strict
}

// RDom decides r-dominance with respect to a preference region wR: p
// r-dominates q when S_w(p) >= S_w(q) for every w in wR, strictly for
// some w (Section 6.3, after [14]). Since scores are linear in w, the
// extreme score difference over a convex wR is attained at a vertex, so
// the test needs only wR's defining vertices; for an axis-aligned box it
// is evaluated analytically in O(d).
type RDom struct {
	verts  []vec.Vector // general polytope: vertex set of wR
	lo, hi vec.Vector   // box fast path (set when verts == nil)
}

// NewRDomBox builds an r-dominance tester for the axis-aligned box
// [lo, hi] in preference space.
func NewRDomBox(lo, hi vec.Vector) *RDom { return &RDom{lo: lo, hi: hi} }

// NewRDomVerts builds an r-dominance tester for a general convex wR
// given its defining vertices.
func NewRDomVerts(verts []vec.Vector) *RDom { return &RDom{verts: verts} }

// diffRange returns the minimum and maximum of S_w(p) - S_w(q) over wR.
func (r *RDom) diffRange(p, q vec.Vector) (min, max float64) {
	m := len(p) - 1
	c0 := p[m] - q[m]
	if r.verts == nil {
		min, max = c0, c0
		for j := 0; j < m; j++ {
			cj := (p[j] - p[m]) - (q[j] - q[m])
			a, b := cj*r.lo[j], cj*r.hi[j]
			if a > b {
				a, b = b, a
			}
			min += a
			max += b
		}
		return min, max
	}
	first := true
	for _, v := range r.verts {
		d := topk.ScorePoint(v, p) - topk.ScorePoint(v, q)
		if first {
			min, max = d, d
			first = false
			continue
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// RDominates reports whether p r-dominates q over wR. The test demands
// a strictly positive margin everywhere, so boundary ties count as
// incomparable — the conservative (superset-safe) direction.
func (r *RDom) RDominates(p, q vec.Vector) bool {
	min, _ := r.diffRange(p, q)
	return min >= domEps
}

// CentroidScore returns S_c(p) at the centroid of wR, the sort key that
// makes the r-skyband sweep correct: every r-dominator of p scores
// strictly higher at the centroid.
func (r *RDom) CentroidScore(p vec.Vector) float64 {
	if r.verts != nil {
		return topk.ScorePoint(vec.Centroid(r.verts), p)
	}
	m := len(p) - 1
	c := vec.New(m)
	for j := 0; j < m; j++ {
		c[j] = (r.lo[j] + r.hi[j]) / 2
	}
	return topk.ScorePoint(c, p)
}

// bandSweep runs the sort-filter-skyline style sweep shared by KSkyband
// and RSkyband: options are processed in decreasing order of sortKey and
// kept while fewer than k already-kept options dominate them. Keeping
// the window restricted to kept options is exact because both dominance
// relations are transitive strict partial orders, and every dominator of
// an option sorts strictly before it.
func bandSweep(pts []vec.Vector, k int, sortKey func(vec.Vector) float64, dom func(p, q vec.Vector) bool) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	return bandSweepOver(pts, order, k, sortKey, dom)
}

// bandSweepOver is bandSweep restricted to the given candidate indices
// (order is clobbered by the sort). Restricting the sweep is exact
// whenever every option outside the candidate set is dominated by at
// least k options: such options are never kept by the full sweep, and
// the sweep only ever compares against kept options, so dropping them
// from the input changes nothing.
func bandSweepOver(pts []vec.Vector, order []int, k int, sortKey func(vec.Vector) float64, dom func(p, q vec.Vector) bool) []int {
	keys := make([]float64, len(pts))
	for _, i := range order {
		keys[i] = sortKey(pts[i])
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] > keys[order[b]]
		}
		return order[a] < order[b]
	})
	var kept []int
	for _, idx := range order {
		count := 0
		for _, kidx := range kept {
			if dom(pts[kidx], pts[idx]) {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			kept = append(kept, idx)
		}
	}
	sort.Ints(kept)
	return kept
}

// KSkyband returns the indices of options dominated by fewer than k
// others — a superset of every possible top-k result for any weight
// vector in the whole preference space.
func KSkyband(pts []vec.Vector, k int) []int {
	return bandSweep(pts, k, func(p vec.Vector) float64 { return p.Sum() }, Dominates)
}

// RSkyband returns the indices of options r-dominated (w.r.t. wR) by
// fewer than k others — a superset of every possible top-k result for
// any w in wR. This is the paper's filter of choice (Figure 8).
func RSkyband(pts []vec.Vector, k int, rd *RDom) []int {
	return bandSweep(pts, k, rd.CentroidScore, rd.RDominates)
}

// RSkybandSubset is RSkyband restricted to the candidate indices cand
// (each an index into pts; slots outside cand may be nil). The output
// equals RSkyband over the full dataset exactly when every option
// outside cand is r-dominated by at least k options — the certificate
// the sketch gate establishes before calling this. cand is not
// modified.
func RSkybandSubset(pts []vec.Vector, cand []int, k int, rd *RDom) []int {
	order := append([]int(nil), cand...)
	return bandSweepOver(pts, order, k, rd.CentroidScore, rd.RDominates)
}

// OnionLayers returns the indices of options on the first k layers of
// the convex hull of the dataset (the onion technique [11]). A point is
// on the hull of the remaining set iff it cannot be written as a convex
// combination of the other remaining points, which is decided by an LP
// feasibility probe. Cost grows as O(k · n · LP(n)); the filter is
// included for the Figure 8 comparison, where the paper likewise finds
// it uncompetitive.
func OnionLayers(pts []vec.Vector, k int) []int {
	d := pts[0].Dim()
	remaining := make([]int, len(pts))
	for i := range remaining {
		remaining[i] = i
	}
	var result []int
	for layer := 0; layer < k && len(remaining) > 0; layer++ {
		var hull, rest []int
		for _, i := range remaining {
			if isHullVertex(pts, remaining, i, d) {
				hull = append(hull, i)
			} else {
				rest = append(rest, i)
			}
		}
		if len(hull) == 0 { // numeric degeneracy: keep everything left
			hull, rest = remaining, nil
		}
		result = append(result, hull...)
		remaining = rest
	}
	sort.Ints(result)
	return result
}

// isHullVertex reports whether pts[self] lies outside the convex hull of
// the other points in set, i.e. whether the system
// Σ λ_i q_i = p, Σ λ_i = 1, λ >= 0 is infeasible.
func isHullVertex(pts []vec.Vector, set []int, self, d int) bool {
	others := make([]int, 0, len(set)-1)
	for _, i := range set {
		if i != self {
			others = append(others, i)
		}
	}
	if len(others) <= d { // too few points to contain anything
		return true
	}
	cons := make([]lp.Constraint, 0, d+1)
	for j := 0; j < d; j++ {
		a := vec.New(len(others))
		for t, i := range others {
			a[t] = pts[i][j]
		}
		cons = append(cons, lp.Constraint{A: a, Rel: lp.EQ, B: pts[self][j]})
	}
	ones := vec.New(len(others))
	for t := range ones {
		ones[t] = 1
	}
	cons = append(cons, lp.Constraint{A: ones, Rel: lp.EQ, B: 1})
	_, feasible := lp.Feasible(len(others), cons)
	return !feasible
}
