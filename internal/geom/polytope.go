package geom

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"toprr/internal/vec"
)

// Vertex is a polytope vertex: its coordinates plus the bitset of
// halfspace indices (into Polytope.HS) tight at it.
type Vertex struct {
	Point vec.Vector
	Tight Bits
}

// Polytope is a bounded convex polytope in Dim dimensions, stored in the
// hybrid facet-based representation: the bounding halfspaces (H-rep) and
// the complete vertex set (V-rep) with per-vertex tight sets. Instances
// are immutable after construction; Split and Clip return new polytopes.
type Polytope struct {
	Dim   int
	HS    []Halfspace
	Verts []Vertex
}

// NewBox returns the axis-aligned box [lo, hi] as a polytope, with the
// 2*Dim bounding halfspaces and all 2^Dim corner vertices. It panics on
// inconsistent bounds or an empty interval in any axis.
func NewBox(lo, hi vec.Vector) *Polytope {
	d := len(lo)
	if len(hi) != d {
		panic("geom: NewBox bounds dimension mismatch")
	}
	hs := make([]Halfspace, 0, 2*d)
	for j := 0; j < d; j++ {
		if hi[j] < lo[j]-Eps {
			panic(fmt.Sprintf("geom: NewBox empty interval on axis %d", j))
		}
		aLo := vec.New(d)
		aLo[j] = 1 // x[j] >= lo[j]
		hs = append(hs, Halfspace{A: aLo, B: lo[j]})
		aHi := vec.New(d)
		aHi[j] = -1 // x[j] <= hi[j]
		hs = append(hs, Halfspace{A: aHi, B: -hi[j]})
	}
	// Enumerate the 2^d corners.
	pts := make([]vec.Vector, 0, 1<<uint(d))
	for mask := 0; mask < 1<<uint(d); mask++ {
		p := vec.New(d)
		for j := 0; j < d; j++ {
			if mask&(1<<uint(j)) != 0 {
				p[j] = hi[j]
			} else {
				p[j] = lo[j]
			}
		}
		pts = append(pts, p)
	}
	return newFromParts(d, hs, pts)
}

// FromHalfspaces intersects the given halfspaces with the bounding box
// [lo, hi] and returns the resulting polytope, or an empty polytope if
// the intersection is empty. This is the package's halfspace-intersection
// entry point (the qhull replacement).
func FromHalfspaces(hs []Halfspace, lo, hi vec.Vector) *Polytope {
	p := NewBox(lo, hi)
	for _, h := range hs {
		p = p.Clip(h)
		if p.IsEmpty() {
			return p
		}
	}
	return p
}

// newFromParts builds a polytope from candidate halfspaces and candidate
// vertex points: it deduplicates points, recomputes every tight set, and
// drops halfspaces that are tight at no vertex (which, for a bounded
// polytope, are provably redundant).
func newFromParts(dim int, hs []Halfspace, pts []vec.Vector) *Polytope {
	s := GetScratch()
	defer s.Release()
	return newFromPartsS(dim, hs, pts, s, nil)
}

// newFromPartsS is newFromParts with caller-provided scratch buffers and
// an optional destination arena. With dst nil the resulting vertices
// alias the input points (the historical behaviour); with dst non-nil
// every vertex point and tight set is copied into dst, so the result
// lives entirely in the arena and the inputs may be recycled.
//
// Vertex dedup uses quantized uint64 hashes (vec.Vector.Hash) instead of
// string keys: equal quantized coordinates always collide into one
// vertex, and the ~2^-64 chance of an accidental cross-point collision
// is consciously accepted for a zero-allocation identity.
func newFromPartsS(dim int, hs []Halfspace, pts []vec.Vector, s *Scratch, dst *Arena) *Polytope {
	// Deduplicate vertex points on a quantized grid.
	clear(s.seen)
	uniq := s.uniq[:0]
	for _, p := range pts {
		k := p.Hash(vertexQuantum)
		if _, dup := s.seen[k]; dup {
			continue
		}
		s.seen[k] = struct{}{}
		uniq = append(uniq, p)
	}
	s.uniq = uniq
	if len(uniq) == 0 {
		return &Polytope{Dim: dim}
	}
	// Keep only halfspaces tight at some vertex; every facet of a
	// bounded polytope carries at least one vertex, so never-tight
	// halfspaces cannot be facets. Tight (halfspace, vertex) pairs are
	// staged flat in scratch so this pass allocates nothing.
	pairH := s.pairH[:0]
	pairV := s.pairV[:0]
	keptNew := s.keptNew[:0]
	nk := 0
	for hi, h := range hs {
		tight := false
		for vi, p := range uniq {
			if almostEqual(h.A.Dot(p), h.B) {
				pairH = append(pairH, int32(hi))
				pairV = append(pairV, int32(vi))
				tight = true
			}
		}
		if tight {
			keptNew = append(keptNew, int32(nk))
			nk++
		} else {
			keptNew = append(keptNew, -1)
		}
	}
	s.pairH, s.pairV, s.keptNew = pairH, pairV, keptNew

	out := make([]Halfspace, nk)
	for hi, h := range hs {
		if ni := keptNew[hi]; ni >= 0 {
			out[ni] = h
		}
	}
	verts := make([]Vertex, len(uniq))
	words := (nk + 63) / 64
	for i, p := range uniq {
		pt := p
		var tb Bits
		if dst != nil {
			pt = vec.Vector(dst.Floats(len(p)))
			copy(pt, p)
			tb = Bits(dst.Uints(words))
			for w := range tb {
				tb[w] = 0
			}
		} else {
			tb = NewBits(nk)
		}
		verts[i] = Vertex{Point: pt, Tight: tb}
	}
	for idx := range pairH {
		if ni := keptNew[pairH[idx]]; ni >= 0 {
			verts[pairV[idx]].Tight.Set(int(ni))
		}
	}
	return &Polytope{Dim: dim, HS: out, Verts: verts}
}

// IsEmpty reports whether the polytope has no vertices (empty set).
func (p *Polytope) IsEmpty() bool { return len(p.Verts) == 0 }

// NumVertices returns the number of vertices.
func (p *Polytope) NumVertices() int { return len(p.Verts) }

// VertexPoints returns the vertex coordinates. The returned slice aliases
// the polytope's internal vectors and must not be mutated.
func (p *Polytope) VertexPoints() []vec.Vector {
	out := make([]vec.Vector, len(p.Verts))
	for i, v := range p.Verts {
		out[i] = v.Point
	}
	return out
}

// Contains reports whether x lies in the polytope (within Eps).
func (p *Polytope) Contains(x vec.Vector) bool {
	if p.IsEmpty() {
		return false
	}
	for _, h := range p.HS {
		if h.Eval(x) < -Eps {
			return false
		}
	}
	return true
}

// Centroid returns the mean of the vertices, a point inside the polytope
// (strictly interior when the polytope is full-dimensional).
func (p *Polytope) Centroid() vec.Vector {
	return vec.Centroid(p.VertexPoints())
}

// SamplePoint returns a random point of the polytope as a random convex
// combination of its vertices. The distribution is not uniform over the
// volume; it is intended for property tests and probes.
func (p *Polytope) SamplePoint(rng *rand.Rand) vec.Vector {
	if p.IsEmpty() {
		panic("geom: SamplePoint on empty polytope")
	}
	w := make([]float64, len(p.Verts))
	var sum float64
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	x := vec.New(p.Dim)
	for i, v := range p.Verts {
		f := w[i] / sum
		for j := range x {
			x[j] += f * v.Point[j]
		}
	}
	return x
}

// adjacent reports whether vertices i and j share an edge, using the
// standard combinatorial test: they are adjacent iff no third vertex's
// tight set contains the intersection of their tight sets. The popcount
// pre-filter (an edge of a Dim-polytope lies on at least Dim-1 facets)
// rejects most non-edges cheaply. The test is allocation-free: it is the
// innermost loop of Split, which dominates high-dimensional runs.
func (p *Polytope) adjacent(i, j int) bool {
	ti, tj := p.Verts[i].Tight, p.Verts[j].Tight
	cnt := 0
	for w := range ti {
		cnt += onesCount64(ti[w] & tj[w])
	}
	if cnt < p.Dim-1 {
		return false
	}
	for k := range p.Verts {
		if k == i || k == j {
			continue
		}
		tk := p.Verts[k].Tight
		contains := true
		for w := range ti {
			if ti[w]&tj[w]&^tk[w] != 0 {
				contains = false
				break
			}
		}
		if contains {
			return false
		}
	}
	return true
}

// Split cuts the polytope by the boundary hyperplane of h and returns
// the two closed sides: neg = {x in P : h.A·x <= h.B} and
// pos = {x in P : h.A·x >= h.B}. Either side may be empty (when the
// hyperplane misses the interior). The input polytope is unchanged.
func (p *Polytope) Split(h Halfspace) (neg, pos *Polytope) {
	if p.IsEmpty() {
		return p, p
	}
	s := GetScratch()
	defer s.Release()
	evals := s.evalsFor(len(p.Verts))
	var nNeg, nPos int
	for i, v := range p.Verts {
		evals[i] = h.Eval(v.Point)
		switch Side(evals[i]) {
		case -1:
			nNeg++
		case 1:
			nPos++
		}
	}
	// When the hyperplane does not cross the interior, the far side is
	// empty unless some vertices lie exactly on the boundary — then that
	// side is the (lower-dimensional) face they span. Keeping the face
	// matters: an option region can legitimately collapse to a facet or
	// a single point (e.g. when an existing option sits at the top
	// corner of the option space).
	if nNeg == 0 || nPos == 0 {
		face := p.boundaryFace(h, s, nil)
		if nNeg == 0 { // entirely on the >= side
			return face, p
		}
		return p, face // entirely on the <= side
	}
	// New vertices on the cutting hyperplane: one per crossing edge. Cut
	// points are heap-allocated here because they escape into the
	// results; the arena-backed path is Fold.
	cut := s.cut[:0]
	for i := range p.Verts {
		if Side(evals[i]) != -1 {
			continue
		}
		for j := range p.Verts {
			if Side(evals[j]) != 1 {
				continue
			}
			if !p.adjacent(i, j) {
				continue
			}
			t := crossingParam(evals[i], evals[j])
			cut = append(cut, p.Verts[i].Point.Lerp(p.Verts[j].Point, t))
		}
	}
	s.cut = cut
	negPts := s.negPts[:0]
	posPts := s.posPts[:0]
	for i, v := range p.Verts {
		switch Side(evals[i]) {
		case -1:
			negPts = append(negPts, v.Point)
		case 1:
			posPts = append(posPts, v.Point)
		default: // on the hyperplane: belongs to both sides
			negPts = append(negPts, v.Point)
			posPts = append(posPts, v.Point)
		}
	}
	negPts = append(negPts, cut...)
	posPts = append(posPts, cut...)
	s.negPts, s.posPts = negPts, posPts

	hsBuf := append(append(s.hsBuf[:0], p.HS...), h.Flip())
	s.hsBuf = hsBuf
	neg = newFromPartsS(p.Dim, hsBuf, negPts, s, nil)
	hsBuf[len(hsBuf)-1] = h
	pos = newFromPartsS(p.Dim, hsBuf, posPts, s, nil)
	return neg, pos
}

// boundaryFace builds the (possibly empty, lower-dimensional) face of p
// spanned by the vertices lying exactly on h's boundary hyperplane. The
// caller must have h's evaluations in s.evals.
func (p *Polytope) boundaryFace(h Halfspace, s *Scratch, dst *Arena) *Polytope {
	facePts := s.posPts[:0]
	for i, v := range p.Verts {
		if Side(s.evals[i]) == 0 {
			facePts = append(facePts, v.Point)
		}
	}
	s.posPts = facePts
	if len(facePts) == 0 {
		return &Polytope{Dim: p.Dim}
	}
	hsBuf := append(append(s.hsBuf[:0], p.HS...), h, h.Flip())
	s.hsBuf = hsBuf
	return newFromPartsS(p.Dim, hsBuf, facePts, s, dst)
}

// Clip intersects the polytope with halfspace h (keeping the >= side).
// When every vertex already satisfies h, the receiver itself is returned
// unchanged — this redundancy fast path is what keeps the assembly of oR
// cheap even with thousands of impact halfspaces.
func (p *Polytope) Clip(h Halfspace) *Polytope {
	s := GetScratch()
	defer s.Release()
	return p.clipPosInto(h, s, nil)
}

// clipPosInto is the one-sided core of Clip: it computes only the >=
// side of p cut by h, skipping the neg-side work Split would do. When no
// vertex violates h the receiver itself is returned unchanged (the
// redundancy fast path). With dst non-nil the result's vertex storage is
// carved from dst; the result is then subject to the arena ownership
// rule (see arena.go) and must be detached before escaping.
//
// Output is bit-identical to Split(h)'s pos side: the same candidate
// points in the same order feed the same reconstruction.
func (p *Polytope) clipPosInto(h Halfspace, s *Scratch, dst *Arena) *Polytope {
	if p.IsEmpty() {
		return p
	}
	evals := s.evalsFor(len(p.Verts))
	var nNeg, nPos int
	for i, v := range p.Verts {
		evals[i] = h.Eval(v.Point)
		switch Side(evals[i]) {
		case -1:
			nNeg++
		case 1:
			nPos++
		}
	}
	if nNeg == 0 { // no vertex violates h: clip is redundant
		return p
	}
	if nPos == 0 { // pos side collapses to the on-boundary face
		return p.boundaryFace(h, s, dst)
	}
	// New vertices on the cutting hyperplane: one per crossing edge,
	// enumerated in the same (i, j) order as Split so dedup and vertex
	// order match the two-sided path exactly.
	cut := s.cut[:0]
	for i := range p.Verts {
		if Side(evals[i]) != -1 {
			continue
		}
		for j := range p.Verts {
			if Side(evals[j]) != 1 {
				continue
			}
			if !p.adjacent(i, j) {
				continue
			}
			t := crossingParam(evals[i], evals[j])
			if dst != nil {
				pt := vec.Vector(dst.Floats(p.Dim))
				cut = append(cut, p.Verts[i].Point.LerpInto(pt, p.Verts[j].Point, t))
			} else {
				cut = append(cut, p.Verts[i].Point.Lerp(p.Verts[j].Point, t))
			}
		}
	}
	s.cut = cut
	posPts := s.posPts[:0]
	for i, v := range p.Verts {
		if Side(evals[i]) != -1 { // pos and on-boundary vertices
			posPts = append(posPts, v.Point)
		}
	}
	posPts = append(posPts, cut...)
	s.posPts = posPts
	hsBuf := append(append(s.hsBuf[:0], p.HS...), h)
	s.hsBuf = hsBuf
	return newFromPartsS(p.Dim, hsBuf, posPts, s, dst)
}

// Facet is a polytope facet in the paper's facet-based representation: a
// bounding halfspace together with the indices of the vertices on it.
type Facet struct {
	H        Halfspace
	VertexIx []int
}

// Facets enumerates the facets: halfspaces tight at >= Dim vertices.
// (Halfspaces touching the polytope at a lower-dimensional face are
// reported too when degenerate geometry makes them indistinguishable;
// callers treat the list as a superset of the true facets.)
func (p *Polytope) Facets() []Facet {
	var out []Facet
	for hi, h := range p.HS {
		var ix []int
		for vi, v := range p.Verts {
			if v.Tight.Get(hi) {
				ix = append(ix, vi)
			}
		}
		if len(ix) >= p.Dim {
			out = append(out, Facet{H: h, VertexIx: ix})
		}
	}
	return out
}

// CanonicalKey returns a deterministic identity string for the polytope
// built from its sorted, quantized vertex keys. Two polytopes with the
// same vertex set (up to tolerance) share a key; used by tests to compare
// results across algorithms.
func (p *Polytope) CanonicalKey() string {
	keys := make([]string, len(p.Verts))
	for i, v := range p.Verts {
		keys[i] = v.Point.Key(vertexQuantum * 10)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// BoundingBox returns the component-wise min and max over the vertices.
func (p *Polytope) BoundingBox() (lo, hi vec.Vector) {
	if p.IsEmpty() {
		panic("geom: BoundingBox of empty polytope")
	}
	lo = p.Verts[0].Point.Clone()
	hi = p.Verts[0].Point.Clone()
	for _, v := range p.Verts[1:] {
		for j, x := range v.Point {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	return lo, hi
}
