package topk

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"toprr/internal/vec"
)

// fakePartialer scripts a RemotePartialer for the remote-plane tests:
// it owns a shard set and answers by computing the true partial (so
// soundness holds) unless told to fail, stall or corrupt.
type fakePartialer struct {
	sc      *Scorer
	members [][]int
	owns    map[int]bool

	calls   atomic.Int64
	shipped atomic.Int64  // Partial calls carrying an explicit member list
	fail    error         // non-nil: every Partial errors
	delay   time.Duration // stall before answering
	corrupt bool          // return structurally-unsound answers
	wrongK  bool          // return one slot short
}

func (f *fakePartialer) Owns(shard int) bool { return f.owns[shard] }

func (f *fakePartialer) Partial(ctx context.Context, gen uint64, shard, k int, w vec.Vector, members []int) ([]int, []float64, error) {
	f.calls.Add(1)
	over := f.members[shard]
	if members != nil {
		f.shipped.Add(1)
		over = members
	}
	if f.fail != nil {
		return nil, nil, f.fail
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	idx, scores := PartialTopK(f.sc, over, w, k)
	if f.corrupt && len(idx) > 1 {
		// Reverse both slices: scores now ascend, breaking the
		// (score desc, index asc) contract detectably.
		for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
			scores[i], scores[j] = scores[j], scores[i]
		}
	}
	if f.wrongK && len(idx) > 0 {
		idx, scores = idx[:len(idx)-1], scores[:len(scores)-1]
	}
	return idx, scores, nil
}

// remoteFixture builds a sharded cache with a remote plane over a fake
// partialer owning half the shards.
func remoteFixture(t *testing.T, hedge time.Duration) (*Cache, *fakePartialer, *RemotePlane, *Scorer) {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	pts := randomPts(rng, 160, 3)
	sc := NewScorer(pts)
	const shards = 4
	assign := ShardAssignment(sc, shards)
	members := make([][]int, shards)
	for slot, sh := range assign {
		members[sh] = append(members[sh], slot)
	}
	f := &fakePartialer{sc: sc, members: members, owns: map[int]bool{0: true, 2: true}}
	rp := NewRemotePlane(f, hedge, shards)
	c := NewShardedCache(sc, 5, nil, shards, 0, assign)
	c.SetRemote(rp)
	return c, f, rp, sc
}

// TestRemotePlaneServesPartials: remote-owned shards route to the
// partialer, results stay bit-identical to the unsharded oracle, and
// the plane's counters attribute the remote work.
func TestRemotePlaneServesPartials(t *testing.T) {
	c, f, rp, sc := remoteFixture(t, 0)
	rng := rand.New(rand.NewSource(52))
	for probe := 0; probe < 10; probe++ {
		w := vec.New(2)
		w[0], w[1] = rng.Float64()/3, rng.Float64()/3
		got, _, err := c.LookupCtx(context.Background(), w, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := sc.TopK(w, 5, nil)
		if got.OrderKey() != want.OrderKey() || got.KthScore != want.KthScore {
			t.Fatalf("probe %d: remote-backed lookup diverged from oracle", probe)
		}
	}
	if f.calls.Load() == 0 {
		t.Fatal("remote partialer never called")
	}
	if f.shipped.Load() != 0 {
		t.Fatal("whole-dataset requests shipped member lists")
	}
	st := rp.Stats()
	if st.Partials == 0 || st.Fallbacks != 0 || st.Hedged != 0 {
		t.Fatalf("stats = %+v, want remote partials and no fallbacks", st)
	}
	per := rp.ShardRemotes()
	if per[1] != 0 || per[3] != 0 {
		t.Fatal("unowned shards counted remote partials")
	}
	if per[0]+per[2] != st.Partials {
		t.Fatalf("per-shard remotes %v do not sum to %d", per, st.Partials)
	}
}

// TestRemotePlaneFallsBackOnError: a failing partialer costs nothing
// but latency — every lookup still matches the oracle, with fallbacks
// counted.
func TestRemotePlaneFallsBackOnError(t *testing.T) {
	c, f, rp, sc := remoteFixture(t, 0)
	f.fail = errors.New("boom")
	w := vec.Vector{0.2, 0.3}
	got, _, err := c.LookupCtx(context.Background(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.TopK(w, 5, nil)
	if got.OrderKey() != want.OrderKey() {
		t.Fatal("fallback lookup diverged from oracle")
	}
	if st := rp.Stats(); st.Fallbacks == 0 || st.Partials != 0 {
		t.Fatalf("stats = %+v, want fallbacks only", st)
	}
}

// TestRemotePlaneHedgesSlowWorker: a stalling worker trips the hedge
// timer; the shard computes locally (exact result), the straggler is
// discarded, and the hedge is counted.
func TestRemotePlaneHedgesSlowWorker(t *testing.T) {
	c, f, rp, sc := remoteFixture(t, 10*time.Millisecond)
	f.delay = 2 * time.Second
	w := vec.Vector{0.25, 0.25}
	start := time.Now()
	got, _, err := c.LookupCtx(context.Background(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lookup waited %v for the straggler; hedge did not fire", elapsed)
	}
	if got.OrderKey() != sc.TopK(w, 5, nil).OrderKey() {
		t.Fatal("hedged lookup diverged from oracle")
	}
	if st := rp.Stats(); st.Hedged == 0 {
		t.Fatalf("stats = %+v, want hedged dispatches", st)
	}
}

// TestRemotePlaneRejectsUnsoundAnswers: structurally-invalid remote
// answers (wrong order, wrong length) are discarded — the shard falls
// back locally and the merge never sees them.
func TestRemotePlaneRejectsUnsoundAnswers(t *testing.T) {
	for _, mode := range []string{"corrupt", "short"} {
		c, f, rp, sc := remoteFixture(t, 0)
		if mode == "corrupt" {
			f.corrupt = true
		} else {
			f.wrongK = true
		}
		w := vec.Vector{0.15, 0.35}
		got, _, err := c.LookupCtx(context.Background(), w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.OrderKey() != sc.TopK(w, 5, nil).OrderKey() {
			t.Fatalf("%s: unsound remote answer leaked into the merge", mode)
		}
		if st := rp.Stats(); st.Fallbacks == 0 {
			t.Fatalf("%s: stats = %+v, want fallbacks", mode, st)
		}
	}
}

// TestSoundPartial: the structural validator accepts exactly the local
// computation's shape and rejects each perturbation.
func TestSoundPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pts := randomPts(rng, 60, 3)
	sc := NewScorer(pts)
	assign := ShardAssignment(sc, 2)
	var members []int
	for slot, sh := range assign {
		if sh == 0 {
			members = append(members, slot)
		}
	}
	w := vec.Vector{0.3, 0.3}
	idx, scores := PartialTopK(sc, members, w, 5)
	if !soundPartial(idx, scores, members, 5) {
		t.Fatal("true partial rejected")
	}
	if soundPartial(idx[:len(idx)-1], scores[:len(scores)-1], members, 5) {
		t.Error("short partial accepted")
	}
	if len(idx) > 1 {
		// Reverse both slices so the scores ascend — a structural
		// violation of the (score desc, index asc) contract.
		ridx := append([]int(nil), idx...)
		rsc := append([]float64(nil), scores...)
		for i, j := 0, len(ridx)-1; i < j; i, j = i+1, j-1 {
			ridx[i], ridx[j] = ridx[j], ridx[i]
			rsc[i], rsc[j] = rsc[j], rsc[i]
		}
		if soundPartial(ridx, rsc, members, 5) {
			t.Error("disordered partial accepted")
		}
	}
	alien := append([]int(nil), idx...)
	alien[0] = -1
	if soundPartial(alien, scores, members, 5) {
		t.Error("non-member index accepted")
	}
	nan := append([]float64(nil), scores...)
	nan[0] = math.NaN()
	if soundPartial(idx, nan, members, 5) {
		t.Error("NaN score accepted")
	}
}

// TestRemotePlaneShipsActiveSets: active-set configurations — the shape
// every prefiltered solve root has — route remotely by shipping each
// shard's member slots with the request; results stay bit-identical to
// the local subset computation.
func TestRemotePlaneShipsActiveSets(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pts := randomPts(rng, 120, 3)
	sc := NewScorer(pts)
	const shards = 4
	assign := ShardAssignment(sc, shards)
	members := make([][]int, shards)
	for slot, sh := range assign {
		members[sh] = append(members[sh], slot)
	}
	f := &fakePartialer{sc: sc, members: members, owns: map[int]bool{0: true, 1: true, 2: true, 3: true}}
	rp := NewRemotePlane(f, 0, shards)

	active := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		active = append(active, i*2)
	}
	c := NewShardedCache(sc, 5, active, shards, 0, assign)
	c.SetRemote(rp)
	w := vec.Vector{0.2, 0.2}
	got, _, err := c.LookupCtx(context.Background(), w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.OrderKey() != sc.TopK(w, 5, active).OrderKey() {
		t.Fatal("active-set lookup diverged")
	}
	if f.calls.Load() == 0 {
		t.Fatal("active-set configuration never routed remotely")
	}
	if f.shipped.Load() != f.calls.Load() {
		t.Fatalf("%d of %d remote calls shipped a member list; active-set requests must carry their subset", f.shipped.Load(), f.calls.Load())
	}
	if st := rp.Stats(); st.Partials == 0 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want remote partials and no fallbacks", st)
	}
}
