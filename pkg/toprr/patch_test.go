package toprr_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// rankWeight draws a reduced preference vector (d-1 components summing
// to at most 1) for Engine.Rank.
func rankWeight(rng *rand.Rand, d int) vec.Vector {
	w := vec.New(d - 1)
	for j := range w {
		w[j] = rng.Float64() / float64(d)
	}
	return w
}

// TestEnginePatchOnInsert: a pure-insert batch into a warm engine must
// route through the patch plane — the patch counters move, every
// hyperplane and every memoized top-k configuration survives, and
// whole-dataset rank memos are repaired by splicing — while a delete
// must leave the patch counters flat (it takes the reshape path). A
// dominated insert that cracks no memoized top-k must count as an
// untouched advance and drop zero cache entries.
func TestEnginePatchOnInsert(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			ctx := context.Background()
			d := 3
			n := 150
			engine := toprr.NewEngine(randomMarket(rng, n, d), toprr.WithShards(shards))

			for i := 0; i < 4; i++ {
				if _, err := engine.Solve(ctx, wideQuery(rng, d, 2+i%3)); err != nil {
					t.Fatal(err)
				}
			}
			// Whole-dataset rankings populate the nil-active memos the
			// patch plane repairs.
			weights := make([]vec.Vector, 8)
			for i := range weights {
				weights[i] = rankWeight(rng, d)
				if _, err := engine.Rank(weights[i], 3+i%3); err != nil {
					t.Fatal(err)
				}
			}
			before := engine.CacheStats()
			if before.TopKConfigs == 0 || before.Hyperplanes == 0 {
				t.Fatalf("warmup interned nothing: %+v", before)
			}
			if before.PatchInserts != 0 || before.UntouchedAdvances != 0 {
				t.Fatalf("patch counters moved before any insert: %+v", before)
			}

			// A corner-dominant insert cracks warm top-k entries: the
			// batch must patch, not drop.
			if _, err := engine.Apply(ctx, []toprr.Op{
				toprr.Insert(vec.Of(0.999, 0.998, 0.997)),
				toprr.Insert(randomPoint(rng, d)),
			}); err != nil {
				t.Fatal(err)
			}
			after := engine.CacheStats()
			if after.PatchInserts != before.PatchInserts+2 {
				t.Errorf("PatchInserts = %d, want %d", after.PatchInserts, before.PatchInserts+2)
			}
			if after.PatchedEntries == 0 {
				t.Error("dominant insert patched no memoized entries")
			}
			if after.Hyperplanes != before.Hyperplanes {
				t.Errorf("insert changed hyperplane count %d -> %d, want unchanged", before.Hyperplanes, after.Hyperplanes)
			}
			if after.TopKConfigs != before.TopKConfigs {
				t.Errorf("patch advance dropped configurations: %d -> %d", before.TopKConfigs, after.TopKConfigs)
			}
			if after.Evictions != before.Evictions {
				t.Errorf("patch advance recorded evictions: %d -> %d", before.Evictions, after.Evictions)
			}
			if after.UntouchedAdvances != before.UntouchedAdvances {
				t.Errorf("dominant insert counted as untouched: %d -> %d", before.UntouchedAdvances, after.UntouchedAdvances)
			}
			// The patched rank memos already place the dominant option
			// first, at every memoized preference.
			for i, w := range weights {
				got, err := engine.Rank(w, 3+i%3)
				if err != nil {
					t.Fatal(err)
				}
				if got[0] != n {
					t.Errorf("rank at %v = %v, want dominant slot %d first", w, got, n)
				}
			}

			// A fully dominated option can crack no top-k: the advance is
			// untouched — the region-delta signal — and drops nothing.
			if _, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(vec.New(d))}); err != nil {
				t.Fatal(err)
			}
			dominated := engine.CacheStats()
			if dominated.UntouchedAdvances != after.UntouchedAdvances+1 {
				t.Errorf("UntouchedAdvances = %d, want %d", dominated.UntouchedAdvances, after.UntouchedAdvances+1)
			}
			if dominated.PatchedEntries != after.PatchedEntries {
				t.Errorf("dominated insert patched entries: %d -> %d", after.PatchedEntries, dominated.PatchedEntries)
			}
			if dominated.TopKConfigs != after.TopKConfigs || dominated.Evictions != after.Evictions {
				t.Errorf("dominated insert dropped cache state: %+v -> %+v", after, dominated)
			}

			// A delete reshapes slots and must bypass the patch plane.
			if _, err := engine.Apply(ctx, []toprr.Op{toprr.Delete(0)}); err != nil {
				t.Fatal(err)
			}
			deleted := engine.CacheStats()
			if deleted.PatchInserts != dominated.PatchInserts || deleted.UntouchedAdvances != dominated.UntouchedAdvances {
				t.Errorf("delete moved patch counters: %+v -> %+v", dominated, deleted)
			}

			// The patched-then-reshaped engine still answers exactly like a
			// cold engine over the same points.
			q := randomQuery(rng, d, 3)
			q.Options = oracleOptions()
			got, err := engine.Solve(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			fresh := toprr.NewEngine(engine.Scorer().Points(), toprr.WithShards(shards))
			want, err := fresh.Solve(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			sameRegion(t, "post-patch", rng, d, got, want)
		})
	}
}

// TestEngineRank: Rank validates its inputs, memoizes repeated
// rankings, and RankAt against a pinned older snapshot answers for that
// generation without touching the shared memo.
func TestEngineRank(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ctx := context.Background()
	d := 3
	engine := toprr.NewEngine(randomMarket(rng, 50, d))

	w := rankWeight(rng, d)
	if _, err := engine.Rank(w, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := engine.Rank(w, 51); err == nil {
		t.Error("k > n should error")
	}
	if _, err := engine.Rank(vec.New(d), 3); err == nil {
		t.Error("wrong preference dimension should error")
	}
	if _, err := engine.Rank(vec.Of(-0.1, 0.2), 3); err == nil {
		t.Error("negative component should error")
	}
	if _, err := engine.Rank(vec.Of(0.7, 0.7), 3); err == nil {
		t.Error("components summing past 1 should error")
	}

	first, err := engine.Rank(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 5 {
		t.Fatalf("rank returned %d indices, want 5", len(first))
	}
	before := engine.CacheStats()
	again, err := engine.Rank(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	after := engine.CacheStats()
	if after.TopKMisses != before.TopKMisses {
		t.Errorf("repeated ranking missed the memo: %d -> %d misses", before.TopKMisses, after.TopKMisses)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("repeated ranking diverged: %v vs %v", first, again)
		}
	}

	// A pinned snapshot keeps answering for its own generation after the
	// dataset moves on.
	snap := engine.Snapshot()
	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.999, 0.998, 0.997))}); err != nil {
		t.Fatal(err)
	}
	old, err := engine.RankAt(snap, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range old {
		if old[i] != first[i] {
			t.Fatalf("pinned ranking moved with the dataset: %v vs %v", old, first)
		}
	}
	cur, err := engine.Rank(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cur[0] != 50 {
		t.Errorf("current ranking = %v, want dominant slot 50 first", cur)
	}
}

// TestEnginePatchedSolveMatchesFresh: after a stream of pure-insert
// batches repaired in place, a warm engine's deterministic solves must
// be bit-identical to a cold engine built from the final point set —
// same recursion (|Vall|), same constraint count, same region — for
// every shard count in the oracle ladder.
func TestEnginePatchedSolveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ctx := context.Background()
	d := 3
	pts := randomMarket(rng, 90, d)

	for _, shards := range []int{1, 2, 3, 8} {
		engine := toprr.NewEngine(pts, toprr.WithShards(shards))
		for i := 0; i < 3; i++ {
			if _, err := engine.Solve(ctx, wideQuery(rng, d, 2+i)); err != nil {
				t.Fatal(err)
			}
		}
		for batch := 0; batch < 4; batch++ {
			ops := make([]toprr.Op, 0, 3)
			for o := 0; o < 1+rng.Intn(3); o++ {
				ops = append(ops, toprr.Insert(randomPoint(rng, d)))
			}
			if _, err := engine.Apply(ctx, ops); err != nil {
				t.Fatal(err)
			}

			fresh := toprr.NewEngine(engine.Scorer().Points(), toprr.WithShards(shards))
			for q := 0; q < 2; q++ {
				query := randomQuery(rng, d, 1+rng.Intn(5))
				query.Options = oracleOptions()
				got, err := engine.Solve(ctx, query)
				if err != nil {
					t.Fatalf("shards=%d batch=%d: %v", shards, batch, err)
				}
				want, err := fresh.Solve(ctx, query)
				if err != nil {
					t.Fatalf("shards=%d batch=%d: fresh: %v", shards, batch, err)
				}
				if len(got.Vall) != len(want.Vall) {
					t.Fatalf("shards=%d batch=%d: |Vall| %d != %d", shards, batch, len(got.Vall), len(want.Vall))
				}
				if len(got.ORConstraints) != len(want.ORConstraints) {
					t.Fatalf("shards=%d batch=%d: constraints %d != %d", shards, batch, len(got.ORConstraints), len(want.ORConstraints))
				}
				sameRegion(t, fmt.Sprintf("shards=%d batch=%d", shards, batch), rng, d, got, want)
			}
		}
		stats := engine.CacheStats()
		if stats.PatchInserts == 0 {
			t.Fatalf("shards=%d: insert batches never took the patch path", shards)
		}
	}
}
