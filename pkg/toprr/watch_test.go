package toprr_test

// The notification-oracle suite (ISSUE 8): standing subscriptions ride
// a random insert/delete/update stream at shard counts 1, 2, 3 and 8,
// and after every batch each subscription is checked against a fresh
// cold-engine re-solve — every emitted event must match the oracle
// bit for bit (constraints and fingerprint), and every batch that
// emitted nothing must re-solve to a region identical to the last
// delivered one (no missed updates, no spurious wakeups). Runs under
// -race in CI with the rest of pkg/toprr.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// settle waits for the hub to drain, failing the test on timeout.
func settle(t *testing.T, eng *toprr.Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.WatchSettle(ctx); err != nil {
		t.Fatalf("hub did not settle: %v", err)
	}
}

// drain pops every queued event without blocking.
func drain(sub *toprr.Subscription) []toprr.RegionEvent {
	var evs []toprr.RegionEvent
	for {
		select {
		case ev, ok := <-sub.Updates():
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

// sameConstraints asserts two results carry bit-identical exact
// H-representations: same constraint count, same coefficients, same
// offsets, in the same order.
func sameConstraints(t *testing.T, tag string, got, want *toprr.Result) {
	t.Helper()
	if len(got.ORConstraints) != len(want.ORConstraints) {
		t.Fatalf("%s: %d constraints, want %d", tag, len(got.ORConstraints), len(want.ORConstraints))
	}
	for i := range got.ORConstraints {
		g, w := got.ORConstraints[i], want.ORConstraints[i]
		if g.B != w.B || len(g.A) != len(w.A) {
			t.Fatalf("%s: constraint %d = %v>=%v, want %v>=%v", tag, i, g.A, g.B, w.A, w.B)
		}
		for j := range g.A {
			if g.A[j] != w.A[j] {
				t.Fatalf("%s: constraint %d coeff %d = %v, want %v", tag, i, j, g.A[j], w.A[j])
			}
		}
	}
}

func TestWatchNotificationOracle(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("S%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(90 + shards)))
			ctx := context.Background()
			d := 3
			n := 70
			pts := randomMarket(rng, n, d)
			mirror := append([]vec.Vector(nil), pts...)
			eng := toprr.NewEngine(pts, toprr.WithShards(shards))
			defer eng.Close()

			// Three standing queries at distinct k over distinct regions,
			// deterministic solver options so the oracle comparison is exact.
			type watcher struct {
				sub    *toprr.Subscription
				q      toprr.Query
				lastFP uint64
				last   *toprr.Result
			}
			var ws []*watcher
			for i := 0; i < 3; i++ {
				q := wideQuery(rng, d, 1+i)
				sub, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{
					Debounce: -1, // evaluate on the next hub cycle: the oracle checks per batch
					Options:  oracleOptions(),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer sub.Close()
				evs := drain(sub)
				if len(evs) != 1 || !evs[0].Initial {
					t.Fatalf("watcher %d: initial delivery = %+v, want one Initial event", i, evs)
				}
				if evs[0].Fingerprint != toprr.RegionFingerprint(evs[0].Result) {
					t.Fatalf("watcher %d: initial fingerprint mismatch", i)
				}
				ws = append(ws, &watcher{sub: sub, q: q, lastFP: evs[0].Fingerprint, last: evs[0].Result})
			}

			for batch := 0; batch < 10; batch++ {
				var ops []toprr.Op
				switch batch % 4 {
				case 0: // pure inserts, mixing dominated and live options
					for i := 0; i < 1+rng.Intn(3); i++ {
						if rng.Intn(2) == 0 {
							ops = append(ops, toprr.Insert(vec.New(d))) // origin: dominated
							mirror = append(mirror, vec.New(d))
						} else {
							p := randomPoint(rng, d)
							ops = append(ops, toprr.Insert(p))
							mirror = append(mirror, p)
						}
					}
				case 1: // a corner-dominant insert that cracks regions
					p := vec.Of(0.95+0.04*rng.Float64(), 0.95+0.04*rng.Float64(), 0.95+0.04*rng.Float64())
					ops = []toprr.Op{toprr.Insert(p)}
					mirror = append(mirror, p)
				case 2: // swap-delete
					i := rng.Intn(len(mirror))
					ops = []toprr.Op{toprr.Delete(i)}
					last := len(mirror) - 1
					mirror[i] = mirror[last]
					mirror = mirror[:last]
				default: // update
					i := rng.Intn(len(mirror))
					p := randomPoint(rng, d)
					ops = []toprr.Op{toprr.Update(i, p)}
					mirror[i] = p
				}
				if _, err := eng.Apply(ctx, ops); err != nil {
					t.Fatal(err)
				}
				settle(t, eng)

				oracle := toprr.NewEngine(append([]vec.Vector(nil), mirror...), toprr.WithShards(shards))
				for wi, w := range ws {
					tag := fmt.Sprintf("S%d batch %d watcher %d", shards, batch, wi)
					want, err := oracle.SolveAt(ctx, oracle.Snapshot(), w.q)
					if err != nil {
						t.Fatalf("%s: oracle: %v", tag, err)
					}
					wantFP := toprr.RegionFingerprint(want)
					evs := drain(w.sub)
					if len(evs) > 1 {
						t.Fatalf("%s: %d events for one settled batch, want <= 1", tag, len(evs))
					}
					if len(evs) == 1 {
						ev := evs[0]
						if ev.Err != nil {
							t.Fatalf("%s: unexpected error event: %v", tag, ev.Err)
						}
						if ev.Generation != eng.Generation() {
							t.Fatalf("%s: event generation %d, want %d", tag, ev.Generation, eng.Generation())
						}
						if ev.Fingerprint == w.lastFP {
							t.Fatalf("%s: spurious wakeup: event with unmoved fingerprint %#x", tag, ev.Fingerprint)
						}
						if ev.Fingerprint != wantFP {
							t.Fatalf("%s: event fingerprint %#x, oracle %#x", tag, ev.Fingerprint, wantFP)
						}
						sameConstraints(t, tag+" (event vs oracle)", ev.Result, want)
						w.lastFP = ev.Fingerprint
						w.last = ev.Result
					} else {
						// No event: suppressed or fingerprint-gated. Either way
						// the region must not have moved — a fresh solve equals
						// the last delivered region bit for bit.
						if wantFP != w.lastFP {
							t.Fatalf("%s: MISSED UPDATE: oracle fingerprint %#x, last delivered %#x", tag, wantFP, w.lastFP)
						}
						sameConstraints(t, tag+" (silent batch vs oracle)", w.last, want)
					}
					// Membership sampling as a second, independent oracle.
					sameRegion(t, tag, rng, d, w.last, want)
				}
				oracle.Close()
			}

			st := eng.WatchStats()
			if st.Suppressed == 0 {
				t.Error("stream with dominated inserts never armed suppression")
			}
			if st.Evaluations == 0 {
				t.Error("stream with reshapes never re-evaluated")
			}
			if st.Dropped != 0 {
				t.Errorf("drained consumer dropped %d events", st.Dropped)
			}
		})
	}
}

// TestWatchSuppressionEconomy pins the acceptance criterion: a
// dominated-insert stream produces zero notifications and zero
// re-solves, and a cracking insert then notifies within one debounce
// window.
func TestWatchSuppressionEconomy(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	d := 3
	eng := toprr.NewEngine(randomMarket(rng, 150, d))
	defer eng.Close()

	const debounce = 20 * time.Millisecond
	q := wideQuery(rng, d, 3)
	sub, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{Debounce: debounce})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if evs := drain(sub); len(evs) != 1 || !evs[0].Initial {
		t.Fatalf("initial delivery = %+v", evs)
	}
	base := eng.WatchStats()

	// Dominated inserts: options at the origin can enter no top-k, so
	// every batch must be suppressed — zero notifications, zero solves.
	for i := 0; i < 25; i++ {
		if _, err := eng.Apply(ctx, []toprr.Op{toprr.Insert(vec.New(d))}); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, eng)
	st := eng.WatchStats()
	if got := st.Suppressed - base.Suppressed; got != 25 {
		t.Errorf("Suppressed = %d, want 25", got)
	}
	if st.Evaluations != base.Evaluations {
		t.Errorf("dominated stream triggered %d re-solves, want 0", st.Evaluations-base.Evaluations)
	}
	if st.Signals != base.Signals {
		t.Errorf("dominated stream left %d signals unsuppressed", st.Signals-base.Signals)
	}
	if evs := drain(sub); len(evs) != 0 {
		t.Errorf("dominated stream delivered %d events, want 0", len(evs))
	}

	// A corner-dominant insert cracks the memoized top-k everywhere: the
	// subscription must hear about it within one debounce window (plus
	// solve time and scheduling slack).
	start := time.Now()
	if _, err := eng.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.999, 0.998, 0.997))}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Updates():
		if ev.Err != nil {
			t.Fatalf("cracking insert delivered error: %v", ev.Err)
		}
		if elapsed := time.Since(start); elapsed < debounce/2 {
			t.Logf("note: event after %v (debounce %v)", elapsed, debounce)
		}
		if ev.Result == nil || ev.Generation != eng.Generation() {
			t.Fatalf("cracking event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cracking insert produced no event within 10s (debounce 20ms)")
	}
}

// TestWatchErrorAndRecovery: a subscription whose query becomes
// unsolvable (k exceeding the dataset after deletes) delivers one error
// event, stays registered, and resumes with a region event when the
// dataset recovers.
func TestWatchErrorAndRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	ctx := context.Background()
	d := 3
	n := 12
	eng := toprr.NewEngine(randomMarket(rng, n, d))
	defer eng.Close()

	q := wideQuery(rng, d, n) // k = n: one delete breaks it
	sub, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{Debounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	drain(sub)

	if _, err := eng.Apply(ctx, []toprr.Op{toprr.Delete(0)}); err != nil {
		t.Fatal(err)
	}
	settle(t, eng)
	evs := drain(sub)
	if len(evs) != 1 || evs[0].Err == nil {
		t.Fatalf("broken query delivered %+v, want one error event", evs)
	}

	// Further mutations during the failure streak re-evaluate but do not
	// repeat the error.
	if _, err := eng.Apply(ctx, []toprr.Op{toprr.Delete(0)}); err != nil {
		t.Fatal(err)
	}
	settle(t, eng)
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("failure streak re-delivered: %+v", evs)
	}

	// Two inserts make k feasible again: the recovery event is
	// unconditional even if the region matches the pre-failure one.
	if _, err := eng.Apply(ctx, []toprr.Op{
		toprr.Insert(randomPoint(rng, d)),
		toprr.Insert(randomPoint(rng, d)),
	}); err != nil {
		t.Fatal(err)
	}
	settle(t, eng)
	evs = drain(sub)
	if len(evs) != 1 || evs[0].Err != nil || evs[0].Result == nil {
		t.Fatalf("recovery delivered %+v, want one region event", evs)
	}
}

// TestWatchCapAndClose: the subscription cap rejects with
// ErrTooManySubscriptions, closing a subscription frees a slot, and
// Engine.Close closes every Updates channel.
func TestWatchCapAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := 3
	eng := toprr.NewEngine(randomMarket(rng, 40, d), toprr.WithWatchCap(2))
	q := wideQuery(rng, d, 2)

	s1, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{}); !errors.Is(err, toprr.ErrTooManySubscriptions) {
		t.Fatalf("over-cap Watch returned %v, want ErrTooManySubscriptions", err)
	}
	if got := eng.WatchStats().Active; got != 2 {
		t.Fatalf("Active = %d, want 2", got)
	}

	s1.Close()
	s1.Close() // idempotent
	if _, ok := <-s1.Updates(); ok {
		// the initial event is still queued; the channel must then close
		if _, ok := <-s1.Updates(); ok {
			t.Fatal("closed subscription's channel still open")
		}
	}
	s3, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{})
	if err != nil {
		t.Fatalf("Watch after Close: %v", err)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*toprr.Subscription{s2, s3} {
		deadline := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case _, ok := <-s.Updates():
				open = ok
			case <-deadline:
				t.Fatal("Engine.Close left an Updates channel open")
			}
		}
	}
	if _, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{}); !errors.Is(err, toprr.ErrEngineClosed) {
		t.Fatalf("Watch after engine close returned %v, want ErrEngineClosed", err)
	}
}

// TestWatchConcurrentChurn races subscribers, closers and writers: no
// deadlock, no panic, and every event stream stays per-subscription
// monotone in generation. Run with -race in CI.
func TestWatchConcurrentChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ctx := context.Background()
	d := 3
	eng := toprr.NewEngine(randomMarket(rng, 60, d), toprr.WithShards(2))
	defer eng.Close()

	var wg sync.WaitGroup

	// Writers: a mix of dominated inserts, live inserts and deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(102))
		for i := 0; i < 60; i++ {
			var op toprr.Op
			switch i % 3 {
			case 0:
				op = toprr.Insert(vec.New(d))
			case 1:
				op = toprr.Insert(randomPoint(wrng, d))
			default:
				op = toprr.Delete(wrng.Intn(40))
			}
			if _, err := eng.Apply(ctx, []toprr.Op{op}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Watchers: subscribe, consume a few events, close.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(103 + g)))
			for i := 0; i < 5; i++ {
				q := wideQuery(grng, d, 1+grng.Intn(3))
				sub, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{Debounce: time.Millisecond})
				if err != nil {
					t.Errorf("watcher %d: %v", g, err)
					return
				}
				var lastGen toprr.Generation
				deadline := time.After(200 * time.Millisecond)
			consume:
				for {
					select {
					case ev, ok := <-sub.Updates():
						if !ok {
							break consume
						}
						if ev.Err == nil && ev.Generation < lastGen {
							t.Errorf("watcher %d: generation regressed %d -> %d", g, lastGen, ev.Generation)
						}
						if ev.Generation > lastGen {
							lastGen = ev.Generation
						}
					case <-deadline:
						break consume
					}
				}
				sub.Close()
			}
		}(g)
	}

	wg.Wait()
	settle(t, eng)
	if st := eng.WatchStats(); st.Active != 0 {
		t.Errorf("churn left %d active subscriptions", st.Active)
	}
}
