// Package store implements the versioned, mutable dataset layer of the
// engine: a generation-numbered option store with copy-on-write
// snapshots and an applied-ops log.
//
// The paper's applications assume the option set changes — a vendor
// inserts a product, upgrades one, or withdraws one — while readers keep
// answering top-k and TopRR queries. The store reconciles the two sides
// with snapshot isolation:
//
//   - every mutation batch (Apply) produces a brand-new generation whose
//     points slice shares nothing mutable with earlier generations, and
//   - readers pin a Snapshot — an immutable per-generation
//     topk.Scorer — and keep computing against it no matter how many
//     generations writers publish underneath.
//
// Deletion uses swap-with-last semantics: the last option moves into the
// freed slot so indices stay dense. Each Apply reports the slots whose
// identity changed (the Delta), which the engine's generation-aware
// caches use for incremental — rather than wholesale — invalidation.
package store

import (
	"fmt"
	"math"
	"sync"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Generation numbers dataset versions. The first published generation is
// 1; 0 means "no generation".
type Generation uint64

// OpKind discriminates dataset mutations.
type OpKind int

// The three dataset mutations.
const (
	OpInsert OpKind = iota // append a new option
	OpDelete               // remove option Index (swap-with-last)
	OpUpdate               // replace option Index with Point
)

// String returns the wire name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one dataset mutation. Index addresses the dataset as it stands
// when the op applies — within a batch, after the preceding ops of the
// same batch.
type Op struct {
	Kind  OpKind
	Index int        // Delete/Update target
	Point vec.Vector // Insert/Update payload
}

// Insert builds an op appending option p.
func Insert(p vec.Vector) Op { return Op{Kind: OpInsert, Point: p} }

// Delete builds an op removing option i (the last option moves into
// slot i).
func Delete(i int) Op { return Op{Kind: OpDelete, Index: i} }

// Update builds an op replacing option i with p.
func Update(i int, p vec.Vector) Op { return Op{Kind: OpUpdate, Index: i, Point: p} }

// AppliedOp is one entry of the store's op log.
type AppliedOp struct {
	Seq   uint64     // 1-based position in the log
	Gen   Generation // generation the op's batch produced
	Op    Op
	Moved int // Delete: former index of the option moved into the freed slot (-1 otherwise)
}

// Snapshot is an immutable view of one generation: readers solve against
// Scorer and never observe later mutations.
type Snapshot struct {
	Gen    Generation
	Scorer *topk.Scorer
}

// Delta reports the cache-relevant effect of one Apply: the
// old-generation slots whose identity changed (updated in place, swapped
// by a delete, truncated, or re-populated by a later insert). Slots not
// listed hold the same option in both generations, so per-pair and
// per-subset cache entries avoiding the dirty slots stay valid.
// Whole-dataset ("all options active") entries are invalidated by any
// op, since every op changes dataset membership.
type Delta struct {
	From, To Generation
	Dirty    []int
}

// logLimit bounds the retained op log; beyond it the oldest entries are
// discarded (Log reports the surviving suffix). Durable retention is the
// WAL item on the roadmap.
const logLimit = 1 << 14

// Store is a generation-numbered dataset store. Reads (Snapshot, Len,
// Log) and writes (Apply) may run concurrently; writers serialize among
// themselves.
type Store struct {
	mu   sync.RWMutex
	snap Snapshot
	seq  uint64 // total ops ever applied
	log  []AppliedOp
}

// New builds a store over an initial dataset of options in [0,1]^d,
// published as generation 1. The slice is copied; the vectors are
// adopted as-is and must not be mutated afterwards.
func New(pts []vec.Vector) (*Store, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("store: empty dataset")
	}
	d := pts[0].Dim()
	for i, p := range pts {
		if err := checkPoint(p, d); err != nil {
			return nil, fmt.Errorf("store: option %d: %w", i, err)
		}
	}
	own := append([]vec.Vector(nil), pts...)
	return &Store{snap: Snapshot{Gen: 1, Scorer: topk.NewScorerAt(own, 1)}}, nil
}

// checkPoint validates one option payload.
func checkPoint(p vec.Vector, d int) error {
	if p.Dim() != d {
		return fmt.Errorf("dimension %d, want %d", p.Dim(), d)
	}
	for j, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("component %d is not finite", j)
		}
		if x < 0 || x > 1 {
			return fmt.Errorf("component %d = %v outside [0,1]", j, x)
		}
	}
	return nil
}

// Snapshot returns the current generation's immutable view.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Generation returns the current generation number.
func (s *Store) Generation() Generation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Gen
}

// Len returns the current number of options.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Scorer.Len()
}

// Dim returns the option-space dimensionality.
func (s *Store) Dim() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Scorer.Dim()
}

// Apply applies a batch of ops atomically: either every op validates and
// the batch publishes one new generation, or the store is unchanged and
// the first offending op's error is returned. The returned Snapshot is
// the new generation; the Delta lists the slots incremental cache
// invalidation must drop. An empty batch is a no-op returning the
// current snapshot.
func (s *Store) Apply(ops []Op) (Snapshot, Delta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	cur := s.snap
	if len(ops) == 0 {
		return cur, Delta{From: cur.Gen, To: cur.Gen}, nil
	}

	// Copy-on-write: mutate a private copy; readers keep the old slice.
	old := cur.Scorer.Points()
	pts := make([]vec.Vector, len(old), len(old)+len(ops))
	copy(pts, old)
	d := cur.Scorer.Dim()

	dirty := make(map[int]bool)
	// recs are the ops as logged: payload vectors are the store's own
	// clones, never the caller's slices, so a caller mutating a vector
	// after Apply can corrupt neither the dataset nor the history.
	recs := make([]AppliedOp, len(ops))
	for i, op := range ops {
		recs[i] = AppliedOp{Op: op, Moved: -1}
		switch op.Kind {
		case OpInsert:
			if err := checkPoint(op.Point, d); err != nil {
				return cur, Delta{}, fmt.Errorf("store: op %d (insert): %w", i, err)
			}
			p := op.Point.Clone()
			pts = append(pts, p)
			recs[i].Op.Point = p
			dirty[len(pts)-1] = true
		case OpDelete:
			if op.Index < 0 || op.Index >= len(pts) {
				return cur, Delta{}, fmt.Errorf("store: op %d (delete): index %d out of range [0,%d)", i, op.Index, len(pts))
			}
			if len(pts) == 1 {
				return cur, Delta{}, fmt.Errorf("store: op %d (delete): cannot delete the last option", i)
			}
			last := len(pts) - 1
			if op.Index != last {
				pts[op.Index] = pts[last]
				recs[i].Moved = last
			}
			pts[last] = nil
			pts = pts[:last]
			dirty[op.Index] = true
			dirty[last] = true
		case OpUpdate:
			if op.Index < 0 || op.Index >= len(pts) {
				return cur, Delta{}, fmt.Errorf("store: op %d (update): index %d out of range [0,%d)", i, op.Index, len(pts))
			}
			if err := checkPoint(op.Point, d); err != nil {
				return cur, Delta{}, fmt.Errorf("store: op %d (update): %w", i, err)
			}
			p := op.Point.Clone()
			pts[op.Index] = p
			recs[i].Op.Point = p
			dirty[op.Index] = true
		default:
			return cur, Delta{}, fmt.Errorf("store: op %d: unknown kind %v", i, op.Kind)
		}
	}

	gen := cur.Gen + 1
	s.snap = Snapshot{Gen: gen, Scorer: topk.NewScorerAt(pts, uint64(gen))}
	for i := range recs {
		s.seq++
		recs[i].Seq = s.seq
		recs[i].Gen = gen
		s.log = append(s.log, recs[i])
	}
	if len(s.log) > logLimit {
		tail := make([]AppliedOp, logLimit/2)
		copy(tail, s.log[len(s.log)-logLimit/2:])
		s.log = tail
	}

	dirtyList := make([]int, 0, len(dirty))
	for i := range dirty {
		dirtyList = append(dirtyList, i)
	}
	return s.snap, Delta{From: cur.Gen, To: gen, Dirty: dirtyList}, nil
}

// Log returns a copy of the retained applied-ops with Seq > since
// (since=0 returns everything retained). Entries older than the
// retention limit are gone; callers detect the gap when the first
// returned Seq exceeds since+1.
func (s *Store) Log(since uint64) []AppliedOp {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := 0
	for lo < len(s.log) && s.log[lo].Seq <= since {
		lo++
	}
	out := append([]AppliedOp(nil), s.log[lo:]...)
	// Payload vectors are cloned so a consumer cannot mutate history.
	for i := range out {
		if out[i].Op.Point != nil {
			out[i].Op.Point = out[i].Op.Point.Clone()
		}
	}
	return out
}
