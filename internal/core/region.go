package core

import (
	"context"
	"sync"

	"toprr/internal/geom"
	"toprr/internal/vec"
)

// Region is a convex region of option space in H-representation. It is
// the working form of oR for downstream processing: Section 3.1 of the
// paper notes that manufacturing constraints, attribute
// interdependencies (e.g. p[1] + p[2] <= 1.5) and finite attribute
// domains are imposed by intersecting them with oR after TopRR
// computation — Intersect does exactly that — and the placement
// optimizations then run over the constrained region.
type Region struct {
	Dim int
	HS  []geom.Halfspace
}

// Region returns oR as a Region over its exact H-representation.
func (r *Result) Region() Region {
	return Region{Dim: r.Problem.Scorer.Dim(), HS: r.ORConstraints}
}

// Intersect returns the region further constrained by the given
// halfspaces (each {o : A·o >= B}). The receiver is unchanged.
func (g Region) Intersect(extra ...geom.Halfspace) Region {
	hs := make([]geom.Halfspace, 0, len(g.HS)+len(extra))
	hs = append(hs, g.HS...)
	hs = append(hs, extra...)
	return Region{Dim: g.Dim, HS: hs}
}

// Contains reports whether o satisfies every constraint.
func (g Region) Contains(o vec.Vector) bool {
	for _, h := range g.HS {
		if h.Eval(o) < -geom.Eps {
			return false
		}
	}
	return true
}

// Feasible reports whether the region is nonempty, and returns its
// Chebyshev center (the deepest interior point) when it is.
func (g Region) Feasible() (vec.Vector, bool) {
	c, _, ok := geom.ChebyshevCenter(g.HS, g.Dim)
	return c, ok
}

// Minimal returns an equivalent region with every redundant constraint
// removed (one LP per constraint; see geom.RemoveRedundant). The facets
// of the result are exactly the facets of oR plus any binding extra
// constraints.
func (g Region) Minimal() Region {
	return Region{Dim: g.Dim, HS: geom.RemoveRedundant(g.HS, g.Dim)}
}

// CostOptimalNew returns the point of the region minimizing Σ o[j]^2,
// the paper's manufacturing-cost model.
func (g Region) CostOptimalNew() (vec.Vector, error) {
	return costOptimal(g.Dim, g.HS)
}

// Enhance returns the point of the region nearest to p and the
// modification cost ||p' - p||.
func (g Region) Enhance(p vec.Vector) (vec.Vector, float64, error) {
	return enhance(g.HS, p, g.Contains(p))
}

// Polytope enumerates the region's explicit geometry. Returns nil when
// the vertex enumeration exceeds vertexBudget (0 means the solver
// default of 5000).
func (g Region) Polytope(vertexBudget int) *geom.Polytope {
	if vertexBudget <= 0 {
		vertexBudget = 5000
	}
	lo, hi := vec.New(g.Dim), vec.New(g.Dim)
	for j := range hi {
		hi[j] = 1
	}
	p := geom.NewBox(lo, hi)
	for _, h := range g.HS {
		p = p.Clip(h)
		if p.IsEmpty() || p.NumVertices() > vertexBudget {
			if p.NumVertices() > vertexBudget {
				return nil
			}
			return p
		}
	}
	return p
}

// SolveUnion solves TopRR for a target clientele given as a union of
// convex preference regions — the paper's treatment of non-convex wR
// (Section 3.1): partition the non-convex region into convex pieces,
// solve each independently, and intersect the option regions. The
// pieces are independent problems and are solved concurrently (the
// parallelism direction of the paper's future-work section).
func SolveUnion(pts []vec.Vector, k int, pieces []*geom.Polytope, opt Options) (Region, []*Result, error) {
	return SolveUnionContext(context.Background(), pts, k, pieces, opt)
}

// SolveUnionContext is SolveUnion honoring cancellation and deadlines
// on ctx.
func SolveUnionContext(ctx context.Context, pts []vec.Vector, k int, pieces []*geom.Polytope, opt Options) (Region, []*Result, error) {
	if len(pieces) == 0 {
		panic("core: SolveUnion needs at least one region")
	}
	results := make([]*Result, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, wr := range pieces {
		wg.Add(1)
		go func(i int, wr *geom.Polytope) {
			defer wg.Done()
			results[i], errs[i] = SolveContext(ctx, NewProblem(pts, k, wr), opt)
		}(i, wr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Region{}, nil, err
		}
	}
	region := results[0].Region()
	for _, res := range results[1:] {
		// Box constraints repeat across pieces; Intersect tolerates the
		// duplicates and Minimal can drop them later.
		region = region.Intersect(res.ORConstraints...)
	}
	return region, results, nil
}
