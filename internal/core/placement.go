package core

import (
	"context"
	"errors"
	"fmt"

	"toprr/internal/geom"
	"toprr/internal/qp"
	"toprr/internal/vec"
)

// ErrEmptyRegion is returned when a placement is requested over an empty
// option region.
var ErrEmptyRegion = errors.New("core: option region is empty")

// qpConstraints converts an H-representation {A·x >= B} into the QP
// form G x <= h.
func qpConstraints(hs []geom.Halfspace) (g []vec.Vector, h vec.Vector) {
	g = make([]vec.Vector, len(hs))
	h = vec.New(len(hs))
	for i, c := range hs {
		g[i] = c.A.Scale(-1)
		h[i] = -c.B
	}
	return g, h
}

// CostOptimalNew returns the placement in oR that minimizes the
// manufacturing-cost model of the paper's case study (Section 6.2):
// cost(o) = Σ_j o[j]^2. This is the cheapest option that is still
// guaranteed to rank among the top-k everywhere in wR.
func CostOptimalNew(or *geom.Polytope) (vec.Vector, error) {
	if or == nil || or.IsEmpty() {
		return nil, ErrEmptyRegion
	}
	return costOptimal(or.Dim, or.HS)
}

// CostOptimalNew is the Result-level form: it optimizes over the exact
// H-representation, so it works even when the explicit oR geometry was
// too large to enumerate.
func (r *Result) CostOptimalNew() (vec.Vector, error) {
	return costOptimal(r.Problem.Scorer.Dim(), r.ORConstraints)
}

func costOptimal(dim int, hs []geom.Halfspace) (vec.Vector, error) {
	g, h := qpConstraints(hs)
	x, err := qp.MinSquaredNorm(dim, g, h, qp.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: cost-optimal placement: %w", err)
	}
	return x, nil
}

// Enhance returns the minimum-modification upgrade of an existing option
// p: the point of oR nearest to p in Euclidean distance (the paper's
// option-enhancement cost model, Section 1). The returned cost is that
// distance; it is zero when p is already top-ranking.
func Enhance(or *geom.Polytope, p vec.Vector) (placement vec.Vector, cost float64, err error) {
	if or == nil || or.IsEmpty() {
		return nil, 0, ErrEmptyRegion
	}
	return enhance(or.HS, p, or.Contains(p))
}

// Enhance is the Result-level form, exact regardless of whether the
// explicit oR geometry was enumerated.
func (r *Result) Enhance(p vec.Vector) (placement vec.Vector, cost float64, err error) {
	return enhance(r.ORConstraints, p, r.IsTopRanking(p))
}

func enhance(hs []geom.Halfspace, p vec.Vector, alreadyIn bool) (vec.Vector, float64, error) {
	if alreadyIn {
		return p.Clone(), 0, nil
	}
	g, h := qpConstraints(hs)
	x, err := qp.NearestPoint(p, g, h, qp.Options{})
	if err != nil {
		return nil, 0, fmt.Errorf("core: enhancement: %w", err)
	}
	return x, x.Dist(p), nil
}

// MarketImpactResult is the outcome of the budgeted market-impact search
// of Section 3.1.
type MarketImpactResult struct {
	K         int        // smallest k whose enhancement fits the budget
	Placement vec.Vector // the corresponding cost-optimal upgrade of the option
	Cost      float64    // its modification cost (Euclidean distance)
}

// MarketImpact solves the budgeted variant of Section 3.1: find the
// smallest k such that option p can be upgraded, within modification
// budget, to rank among the top-k everywhere in wR. It evaluates TopRR
// for progressively smaller k (the optimal cost is monotone
// non-increasing in k) and returns the best achievable guarantee. maxK
// bounds the search; solve runs one TopRR instance (typically TAS*).
func MarketImpact(pts []vec.Vector, wr *geom.Polytope, p vec.Vector, budget float64, maxK int, opt Options) (*MarketImpactResult, error) {
	return MarketImpactContext(context.Background(), pts, wr, p, budget, maxK, opt)
}

// MarketImpactContext is MarketImpact honoring cancellation and
// deadlines on ctx.
func MarketImpactContext(ctx context.Context, pts []vec.Vector, wr *geom.Polytope, p vec.Vector, budget float64, maxK int, opt Options) (*MarketImpactResult, error) {
	var best *MarketImpactResult
	for k := maxK; k >= 1; k-- {
		res, err := SolveContext(ctx, NewProblem(pts, k, wr), opt)
		if err != nil {
			return nil, err
		}
		place, cost, err := res.Enhance(p)
		if err != nil {
			return nil, err
		}
		if cost > budget {
			break // costs only grow as k shrinks (oR shrinks monotonically)
		}
		best = &MarketImpactResult{K: k, Placement: place, Cost: cost}
	}
	if best == nil {
		return nil, fmt.Errorf("core: budget %.4g insufficient even for k=%d", budget, maxK)
	}
	return best, nil
}
