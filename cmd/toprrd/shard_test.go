package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHealthzBuildInfo: the liveness probe reports build info so fleet
// operators can spot version skew from the probe alone.
func TestHealthzBuildInfo(t *testing.T) {
	ts, _ := testServer(t, 50, time.Minute)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status    string `json:"status"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Errorf("status = %q", out.Status)
	}
	if out.Version == "" {
		t.Error("healthz reports no version")
	}
	if !strings.HasPrefix(out.GoVersion, "go") {
		t.Errorf("go_version = %q, want a Go toolchain version", out.GoVersion)
	}
}

// TestCreateDatasetLocationAndShards: POST /v1/datasets answers 201
// with a Location header for the new resource, honors the per-dataset
// shard count, and rejects out-of-range counts.
func TestCreateDatasetLocationAndShards(t *testing.T) {
	ts, _ := testServer(t, 50, time.Minute)

	resp := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "tenant-a", "dist": "IND", "n": 1000, "d": 3, "shards": 4,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/tenant-a" {
		t.Errorf("Location = %q, want /v1/datasets/tenant-a", loc)
	}
	var created struct {
		Name   string `json:"name"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Shards != 4 {
		t.Errorf("created shards = %d, want 4", created.Shards)
	}

	bad := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "tenant-b", "dist": "IND", "n": 1000, "d": 3, "shards": 1000,
	})
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized shards status = %d, want 400", bad.StatusCode)
	}
}

// TestStatsShardBreakdown: after a solve on a sharded dataset, the
// per-dataset stats carry the shard count and a per-shard cache
// breakdown.
func TestStatsShardBreakdown(t *testing.T) {
	ts, _ := testServer(t, 50, time.Minute)

	create := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "sharded", "dist": "IND", "n": 2000, "d": 3, "shards": 3,
	})
	create.Body.Close()
	if create.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", create.StatusCode)
	}

	solve := postJSON(t, ts.URL+"/v1/datasets/sharded/solve", map[string]any{
		"k": 5, "lo": []float64{0.3, 0.3}, "hi": []float64{0.35, 0.35},
	})
	solve.Body.Close()
	if solve.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", solve.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/datasets/sharded/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Shards     int `json:"shards"`
		ShardStats []struct {
			Shard       int `json:"shard"`
			TopKEntries int `json:"topk_entries"`
		} `json:"shard_stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 {
		t.Errorf("stats shards = %d, want 3", stats.Shards)
	}
	if len(stats.ShardStats) != 3 {
		t.Fatalf("shard_stats has %d entries, want 3", len(stats.ShardStats))
	}
	entries := 0
	for _, ss := range stats.ShardStats {
		entries += ss.TopKEntries
	}
	if entries == 0 {
		t.Error("per-shard breakdown reports no memoized state after a solve")
	}
}
