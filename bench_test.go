// Package toprr_test hosts the repository-level benchmarks: one
// testing.B benchmark per table and figure of the paper's evaluation
// (wrapping the drivers in internal/bench at a reduced scale so the full
// suite finishes in minutes), plus micro-benchmarks of the hot
// operations and ablation benchmarks for the design choices DESIGN.md
// calls out.
//
// For paper-scale numbers, run cmd/benchrunner with -scale 1 -queries 50.
package toprr_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"toprr/internal/bench"
	"toprr/internal/core"
	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/skyband"
	"toprr/internal/topk"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// benchScale keeps every figure driver fast enough for testing.B while
// exercising identical code paths. The per-query budgets matter for the
// d-sweep benchmarks: d >= 10 instances are genuinely expensive (the
// paper reports ~10^3 s at d = 12) and are annotated as exceeded rather
// than run to completion here.
var benchScale = bench.Scale{
	N:          0.05,
	Queries:    1,
	MaxRegions: 100000,
	Timeout:    10 * time.Second,
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range e.Run(benchScale) {
			if len(t.Rows) == 0 {
				b.Fatalf("experiment %s produced an empty table", id)
			}
		}
	}
}

// ------------------------- one benchmark per paper table and figure

func BenchmarkFig7CaseStudy(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkFig8Filters(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkFig9aVaryK(b *testing.B)            { runExperiment(b, "fig9a") }
func BenchmarkFig9bVarySigma(b *testing.B)        { runExperiment(b, "fig9b") }
func BenchmarkFig9cVaryN(b *testing.B)            { runExperiment(b, "fig9c") }
func BenchmarkFig9dVaryD(b *testing.B)            { runExperiment(b, "fig9d") }
func BenchmarkFig10aDistVaryK(b *testing.B)       { runExperiment(b, "fig10a") }
func BenchmarkFig10bDistVarySigma(b *testing.B)   { runExperiment(b, "fig10b") }
func BenchmarkFig10cDistVaryN(b *testing.B)       { runExperiment(b, "fig10c") }
func BenchmarkFig10dDistVaryD(b *testing.B)       { runExperiment(b, "fig10d") }
func BenchmarkFig11aRealVaryK(b *testing.B)       { runExperiment(b, "fig11a") }
func BenchmarkFig11bRealVarySigma(b *testing.B)   { runExperiment(b, "fig11b") }
func BenchmarkTable6RealVsSynthetic(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7Elongation(b *testing.B)      { runExperiment(b, "table7") }
func BenchmarkFig12Lemma5(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13Lemma7(b *testing.B)           { runExperiment(b, "fig13") }
func BenchmarkFig14KSwitch(b *testing.B)          { runExperiment(b, "fig14") }

// ----------------------------------------- algorithm micro-benchmarks

// defaultInstance builds one default-parameter TopRR instance (scaled).
func defaultInstance() ([]vec.Vector, int, *geom.Polytope) {
	ds := dataset.Generate(dataset.Independent, 50000, 4, 7)
	rng := rand.New(rand.NewSource(42))
	wr := bench.RandomRegion(3, 0.01, 1, rng)
	return ds.Pts, 10, wr
}

func benchAlgorithm(b *testing.B, opt core.Options) {
	pts, k, wr := defaultInstance()
	prob := core.NewProblem(pts, k, wr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(prob, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePAC(b *testing.B)     { benchAlgorithm(b, core.Options{Alg: core.PAC}) }
func BenchmarkSolveTAS(b *testing.B)     { benchAlgorithm(b, core.Options{Alg: core.TAS}) }
func BenchmarkSolveTASStar(b *testing.B) { benchAlgorithm(b, core.Options{Alg: core.TASStar}) }

// Ablations: each TAS* optimization toggled off (the Section 6.5 study
// as micro-benchmarks).
func BenchmarkSolveTASStarNoLemma5(b *testing.B) {
	benchAlgorithm(b, core.Options{Alg: core.TASStar, DisableLemma5: true})
}
func BenchmarkSolveTASStarNoLemma7(b *testing.B) {
	benchAlgorithm(b, core.Options{Alg: core.TASStar, DisableLemma7: true})
}
func BenchmarkSolveTASStarNoKSwitch(b *testing.B) {
	benchAlgorithm(b, core.Options{Alg: core.TASStar, DisableKSwitch: true})
}

// Design-choice ablation from DESIGN.md: the per-vertex top-k cache.
// Splitting reuses parent vertices heavily, so pass-through mode shows
// what the memoization buys.
func BenchmarkSolveTASStarNoTopKCache(b *testing.B) {
	benchAlgorithm(b, core.Options{Alg: core.TASStar, DisableTopKCache: true})
}

// ------------------------------------------------ shard-plane scaling

// benchShardedEngine measures cold solves on an engine with S shards:
// each iteration builds a fresh engine (cold per-shard caches) and
// answers the same query set sequentially, so the scaling comes from
// the shard fan-out inside each solve — S workers on the channel
// scheduler over uncontended per-shard caches — not from batching.
func benchShardedEngine(b *testing.B, shards int) {
	ds := dataset.Generate(dataset.Independent, 50000, 4, 7)
	rng := rand.New(rand.NewSource(99))
	queries := make([]toprr.Query, 4)
	for i := range queries {
		queries[i] = toprr.Query{K: 10, WR: bench.RandomRegion(3, 0.01, 1, rng)}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := toprr.NewEngine(ds.Pts, toprr.WithShards(shards))
		for _, q := range queries {
			if _, err := engine.Solve(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkShardScaling1(b *testing.B) { benchShardedEngine(b, 1) }
func BenchmarkShardScaling2(b *testing.B) { benchShardedEngine(b, 2) }
func BenchmarkShardScaling4(b *testing.B) { benchShardedEngine(b, 4) }
func BenchmarkShardScaling8(b *testing.B) { benchShardedEngine(b, 8) }

// -------------------------------------------- substrate micro-benches

func BenchmarkTopKQuery(b *testing.B) {
	ds := dataset.Generate(dataset.Independent, 1000, 4, 7)
	s := topk.NewScorer(ds.Pts)
	w := vec.Of(0.3, 0.25, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(w, 10, nil)
	}
}

func BenchmarkRSkybandFilter(b *testing.B) {
	ds := dataset.Generate(dataset.Independent, 100000, 4, 7)
	rd := skyband.NewRDomBox(vec.Of(0.3, 0.25, 0.2), vec.Of(0.31, 0.26, 0.21))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyband.RSkyband(ds.Pts, 10, rd)
	}
}

func BenchmarkKSkybandFilter(b *testing.B) {
	ds := dataset.Generate(dataset.Independent, 20000, 4, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyband.KSkyband(ds.Pts, 10)
	}
}

func BenchmarkPolytopeSplit(b *testing.B) {
	box := geom.NewBox(vec.New(5), vec.Of(1, 1, 1, 1, 1))
	h := geom.NewHalfspace(vec.Of(1, -1, 0.5, -0.5, 0.25), 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.Split(h)
	}
}

func BenchmarkImpactClipOR(b *testing.B) {
	// Assembling oR from a batch of impact halfspaces: the Theorem 1
	// step, including the redundancy fast path.
	rng := rand.New(rand.NewSource(3))
	hs := make([]geom.Halfspace, 200)
	for i := range hs {
		a := vec.Of(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		hs[i] = geom.NewHalfspace(a, a.Sum()*0.55)
	}
	lo, hi := vec.New(4), vec.Of(1, 1, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.NewBox(lo, hi)
		for _, h := range hs {
			p = p.Clip(h)
			if p.IsEmpty() {
				b.Fatal("unexpected empty oR")
			}
		}
	}
}

// assembleInstance builds a solved mid-size instance whose Vall feeds
// the assemble benchmarks (mirrors the alloc experiment's workload).
func assembleInstance(b *testing.B) (*topk.Scorer, []core.ImpactVertex) {
	b.Helper()
	ds := dataset.Generate(dataset.Independent, 2000, 4, 7)
	rng := rand.New(rand.NewSource(11))
	wr := bench.RandomRegion(3, 0.05, 1, rng)
	prob := core.NewProblem(ds.Pts, 10, wr)
	res, err := core.Solve(prob, core.Options{Alg: core.TASStar, Seed: 5})
	if err != nil {
		b.Fatalf("instance solve: %v", err)
	}
	return prob.Scorer, res.Vall
}

func BenchmarkAssembleBuffered(b *testing.B) {
	scorer, vall := assembleInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := core.ClipAssembler{}.Assemble(scorer, vall, 5000)
		if len(out.Constraints) == 0 {
			b.Fatal("empty constraints")
		}
	}
}

func BenchmarkAssembleStreaming(b *testing.B) {
	scorer, vall := assembleInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := core.ClipAssembler{}.NewStream(scorer, 5000)
		for _, iv := range vall {
			st.Push(iv)
		}
		out := st.Finish()
		if len(out.Constraints) == 0 {
			b.Fatal("empty constraints")
		}
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for _, dist := range []dataset.Distribution{dataset.Independent, dataset.Correlated, dataset.Anticorrelated} {
		b.Run(dist.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dataset.Generate(dist, 10000, 4, int64(i))
			}
		})
	}
}
