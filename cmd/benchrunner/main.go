// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints rows mirroring the
// series the paper plots; see EXPERIMENTS.md for the paper-vs-measured
// comparison. Alongside the human-readable tables, each experiment
// writes a machine-readable BENCH_<id>.json (wall time, regions
// processed, LP/QP call counts, and the table cells) so the performance
// trajectory can be tracked across changes.
//
// Usage:
//
//	benchrunner -exp all                  # everything, default scale
//	benchrunner -exp fig9a,fig13          # selected experiments
//	benchrunner -exp fig9c -scale 1 -queries 50   # paper-scale run
//	benchrunner -exp fig9a -jsondir ./out # JSON records to ./out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"toprr/internal/bench"
	"toprr/pkg/toprr"
)

// record is the machine-readable result of one experiment run.
// AllocBytes and Mallocs are runtime.MemStats deltas (TotalAlloc and
// Mallocs, both monotone) across the run, so the memory trajectory is
// tracked next to the wall-clock one and can be gated by -compare.
// GoVersion, GOMAXPROCS and Shards pin the environment the record was
// captured under, so trajectories from different toolchains or core
// counts are not confused for code regressions.
type record struct {
	ID               string    `json:"id"`
	Caption          string    `json:"caption"`
	Scale            float64   `json:"scale"`
	Queries          int       `json:"queries"`
	GoVersion        string    `json:"go_version"`
	GOMAXPROCS       int       `json:"gomaxprocs"`
	Shards           int       `json:"shards"`
	WallSeconds      float64   `json:"wall_seconds"`
	RegionsProcessed int64     `json:"regions_processed"`
	LPCalls          int64     `json:"lp_calls"`
	QPCalls          int64     `json:"qp_calls"`
	AllocBytes       uint64    `json:"alloc_bytes"`
	Mallocs          uint64    `json:"mallocs"`
	Tables           []tableJS `json:"tables"`
}

type tableJS struct {
	ID      string     `json:"id"`
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

func writeRecord(dir string, r record) error {
	f, err := os.Create(filepath.Join(dir, "BENCH_"+r.ID+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code so the profile-flushing
// defers installed for -cpuprofile/-memprofile run before the process
// exits (os.Exit would skip them).
func run() int {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (see -list)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", bench.DefaultScale.N, "dataset-size multiplier (1 = paper scale)")
		queries = flag.Int("queries", bench.DefaultScale.Queries, "wR regions averaged per data point (paper: 50)")
		budget  = flag.Int("maxregions", bench.DefaultScale.MaxRegions, "per-query recursion budget (0 = solver default)")
		timeout = flag.Duration("timeout", bench.DefaultScale.Timeout, "per-query wall-clock budget (0 = unlimited)")
		jsonDir = flag.String("jsondir", ".", "directory for BENCH_<id>.json records ('' = disable)")
		compare = flag.String("compare", "", "baseline JSON (e.g. bench/BASELINE.json) to diff the run against; >20% regression on a gated metric exits nonzero")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Caption)
		}
		return 0
	}

	s := bench.Scale{N: *scale, Queries: *queries, MaxRegions: *budget, Timeout: *timeout}
	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: -memprofile: %v\n", err)
			}
		}()
	}

	fmt.Printf("# TopRR experiment runner — scale=%.3g queries=%d timeout=%v\n\n", s.N, s.Queries, s.Timeout)
	var records []record
	for _, e := range selected {
		start := time.Now()
		before := toprr.ReadCounters()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		tables := e.Run(s)
		runtime.ReadMemStats(&msAfter)
		delta := toprr.ReadCounters().Sub(before)
		wall := time.Since(start)

		for _, table := range tables {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s finished in %.1fs; %d regions, %d LP calls, %d QP calls, %.1f MB allocated)\n\n",
			e.ID, wall.Seconds(), delta.RegionsProcessed, delta.LPSolves, delta.QPSolves,
			float64(msAfter.TotalAlloc-msBefore.TotalAlloc)/(1<<20))

		r := record{
			ID:               e.ID,
			Caption:          e.Caption,
			Scale:            s.N,
			Queries:          s.Queries,
			GoVersion:        runtime.Version(),
			GOMAXPROCS:       runtime.GOMAXPROCS(0),
			Shards:           toprr.DefaultShards(),
			WallSeconds:      wall.Seconds(),
			RegionsProcessed: delta.RegionsProcessed,
			LPCalls:          delta.LPSolves,
			QPCalls:          delta.QPSolves,
			AllocBytes:       msAfter.TotalAlloc - msBefore.TotalAlloc,
			Mallocs:          msAfter.Mallocs - msBefore.Mallocs,
		}
		for _, t := range tables {
			r.Tables = append(r.Tables, tableJS{ID: t.ID, Caption: t.Caption, Header: t.Header, Rows: t.Rows})
		}
		records = append(records, r)
		if *jsonDir != "" {
			if err := writeRecord(*jsonDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: writing JSON record: %v\n", err)
				return 1
			}
		}
	}

	if *compare != "" {
		if err := compareAgainstBaseline(*compare, records, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
	}
	return 0
}
