// Package core implements the paper's primary contribution: exact
// solutions to the Top-Ranking Region problem (TopRR, Definition 1).
//
// Given a dataset D, a value k and a convex preference region wR, TopRR
// computes the maximal region oR of the option space where a new option
// is guaranteed to rank among the top-k for every weight vector in wR.
// The package provides the three algorithms the paper evaluates:
//
//   - PAC  — the partition-and-convert baseline (Section 3.4),
//   - TAS  — the test-and-split approach (Section 4), and
//   - TAS* — optimized test-and-split (Section 5), with the consistent
//     top-λ pruning of Lemma 5, the optimized region testing of
//     Lemma 7, and k-switch splitting-hyperplane selection
//     (Definition 4),
//
// plus the downstream tools of the introduction: cost-optimal placement
// of a new option, minimum-cost enhancement of an existing option, and
// the budgeted market-impact search.
//
// A solve runs as a three-stage pipeline — Prefilter reduces the
// dataset to the candidates that can appear in any top-k result over
// wR, Partition recursively splits wR on score-tie hyperplanes until
// every region has an invariant top-k outcome, and Assemble intersects
// the impact halfspaces into oR (Theorem 1). Each stage sits behind an
// interface selected via Options, and every entry point honors context
// cancellation.
//
// # Generation pinning and the hyperplane cache
//
// A Problem binds a topk.Scorer — one immutable dataset generation —
// and the whole solve computes against it; the engine above this
// package may publish newer generations mid-solve without affecting
// correctness. The cross-query HyperplaneCache interns splitting
// hyperplanes wHP(p_i, p_j), which depend only on the option pair. It
// is generation-aware: lookups and stores name the solve's pinned
// Scorer and take effect only while that Scorer is the cache's current
// generation, so a solve pinned to an old generation can neither read
// nor publish stale geometry. Advance(sc, dirty) invalidates
// incrementally — exactly the pairs touching a dirty slot are dropped
// (an insert drops nothing, a delete or update drops only the affected
// slots' pairs), and everything else carries into the new generation.
package core
