package store

// FuzzDeltaClassify drives random op batches through Apply and checks
// the delta classification invariants the engine's cache-advance and
// notification planes lean on: DeltaInsertOnly exactly when every op of
// a non-empty batch is an insert, Inserted populated exactly then and
// holding the contiguous ascending new-tail slots [oldLen, newLen),
// every dirty slot in range, and the generation advancing by one per
// applied batch. A misclassified batch would route a reshape through
// the patch plane (silent cache corruption) or an insert through the
// drop path (lost suppression), so the classifier gets its own fuzz
// lane in CI.

import (
	"testing"

	"toprr/internal/vec"
)

// fuzzOps decodes a byte string into an op batch over a store of n
// options in [0,1]^d: each byte yields one op — two bits kind, the rest
// an index/coordinate seed — so the fuzzer explores kind interleavings
// and index aliasing without needing valid structure in its inputs.
func fuzzOps(data []byte, n, d int) []Op {
	ops := make([]Op, 0, len(data))
	for _, b := range data {
		pt := vec.New(d)
		for j := range pt {
			pt[j] = float64((int(b)*31+j*17)%97) / 96
		}
		switch b % 4 {
		case 0, 1: // bias toward inserts: the insert-only path is the fragile one
			ops = append(ops, Insert(pt))
		case 2:
			ops = append(ops, Delete(int(b/4)%(n+len(data))))
		default:
			ops = append(ops, Update(int(b/4)%(n+len(data)), pt))
		}
	}
	return ops
}

func FuzzDeltaClassify(f *testing.F) {
	f.Add([]byte{0, 1, 4})
	f.Add([]byte{2, 0, 3, 7})
	f.Add([]byte{})
	f.Add([]byte{255, 254, 0, 0, 9, 130})
	f.Fuzz(func(t *testing.T, data []byte) {
		const d = 3
		base := []vec.Vector{
			vec.Of(0.1, 0.2, 0.3), vec.Of(0.9, 0.1, 0.4),
			vec.Of(0.5, 0.5, 0.5), vec.Of(0.2, 0.8, 0.6),
		}
		st, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()

		// Split the input into a few batches so classification is exercised
		// against stores already moved by earlier fuzz batches.
		for len(data) > 0 {
			cut := 1 + int(data[0])%5
			if cut > len(data) {
				cut = len(data)
			}
			batch := fuzzOps(data[:cut], st.Len(), d)
			data = data[cut:]

			oldLen := st.Len()
			oldGen := st.Generation()
			snap, delta, err := st.Apply(batch)
			if err != nil {
				// Invalid batches (out-of-range index, deleting the last
				// option) must leave the store untouched.
				if st.Generation() != oldGen || st.Len() != oldLen {
					t.Fatalf("failed Apply moved the store: gen %d->%d len %d->%d",
						oldGen, st.Generation(), oldLen, st.Len())
				}
				continue
			}

			inserts := 0
			for _, op := range batch {
				if op.Kind == OpInsert {
					inserts++
				}
			}
			allInserts := inserts == len(batch)

			switch {
			case len(batch) == 0:
				if delta.Kind != DeltaEmpty || delta.To != delta.From {
					t.Fatalf("empty batch classified %v (gen %d->%d)", delta.Kind, delta.From, delta.To)
				}
				continue
			case allInserts:
				if delta.Kind != DeltaInsertOnly {
					t.Fatalf("pure-insert batch classified %v", delta.Kind)
				}
			default:
				if delta.Kind != DeltaReshape {
					t.Fatalf("mixed batch (%d/%d inserts) classified %v", inserts, len(batch), delta.Kind)
				}
			}

			if delta.From != oldGen || delta.To != delta.From+1 {
				t.Fatalf("delta generations %d->%d, want %d->%d", delta.From, delta.To, oldGen, oldGen+1)
			}
			newLen := snap.Scorer.Len()

			if delta.Kind == DeltaInsertOnly {
				if newLen != oldLen+inserts {
					t.Fatalf("insert-only batch: len %d -> %d with %d inserts", oldLen, newLen, inserts)
				}
				if len(delta.Inserted) != inserts {
					t.Fatalf("Inserted holds %d slots, want %d", len(delta.Inserted), inserts)
				}
				for i, s := range delta.Inserted {
					if s != oldLen+i {
						t.Fatalf("Inserted[%d] = %d, want contiguous tail slot %d", i, s, oldLen+i)
					}
				}
				// The patch plane's own contiguity validation must agree:
				// the published slots never trip its fallback.
				for _, s := range delta.Dirty {
					if s < oldLen {
						t.Fatalf("insert-only batch dirtied pre-existing slot %d (oldLen %d)", s, oldLen)
					}
				}
			} else if delta.Inserted != nil {
				t.Fatalf("%v delta carries Inserted %v, want nil", delta.Kind, delta.Inserted)
			}

			// Dirty slots address intermediate batch states too (an insert
			// later swap-deleted away dirties a transient tail slot), so the
			// bound is the peak length the batch could reach, not either
			// endpoint.
			peak := oldLen + inserts
			if newLen > peak {
				peak = newLen
			}
			for _, s := range delta.Dirty {
				if s < 0 || s >= peak {
					t.Fatalf("dirty slot %d outside [0, %d) (oldLen %d newLen %d inserts %d)", s, peak, oldLen, newLen, inserts)
				}
			}
		}
	})
}
