package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"toprr/internal/vec"
)

func TestValidateDatasetName(t *testing.T) {
	good := []string{"default", "a", "laptops-eu", "m2.large", "A1_b", "x0123456789"}
	for _, name := range good {
		if err := ValidateDatasetName(name); err != nil {
			t.Errorf("ValidateDatasetName(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{
		"", ".", "..", ".hidden", "-flag", "_x",
		"a/b", "a\\b", "a b", "a\x00b", "über",
		string(make([]byte, maxDatasetName+1)),
	}
	for _, name := range bad {
		if err := ValidateDatasetName(name); err == nil {
			t.Errorf("ValidateDatasetName(%q) = nil, want error", name)
		}
	}
}

// openDataset opens (creating if needed) one dataset store under root.
func openDataset(t *testing.T, root, name string, boot []vec.Vector) *Store {
	t.Helper()
	s, err := Open(PersistConfig{Dir: DatasetDir(root, name)}, boot)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiscoverDatasets: discovery reports exactly the subdirectories
// holding recoverable state, sorted; stateless and invalid entries are
// skipped, and a missing root is no datasets.
func TestDiscoverDatasets(t *testing.T) {
	root := t.TempDir()
	if names, err := DiscoverDatasets(filepath.Join(root, "missing")); err != nil || len(names) != 0 {
		t.Fatalf("missing root: %v, %v", names, err)
	}

	boot := []vec.Vector{vec.Of(0.3, 0.7), vec.Of(0.7, 0.3)}
	for _, name := range []string{"beta", "alpha"} {
		s := openDataset(t, root, name, boot)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A stateless subdirectory (crash before the first snapshot), an
	// invalid name, and a stray file must all be skipped.
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, ".hidden"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	names, err := DiscoverDatasets(root)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("DiscoverDatasets = %v, want %v", names, want)
	}
}

// TestRemoveDataset: removal deletes the subdirectory and discovery no
// longer reports it; removing an absent dataset is a no-op.
func TestRemoveDataset(t *testing.T) {
	root := t.TempDir()
	s := openDataset(t, root, "doomed", []vec.Vector{vec.Of(0.5, 0.5), vec.Of(0.4, 0.6)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveDataset(root, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(DatasetDir(root, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("dataset dir survives removal: %v", err)
	}
	if names, _ := DiscoverDatasets(root); len(names) != 0 {
		t.Fatalf("discovery after removal = %v", names)
	}
	if err := RemoveDataset(root, "doomed"); err != nil {
		t.Fatalf("second removal: %v", err)
	}
	if err := RemoveDataset(root, "../escape"); err == nil {
		t.Fatal("RemoveDataset accepted a path-escaping name")
	}
}

// TestMigrateLegacyLayout: a pre-tenancy root (snapshots and WAL
// directly under -data-dir) migrates into <root>/<name>/ and recovers
// to the same generation and contents; an already-migrated root is left
// alone.
func TestMigrateLegacyLayout(t *testing.T) {
	root := t.TempDir()
	boot := []vec.Vector{vec.Of(0.2, 0.8), vec.Of(0.8, 0.2)}
	legacy, err := Open(PersistConfig{Dir: root}, boot)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.Apply([]Op{Insert(vec.Of(0.5, 0.5))}); err != nil {
		t.Fatal(err)
	}
	wantGen := legacy.Generation()
	wantPts := legacy.Snapshot().Scorer.Points()
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	migrated, err := MigrateLegacyLayout(root, "default")
	if err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Fatal("legacy root not migrated")
	}
	if names, _ := DiscoverDatasets(root); !reflect.DeepEqual(names, []string{"default"}) {
		t.Fatalf("post-migration discovery = %v", names)
	}
	if ok, _ := HasState(root); ok {
		t.Fatal("legacy snapshots survive in the root")
	}

	// The migrated dataset recovers exactly; the decoy bootstrap must be
	// ignored.
	s, err := Open(PersistConfig{Dir: DatasetDir(root, "default")}, []vec.Vector{vec.Of(0.1, 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Generation() != wantGen {
		t.Fatalf("migrated generation = %d, want %d", s.Generation(), wantGen)
	}
	got := s.Snapshot().Scorer.Points()
	if len(got) != len(wantPts) {
		t.Fatalf("migrated %d options, want %d", len(got), len(wantPts))
	}
	for i := range got {
		if !got[i].Equal(wantPts[i], 0) {
			t.Fatalf("option %d = %v, want %v", i, got[i], wantPts[i])
		}
	}

	// Idempotence: nothing legacy remains, so a second call is a no-op.
	migrated, err = MigrateLegacyLayout(root, "default")
	if err != nil {
		t.Fatal(err)
	}
	if migrated {
		t.Fatal("second migration reported work")
	}
}
