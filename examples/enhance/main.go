// Option enhancement (Figure 1(c) of the paper).
//
// The manufacturer of laptop p4 = (0.3, 0.8) wants to revamp it so the
// new version ranks in the top-3 for every customer with a speed weight
// in [0.2, 0.8]. Modification cost is the Euclidean distance between
// the old and new attribute vectors; TopRR gives the constraint region
// and a quadratic program finds the cheapest compliant redesign p4'.
//
// Run with: go run ./examples/enhance
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	laptops := []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4 — the model being revamped
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
	p4 := laptops[3]

	ctx := context.Background()
	prob := toprr.NewProblem(laptops, 3, toprr.PrefBox(vec.Of(0.2), vec.Of(0.8)))
	res, err := toprr.Solve(ctx, prob, toprr.Options{Alg: toprr.TASStar})
	if err != nil {
		log.Fatal(err)
	}

	place, cost, err := toprr.Enhance(res.OR, p4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("current p4:  %v\n", p4)
	fmt.Printf("revamped p4': %v\n", place)
	fmt.Printf("modification cost (Euclidean): %.4f\n\n", cost)

	// Independent validation with the brute-force rank oracle.
	rng := rand.New(rand.NewSource(1))
	if w := toprr.VerifyTopRanking(prob, place, 2000, rng); w != nil {
		log.Fatalf("BUG: p4' not top-3 at w=%v", w)
	}
	fmt.Println("verified: p4' ranks in the top-3 at 2000 sampled preferences of wR")

	// The cheapest redesign for progressively stronger guarantees.
	fmt.Println("\nguarantee vs cost (oR shrinks as k drops):")
	for k := 4; k >= 1; k-- {
		r, err := toprr.Solve(ctx, toprr.NewProblem(laptops, k, prob.WR), toprr.Options{Alg: toprr.TASStar})
		if err != nil {
			log.Fatal(err)
		}
		_, c, err := toprr.Enhance(r.OR, p4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top-%d everywhere in wR: cost %.4f\n", k, c)
	}
}
