// Package dataset provides the option datasets of the paper's
// evaluation: the standard Börzsönyi-style synthetic benchmarks
// (independent, correlated, anticorrelated) and deterministic simulated
// stand-ins for the four real datasets (HOTEL, HOUSE, NBA and the CNET
// laptop crawl) whose originals are not redistributable.
//
// The simulated datasets match the originals' cardinality and
// dimensionality exactly and reproduce the correlation character the
// paper reports for them (Table 6), which is what governs TopRR cost.
// See DESIGN.md for the substitution rationale.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"toprr/internal/vec"
)

// Distribution identifies a synthetic data distribution.
type Distribution int

// The three standard benchmark distributions.
const (
	Independent Distribution = iota
	Correlated
	Anticorrelated
)

// String returns the paper's abbreviation for the distribution.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "IND"
	case Correlated:
		return "COR"
	case Anticorrelated:
		return "ANTI"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// ParseDistribution converts "IND"/"COR"/"ANTI" (case-insensitive) to a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "IND":
		return Independent, nil
	case "COR":
		return Correlated, nil
	case "ANTI":
		return Anticorrelated, nil
	default:
		return 0, fmt.Errorf("dataset: unknown distribution %q", s)
	}
}

// Dataset is a named collection of options in [0,1]^d. Names is optional
// per-option labels (used by the laptop case study).
type Dataset struct {
	Name  string
	Pts   []vec.Vector
	Names []string
}

// Len returns the number of options.
func (d *Dataset) Len() int { return len(d.Pts) }

// Dim returns the option-space dimensionality.
func (d *Dataset) Dim() int {
	if len(d.Pts) == 0 {
		return 0
	}
	return d.Pts[0].Dim()
}

// Label returns the display name of option i.
func (d *Dataset) Label(i int) string {
	if i < len(d.Names) && d.Names[i] != "" {
		return d.Names[i]
	}
	return fmt.Sprintf("p%d", i+1)
}

// clamp keeps x within [0,1].
func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Generate produces n options in d dimensions from the given
// distribution with a deterministic seed.
func Generate(dist Distribution, n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = genPoint(dist, d, rng)
	}
	return &Dataset{Name: fmt.Sprintf("%s-%dx%d", dist, n, d), Pts: pts}
}

func genPoint(dist Distribution, d int, rng *rand.Rand) vec.Vector {
	switch dist {
	case Independent:
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		return p
	case Correlated:
		return corPoint(d, rng)
	case Anticorrelated:
		return antiPoint(d, rng)
	default:
		panic("dataset: unknown distribution")
	}
}

// corPoint draws a base value near the diagonal and perturbs each
// attribute slightly, yielding positively correlated attributes.
func corPoint(d int, rng *rand.Rand) vec.Vector {
	base := clamp(0.5 + 0.17*rng.NormFloat64())
	p := vec.New(d)
	for j := range p {
		p[j] = clamp(base + 0.06*rng.NormFloat64())
	}
	return p
}

// antiPoint draws points concentrated around the hyperplane
// Σ_j p[j] ≈ d/2 and spreads mass between attributes, yielding
// negatively correlated attributes (the hard case for skyline-style
// pruning, exactly as in the standard benchmark generator).
func antiPoint(d int, rng *rand.Rand) vec.Vector {
	base := clamp(0.5 + 0.05*rng.NormFloat64())
	p := vec.New(d)
	for j := range p {
		p[j] = base
	}
	// Pairwise transfers preserve the attribute sum while building
	// anticorrelation.
	for t := 0; t < 8*d; t++ {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j {
			continue
		}
		delta := (rng.Float64()*2 - 1) * 0.3
		if delta > 1-p[i] {
			delta = 1 - p[i]
		}
		if delta < -p[i] {
			delta = -p[i]
		}
		if p[j]-delta > 1 {
			delta = p[j] - 1
		}
		if p[j]-delta < 0 {
			delta = p[j]
		}
		p[i] += delta
		p[j] -= delta
	}
	return p
}

// mixPoint draws from dist with probability frac and Independent
// otherwise; used to produce the "slightly (anti)correlated" character
// of the simulated real datasets.
func mixPoint(dist Distribution, frac float64, d int, rng *rand.Rand) vec.Vector {
	if rng.Float64() < frac {
		return genPoint(dist, d, rng)
	}
	return genPoint(Independent, d, rng)
}

func generateMix(name string, dist Distribution, frac float64, n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = mixPoint(dist, frac, d, rng)
	}
	return &Dataset{Name: name, Pts: pts}
}

// Hotel returns the simulated HOTEL dataset: 418,843 options, 4
// attributes (stars, price, rooms, facilities), slightly anticorrelated
// per the paper's Table 6 characterization.
func Hotel() *Dataset { return generateMix("HOTEL", Anticorrelated, 0.35, 418843, 4, 1001) }

// House returns the simulated HOUSE dataset: 315,265 options, 6
// attributes (household expense categories), slightly anticorrelated.
func House() *Dataset { return generateMix("HOUSE", Anticorrelated, 0.35, 315265, 6, 1002) }

// NBA returns the simulated NBA dataset: 21,960 options, 8 attributes
// (per-player statistics), relatively correlated per Table 6.
func NBA() *Dataset { return generateMix("NBA", Correlated, 0.7, 21960, 8, 1003) }

// Laptops returns the simulated CNET laptop dataset used by the case
// study (Section 6.2): 149 laptops rated on performance and battery
// life, normalized to the unit square. Four well-known models from the
// paper's Figure 7 are pinned at representative positions; the rest are
// drawn from a mildly anticorrelated ratings distribution.
func Laptops() *Dataset {
	rng := rand.New(rand.NewSource(1004))
	type named struct {
		name string
		p    vec.Vector
	}
	pinned := []named{
		{"Acer Predator 15", vec.Of(1.00, 0.36)},
		{"Apple MacBook Pro", vec.Of(0.92, 0.78)},
		{"Lenovo ThinkPad X201", vec.Of(0.64, 0.92)},
		{"Asus Chromebook Flip", vec.Of(0.30, 1.00)},
	}
	n := 149
	d := &Dataset{Name: "LAPTOPS", Pts: make([]vec.Vector, 0, n), Names: make([]string, 0, n)}
	for _, x := range pinned {
		d.Pts = append(d.Pts, x.p)
		d.Names = append(d.Names, x.name)
	}
	for i := len(pinned); i < n; i++ {
		// Ratings trade performance against battery, with broad spread.
		perf := rng.Float64()
		batt := clamp(1.05 - 0.75*perf + 0.25*rng.NormFloat64())
		d.Pts = append(d.Pts, vec.Of(clamp(perf), batt))
		d.Names = append(d.Names, fmt.Sprintf("Laptop %03d", i+1))
	}
	return d
}

// Normalize rescales every attribute to span [0,1] (min-max), in place,
// and returns the dataset for chaining. Constant attributes map to 0.
func (d *Dataset) Normalize() *Dataset {
	if len(d.Pts) == 0 {
		return d
	}
	dim := d.Dim()
	lo := d.Pts[0].Clone()
	hi := d.Pts[0].Clone()
	for _, p := range d.Pts[1:] {
		for j := 0; j < dim; j++ {
			lo[j] = math.Min(lo[j], p[j])
			hi[j] = math.Max(hi[j], p[j])
		}
	}
	for _, p := range d.Pts {
		for j := 0; j < dim; j++ {
			if span := hi[j] - lo[j]; span > 0 {
				p[j] = (p[j] - lo[j]) / span
			} else {
				p[j] = 0
			}
		}
	}
	return d
}

// WriteCSV emits the dataset as one option per line, attributes
// comma-separated, with an optional trailing label column when names
// are present.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, p := range d.Pts {
		for j, x := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if i < len(d.Names) && d.Names[i] != "" {
			if _, err := bw.WriteString("," + d.Names[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any numeric CSV; a
// non-numeric final column is treated as the option label).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	d := &Dataset{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		label := ""
		if _, err := strconv.ParseFloat(strings.TrimSpace(fields[len(fields)-1]), 64); err != nil && len(fields) > 1 {
			label = strings.TrimSpace(fields[len(fields)-1])
			fields = fields[:len(fields)-1]
		}
		p := vec.New(len(fields))
		for j, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %v", line, j+1, err)
			}
			p[j] = x
		}
		if len(d.Pts) > 0 && p.Dim() != d.Dim() {
			return nil, fmt.Errorf("dataset: line %d has %d attributes, want %d", line, p.Dim(), d.Dim())
		}
		d.Pts = append(d.Pts, p)
		d.Names = append(d.Names, label)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
