package sketch

import (
	"sync"
	"sync/atomic"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Plane is an engine's sketch tier: one Sketch per solve-plane shard,
// maintained on the mutation stream and k-way merged on demand. It
// follows the patch plane's successor-object discipline — an advance
// replaces the touched shards' sketches with fresh objects and leaves
// the previous objects untouched, so a reader still holding them (a
// merged sketch served before the advance) keeps a consistent view of
// its generation. Like the top-k registry, the plane serves only its
// current generation: requests carrying any other generation's scorer
// are declined and the caller takes the exact path.
type Plane struct {
	shards int
	cap    int

	mu     sync.RWMutex
	scorer *topk.Scorer // the generation the per-shard sketches summarize
	per    []*Sketch    // one sketch per shard
	merged *Sketch      // memoized MergeAll(per); nil until demanded

	// Cumulative counters (atomic: bumped under read locks).
	gateHits atomic.Int64 // prefilter gates served with a certificate
	gateMiss atomic.Int64 // gates declined (stale generation or no certificate)
	skipped  atomic.Int64 // options certified out of prefilter sweeps, cumulative
	rebuilds atomic.Int64 // shard sketches rebuilt by reshape advances
	patches  atomic.Int64 // shard sketches patched by insert-only advances
}

// NewPlane builds the sketch tier for a dataset snapshot: scans the
// scorer once and streams every option into its shard's sketch (the
// same content-stable assignment as the exact plane), each with
// capacity monitored slots (<= 0 selects DefaultCapacity).
func NewPlane(sc *topk.Scorer, shards, capacity int) *Plane {
	if shards < 1 {
		shards = 1
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	pl := &Plane{shards: shards, cap: capacity, scorer: sc}
	pl.per = buildShards(sc, shards, capacity, nil)
	return pl
}

// buildShards streams the scorer's options into per-shard sketches in
// slot order. only, when non-nil, restricts the build to the listed
// shards (the rest stay nil for the caller to fill).
func buildShards(sc *topk.Scorer, shards, capacity int, only map[int]bool) []*Sketch {
	per := make([]*Sketch, shards)
	for s := 0; s < shards; s++ {
		if only == nil || only[s] {
			per[s] = New(sc.Dim(), capacity)
		}
	}
	for i := 0; i < sc.Len(); i++ {
		p := sc.Point(i)
		s := shardOf(p, shards)
		if per[s] != nil {
			per[s].Insert(i, p)
		}
	}
	return per
}

// shardOf routes a point to its sketch, mirroring the exact plane's
// assignment (unsharded planes use shard 0).
func shardOf(p vec.Vector, shards int) int {
	if shards <= 1 {
		return 0
	}
	return topk.ShardOfPoint(p, shards)
}

// AdvanceInsert moves the plane to a pure-insert generation: the shards
// owning inserted options get successor sketches (clone + tail inserts,
// in the same slot order a rebuild would use, so the successor equals a
// from-scratch build), untouched shards keep their objects by pointer.
// inserted must list the new tail slots in ascending order —
// store.Delta.Inserted's contract.
func (pl *Plane) AdvanceInsert(sc *topk.Scorer, inserted []int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	next := make([]*Sketch, pl.shards)
	copy(next, pl.per)
	touched := 0
	for _, idx := range inserted {
		p := sc.Point(idx)
		s := shardOf(p, pl.shards)
		if next[s] == pl.per[s] {
			next[s] = pl.per[s].clone()
			touched++
		}
		next[s].Insert(idx, p)
	}
	pl.patches.Add(int64(touched))
	pl.scorer = sc
	pl.per = next
	pl.merged = nil
}

// Advance moves the plane past a reshape batch: the listed shards
// (store.Delta.ShardsTouched) are rebuilt from the new snapshot —
// space-saving summaries don't support deletion, so a shard that lost
// or changed a member starts over — while untouched shards carry their
// sketches across by pointer. An empty shard list rebuilds everything
// (the conservative reading of "unknown").
func (pl *Plane) Advance(sc *topk.Scorer, shardsTouched []int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	only := make(map[int]bool, len(shardsTouched))
	for _, s := range shardsTouched {
		if s >= 0 && s < pl.shards {
			only[s] = true
		}
	}
	if len(only) == 0 {
		for s := 0; s < pl.shards; s++ {
			only[s] = true
		}
	}
	next := buildShards(sc, pl.shards, pl.cap, only)
	for s := range next {
		if next[s] == nil {
			next[s] = pl.per[s]
		}
	}
	pl.rebuilds.Add(int64(len(only)))
	pl.scorer = sc
	pl.per = next
	pl.merged = nil
}

// MergedFor returns the k-way merged sketch when the plane's current
// generation matches sc, building and memoizing it on first demand;
// nil for any other generation (the caller falls back to the exact
// plane, exactly like a stale Registry.GetFor).
func (pl *Plane) MergedFor(sc *topk.Scorer) *Sketch {
	pl.mu.RLock()
	if pl.scorer != sc {
		pl.mu.RUnlock()
		return nil
	}
	if m := pl.merged; m != nil {
		pl.mu.RUnlock()
		return m
	}
	per := pl.per
	pl.mu.RUnlock()

	m := MergeAll(per)
	pl.mu.Lock()
	// Recheck under the write lock: an advance may have landed between
	// the locks, in which case the merge above is stale and is discarded
	// without being memoized.
	if pl.scorer == sc {
		if pl.merged == nil {
			pl.merged = m
		}
		m = pl.merged
	} else {
		m = nil
	}
	pl.mu.Unlock()
	return m
}

// Gate is the prefilter hook (core.Options.SketchGate): it certifies,
// from the merged sketch, that every option outside the monitored set
// is r-dominated by at least k options over the query region, and then
// hands the prefilter the monitored slots as the only candidates the
// exact sweep must process. ok is false — and the solve runs the full
// ungated sweep — when the plane serves a different generation or the
// certificate doesn't hold; a gated solve is bit-identical to an
// ungated one either way.
func (pl *Plane) Gate(sc *topk.Scorer, verts []vec.Vector, k int) (cands []int, skipped int, ok bool) {
	m := pl.MergedFor(sc)
	if m == nil {
		pl.gateMiss.Add(1)
		return nil, 0, false
	}
	cands, ok = m.CertifySkyband(verts, k)
	if !ok {
		pl.gateMiss.Add(1)
		return nil, 0, false
	}
	skipped = sc.Len() - len(cands)
	pl.gateHits.Add(1)
	pl.skipped.Add(int64(skipped))
	return cands, skipped, true
}

// PlaneStats is a snapshot of the sketch tier's occupancy and counters.
type PlaneStats struct {
	Shards  int // sketches maintained (one per solve-plane shard)
	Entries int // monitored entries across shards
	Folded  int // members summarized only by thresholds

	GateHits       int // prefilter gates served with a certificate
	GateMisses     int // gates declined (stale generation or no certificate)
	CertifiedSkips int // options certified out of prefilter sweeps, cumulative

	Patches  int // shard sketches patched by insert-only advances
	Rebuilds int // shard sketches rebuilt by reshape advances
}

// Stats snapshots the plane.
func (pl *Plane) Stats() PlaneStats {
	pl.mu.RLock()
	per := pl.per
	pl.mu.RUnlock()
	st := PlaneStats{
		Shards:         len(per),
		GateHits:       int(pl.gateHits.Load()),
		GateMisses:     int(pl.gateMiss.Load()),
		CertifiedSkips: int(pl.skipped.Load()),
		Patches:        int(pl.patches.Load()),
		Rebuilds:       int(pl.rebuilds.Load()),
	}
	for _, s := range per {
		if s != nil {
			st.Entries += s.Len()
			st.Folded += s.Folded()
		}
	}
	return st
}
