// Package toprr is the public API of the TopRR engine: exact maximal
// top-ranking regions (Tang et al., PVLDB 2019) over linear top-k
// preference queries, plus the downstream placement tools.
//
// The package is a stable facade over the internal pipeline
// (prefilter → partition → assemble). One-shot queries go through
// Solve; services that answer many queries over the same dataset
// should build an Engine, which reuses per-dataset state (interned
// split hyperplanes, memoized top-k results) across queries and
// batches.
//
//	prob := toprr.NewProblem(points, k, toprr.PrefBox(lo, hi))
//	res, err := toprr.Solve(ctx, prob, toprr.Options{Alg: toprr.TASStar})
//
// All entry points honor context cancellation and deadlines.
//
// # Generations and pinning
//
// An Engine's dataset is mutable and versioned. Every Apply batch is
// atomic — all ops validate or none apply — and publishes exactly one
// new generation; the initial dataset is generation 1. Reads are
// snapshot-isolated: Solve and SolveBatch pin the generation current
// when they start, and Engine.Snapshot + SolveAt/SolveBatchAt pin one
// explicitly across several calls. A pinned snapshot is immutable; a
// solve racing a mutation answers exactly for the generation it was
// pinned to. Holding a Snapshot value is what keeps a generation alive:
// drop it and the garbage collector reclaims the generation's
// copy-on-write state. CacheStats.LiveGenerations counts the
// generations still reachable, so a pin held forever is visible.
//
// # Cache invalidation
//
// The engine shares two caches across queries: interned splitting
// hyperplanes (which depend only on an option pair) and memoized top-k
// results keyed by (k, candidate-set) configuration. Both are
// generation-aware and advance incrementally with each Apply: only
// entries naming a mutated slot are dropped, plus whole-dataset top-k
// configurations (any op changes dataset membership); the rest of the
// warm state carries forward, because its options are bit-identical in
// both generations. Cache accesses verify the solve's pinned
// generation, so a stale solve can neither read nor publish another
// generation's geometry. WithCacheLimits bounds both caches;
// CacheStats reports occupancy and evictions.
//
// # Durability
//
// By default an Engine is in-memory: a restart reverts the dataset to
// whatever the process loads next. WithPersistence(dir) makes it
// durable — every Apply batch is write-ahead-logged and fsynced before
// its generation publishes, OpenEngine recovers the dataset from the
// directory on boot, and a snapshot/compaction cycle keeps the log
// bounded. Engine.Close releases the log cleanly. The recovery
// contract — what is durable when Apply returns, and the crash
// windows — is specified in docs/PERSISTENCE.md.
package toprr
