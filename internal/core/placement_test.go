package core

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/geom"
	"toprr/internal/vec"
)

func solveFig1(t *testing.T) *Result {
	t.Helper()
	res, err := Solve(fig1Problem(), Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCostOptimalNewInRegion(t *testing.T) {
	res := solveFig1(t)
	o, err := CostOptimalNew(res.OR)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OR.Contains(o) {
		t.Fatalf("cost-optimal point %v not in oR", o)
	}
	// No vertex of oR may be cheaper.
	cost := o.Dot(o)
	for _, v := range res.OR.VertexPoints() {
		if v.Dot(v) < cost-1e-6 {
			t.Fatalf("vertex %v cheaper than the optimum %v", v, o)
		}
	}
	// And no random point of oR either.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := res.OR.SamplePoint(rng)
		if p.Dot(p) < cost-1e-6 {
			t.Fatalf("sampled point %v cheaper than the optimum", p)
		}
	}
}

func TestEnhanceP4(t *testing.T) {
	// The paper's Figure 1(c): revamping p4 = (0.3, 0.8) into the gray
	// region at minimum Euclidean cost.
	res := solveFig1(t)
	p4 := vec.Of(0.3, 0.8)
	place, cost, err := Enhance(res.OR, p4)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("p4 is not top-ranking, cost must be positive")
	}
	if !res.OR.Contains(place) {
		t.Fatalf("enhanced placement %v not in oR", place)
	}
	// Optimality: no point of oR is closer to p4.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		p := res.OR.SamplePoint(rng)
		if p.Dist(p4) < cost-1e-6 {
			t.Fatalf("sampled point %v closer to p4 than the QP optimum", p)
		}
	}
	// The enhanced option must actually be top-3 across wR.
	if w := VerifyTopRanking(res.Problem, place, 200, rng); w != nil {
		t.Fatalf("enhanced p4 not top-3 at w=%v", w)
	}
}

func TestEnhanceAlreadyTopRanking(t *testing.T) {
	res := solveFig1(t)
	p2 := vec.Of(0.7, 0.9)
	place, cost, err := Enhance(res.OR, p2)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || !place.Equal(p2, 0) {
		t.Errorf("already-top-ranking option should cost 0: got %v at cost %v", place, cost)
	}
}

func TestEnhanceEmptyRegion(t *testing.T) {
	empty := &geom.Polytope{Dim: 2}
	if _, _, err := Enhance(empty, vec.Of(0.5, 0.5)); err == nil {
		t.Error("expected error on empty region")
	}
	if _, err := CostOptimalNew(empty); err == nil {
		t.Error("expected error on empty region")
	}
}

// TestEnhancementCostMonotoneInK verifies the Section 3.1 observation
// that drives the budgeted search: oR shrinks (so enhancement cost
// grows) as k decreases.
func TestEnhancementCostMonotoneInK(t *testing.T) {
	pts := fig1Dataset()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	p4 := vec.Of(0.3, 0.8)
	var prev float64 = -1
	for _, k := range []int{4, 3, 2, 1} {
		res, err := Solve(NewProblem(pts, k, wr), Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		_, cost, err := Enhance(res.OR, p4)
		if err != nil {
			t.Fatal(err)
		}
		if cost < prev-1e-9 {
			t.Fatalf("cost decreased when k dropped: k=%d cost=%v prev=%v", k, cost, prev)
		}
		prev = cost
	}
}

func TestMarketImpact(t *testing.T) {
	pts := fig1Dataset()
	wr := PrefBox(vec.Of(0.2), vec.Of(0.8))
	p4 := vec.Of(0.3, 0.8)
	// Generous budget: should reach k = 1.
	resBig, err := MarketImpact(pts, wr, p4, 1.0, 4, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if resBig.K != 1 {
		t.Errorf("generous budget should achieve k=1, got %d", resBig.K)
	}
	// Tight budget: a smaller guarantee (larger k).
	resSmall, err := MarketImpact(pts, wr, p4, 0.08, 4, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.K < resBig.K {
		t.Errorf("tighter budget cannot give stronger guarantee: %d < %d", resSmall.K, resBig.K)
	}
	if resSmall.Cost > 0.08+1e-9 {
		t.Errorf("placement cost %v exceeds budget", resSmall.Cost)
	}
	// Budget too small for anything.
	if _, err := MarketImpact(pts, wr, vec.Of(0, 0), 1e-6, 2, Options{Alg: TASStar}); err == nil {
		t.Error("expected error for infeasible budget")
	}
}

// TestCaseStudyCostSavings reproduces the *shape* of the Section 6.2
// claim: the cost-optimal new option is cheaper to produce than the
// existing options inside oR.
func TestCaseStudyCostSavings(t *testing.T) {
	res := solveFig1(t)
	opt, err := CostOptimalNew(res.OR)
	if err != nil {
		t.Fatal(err)
	}
	optCost := opt.Dot(opt)
	for i, p := range fig1Dataset() {
		if res.OR.Contains(p) {
			if pc := p.Dot(p); pc < optCost-1e-9 {
				t.Errorf("existing option p%d cheaper (%v) than the optimum (%v)", i+1, pc, optCost)
			}
		}
	}
	if math.IsNaN(optCost) || optCost <= 0 {
		t.Errorf("suspicious optimal cost %v", optCost)
	}
}
