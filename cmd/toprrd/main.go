// Command toprrd is the TopRR serving daemon: it serves a registry of
// named datasets — each an independently-mutating, snapshot-isolated
// engine — over a JSON HTTP API until interrupted, then drains
// in-flight requests and exits.
//
//	toprrd -data laptops.csv -addr :8080
//	toprrd -dist ANTI -n 50000 -d 4 -req-timeout 10s
//	toprrd -data-dir /var/lib/toprrd -dist IND -n 50000 -d 4 -idle-ttl 15m
//
// Endpoints:
//
//	GET    /v1/healthz                    liveness probe + build info (version, Go toolchain)
//	GET    /v1/datasets                   list datasets
//	POST   /v1/datasets                   create a dataset (201 + Location) {"name":..., "points":[[..]]} or {"name":...,"dist":"IND","n":1000,"d":3,"shards":4}
//	DELETE /v1/datasets/{name}            drop a dataset (engine closed, directory removed)
//	POST   /v1/datasets/{name}/solve      one TopRR query        {"k":3,"lo":[..],"hi":[..]}
//	POST   /v1/datasets/{name}/batch      many queries, one snapshot {"queries":[{...},...]}
//	POST   /v1/datasets/{name}/ops        dataset mutations      {"ops":[{"op":"insert","point":[..]},...]}
//	GET    /v1/datasets/{name}/ops        applied-ops log        ?since=<seq>
//	GET    /v1/datasets/{name}/watch      standing query: SSE stream of region deltas ?k=3&lo=..&hi=..[&debounce=50ms]
//	GET    /v1/datasets/{name}/stats      one dataset's stats
//	GET    /v1/stats                      per-dataset breakdowns + totals + work counters
//
// The pre-tenancy routes /v1/{solve,batch,ops} still work: they alias
// the "default" dataset, which the daemon creates at boot from
// -data/-dist when it does not already exist. Every query pins the
// dataset generation current at arrival; mutations publish new
// generations without disturbing in-flight solves.
//
// Each dataset solves on a sharded plane (-shards, or a per-dataset
// "shards" field on create; default GOMAXPROCS-derived): the option set
// splits into stable shards with independent caches and the solver fans
// out across them, producing identical regions to an unsharded solve.
// /v1/stats breaks the cache counters down per shard.
//
// With -fabric-workers the default dataset becomes a solve-fabric
// coordinator: the listed worker processes (cmd/toprr-worker) own shard
// indices and each solve scatters those shards' partial top-k
// computations to their owners over pipelined connections, gathering
// the constraint chunks into the same exact merge an in-process solve
// uses. Results are bit-identical with or without workers — any worker
// timeout, crash or stale generation just moves that shard's scoring
// back in-process (see docs/FABRIC.md) — and shutdown drains in-flight
// fabric requests inside the same -drain window as HTTP requests.
//
// With -data-dir the daemon is durable: each dataset owns a
// <data-dir>/<name>/ directory with its own WAL (fsynced per batch
// unless -wal-sync none) and snapshot/compaction cycle; a restart
// discovers every dataset and recovers each — lazily, on its first
// request — at the generation it crashed at. A pre-tenancy -data-dir
// (files directly under the root) is migrated into
// <data-dir>/default/ automatically. With -idle-ttl the daemon evicts
// datasets idle past the TTL and pages them back in from disk on
// demand. docs/PERSISTENCE.md specifies the recovery contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"toprr/internal/dataset"
	"toprr/pkg/toprr"
)

// version identifies the build in /v1/healthz; release builds override
// it via -ldflags "-X main.version=...".
var version = "dev"

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toprrd:", err)
	os.Exit(1)
}

// minBodyCap is the smallest accepted -max-body: below one KiB even a
// bare solve request cannot be expressed, so smaller values are surely
// operator error.
const minBodyCap = 1 << 10

// validateMaxBody checks a -max-body value.
func validateMaxBody(n int64) error {
	if n < minBodyCap {
		return fmt.Errorf("-max-body must be at least %d bytes, got %d", minBodyCap, n)
	}
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		data         = flag.String("data", "", "CSV dataset file bootstrapping the default dataset (default: generate synthetic)")
		dist         = flag.String("dist", "IND", "synthetic distribution when -data is absent")
		n            = flag.Int("n", 100000, "synthetic dataset size")
		d            = flag.Int("d", 4, "synthetic dimensionality")
		seed         = flag.Int64("seed", 7, "synthetic generator seed")
		reqTimeout   = flag.Duration("req-timeout", 30*time.Second, "per-request deadline (0 = none)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		maxBody      = flag.Int64("max-body", 32<<20, "request-body cap in bytes (min 1024)")
		dataDir      = flag.String("data-dir", "", "durable registry root: one <root>/<dataset>/ WAL+snapshot directory per dataset; empty = in-memory")
		walSync      = flag.String("wal-sync", "always", "WAL durability: always (fsync per batch) or none (OS page cache)")
		compactBytes = flag.Int64("compact-bytes", 0, "per-dataset WAL bytes triggering snapshot/compaction (0 = default 64MiB)")
		compactOps   = flag.Int("compact-ops", 0, "per-dataset WAL ops triggering snapshot/compaction (0 = default 32768)")
		idleTTL      = flag.Duration("idle-ttl", 0, "close datasets idle this long, reopening from disk on demand (0 = never; requires -data-dir)")
		cacheConfigs = flag.Int("cache-configs", 0, "process-wide interned top-k configuration budget shared across datasets (0 = per-dataset default)")
		cacheEntries = flag.Int("cache-entries", 0, "per-configuration memoized-vertex cap (0 = default)")
		shards       = flag.Int("shards", 0, "solve-plane shards per dataset (0 = GOMAXPROCS-derived; reopened datasets keep their persisted layout)")
		watchCap     = flag.Int("watch-cap", 0, "standing-query subscriptions allowed per dataset (0 = engine default)")
		fabricSpec   = flag.String("fabric-workers", "", "route the default dataset's shard partials to worker processes: host:port=shard,shard;host:port=shard (empty = solve in-process)")
		fabricHedge  = flag.Duration("fabric-hedge", 0, "deadline fraction after which a remote partial is re-dispatched locally (0 = default)")
	)
	flag.Parse()

	if err := validateMaxBody(*maxBody); err != nil {
		fatal(err)
	}
	if *shards < 0 || *shards > toprr.MaxShards {
		fatal(fmt.Errorf("-shards must be in [0, %d], got %d", toprr.MaxShards, *shards))
	}
	if *idleTTL < 0 {
		fatal(fmt.Errorf("-idle-ttl must be >= 0, got %v", *idleTTL))
	}
	if *idleTTL > 0 && *dataDir == "" {
		fatal(fmt.Errorf("-idle-ttl requires -data-dir (an in-memory dataset cannot be reopened after eviction)"))
	}

	var regOpts []toprr.RegistryOption
	if *dataDir != "" {
		mode, err := toprr.ParseSyncMode(*walSync)
		if err != nil {
			fatal(fmt.Errorf("-wal-sync: %w", err))
		}
		// A pre-tenancy data directory (WAL and snapshots directly under
		// the root) becomes the default dataset of the registry layout.
		migrated, err := toprr.MigrateLegacyLayout(*dataDir, defaultDataset)
		if err != nil {
			fatal(err)
		}
		if migrated {
			fmt.Fprintf(os.Stderr, "toprrd: migrated legacy single-dataset layout into %s/%s\n", *dataDir, defaultDataset)
		}
		regOpts = append(regOpts, toprr.WithRegistryPersistence(toprr.PersistConfig{
			Dir:          *dataDir,
			Sync:         mode,
			CompactBytes: *compactBytes,
			CompactOps:   *compactOps,
		}))
	}
	if *idleTTL > 0 {
		regOpts = append(regOpts, toprr.WithIdleTTL(*idleTTL))
	}
	if *cacheConfigs > 0 || *cacheEntries > 0 {
		regOpts = append(regOpts, toprr.WithCacheBudget(*cacheConfigs, *cacheEntries))
	}
	if *shards > 0 {
		regOpts = append(regOpts, toprr.WithRegistryShards(*shards))
	}
	if *watchCap < 0 {
		fatal(fmt.Errorf("-watch-cap must be >= 0, got %d", *watchCap))
	}
	if *watchCap > 0 {
		regOpts = append(regOpts, toprr.WithRegistryWatchCap(*watchCap))
	}
	fabricOn := false
	if *fabricSpec != "" {
		workers, err := parseFabricWorkers(*fabricSpec)
		if err != nil {
			fatal(fmt.Errorf("-fabric-workers: %w", err))
		}
		fabricOn = true
		regOpts = append(regOpts, toprr.WithRegistryRemote(map[string]toprr.RemoteShards{
			defaultDataset: {Workers: workers, Hedge: *fabricHedge},
		}))
	}
	reg, err := toprr.NewRegistry(regOpts...)
	if err != nil {
		fatal(err)
	}

	// Ensure the default dataset exists: recovered datasets win over the
	// -data/-dist bootstrap, which only seeds a first run.
	hasDefault := false
	for _, info := range reg.List() {
		if info.Name == defaultDataset {
			hasDefault = true
		}
	}
	name := "recovered:" + *dataDir
	if !hasDefault {
		var ds *dataset.Dataset
		if *data != "" {
			f, err := os.Open(*data)
			if err != nil {
				fatal(err)
			}
			ds, err = dataset.ReadCSV(f, *data)
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else {
			dd, err := dataset.ParseDistribution(*dist)
			if err != nil {
				fatal(err)
			}
			if *n <= 0 || *d < 2 {
				fatal(fmt.Errorf("need -n > 0 and -d >= 2, got -n=%d -d=%d", *n, *d))
			}
			ds = dataset.Generate(dd, *n, *d, *seed)
		}
		name = ds.Name
		if _, err := reg.Create(defaultDataset, ds.Pts); err != nil {
			fatal(err)
		}
	}
	// Open the default eagerly: it is the one tenant guaranteed to take
	// traffic (the legacy routes), and boot is where a recovery error
	// should surface, not a request.
	engine, err := reg.Get(defaultDataset)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		ps := engine.PersistStats()
		fmt.Fprintf(os.Stderr, "toprrd: registry root %s holds %d dataset(s); default at generation %d (wal %d bytes in %d segment(s), base snapshot at generation %d)\n",
			*dataDir, len(reg.List()), engine.Generation(), ps.WALBytes, ps.WALSegments, ps.LastCompaction)
	}
	if fabricOn {
		// Pin the workers to the boot generation eagerly so the first
		// solves already scatter; failures are not fatal — an unsynced
		// worker's shards simply solve in-process until the background
		// resync converges.
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := engine.SyncRemote(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "toprrd: fabric sync (continuing; shards solve locally until workers resync): %v\n", err)
		}
		scancel()
	}
	api := newServer(reg, *reqTimeout, *maxBody)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Watch streams never end on their own; close them out when the
	// daemon drains so Shutdown doesn't wait the full budget on them.
	srv.RegisterOnShutdown(api.drainWatches)
	// Fabric connections drain inside the same shutdown window:
	// in-flight remote partials finish (or fall back locally), then the
	// worker connections close with a clean FIN — before reg.Close()
	// would tear them down mid-request.
	srv.RegisterOnShutdown(func() { api.drainFabric(*drain) })
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "toprrd: serving default=%s (%d options x %d attributes, generation %d) on %s\n",
		name, engine.Len(), engine.Dim(), engine.Generation(), ln.Addr())
	if err := run(ctx, srv, ln, *drain); err != nil {
		reg.Close()
		fatal(err)
	}
	if err := reg.Close(); err != nil {
		fatal(fmt.Errorf("close: %w", err))
	}
	fmt.Fprintln(os.Stderr, "toprrd: drained, bye")
}

// parseFabricWorkers parses the -fabric-workers spec: semicolon-
// separated worker entries, each "host:port=shard,shard,...". Duplicate
// shard ownership is rejected here (with addresses named), not left to
// OpenEngine.
func parseFabricWorkers(spec string) (map[string][]int, error) {
	out := make(map[string][]int)
	owner := make(map[int]string)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		addr, list, ok := strings.Cut(entry, "=")
		addr = strings.TrimSpace(addr)
		if !ok || addr == "" || list == "" {
			return nil, fmt.Errorf("entry %q, want host:port=shard,shard", entry)
		}
		if _, dup := out[addr]; dup {
			return nil, fmt.Errorf("worker %s listed twice", addr)
		}
		var shards []int
		for _, f := range strings.Split(list, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("entry %q: shard %q: %w", entry, f, err)
			}
			if n < 0 || n >= toprr.MaxShards {
				return nil, fmt.Errorf("entry %q: shard %d out of range [0, %d)", entry, n, toprr.MaxShards)
			}
			if prev, dup := owner[n]; dup {
				return nil, fmt.Errorf("shard %d owned by both %s and %s", n, prev, addr)
			}
			owner[n] = addr
			shards = append(shards, n)
		}
		out[addr] = shards
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker entries in %q", spec)
	}
	return out, nil
}

// run serves until the listener fails or ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get the drain
// budget to finish.
func run(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
