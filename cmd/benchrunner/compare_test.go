package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals records into a baseline file under dir.
func writeBaseline(t *testing.T, dir string, records []record) string {
	t.Helper()
	path := filepath.Join(dir, "BASELINE.json")
	data, err := json.Marshal(baseline{Note: "test", Records: records})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sketchRecord builds a sketch experiment record with one row.
func sketchRecord(violations, skipped, approxNS, exactNS string) record {
	return record{
		ID: "sketch",
		Tables: []tableJS{{
			ID:     "Sketch",
			Header: []string{"shards", "gate hits", "skipped", "violations", "certified", "fallbacks", "approx ns", "exact ns", "speedup"},
			Rows:   [][]string{{"1", "2", skipped, violations, "32", "0", approxNS, exactNS, "10.0"}},
		}},
	}
}

// TestCompareAllNewRecordsAdvisory: a run whose records are all absent
// from the baseline passes with an advisory instead of erroring, so a
// branch introducing an experiment can run under -compare before the
// baseline covers it.
func TestCompareAllNewRecordsAdvisory(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), []record{{ID: "fig9a"}})
	var out strings.Builder
	err := compareAgainstBaseline(path, []record{sketchRecord("0", "1000", "100", "1000")}, &out)
	if err != nil {
		t.Fatalf("all-new run failed: %v", err)
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Fatalf("no advisory message in:\n%s", out.String())
	}
}

// TestCompareEmptyRunStillErrors: a run with no records at all keeps
// the hard error (the old misconfiguration signal).
func TestCompareEmptyRunStillErrors(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), []record{{ID: "fig9a"}})
	var out strings.Builder
	if err := compareAgainstBaseline(path, nil, &out); err == nil {
		t.Fatal("empty run passed")
	}
}

// TestCompareSketchGates: the sketch experiment's absolute contracts —
// zero exactness violations, a nonzero certified-skip count, approx
// latency strictly below exact — fail the comparison when broken.
func TestCompareSketchGates(t *testing.T) {
	good := sketchRecord("0", "1000", "100", "1000")
	path := writeBaseline(t, t.TempDir(), []record{good})

	var out strings.Builder
	if err := compareAgainstBaseline(path, []record{good}, &out); err != nil {
		t.Fatalf("healthy sketch record failed: %v\n%s", err, out.String())
	}

	for name, bad := range map[string]record{
		"violations":  sketchRecord("1", "1000", "100", "1000"),
		"no skips":    sketchRecord("0", "0", "100", "1000"),
		"approx slow": sketchRecord("0", "1000", "1000", "1000"),
	} {
		var buf strings.Builder
		if err := compareAgainstBaseline(path, []record{bad}, &buf); err == nil {
			t.Errorf("%s: broken sketch record passed:\n%s", name, buf.String())
		}
	}
}
