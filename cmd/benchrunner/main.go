// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints rows mirroring the
// series the paper plots; see EXPERIMENTS.md for the paper-vs-measured
// comparison.
//
// Usage:
//
//	benchrunner -exp all                  # everything, default scale
//	benchrunner -exp fig9a,fig13          # selected experiments
//	benchrunner -exp fig9c -scale 1 -queries 50   # paper-scale run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"toprr/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (see -list)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", bench.DefaultScale.N, "dataset-size multiplier (1 = paper scale)")
		queries = flag.Int("queries", bench.DefaultScale.Queries, "wR regions averaged per data point (paper: 50)")
		budget  = flag.Int("maxregions", bench.DefaultScale.MaxRegions, "per-query recursion budget (0 = solver default)")
		timeout = flag.Duration("timeout", bench.DefaultScale.Timeout, "per-query wall-clock budget (0 = unlimited)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Caption)
		}
		return
	}

	s := bench.Scale{N: *scale, Queries: *queries, MaxRegions: *budget, Timeout: *timeout}
	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("# TopRR experiment runner — scale=%.3g queries=%d timeout=%v\n\n", s.N, s.Queries, s.Timeout)
	for _, e := range selected {
		start := time.Now()
		for _, table := range e.Run(s) {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
