package main

// GET /v1/datasets/{name}/watch — the standing-query route. The
// response is a server-sent-event stream of generation-stamped region
// deltas: one "region" event per re-evaluation whose region fingerprint
// actually moved, nothing at all for mutation batches the patch plane
// proved region-neutral. The subscription rides the engine's
// notification hub, so an idle stream costs the daemon nothing per
// mutation beyond the suppression check.
//
// Stream grammar (SSE):
//
//	event: region   data: {"generation":..,"fingerprint":"..","initial":bool,"dropped":n,"result":{..}}
//	event: error    data: {"generation":..,"error":".."}     (query unsolvable at this generation; stream continues)
//	event: bye      data: {"reason":".."}                    (terminal: dataset dropped, engine closed, or daemon draining)
//	: keepalive                                              (comment, every keepAliveEvery while quiet)
//
// The first region event always carries initial=true and the region at
// subscribe time. dropped counts events displaced by a slow consumer
// since the last delivered one (latest-wins buffering).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"toprr/pkg/toprr"
)

// keepAliveEvery paces SSE comment frames on quiet streams so
// intermediaries don't reap the connection.
const keepAliveEvery = 15 * time.Second

// maxWatchDebounce bounds the client-requested coalescing window.
const maxWatchDebounce = time.Minute

// watchEventJSON is one region event on the wire. Fingerprint is hex —
// a uint64 does not survive JSON number precision.
type watchEventJSON struct {
	Generation  uint64      `json:"generation"`
	Fingerprint string      `json:"fingerprint"`
	Initial     bool        `json:"initial,omitempty"`
	Dropped     int         `json:"dropped,omitempty"`
	Result      *resultJSON `json:"result,omitempty"`
}

// parseFloatList parses a comma-separated float list query parameter.
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("missing")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

// watchQuery builds the standing query and debounce window from the
// request's URL parameters: k, lo, hi (comma-separated), optional
// debounce (Go duration; "0s" means no coalescing at all) and alg. The
// returned debounce is in the engine's convention: 0 engine default,
// negative none.
func watchQuery(snap toprr.Snapshot, r *http.Request) (toprr.Query, time.Duration, error) {
	p := r.URL.Query()
	k, err := strconv.Atoi(p.Get("k"))
	if err != nil {
		return toprr.Query{}, 0, fmt.Errorf("k: %w", err)
	}
	lo, err := parseFloatList(p.Get("lo"))
	if err != nil {
		return toprr.Query{}, 0, fmt.Errorf("lo: %w", err)
	}
	hi, err := parseFloatList(p.Get("hi"))
	if err != nil {
		return toprr.Query{}, 0, fmt.Errorf("hi: %w", err)
	}
	q, err := buildQuery(snap, queryJSON{K: k, Lo: lo, Hi: hi, Alg: p.Get("alg")})
	if err != nil {
		return toprr.Query{}, 0, err
	}
	var debounce time.Duration // engine convention: 0 = engine default
	if v := p.Get("debounce"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return toprr.Query{}, 0, fmt.Errorf("debounce: %w", err)
		}
		if d < 0 || d > maxWatchDebounce {
			return toprr.Query{}, 0, fmt.Errorf("debounce %v out of range [0, %v]", d, maxWatchDebounce)
		}
		debounce = d
		if d == 0 {
			debounce = -1
		}
	}
	return q, debounce, nil
}

// sseWriter frames server-sent events over a flushable response.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (s sseWriter) event(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

func (s sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// handleWatch answers GET .../watch with an SSE stream over a standing
// subscription. The tenant stays acquired (pinned against idle
// eviction) for the stream's lifetime; the stream ends with a "bye"
// event when the dataset is dropped, the engine closes, the daemon
// drains, or the client disconnects.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request, eng *toprr.Engine) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	q, debounce, err := watchQuery(eng.Snapshot(), r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sub, err := eng.Watch(q.K, q.WR, toprr.WatchOptions{
		Debounce: debounce,
		Options:  q.Options,
		Ctx:      r.Context(),
	})
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, toprr.ErrTooManySubscriptions):
			code = http.StatusTooManyRequests
		case errors.Is(err, toprr.ErrEngineClosed), errors.Is(err, toprr.ErrClosed):
			code = http.StatusServiceUnavailable
		default:
			code = solveStatus(err)
		}
		writeErr(w, code, err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	out := sseWriter{w: w, f: flusher}

	keepalive := time.NewTicker(keepAliveEvery)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-sub.Updates():
			if !open {
				// The engine closed under the stream: dataset dropped or
				// daemon shutting down.
				_ = out.event("bye", struct {
					Reason string `json:"reason"`
				}{"dataset closed"})
				return
			}
			if ev.Err != nil {
				if out.event("error", struct {
					Generation uint64 `json:"generation"`
					Error      string `json:"error"`
				}{uint64(ev.Generation), ev.Err.Error()}) != nil {
					return
				}
				continue
			}
			rj := resultToJSON(ev.Result)
			if out.event("region", watchEventJSON{
				Generation:  uint64(ev.Generation),
				Fingerprint: strconv.FormatUint(ev.Fingerprint, 16),
				Initial:     ev.Initial,
				Dropped:     ev.Dropped,
				Result:      &rj,
			}) != nil {
				return
			}
		case <-keepalive.C:
			if out.comment("keepalive") != nil {
				return
			}
		case <-s.draining:
			_ = out.event("bye", struct {
				Reason string `json:"reason"`
			}{"server draining"})
			return
		case <-r.Context().Done():
			return
		}
	}
}
