package toprr_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// TestEngineReopenServesSameState is the daemon-restart scenario: an
// engine applies mutations, the process "crashes" (no Close), and a
// reopened engine over the same data directory must answer queries
// identically to the pre-crash engine — same generation, same options,
// same solve results.
func TestEngineReopenServesSameState(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ctx := context.Background()
	dir := t.TempDir()
	pts := randomMarket(rng, 60, 3)

	engine, err := toprr.OpenEngine(pts, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		ops := []toprr.Op{
			toprr.Insert(randomPoint(rng, 3)),
			toprr.Update(rng.Intn(engine.Len()), randomPoint(rng, 3)),
		}
		if step%2 == 1 {
			ops = append(ops, toprr.Delete(rng.Intn(engine.Len())))
		}
		if _, err := engine.Apply(ctx, ops); err != nil {
			t.Fatal(err)
		}
	}
	q := wideQuery(rng, 3, 3)
	want, err := engine.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	wantGen, wantLen := engine.Generation(), engine.Len()
	// Close releases the data directory for the restarted engine; it
	// writes nothing (no snapshot-on-close), so the reopen below still
	// recovers purely from the base snapshot + WAL replay. Recovery
	// without any Close — a true crash, which also drops the directory
	// lock — is covered by the store-level suite and the daemon tests.
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := toprr.OpenEngine(nil, toprr.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Generation() != wantGen || reopened.Len() != wantLen {
		t.Fatalf("reopened gen=%d len=%d, want gen=%d len=%d",
			reopened.Generation(), reopened.Len(), wantGen, wantLen)
	}
	got, err := reopened.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ORConstraints) != len(want.ORConstraints) {
		t.Fatalf("reopened solve: %d constraints, want %d",
			len(got.ORConstraints), len(want.ORConstraints))
	}
	for i := range want.ORConstraints {
		w, g := want.ORConstraints[i], got.ORConstraints[i]
		if !w.A.Equal(g.A, 1e-12) || w.B != g.B {
			t.Fatalf("constraint %d differs: %+v vs %+v", i, w, g)
		}
	}
}

func TestEngineCloseBlocksApply(t *testing.T) {
	engine, err := toprr.OpenEngine(
		[]vec.Vector{vec.Of(0.2, 0.8), vec.Of(0.8, 0.2)},
		toprr.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = engine.Apply(context.Background(), []toprr.Op{toprr.Insert(vec.Of(0.5, 0.5))})
	if !errors.Is(err, toprr.ErrClosed) {
		t.Fatalf("apply after close = %v, want ErrClosed", err)
	}
	// Reads still serve.
	if engine.Len() != 2 {
		t.Fatalf("len after close = %d", engine.Len())
	}
}

func TestEngineStatsExposePersistenceAndGC(t *testing.T) {
	engine, err := toprr.OpenEngine(
		[]vec.Vector{vec.Of(0.2, 0.8), vec.Of(0.8, 0.2)},
		toprr.WithPersistenceConfig(toprr.PersistConfig{Dir: t.TempDir(), Sync: toprr.SyncNone}))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.Apply(context.Background(), []toprr.Op{toprr.Insert(vec.Of(0.5, 0.5))}); err != nil {
		t.Fatal(err)
	}
	ps := engine.PersistStats()
	if !ps.Persistent || ps.WALBytes <= 0 || ps.WALSegments != 1 || ps.LastCompaction != 1 {
		t.Fatalf("persist stats = %+v", ps)
	}
	cs := engine.CacheStats()
	if cs.LiveGenerations < 1 || cs.RetainedSnapshotBytes <= 0 {
		t.Fatalf("GC stats = live %d, retained %d", cs.LiveGenerations, cs.RetainedSnapshotBytes)
	}
	// In-memory engines report a zero persist layer but live GC stats.
	mem := toprr.NewEngine([]vec.Vector{vec.Of(0.2, 0.8), vec.Of(0.8, 0.2)})
	if ps := mem.PersistStats(); ps.Persistent || ps.WALBytes != 0 {
		t.Fatalf("in-memory persist stats = %+v", ps)
	}
	if cs := mem.CacheStats(); cs.LiveGenerations != 1 {
		t.Fatalf("in-memory live generations = %d", cs.LiveGenerations)
	}
}
