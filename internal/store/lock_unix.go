//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on f. The kernel
// releases it when the fd closes — including on process death, so a
// crash never bricks the data directory.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
