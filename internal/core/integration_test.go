package core

import (
	"fmt"
	"math/rand"
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/vec"
)

// TestPipelineMatrix runs the full pipeline (filter, partition, assemble,
// place) across a grid of dataset distributions, dimensions and k, and
// validates each result against the brute-force rank oracle.
func TestPipelineMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration sweep")
	}
	rng := rand.New(rand.NewSource(1234))
	dists := []dataset.Distribution{dataset.Independent, dataset.Correlated, dataset.Anticorrelated}
	for _, dist := range dists {
		for _, d := range []int{2, 3, 4} {
			for _, k := range []int{1, 3, 8} {
				name := fmt.Sprintf("%v/d=%d/k=%d", dist, d, k)
				t.Run(name, func(t *testing.T) {
					ds := dataset.Generate(dist, 1500, d, int64(17*d+int(dist)))
					m := d - 1
					lo, hi := vec.New(m), vec.New(m)
					for j := 0; j < m; j++ {
						lo[j] = 0.15 + 0.1*rng.Float64()
						hi[j] = lo[j] + 0.05
					}
					prob := NewProblem(ds.Pts, k, PrefBox(lo, hi))
					res, err := Solve(prob, Options{Alg: TASStar})
					if err != nil {
						t.Fatal(err)
					}
					if res.OR.IsEmpty() {
						t.Fatal("oR empty")
					}
					// Soundness on sampled interior points.
					for probe := 0; probe < 8; probe++ {
						o := res.OR.SamplePoint(rng)
						if w := VerifyTopRanking(prob, o, 40, rng); w != nil {
							t.Fatalf("point %v of oR not top-%d at %v", o, k, w)
						}
					}
					// The cost-optimal placement is itself top-ranking.
					opt, err := CostOptimalNew(res.OR)
					if err != nil {
						t.Fatal(err)
					}
					if w := VerifyTopRanking(prob, opt, 40, rng); w != nil {
						t.Fatalf("cost-optimal %v not top-%d at %v", opt, k, w)
					}
					// Points sampled outside oR must carry a witness.
					for probe := 0; probe < 30; probe++ {
						o := vec.New(d)
						for j := range o {
							o[j] = rng.Float64()
						}
						if res.OR.Contains(o) {
							continue
						}
						if res.WitnessNonTopRanking(o) == nil {
							t.Fatalf("no witness for excluded point %v", o)
						}
					}
				})
			}
		}
	}
}

// TestTASvsTASStarVallOrdering confirms across a batch of instances that
// TAS* never needs more Vall vertices than TAS (the Sections 5.2-5.3
// optimizations only remove vertices).
func TestTASvsTASStarVallOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	rng := rand.New(rand.NewSource(777))
	worse := 0
	for iter := 0; iter < 10; iter++ {
		prob := randomProblem(rng, 400, 3, 6)
		tas, err := Solve(prob, Options{Alg: TAS})
		if err != nil {
			t.Fatal(err)
		}
		star, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		if star.Stats.VallSize > tas.Stats.VallSize {
			worse++
		}
	}
	// Randomized split choices allow occasional inversions; systematic
	// inversion would indicate a defect.
	if worse > 3 {
		t.Errorf("TAS* produced larger Vall than TAS in %d/10 instances", worse)
	}
}

// TestHigherDimensionSmoke exercises d = 5..6 end to end (beyond the
// agreement tests' 2-4) with small candidate sets.
func TestHigherDimensionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("high-dimensional smoke test")
	}
	rng := rand.New(rand.NewSource(321))
	for _, d := range []int{5, 6} {
		ds := dataset.Generate(dataset.Correlated, 2000, d, int64(d))
		m := d - 1
		lo, hi := vec.New(m), vec.New(m)
		for j := 0; j < m; j++ {
			lo[j] = 0.12
			hi[j] = 0.125
		}
		prob := NewProblem(ds.Pts, 5, PrefBox(lo, hi))
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		o := res.OR.SamplePoint(rng)
		if w := VerifyTopRanking(prob, o, 60, rng); w != nil {
			t.Fatalf("d=%d: sampled oR point fails at %v", d, w)
		}
	}
}

// TestDuplicateOptions ensures exact duplicates in D are handled: they
// tie everywhere, which stresses the degenerate-split machinery.
func TestDuplicateOptions(t *testing.T) {
	pts := []vec.Vector{
		vec.Of(0.8, 0.5), vec.Of(0.8, 0.5), vec.Of(0.8, 0.5), // triplet
		vec.Of(0.5, 0.9), vec.Of(0.4, 0.4), vec.Of(0.2, 0.6),
	}
	for _, k := range []int{1, 2, 3, 4} {
		prob := NewProblem(pts, k, PrefBox(vec.Of(0.3), vec.Of(0.7)))
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		o := res.OR.SamplePoint(rng)
		if w := VerifyTopRanking(prob, o, 100, rng); w != nil {
			t.Fatalf("k=%d: duplicate-heavy dataset broke soundness at %v", k, w)
		}
	}
}

// TestCollinearOptions puts every option on a line in option space so
// that many score hyperplanes coincide.
func TestCollinearOptions(t *testing.T) {
	var pts []vec.Vector
	for i := 0; i < 8; i++ {
		x := float64(i) / 7
		pts = append(pts, vec.Of(x, 1-x))
	}
	prob := NewProblem(pts, 3, PrefBox(vec.Of(0.25), vec.Of(0.75)))
	res, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	o := res.OR.SamplePoint(rng)
	if w := VerifyTopRanking(prob, o, 150, rng); w != nil {
		t.Fatalf("collinear dataset broke soundness at %v", w)
	}
}

// TestWholePreferenceSpace uses wR equal to (almost) the entire valid
// preference simplex.
func TestWholePreferenceSpace(t *testing.T) {
	ds := dataset.Generate(dataset.Independent, 300, 3, 99)
	prob := NewProblem(ds.Pts, 5, PrefBox(vec.Of(0.01, 0.01), vec.Of(0.98, 0.98)))
	res, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		o := res.OR.SamplePoint(rng)
		if w := VerifyTopRanking(prob, o, 80, rng); w != nil {
			t.Fatalf("whole-space wR: point fails at %v", w)
		}
	}
}
