package bench

// The fabric experiment: the same query set solved three ways per shard
// count — on a plain in-process sharded engine, on a coordinator
// scattering each shard's partial to a loopback worker over pipelined
// connections, and on the same coordinator in serial-RPC referee mode
// (one in-flight request per worker) — so BENCH_fabric.json records
// what scatter–gather costs against in-process solving and what
// pipelining buys against one-at-a-time RPC. Rows are gated by
// cmd/benchrunner -compare on the fabric's absolute contracts: zero
// exactness violations at every S, scattering that actually happens at
// S > 1 (and never at S = 1), and pipelined RPC strictly faster than
// the serial referee summed over the shard grid.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/fabric"
	"toprr/internal/geom"
	"toprr/pkg/toprr"
)

// fabricBenchHedge keeps the hedge timer out of the measurement: a
// loopback worker answers in microseconds, so a generous hedge never
// fires and both remote modes pay their true wire cost — the serial
// referee must not be rescued by hedged local dispatches.
const fabricBenchHedge = time.Second

// fabricWorkerBench is one in-process loopback worker: the same Server
// and EngineBackend cmd/toprr-worker runs, on an ephemeral port.
type fabricWorkerBench struct {
	addr string
	srv  *fabric.Server
}

func startFabricWorkerBench() (*fabricWorkerBench, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := fabric.NewServer(fabric.NewEngineBackend(fabric.BackendConfig{}))
	go srv.Serve(ln) //nolint:errcheck
	return &fabricWorkerBench{addr: ln.Addr().String(), srv: srv}, nil
}

// fabricRemoteEngine builds a coordinator over one worker owning every
// shard, synced so the first timed solve scatters instead of pinning.
func fabricRemoteEngine(ds *dataset.Dataset, shards int, w *fabricWorkerBench, name string, serial bool) (*toprr.Engine, error) {
	owned := make([]int, shards)
	for i := range owned {
		owned[i] = i
	}
	cfg := toprr.RemoteShards{
		Workers: map[string][]int{w.addr: owned},
		Dataset: name,
		Hedge:   fabricBenchHedge,
		Serial:  serial,
	}
	if serial {
		cfg.Conns = 1 // the referee: exactly one in-flight request
	}
	engine := toprr.NewEngine(ds.Pts, toprr.WithShards(shards), toprr.WithRemoteShards(cfg))
	if err := engine.SyncRemote(context.Background()); err != nil {
		engine.Close()
		return nil, err
	}
	return engine, nil
}

// fabricSolvePass solves every region on one engine, returning the
// total wall time, each result's region fingerprint, and the summed
// constraint count (the exactness comparators).
func fabricSolvePass(engine *toprr.Engine, regions []*geom.Polytope, opts *toprr.Options) (time.Duration, []uint64, int, error) {
	ctx := context.Background()
	prints := make([]uint64, 0, len(regions))
	lens := 0
	start := time.Now()
	for _, wr := range regions {
		res, err := engine.Solve(ctx, toprr.Query{K: DefaultK, WR: wr, Options: opts})
		if err != nil {
			return 0, nil, 0, err
		}
		prints = append(prints, toprr.RegionFingerprint(res))
		lens += len(res.ORConstraints)
	}
	return time.Since(start), prints, lens, nil
}

// The RPC micro-measurement isolates the transport: a fixed batch of
// partial round trips issued with fixed concurrency against a small
// worker-resident dataset, where the round-trip latency — not the
// per-partial scoring work — dominates. Pipelined and serial clients
// run the identical batch; the pipelined/serial contrast there is the
// gated "pipelining beats one-at-a-time RPC" contract, robust where
// end-to-end solve wall time (mostly local compute) is not.
const (
	fabricRPCBatch = 96 // partial round trips per timed batch
	fabricRPCConc  = 8  // goroutines issuing them
	fabricRPCReps  = 7  // timed batches; the minimum is reported
	fabricRPCN     = 64 // worker-resident points (scale-independent)
)

// fabricRPCTime syncs a small dataset to the worker and times the
// standard batch of partial round trips fabricRPCReps times, returning
// the fastest batch's ns per round trip — the minimum, because the
// contrast under test is structural (what the transport can do), and
// scheduler noise on a small machine only ever adds time.
func fabricRPCTime(addr, name string, shards int, flat []float64, serial bool) (int64, error) {
	conns := 0 // pipelined default
	if serial {
		conns = 1
	}
	cl := fabric.NewClient(fabric.ClientConfig{Addr: addr, Dataset: name, Serial: serial, Conns: conns})
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Sync(ctx, fabric.SyncMsg{Gen: 1, Shards: uint32(shards), Dim: uint32(DefaultD), Pts: flat}); err != nil {
		return 0, err
	}
	vertex := func(i int) []float64 {
		w := make([]float64, DefaultD-1)
		for j := range w {
			w[j] = 0.15 + float64(i)*1e-4
		}
		return w
	}
	// Warm every connection (dial + handshake) outside the timing.
	for i := 0; i < 4; i++ {
		if _, _, err := cl.Partial(ctx, 1, i%shards, DefaultK, vertex(-1), nil); err != nil {
			return 0, err
		}
	}
	per := fabricRPCBatch / fabricRPCConc
	var best time.Duration
	for rep := 0; rep < fabricRPCReps; rep++ {
		errs := make(chan error, fabricRPCConc)
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < fabricRPCConc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					// Distinct vertices per rep keep the worker memo cold.
					req := rep*fabricRPCBatch + g*per + i
					if _, _, err := cl.Partial(ctx, 1, req%shards, DefaultK, vertex(req), nil); err != nil {
						errs <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best.Nanoseconds() / int64(fabricRPCBatch), nil
}

// Fabric measures the distributed solve fabric per shard count. The
// violations column counts remote results whose region fingerprint or
// constraint count diverged from the in-process solve of the same query
// — the bit-identity contract says it must read 0 everywhere. At S=1
// the plane is unsharded and has nothing to scatter, so the remote
// columns record pure local solving over an idle fabric (zero partials,
// zero violations by construction).
func Fabric(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	regions := s.Regions(DefaultD-1, DefaultSigma, 1, 8484)
	rpcDS := dataset.Generate(dataset.Independent, fabricRPCN, DefaultD, 11)
	rpcFlat := make([]float64, 0, fabricRPCN*DefaultD)
	for _, p := range rpcDS.Pts {
		rpcFlat = append(rpcFlat, p...)
	}
	t := &Table{
		ID: "Fabric",
		Caption: fmt.Sprintf("scatter–gather solve fabric vs in-process, IND n=%s d=%d k=%d, loopback worker, %d regions",
			humanN(len(ds.Pts)), DefaultD, DefaultK, len(regions)),
		Header: []string{"shards", "in-proc ns", "pipelined ns", "serial ns", "violations", "remote partials", "wire bytes", "max inflight", "rpc pipelined ns", "rpc serial ns"},
	}
	for si, shards := range ShardGrid {
		opts := s.options(toprr.TASStar)
		local := toprr.NewEngine(ds.Pts, toprr.WithShards(shards))
		localDur, want, wantLens, err := fabricSolvePass(local, regions, &opts)
		if err != nil {
			panic("bench: fabric local solve failed: " + err.Error())
		}

		violations := 0
		var pipeDur, serialDur time.Duration
		var partials, wireBytes, depth int64
		var rpcPipe, rpcSerial int64
		for _, mode := range []struct {
			serial bool
			dur    *time.Duration
			rpc    *int64
		}{{false, &pipeDur, &rpcPipe}, {true, &serialDur, &rpcSerial}} {
			worker, err := startFabricWorkerBench()
			if err != nil {
				panic("bench: fabric worker listen failed: " + err.Error())
			}
			name := fmt.Sprintf("bench-%d-%d-%v", si, shards, mode.serial)
			engine, err := fabricRemoteEngine(ds, shards, worker, name, mode.serial)
			if err != nil {
				panic("bench: fabric coordinator failed: " + err.Error())
			}
			dur, got, gotLens, err := fabricSolvePass(engine, regions, &opts)
			if err != nil {
				panic("bench: fabric remote solve failed: " + err.Error())
			}
			*mode.dur = dur
			if gotLens != wantLens {
				violations++
			}
			for i := range got {
				if got[i] != want[i] {
					violations++
				}
			}
			fs := engine.FabricStats()
			if !mode.serial {
				partials = fs.RemotePartials
				wireBytes = fs.BytesOut + fs.BytesIn
				depth = fs.MaxInflight
			}
			engine.Close()
			rpcNS, err := fabricRPCTime(worker.addr, name+"-rpc", shards, rpcFlat, mode.serial)
			if err != nil {
				panic("bench: fabric rpc measurement failed: " + err.Error())
			}
			*mode.rpc = rpcNS
			worker.srv.Close()
		}
		local.Close()

		n := int64(len(regions))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", localDur.Nanoseconds()/n),
			fmt.Sprintf("%d", pipeDur.Nanoseconds()/n),
			fmt.Sprintf("%d", serialDur.Nanoseconds()/n),
			fmt.Sprintf("%d", violations),
			fmt.Sprintf("%d", partials),
			fmt.Sprintf("%d", wireBytes),
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", rpcPipe),
			fmt.Sprintf("%d", rpcSerial),
		})
	}
	return []*Table{t}
}
