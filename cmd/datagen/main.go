// Command datagen emits synthetic benchmark datasets (IND / COR / ANTI,
// after Börzsönyi et al.) or the simulated real datasets as CSV on
// stdout or to a file.
//
// Usage:
//
//	datagen -dist ANTI -n 100000 -d 4 -seed 7 -o anti.csv
//	datagen -real hotel -o hotel.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"toprr/internal/dataset"
)

// usageError reports a flag-validation failure alongside the usage text
// and exits with the conventional usage status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		dist = flag.String("dist", "IND", "distribution: IND, COR or ANTI")
		real = flag.String("real", "", "simulated real dataset: hotel, house, nba or laptops (overrides -dist)")
		n    = flag.Int("n", 100000, "number of options")
		d    = flag.Int("d", 4, "number of attributes")
		seed = flag.Int64("seed", 7, "generator seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch strings.ToLower(*real) {
	case "":
		dd, err := dataset.ParseDistribution(*dist)
		if err != nil {
			usageError(err)
		}
		// Validate before generating: a non-positive -n or -d would
		// silently emit an empty or degenerate CSV.
		if *n <= 0 {
			usageError(fmt.Errorf("-n must be > 0, got %d", *n))
		}
		if *d < 1 {
			usageError(fmt.Errorf("-d must be >= 1, got %d", *d))
		}
		ds = dataset.Generate(dd, *n, *d, *seed)
	case "hotel":
		ds = dataset.Hotel()
	case "house":
		ds = dataset.House()
	case "nba":
		ds = dataset.NBA()
	case "laptops":
		ds = dataset.Laptops()
	default:
		usageError(fmt.Errorf("unknown real dataset %q (want hotel, house, nba or laptops)", *real))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d options x %d attributes\n", ds.Name, ds.Len(), ds.Dim())
}
