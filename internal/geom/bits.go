package geom

import "math/bits"

// onesCount64 is a local alias so hot loops in other files avoid an
// import of math/bits at every call site.
func onesCount64(x uint64) int { return bits.OnesCount64(x) }

// Bits is a fixed-capacity bitset used to record, for each polytope
// vertex, which halfspaces are tight (satisfied with equality) at it.
// Tight sets drive the combinatorial vertex-adjacency test in Split.
type Bits []uint64

// NewBits returns a bitset able to hold n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set turns bit i on.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports whether bit i is on.
func (b Bits) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// And returns the intersection of b and o as a new bitset.
func (b Bits) And(o Bits) Bits {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	r := make(Bits, n)
	for i := 0; i < n; i++ {
		r[i] = b[i] & o[i]
	}
	return r
}

// Contains reports whether every bit set in o is also set in b.
func (b Bits) Contains(o Bits) bool {
	for i, w := range o {
		var bw uint64
		if i < len(b) {
			bw = b[i]
		}
		if w&^bw != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}
