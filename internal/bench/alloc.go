package bench

// The allocation experiment: testing.Benchmark wrappers around the hot
// operations whose allocation behaviour the repo gates — oR assembly
// (buffered and streaming), the incremental clip fold, warm top-k cache
// lookups and polytope splitting — emitting ns/op, B/op and allocs/op
// rows so the memory trajectory lands in BENCH_alloc.json alongside the
// wall-clock trajectories. cmd/benchrunner's -compare mode diffs these
// rows against the committed bench/BASELINE.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"toprr/internal/core"
	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// AllocBenchNames lists the benchmark rows the alloc experiment emits,
// in emission order. compare mode keys on these names.
var AllocBenchNames = []string{
	"impact_clip_or",
	"assemble_buffered",
	"assemble_streaming",
	"topk_warm_lookup",
	"sharded_topk_warm_lookup",
	"polytope_split",
}

// allocInstance builds the fixed TopRR instance the assemble rows
// measure: a solved mid-size problem whose Vall feeds the assemblers.
func allocInstance() (*topk.Scorer, []core.ImpactVertex) {
	ds := dataset.Generate(dataset.Independent, 2000, 4, 7)
	rng := rand.New(rand.NewSource(11))
	wr := RandomRegion(3, 0.05, 1, rng)
	prob := core.NewProblem(ds.Pts, 10, wr)
	res, err := core.Solve(prob, core.Options{Alg: core.TASStar, Seed: 5})
	if err != nil {
		panic("bench: alloc instance solve failed: " + err.Error())
	}
	return prob.Scorer, res.Vall
}

// clipORHalfspaces mirrors the repo-root BenchmarkImpactClipOR setup: a
// pinned-seed batch of impact-like halfspaces clipped against the box.
func clipORHalfspaces() []geom.Halfspace {
	rng := rand.New(rand.NewSource(3))
	hs := make([]geom.Halfspace, 200)
	for i := range hs {
		a := vec.Of(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		hs[i] = geom.NewHalfspace(a, a.Sum()*0.55)
	}
	return hs
}

// allocBenchmarks returns the named benchmark bodies. Kept as a map so
// Alloc and tests agree on the set.
func allocBenchmarks() map[string]func(b *testing.B) {
	scorer, vall := allocInstance()
	hs := clipORHalfspaces()
	lo, hi := vec.New(4), vec.Of(1, 1, 1, 1)

	wds := dataset.Generate(dataset.Independent, 1000, 4, 7)
	wscorer := topk.NewScorer(wds.Pts)
	wcache := topk.NewCache(wscorer, 10, nil)
	w := vec.Of(0.3, 0.25, 0.2)
	wcache.Get(w) // warm
	shcache := topk.NewShardedCache(wscorer, 10, nil, 4, 0, nil)
	shcache.Get(w) // warm

	box5 := geom.NewBox(vec.New(5), vec.Of(1, 1, 1, 1, 1))
	h5 := geom.NewHalfspace(vec.Of(1, -1, 0.5, -0.5, 0.25), 0.1)

	return map[string]func(b *testing.B){
		"impact_clip_or": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := geom.NewBox(lo, hi)
				for _, h := range hs {
					p = p.Clip(h)
					if p.IsEmpty() {
						b.Fatal("unexpected empty oR")
					}
				}
			}
		},
		"assemble_buffered": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := core.ClipAssembler{}.Assemble(scorer, vall, 5000)
				if len(out.Constraints) == 0 {
					b.Fatal("empty constraints")
				}
			}
		},
		"assemble_streaming": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := core.ClipAssembler{}.NewStream(scorer, 5000)
				for _, iv := range vall {
					st.Push(iv)
				}
				out := st.Finish()
				if len(out.Constraints) == 0 {
					b.Fatal("empty constraints")
				}
			}
		},
		"topk_warm_lookup": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wcache.Get(w)
			}
		},
		"sharded_topk_warm_lookup": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				shcache.Get(w)
			}
		},
		"polytope_split": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				box5.Split(h5)
			}
		},
	}
}

// Alloc runs the allocation micro-benchmarks and renders one row per
// operation. Scale is ignored: the workloads are pinned so B/op and
// allocs/op stay comparable across commits and machines.
func Alloc(s Scale) []*Table {
	t := &Table{
		ID:      "Alloc",
		Caption: "hot-path allocation profile (pinned workloads; gated by bench/BASELINE.json)",
		Header:  []string{"bench", "ns/op", "B/op", "allocs/op"},
	}
	benches := allocBenchmarks()
	for _, name := range AllocBenchNames {
		fn, ok := benches[name]
		if !ok {
			continue
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.NsPerOp()),
			fmt.Sprintf("%d", r.AllocedBytesPerOp()),
			fmt.Sprintf("%d", r.AllocsPerOp()),
		})
	}
	return []*Table{t}
}
