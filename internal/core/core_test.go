package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/geom"
	"toprr/internal/vec"
)

// fig1Dataset is the 2-D running example of the paper (Figure 1).
func fig1Dataset() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}
}

func fig1Problem() Problem {
	return NewProblem(fig1Dataset(), 3, PrefBox(vec.Of(0.2), vec.Of(0.8)))
}

// TestFig1Vall checks the paper's analysis of the running example: the
// kIPR boundaries inside wR = [0.2, 0.8] fall at w = 0.4 and w = 2/3, so
// TAS produces Vall = {0.2, 0.4, 2/3, 0.8} exactly (Section 3.3), while
// PAC — which refines down to order-invariant regions — produces a
// superset that additionally contains the p1/p2 order swap at w = 5/7.
func TestFig1Vall(t *testing.T) {
	want := []float64{0.2, 0.4, 2.0 / 3.0, 0.8}

	res, err := Solve(fig1Problem(), Options{Alg: TAS})
	if err != nil {
		t.Fatal(err)
	}
	got := vallCoords(res)
	if len(got) != len(want) {
		t.Fatalf("TAS: Vall = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("TAS: Vall = %v, want %v", got, want)
		}
	}

	pac, err := Solve(fig1Problem(), Options{Alg: PAC})
	if err != nil {
		t.Fatal(err)
	}
	pacGot := vallCoords(pac)
	if len(pacGot) < len(want) {
		t.Fatalf("PAC: Vall = %v, too small", pacGot)
	}
	for _, w := range append(append([]float64(nil), want...), 5.0/7.0) {
		found := false
		for _, g := range pacGot {
			if math.Abs(g-w) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("PAC: Vall %v missing expected vertex %v", pacGot, w)
		}
	}
}

func vallCoords(res *Result) []float64 {
	got := make([]float64, 0, len(res.Vall))
	for _, iv := range res.Vall {
		got = append(got, iv.W[0])
	}
	sort.Float64s(got)
	return got
}

// TestFig1KthScores verifies TopK(v) at every vertex of Vall against
// hand-computed values.
func TestFig1KthScores(t *testing.T) {
	res, err := Solve(fig1Problem(), Options{Alg: TAS})
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]float64{
		0.2:       0.5,        // p1: 0.4 + 0.5*0.2
		0.4:       0.6,        // p1 = p4 tie
		2.0 / 3.0: 7.0 / 15.0, // p3 = p4 tie: 0.2 + 0.4*(2/3)
		0.8:       0.52,       // p3: 0.2 + 0.4*0.8
	}
	for _, iv := range res.Vall {
		found := false
		for w, score := range want {
			if math.Abs(iv.W[0]-w) < 1e-6 {
				if math.Abs(iv.KthScore-score) > 1e-9 {
					t.Errorf("TopK(%v) = %v, want %v", w, iv.KthScore, score)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected Vall vertex %v", iv.W)
		}
	}
}

// TestFig1RegionMembership checks the gray region of Figure 1(b) through
// membership probes.
func TestFig1RegionMembership(t *testing.T) {
	res, err := Solve(fig1Problem(), Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if res.OR.IsEmpty() {
		t.Fatal("oR must not be empty")
	}
	// The top corner is always top-ranking.
	if !res.IsTopRanking(vec.Of(1, 1)) {
		t.Error("(1,1) must be in oR")
	}
	// p2 = (0.7, 0.9) is in every top-3 throughout wR (it is in the
	// top-3 set on every kIPR of the example), so it must lie in oR.
	if !res.IsTopRanking(vec.Of(0.7, 0.9)) {
		t.Error("p2 must be in oR")
	}
	// (0.5, 0.5) violates oH(0.4): 0.4*0.5 + 0.6*0.5 = 0.5 < 0.6.
	if res.IsTopRanking(vec.Of(0.5, 0.5)) {
		t.Error("(0.5,0.5) must be outside oR")
	}
	if w := res.WitnessNonTopRanking(vec.Of(0.5, 0.5)); w == nil {
		t.Error("no witness for excluded point")
	}
	// p6 is far from top ranking.
	if res.IsTopRanking(vec.Of(0.1, 0.1)) {
		t.Error("p6 must be outside oR")
	}
}

// TestFig1OH04Binding pins the degeneracy regression this implementation
// guards against: the impact halfspace at the interior transition vertex
// w = 0.4 is binding, so missing it (by accepting [0.2, 2/3] as one
// region) would wrongly enlarge oR. The probe point satisfies the other
// three halfspaces but violates oH(0.4).
func TestFig1OH04Binding(t *testing.T) {
	res, err := Solve(fig1Problem(), Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	probe := vec.Of(0.4429, 0.5143)
	if res.IsTopRanking(probe) {
		t.Fatal("probe violating oH(0.4) must be excluded from oR")
	}
	// Brute-force confirmation: at w = 0.35 the probe ranks below 3.
	if r := Rank(res.Problem.Scorer, vec.Of(0.35), probe); r <= 3 {
		t.Fatalf("probe rank at w=0.35 is %d; test premise broken", r)
	}
}

// randomProblem builds a random TopRR instance for agreement testing.
func randomProblem(rng *rand.Rand, n, d, k int) Problem {
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	m := d - 1
	lo, hi := vec.New(m), vec.New(m)
	for j := 0; j < m; j++ {
		lo[j] = 0.1 + 0.5*rng.Float64()
		hi[j] = lo[j] + 0.05 + 0.1*rng.Float64()
	}
	// Keep the box inside the weight simplex.
	scale := 0.9 / math.Max(1, hi.Sum())
	for j := 0; j < m; j++ {
		lo[j] *= scale
		hi[j] *= scale
	}
	return NewProblem(pts, k, PrefBox(lo, hi))
}

// TestAlgorithmsAgree verifies that PAC, TAS and TAS* compute the same
// oR on randomized instances, compared through membership of sampled
// probe points (both inside and outside).
func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 12; iter++ {
		d := 2 + iter%3 // dimensions 2..4
		prob := randomProblem(rng, 60, d, 1+rng.Intn(4))
		var results []*Result
		for _, alg := range []Algorithm{PAC, TAS, TASStar} {
			res, err := Solve(prob, Options{Alg: alg, Seed: int64(iter)})
			if err != nil {
				t.Fatalf("iter %d %v: %v", iter, alg, err)
			}
			results = append(results, res)
		}
		for probe := 0; probe < 300; probe++ {
			o := vec.New(d)
			for j := range o {
				o[j] = rng.Float64()
			}
			in0 := results[0].IsTopRanking(o)
			for a := 1; a < 3; a++ {
				if results[a].IsTopRanking(o) != in0 {
					t.Fatalf("iter %d: algorithms disagree on %v (PAC=%v)", iter, o, in0)
				}
			}
		}
	}
}

// TestSoundness checks, against the brute-force rank oracle, that every
// sampled point of oR is top-ranking for every sampled preference.
func TestSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for iter := 0; iter < 10; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 80, d, 1+rng.Intn(5))
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		if res.OR.IsEmpty() {
			t.Fatal("oR empty")
		}
		for probe := 0; probe < 20; probe++ {
			o := res.OR.SamplePoint(rng)
			if w := VerifyTopRanking(prob, o, 60, rng); w != nil {
				t.Fatalf("iter %d: point %v of oR ranks below %d at w=%v",
					iter, o, prob.K, w)
			}
		}
	}
}

// TestMaximality checks that points just outside oR have a witness
// preference in wR where they fail to make the top-k: oR misses nothing.
func TestMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for iter := 0; iter < 8; iter++ {
		d := 2 + iter%2
		prob := randomProblem(rng, 60, d, 1+rng.Intn(4))
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.OR.Facets() {
			h := f.H.Normalize()
			// Skip the option-space box facets: outside them is outside
			// the domain, not a maximality question.
			if isBoxFacet(h, d) {
				continue
			}
			// Push the facet centroid slightly outside.
			pts := make([]vec.Vector, len(f.VertexIx))
			for i, vi := range f.VertexIx {
				pts[i] = res.OR.Verts[vi].Point
			}
			out := vec.Centroid(pts).AddScaled(-1e-4, h.A)
			inDomain := true
			for _, x := range out {
				if x < 0 || x > 1 {
					inDomain = false
				}
			}
			if !inDomain {
				continue
			}
			if w := res.WitnessNonTopRanking(out); w == nil {
				t.Fatalf("iter %d: no witness for point outside facet %v", iter, h)
			} else if r := Rank(prob.Scorer, w, out); r <= prob.K {
				t.Fatalf("iter %d: witness w=%v does not reject the point (rank %d)", iter, w, r)
			}
		}
	}
}

func isBoxFacet(h geom.Halfspace, d int) bool {
	nonzero := 0
	for _, a := range h.A {
		if math.Abs(a) > 1e-9 {
			nonzero++
		}
	}
	return nonzero == 1
}

// TestOptimizationsPreserveResult runs TAS* with each optimization
// disabled in turn and verifies the answer never changes (Section 6.5's
// premise: the optimizations trade work, not correctness).
func TestOptimizationsPreserveResult(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 6; iter++ {
		prob := randomProblem(rng, 70, 3, 2+rng.Intn(4))
		base, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		variants := []Options{
			{Alg: TASStar, DisableLemma5: true},
			{Alg: TASStar, DisableLemma7: true},
			{Alg: TASStar, DisableKSwitch: true},
			{Alg: TASStar, DisableLemma5: true, DisableLemma7: true, DisableKSwitch: true},
		}
		for vi, opt := range variants {
			res, err := Solve(prob, opt)
			if err != nil {
				t.Fatalf("variant %d: %v", vi, err)
			}
			for probe := 0; probe < 200; probe++ {
				o := vec.New(3)
				for j := range o {
					o[j] = rng.Float64()
				}
				if res.IsTopRanking(o) != base.IsTopRanking(o) {
					t.Fatalf("iter %d variant %d: oR differs at %v", iter, vi, o)
				}
			}
		}
	}
}

// TestLemma7ReducesVall confirms the instrumentation direction of
// Figure 13: enabling Lemma 7 must not increase |Vall|.
func TestLemma7ReducesVall(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	prob := randomProblem(rng, 200, 3, 10)
	on, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Solve(prob, Options{Alg: TASStar, DisableLemma7: true})
	if err != nil {
		t.Fatal(err)
	}
	// Randomized fallback pair choices allow tiny fluctuations; only a
	// systematic increase indicates a defect.
	if float64(on.Stats.VallSize) > 1.1*float64(off.Stats.VallSize)+5 {
		t.Errorf("Lemma 7 increased |Vall|: %d > %d", on.Stats.VallSize, off.Stats.VallSize)
	}
}

// TestLemma5ReducesProcessedOptions confirms the Figure 12 direction:
// Lemma 5 shrinks the processed option set.
func TestLemma5ReducesProcessedOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	prob := randomProblem(rng, 200, 3, 10)
	on, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.Lemma5Prunes == 0 {
		t.Skip("instance did not trigger Lemma 5; acceptable but uninformative")
	}
	if on.Stats.ProcessedMin >= on.Stats.FilteredOptions {
		t.Errorf("Lemma 5 pruned %d options but ProcessedMin=%d >= |D'|=%d",
			on.Stats.Lemma5Prunes, on.Stats.ProcessedMin, on.Stats.FilteredOptions)
	}
}

// TestK1 exercises the k = 1 special case (Lemma 6): oR is defined by
// the impact halfspaces at wR's own vertices whenever the top-1 is
// constant, and remains correct when it is not.
func TestK1(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for iter := 0; iter < 5; iter++ {
		prob := randomProblem(rng, 50, 3, 1)
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			o := res.OR.SamplePoint(rng)
			if w := VerifyTopRanking(prob, o, 50, rng); w != nil {
				t.Fatalf("k=1: point of oR not top-1 at %v", w)
			}
		}
	}
}

// TestWRSinglePoint degenerates wR to (numerically) a point; the answer
// must equal the single impact halfspace.
func TestWRTiny(t *testing.T) {
	pts := fig1Dataset()
	prob := NewProblem(pts, 3, PrefBox(vec.Of(0.5), vec.Of(0.5+1e-7)))
	res, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	// At w=0.5 the top-3 is p2(0.8), p1(0.65), p4(0.55): threshold 0.55.
	o := vec.Of(0.1, 0.93) // 0.05 + 0.465 = 0.515 < 0.55: outside
	if res.IsTopRanking(o) {
		t.Error("point below the w=0.5 threshold must be outside")
	}
	o2 := vec.Of(0.2, 0.95) // 0.1 + 0.475 = 0.575 > 0.55: inside
	if !res.IsTopRanking(o2) {
		t.Error("point above the w=0.5 threshold must be inside")
	}
}

// TestKEqualsN runs with k equal to the dataset size: every option is in
// the top-k, so oR must be the entire option box.
func TestKEqualsN(t *testing.T) {
	pts := fig1Dataset()
	prob := NewProblem(pts, len(pts), PrefBox(vec.Of(0.3), vec.Of(0.6)))
	res, err := Solve(prob, Options{Alg: TAS})
	if err != nil {
		t.Fatal(err)
	}
	// With k = n, TopK(w) is the minimum score; any option scoring at
	// least the worst option everywhere is top-ranking. The origin
	// scores 0 <= min score, so generally outside; the unit corner is in.
	if !res.IsTopRanking(vec.Of(1, 1)) {
		t.Error("unit corner must be top-ranking")
	}
	if res.IsTopRanking(vec.Of(0, 0)) {
		t.Error("origin cannot outrank the worst option")
	}
}

// TestStatsPopulated sanity-checks the instrumentation counters.
func TestStatsPopulated(t *testing.T) {
	res, err := Solve(fig1Problem(), Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.InputOptions != 6 {
		t.Errorf("InputOptions = %d", st.InputOptions)
	}
	if st.FilteredOptions == 0 || st.FilteredOptions > 6 {
		t.Errorf("FilteredOptions = %d", st.FilteredOptions)
	}
	if st.Regions == 0 || st.VallSize == 0 || st.TopKQueries == 0 {
		t.Errorf("counters not populated: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Error("Elapsed not set")
	}
}

// TestMaxRegionsGuard verifies the safety valve errors out rather than
// looping.
func TestMaxRegionsGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	prob := randomProblem(rng, 300, 4, 10)
	if _, err := Solve(prob, Options{Alg: TAS, MaxRegions: 2}); err == nil {
		t.Error("expected MaxRegions error")
	}
}

// TestUTKFilterExactness compares the UTK filter against a sampled union
// of top-k results (must be covered) and the r-skyband (must contain the
// filter output).
func TestUTKFilterExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	pts := make([]vec.Vector, 150)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	lo, hi := vec.Of(0.2, 0.25), vec.Of(0.3, 0.35)
	wr := PrefBox(lo, hi)
	k := 4
	utk, err := UTKFilter(pts, k, wr)
	if err != nil {
		t.Fatal(err)
	}
	inUTK := make(map[int]bool, len(utk))
	for _, i := range utk {
		inUTK[i] = true
	}
	prob := NewProblem(pts, k, wr)
	for iter := 0; iter < 400; iter++ {
		w := wr.SamplePoint(rng)
		for _, idx := range prob.Scorer.TopK(w, k, nil).Ordered {
			if !inUTK[idx] {
				t.Fatalf("top-%d member %d at %v missing from UTK filter", k, idx, w)
			}
		}
	}
	// UTK is the tightest filter: no larger than the r-skyband.
	if len(utk) > prob.Scorer.Len() {
		t.Error("UTK output larger than the dataset")
	}
}

// TestPrefBoxSimplexClipping ensures wR respects the weight simplex.
func TestPrefBoxSimplexClipping(t *testing.T) {
	wr := PrefBox(vec.Of(0.5, 0.4), vec.Of(0.9, 0.8))
	for _, v := range wr.VertexPoints() {
		if v.Sum() > 1+1e-9 {
			t.Errorf("vertex %v violates the simplex constraint", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty region")
		}
	}()
	PrefBox(vec.Of(0.9, 0.9), vec.Of(0.95, 0.95))
}

// TestProblemValidation exercises NewProblem's panics.
func TestProblemValidation(t *testing.T) {
	pts := fig1Dataset()
	for _, fn := range []func(){
		func() { NewProblem(pts, 0, PrefBox(vec.Of(0.2), vec.Of(0.4))) },
		func() { NewProblem(pts, 7, PrefBox(vec.Of(0.2), vec.Of(0.4))) },
		func() { NewProblem(pts, 2, PrefBox(vec.Of(0.2, 0.2), vec.Of(0.3, 0.3))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestRealisticDatasetSmoke runs TAS* end to end on slices of the
// simulated real datasets.
func TestRealisticDatasetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end run")
	}
	lap := dataset.Laptops()
	prob := NewProblem(lap.Pts, 3, PrefBox(vec.Of(0.7), vec.Of(0.8)))
	res, err := Solve(prob, Options{Alg: TASStar})
	if err != nil {
		t.Fatal(err)
	}
	if res.OR.IsEmpty() {
		t.Fatal("laptop case study oR empty")
	}
	rng := rand.New(rand.NewSource(42))
	o := res.OR.SamplePoint(rng)
	if w := VerifyTopRanking(prob, o, 200, rng); w != nil {
		t.Fatalf("case study point not top-3 at %v", w)
	}
}

func TestAlgorithmString(t *testing.T) {
	if PAC.String() != "PAC" || TAS.String() != "TAS" || TASStar.String() != "TAS*" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should still render")
	}
}
