package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"testing"
)

func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }
func putU32(b []byte, v uint32)     { binary.BigEndian.PutUint32(b, v) }

// sampleFrames covers every message type with non-trivial payloads.
func sampleFrames() []Frame {
	return []Frame{
		{Type: FrameHello, ReqID: 1, Payload: Hello{Dataset: "laptops"}.encode()},
		{Type: FrameHelloAck, ReqID: 1, Payload: HelloAck{Gen: 42, Shards: 8}.encode()},
		{Type: FrameSync, ReqID: 2, Payload: SyncMsg{Gen: 7, Shards: 4, Dim: 3, Pts: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}}.encode()},
		{Type: FramePartialReq, ReqID: 3, Payload: PartialReq{Gen: 7, Shard: 2, K: 5, W: []float64{0.25, 0.5}}.encode()},
		{Type: FramePartialReq, ReqID: 6, Payload: PartialReq{Gen: 7, Shard: 1, K: 3, W: []float64{0.4}, Members: []uint32{2, 5, 9}}.encode()},
		{Type: FramePartialResp, ReqID: 3, Payload: PartialResp{Gen: 7, Idx: []uint32{4, 1, 9}, Scores: []float64{0.9, 0.9, 0.1}}.encode()},
		{Type: FrameStatsReq, ReqID: 4},
		{Type: FrameStatsResp, ReqID: 4, Payload: StatsResp{Gen: 7, Partials: 100, Hits: 60}.encode()},
		{Type: FrameError, ReqID: 5, Payload: ErrorMsg{Code: CodeGenMismatch, Msg: "resident 6, want 7"}.encode()},
	}
}

// TestFrameRoundTrip: every frame type survives encode -> decode, both
// through the buffer API and the stream API, with exact payload bytes.
func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf := AppendFrame(nil, f)
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("type %d: decode: %v", f.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("type %d: consumed %d of %d bytes", f.Type, n, len(buf))
		}
		if got.Type != f.Type || got.ReqID != f.ReqID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("type %d: round trip mismatch: %+v != %+v", f.Type, got, f)
		}

		var w bytes.Buffer
		if _, err := WriteFrame(&w, f); err != nil {
			t.Fatal(err)
		}
		got2, n2, err := ReadFrame(&w)
		if err != nil || n2 != len(buf) {
			t.Fatalf("type %d: stream decode: n=%d err=%v", f.Type, n2, err)
		}
		if got2.Type != f.Type || got2.ReqID != f.ReqID || !bytes.Equal(got2.Payload, f.Payload) {
			t.Fatalf("type %d: stream round trip mismatch", f.Type)
		}
	}
}

// TestFrameDecodeChained: frames decode one after another from a single
// buffer, each reporting its exact consumed length.
func TestFrameDecodeChained(t *testing.T) {
	frames := sampleFrames()
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	for i, want := range frames {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want.Type || f.ReqID != want.ReqID {
			t.Fatalf("frame %d: got type %d req %d", i, f.Type, f.ReqID)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
}

// TestFrameTorn: every proper prefix of a valid frame is
// ErrFrameTooShort — never corrupt, never a bogus success.
func TestFrameTorn(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: FramePartialReq, ReqID: 9, Payload: PartialReq{Gen: 3, Shard: 1, K: 2, W: []float64{0.5}}.encode()})
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeFrame(full[:cut])
		if !errors.Is(err, ErrFrameTooShort) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrFrameTooShort", cut, len(full), err)
		}
	}
	// Stream form: a reader that ends mid-frame reports a torn frame
	// (or EOF when nothing at all arrived).
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrFrameTooShort) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("stream prefix %d: err = %v", cut, err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestFrameCorruption: any single flipped bit is caught — by the CRC,
// the version check, the type range or the length bound — and never
// decodes as a different valid frame.
func TestFrameCorruption(t *testing.T) {
	orig := AppendFrame(nil, Frame{Type: FramePartialResp, ReqID: 11, Payload: PartialResp{Gen: 5, Idx: []uint32{2}, Scores: []float64{1.5}}.encode()})
	want, _, err := DecodeFrame(orig)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(orig)*8; bit++ {
		mut := append([]byte(nil), orig...)
		mut[bit/8] ^= 1 << (bit % 8)
		f, _, err := DecodeFrame(mut)
		if err == nil && (f.Type != want.Type || f.ReqID != want.ReqID || !bytes.Equal(f.Payload, want.Payload)) {
			t.Fatalf("bit %d: corrupt frame decoded as %+v", bit, f)
		}
		// A flipped length-prefix bit may leave a frame that merely
		// looks torn; that is fine (the stream stalls and the reader
		// gives up). What must never happen is a successful decode of
		// different content — checked above.
		if err != nil && !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTooShort) && !errors.Is(err, ErrBadVersion) {
			t.Fatalf("bit %d: unexpected error class %v", bit, err)
		}
	}
}

// TestFrameBadVersion: a frame from a different protocol version is
// rejected with ErrBadVersion (CRC recomputed so only the version
// differs).
func TestFrameBadVersion(t *testing.T) {
	f := Frame{Type: FrameHello, ReqID: 1, Payload: Hello{Dataset: "x"}.encode()}
	buf := AppendFrame(nil, f)
	// Rebuild with a bumped version byte and a matching CRC.
	body := buf[4 : len(buf)-4]
	body[0] = ProtoVersion + 1
	crc := crc32Checksum(body)
	putU32(buf[len(buf)-4:], crc)
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// TestPayloadDecodersRejectGarbage: the typed payload decoders fail
// cleanly on short and oversized inputs instead of panicking or
// over-reading.
func TestPayloadDecodersRejectGarbage(t *testing.T) {
	if _, err := decodeSync(SyncMsg{Gen: 1, Shards: 1, Dim: 2, Pts: []float64{1, 2}}.encode()[:7]); err == nil {
		t.Error("short sync decoded")
	}
	if _, err := decodePartialReq([]byte{0, 1, 2}); err == nil {
		t.Error("short partial req decoded")
	}
	if _, err := decodePartialResp(append(PartialResp{Gen: 1}.encode(), 0xFF)); err == nil {
		t.Error("partial resp with trailing byte decoded")
	}
	huge := PartialReq{Gen: 1, Shard: 0, K: 1, W: make([]float64, 2000)}.encode()
	if _, err := decodePartialReq(huge); err == nil {
		t.Error("oversized vertex accepted")
	}
	if _, err := decodePartialReq(PartialReq{Gen: 1, K: 1, W: []float64{0.5}, Members: []uint32{7, 3}}.encode()); err == nil {
		t.Error("non-ascending member list accepted")
	}
	torn := PartialReq{Gen: 1, K: 1, W: []float64{0.5}, Members: []uint32{3, 7}}.encode()
	if _, err := decodePartialReq(torn[:len(torn)-2]); err == nil {
		t.Error("torn member list accepted")
	}
	if _, err := decodeHello(Hello{Dataset: "abc"}.encode()[:5]); err == nil {
		t.Error("short hello decoded")
	}
}

// TestScoreBitsExact: scores cross the wire as raw IEEE-754 bits —
// including negative zero and subnormals — so merge comparisons see
// identical float64s on both sides.
func TestScoreBitsExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1e-308, math.MaxFloat64, 0.1 + 0.2}
	resp := PartialResp{Gen: 1, Idx: make([]uint32, len(vals)), Scores: vals}
	got, err := decodePartialResp(resp.encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("score %d: bits %x != %x", i, math.Float64bits(got.Scores[i]), math.Float64bits(vals[i]))
		}
	}
	if !reflect.DeepEqual(got.Idx, resp.Idx) {
		t.Fatal("idx mismatch")
	}
}

// FuzzFrameDecode: DecodeFrame must never panic, never over-consume,
// and anything it accepts must re-encode to a decodable frame
// (round-trip closure). Runs in CI's fuzz-smoke lane.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendFrame(nil, fr)
		fr2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame fails decode: %v", err)
		}
		if fr2.Type != fr.Type || fr2.ReqID != fr.ReqID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
