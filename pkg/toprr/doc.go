// Package toprr is the public API of the TopRR engine: exact maximal
// top-ranking regions (Tang et al., PVLDB 2019) over linear top-k
// preference queries, plus the downstream placement tools.
//
// The package is a stable facade over the internal pipeline
// (prefilter → partition → assemble). One-shot queries go through
// Solve; services that answer many queries over the same dataset
// should build an Engine, which reuses per-dataset state (interned
// split hyperplanes, memoized top-k results) across queries and
// batches.
//
//	prob := toprr.NewProblem(points, k, toprr.PrefBox(lo, hi))
//	res, err := toprr.Solve(ctx, prob, toprr.Options{Alg: toprr.TASStar})
//
// All entry points honor context cancellation and deadlines.
//
// # Generations and pinning
//
// An Engine's dataset is mutable and versioned. Every Apply batch is
// atomic — all ops validate or none apply — and publishes exactly one
// new generation; the initial dataset is generation 1. Reads are
// snapshot-isolated: Solve and SolveBatch pin the generation current
// when they start, and Engine.Snapshot + SolveAt/SolveBatchAt pin one
// explicitly across several calls. A pinned snapshot is immutable; a
// solve racing a mutation answers exactly for the generation it was
// pinned to. Holding a Snapshot value is what keeps a generation alive:
// drop it and the garbage collector reclaims the generation's
// copy-on-write state. CacheStats.LiveGenerations counts the
// generations still reachable, so a pin held forever is visible.
//
// # Cache invalidation
//
// The engine shares two caches across queries: interned splitting
// hyperplanes (which depend only on an option pair) and memoized top-k
// results keyed by (k, candidate-set) configuration. Both are
// generation-aware and advance incrementally with each Apply: only
// entries naming a mutated slot are dropped, plus whole-dataset top-k
// configurations (any op changes dataset membership); the rest of the
// warm state carries forward, because its options are bit-identical in
// both generations. Cache accesses verify the solve's pinned
// generation, so a stale solve can neither read nor publish another
// generation's geometry. WithCacheLimits bounds both caches;
// CacheStats reports occupancy and evictions.
//
// # The sharded solve plane
//
// An engine's solve plane is sharded (WithShards; default derived from
// GOMAXPROCS): the option set splits into stable content-hashed
// shards, each with its own top-k memo (the hyperplane cache likewise
// stripes its lock and budget S ways, by option pair),
// and solves fan out with one worker per shard (capped at GOMAXPROCS)
// over the channel scheduler, assembling through the per-shard
// constraint-intersection merge stage. Sharded and unsharded solves
// produce identical regions; sharding buys parallelism without
// cache-lock contention, per-shard incremental invalidation under
// mutations (an insert invalidates one shard, not the whole
// whole-dataset configuration), split cache budgets, and the per-shard
// breakdowns in CacheStats.ShardStats and Stats.ShardStats. A durable
// engine persists the shard count; a reopened dataset keeps its
// layout.
//
// # Durability
//
// By default an Engine is in-memory: a restart reverts the dataset to
// whatever the process loads next. WithPersistence(dir) makes it
// durable — every Apply batch is write-ahead-logged and fsynced before
// its generation publishes (concurrent batches group-commit behind one
// shared fsync instead of serializing on the disk), OpenEngine
// recovers the dataset from the directory on boot, and a
// snapshot/compaction cycle keeps the log bounded. Engine.Close releases the log cleanly. The recovery
// contract — what is durable when Apply returns, and the crash
// windows — is specified in docs/PERSISTENCE.md.
package toprr
