// Package geom implements the convex-geometry substrate of the TopRR
// reproduction: bounded convex polytopes in arbitrary (small) dimension,
// represented in the paper's hybrid facet-based model — the bounding
// halfspaces together with the vertex set, where every vertex knows
// which halfspaces are tight at it (Section 4.2.2 of the paper).
//
// The package replaces the qhull dependency of the original C++
// implementation. It supports the two operations the paper needs:
//
//   - splitting a polytope by a hyperplane into its two sides
//     (preference-region splitting, Section 4.2), and
//   - incremental halfspace intersection starting from a bounding box
//     (assembly of the option region oR from impact halfspaces,
//     Theorem 1).
package geom

import (
	"fmt"
	"math"

	"toprr/internal/vec"
)

// Eps is the geometric tolerance shared by all predicates in this package.
const Eps = 1e-9

// vertexQuantum is the grid used to deduplicate vertices by coordinates.
const vertexQuantum = 1e-8

// Halfspace is the closed region {x : A·x >= B}. Its boundary hyperplane
// is {x : A·x = B}, so the same struct doubles as a hyperplane where the
// orientation matters only for Split direction.
type Halfspace struct {
	A vec.Vector
	B float64
}

// NewHalfspace builds A·x >= B.
func NewHalfspace(a vec.Vector, b float64) Halfspace { return Halfspace{A: a, B: b} }

// Eval returns A·x - B: positive strictly inside, ~0 on the boundary,
// negative strictly outside.
func (h Halfspace) Eval(x vec.Vector) float64 { return h.A.Dot(x) - h.B }

// Flip returns the complementary halfspace {x : A·x <= B}, expressed in
// the canonical >= form.
func (h Halfspace) Flip() Halfspace { return Halfspace{A: h.A.Scale(-1), B: -h.B} }

// Normalize scales the halfspace so that ||A|| = 1, which makes Eval a
// signed Euclidean distance. It panics on a zero normal.
func (h Halfspace) Normalize() Halfspace {
	n := h.A.Norm()
	if n < Eps {
		panic("geom: zero normal in halfspace")
	}
	return Halfspace{A: h.A.Scale(1 / n), B: h.B / n}
}

// Contains reports whether x satisfies the halfspace within Eps.
func (h Halfspace) Contains(x vec.Vector) bool { return h.Eval(x) >= -Eps }

// String renders the halfspace for debugging.
func (h Halfspace) String() string { return fmt.Sprintf("%v·x >= %.6g", h.A, h.B) }

// Side classifies a signed evaluation into -1 (outside), 0 (on the
// boundary) or +1 (inside), using tolerance Eps.
func Side(eval float64) int {
	switch {
	case eval > Eps:
		return 1
	case eval < -Eps:
		return -1
	default:
		return 0
	}
}

// crossingParam returns t in (0,1) such that the point (1-t)*u + t*v lies
// on the hyperplane, given the signed evaluations of u (negative side)
// and v (positive side).
func crossingParam(evalU, evalV float64) float64 {
	t := evalU / (evalU - evalV)
	// Clamp for numeric safety; callers guarantee opposite strict sides.
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// almostEqual reports |a-b| <= Eps scaled by magnitude.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= Eps*(1+math.Abs(a)+math.Abs(b))
}
