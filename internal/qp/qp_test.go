package qp

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

func TestUnconstrainedMinimizer(t *testing.T) {
	// min ½(2x² + 2y²) + (-2x - 4y): minimizer (1, 2).
	x, err := SolveDiagonal(vec.Of(2, 2), vec.Of(-2, -4), nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(1, 2), 1e-9) {
		t.Errorf("x = %v, want (1,2)", x)
	}
}

func TestProjectionOntoHalfplane(t *testing.T) {
	// Nearest point to (1,1) with x + y <= 1: projection (0.5, 0.5).
	x, err := NearestPoint(vec.Of(1, 1),
		[]vec.Vector{vec.Of(1, 1)}, vec.Of(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(0.5, 0.5), 1e-8) {
		t.Errorf("x = %v, want (0.5,0.5)", x)
	}
}

func TestInactiveConstraint(t *testing.T) {
	// Constraint far away: solution is the unconstrained projection.
	x, err := NearestPoint(vec.Of(0.3, 0.4),
		[]vec.Vector{vec.Of(1, 1)}, vec.Of(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(0.3, 0.4), 1e-8) {
		t.Errorf("x = %v, want target itself", x)
	}
}

func TestMinSquaredNormOverPolytope(t *testing.T) {
	// min x² + y² with x + y >= 1 (as -x - y <= -1): optimum (0.5, 0.5).
	x, err := MinSquaredNorm(2,
		[]vec.Vector{vec.Of(-1, -1)}, vec.Of(-1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(0.5, 0.5), 1e-8) {
		t.Errorf("x = %v, want (0.5,0.5)", x)
	}
}

func TestMultipleActiveConstraints(t *testing.T) {
	// min ||x - (2,2)||² with x <= 1, y <= 1: optimum (1,1).
	x, err := NearestPoint(vec.Of(2, 2),
		[]vec.Vector{vec.Of(1, 0), vec.Of(0, 1)}, vec.Of(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(1, 1), 1e-7) {
		t.Errorf("x = %v, want (1,1)", x)
	}
}

func TestRejectsNonPositiveQ(t *testing.T) {
	if _, err := SolveDiagonal(vec.Of(0, 1), vec.Of(0, 0), nil, nil, Options{}); err == nil {
		t.Error("expected error for q with zero entry")
	}
	if _, err := SolveDiagonal(vec.Of(1), vec.Of(0), []vec.Vector{vec.Of(1)}, vec.Of(1, 2), Options{}); err == nil {
		t.Error("expected error for G/h mismatch")
	}
}

// TestKKTResiduals verifies first-order optimality on random projection
// problems: the solution must be feasible, and the gradient must be a
// nonnegative combination of active constraint normals. We check the
// practical consequence: the solution matches a projected-gradient
// reference run to convergence.
func TestKKTResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		g := make([]vec.Vector, m)
		h := vec.New(m)
		for i := range g {
			g[i] = vec.New(n)
			for j := range g[i] {
				g[i][j] = rng.NormFloat64()
			}
			h[i] = rng.Float64() // origin always feasible
		}
		target := vec.New(n)
		for j := range target {
			target[j] = rng.NormFloat64() * 2
		}
		x, err := NearestPoint(target, g, h, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Feasibility.
		for i := range g {
			if g[i].Dot(x) > h[i]+1e-6 {
				t.Fatalf("iter %d: solution infeasible by %v", iter, g[i].Dot(x)-h[i])
			}
		}
		// Optimality versus a fine projected search: no feasible point in
		// a small neighborhood may be closer to the target.
		dBest := x.Dist(target)
		for probe := 0; probe < 300; probe++ {
			dir := vec.New(n)
			for j := range dir {
				dir[j] = rng.NormFloat64()
			}
			y := x.AddScaled(0.01, dir)
			feas := true
			for i := range g {
				if g[i].Dot(y) > h[i]+1e-9 {
					feas = false
					break
				}
			}
			if feas && y.Dist(target) < dBest-1e-5 {
				t.Fatalf("iter %d: found feasible improvement, not optimal", iter)
			}
		}
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// x <= -1 and -x <= -2 (i.e. x >= 2): contradictory.
	_, err := MinSquaredNorm(1,
		[]vec.Vector{vec.Of(1), vec.Of(-1)}, vec.Of(-1, -2), Options{MaxSweeps: 2000000})
	if err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestProjectionIdempotent(t *testing.T) {
	// Projecting a feasible point returns the point itself.
	g := []vec.Vector{vec.Of(1, 1)}
	h := vec.Of(2)
	x, err := NearestPoint(vec.Of(0.5, 0.5), g, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(vec.Of(0.5, 0.5), 1e-9) {
		t.Errorf("projection moved a feasible point: %v", x)
	}
}

func TestContractionProperty(t *testing.T) {
	// Projections onto a convex set are 1-Lipschitz:
	// ||P(a)-P(b)|| <= ||a-b||.
	rng := rand.New(rand.NewSource(13))
	g := []vec.Vector{vec.Of(1, 0.5), vec.Of(-0.5, 1), vec.Of(0, -1)}
	h := vec.Of(1, 1, 0.2)
	for iter := 0; iter < 100; iter++ {
		a := vec.Of(rng.NormFloat64()*3, rng.NormFloat64()*3)
		b := vec.Of(rng.NormFloat64()*3, rng.NormFloat64()*3)
		pa, err1 := NearestPoint(a, g, h, Options{})
		pb, err2 := NearestPoint(b, g, h, Options{})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if pa.Dist(pb) > a.Dist(b)+1e-6 {
			t.Fatalf("projection expanded distances: %v > %v", pa.Dist(pb), a.Dist(b))
		}
	}
}

func TestCostMonotoneInConstraintTightness(t *testing.T) {
	// min Σx² with Σx >= c is (c/n,...): cost c²/n increases with c.
	var prev float64 = -1
	for _, c := range []float64{0.2, 0.5, 1.0, 1.5} {
		x, err := MinSquaredNorm(3, []vec.Vector{vec.Of(-1, -1, -1)}, vec.Of(-c), Options{})
		if err != nil {
			t.Fatal(err)
		}
		cost := x.Dot(x)
		want := c * c / 3
		if math.Abs(cost-want) > 1e-7 {
			t.Errorf("c=%v: cost = %v, want %v", c, cost, want)
		}
		if cost <= prev {
			t.Errorf("cost should increase with tightness")
		}
		prev = cost
	}
}
