package topk

import (
	"sort"
	"strconv"
	"sync"
)

// Registry interns top-k caches of one dataset by their (k, active-set)
// configuration, so that queries sharing a dataset also share memoized
// per-vertex top-k results. The TopRR recursion derives its cache
// configurations deterministically from the query region (the r-skyband
// active set, then Lemma 5 reductions), so batches of queries over
// nearby regions converge on the same configurations and amortize the
// scoring work.
//
// A Registry is generation-aware: it is bound to the scorer of one
// dataset generation and hands interned caches only to solves pinned to
// that generation (GetFor). When the store publishes a new generation,
// Advance moves the registry forward *incrementally* — configurations
// untouched by the mutation keep their memoized results; only
// configurations involving a dirty slot (or spanning the whole dataset)
// are dropped. A Registry is safe for concurrent use.
type Registry struct {
	mu            sync.Mutex
	scorer        *Scorer
	m             map[string]*Cache
	limit         int // max interned configurations
	entryLimit    int // max memoized vertices per interned cache
	evictions     int // configurations dropped by Advance or refused interning
	retiredHits   int // counters of caches dropped by Advance, kept so Stats stays monotone
	retiredMisses int
}

// registryLimit caps the interned configurations and cacheEntryLimit
// caps each interned cache's memoized vertices. Beyond the limits, Get
// hands out unregistered caches and full caches stop storing: a
// long-lived engine keeps its hottest configurations and vertices
// without growing without bound. Both are defaults; the engine overrides
// them via SetLimits.
const (
	registryLimit   = 512
	cacheEntryLimit = 1 << 18
)

// NewRegistry builds an empty cache registry bound to one dataset
// generation's scorer.
func NewRegistry(scorer *Scorer) *Registry {
	return &Registry{
		scorer:     scorer,
		m:          make(map[string]*Cache),
		limit:      registryLimit,
		entryLimit: cacheEntryLimit,
	}
}

// SetLimits overrides the interned-configuration cap and the per-cache
// memoized-vertex cap (0 keeps the current value). It applies to caches
// interned from now on; already-interned caches keep their limit.
func (r *Registry) SetLimits(maxConfigs, maxEntriesPerCache int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if maxConfigs > 0 {
		r.limit = maxConfigs
	}
	if maxEntriesPerCache > 0 {
		r.entryLimit = maxEntriesPerCache
	}
}

// Scorer returns the dataset generation the registry currently serves.
func (r *Registry) Scorer() *Scorer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scorer
}

// configKey canonicalizes a cache configuration: the active set is
// keyed order-insensitively so permutations of the same subset share.
func configKey(k int, active []int) string {
	if active == nil {
		return strconv.Itoa(k) + "|*"
	}
	ix := append([]int(nil), active...)
	sort.Ints(ix)
	return strconv.Itoa(k) + "|" + joinInts(ix)
}

// GetFor returns the shared cache for (k, active) when sc is the
// registry's current generation, creating it on first use; it returns
// nil when sc is a different (typically older, pinned) generation, in
// which case the caller falls back to a solve-local cache. The scorer
// check happens under the registry lock, so a solve can never receive a
// cache bound to a generation other than its own.
func (r *Registry) GetFor(sc *Scorer, k int, active []int) *Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sc != r.scorer {
		return nil
	}
	return r.getLocked(k, active)
}

// Get returns the shared cache for (k, active) under the registry's
// current generation, creating it on first use. Once the registry is
// full, unseen configurations receive fresh unregistered caches instead
// of growing the registry.
func (r *Registry) Get(k int, active []int) *Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(k, active)
}

func (r *Registry) getLocked(k int, active []int) *Cache {
	key := configKey(k, active)
	if c, ok := r.m[key]; ok {
		return c
	}
	c := NewBoundedCache(r.scorer, k, active, r.entryLimit)
	if len(r.m) < r.limit {
		r.m[key] = c
	} else {
		r.evictions++
	}
	return c
}

// Advance moves the registry to a new dataset generation. dirty lists
// the slots whose identity changed (see store.Delta). Configurations
// spanning the whole dataset (nil active set) are dropped — any mutation
// changes their membership — as are configurations whose active set
// touches a dirty slot. Every other configuration is carried forward *by
// pointer* (an O(configs) pass, not a copy of the memoized maps): its
// active options are bit-identical across the two generations, so the
// same Cache object keeps serving in-flight solves pinned to the old
// generation and new-generation solves alike — both compute identical
// results over it (see Cache.rebind).
func (r *Registry) Advance(sc *Scorer, dirty []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Slots at or beyond the old generation's length cannot appear in an
	// interned active set; filtering them makes a pure insert advance
	// without touching any configuration.
	oldLen := r.scorer.Len()
	dirtySet := make(map[int]bool, len(dirty))
	for _, i := range dirty {
		if i < oldLen {
			dirtySet[i] = true
		}
	}
	for key, c := range r.m {
		if c.active != nil && !touches(c.active, dirtySet) {
			c.rebind(sc)
			continue
		}
		h, m := c.Stats()
		r.retiredHits += h
		r.retiredMisses += m
		// Fold the dropped cache's own refusals in so Evictions stays
		// monotone across generations, like Stats.
		r.evictions += 1 + c.Evictions()
		delete(r.m, key)
	}
	r.scorer = sc
}

// touches reports whether any index of active is in dirty.
func touches(active []int, dirty map[int]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for _, i := range active {
		if dirty[i] {
			return true
		}
	}
	return false
}

// Len reports the number of interned cache configurations.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Stats sums hits and misses over every interned cache, plus those of
// caches retired by Advance (so the totals are monotone across
// generations).
func (r *Registry) Stats() (hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hits, misses = r.retiredHits, r.retiredMisses
	for _, c := range r.m {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Evictions reports configurations dropped by generation advances or
// refused interning at the registry cap, plus per-cache results declined
// at the entry cap.
func (r *Registry) Evictions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.evictions
	for _, c := range r.m {
		n += c.Evictions()
	}
	return n
}
