package core

import (
	"testing"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/vec"
)

// TestD8Budgeted probes a d=8 instance under a region budget and reports
// where the time goes. It is a diagnostic; skipped in -short runs.
func TestD8Budgeted(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic timing probe")
	}
	d := 8
	ds := dataset.Generate(dataset.Independent, 100000, d, 7)
	m := d - 1
	lo, hi := vec.New(m), vec.New(m)
	for j := 0; j < m; j++ {
		lo[j] = 0.115
		hi[j] = 0.125
	}
	t0 := time.Now()
	res, err := Solve(NewProblem(ds.Pts, 10, PrefBox(lo, hi)), Options{Alg: TASStar, MaxRegions: 600})
	if err != nil {
		t.Logf("d=%d: %v after %v", d, err, time.Since(t0))
		return
	}
	orVerts := -1 // -1: geometry beyond the vertex budget (H-rep only)
	if res.OR != nil {
		orVerts = res.OR.NumVertices()
	}
	t.Logf("d=%d: %.2fs regions=%d splits=%d |Vall|=%d |D'|=%d oRverts=%d", d,
		time.Since(t0).Seconds(), res.Stats.Regions, res.Stats.Splits, res.Stats.VallSize,
		res.Stats.FilteredOptions, orVerts)

	// The H-representation stays exact: the top corner is always in oR
	// and the placement machinery must keep working without geometry.
	one := vec.New(d)
	for j := range one {
		one[j] = 1
	}
	if !res.IsTopRanking(one) {
		t.Error("top corner must be top-ranking")
	}
	if _, err := res.CostOptimalNew(); err != nil {
		t.Errorf("constraint-based placement failed: %v", err)
	}
}
