// Package topk implements linear top-k queries over an option dataset,
// following the scoring model of the paper (Section 3.1): options are
// points in [0,1]^d, a preference is a normalized weight vector, and the
// score of option p under weights w is S_w(p) = Σ_j w[j]·p[j].
//
// Because Σ_j w[j] = 1, the last weight is derived and preferences live
// in the (d-1)-dimensional *preference space* W. All functions in this
// package take such reduced weight vectors.
//
// # Scorers as generation snapshots
//
// A Scorer wraps one immutable option set. The versioned store
// (internal/store) publishes exactly one Scorer per dataset generation,
// and a solve pinned to a generation keeps scoring against that Scorer
// no matter how many successors writers publish — the Scorer's identity
// (its pointer) *is* the generation pin. Code that caches derived
// results therefore keys trust on the Scorer pointer, never on
// generation numbers alone.
//
// # Caches, the registry, and invalidation rules
//
// A Cache memoizes top-k results per preference-space vertex for one
// (k, active-set) configuration. The Registry interns these caches per
// dataset so queries sharing a configuration share the memoized work,
// and moves them across generations under two rules:
//
//   - GetFor hands an interned cache only to a solve pinned to the
//     registry's current generation (checked by Scorer pointer under the
//     registry lock); older pinned solves fall back to solve-local
//     caches, so no result computed against one generation is ever
//     served to another whose options could differ.
//   - Advance(sc, dirty) drops exactly the configurations whose active
//     set touches a dirty slot, plus whole-dataset (nil active)
//     configurations — any mutation changes dataset membership. Every
//     other configuration is carried forward by pointer and rebound to
//     the new Scorer: its active options are bit-identical in both
//     generations, so its memoized results, and all future computations
//     by either side, are identical under both scorers.
//
// Both the per-cache vertex count and the interned-configuration count
// are bounded (SetLimits); past a limit, work is computed without being
// retained and surfaces as Evictions rather than unbounded memory.
//
// # The sharded evaluation plane
//
// A sharded registry (NewShardedRegistry) splits every configuration
// into S stable shards by hashing option *contents* (stable under the
// store's swap-delete), each shard with its own memo, lock and slice of
// the entry budget; lookups merge per-shard partial results into
// exactly the unsharded top-k (shard.go proves the argument). Advance
// then invalidates per shard instead of per configuration: the
// registry swaps in a successor cache whose affected shards start
// fresh while unaffected shard memos carry forward by pointer — and
// in-flight solves pinned to the old generation keep the old object,
// whose affected shards still hold old-generation state. An insert
// costs one shard of a whole-dataset configuration instead of the
// whole configuration.
package topk
