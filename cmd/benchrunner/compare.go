package main

// Baseline comparison: -compare diffs a fresh run's records against the
// committed bench/BASELINE.json, turning the BENCH_*.json trajectory
// into an enforced contract instead of an archive. Gated metrics fail
// the run when they regress more than regressionTolerance over the
// baseline; wall-clock and ns/op are reported but never gated, because
// the baseline was captured on different hardware. See
// docs/PERFORMANCE.md for how to read and refresh the baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// regressionTolerance is the fractional headroom a gated metric gets
// over its baseline value before the comparison fails: work counters
// drift slightly under parallel scheduling and allocation counts under
// map growth, so an exact match would flap.
const regressionTolerance = 0.20

// Absolute slack floors keep the relative gate from flapping on tiny
// baselines (a 4-alloc benchmark must not fail because it hit 5).
const (
	allocsSlack = 16      // allocs/op
	bytesSlack  = 4096    // B/op
	countSlack  = 64      // work counters (regions, LP, QP)
	mallocSlack = 100_000 // whole-experiment mallocs
	heapSlack   = 1 << 22 // whole-experiment alloc_bytes (4 MiB)
)

// baseline is the committed reference trajectory: one record per
// experiment, in the same schema the runner writes to BENCH_<id>.json.
type baseline struct {
	Note    string   `json:"note"`
	Records []record `json:"records"`
}

// loadBaseline reads and validates a baseline file.
func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(b.Records) == 0 {
		return nil, fmt.Errorf("baseline %s holds no records", path)
	}
	return &b, nil
}

// gate checks one gated metric: fresh may exceed base by the relative
// tolerance or the absolute slack, whichever is larger. It returns a
// failure description, or "" when the metric passes.
func gate(name string, fresh, base float64, slack float64) string {
	limit := base * (1 + regressionTolerance)
	if base+slack > limit {
		limit = base + slack
	}
	if fresh > limit {
		return fmt.Sprintf("%s regressed: %.4g > %.4g (baseline %.4g, tolerance %.0f%% or +%.4g)",
			name, fresh, limit, base, regressionTolerance*100, slack)
	}
	return ""
}

// compareRecord diffs one experiment's fresh record against its
// baseline record and returns the failures.
func compareRecord(fresh, base record) []string {
	var fails []string
	add := func(msg string) {
		if msg != "" {
			fails = append(fails, fmt.Sprintf("%s: %s", fresh.ID, msg))
		}
	}
	add(gate("regions_processed", float64(fresh.RegionsProcessed), float64(base.RegionsProcessed), countSlack))
	add(gate("lp_calls", float64(fresh.LPCalls), float64(base.LPCalls), countSlack))
	add(gate("qp_calls", float64(fresh.QPCalls), float64(base.QPCalls), countSlack))
	if base.AllocBytes > 0 {
		add(gate("alloc_bytes", float64(fresh.AllocBytes), float64(base.AllocBytes), heapSlack))
		add(gate("mallocs", float64(fresh.Mallocs), float64(base.Mallocs), mallocSlack))
	}
	fails = append(fails, compareAllocRows(fresh, base)...)
	fails = append(fails, comparePatchRows(fresh, base)...)
	fails = append(fails, compareWatchRows(fresh, base)...)
	fails = append(fails, compareSketchRows(fresh)...)
	fails = append(fails, compareFabricRows(fresh)...)
	return fails
}

// fabricRows extracts the fabric experiment's per-shard-count rows
// (shards, in-proc ns, pipelined ns, serial ns, violations, remote
// partials, wire bytes, max inflight, rpc pipelined ns, rpc serial ns)
// as shards -> the nine numeric columns.
func fabricRows(r record) map[string][9]float64 {
	out := make(map[string][9]float64)
	for _, t := range r.Tables {
		if t.ID != "Fabric" {
			continue
		}
		for _, row := range t.Rows {
			if len(row) < 10 {
				continue
			}
			var v [9]float64
			ok := true
			for i := 0; i < 9; i++ {
				f, err := strconv.ParseFloat(row[i+1], 64)
				if err != nil {
					ok = false
					break
				}
				v[i] = f
			}
			if ok {
				out[row[0]] = v
			}
		}
	}
	return out
}

// compareFabricRows gates the fabric experiment on its absolute
// contracts, which need no baseline record: every distributed solve
// must be bit-identical to the in-process solve of the same query (zero
// violations); a sharded plane (S > 1) must actually scatter (remote
// partials and wire bytes nonzero) while the unsharded plane must not
// (nothing to scatter at S = 1); and the pipelined client's best RPC
// batches must beat the serial referee's summed over the whole shard
// grid — both sides run on the same machine in the same process, so
// baseline hardware never enters it, and the grid-wide sum is gated
// rather than each row because a single-core runner leaves only a few
// percent of structural margin per row, inside scheduler noise, while
// the sum holds a stable double-digit margin.
func compareFabricRows(fresh record) []string {
	var fails []string
	var rpcPipeSum, rpcSerialSum float64
	for shards, f := range fabricRows(fresh) {
		violations, partials, wireBytes := f[3], f[4], f[5]
		rpcPipeSum += f[7]
		rpcSerialSum += f[8]
		if violations != 0 {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: %.0f distributed solves diverged from in-process, want 0",
				fresh.ID, shards, violations))
		}
		if shards == "1" {
			if partials != 0 {
				fails = append(fails, fmt.Sprintf("%s/shards=1: unsharded plane scattered %.0f partials, want 0",
					fresh.ID, partials))
			}
		} else {
			if partials == 0 || wireBytes == 0 {
				fails = append(fails, fmt.Sprintf("%s/shards=%s: sharded plane never scattered (partials %.0f, wire bytes %.0f)",
					fresh.ID, shards, partials, wireBytes))
			}
		}
	}
	if rpcSerialSum > 0 && rpcPipeSum >= rpcSerialSum {
		fails = append(fails, fmt.Sprintf("%s: pipelined rpc %.0f ns/op (grid sum) not below serial-RPC %.0f ns/op",
			fresh.ID, rpcPipeSum, rpcSerialSum))
	}
	return fails
}

// sketchRows extracts the sketch experiment's per-shard-count rows
// (shards, gate hits, skipped, violations, certified, fallbacks,
// approx ns, exact ns, speedup) as
// shards -> [gateHits, skipped, violations, certified, fallbacks, approxNS, exactNS].
func sketchRows(r record) map[string][7]float64 {
	out := make(map[string][7]float64)
	for _, t := range r.Tables {
		if t.ID != "Sketch" {
			continue
		}
		for _, row := range t.Rows {
			if len(row) < 9 {
				continue
			}
			var v [7]float64
			ok := true
			for i := 0; i < 7; i++ {
				f, err := strconv.ParseFloat(row[i+1], 64)
				if err != nil {
					ok = false
					break
				}
				v[i] = f
			}
			if ok {
				out[row[0]] = v
			}
		}
	}
	return out
}

// compareSketchRows gates the sketch experiment on its absolute
// contracts, which need no baseline record: a gated solve must be
// bit-identical to an ungated one (zero violations), the gate must
// actually certify work away on the dominated-heavy workload (nonzero
// skips), and the certified approximate path must beat uncached exact
// top-k (the entire point of the tier). The exactness and skip counts
// are deterministic under pinned seeds; the latency gate compares two
// timings from the same process on the same machine, so baseline
// hardware never enters it.
func compareSketchRows(fresh record) []string {
	var fails []string
	for shards, f := range sketchRows(fresh) {
		gateHits, skipped, violations := f[0], f[1], f[2]
		approxNS, exactNS := f[5], f[6]
		if violations != 0 {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: %.0f gated solves diverged from ungated, want 0",
				fresh.ID, shards, violations))
		}
		if gateHits == 0 || skipped == 0 {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: gate certified nothing on the dominated-heavy workload (hits %.0f, skipped %.0f)",
				fresh.ID, shards, gateHits, skipped))
		}
		if approxNS >= exactNS {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: approx %.0f ns/op not below exact %.0f ns/op",
				fresh.ID, shards, approxNS, exactNS))
		}
	}
	return fails
}

// watchSuppressionFloor is the suppression rate the watch experiment's
// dominated-insert stream must sustain: every origin insert is provably
// region-neutral, so anything below 1.0 means the notification plane
// re-solved (or notified) for a mutation the patch plane had already
// proven silent.
const watchSuppressionFloor = 1.0

// watchRows extracts the watch experiment's rows (shards, phase,
// inserts, suppressed, evals, events, rate) keyed "shards/phase" ->
// [inserts, suppressed, evals, events, rate].
func watchRows(r record) map[string][5]float64 {
	out := make(map[string][5]float64)
	for _, t := range r.Tables {
		if t.ID != "Watch" {
			continue
		}
		for _, row := range t.Rows {
			if len(row) < 7 {
				continue
			}
			var v [5]float64
			ok := true
			for i := 0; i < 5; i++ {
				f, err := strconv.ParseFloat(row[i+2], 64)
				if err != nil {
					ok = false
					break
				}
				v[i] = f
			}
			if ok {
				out[row[0]+"/"+row[1]] = v
			}
		}
	}
	return out
}

// compareWatchRows gates the watch experiment: a dominated-insert
// stream must suppress every signal (zero re-solves, zero events) and
// the cracking stream must actually deliver; re-evaluation counts must
// not regress over the baseline. The counts are deterministic (pinned
// seeds, synchronous suppression accounting), so the gates cannot flap.
func compareWatchRows(fresh, base record) []string {
	baseRows := watchRows(base)
	var fails []string
	for key, f := range watchRows(fresh) {
		inserts, suppressed, evals, events, rate := f[0], f[1], f[2], f[3], f[4]
		switch {
		case strings.HasSuffix(key, "/dominated"):
			if rate < watchSuppressionFloor {
				fails = append(fails, fmt.Sprintf("%s/%s: suppression rate %.3f below the %.3f floor (%.0f of %.0f inserts)",
					fresh.ID, key, rate, watchSuppressionFloor, suppressed, inserts))
			}
			if evals != 0 {
				fails = append(fails, fmt.Sprintf("%s/%s: dominated stream ran %.0f re-solves, want 0", fresh.ID, key, evals))
			}
			if events != 0 {
				fails = append(fails, fmt.Sprintf("%s/%s: dominated stream delivered %.0f events, want 0", fresh.ID, key, events))
			}
		case strings.HasSuffix(key, "/cracking"):
			if events == 0 {
				fails = append(fails, fmt.Sprintf("%s/%s: cracking stream delivered no events", fresh.ID, key))
			}
			if b, ok := baseRows[key]; ok {
				if msg := gate("watch_evals", evals, b[2], countSlack); msg != "" {
					fails = append(fails, fmt.Sprintf("%s/%s: %s", fresh.ID, key, msg))
				}
			}
		}
	}
	return fails
}

// patchSpeedupFloor is the minimum cold-scored / patch-scored ratio the
// patch experiment must sustain: patched post-insert lookups must score
// at least this many times fewer options than drop-and-recompute.
const patchSpeedupFloor = 5.0

// patchRows extracts the patch experiment's per-shard-count rows
// (shards, entries, patch scored, cold scored, ratio, untouched drops)
// as shards -> [entries, patchScored, coldScored, ratio, drops].
func patchRows(r record) map[string][5]float64 {
	out := make(map[string][5]float64)
	for _, t := range r.Tables {
		if t.ID != "Patch" {
			continue
		}
		for _, row := range t.Rows {
			if len(row) < 6 {
				continue
			}
			var v [5]float64
			ok := true
			for i := 0; i < 5; i++ {
				f, err := strconv.ParseFloat(row[i+1], 64)
				if err != nil {
					ok = false
					break
				}
				v[i] = f
			}
			if ok {
				out[row[0]] = v
			}
		}
	}
	return out
}

// comparePatchRows gates the patch experiment: the scored-options ratio
// must stay above the absolute floor, a dominated insert must drop
// nothing, and the patch-side scored count must not regress over the
// baseline. The counts are deterministic (pinned seeds, exact work
// accounting), so the gates cannot flap on machine noise.
func comparePatchRows(fresh, base record) []string {
	baseRows := patchRows(base)
	var fails []string
	for shards, f := range patchRows(fresh) {
		if f[3] < patchSpeedupFloor {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: scored ratio %.1f below the %.0fx floor",
				fresh.ID, shards, f[3], patchSpeedupFloor))
		}
		if f[4] != 0 {
			fails = append(fails, fmt.Sprintf("%s/shards=%s: untouched insert dropped %.0f cache entries, want 0",
				fresh.ID, shards, f[4]))
		}
		if b, ok := baseRows[shards]; ok {
			if msg := gate("patch_scored", f[1], b[1], countSlack); msg != "" {
				fails = append(fails, fmt.Sprintf("%s/shards=%s: %s", fresh.ID, shards, msg))
			}
		}
	}
	return fails
}

// allocRows extracts the alloc experiment's per-benchmark rows
// (bench, ns/op, B/op, allocs/op) as name -> [ns, bytes, allocs].
func allocRows(r record) map[string][3]float64 {
	out := make(map[string][3]float64)
	for _, t := range r.Tables {
		if t.ID != "Alloc" {
			continue
		}
		for _, row := range t.Rows {
			if len(row) < 4 {
				continue
			}
			ns, err1 := strconv.ParseFloat(row[1], 64)
			bpo, err2 := strconv.ParseFloat(row[2], 64)
			apo, err3 := strconv.ParseFloat(row[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				continue
			}
			out[row[0]] = [3]float64{ns, bpo, apo}
		}
	}
	return out
}

// compareAllocRows gates B/op and allocs/op per benchmark row of the
// alloc experiment. ns/op is machine-dependent and never gated. Rows
// present only on one side are skipped (new benchmarks enter the gate
// when the baseline is refreshed).
func compareAllocRows(fresh, base record) []string {
	baseRows := allocRows(base)
	if len(baseRows) == 0 {
		return nil
	}
	var fails []string
	for name, f := range allocRows(fresh) {
		b, ok := baseRows[name]
		if !ok {
			continue
		}
		if msg := gate("B/op", f[1], b[1], bytesSlack); msg != "" {
			fails = append(fails, fmt.Sprintf("%s/%s: %s", fresh.ID, name, msg))
		}
		if msg := gate("allocs/op", f[2], b[2], allocsSlack); msg != "" {
			fails = append(fails, fmt.Sprintf("%s/%s: %s", fresh.ID, name, msg))
		}
	}
	return fails
}

// compareAgainstBaseline diffs the run's records against the baseline
// file and returns an error when any gated metric regressed. Fresh
// experiments without a baseline record (and vice versa) are reported
// as skipped, so adding an experiment does not break CI until the
// baseline is refreshed to cover it.
func compareAgainstBaseline(path string, fresh []record, w io.Writer) error {
	b, err := loadBaseline(path)
	if err != nil {
		return err
	}
	byID := make(map[string]record, len(b.Records))
	for _, r := range b.Records {
		byID[r.ID] = r
	}
	var fails []string
	compared := 0
	fmt.Fprintf(w, "# baseline comparison vs %s\n", path)
	for _, f := range fresh {
		base, ok := byID[f.ID]
		if !ok {
			fmt.Fprintf(w, "  %-8s not in baseline — skipped (refresh the baseline to gate it)\n", f.ID)
			continue
		}
		compared++
		rf := compareRecord(f, base)
		fails = append(fails, rf...)
		status := "ok"
		if len(rf) > 0 {
			status = fmt.Sprintf("REGRESSED (%d metrics)", len(rf))
		}
		fmt.Fprintf(w, "  %-8s %s  (wall %.2fs vs baseline %.2fs — advisory)\n", f.ID, status, f.WallSeconds, base.WallSeconds)
	}
	if compared == 0 {
		if len(fresh) == 0 {
			return fmt.Errorf("no experiment of this run appears in baseline %s", path)
		}
		// Every record of this run is new to the baseline: advisory, not
		// an error, so a branch introducing an experiment can run it under
		// -compare before the baseline is refreshed to cover it.
		fmt.Fprintf(w, "  all %d records are new to the baseline — advisory only (refresh the baseline to gate them)\n", len(fresh))
		if len(fails) > 0 {
			return fmt.Errorf("%d gated metrics regressed >%.0f%% vs %s", len(fails), regressionTolerance*100, path)
		}
		return nil
	}
	for _, msg := range fails {
		fmt.Fprintf(w, "  FAIL %s\n", msg)
	}
	if len(fails) > 0 {
		return fmt.Errorf("%d gated metrics regressed >%.0f%% vs %s", len(fails), regressionTolerance*100, path)
	}
	fmt.Fprintf(w, "  all gated metrics within tolerance\n")
	return nil
}
