package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// regionsProcessedTotal counts regions examined by process() since
// process start, across all solves. Benchmark instrumentation.
var regionsProcessedTotal atomic.Int64

// RegionsProcessed returns the process-wide count of regions examined.
func RegionsProcessed() int64 { return regionsProcessedTotal.Load() }

// Solve runs the selected TopRR algorithm and returns the maximal
// top-ranking region oR together with instrumentation. It is
// SolveContext with a background context.
func Solve(p Problem, o Options) (*Result, error) {
	return SolveContext(context.Background(), p, o)
}

// SolveContext runs the TopRR pipeline — prefilter, partition, assemble
// — honoring cancellation and deadlines on ctx. The pipeline is the
// paper's: r-skyband pre-filtering (Section 6.3), recursive
// partitioning of wR (Sections 4-5), and assembly of oR from the impact
// halfspaces at the collected vertices (Theorem 1); each stage is
// replaceable via Options.
func SolveContext(ctx context.Context, p Problem, o Options) (*Result, error) {
	start := time.Now()
	o = o.withDefaults()
	// The Timeout budget also rides on the context so that every stage
	// — including a prefilter doing its own partitioning — is bounded.
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(o.Timeout))
		defer cancel()
	}
	s := &solver{
		prob: p,
		opt:  o,
		rng:  rand.New(rand.NewSource(o.Seed + 1)),
		vall: make(map[uint64]ImpactVertex),
	}
	s.stats.InputOptions = p.Scorer.Len()
	if o.Shards > 1 {
		s.acc = topk.NewShardAccum(o.Shards)
		s.stats.Shards = o.Shards
	}

	// The assembler is resolved before the partition so that, when it
	// supports streaming, impact vertices flow into assembly as regions
	// are confirmed instead of being buffered until the end. Both
	// built-in assemblers stream; a custom Assembler without NewStream
	// falls back to the buffered call below.
	asm := o.Assembler
	if asm == nil {
		asm = ClipAssembler{}
	}
	if sa, ok := asm.(StreamAssembler); ok {
		s.stream = sa.NewStream(p.Scorer, o.ORVertexBudget)
	}

	// Stage 1 — prefilter: discard options that can never rank among
	// the top-k anywhere in wR.
	pf := o.Prefilter
	if pf == nil {
		pf = SkybandPrefilter{}
	}
	// A UTK prefilter without its own budget inherits the solve's, so
	// MaxRegions bounds stage 1's internal partitioning too.
	if u, ok := pf.(UTKPrefilter); ok && u.MaxRegions <= 0 {
		u.MaxRegions = o.MaxRegions
		pf = u
	}
	active, err := gatedFilter(ctx, p, o, pf, &s.stats)
	if err != nil {
		return nil, err
	}
	s.stats.FilteredOptions = len(active)
	s.stats.ProcessedMin = len(active)

	// Stage 2 — partition: recursively split wR until every region
	// passes the test, collecting impact vertices into Vall. The root
	// cache is the only one worth interning cross-query: its (k,
	// active-set) configuration is determined by (wR, k) alone, while
	// Lemma-5-derived configurations are region-specific.
	root := regionCtx{region: p.WR, cache: s.newCacheShared(p.K, active)}
	if err := s.drive(ctx, root, start); err != nil {
		return nil, err
	}

	// Stage 3 — assemble: intersect the impact halfspaces (Theorem 1).
	// Cancellation between the stages is still honored: a large Vall
	// makes assembly itself nontrivial work.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vall := s.sortedVall()
	var ao AssembleOutput
	if s.stream != nil {
		ao = s.stream.Finish()
	} else {
		ao = asm.Assemble(p.Scorer, vall, o.ORVertexBudget)
	}
	s.stats.ImpactClips = ao.Clips
	s.stats.VallSize = len(vall)
	s.stats.StreamedVertices = s.streamed
	s.stats.UniqueImpacts = len(ao.Constraints) - 2*p.Scorer.Dim()
	if o.Shards > 1 {
		s.stats.ShardStats = s.shardStats(active, ao.ShardClips)
	}
	s.stats.Elapsed = time.Since(start)
	return &Result{OR: ao.OR, ORConstraints: ao.Constraints, Vall: vall, Stats: s.stats, Problem: p}, nil
}

// shardStats assembles the per-shard work breakdown of a sharded solve:
// shard populations of the filtered candidate set, the solve's partial
// top-k computations (from the accumulator the sharded caches fill) and
// the merge stage's per-chunk clips.
func (s *solver) shardStats(active []int, mergeClips []int) []ShardStat {
	out := make([]ShardStat, s.opt.Shards)
	for i := range out {
		out[i].Shard = i
		out[i].Partials = int(s.acc.Partials[i].Load())
		out[i].Scored = s.acc.Scored[i].Load()
		if i < len(mergeClips) {
			out[i].MergeClips = mergeClips[i]
		}
	}
	for _, slot := range active {
		sh := topk.ShardOfPoint(s.prob.Scorer.Point(slot), s.opt.Shards)
		out[sh].Options++
	}
	return out
}

// solver carries the state of one Solve call. The mutex guards every
// shared mutable field (stats, vall, collectSets, rng) so that process()
// may run concurrently from the parallel driver's workers.
type solver struct {
	prob        Problem
	opt         Options
	mu          sync.Mutex
	rng         *rand.Rand
	vall        map[uint64]ImpactVertex // keyed by the quantized vertex hash
	stream      AssembleStream          // non-nil when the assembler streams
	streamed    int                     // vertices pushed into the stream
	stats       Stats
	acc         *topk.ShardAccum // per-shard work attribution (sharded solves only)
	collectSets map[int]bool     // non-nil when the UTK filter wants top-k set members
	onAccept    func(region *geom.Polytope, cache *topk.Cache)
	allOpts     []int // lazily built identity active set (guarded by mu)
}

// allOptions returns the identity active set [0, n), built once per
// solve and shared read-only afterwards.
func (s *solver) allOptions() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.allOpts == nil {
		s.allOpts = make([]int, s.prob.Scorer.Len())
		for i := range s.allOpts {
			s.allOpts[i] = i
		}
	}
	return s.allOpts
}

// addStats applies a mutation to the stats under the solver lock.
func (s *solver) addStats(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// budgetUsed reports regions+splits so far, under the lock.
func (s *solver) budgetUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Regions + s.stats.Splits
}

// regionCtx is a preference region awaiting processing together with its
// top-k context. Lemma 5 pruning gives children of a region a fresh
// cache with a smaller active set and decremented k.
type regionCtx struct {
	region *geom.Polytope
	cache  *topk.Cache
}

// newCache builds a solve-local top-k cache honoring the
// DisableTopKCache ablation and the sharded evaluation plane: under
// Options.Shards > 1 even the Lemma-5-derived configurations shard, so
// the whole recursion runs on per-shard memos.
func (s *solver) newCache(k int, active []int) *topk.Cache {
	if s.opt.DisableTopKCache {
		return topk.NewPassthroughCache(s.prob.Scorer, k, active)
	}
	if s.opt.Shards > 1 {
		return topk.NewShardedCache(s.prob.Scorer, k, active, s.opt.Shards, 0, nil)
	}
	return topk.NewCache(s.prob.Scorer, k, active)
}

// newCacheShared is newCache but interns the cache in the cross-query
// registry when one serving this solve's dataset generation is supplied
// (GetFor refuses scorers of other generations, so a solve pinned to an
// older snapshot falls back to a solve-local cache). Only root
// (prefilter-level) configurations go through here: they repeat across
// queries, whereas Lemma-5-derived sets are region-specific and would
// bloat the registry without reuse.
func (s *solver) newCacheShared(k int, active []int) *topk.Cache {
	if reg := s.opt.TopKCaches; reg != nil && !s.opt.DisableTopKCache {
		if c := reg.GetFor(s.prob.Scorer, k, active); c != nil {
			return c
		}
	}
	return s.newCache(k, active)
}

// process tests one region and either accepts it (recording its vertices
// in Vall) or splits it, returning the children to process. ctx bounds
// the sharded per-vertex evaluations; the unsharded path is cancelled
// between regions by the driver's budget checks instead.
func (s *solver) process(ctx context.Context, rc regionCtx) ([]regionCtx, error) {
	regionsProcessedTotal.Add(1)
	cache := rc.cache
	verts := rc.region.VertexPoints()

	// TAS*: Lemma 5 — discard consistent top-λ options, decrement k.
	if s.opt.Alg == TASStar && !s.opt.DisableLemma5 {
		var err error
		cache, err = s.lemma5(ctx, verts, cache)
		if err != nil {
			return nil, err
		}
		n := len(cache.Active())
		s.addStats(func(st *Stats) {
			if n < st.ProcessedMin {
				st.ProcessedMin = n
			}
		})
	}

	results := make([]*topk.Result, len(verts))
	miss := 0
	for i, v := range verts {
		r, hit, err := cache.LookupCtx(ctx, v, s.acc)
		if err != nil {
			return nil, err
		}
		results[i] = r
		if !hit {
			miss++
		}
	}
	s.addStats(func(st *Stats) {
		st.TopKQueries += len(verts)
		st.TopKMisses += miss
	})

	va, vb := s.firstViolation(results)
	if va < 0 { // region passes the test
		s.accept(rc.region, cache, verts, results)
		return nil, nil
	}

	// TAS*: Lemma 7 — if all vertices share the same top-(k-1) set, the
	// impact halfspaces at the vertices already define the region's
	// TopRR solution; no further splitting is needed.
	if s.opt.Alg == TASStar && !s.opt.DisableLemma7 && s.sameTopKm1(results) {
		s.addStats(func(st *Stats) { st.Lemma7Accepts++ })
		s.accept(rc.region, cache, verts, results)
		return nil, nil
	}

	// Choose candidate splitting pairs and perform the first cut that
	// divides the region into two non-empty parts (Lemma 4 guarantees
	// one exists under general position).
	if children, ok := s.trySplit(rc.region, cache, s.splitCandidates(verts, results, va, vb)); ok {
		return children, nil
	}

	// Degenerate case: splits create vertices exactly on score-tie
	// hyperplanes, so the vertex-level top-k sets can disagree only
	// through ties while a genuine rank transition still crosses the
	// interior. Escalate to every pair (x, y) with x in the union of the
	// vertices' top-k sets and y any active option: if any such score
	// hyperplane strictly cuts the region, split on it. If none does,
	// every relevant score order is constant on the region's interior,
	// the interior is rank-invariant, and — because the k-th highest
	// score is a continuous function of w — the impact halfspaces at the
	// region's vertices are exact, so accepting is sound.
	if children, ok := s.tryEscalationSplit(rc.region, cache, results); ok {
		return children, nil
	}
	s.addStats(func(st *Stats) { st.DegenerateStops++ })
	s.accept(rc.region, cache, verts, results)
	return nil, nil
}

// trySplit attempts the candidate pairs in order and splits the region
// on the first hyperplane that strictly divides it.
func (s *solver) trySplit(region *geom.Polytope, cache *topk.Cache, pairs [][2]int) ([]regionCtx, bool) {
	for _, pair := range pairs {
		if children, ok := s.trySplitPair(region, cache, pair); ok {
			return children, true
		}
	}
	return nil, false
}

// trySplitPair attempts one candidate pair. The pair is screened with a
// cheap vertex-side count before paying for the full geometric split,
// so grazing hyperplanes (the common degenerate case) cost O(|V|)
// instead of a polytope construction.
func (s *solver) trySplitPair(region *geom.Polytope, cache *topk.Cache, pair [2]int) ([]regionCtx, bool) {
	hs, ok := s.splitHyperplane(pair[0], pair[1])
	if !ok {
		return nil, false
	}
	var nNeg, nPos int
	for _, v := range region.Verts {
		switch geom.Side(hs.Eval(v.Point)) {
		case -1:
			nNeg++
		case 1:
			nPos++
		}
		if nNeg > 0 && nPos > 0 {
			break
		}
	}
	if nNeg == 0 || nPos == 0 {
		return nil, false
	}
	neg, pos := region.Split(hs)
	if neg.IsEmpty() || pos.IsEmpty() {
		return nil, false
	}
	s.addStats(func(st *Stats) { st.Splits++ })
	return []regionCtx{
		{region: neg, cache: cache},
		{region: pos, cache: cache},
	}, true
}

// tryEscalationSplit attempts the degenerate-split fallback pairs —
// every (x, y) with x in the union of the vertices' top-k sets and y
// active — in a deterministic order, streaming them into the split
// attempt instead of materializing the union x active product (whose
// pair list and dedup map used to dominate the solve's allocations).
// Each unordered pair is attempted at its first occurrence in the scan,
// exactly the order the materialized list produced: a pair whose both
// ends are in the (sorted) union is skipped when seen from its larger
// end, having already been attempted from the smaller one.
func (s *solver) tryEscalationSplit(region *geom.Polytope, cache *topk.Cache, results []*topk.Result) ([]regionCtx, bool) {
	inUnion := make(map[int]bool)
	union := make([]int, 0, len(results[0].Ordered))
	for _, r := range results {
		for _, idx := range r.Ordered {
			if !inUnion[idx] {
				inUnion[idx] = true
				union = append(union, idx)
			}
		}
	}
	sort.Ints(union)
	active := cache.Active()
	if active == nil {
		active = s.allOptions()
	}
	for _, x := range union {
		for _, y := range active {
			if x == y || (inUnion[y] && y < x) {
				continue
			}
			pair := [2]int{x, y}
			if y < x {
				pair = [2]int{y, x}
			}
			if children, ok := s.trySplitPair(region, cache, pair); ok {
				return children, true
			}
		}
	}
	return nil, false
}

// firstViolation returns indices of the first vertex pair violating the
// region test, or (-1, -1) if the region passes. For PAC the test is
// order-sensitive (identical ranked top-k result everywhere, strictly
// finer than kIPR); for TAS and TAS* it is the kIPR test of Lemma 3
// (same top-k set and same top-k-th option).
func (s *solver) firstViolation(results []*topk.Result) (int, int) {
	base := results[0]
	for i := 1; i < len(results); i++ {
		r := results[i]
		if s.opt.Alg == PAC {
			if r.OrderKey() != base.OrderKey() {
				return 0, i
			}
			continue
		}
		if !r.SameSet(base) || !r.SameKth(base) {
			return 0, i
		}
	}
	return -1, -1
}

// sameTopKm1 reports whether all vertices share the same top-(k-1) set
// (the hypothesis of Lemma 7). For k == 1 the condition is vacuous: the
// lemma degenerates to Lemma 6 and always applies.
func (s *solver) sameTopKm1(results []*topk.Result) bool {
	k := len(results[0].Ordered)
	if k == 1 {
		return true
	}
	for _, r := range results[1:] {
		if !samePrefixSet(results[0], r, k-1) {
			return false
		}
	}
	return true
}

// samePrefixSet reports whether the first lambda entries of two top-k
// results form the same option set. It sorts copies in small stack
// buffers and compares elementwise — no canonical string key is ever
// materialized, so the comparison is allocation-free for lambda <= 64.
func samePrefixSet(ra, rb *topk.Result, lambda int) bool {
	var bufA, bufB [64]int
	var a, b []int
	if lambda <= len(bufA) {
		a, b = bufA[:lambda], bufB[:lambda]
	} else {
		a, b = make([]int, lambda), make([]int, lambda)
	}
	copy(a, ra.Ordered[:lambda])
	copy(b, rb.Ordered[:lambda])
	sortSmall(a)
	sortSmall(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortSmall is an insertion sort: prefix lengths are tiny.
func sortSmall(ix []int) {
	for i := 1; i < len(ix); i++ {
		for j := i; j > 0 && ix[j] < ix[j-1]; j-- {
			ix[j], ix[j-1] = ix[j-1], ix[j]
		}
	}
}

// lemma5 implements the consistent top-λ pruning of Section 5.1: if all
// vertices of the region share the same top-λ set for some λ < k, those
// λ options can be discarded and k reduced, without changing the TopRR
// output. It returns the (possibly new) top-k context.
func (s *solver) lemma5(ctx context.Context, verts []vec.Vector, cache *topk.Cache) (*topk.Cache, error) {
	k := cache.K()
	if k <= 1 {
		return cache, nil
	}
	results := make([]*topk.Result, len(verts))
	miss := 0
	for i, v := range verts {
		r, hit, err := cache.LookupCtx(ctx, v, s.acc)
		if err != nil {
			return nil, err
		}
		results[i] = r
		if !hit {
			miss++
		}
	}
	s.addStats(func(st *Stats) {
		st.TopKQueries += len(verts)
		st.TopKMisses += miss
	})
	lambda := 0
	for l := k - 1; l >= 1; l-- {
		same := true
		for _, r := range results[1:] {
			if !samePrefixSet(results[0], r, l) {
				same = false
				break
			}
		}
		if same {
			lambda = l
			break
		}
	}
	if lambda == 0 {
		return cache, nil
	}
	// Φ = the common top-λ set (indices from the first vertex's result).
	phi := make(map[int]bool, lambda)
	for _, idx := range results[0].Ordered[:lambda] {
		phi[idx] = true
	}
	oldActive := cache.Active()
	newActive := make([]int, 0, len(oldActive)-lambda)
	if oldActive == nil {
		for i := 0; i < s.prob.Scorer.Len(); i++ {
			if !phi[i] {
				newActive = append(newActive, i)
			}
		}
	} else {
		for _, i := range oldActive {
			if !phi[i] {
				newActive = append(newActive, i)
			}
		}
	}
	s.addStats(func(st *Stats) { st.Lemma5Prunes += lambda })
	return s.newCache(k-lambda, newActive), nil
}

// accept records a confirmed region: its defining vertices (with their
// TopK scores) join Vall, and — when the UTK filter is collecting — the
// region's top-k set members are recorded. The onAccept hook (used by
// reverse top-k) observes the region with its final top-k context.
func (s *solver) accept(region *geom.Polytope, cache *topk.Cache, verts []vec.Vector, results []*topk.Result) {
	s.mu.Lock()
	s.stats.Regions++
	for i, v := range verts {
		key := v.Hash(vallQuantum)
		if _, ok := s.vall[key]; !ok {
			iv := ImpactVertex{W: v, KthScore: results[i].KthScore}
			s.vall[key] = iv
			// Streaming assembly: new-unique vertices flow into the
			// assembler the moment their region is confirmed.
			if s.stream != nil {
				s.stream.Push(iv)
				s.streamed++
			}
		}
	}
	if s.collectSets != nil {
		for _, r := range results {
			for _, idx := range r.Ordered {
				s.collectSets[idx] = true
			}
		}
	}
	s.mu.Unlock()
	if s.onAccept != nil {
		s.onAccept(region, cache)
	}
}

// splitCandidates produces the ordered list of option pairs to try as
// splitting hyperplanes, most preferred first, per Section 4.2.1 and the
// k-switch enhancement of Section 5.3.
func (s *solver) splitCandidates(verts []vec.Vector, results []*topk.Result, va, vb int) [][2]int {
	ra, rb := results[va], results[vb]
	if ra.SameSet(rb) {
		// Case 2: same top-k set, different top-k-th option (PAC can land
		// here with an order-only difference; pick the first inverted pair).
		if ra.Kth() != rb.Kth() {
			return [][2]int{{ra.Kth(), rb.Kth()}}
		}
		return s.orderInversionPairs(ra, rb)
	}
	// Case 1: different top-k sets.
	onlyA, onlyB := setDifferences(ra, rb)
	var cands [][2]int
	useKSwitch := s.opt.Alg == TASStar && !s.opt.DisableKSwitch
	if useKSwitch {
		if pair, ok := s.kSwitchPair(verts[va], verts[vb], ra, rb); ok {
			cands = append(cands, pair)
		} else if pair, ok := s.kSwitchPair(verts[vb], verts[va], rb, ra); ok {
			cands = append(cands, pair)
		}
	}
	// Generic Case-1 pairs (random order), used by PAC/TAS directly and
	// as fallback for TAS*.
	s.mu.Lock()
	perm := s.rng.Perm(len(onlyA) * len(onlyB))
	s.mu.Unlock()
	for _, t := range perm {
		cands = append(cands, [2]int{onlyA[t/len(onlyB)], onlyB[t%len(onlyB)]})
	}
	return cands
}

// setDifferences returns the options only in ra's set and only in rb's.
func setDifferences(ra, rb *topk.Result) (onlyA, onlyB []int) {
	inB := make(map[int]bool, len(rb.Ordered))
	for _, x := range rb.Ordered {
		inB[x] = true
	}
	inA := make(map[int]bool, len(ra.Ordered))
	for _, x := range ra.Ordered {
		inA[x] = true
		if !inB[x] {
			onlyA = append(onlyA, x)
		}
	}
	for _, x := range rb.Ordered {
		if !inA[x] {
			onlyB = append(onlyB, x)
		}
	}
	return onlyA, onlyB
}

// orderInversionPairs lists pairs whose relative order differs between
// the two results (used by PAC's order-sensitive refinement).
func (s *solver) orderInversionPairs(ra, rb *topk.Result) [][2]int {
	posB := make(map[int]int, len(rb.Ordered))
	for pos, x := range rb.Ordered {
		posB[x] = pos
	}
	var out [][2]int
	for i := 0; i < len(ra.Ordered); i++ {
		for j := i + 1; j < len(ra.Ordered); j++ {
			x, y := ra.Ordered[i], ra.Ordered[j]
			if posB[x] > posB[y] { // inverted relative order
				out = append(out, [2]int{x, y})
			}
		}
	}
	s.mu.Lock()
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	s.mu.Unlock()
	return out
}

// kSwitchPair implements Definition 4: pz1 is the top-k-th option at va;
// pz2 is the option of vb's top-k set that scores below pz1 at va but
// above it at vb, with the smallest score gap at va.
func (s *solver) kSwitchPair(va, vb vec.Vector, ra, rb *topk.Result) ([2]int, bool) {
	sc := s.prob.Scorer
	pz1 := ra.Kth()
	sa1 := sc.Score(va, pz1)
	sb1 := sc.Score(vb, pz1)
	best, bestGap := -1, 0.0
	for _, pz := range rb.Ordered {
		if pz == pz1 {
			continue
		}
		saz := sc.Score(va, pz)
		sbz := sc.Score(vb, pz)
		if saz < sa1 && sbz > sb1 {
			gap := sa1 - saz
			if best < 0 || gap < bestGap {
				best, bestGap = pz, gap
			}
		}
	}
	if best < 0 {
		return [2]int{}, false
	}
	return [2]int{pz1, best}, true
}

// splitHyperplane builds the preference-space hyperplane
// wHP(p_i, p_j) = {w : S_w(p_i) = S_w(p_j)} as a halfspace whose >= side
// is S_w(p_i) >= S_w(p_j). It reports false for (numerically) parallel
// score functions, which cannot cut any region. When a cross-query
// cache is supplied, each pair is computed at most once per engine and
// dataset generation; the cache verifies the solve's pinned scorer on
// every access, so a solve racing a dataset mutation neither reads nor
// writes geometry of the wrong generation.
func (s *solver) splitHyperplane(i, j int) (geom.Halfspace, bool) {
	c := s.opt.Hyperplanes
	if c != nil {
		if e, ok := c.lookupFor(s.prob.Scorer, i, j); ok {
			return e.hs, e.ok
		}
	}
	hs, ok := computeSplitHyperplane(s.prob.Scorer, i, j)
	if c != nil {
		c.storeFor(s.prob.Scorer, i, j, hpEntry{hs: hs, ok: ok})
	}
	return hs, ok
}

// computeSplitHyperplane does the actual wHP(p_i, p_j) construction.
func computeSplitHyperplane(sc *topk.Scorer, i, j int) (geom.Halfspace, bool) {
	p, q := sc.Point(i), sc.Point(j)
	m := sc.PrefDim()
	a := vec.New(m)
	for t := 0; t < m; t++ {
		a[t] = (p[t] - p[m]) - (q[t] - q[m])
	}
	if a.NormInf() < geom.Eps {
		return geom.Halfspace{}, false
	}
	return geom.NewHalfspace(a, -(p[m] - q[m])), true
}

// UTKFilter computes exactly the options that appear in the top-k result
// of at least one weight vector in wR — the fourth filtering alternative
// of Section 6.3 (after [30]). It partitions wR into kIPRs with plain
// TAS and unions the (constant) top-k set of each partition.
func UTKFilter(pts []vec.Vector, k int, wr *geom.Polytope) ([]int, error) {
	return UTKFilterContext(context.Background(), pts, k, wr)
}

// UTKFilterContext is UTKFilter honoring cancellation on ctx.
func UTKFilterContext(ctx context.Context, pts []vec.Vector, k int, wr *geom.Polytope) ([]int, error) {
	return utkFilter(ctx, NewProblem(pts, k, wr), Options{Alg: TAS})
}

// utkFilter runs the kIPR partitioning with top-k set collection.
func utkFilter(ctx context.Context, p Problem, opt Options) ([]int, error) {
	opt.Alg = TAS
	opt.Workers = 0 // filtering runs sequentially inside one solve
	opt = opt.withDefaults()
	s := &solver{
		prob:        p,
		opt:         opt,
		rng:         rand.New(rand.NewSource(1)),
		vall:        make(map[uint64]ImpactVertex),
		collectSets: make(map[int]bool),
	}
	s.stats.InputOptions = p.Scorer.Len()
	active, err := SkybandPrefilter{}.Filter(ctx, p)
	if err != nil {
		return nil, err
	}
	s.stats.FilteredOptions = len(active)
	root := regionCtx{region: p.WR, cache: s.newCache(p.K, active)}
	if err := s.drive(ctx, root, time.Now()); err != nil {
		return nil, fmt.Errorf("core: UTK filter: %w", err)
	}
	out := make([]int, 0, len(s.collectSets))
	for idx := range s.collectSets {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}
