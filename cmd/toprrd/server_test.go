package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// testPts builds n deterministic random options in [0,1]^3 (preference
// space is 2-dimensional).
func testPts(n int) []vec.Vector {
	rng := rand.New(rand.NewSource(7))
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	return pts
}

// testRegistry builds a memory-only registry whose default dataset
// holds n random options, so the legacy /v1/* aliases have a tenant to
// hit. Cleanup closes it.
func testRegistry(t *testing.T, n int) (*toprr.Registry, *toprr.Engine) {
	t.Helper()
	reg, err := toprr.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	engine, err := reg.Create("default", testPts(n))
	if err != nil {
		t.Fatal(err)
	}
	return reg, engine
}

// testServer is an httptest server over a fresh default-only registry.
func testServer(t *testing.T, n int, timeout time.Duration) (*httptest.Server, *toprr.Engine) {
	t.Helper()
	reg, engine := testRegistry(t, n)
	ts := httptest.NewServer(newServer(reg, timeout, 32<<20))
	t.Cleanup(ts.Close)
	return ts, engine
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestSolveEndpoint: /v1/solve answers one query with the exact
// H-representation of oR and names the generation it ran against.
func TestSolveEndpoint(t *testing.T) {
	ts, _ := testServer(t, 80, time.Minute)

	resp := postJSON(t, ts.URL+"/v1/solve", queryJSON{K: 3, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Generation uint64     `json:"generation"`
		Result     resultJSON `json:"result"`
	}
	decodeJSON(t, resp, &out)
	if out.Generation != 1 {
		t.Errorf("generation = %d, want 1", out.Generation)
	}
	if len(out.Result.Constraints) == 0 {
		t.Error("no oR constraints returned")
	}
	if out.Result.Stats.InputOptions != 80 {
		t.Errorf("stats report %d input options, want 80", out.Result.Stats.InputOptions)
	}
}

// TestBatchEndpoint: /v1/batch answers every query against one pinned
// generation.
func TestBatchEndpoint(t *testing.T) {
	ts, _ := testServer(t, 80, time.Minute)

	resp := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"queries": []queryJSON{
			{K: 2, Lo: []float64{0.2, 0.2}, Hi: []float64{0.25, 0.25}},
			{K: 3, Lo: []float64{0.3, 0.3}, Hi: []float64{0.35, 0.35}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Generation uint64       `json:"generation"`
		Results    []resultJSON `json:"results"`
	}
	decodeJSON(t, resp, &out)
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(out.Results))
	}
	for i, r := range out.Results {
		if len(r.Constraints) == 0 {
			t.Errorf("result %d has no constraints", i)
		}
	}
}

// TestOpsRoundtrip: mutations publish new generations, show up in the
// op log, and subsequent solves run against the mutated dataset.
func TestOpsRoundtrip(t *testing.T) {
	ts, engine := testServer(t, 60, time.Minute)

	// Insert, then upgrade the inserted option, then withdraw option 0.
	resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{
			{Op: "insert", Point: []float64{0.9, 0.9, 0.9}},
			{Op: "update", Index: 60, Point: []float64{0.95, 0.95, 0.95}},
			{Op: "delete", Index: 0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var applied struct {
		Generation uint64 `json:"generation"`
		Applied    int    `json:"applied"`
	}
	decodeJSON(t, resp, &applied)
	if applied.Generation != 2 || applied.Applied != 3 {
		t.Errorf("applied = %+v, want generation 2, applied 3", applied)
	}
	if engine.Len() != 60 { // +1 insert, -1 delete
		t.Errorf("engine has %d options, want 60", engine.Len())
	}

	// The log reports all three ops, with delete's swap recorded.
	resp, err := http.Get(ts.URL + "/v1/ops?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Generation uint64          `json:"generation"`
		Ops        []appliedOpJSON `json:"ops"`
	}
	decodeJSON(t, resp, &log)
	if len(log.Ops) != 3 {
		t.Fatalf("log has %d entries, want 3", len(log.Ops))
	}
	if log.Ops[2].Op != "delete" || log.Ops[2].Moved != 60 {
		t.Errorf("delete entry = %+v, want Moved=60", log.Ops[2])
	}

	// Solves now run against generation 2.
	resp = postJSON(t, ts.URL+"/v1/solve", queryJSON{K: 2, Lo: []float64{0.2, 0.2}, Hi: []float64{0.25, 0.25}})
	var out struct {
		Generation uint64     `json:"generation"`
		Result     resultJSON `json:"result"`
	}
	decodeJSON(t, resp, &out)
	if out.Generation != 2 {
		t.Errorf("solve ran against generation %d, want 2", out.Generation)
	}
	if out.Result.Stats.InputOptions != 60 {
		t.Errorf("solve saw %d options, want 60", out.Result.Stats.InputOptions)
	}

	// Stats reflect the new generation.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Generation uint64 `json:"generation"`
		Options    int    `json:"options"`
	}
	decodeJSON(t, resp, &stats)
	if stats.Generation != 2 || stats.Options != 60 {
		t.Errorf("stats = %+v, want generation 2 with 60 options", stats)
	}
}

// TestOpsRejectsBadBatches: invalid mutations reject atomically with
// 400 and do not move the generation.
func TestOpsRejectsBadBatches(t *testing.T) {
	ts, engine := testServer(t, 30, time.Minute)

	cases := []map[string]any{
		{"ops": []opJSON{}},
		{"ops": []opJSON{{Op: "upsert", Point: []float64{0.5, 0.5, 0.5}}}},
		{"ops": []opJSON{{Op: "insert", Point: []float64{0.5}}}},
		{"ops": []opJSON{{Op: "insert", Point: []float64{0.5, 0.5, 0.5}}, {Op: "delete", Index: 99}}},
	}
	for i, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/ops", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	if engine.Generation() != 1 {
		t.Errorf("rejected batches moved the generation to %d", engine.Generation())
	}
}

// TestRequestDeadline: the per-request deadline aborts long solves with
// 504.
func TestRequestDeadline(t *testing.T) {
	ts, _ := testServer(t, 400, time.Nanosecond)

	resp := postJSON(t, ts.URL+"/v1/solve", queryJSON{K: 5, Lo: []float64{0.1, 0.1}, Hi: []float64{0.5, 0.5}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestBadRequests: wrong methods and malformed bodies map to 405/400.
func TestBadRequests(t *testing.T) {
	ts, _ := testServer(t, 30, time.Minute)

	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/solve", queryJSON{K: 0, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0 status = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/solve", queryJSON{K: 2, Lo: []float64{0.2}, Hi: []float64{0.3, 0.3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched box status = %d, want 400", resp.StatusCode)
	}
}

// TestGracefulShutdown: cancelling the run context drains the server and
// run returns cleanly; the listener stops accepting afterwards.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := testRegistry(t, 30)
	srv := &http.Server{Handler: newServer(reg, time.Minute, 32<<20)}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() { done <- run(ctx, srv, ln, 5*time.Second) }()

	url := fmt.Sprintf("http://%s/v1/stats", ln.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestStatsExposePatchCounters: a pure-insert ops batch routes through
// the engine's patch plane, and the cumulative patch counters surface
// per dataset and in the totals of /v1/stats (the legacy top-level
// mirror stays pre-tenancy and does not carry them).
func TestStatsExposePatchCounters(t *testing.T) {
	ts, engine := testServer(t, 50, time.Minute)

	// Warm a whole-dataset rank memo so the insert has something to
	// patch, then apply one pure insert and one delete.
	if _, err := engine.Rank(vec.Of(0.3, 0.25), 5); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{{Op: "insert", Point: []float64{0.99, 0.98, 0.97}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{{Op: "delete", Index: 0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Datasets []struct {
			Name           string `json:"name"`
			PatchedEntries int    `json:"cache_patched_entries"`
			PatchInserts   int    `json:"cache_patch_inserts"`
			UntouchedAdvs  int    `json:"cache_untouched_advances"`
		} `json:"datasets"`
		Totals struct {
			PatchedEntries int `json:"cache_patched_entries"`
			PatchInserts   int `json:"cache_patch_inserts"`
		} `json:"totals"`
	}
	decodeJSON(t, resp, &stats)
	if len(stats.Datasets) != 1 || stats.Datasets[0].Name != "default" {
		t.Fatalf("datasets = %+v", stats.Datasets)
	}
	ds := stats.Datasets[0]
	// Exactly the insert batch went through the patch path (the delete
	// took the reshape path), and the dominant point cracked the warmed
	// rank memo.
	if ds.PatchInserts != 1 {
		t.Errorf("cache_patch_inserts = %d, want 1", ds.PatchInserts)
	}
	if ds.PatchedEntries == 0 {
		t.Error("cache_patched_entries = 0, want > 0 (dominant insert cracked the rank memo)")
	}
	if ds.UntouchedAdvs != 0 {
		t.Errorf("cache_untouched_advances = %d, want 0", ds.UntouchedAdvs)
	}
	if stats.Totals.PatchInserts != ds.PatchInserts || stats.Totals.PatchedEntries != ds.PatchedEntries {
		t.Errorf("totals %+v do not mirror the single dataset %+v", stats.Totals, ds)
	}
}
