package bench

// The standing-query experiment: an engine with live subscriptions
// takes two insert streams — a dominated stream (options at the origin,
// which can enter no memoized top-k) and a cracking stream (near the
// unit corner, which enters every one). The table records, per phase
// and shard count, the mutation signals suppressed without any
// re-solve, the re-evaluations actually run, and the region events
// delivered. The counts are deterministic — pinned seeds, synchronous
// suppression accounting — so cmd/benchrunner -compare gates them: the
// dominated stream must suppress everything (zero events, zero
// re-solves) and the cracking stream must deliver.

import (
	"context"
	"fmt"

	"toprr/internal/dataset"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// WatchShardGrid is the shard counts the watch experiment sweeps.
var WatchShardGrid = []int{1, 4}

const (
	watchSubs            = 3   // standing subscriptions per engine
	watchDominatedBursts = 100 // origin inserts: provably region-neutral
	watchCrackingBursts  = 5   // unit-corner inserts: crack every top-k
	watchTableID         = "Watch"
)

// corner builds the b-th cracking insert: just inside the unit corner,
// strictly dominating the [0,1]^d bulk, distinct per burst so each
// insert moves the k-th score again.
func corner(d, b int) vec.Vector {
	p := vec.New(d)
	for j := range p {
		p[j] = 0.99 - 0.002*float64(b) - 0.001*float64(j)
	}
	return p
}

// Watch measures the standing-query plane's notification economy:
// events delivered vs solves avoided across a dominated and a cracking
// insert stream, per shard count.
func Watch(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN/4, DefaultD)
	d := DefaultD
	ctx := context.Background()

	t := &Table{
		ID: watchTableID,
		Caption: fmt.Sprintf("standing queries, IND n=%s d=%d k=%d, %d subscriptions: %d dominated + %d cracking inserts (signals suppressed vs re-solves vs events)",
			humanN(len(ds.Pts)), d, DefaultK, watchSubs, watchDominatedBursts, watchCrackingBursts),
		Header: []string{"shards", "phase", "inserts", "suppressed", "evals", "events", "suppression rate"},
	}

	for _, shards := range WatchShardGrid {
		eng := toprr.NewEngine(ds.Pts[:len(ds.Pts):len(ds.Pts)], toprr.WithShards(shards))
		regions := s.Regions(d-1, DefaultSigma, 1, int64(300+shards))
		subs := make([]*toprr.Subscription, 0, watchSubs)
		for i := 0; i < watchSubs; i++ {
			sub, err := eng.Watch(DefaultK, regions[i%len(regions)], toprr.WatchOptions{Debounce: -1})
			if err != nil {
				panic("bench: watch subscribe failed: " + err.Error())
			}
			subs = append(subs, sub)
		}

		run := func(phase string, inserts int, point func(b int) vec.Vector) {
			base := eng.WatchStats()
			for b := 0; b < inserts; b++ {
				if _, err := eng.Apply(ctx, []toprr.Op{toprr.Insert(point(b))}); err != nil {
					panic("bench: watch apply failed: " + err.Error())
				}
			}
			if err := eng.WatchSettle(ctx); err != nil {
				panic("bench: watch settle failed: " + err.Error())
			}
			st := eng.WatchStats()
			suppressed := st.Suppressed - base.Suppressed
			evals := st.Evaluations - base.Evaluations
			events := st.Delivered - base.Delivered
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", shards),
				phase,
				fmt.Sprintf("%d", inserts),
				fmt.Sprintf("%d", suppressed),
				fmt.Sprintf("%d", evals),
				fmt.Sprintf("%d", events),
				fmt.Sprintf("%.3f", float64(suppressed)/float64(inserts)),
			})
		}

		// Dominated phase: every insert sits at the origin, below every
		// memoized k-th score, so the patch plane proves each batch
		// region-neutral and the hub drops it for free.
		run("dominated", watchDominatedBursts, func(int) vec.Vector { return vec.New(d) })

		// Cracking phase: each insert lands just inside the unit corner,
		// cracks every memoized top-k, and must reach the subscriptions.
		run("cracking", watchCrackingBursts, func(b int) vec.Vector { return corner(d, b) })

		for _, sub := range subs {
			sub.Close()
		}
		eng.Close()
	}
	return []*Table{t}
}
