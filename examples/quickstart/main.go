// Quickstart: solve the paper's running example (Figure 1) end to end.
//
// A market of six laptops is scored on speed and battery life. We target
// the clientele wR = [0.2, 0.8] (the weight placed on speed) and ask:
// where must a new laptop land in attribute space so that it is in the
// top-3 for every such customer?
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func main() {
	// The dataset of Figure 1(a).
	laptops := []vec.Vector{
		vec.Of(0.9, 0.4), // p1
		vec.Of(0.7, 0.9), // p2
		vec.Of(0.6, 0.2), // p3
		vec.Of(0.3, 0.8), // p4
		vec.Of(0.2, 0.3), // p5
		vec.Of(0.1, 0.1), // p6
	}

	// Target user type: speed weight anywhere in [0.2, 0.8]; k = 3.
	prob := toprr.NewProblem(laptops, 3, toprr.PrefBox(vec.Of(0.2), vec.Of(0.8)))
	res, err := toprr.Solve(context.Background(), prob, toprr.Options{Alg: toprr.TASStar})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TopRR solved. The top-ranking region oR is the convex polygon:")
	for _, v := range res.OR.VertexPoints() {
		fmt.Printf("  vertex %v\n", v)
	}
	fmt.Printf("Vall has %d preference vertices (paper: {0.2, 0.4, 2/3, 0.8}):\n", len(res.Vall))
	for _, iv := range res.Vall {
		fmt.Printf("  w=%v  TopK(w)=%.4f\n", iv.W, iv.KthScore)
	}

	// Probe a few placements.
	for _, o := range []vec.Vector{vec.Of(0.85, 0.85), vec.Of(0.5, 0.5), vec.Of(0.7, 0.9)} {
		verdict := "NOT top-ranking"
		if res.IsTopRanking(o) {
			verdict = "top-ranking (top-3 for every targeted user)"
		}
		fmt.Printf("placement %v: %s\n", o, verdict)
	}

	// Cheapest new laptop with a guaranteed top-3 ranking, for a
	// manufacturing cost of speed^2 + battery^2.
	opt, err := res.CostOptimalNew()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-optimal new option: %v (cost %.4f)\n", opt, opt.Dot(opt))
}
