package core

import (
	"fmt"
	"math/rand"

	"toprr/internal/geom"
	"toprr/internal/skyband"
	"toprr/internal/vec"
)

// ReverseTopK computes the monochromatic reverse top-k of option index
// pi over preference region wR: the maximal subregions of wR in whose
// every preference pi ranks among the top-k. This is the query of Tang
// et al. (SIGMOD 2017, reference [41] of the paper), obtained here as a
// by-product of the kIPR partitioning machinery: within each kIPR the
// top-k set is constant, so pi's membership is decided at any one
// vertex.
//
// The returned polytopes are disjoint up to shared boundaries and their
// union is exactly {w in wR : pi in top-k at w}.
func ReverseTopK(pts []vec.Vector, k int, wr *geom.Polytope, pi int, opt Options) ([]*geom.Polytope, error) {
	p := NewProblem(pts, k, wr)
	opt.Alg = TAS // kIPR partitioning without Lemma 5/7 shortcuts, which
	// could otherwise accept regions where pi drifts in and out of the
	// k-th rank.
	opt = opt.withDefaults()
	s := &solver{
		prob: p,
		opt:  opt,
		rng:  rand.New(rand.NewSource(opt.Seed + 1)),
		vall: make(map[string]ImpactVertex),
	}
	s.stats.InputOptions = p.Scorer.Len()
	ptsAll := s.points()
	rd := skyband.NewRDomVerts(wr.VertexPoints())
	active := skyband.RSkyband(ptsAll, k, rd)
	// pi itself must stay in the candidate set even if the filter would
	// drop it (its membership is the question being answered).
	hasPi := false
	for _, idx := range active {
		if idx == pi {
			hasPi = true
			break
		}
	}
	if !hasPi {
		active = append(active, pi)
	}
	s.stats.FilteredOptions = len(active)

	var out []*geom.Polytope
	stack := []regionCtx{{region: wr, cache: s.newCache(k, active)}}
	for len(stack) > 0 {
		rc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.stats.Regions+s.stats.Splits > opt.MaxRegions {
			return nil, fmt.Errorf("core: reverse top-k exceeded region budget %d", opt.MaxRegions)
		}
		before := s.stats.Regions
		children, err := s.process(rc)
		if err != nil {
			return nil, err
		}
		if len(children) == 0 && s.stats.Regions > before {
			// Region confirmed. Membership is decided at the centroid, a
			// strictly interior point: region vertices sit on score-tie
			// hyperplanes by construction, where the deterministic
			// tie-break could misstate pi's (interior) membership.
			r := p.Scorer.TopK(rc.region.Centroid(), rc.cache.K(), rc.cache.Active())
			if r.Contains(pi) {
				out = append(out, rc.region)
			}
		}
		stack = append(stack, children...)
	}
	return out, nil
}
