package store

import (
	"math"
	"strings"
	"testing"

	"toprr/internal/vec"
)

func pts3() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.1, 0.9),
		vec.Of(0.5, 0.5),
		vec.Of(0.9, 0.1),
	}
}

func mustNew(t *testing.T, pts []vec.Vector) *Store {
	t.Helper()
	s, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := New([]vec.Vector{vec.Of(0.1, 0.2), vec.Of(0.3)}); err == nil {
		t.Error("inconsistent dimensions should error")
	}
	if _, err := New([]vec.Vector{vec.Of(0.1, 1.2)}); err == nil {
		t.Error("component outside [0,1] should error")
	}
	if _, err := New([]vec.Vector{vec.Of(0.1, math.NaN())}); err == nil {
		t.Error("NaN component should error")
	}
}

func TestInsertAppends(t *testing.T) {
	s := mustNew(t, pts3())
	if g := s.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}
	snap, delta, err := s.Apply([]Op{Insert(vec.Of(0.3, 0.3))})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gen != 2 || s.Generation() != 2 {
		t.Errorf("generation = %d/%d, want 2", snap.Gen, s.Generation())
	}
	if snap.Scorer.Len() != 4 {
		t.Errorf("len = %d, want 4", snap.Scorer.Len())
	}
	if got := snap.Scorer.Point(3); !got.Equal(vec.Of(0.3, 0.3), 0) {
		t.Errorf("appended point = %v", got)
	}
	// The only dirty slot is the brand-new one: nothing an old-generation
	// cache references.
	if len(delta.Dirty) != 1 || delta.Dirty[0] != 3 {
		t.Errorf("dirty = %v, want [3]", delta.Dirty)
	}
	if snap.Scorer.Generation() != 2 {
		t.Errorf("scorer generation = %d, want 2", snap.Scorer.Generation())
	}
}

func TestDeleteSwapsWithLast(t *testing.T) {
	s := mustNew(t, pts3())
	snap, delta, err := s.Apply([]Op{Delete(0)})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scorer.Len() != 2 {
		t.Fatalf("len = %d, want 2", snap.Scorer.Len())
	}
	if !snap.Scorer.Point(0).Equal(vec.Of(0.9, 0.1), 0) {
		t.Errorf("slot 0 = %v, want the former last option", snap.Scorer.Point(0))
	}
	want := map[int]bool{0: true, 2: true}
	for _, i := range delta.Dirty {
		if !want[i] {
			t.Errorf("unexpected dirty slot %d", i)
		}
		delete(want, i)
	}
	if len(want) != 0 {
		t.Errorf("missing dirty slots: %v (got %v)", want, delta.Dirty)
	}
	log := s.Log(0)
	if len(log) != 1 || log[0].Moved != 2 {
		t.Errorf("log = %+v, want one entry with Moved=2", log)
	}
}

func TestUpdateReplacesAndClones(t *testing.T) {
	s := mustNew(t, pts3())
	p := vec.Of(0.2, 0.2)
	snap, delta, err := s.Apply([]Op{Update(1, p)})
	if err != nil {
		t.Fatal(err)
	}
	p[0] = 0.999 // caller mutation must not reach the store
	if got := snap.Scorer.Point(1); got[0] != 0.2 {
		t.Errorf("update aliased the caller's vector: %v", got)
	}
	if got := s.Log(0)[0].Op.Point; got[0] != 0.2 {
		t.Errorf("op log aliased the caller's vector: %v", got)
	}
	// And log consumers cannot mutate history either.
	s.Log(0)[0].Op.Point[0] = 0.888
	if got := s.Log(0)[0].Op.Point; got[0] != 0.2 {
		t.Errorf("log consumers share the store's history slices: %v", got)
	}
	if len(delta.Dirty) != 1 || delta.Dirty[0] != 1 {
		t.Errorf("dirty = %v, want [1]", delta.Dirty)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := mustNew(t, pts3())
	old := s.Snapshot()
	if _, _, err := s.Apply([]Op{Update(0, vec.Of(0.7, 0.7)), Insert(vec.Of(0.4, 0.4)), Delete(2)}); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still reads the original data.
	if old.Gen != 1 || old.Scorer.Len() != 3 {
		t.Fatalf("old snapshot changed: gen=%d len=%d", old.Gen, old.Scorer.Len())
	}
	for i, want := range pts3() {
		if !old.Scorer.Point(i).Equal(want, 0) {
			t.Errorf("old snapshot point %d = %v, want %v", i, old.Scorer.Point(i), want)
		}
	}
}

func TestApplyIsAtomic(t *testing.T) {
	s := mustNew(t, pts3())
	_, _, err := s.Apply([]Op{Insert(vec.Of(0.2, 0.2)), Delete(99)})
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Fatalf("err = %v, want op-1 delete failure", err)
	}
	if s.Generation() != 1 || s.Len() != 3 {
		t.Errorf("failed batch mutated the store: gen=%d len=%d", s.Generation(), s.Len())
	}
	if len(s.Log(0)) != 0 {
		t.Error("failed batch reached the log")
	}
}

func TestApplyValidation(t *testing.T) {
	s := mustNew(t, []vec.Vector{vec.Of(0.5, 0.5)})
	cases := []Op{
		Insert(vec.Of(0.5)),              // wrong dimension
		Insert(vec.Of(0.5, 1.5)),         // out of range
		Insert(vec.Of(0.5, math.Inf(1))), // not finite
		Delete(0),                        // would empty the store
		Delete(-1),
		Update(3, vec.Of(0.5, 0.5)),
		{Kind: OpKind(42)},
	}
	for _, op := range cases {
		if _, _, err := s.Apply([]Op{op}); err == nil {
			t.Errorf("op %+v should error", op)
		}
	}
	if s.Generation() != 1 {
		t.Errorf("generation moved to %d on rejected ops", s.Generation())
	}
}

func TestBatchIndicesAreSequential(t *testing.T) {
	// Within one batch, indices address the dataset as left by the
	// preceding ops: delete(0) swaps the last option in, so update(0)
	// afterwards hits the swapped-in option.
	s := mustNew(t, pts3())
	snap, _, err := s.Apply([]Op{Delete(0), Update(0, vec.Of(0.25, 0.25))})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scorer.Len() != 2 || !snap.Scorer.Point(0).Equal(vec.Of(0.25, 0.25), 0) {
		t.Errorf("batch semantics broken: len=%d slot0=%v", snap.Scorer.Len(), snap.Scorer.Point(0))
	}
	if snap.Gen != 2 {
		t.Errorf("one batch should bump one generation, got %d", snap.Gen)
	}
}

func TestLogSince(t *testing.T) {
	s := mustNew(t, pts3())
	for i := 0; i < 3; i++ {
		if _, _, err := s.Apply([]Op{Insert(vec.Of(0.1, 0.1))}); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Log(0)
	if len(all) != 3 || all[0].Seq != 1 || all[2].Seq != 3 {
		t.Fatalf("log = %+v", all)
	}
	tail := s.Log(2)
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("log since 2 = %+v", tail)
	}
	if got := s.Log(99); len(got) != 0 {
		t.Fatalf("log since future = %+v", got)
	}
}

func TestEmptyApplyIsNoop(t *testing.T) {
	s := mustNew(t, pts3())
	snap, delta, err := s.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gen != 1 || delta.From != delta.To {
		t.Errorf("empty apply bumped the generation: %+v %+v", snap, delta)
	}
}

func TestDeltaClassification(t *testing.T) {
	s := mustNew(t, pts3())

	// A pure-insert batch: Kind says so and Inserted is exactly the new
	// tail slots in ascending order (AdvanceInsert's contract).
	_, delta, err := s.Apply([]Op{Insert(vec.Of(0.2, 0.2)), Insert(vec.Of(0.4, 0.4))})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Kind != DeltaInsertOnly {
		t.Errorf("insert batch Kind = %v, want %v", delta.Kind, DeltaInsertOnly)
	}
	if len(delta.Inserted) != 2 || delta.Inserted[0] != 3 || delta.Inserted[1] != 4 {
		t.Errorf("Inserted = %v, want [3 4]", delta.Inserted)
	}

	// A delete reshapes: slots move, so no Inserted list even if the batch
	// also contains inserts.
	_, delta, err = s.Apply([]Op{Insert(vec.Of(0.6, 0.6)), Delete(0)})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Kind != DeltaReshape || delta.Inserted != nil {
		t.Errorf("mixed batch = %v/%v, want %v/nil", delta.Kind, delta.Inserted, DeltaReshape)
	}

	_, delta, err = s.Apply([]Op{Update(1, vec.Of(0.7, 0.7))})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Kind != DeltaReshape || delta.Inserted != nil {
		t.Errorf("update batch = %v/%v, want %v/nil", delta.Kind, delta.Inserted, DeltaReshape)
	}

	// An empty batch stays the zero Kind.
	_, delta, err = s.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Kind != DeltaEmpty || delta.Inserted != nil {
		t.Errorf("empty batch = %v/%v, want %v/nil", delta.Kind, delta.Inserted, DeltaEmpty)
	}
}
