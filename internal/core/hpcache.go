package core

import (
	"sync"

	"toprr/internal/geom"
	"toprr/internal/oamap"
	"toprr/internal/topk"
)

// HyperplaneCache interns the splitting hyperplanes wHP(p_i, p_j) of
// one dataset generation across queries. The hyperplane depends only on
// the option pair — not on the query region or k — so an engine serving
// many queries over the same dataset recomputes each pair at most once.
//
// The cache is generation-aware: lookups and stores name the scorer the
// solve is pinned to and take effect only while that scorer is the
// cache's current generation, so a solve pinned to an old generation can
// neither read nor write stale geometry once Advance moved the cache
// forward. Advance invalidates *incrementally*: only pairs touching a
// dirty slot are dropped, every other hyperplane is carried into the new
// generation. Safe for concurrent use.
//
// The cache is striped: a sharded engine builds one stripe per shard
// (NewShardedHyperplaneCache), each with its own lock, map and share of
// the size budget, so the parallel solver's workers never contend on a
// single cache mutex. Each pair lives in exactly one stripe, and every
// stripe carries its own generation pointer, so the per-stripe locks
// preserve the generation-check guarantees without a shared lock.
type HyperplaneCache struct {
	stripes []hpStripe
}

// hpStripe is one independently locked slice of the cache. The entry
// table is an open-addressed map keyed by the packed pair — warm
// lookups are allocation-free (a CI-gated invariant, see
// docs/PERFORMANCE.md).
type hpStripe struct {
	mu        sync.RWMutex
	scorer    *topk.Scorer
	m         oamap.Map[hpEntry]
	limit     int
	evictions int // entries dropped by Advance or refused at the cap
}

type hpEntry struct {
	hs geom.Halfspace
	ok bool // false: score functions (numerically) parallel, no cut
}

// hyperplaneCacheLimit bounds interned pairs so a long-lived engine's
// memory does not grow with query diversity (up to O(|D'|^2) pairs
// exist); beyond the limit, hyperplanes are recomputed on demand. The
// budget splits evenly across stripes.
const hyperplaneCacheLimit = 1 << 20

// NewHyperplaneCache builds an empty single-stripe cache bound to one
// dataset generation's scorer.
func NewHyperplaneCache(scorer *topk.Scorer) *HyperplaneCache {
	return NewShardedHyperplaneCache(scorer, 1)
}

// NewShardedHyperplaneCache is NewHyperplaneCache with one stripe per
// shard, splitting the size budget across them.
func NewShardedHyperplaneCache(scorer *topk.Scorer, shards int) *HyperplaneCache {
	if shards < 1 {
		shards = 1
	}
	if shards > topk.MaxShards {
		shards = topk.MaxShards
	}
	c := &HyperplaneCache{stripes: make([]hpStripe, shards)}
	limit := hyperplaneCacheLimit / shards
	if limit < 1 {
		limit = 1
	}
	for i := range c.stripes {
		c.stripes[i].scorer = scorer
		c.stripes[i].limit = limit
	}
	return c
}

// pairKey packs an ordered option pair (the hyperplane's halfspace
// orientation depends on the order).
func pairKey(i, j int) uint64 { return uint64(i)<<32 | uint64(uint32(j)) }

// stripeFor maps a pair to its owning stripe with a cheap avalanche mix
// so adjacent slots spread across stripes.
func (c *HyperplaneCache) stripeFor(i, j int) *hpStripe {
	if len(c.stripes) == 1 {
		return &c.stripes[0]
	}
	h := pairKey(i, j)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.stripes[h%uint64(len(c.stripes))]
}

// lookupFor returns the cached hyperplane for the ordered pair (i, j),
// provided sc is the cache's current generation.
func (c *HyperplaneCache) lookupFor(sc *topk.Scorer, i, j int) (hpEntry, bool) {
	s := c.stripeFor(i, j)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.scorer != sc {
		return hpEntry{}, false
	}
	return s.m.Get(pairKey(i, j))
}

// storeFor records the hyperplane for the ordered pair (i, j), unless
// the stripe is full or the cache has advanced past sc's generation (a
// stale solve must not publish geometry into a newer generation).
func (c *HyperplaneCache) storeFor(sc *topk.Scorer, i, j int, e hpEntry) {
	s := c.stripeFor(i, j)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scorer != sc {
		return
	}
	if s.m.Len() < s.limit {
		s.m.Put(pairKey(i, j), e)
	} else {
		s.evictions++
	}
}

// Advance moves the cache to a new dataset generation, dropping exactly
// the pairs that involve a dirty slot (see store.Delta): an insert
// touches no existing slot and keeps every hyperplane, a delete or
// update drops only the pairs of the affected slots. Stripes advance
// one at a time under their own locks; a pair lives in exactly one
// stripe, so per-stripe generation checks keep stale solves out during
// the pass.
func (c *HyperplaneCache) Advance(sc *topk.Scorer, dirty []int) {
	// Slots at or beyond the old generation's length cannot appear in an
	// interned pair; filtering them lets a pure insert advance without
	// scanning the maps — or allocating — at all.
	c.stripes[0].mu.RLock()
	oldLen := c.stripes[0].scorer.Len()
	c.stripes[0].mu.RUnlock()
	nOld := 0
	for _, i := range dirty {
		if i < oldLen {
			nOld++
		}
	}
	var dirtySet map[int]bool
	if nOld > 0 {
		dirtySet = make(map[int]bool, nOld)
		for _, i := range dirty {
			if i < oldLen {
				dirtySet[i] = true
			}
		}
	}
	for si := range c.stripes {
		s := &c.stripes[si]
		s.mu.Lock()
		if len(dirtySet) > 0 {
			// Range must not mutate the map, so collect first, then drop.
			var drop []uint64
			s.m.Range(func(key uint64, _ hpEntry) bool {
				i, j := int(key>>32), int(uint32(key))
				if dirtySet[i] || dirtySet[j] {
					drop = append(drop, key)
				}
				return true
			})
			for _, key := range drop {
				s.m.Delete(key)
				s.evictions++
			}
		}
		s.scorer = sc
		s.mu.Unlock()
	}
}

// AdvanceInsert moves the cache to a new generation produced by a
// pure-insert batch. Inserted slots cannot appear in an interned pair —
// both ends of every cached pair predate the batch and are
// bit-identical across the generations — so every hyperplane is kept
// and the stripes only rebind to the new scorer. This is what Advance
// does for such deltas, minus the dirty-slot filtering pass: the
// engine's mutation path calls it for store.DeltaInsertOnly batches so
// an insert advances the geometry plane with generation-checked
// rebinding and no allocation.
func (c *HyperplaneCache) AdvanceInsert(sc *topk.Scorer) {
	for si := range c.stripes {
		s := &c.stripes[si]
		s.mu.Lock()
		s.scorer = sc
		s.mu.Unlock()
	}
}

// Len reports the number of interned hyperplanes across stripes.
func (c *HyperplaneCache) Len() int {
	n := 0
	for si := range c.stripes {
		s := &c.stripes[si]
		s.mu.RLock()
		n += s.m.Len()
		s.mu.RUnlock()
	}
	return n
}

// StripeLens reports each stripe's interned-pair count, indexed by
// stripe (= shard) id.
func (c *HyperplaneCache) StripeLens() []int {
	out := make([]int, len(c.stripes))
	for si := range c.stripes {
		s := &c.stripes[si]
		s.mu.RLock()
		out[si] = s.m.Len()
		s.mu.RUnlock()
	}
	return out
}

// Evictions reports entries dropped by generation advances or refused at
// the size cap, across stripes.
func (c *HyperplaneCache) Evictions() int {
	n := 0
	for si := range c.stripes {
		s := &c.stripes[si]
		s.mu.RLock()
		n += s.evictions
		s.mu.RUnlock()
	}
	return n
}
