package geom

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

func unitBox(d int) *Polytope {
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	return NewBox(lo, hi)
}

func TestNewBoxStructure(t *testing.T) {
	for d := 1; d <= 5; d++ {
		b := unitBox(d)
		if got, want := b.NumVertices(), 1<<uint(d); got != want {
			t.Errorf("d=%d: vertices = %d, want %d", d, got, want)
		}
		if got, want := len(b.HS), 2*d; got != want {
			t.Errorf("d=%d: halfspaces = %d, want %d", d, got, want)
		}
		// Every vertex must be tight at exactly d halfspaces.
		for _, v := range b.Verts {
			if v.Tight.Count() != d {
				t.Errorf("d=%d: vertex %v tight at %d facets, want %d", d, v.Point, v.Tight.Count(), d)
			}
		}
	}
}

func TestBoxContains(t *testing.T) {
	b := unitBox(3)
	if !b.Contains(vec.Of(0.5, 0.5, 0.5)) {
		t.Error("interior point rejected")
	}
	if !b.Contains(vec.Of(0, 1, 0.5)) {
		t.Error("boundary point rejected")
	}
	if b.Contains(vec.Of(1.1, 0.5, 0.5)) {
		t.Error("exterior point accepted")
	}
}

func TestNewBoxPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBox(vec.Of(0, 0), vec.Of(1, -1))
}

func TestSplitSquareDiagonal(t *testing.T) {
	b := unitBox(2)
	// x - y >= 0: the lower-right triangle.
	h := NewHalfspace(vec.Of(1, -1), 0)
	neg, pos := b.Split(h)
	if neg.IsEmpty() || pos.IsEmpty() {
		t.Fatal("diagonal split produced an empty side")
	}
	if got := pos.NumVertices(); got != 3 {
		t.Errorf("pos side vertices = %d, want 3", got)
	}
	if got := neg.NumVertices(); got != 3 {
		t.Errorf("neg side vertices = %d, want 3", got)
	}
	if !pos.Contains(vec.Of(0.9, 0.1)) || pos.Contains(vec.Of(0.1, 0.9)) {
		t.Error("pos side membership wrong")
	}
	if !neg.Contains(vec.Of(0.1, 0.9)) || neg.Contains(vec.Of(0.9, 0.1)) {
		t.Error("neg side membership wrong")
	}
	wantArea := 0.5
	if a := pos.Volume(0); math.Abs(a-wantArea) > 1e-9 {
		t.Errorf("pos area = %v, want %v", a, wantArea)
	}
}

func TestSplitMisses(t *testing.T) {
	b := unitBox(2)
	neg, pos := b.Split(NewHalfspace(vec.Of(1, 0), -1)) // x >= -1: everything
	if !neg.IsEmpty() {
		t.Error("neg side should be empty when hyperplane misses")
	}
	if pos.NumVertices() != 4 {
		t.Error("pos side should be the whole box")
	}
	neg, pos = b.Split(NewHalfspace(vec.Of(1, 0), 2)) // x >= 2: nothing
	if !pos.IsEmpty() || neg.NumVertices() != 4 {
		t.Error("degenerate split on far side wrong")
	}
}

func TestSplitInterval1D(t *testing.T) {
	b := NewBox(vec.Of(0.2), vec.Of(0.8))
	neg, pos := b.Split(NewHalfspace(vec.Of(1), 0.5))
	if neg.IsEmpty() || pos.IsEmpty() {
		t.Fatal("1-D split failed")
	}
	loN, hiN := neg.BoundingBox()
	loP, hiP := pos.BoundingBox()
	if math.Abs(loN[0]-0.2) > Eps || math.Abs(hiN[0]-0.5) > Eps {
		t.Errorf("neg interval [%v,%v]", loN[0], hiN[0])
	}
	if math.Abs(loP[0]-0.5) > Eps || math.Abs(hiP[0]-0.8) > Eps {
		t.Errorf("pos interval [%v,%v]", loP[0], hiP[0])
	}
}

func TestSplitVolumeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for d := 2; d <= 3; d++ {
		for iter := 0; iter < 30; iter++ {
			b := unitBox(d)
			a := vec.New(d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			if a.Norm() < 0.1 {
				continue
			}
			h := NewHalfspace(a, a.Dot(b.Centroid())+0.2*rng.NormFloat64())
			neg, pos := b.Split(h)
			got := neg.Volume(0) + pos.Volume(0)
			if math.Abs(got-1) > 1e-6 {
				t.Errorf("d=%d iter=%d: split volumes sum to %v, want 1", d, iter, got)
			}
		}
	}
}

func TestSplitMembershipPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for d := 2; d <= 5; d++ {
		b := unitBox(d)
		a := vec.New(d)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		h := NewHalfspace(a, a.Dot(b.Centroid()))
		neg, pos := b.Split(h)
		for s := 0; s < 200; s++ {
			x := vec.New(d)
			for j := range x {
				x[j] = rng.Float64()
			}
			inNeg, inPos := neg.Contains(x), pos.Contains(x)
			if !inNeg && !inPos {
				t.Fatalf("d=%d: point %v in neither side", d, x)
			}
			side := Side(h.Eval(x))
			if side > 0 && !inPos {
				t.Fatalf("d=%d: strict-positive point missing from pos", d)
			}
			if side < 0 && !inNeg {
				t.Fatalf("d=%d: strict-negative point missing from neg", d)
			}
		}
	}
}

func TestRecursiveSplitsStayConsistent(t *testing.T) {
	// Repeatedly split a 3-D box and verify vertices remain inside and
	// tight sets remain valid.
	rng := rand.New(rand.NewSource(5))
	p := unitBox(3)
	for iter := 0; iter < 12; iter++ {
		a := vec.New(3)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		if a.Norm() < 0.1 {
			continue
		}
		c := p.Centroid()
		h := NewHalfspace(a, a.Dot(c))
		neg, pos := p.Split(h)
		if neg.IsEmpty() || pos.IsEmpty() {
			t.Fatalf("iter %d: centroid split produced empty side", iter)
		}
		for _, child := range []*Polytope{neg, pos} {
			for _, v := range child.Verts {
				if !child.Contains(v.Point) {
					t.Fatalf("iter %d: vertex %v outside own polytope", iter, v.Point)
				}
				for hi, hh := range child.HS {
					tight := almostEqual(hh.A.Dot(v.Point), hh.B)
					if tight != v.Tight.Get(hi) {
						t.Fatalf("iter %d: tight set inconsistent at %v", iter, v.Point)
					}
				}
			}
		}
		if rng.Intn(2) == 0 {
			p = neg
		} else {
			p = pos
		}
	}
}

func TestSplitGrazingKeepsFace(t *testing.T) {
	// A hyperplane touching the box only at the top corner: the >= side
	// must be the corner itself (a 0-dimensional face), not empty. This
	// is how an option region legitimately collapses when an existing
	// option sits at the top corner of the option space.
	b := unitBox(2)
	h := NewHalfspace(vec.Of(0.3, 0.7), 1) // 0.3x + 0.7y >= 1
	neg, pos := b.Split(h)
	if pos.IsEmpty() {
		t.Fatal("grazing split lost the corner face")
	}
	if pos.NumVertices() != 1 || !pos.Verts[0].Point.Equal(vec.Of(1, 1), Eps) {
		t.Fatalf("face should be the corner, got %v", pos.VertexPoints())
	}
	if !pos.Contains(vec.Of(1, 1)) || pos.Contains(vec.Of(0.5, 0.5)) {
		t.Error("face membership wrong")
	}
	if neg.NumVertices() != 4 {
		t.Error("<= side should be the whole box")
	}
	// Clipping by the same halfspace keeps the face too.
	if got := b.Clip(h); got.IsEmpty() || got.NumVertices() != 1 {
		t.Error("Clip should keep the grazing face")
	}
	// An edge-grazing split keeps the full edge.
	hEdge := NewHalfspace(vec.Of(1, 0), 1) // x >= 1
	_, edge := b.Split(hEdge)
	if edge.NumVertices() != 2 {
		t.Fatalf("edge face should have 2 vertices, got %d", edge.NumVertices())
	}
}

func TestClipRedundantFastPath(t *testing.T) {
	b := unitBox(3)
	got := b.Clip(NewHalfspace(vec.Of(1, 1, 1), -5))
	if got != b {
		t.Error("redundant clip should return the receiver unchanged")
	}
}

func TestClipEmptyResult(t *testing.T) {
	b := unitBox(2)
	got := b.Clip(NewHalfspace(vec.Of(1, 0), 2))
	if !got.IsEmpty() {
		t.Error("infeasible clip should be empty")
	}
	if !got.Clip(NewHalfspace(vec.Of(1, 0), 0)).IsEmpty() {
		t.Error("clip of empty should stay empty")
	}
}

func TestFromHalfspacesTriangle(t *testing.T) {
	// x >= 0, y >= 0, x + y <= 1 within the unit box.
	hs := []Halfspace{
		NewHalfspace(vec.Of(-1, -1), -1),
	}
	p := FromHalfspaces(hs, vec.Of(0, 0), vec.Of(1, 1))
	if p.NumVertices() != 3 {
		t.Fatalf("triangle vertices = %d, want 3", p.NumVertices())
	}
	if a := p.Volume(0); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("triangle area = %v, want 0.5", a)
	}
}

func TestFromHalfspacesEmpty(t *testing.T) {
	hs := []Halfspace{
		NewHalfspace(vec.Of(1, 0), 0.8),
		NewHalfspace(vec.Of(-1, 0), -0.2), // x <= 0.2, contradicts x >= 0.8
	}
	p := FromHalfspaces(hs, vec.Of(0, 0), vec.Of(1, 1))
	if !p.IsEmpty() {
		t.Error("contradictory halfspaces should give empty polytope")
	}
}

func TestFacets(t *testing.T) {
	b := unitBox(2)
	fs := b.Facets()
	if len(fs) != 4 {
		t.Fatalf("square facets = %d, want 4", len(fs))
	}
	for _, f := range fs {
		if len(f.VertexIx) != 2 {
			t.Errorf("square facet should have 2 vertices, got %d", len(f.VertexIx))
		}
	}
}

func TestCanonicalKeyEquality(t *testing.T) {
	a := unitBox(2)
	h := NewHalfspace(vec.Of(1, -1), 0)
	_, p1 := a.Split(h)
	_, p2 := unitBox(2).Split(h)
	if p1.CanonicalKey() != p2.CanonicalKey() {
		t.Error("identical polytopes must share canonical keys")
	}
	neg, _ := a.Split(h)
	if neg.CanonicalKey() == p1.CanonicalKey() {
		t.Error("different polytopes must have different keys")
	}
}

func TestSamplePointInside(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := FromHalfspaces([]Halfspace{NewHalfspace(vec.Of(-1, -1, -1), -1.2)},
		vec.New(3), vec.Of(1, 1, 1))
	for i := 0; i < 100; i++ {
		if x := p.SamplePoint(rng); !p.Contains(x) {
			t.Fatalf("sampled point %v outside polytope", x)
		}
	}
}

func TestVolumeBox(t *testing.T) {
	for d := 1; d <= 3; d++ {
		lo, hi := vec.New(d), vec.New(d)
		for j := range hi {
			hi[j] = 0.5
		}
		b := NewBox(lo, hi)
		want := math.Pow(0.5, float64(d))
		if got := b.Volume(0); math.Abs(got-want) > 1e-9 {
			t.Errorf("d=%d box volume = %v, want %v", d, got, want)
		}
	}
}

func TestVolumeMonteCarloHighDim(t *testing.T) {
	b := unitBox(4)
	got := b.Volume(50000)
	if math.Abs(got-1) > 0.05 {
		t.Errorf("4-D box MC volume = %v, want ~1", got)
	}
	// Half-box via a clip.
	half := b.Clip(NewHalfspace(vec.Of(1, 0, 0, 0), 0.5))
	if got := half.Volume(50000); math.Abs(got-0.5) > 0.05 {
		t.Errorf("4-D half box MC volume = %v, want ~0.5", got)
	}
}

func TestBitsOps(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Set/Get wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	o := NewBits(130)
	o.Set(64)
	if !b.Contains(o) {
		t.Error("Contains subset failed")
	}
	o.Set(2)
	if b.Contains(o) {
		t.Error("Contains should fail on non-subset")
	}
	and := b.And(o)
	if and.Count() != 1 || !and.Get(64) {
		t.Error("And wrong")
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Error("Clone aliases storage")
	}
}

func TestHalfspaceFlipNormalize(t *testing.T) {
	h := NewHalfspace(vec.Of(3, 4), 5)
	f := h.Flip()
	x := vec.Of(1, 1)
	if math.Abs(h.Eval(x)+f.Eval(x)) > Eps {
		t.Error("Flip should negate Eval")
	}
	n := h.Normalize()
	if math.Abs(n.A.Norm()-1) > Eps {
		t.Error("Normalize should give unit normal")
	}
	if Side(n.Eval(x))*Side(h.Eval(x)) < 0 {
		t.Error("Normalize must preserve orientation")
	}
}

func TestSideClassification(t *testing.T) {
	if Side(1) != 1 || Side(-1) != -1 || Side(0) != 0 || Side(Eps/2) != 0 {
		t.Error("Side misclassifies")
	}
}

func TestHighDimSplitSoundness(t *testing.T) {
	// Dimension 6 split: the combinatorial adjacency machinery must hold
	// up beyond the visualizable cases.
	rng := rand.New(rand.NewSource(11))
	b := unitBox(6)
	a := vec.Of(1, -1, 0.5, -0.5, 0.25, -0.25)
	h := NewHalfspace(a, a.Dot(b.Centroid()))
	neg, pos := b.Split(h)
	if neg.IsEmpty() || pos.IsEmpty() {
		t.Fatal("6-D split through centroid empty")
	}
	for s := 0; s < 500; s++ {
		x := vec.New(6)
		for j := range x {
			x[j] = rng.Float64()
		}
		if !neg.Contains(x) && !pos.Contains(x) {
			t.Fatalf("point %v lost by 6-D split", x)
		}
	}
	// Sampled points of each side satisfy the side constraint.
	for s := 0; s < 100; s++ {
		if h.Eval(pos.SamplePoint(rng)) < -1e-7 {
			t.Fatal("pos sample violates halfspace")
		}
		if h.Eval(neg.SamplePoint(rng)) > 1e-7 {
			t.Fatal("neg sample violates flipped halfspace")
		}
	}
}
