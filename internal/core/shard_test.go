package core

import (
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// TestShardedSolveMatchesUnsharded: with one worker and a fixed seed
// the sharded evaluation plane returns bit-identical top-k results, so
// the whole recursion — splits, Vall, constraint set — must match the
// unsharded solve exactly.
func TestShardedSolveMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 6; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 120, d, 2+rng.Intn(5))
		base, err := Solve(prob, Options{Alg: TASStar, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 8} {
			res, err := Solve(prob, Options{Alg: TASStar, Seed: 9, Shards: shards})
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if len(res.Vall) != len(base.Vall) {
				t.Fatalf("iter %d shards=%d: |Vall| %d != %d", iter, shards, len(res.Vall), len(base.Vall))
			}
			for i := range res.Vall {
				if !res.Vall[i].W.Equal(base.Vall[i].W, 1e-12) || res.Vall[i].KthScore != base.Vall[i].KthScore {
					t.Fatalf("iter %d shards=%d: Vall[%d] differs", iter, shards, i)
				}
			}
			if len(res.ORConstraints) != len(base.ORConstraints) {
				t.Fatalf("iter %d shards=%d: constraint count %d != %d", iter, shards, len(res.ORConstraints), len(base.ORConstraints))
			}
			if res.Stats.Shards != shards || len(res.Stats.ShardStats) != shards {
				t.Fatalf("iter %d shards=%d: shard stats missing: %+v", iter, shards, res.Stats.Shards)
			}
			totalOpts, partials := 0, 0
			for _, ss := range res.Stats.ShardStats {
				totalOpts += ss.Options
				partials += ss.Partials
			}
			if totalOpts != res.Stats.FilteredOptions {
				t.Errorf("iter %d shards=%d: shard populations sum to %d, want |D'|=%d", iter, shards, totalOpts, res.Stats.FilteredOptions)
			}
			if partials == 0 {
				t.Errorf("iter %d shards=%d: no partial computations attributed", iter, shards)
			}
		}
	}
}

// TestShardedSolveParallelWorkers: sharded + parallel workers computes
// the same region (membership-compared; split choices may differ under
// scheduling nondeterminism).
func TestShardedSolveParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for iter := 0; iter < 4; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 140, d, 2+rng.Intn(5))
		base, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(prob, Options{Alg: TASStar, Shards: 4, Workers: 4, Assembler: ParallelClipAssembler{Shards: 4}})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 400; probe++ {
			o := vec.New(d)
			for j := range o {
				o[j] = rng.Float64()
			}
			if base.IsTopRanking(o) != res.IsTopRanking(o) {
				t.Fatalf("iter %d: sharded parallel solve differs at %v", iter, o)
			}
		}
	}
}

// TestParallelClipAssembler: the sharded merge stage — per-shard chunks
// clipped concurrently, then intersected — produces exactly the
// sequential assembler's constraint list and region.
func TestParallelClipAssembler(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 5; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 120, d, 2+rng.Intn(5))
		res, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		seq := ClipAssembler{}.Assemble(prob.Scorer, res.Vall, 5000)
		for _, shards := range []int{1, 2, 4, 8} {
			par := ParallelClipAssembler{Shards: shards}.Assemble(prob.Scorer, res.Vall, 5000)
			if len(par.Constraints) != len(seq.Constraints) {
				t.Fatalf("shards=%d: %d constraints, want %d", shards, len(par.Constraints), len(seq.Constraints))
			}
			for i := range par.Constraints {
				if !par.Constraints[i].A.Equal(seq.Constraints[i].A, 0) || par.Constraints[i].B != seq.Constraints[i].B {
					t.Fatalf("shards=%d: constraint %d differs", shards, i)
				}
			}
			if (par.OR == nil) != (seq.OR == nil) {
				t.Fatalf("shards=%d: geometry presence differs", shards)
			}
			if par.OR == nil {
				continue
			}
			// Same geometric region: cross-check membership on samples
			// biased toward the boundary.
			for probe := 0; probe < 300; probe++ {
				o := vec.New(d)
				for j := range o {
					o[j] = rng.Float64()
				}
				in := true
				for _, h := range seq.Constraints {
					if h.Eval(o) < 0 {
						in = false
						break
					}
				}
				pin := true
				for _, h := range par.Constraints {
					if h.Eval(o) < 0 {
						pin = false
						break
					}
				}
				if in != pin {
					t.Fatalf("shards=%d: membership differs at %v", shards, o)
				}
			}
			if len(par.ShardClips) == 0 {
				t.Fatalf("shards=%d: no per-shard clip attribution", shards)
			}
		}
	}
}
