package core

// Streaming assembly: the partition stage pushes impact vertices into
// the assembler as regions are confirmed, instead of buffering the
// whole Vall slice and handing it over at the end. The stream
// deduplicates impact halfspaces on arrival under quantized uint64
// hashes, so by the time the partition finishes, the assemble stage
// only has the (far smaller) unique constraint set left to sort and
// fold.
//
// Exactness contract: a streaming assembly is bit-identical to the
// buffered Assemble call over the same vertex set, regardless of
// arrival order. Dedup and the deepest-cut sort are arrival-order
// independent by construction — when several vertices quantize to the
// same impact halfspace, the representative kept is the one the
// buffered path (which walks Vall in sorted order) would keep: the
// vertex with the lexicographically smallest quantized weight vector.

import (
	"math"
	"sort"
	"sync"

	"toprr/internal/geom"
	"toprr/internal/oamap"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// impactQuantum is the grid on which impact halfspaces are
// deduplicated; it matches the historical string-key quantum.
const impactQuantum = 1e-9

// vallQuantum is the grid on which Vall vertices are deduplicated and
// ordered.
const vallQuantum = 1e-10

// StreamAssembler is implemented by assemblers that can consume impact
// vertices incrementally as the partition stage confirms regions. The
// solver streams by default whenever Options.Assembler implements it
// (both built-in assemblers do); a custom Assembler without NewStream
// falls back to the buffered call.
type StreamAssembler interface {
	Assembler
	// NewStream opens a streaming assembly for one solve. The returned
	// stream accepts Push from multiple goroutines and is finalized by a
	// single Finish call.
	NewStream(scorer *topk.Scorer, vertexBudget int) AssembleStream
}

// AssembleStream is an in-progress streaming assembly.
type AssembleStream interface {
	// Push feeds one impact vertex. Duplicate impact halfspaces (on the
	// quantized grid) are absorbed. Safe for concurrent use.
	Push(iv ImpactVertex)
	// Finish completes the assembly and returns the output. It must be
	// called exactly once, after every Push has returned.
	Finish() AssembleOutput
}

// lexLessQ orders vectors by their quantized coordinates,
// lexicographically. It is the allocation-free replacement for
// comparing quantized string keys.
func lexLessQ(a, b vec.Vector, quantum float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		qa := int64(math.Round(a[t] / quantum))
		qb := int64(math.Round(b[t] / quantum))
		if qa != qb {
			return qa < qb
		}
	}
	return len(a) < len(b)
}

// lexLessStrict is lexLessQ with quantized ties broken by the raw
// coordinates, so any two distinct vectors have a strict order. The
// dedup representative rule needs this: the solver's Vall vertices are
// unique on the quantized grid, but Push accepts arbitrary vertices and
// must stay arrival-order independent even for sub-quantum twins.
func lexLessStrict(a, b vec.Vector, quantum float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		qa := int64(math.Round(a[t] / quantum))
		qb := int64(math.Round(b[t] / quantum))
		if qa != qb {
			return qa < qb
		}
	}
	for t := 0; t < n; t++ {
		if a[t] != b[t] {
			return a[t] < b[t]
		}
	}
	return len(a) < len(b)
}

// impactEntry is one unique impact halfspace with the vertex that
// contributed it (the representative used for order-independent dedup).
type impactEntry struct {
	h geom.Halfspace
	w vec.Vector
}

// impactSet accumulates deduplicated impact halfspaces under quantized
// uint64 composite hashes (coefficients and threshold). Not
// goroutine-safe; clipStream serializes access.
type impactSet struct {
	scorer *topk.Scorer
	idx    oamap.Map[int32] // composite hash -> index into list
	list   []impactEntry
}

// add absorbs one vertex's impact halfspace. No per-vertex clone, no
// string key: the identity is a 64-bit FNV-1a digest of the quantized
// coefficients folded with the quantized threshold (collisions merge
// two constraints with probability ~2^-64 per pair — consciously
// accepted). On a duplicate, the representative with the smaller
// quantized vertex wins, making the kept halfspace independent of
// arrival order.
func (s *impactSet) add(iv ImpactVertex) {
	// The identity is computed without materializing the halfspace: its
	// coefficient vector is FullWeight(W) — W with the derived last
	// weight appended — so its digest extends W's digest by one fold,
	// and the threshold is the vertex's k-th score. The halfspace itself
	// is only built when the entry is (re)inserted.
	key := vec.HashFold(iv.W.Hash(impactQuantum), 1-iv.W.Sum(), impactQuantum)
	key = vec.HashFold(key, iv.KthScore, impactQuantum)
	if i, ok := s.idx.Get(key); ok {
		if lexLessStrict(iv.W, s.list[i].w, vallQuantum) {
			s.list[i] = impactEntry{h: iv.ImpactHalfspace(s.scorer), w: iv.W}
		}
		return
	}
	s.idx.Put(key, int32(len(s.list)))
	s.list = append(s.list, impactEntry{h: iv.ImpactHalfspace(s.scorer), w: iv.W})
}

// sorted returns the unique impact halfspaces deepest-cut first (B
// descending; ties broken by the quantized coefficients so runs are
// reproducible). It reorders the internal list, so no add may follow.
func (s *impactSet) sorted() []geom.Halfspace {
	sort.Slice(s.list, func(i, j int) bool {
		if s.list[i].h.B != s.list[j].h.B {
			return s.list[i].h.B > s.list[j].h.B
		}
		return lexLessQ(s.list[i].h.A, s.list[j].h.A, impactQuantum)
	})
	out := make([]geom.Halfspace, len(s.list))
	for i, e := range s.list {
		out[i] = e.h
	}
	return out
}

// clipStream is the streaming state shared by ClipAssembler (shards
// <= 1) and ParallelClipAssembler (shards > 1).
type clipStream struct {
	mu     sync.Mutex
	set    impactSet
	budget int
	shards int
	pushed int
}

// Push implements AssembleStream.
func (st *clipStream) Push(iv ImpactVertex) {
	st.mu.Lock()
	st.set.add(iv)
	st.pushed++
	st.mu.Unlock()
}

// Pushed returns the number of vertices streamed so far.
func (st *clipStream) Pushed() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pushed
}

// Finish implements AssembleStream.
func (st *clipStream) Finish() AssembleOutput {
	st.mu.Lock()
	impact := st.set.sorted()
	d := st.set.scorer.Dim()
	budget, shards := st.budget, st.shards
	st.mu.Unlock()
	return assembleFromImpact(d, impact, budget, shards)
}

// assembleFromImpact is the shared fold stage: box constraints plus the
// already-deduplicated, deepest-cut-first impact halfspaces, clipped
// sequentially (shards < 2) or via the chunked parallel merge. Both
// Assemble (buffered) and Finish (streaming) end here, which is what
// makes the two paths bit-identical by construction.
func assembleFromImpact(d int, impact []geom.Halfspace, vertexBudget, shards int) AssembleOutput {
	box := optionBox(d)
	out := AssembleOutput{
		Constraints: append(append(make([]geom.Halfspace, 0, len(box.HS)+len(impact)), box.HS...), impact...),
	}
	s := shards
	if s > topk.MaxShards {
		s = topk.MaxShards
	}
	// Sequential path: too few constraints for the fan-out to pay for
	// itself, or an over-budget intermediate in the chunked phases
	// below. Its clips are attributed to shard 0, keeping
	// sum(ShardClips) == Clips.
	sequential := func() AssembleOutput {
		out.OR, out.Clips = clipFold(box, impact, vertexBudget)
		if shards > 0 {
			out.ShardClips = make([]int, shards)
			out.ShardClips[0] = out.Clips
		}
		return out
	}
	if s < 2 || len(impact) < 2*s {
		return sequential()
	}

	// Round-robin assignment keeps the deepest cuts (the front of the
	// deduplicated order) spread across chunks.
	chunks := make([][]geom.Halfspace, s)
	for i, h := range impact {
		chunks[i%s] = append(chunks[i%s], h)
	}

	// Phase 1 — clip each chunk against the box concurrently, each
	// goroutine folding inside its own arena-backed geom.Fold. A chunk
	// holds only ~1/S of the constraints, so its intermediate polytope
	// can exceed the vertex budget where the sequential deepest-cut fold
	// would not; over-budget falls back to the sequential path so OR
	// presence matches the unsharded assembler exactly.
	shardClips := make([]int, s)
	polys := make([]*geom.Polytope, s)
	over := make([]bool, s)
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := geom.NewFold(box)
			defer f.Release()
			for _, h := range chunks[i] {
				if f.Clip(h) {
					shardClips[i]++
				}
				if f.Current().NumVertices() > vertexBudget {
					over[i] = true
					return
				}
			}
			polys[i] = f.Detach()
		}(i)
	}
	wg.Wait()
	for _, o := range over {
		if o {
			return sequential()
		}
	}

	// Phase 2 — intersect the per-shard polytopes in shard order. Each
	// polytope's H-representation describes exactly its region, so
	// clipping by it is intersection; empty chunks short-circuit. An
	// over-budget intermediate falls back to the sequential fold for the
	// same reason as phase 1.
	f := geom.NewFold(polys[0])
	for i := 1; i < s && !f.Current().IsEmpty(); i++ {
		for _, h := range polys[i].HS {
			if f.Clip(h) {
				shardClips[i]++
			}
			if f.Current().NumVertices() > vertexBudget {
				f.Release()
				return sequential()
			}
		}
	}
	out.OR = f.Detach()
	f.Release()
	out.ShardClips = shardClips
	for _, c := range shardClips {
		out.Clips += c
	}
	return out
}
