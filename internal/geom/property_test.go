package geom

import (
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// TestClipIdempotent: clipping twice by the same halfspace changes
// nothing the second time.
func TestClipIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(3)
		p := unitBox(d)
		a := vec.New(d)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		if a.Norm() < 0.2 {
			continue
		}
		h := NewHalfspace(a, a.Dot(p.Centroid()))
		once := p.Clip(h)
		twice := once.Clip(h)
		if once.CanonicalKey() != twice.CanonicalKey() {
			t.Fatalf("iter %d: clip not idempotent", iter)
		}
	}
}

// TestClipMonotone: the clipped polytope is contained in the original.
func TestClipMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(3)
		p := unitBox(d)
		a := vec.New(d)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		if a.Norm() < 0.2 {
			continue
		}
		clipped := p.Clip(NewHalfspace(a, a.Dot(p.Centroid())))
		if clipped.IsEmpty() {
			continue
		}
		for s := 0; s < 50; s++ {
			x := clipped.SamplePoint(rng)
			if !p.Contains(x) {
				t.Fatalf("iter %d: clipped point %v escapes the parent", iter, x)
			}
		}
	}
}

// TestClipOrderIndependent: intersecting a set of halfspaces yields the
// same region regardless of the order of application.
func TestClipOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		d := 2 + rng.Intn(2)
		var hs []Halfspace
		for c := 0; c < 4; c++ {
			a := vec.New(d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			if a.Norm() < 0.2 {
				continue
			}
			hs = append(hs, NewHalfspace(a, a.Dot(unitBox(d).Centroid())-0.2))
		}
		fwd := unitBox(d)
		for _, h := range hs {
			fwd = fwd.Clip(h)
		}
		rev := unitBox(d)
		for i := len(hs) - 1; i >= 0; i-- {
			rev = rev.Clip(hs[i])
		}
		if fwd.IsEmpty() != rev.IsEmpty() {
			t.Fatalf("iter %d: emptiness depends on clip order", iter)
		}
		if fwd.IsEmpty() {
			continue
		}
		// Membership-compare on random probes.
		for s := 0; s < 100; s++ {
			x := vec.New(d)
			for j := range x {
				x[j] = rng.Float64()
			}
			if fwd.Contains(x) != rev.Contains(x) {
				t.Fatalf("iter %d: clip order changed membership at %v", iter, x)
			}
		}
	}
}

// TestVerticesSatisfyAllHalfspaces: structural invariant after arbitrary
// splits.
func TestVerticesSatisfyAllHalfspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := unitBox(4)
	for iter := 0; iter < 10 && !p.IsEmpty(); iter++ {
		a := vec.New(4)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		if a.Norm() < 0.2 {
			continue
		}
		_, p = p.Split(NewHalfspace(a, a.Dot(p.Centroid())))
		for _, v := range p.Verts {
			for _, h := range p.HS {
				if h.Eval(v.Point) < -1e-7 {
					t.Fatalf("vertex %v violates halfspace %v", v.Point, h)
				}
			}
		}
	}
}

// TestBoundingBoxContainsSamples: the bounding box really bounds.
func TestBoundingBoxContainsSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := FromHalfspaces([]Halfspace{
		NewHalfspace(vec.Of(-1, -1, -1), -1.4),
		NewHalfspace(vec.Of(1, 0.5, 0.25), 0.3),
	}, vec.New(3), vec.Of(1, 1, 1))
	lo, hi := p.BoundingBox()
	for s := 0; s < 200; s++ {
		x := p.SamplePoint(rng)
		for j := range x {
			if x[j] < lo[j]-1e-9 || x[j] > hi[j]+1e-9 {
				t.Fatalf("sample %v outside bounding box [%v, %v]", x, lo, hi)
			}
		}
	}
}
