package geom

import (
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

func randomHalfspaces(d, n int, seed int64) []Halfspace {
	rng := rand.New(rand.NewSource(seed))
	hs := make([]Halfspace, n)
	for i := range hs {
		a := make(vec.Vector, d)
		for j := range a {
			a[j] = rng.Float64()*2 - 1
		}
		hs[i] = NewHalfspace(a, a.Sum()*0.3)
	}
	return hs
}

// TestFoldMatchesClipChain checks that a Fold over a halfspace sequence
// produces exactly the polytope the plain Clip chain does — same
// halfspaces, same vertices in the same order, same tight sets.
func TestFoldMatchesClipChain(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5} {
		for seed := int64(0); seed < 6; seed++ {
			hs := randomHalfspaces(d, 60, seed*100+int64(d))
			lo, hi := vec.New(d), vec.New(d)
			for j := range hi {
				hi[j] = 1
			}
			want := NewBox(lo, hi)
			for _, h := range hs {
				want = want.Clip(h)
			}

			f := NewFold(NewBox(lo, hi))
			for _, h := range hs {
				f.Clip(h)
			}
			got := f.Detach()
			f.Release()

			assertSamePolytope(t, got, want)
		}
	}
}

// TestFoldDetachSurvivesRelease ensures Detach's copy shares nothing
// with the arenas: releasing and reusing the fold must not corrupt it.
func TestFoldDetachSurvivesRelease(t *testing.T) {
	d := 4
	lo, hi := vec.New(d), vec.Of(1, 1, 1, 1)
	hs := randomHalfspaces(d, 40, 9)

	f := NewFold(NewBox(lo, hi))
	for _, h := range hs {
		f.Clip(h)
	}
	got := f.Detach()
	snapshot := got.CanonicalKey()
	f.Release()

	// Churn the pool so the same arenas get rewritten.
	for i := 0; i < 4; i++ {
		g := NewFold(NewBox(lo, hi))
		for _, h := range randomHalfspaces(d, 40, int64(50+i)) {
			g.Clip(h)
		}
		g.Release()
	}
	if got.CanonicalKey() != snapshot {
		t.Fatal("detached polytope mutated after Release")
	}
}

func TestFoldEmptyResult(t *testing.T) {
	d := 3
	f := NewFold(NewBox(vec.New(d), vec.Of(1, 1, 1)))
	// x1 >= 2 is infeasible within the unit box.
	if !f.Clip(NewHalfspace(vec.Of(1, 0, 0), 2)) {
		t.Fatal("infeasible clip reported as redundant")
	}
	if !f.Current().IsEmpty() {
		t.Fatal("expected empty polytope")
	}
	got := f.Detach()
	f.Release()
	if !got.IsEmpty() {
		t.Fatal("detached empty polytope not empty")
	}
}

func TestFoldRedundantClipReportsFalse(t *testing.T) {
	d := 2
	f := NewFold(NewBox(vec.New(d), vec.Of(1, 1)))
	defer f.Release()
	if f.Clip(NewHalfspace(vec.Of(1, 0), -5)) {
		t.Fatal("redundant clip reported as a change")
	}
	if f.Clips() != 1 {
		t.Fatalf("Clips = %d", f.Clips())
	}
}

func assertSamePolytope(t *testing.T, got, want *Polytope) {
	t.Helper()
	if got.Dim != want.Dim {
		t.Fatalf("Dim %d != %d", got.Dim, want.Dim)
	}
	if len(got.HS) != len(want.HS) {
		t.Fatalf("|HS| %d != %d", len(got.HS), len(want.HS))
	}
	for i := range got.HS {
		if !got.HS[i].A.Equal(want.HS[i].A, 0) || got.HS[i].B != want.HS[i].B {
			t.Fatalf("HS[%d] %v != %v", i, got.HS[i], want.HS[i])
		}
	}
	if len(got.Verts) != len(want.Verts) {
		t.Fatalf("|Verts| %d != %d", len(got.Verts), len(want.Verts))
	}
	for i := range got.Verts {
		if !got.Verts[i].Point.Equal(want.Verts[i].Point, 0) {
			t.Fatalf("vertex %d %v != %v", i, got.Verts[i].Point, want.Verts[i].Point)
		}
		gt, wt := got.Verts[i].Tight, want.Verts[i].Tight
		if !gt.Contains(wt) || !wt.Contains(gt) {
			t.Fatalf("tight set %d differs", i)
		}
	}
}
