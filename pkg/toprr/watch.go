package toprr

// Standing queries: Engine.Watch registers a live TopRR query whose
// result region is kept current as the mutation stream flows, without
// clients re-solving after every Apply. The notification hub rides the
// store's applied-op stream off the reader lock — Apply hands it one
// signal per published generation after the cache advance, and the hub
// does all re-evaluation on its own goroutine — so watchers never stall
// the mutation/WAL path.
//
// Work avoidance is layered:
//
//  1. Proven suppression. A pure-insert delta whose patch summary
//     reports !MaybeChanged() touched no memoized top-k entry. Every
//     subscription's defining vertices (Result.Vall) are pinned into
//     the whole-dataset memo after each evaluation, so the untouched
//     summary proves the k-th score at every defining vertex of every
//     standing region is unchanged — and since the k-th score envelope
//     is concave over each confirmed region while a new option scores
//     linearly, agreement at the vertices extends to the whole region:
//     no standing region moved. The signal is dropped with zero
//     re-solves. Suppression is armed only while the proof actually
//     covers every subscription: it turns off whenever the hub has
//     unprocessed work (a pending or in-flight evaluation means some
//     region's new vertices are not pinned yet) or a memo eviction has
//     occurred since the last pin (an evicted vertex can no longer
//     vouch for its region), and re-arms at the next evaluation.
//  2. Debounced coalescing. Signals that cannot be suppressed mark the
//     hub dirty; each subscription re-evaluates at most once per its
//     debounce window, against the newest snapshot, so a burst of
//     mutations costs one solve per subscription, not one per batch.
//  3. Fingerprint gating. A re-evaluation emits an event only when the
//     region's quantized constraint-set fingerprint (topk.RegionHash)
//     moved — reshape deltas that happen not to touch a subscription's
//     region wake nobody.
//
// Delivery: Updates is a buffered channel owned by the hub. Events
// carry the generation their region reflects, in strictly increasing
// order per subscription. A slow consumer never blocks the hub: the
// oldest undelivered event is displaced and the next delivered event's
// Dropped field counts the displacements, so the newest region is
// always deliverable. The channel closes when the subscription or the
// engine closes. docs/STANDING.md states the full contract.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"toprr/internal/geom"
	"toprr/internal/topk"
)

// ErrTooManySubscriptions is returned by Engine.Watch when the engine's
// subscription cap (WithWatchCap / WithRegistryWatchCap) is reached.
var ErrTooManySubscriptions = errors.New("toprr: subscription cap reached")

// ErrEngineClosed is returned by Engine.Watch after the engine closed.
var ErrEngineClosed = errors.New("toprr: engine closed")

// DefaultWatchCap bounds the standing subscriptions of one engine when
// no explicit cap is configured.
const DefaultWatchCap = 256

// DefaultDebounce is the coalescing window applied when WatchOptions
// leaves Debounce zero: mutations landing within one window of each
// other cost one re-evaluation, and a notification for an isolated
// mutation is delayed by at most roughly this long.
const DefaultDebounce = 25 * time.Millisecond

// defaultWatchBuffer is the Updates channel capacity when WatchOptions
// leaves Buffer zero.
const defaultWatchBuffer = 16

// WatchOptions configures one standing query.
type WatchOptions struct {
	// Debounce is the coalescing window: after a non-suppressed mutation
	// signal, the subscription re-evaluates once the window elapses,
	// absorbing further signals meanwhile. Zero means DefaultDebounce;
	// negative means no debounce (evaluate on the next hub cycle).
	Debounce time.Duration
	// Buffer is the Updates channel capacity (zero = default). When the
	// buffer is full the oldest undelivered event is displaced, counted
	// by the next delivered event's Dropped field.
	Buffer int
	// Options are the solver options for the subscription's evaluations
	// (nil = engine defaults), as in Query.Options.
	Options *Options
	// Ctx, when non-nil, bounds the initial solve performed by Watch
	// itself. It does not bound the subscription's lifetime.
	Ctx context.Context
}

// RegionEvent is one standing-query update: the subscription's result
// region at Generation, which differs from the previously delivered
// region unless Initial (or Err) is set.
type RegionEvent struct {
	// Generation is the dataset generation the region reflects. Events
	// arrive in strictly increasing generation order per subscription.
	Generation Generation
	// Fingerprint is the region's quantized constraint-set hash; equal
	// fingerprints mean an unchanged region, so clients can dedupe
	// across resubscribes.
	Fingerprint uint64
	// Result is the full solve result (nil when Err is set).
	Result *Result
	// Initial marks the first event, delivered synchronously by Watch.
	Initial bool
	// Dropped counts older events displaced by a full Updates buffer
	// since the previous delivered event.
	Dropped int
	// Err reports a failed re-evaluation (for example k exceeding the
	// dataset after deletes). The subscription stays registered; a later
	// mutation that makes the query solvable again resumes events.
	Err error
}

// Subscription is one standing query's handle. Close it when done; the
// Updates channel closes when the subscription or its engine closes.
type Subscription struct {
	id  uint64
	hub *watchHub
	q   Query

	debounce time.Duration
	ch       chan RegionEvent

	// Hub state, guarded by hub.mu.
	due     time.Time // zero = no evaluation scheduled
	lastFP  uint64
	lastGen Generation
	lastErr bool // last delivery was an Err event; the recovery event is unconditional
	dropped int  // displaced events since the last delivery
	closed  bool
}

// Updates returns the subscription's event stream. The channel is
// closed by Subscription.Close and by Engine.Close.
func (s *Subscription) Updates() <-chan RegionEvent { return s.ch }

// Query returns the standing query (k, wR, options) the subscription
// evaluates.
func (s *Subscription) Query() Query { return s.q }

// Close unregisters the subscription and closes its Updates channel.
// Close is idempotent and safe to call concurrently with delivery.
func (s *Subscription) Close() { s.hub.remove(s.id) }

// WatchStats counts the notification hub's work, cumulatively over the
// engine's lifetime. Suppressed vs Evaluations is the headline economy:
// mutation batches proven region-neutral and dropped for free vs
// re-solves actually performed.
type WatchStats struct {
	Active      int   // currently registered subscriptions
	Delivered   int64 // events delivered, including initial and error events
	Suppressed  int64 // mutation signals proven region-neutral: zero re-solves
	Signals     int64 // non-suppressed mutation signals observed
	Evaluations int64 // subscription re-evaluations (one solve each)
	Unchanged   int64 // evaluations whose fingerprint did not move (no event)
	Dropped     int64 // events displaced by slow consumers
}

// watchHub fans mutation signals out to the engine's subscriptions.
// One goroutine (started on the first Watch) owns scheduling and
// evaluation; Apply only flips flags under the hub lock, so the write
// path never waits on a solve.
type watchHub struct {
	eng *Engine

	mu         sync.Mutex
	subs       map[uint64]*Subscription
	nextID     uint64
	running    bool
	closed     bool
	dirty      bool // a non-suppressed signal awaits scheduling
	evaluating int  // evaluations in flight (their regions' vertices are not pinned yet)
	erring     int  // subscriptions whose last evaluation failed: they have no
	// valid pinned region, so nothing proves a mutation region-neutral for them
	settled *sync.Cond

	// pinEvictions is the registry eviction count when subscription
	// vertices were last pinned; any eviction since voids the proof that
	// the memo covers every defining vertex, so suppression turns off
	// until the next evaluation re-pins.
	pinEvictions int

	stats WatchStats

	wake chan struct{} // cap 1: nudges the hub goroutine
	quit chan struct{}
	done chan struct{}
}

func newWatchHub(e *Engine) *watchHub {
	h := &watchHub{
		eng:  e,
		subs: make(map[uint64]*Subscription),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	h.settled = sync.NewCond(&h.mu)
	return h
}

// observe is Apply's hook: called once per published generation, in
// publication order (from inside the engine's advance gate), with
// suppress true when the patch plane proved the batch touched no
// memoized top-k. The batch is dropped without any re-solve only when
// the pin-coverage invariant also holds — hub settled, no eviction
// since the last pin — otherwise it conservatively schedules.
func (h *watchHub) observe(suppress bool) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if suppress && h.idleLocked() && h.erring == 0 && h.eng.caches.Evictions() == h.pinEvictions {
		h.stats.Suppressed++
		h.mu.Unlock()
		return
	}
	h.stats.Signals++
	h.dirty = true
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// idleLocked reports whether the hub has no pending or in-flight work —
// the state in which every subscription's pinned vertices are known to
// cover its current region.
func (h *watchHub) idleLocked() bool {
	if h.dirty || h.evaluating > 0 {
		return false
	}
	for _, s := range h.subs {
		if !s.due.IsZero() {
			return false
		}
	}
	return true
}

// add registers a subscription whose initial event is already queued
// and whose region vertices are already pinned. If the dataset moved
// past the subscription's initial snapshot while it was being built,
// an immediate evaluation is scheduled so the race cannot swallow an
// update.
func (h *watchHub) add(s *Subscription, limit int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrEngineClosed
	}
	if len(h.subs) >= limit {
		return ErrTooManySubscriptions
	}
	h.nextID++
	s.id = h.nextID
	h.subs[s.id] = s
	h.stats.Delivered++ // the initial event Watch already queued
	wake := false
	if h.eng.Generation() != s.lastGen {
		s.due = time.Now()
		wake = true
	}
	if !h.running {
		h.running = true
		go h.loop()
	}
	if wake {
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// remove unregisters a subscription. Whoever deletes the map entry
// closes the channel, so the close happens exactly once even when
// Subscription.Close races Engine.Close.
func (h *watchHub) remove(id uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return
	}
	delete(h.subs, id)
	if s.lastErr {
		s.lastErr = false
		h.erring--
	}
	s.closed = true
	close(s.ch)
	h.settledLocked()
}

// stop closes every subscription and terminates the hub goroutine.
func (h *watchHub) stop() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for id, s := range h.subs {
		delete(h.subs, id)
		s.closed = true
		close(s.ch)
	}
	running := h.running
	h.settled.Broadcast()
	h.mu.Unlock()
	close(h.quit)
	if running {
		<-h.done
	}
}

// settledLocked wakes Settle waiters when no work is pending.
func (h *watchHub) settledLocked() {
	if h.idleLocked() {
		h.settled.Broadcast()
	}
}

// settle blocks until the hub is idle: every mutation observed before
// the call has been either suppressed or evaluated, with its events
// queued and its vertices re-pinned.
func (h *watchHub) settle(ctx context.Context) error {
	var cancelled bool
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		cancelled = true
		h.settled.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.closed || h.idleLocked() {
			return nil
		}
		if cancelled {
			return ctx.Err()
		}
		h.settled.Wait()
	}
}

// loop is the hub goroutine: schedule dirty subscriptions, sleep until
// the earliest due time, evaluate what is due.
func (h *watchHub) loop() {
	defer close(h.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		h.mu.Lock()
		if h.dirty {
			now := time.Now()
			for _, s := range h.subs {
				if s.due.IsZero() {
					s.due = now.Add(s.debounce)
				}
			}
			h.dirty = false
			// With no subscriptions the signal is consumed outright.
			h.settledLocked()
		}
		var earliest time.Time
		for _, s := range h.subs {
			if !s.due.IsZero() && (earliest.IsZero() || s.due.Before(earliest)) {
				earliest = s.due
			}
		}
		h.mu.Unlock()

		if earliest.IsZero() {
			select {
			case <-h.wake:
				continue
			case <-h.quit:
				return
			}
		}
		if wait := time.Until(earliest); wait > 0 {
			timer.Reset(wait)
			select {
			case <-h.wake:
				if !timer.Stop() {
					<-timer.C
				}
				continue
			case <-timer.C:
			case <-h.quit:
				if !timer.Stop() {
					<-timer.C
				}
				return
			}
		}
		h.evaluateDue()
	}
}

// evaluateDue re-solves every subscription whose debounce window has
// elapsed and delivers the events whose fingerprints moved. Solves run
// outside the hub lock; only delivery and bookkeeping hold it.
func (h *watchHub) evaluateDue() {
	now := time.Now()
	h.mu.Lock()
	due := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		if !s.due.IsZero() && !s.due.After(now) {
			s.due = time.Time{}
			h.evaluating++
			due = append(due, s)
		}
	}
	h.mu.Unlock()

	for _, s := range due {
		snap := h.eng.Snapshot()
		res, err := h.eng.SolveAt(context.Background(), snap, s.q)
		if err == nil {
			// Pin the region's defining vertices before publishing the
			// evaluation as done, so a suppression decision made after this
			// evaluation settles is backed by a memo covering it.
			h.eng.pinWatchVertices(snap, s.q.K, res)
		}

		h.mu.Lock()
		h.stats.Evaluations++
		h.evaluating--
		h.pinEvictions = h.eng.caches.Evictions()
		if s.closed || h.closed {
			h.settledLocked()
			h.mu.Unlock()
			continue
		}
		switch {
		case err != nil:
			// Deliver the failure once per failure streak.
			if !s.lastErr {
				s.lastErr = true
				h.erring++
				h.deliverLocked(s, RegionEvent{Generation: snap.Gen, Err: err})
			} else {
				h.stats.Unchanged++
			}
		default:
			fp := RegionFingerprint(res)
			if fp == s.lastFP && !s.lastErr {
				h.stats.Unchanged++
			} else {
				if s.lastErr {
					s.lastErr = false
					h.erring--
				}
				s.lastFP = fp
				s.lastGen = snap.Gen
				h.deliverLocked(s, RegionEvent{Generation: snap.Gen, Fingerprint: fp, Result: res})
			}
		}
		h.settledLocked()
		h.mu.Unlock()
	}
}

// deliverLocked queues one event, displacing the oldest undelivered
// event when the buffer is full (latest-wins: the consumer can always
// reach the newest region). Callers hold h.mu.
func (h *watchHub) deliverLocked(s *Subscription, ev RegionEvent) {
	ev.Dropped = s.dropped
	for {
		select {
		case s.ch <- ev:
			s.dropped = 0
			h.stats.Delivered++
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped++
			ev.Dropped = s.dropped
			h.stats.Dropped++
		default:
			// The consumer drained between the two selects; retry the send.
		}
	}
}

// snapshotStats copies the counters under the lock.
func (h *watchHub) snapshotStats() WatchStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Active = len(h.subs)
	return st
}

// RegionFingerprint returns the quantized, order-insensitive hash of a
// result's exact constraint set (see topk.RegionHash): two results with
// equal fingerprints describe the same region oR up to the cache
// plane's coordinate quantum. The notification hub gates events on it;
// clients can use it to dedupe across reconnects.
func RegionFingerprint(r *Result) uint64 {
	var h topk.RegionHash
	for _, hs := range r.ORConstraints {
		h.Add(hs.A, hs.B)
	}
	return h.Sum()
}

// pinWatchVertices records a standing query's defining vertices into
// the whole-dataset (k, nil) memo. With every defining vertex of every
// standing region memoized, an untouched patch summary proves no
// standing region moved (see the package comment above); the lookups
// are cache hits after the first evaluation and are repaired in place
// by pure-insert advances.
func (e *Engine) pinWatchVertices(snap Snapshot, k int, res *Result) {
	c := e.caches.GetFor(snap.Scorer, k, nil)
	if c == nil {
		return // the registry moved past this snapshot; the next signal re-evaluates
	}
	for i := range res.Vall {
		c.Get(res.Vall[i].W)
	}
}

// Watch registers a standing query: the current region solves
// synchronously and arrives as the first event (Initial), and the
// subscription then re-evaluates — debounced, fingerprint-gated, and
// with provably neutral insert batches suppressed outright — as the
// dataset mutates. The caller should drain Updates; see WatchOptions
// for buffering. Close the subscription to stop it.
func (e *Engine) Watch(k int, wR *geom.Polytope, opts WatchOptions) (*Subscription, error) {
	q := Query{K: k, WR: wR, Options: opts.Options}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	snap := e.Snapshot()
	res, err := e.SolveAt(ctx, snap, q)
	if err != nil {
		return nil, fmt.Errorf("toprr: watch: %w", err)
	}

	debounce := opts.Debounce
	if debounce == 0 {
		debounce = DefaultDebounce
	} else if debounce < 0 {
		debounce = 0
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = defaultWatchBuffer
	}

	fp := RegionFingerprint(res)
	s := &Subscription{
		hub:      e.watch,
		q:        q,
		debounce: debounce,
		ch:       make(chan RegionEvent, buffer),
		lastFP:   fp,
		lastGen:  snap.Gen,
	}
	// The buffer is at least 1, so the initial event always queues.
	s.ch <- RegionEvent{Generation: snap.Gen, Fingerprint: fp, Result: res, Initial: true}
	// Pin before registering: a batch suppressed after this point is
	// covered by the pin; one that landed earlier is caught by add's
	// generation check and re-evaluated.
	e.pinWatchVertices(snap, k, res)
	e.watch.mu.Lock()
	e.watch.pinEvictions = e.caches.Evictions()
	e.watch.mu.Unlock()
	if err := e.watch.add(s, e.watchCap); err != nil {
		return nil, err
	}
	return s, nil
}

// WatchStats reports the notification hub's cumulative counters.
func (e *Engine) WatchStats() WatchStats { return e.watch.snapshotStats() }

// WatchSettle blocks until every mutation observed by the notification
// hub before the call has been fully processed — suppressed, or
// evaluated with any resulting events queued and vertices re-pinned. It
// exists so tests and benchmarks can assert on WatchStats and Updates
// without sleeping; servers do not need it.
func (e *Engine) WatchSettle(ctx context.Context) error { return e.watch.settle(ctx) }
