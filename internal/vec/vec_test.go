package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	v := Of(1, 2, 3)
	u := Of(4, 5, 6)
	if got := v.Dot(u); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched dimensions")
		}
	}()
	Of(1, 2).Dot(Of(1, 2, 3))
}

func TestAddSubScale(t *testing.T) {
	v := Of(1, 2)
	u := Of(3, -4)
	if got := v.Add(u); !got.Equal(Of(4, -2), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(u); !got.Equal(Of(-2, 6), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Of(2, 4), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.AddScaled(2, u); !got.Equal(Of(7, -6), 0) {
		t.Errorf("AddScaled = %v", got)
	}
	// Originals untouched.
	if !v.Equal(Of(1, 2), 0) || !u.Equal(Of(3, -4), 0) {
		t.Error("operations mutated inputs")
	}
}

func TestLerp(t *testing.T) {
	v := Of(0, 0)
	u := Of(2, 4)
	if got := v.Lerp(u, 0.5); !got.Equal(Of(1, 2), Eps) {
		t.Errorf("Lerp midpoint = %v", got)
	}
	if got := v.Lerp(u, 0); !got.Equal(v, Eps) {
		t.Errorf("Lerp at 0 = %v", got)
	}
	if got := v.Lerp(u, 1); !got.Equal(u, Eps) {
		t.Errorf("Lerp at 1 = %v", got)
	}
}

func TestNorms(t *testing.T) {
	v := Of(3, -4)
	if got := v.Norm(); math.Abs(got-5) > Eps {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm1(); math.Abs(got-7) > Eps {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); math.Abs(got-4) > Eps {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := v.Dist(Of(0, 0)); math.Abs(got-5) > Eps {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestSumCentroid(t *testing.T) {
	if got := Of(1, 2, 3).Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	c := Centroid([]Vector{Of(0, 0), Of(2, 0), Of(1, 3)})
	if !c.Equal(Of(1, 1), Eps) {
		t.Errorf("Centroid = %v", c)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Centroid(nil)
}

func TestKeyQuantization(t *testing.T) {
	a := Of(0.1234567, 0.9999999)
	b := Of(0.1234568, 1.0000000)
	if a.Key(1e-6) != b.Key(1e-6) {
		t.Error("nearby vectors should share a key at coarse quantum")
	}
	c := Of(0.2, 0.5)
	if a.Key(1e-6) == c.Key(1e-6) {
		t.Error("distinct vectors should have distinct keys")
	}
	// -0 and +0 must agree.
	if Of(0.0).Key(1e-6) != Of(-1e-12).Key(1e-6) {
		t.Error("negative zero key mismatch")
	}
}

func TestDimStringEqual(t *testing.T) {
	v := Of(1.5, -2)
	if v.Dim() != 2 {
		t.Errorf("Dim = %d", v.Dim())
	}
	if s := v.String(); s != "(1.5, -2)" {
		t.Errorf("String = %q", s)
	}
	if v.Equal(Of(1.5), 1) {
		t.Error("Equal must reject mismatched dimensions")
	}
	if !v.Equal(Of(1.5+1e-12, -2), 1e-9) {
		t.Error("Equal within tolerance failed")
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatrixFromRows([]Vector{Of(1, 2), Of(1)})
}

func TestMatrixFromRowsEmpty(t *testing.T) {
	m := MatrixFromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty matrix shape %dx%d", m.Rows, m.Cols)
	}
}

func TestMulVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixFromRows([]Vector{Of(1, 2)}).MulVec(Of(1))
}

func TestMatrixRank(t *testing.T) {
	cases := []struct {
		rows []Vector
		want int
	}{
		{[]Vector{Of(1, 0), Of(0, 1)}, 2},
		{[]Vector{Of(1, 2), Of(2, 4)}, 1},
		{[]Vector{Of(0, 0), Of(0, 0)}, 0},
		{[]Vector{Of(1, 2, 3), Of(4, 5, 6), Of(7, 8, 9)}, 2},
		{[]Vector{Of(1, 0, 0), Of(0, 1, 0), Of(0, 0, 1)}, 3},
	}
	for i, c := range cases {
		if got := MatrixFromRows(c.rows).Rank(Eps); got != c.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestSolveSquare(t *testing.T) {
	a := MatrixFromRows([]Vector{Of(2, 1), Of(1, 3)})
	b := Of(5, 10)
	x, ok := SolveSquare(a, b, Eps)
	if !ok {
		t.Fatal("solve failed")
	}
	if !a.MulVec(x).Equal(b, 1e-8) {
		t.Errorf("residual too large: ax=%v b=%v", a.MulVec(x), b)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := MatrixFromRows([]Vector{Of(1, 2), Of(2, 4)})
	if _, ok := SolveSquare(a, Of(1, 1), Eps); ok {
		t.Fatal("expected singular system to fail")
	}
}

func TestSolveSquareRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		want := New(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, ok := SolveSquare(a, b, 1e-12)
		if !ok {
			continue // singular draw, fine
		}
		if !a.MulVec(x).Equal(b, 1e-6) {
			t.Fatalf("iter %d: bad solve", iter)
		}
	}
}

func TestAffinelyIndependent(t *testing.T) {
	if !AffinelyIndependent([]Vector{Of(0, 0), Of(1, 0), Of(0, 1)}, Eps) {
		t.Error("triangle should be affinely independent")
	}
	if AffinelyIndependent([]Vector{Of(0, 0), Of(1, 1), Of(2, 2)}, Eps) {
		t.Error("collinear points should not be affinely independent")
	}
	if !AffinelyIndependent([]Vector{Of(5, 5)}, Eps) {
		t.Error("single point is trivially independent")
	}
}

// bounded maps an arbitrary float64 into [-1, 1] so property tests stay
// clear of overflow and catastrophic cancellation at the float64 extremes.
func bounded(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Tanh(x / 1e3)
}

func boundedVec(a []float64) Vector {
	v := make(Vector, len(a))
	for i, x := range a {
		v[i] = bounded(x)
	}
	return v
}

func TestDotCommutative(t *testing.T) {
	f := func(a, b [4]float64) bool {
		v, u := boundedVec(a[:]), boundedVec(b[:])
		return math.Abs(v.Dot(u)-u.Dot(v)) < Eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormTriangleInequality(t *testing.T) {
	f := func(a, b [5]float64) bool {
		v, u := boundedVec(a[:]), boundedVec(b[:])
		return v.Add(u).Norm() <= v.Norm()+u.Norm()+Eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCauchySchwarz(t *testing.T) {
	f := func(a, b [3]float64) bool {
		v, u := boundedVec(a[:]), boundedVec(b[:])
		return math.Abs(v.Dot(u)) <= v.Norm()*u.Norm()+Eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Hash must agree with Key: equal keys imply equal hashes, and within a
// modest random sample distinct keys get distinct hashes.
func TestHashConsistentWithKey(t *testing.T) {
	f := func(a, b [4]float64) bool {
		v, u := boundedVec(a[:]), boundedVec(b[:])
		if v.Key(1e-9) == u.Key(1e-9) {
			return v.Hash(1e-9) == u.Hash(1e-9)
		}
		return v.Hash(1e-9) != u.Hash(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashQuantizes(t *testing.T) {
	v := Of(0.1, 0.2, 0.3)
	u := Of(0.1+1e-12, 0.2, 0.3-1e-12)
	if v.Hash(1e-9) != u.Hash(1e-9) {
		t.Error("vectors within quantum hash differently")
	}
	w := Of(0.1+1e-6, 0.2, 0.3)
	if v.Hash(1e-9) == w.Hash(1e-9) {
		t.Error("clearly distinct vectors hash equal")
	}
}

func TestHashFoldMatchesAppendedHash(t *testing.T) {
	f := func(a [3]float64, x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0.5
		}
		x = math.Mod(x, 100)
		v := boundedVec(a[:])
		whole := append(v.Clone(), x)
		return HashFold(v.Hash(1e-9), x, 1e-9) == whole.Hash(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInPlaceOpsMatchAllocating(t *testing.T) {
	f := func(a, b [4]float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			s = 2
		}
		s = math.Mod(s, 10)
		v, u := boundedVec(a[:]), boundedVec(b[:])

		add := v.Clone()
		add.AddInPlace(u)
		sub := v.Clone()
		sub.SubInPlace(u)
		sc := v.Clone()
		sc.ScaleInPlace(s)
		as := v.Clone()
		as.AddScaledInPlace(s, u)
		le := v.LerpInto(New(len(v)), u, 0.25)

		return add.Equal(v.Add(u), 0) && sub.Equal(v.Sub(u), 0) &&
			sc.Equal(v.Scale(s), 0) && as.Equal(v.AddScaled(s, u), 0) &&
			le.Equal(v.Lerp(u, 0.25), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyIntoReusesCapacity(t *testing.T) {
	v := Of(1, 2, 3)
	dst := make(Vector, 0, 8)
	out := v.CopyInto(dst)
	if &out[0] != &dst[:1][0] {
		t.Error("CopyInto reallocated despite sufficient capacity")
	}
	if !out.Equal(v, 0) {
		t.Errorf("CopyInto = %v", out)
	}
}
