package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Generation numbers dataset versions. The first published generation is
// 1; 0 means "no generation".
type Generation uint64

// OpKind discriminates dataset mutations.
type OpKind int

// The three dataset mutations.
const (
	OpInsert OpKind = iota // append a new option
	OpDelete               // remove option Index (swap-with-last)
	OpUpdate               // replace option Index with Point
)

// String returns the wire name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one dataset mutation. Index addresses the dataset as it stands
// when the op applies — within a batch, after the preceding ops of the
// same batch.
type Op struct {
	Kind  OpKind
	Index int        // Delete/Update target
	Point vec.Vector // Insert/Update payload
}

// Insert builds an op appending option p.
func Insert(p vec.Vector) Op { return Op{Kind: OpInsert, Point: p} }

// Delete builds an op removing option i (the last option moves into
// slot i).
func Delete(i int) Op { return Op{Kind: OpDelete, Index: i} }

// Update builds an op replacing option i with p.
func Update(i int, p vec.Vector) Op { return Op{Kind: OpUpdate, Index: i, Point: p} }

// AppliedOp is one entry of the store's op log.
type AppliedOp struct {
	Seq   uint64     // 1-based position in the log
	Gen   Generation // generation the op's batch produced
	Op    Op
	Moved int // Delete: former index of the option moved into the freed slot (-1 otherwise)
}

// Snapshot is an immutable view of one generation: readers solve against
// Scorer and never observe later mutations.
type Snapshot struct {
	Gen    Generation
	Scorer *topk.Scorer
}

// Delta reports the cache-relevant effect of one Apply: the
// old-generation slots whose identity changed (updated in place, swapped
// by a delete, truncated, or re-populated by a later insert). Slots not
// listed hold the same option in both generations, so per-pair and
// per-subset cache entries avoiding the dirty slots stay valid.
// Whole-dataset ("all options active") entries are invalidated by any
// op, since every op changes dataset membership.
//
// On a sharded store (Shards() > 1), ShardsTouched routes the batch to
// the owning shards' invalidation paths: it lists, sorted and
// deduplicated, every shard that gained or lost a dirty slot — the
// shard of each dirty slot's old contents and of its new contents; an
// insert touches exactly one shard. It is the batch-level routing
// summary for consumers that track whole shards (replication,
// metrics); the engine's caches deliberately re-derive routing from
// Dirty per cached configuration, because a configuration's active set
// restricts which of a batch's slots — and hence shards — actually
// touch it.
type Delta struct {
	From, To      Generation
	Dirty         []int
	ShardsTouched []int

	// Kind classifies the batch so consumers can pick a repair strategy
	// per delta: a pure-insert batch permits patch-on-insert cache
	// repair (topk.Registry.AdvanceInsert), anything that deletes,
	// updates or truncates requires the drop path.
	Kind DeltaKind

	// Inserted lists the new tail slots [oldLen, newLen) in ascending
	// order when Kind is DeltaInsertOnly, nil otherwise. It is the exact
	// argument AdvanceInsert's contract asks for — unlike Dirty, whose
	// order follows map iteration.
	Inserted []int
}

// DeltaKind classifies one Apply batch for cache repair.
type DeltaKind int

const (
	// DeltaEmpty: no ops; the generation did not move.
	DeltaEmpty DeltaKind = iota
	// DeltaInsertOnly: every op was an insert — existing slots are
	// bit-identical across the two generations and the new options
	// occupy the tail slots listed in Inserted.
	DeltaInsertOnly
	// DeltaReshape: the batch deleted, updated or mixed ops — some
	// existing slot changed identity and caches must take the drop path
	// for the dirty slots.
	DeltaReshape
)

// String names the kind for logs and metrics.
func (k DeltaKind) String() string {
	switch k {
	case DeltaEmpty:
		return "empty"
	case DeltaInsertOnly:
		return "insert-only"
	default:
		return "reshape"
	}
}

// logLimit bounds the retained in-memory op log; beyond it the oldest
// entries are discarded (Log reports the surviving suffix). Durability
// does not depend on this limit — the WAL retains every batch since the
// last compaction.
const logLimit = 1 << 14

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("store: closed")

// ErrDurability marks Apply failures where the batch validated fine but
// could not be made durable (a WAL write or fsync error): the store is
// unchanged and the fault is the server's disk, not the caller's
// request. Detect it with errors.Is.
var ErrDurability = errors.New("store: durability failure")

// Store is a generation-numbered dataset store. Reads (Snapshot, Len,
// Log) and writes (Apply) may run concurrently; writers serialize among
// themselves on validation and the WAL append, but under SyncAlways
// they *coalesce* on the fsync: concurrent Apply batches group-commit
// behind one shared flush instead of each paying its own (see
// walWriter.waitSync), and then publish strictly in generation order.
// A store built by New is in-memory; one built by Open also
// write-ahead-logs every batch and compacts the log into base snapshots
// (see persist.go).
//
// Lock discipline: writeMu serializes batch building and WAL appends
// (and owns every WAL file operation except the group fsync); mu guards
// the published state (snap, seq, log, closed) and is held only for
// quick reads and the publish step — never across disk I/O — so readers
// never stall behind a writer's fsync or a compaction. pubMu guards the
// publish-ordering gate (the built-but-unpublished backlog). writeMu is
// never acquired while holding the others.
type Store struct {
	writeMu sync.Mutex // serializes writers; owns WAL I/O (held before mu)

	// tail is the last *built* batch's state (guarded by writeMu). With
	// group commit it can run ahead of the published snapshot while
	// batches wait on the shared fsync; builds stack on the tail so WAL
	// order equals generation order.
	tail struct {
		pts []vec.Vector
		gen Generation
		seq uint64
	}

	// Publish-ordering gate: batches become visible strictly in
	// generation order, however their fsync waits interleave.
	pubMu     sync.Mutex
	pubCond   *sync.Cond
	published Generation // last generation made visible to readers
	pending   int        // built-but-unpublished batches

	mu   sync.RWMutex
	snap Snapshot
	seq  uint64 // total ops ever applied
	log  []AppliedOp

	// Durable layer; wal == nil for in-memory stores. The wal pointer is
	// set once at Open; its file handle is writeMu-guarded.
	cfg         PersistConfig
	wal         *walWriter
	lock        *os.File   // flock on the data directory (released on Close or process death)
	walOps      int        // ops in the WAL since the last compaction (writeMu)
	lastCompact Generation // generation of the newest base snapshot (mu)
	compactErr  error      // last failed maintenance cycle, retried on the next Apply (mu)
	closed      bool
	shards      int // shard count recorded in the snapshot metadata (0 = unsharded/legacy)

	// Snapshot GC observability: finalizer-driven counters of scorer
	// generations still reachable (the current one plus any pinned by
	// in-flight solves or leaked snapshots). Kept behind a pointer so
	// scorer finalizers capture only the counters, never the Store — a
	// finalizer closing over s would form a cycle (scorer → finalizer →
	// Store → current scorer) that the runtime never collects, leaking
	// every discarded store with its final dataset.
	gc *gcCounters
}

// gcCounters is the finalizer-updated half of GCStats.
type gcCounters struct {
	live     atomic.Int64
	retained atomic.Int64
}

// New builds an in-memory store over an initial dataset of options in
// [0,1]^d, published as generation 1. The slice is copied; the vectors
// are adopted as-is and must not be mutated afterwards. For a durable
// store, use Open; for a sharded in-memory store, NewSharded.
func New(pts []vec.Vector) (*Store, error) {
	return NewSharded(pts, 0)
}

// NewSharded is New recording a shard count: Apply then routes each
// batch to the owning shards' invalidation paths via
// Delta.ShardsTouched. shards <= 1 means unsharded.
func NewSharded(pts []vec.Vector, shards int) (*Store, error) {
	own, err := checkDataset(pts)
	if err != nil {
		return nil, err
	}
	s := &Store{gc: &gcCounters{}, shards: shards}
	s.snap = Snapshot{Gen: 1, Scorer: s.track(topk.NewScorerAt(own, 1))}
	s.initWritePath()
	return s, nil
}

// initWritePath seeds the build tail and publish gate from the current
// snapshot; constructors call it once the recovered/bootstrapped state
// is in place.
func (s *Store) initWritePath() {
	s.pubCond = sync.NewCond(&s.pubMu)
	s.tail.pts = s.snap.Scorer.Points()
	s.tail.gen = s.snap.Gen
	s.tail.seq = s.seq
	s.published = s.snap.Gen
}

// Shards reports the shard count the store records in its snapshot
// metadata (0 = unsharded/legacy). For a durable store reopened from
// disk this is the persisted layout, which wins over the opener's
// configuration so a dataset keeps its sharding across restarts.
func (s *Store) Shards() int { return s.shards }

// CheckDataset validates an initial dataset — non-empty, consistent
// dimensions, every component finite and in [0,1] — without adopting
// it, so a front end can reject a bad bootstrap as the caller's error
// before any store I/O starts.
func CheckDataset(pts []vec.Vector) error {
	_, err := checkDataset(pts)
	return err
}

// checkDataset validates an initial dataset and returns a private copy
// of the slice.
func checkDataset(pts []vec.Vector) ([]vec.Vector, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("store: empty dataset")
	}
	d := pts[0].Dim()
	for i, p := range pts {
		if err := checkPoint(p, d); err != nil {
			return nil, fmt.Errorf("store: option %d: %w", i, err)
		}
	}
	return append([]vec.Vector(nil), pts...), nil
}

// checkPoint validates one option payload.
func checkPoint(p vec.Vector, d int) error {
	if p.Dim() != d {
		return fmt.Errorf("dimension %d, want %d", p.Dim(), d)
	}
	for j, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("component %d is not finite", j)
		}
		if x < 0 || x > 1 {
			return fmt.Errorf("component %d = %v outside [0,1]", j, x)
		}
	}
	return nil
}

// track registers a published generation's scorer with the GC
// observability counters; the finalizer decrements them once the last
// pin drops and the garbage collector reclaims the snapshot. The byte
// figure is an upper bound: copy-on-write generations share unchanged
// vectors, which are counted once per live generation here. The
// finalizer deliberately captures only the counters struct, not the
// Store (see the gc field comment).
func (s *Store) track(sc *topk.Scorer) *topk.Scorer {
	g := s.gc
	bytes := int64(sc.Len()) * (int64(sc.Dim())*8 + 24)
	g.live.Add(1)
	g.retained.Add(bytes)
	runtime.SetFinalizer(sc, func(*topk.Scorer) {
		g.live.Add(-1)
		g.retained.Add(-bytes)
	})
	return sc
}

// GCStats reports how many generation snapshots are still reachable and
// an upper bound on the bytes they retain. A live count that keeps
// growing while mutations flow marks leaked pins (snapshots held
// forever); the counters move when the garbage collector actually
// reclaims a generation, so they trail drops by one GC cycle.
func (s *Store) GCStats() (liveGenerations int, retainedBytes int64) {
	return int(s.gc.live.Load()), s.gc.retained.Load()
}

// Snapshot returns the current generation's immutable view.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Generation returns the current generation number.
func (s *Store) Generation() Generation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Gen
}

// Len returns the current number of options.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Scorer.Len()
}

// Dim returns the option-space dimensionality.
func (s *Store) Dim() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Scorer.Dim()
}

// applyOp validates and applies one mutation to pts in place (returning
// the possibly regrown slice), filling rec with the logged form of the
// op — payload vectors cloned so neither the dataset nor the history
// aliases the caller's slices, deletes stripped of any stray payload —
// and marking the touched slots in dirty (which may be nil when no cache
// invalidation will consume it, as in boot replay). i is the op's
// position in its batch, for error messages.
func applyOp(pts []vec.Vector, d, i int, op Op, rec *AppliedOp, dirty map[int]bool) ([]vec.Vector, error) {
	*rec = AppliedOp{Op: op, Moved: -1}
	mark := func(slot int) {
		if dirty != nil {
			dirty[slot] = true
		}
	}
	switch op.Kind {
	case OpInsert:
		if err := checkPoint(op.Point, d); err != nil {
			return nil, fmt.Errorf("store: op %d (insert): %w", i, err)
		}
		p := op.Point.Clone()
		pts = append(pts, p)
		rec.Op.Point = p
		mark(len(pts) - 1)
	case OpDelete:
		if op.Index < 0 || op.Index >= len(pts) {
			return nil, fmt.Errorf("store: op %d (delete): index %d out of range [0,%d)", i, op.Index, len(pts))
		}
		if len(pts) == 1 {
			return nil, fmt.Errorf("store: op %d (delete): cannot delete the last option", i)
		}
		rec.Op.Point = nil
		last := len(pts) - 1
		if op.Index != last {
			pts[op.Index] = pts[last]
			rec.Moved = last
		}
		pts[last] = nil
		pts = pts[:last]
		mark(op.Index)
		mark(last)
	case OpUpdate:
		if op.Index < 0 || op.Index >= len(pts) {
			return nil, fmt.Errorf("store: op %d (update): index %d out of range [0,%d)", i, op.Index, len(pts))
		}
		if err := checkPoint(op.Point, d); err != nil {
			return nil, fmt.Errorf("store: op %d (update): %w", i, err)
		}
		p := op.Point.Clone()
		pts[op.Index] = p
		rec.Op.Point = p
		mark(op.Index)
	default:
		return nil, fmt.Errorf("store: op %d: unknown kind %v", i, op.Kind)
	}
	return pts, nil
}

// buildBatch validates a batch against the predecessor point set and
// builds the successor state: the copy-on-write points slice, the log
// records and the dirty-slot set. The store is not touched; the first
// offending op's error rejects the whole batch.
func buildBatch(old []vec.Vector, ops []Op) (pts []vec.Vector, recs []AppliedOp, dirty map[int]bool, err error) {
	pts = make([]vec.Vector, len(old), len(old)+len(ops))
	copy(pts, old)
	d := old[0].Dim()

	dirty = make(map[int]bool)
	recs = make([]AppliedOp, len(ops))
	for i, op := range ops {
		pts, err = applyOp(pts, d, i, op, &recs[i], dirty)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return pts, recs, dirty, nil
}

// classifyBatch reports the Delta.Kind of a validated non-empty batch:
// insert-only exactly when every op is an insert.
func classifyBatch(ops []Op) DeltaKind {
	for _, op := range ops {
		if op.Kind != OpInsert {
			return DeltaReshape
		}
	}
	return DeltaInsertOnly
}

// shardsTouched routes a batch's dirty slots to the shards whose state
// they invalidate: the shard of each dirty slot's old contents and of
// its new contents (sorted, deduplicated). nil when the store is
// unsharded.
func (s *Store) shardsTouched(old, pts []vec.Vector, dirty map[int]bool) []int {
	if s.shards <= 1 {
		return nil
	}
	set := make(map[int]bool, 2*len(dirty))
	for slot := range dirty {
		if slot < len(old) {
			set[topk.ShardOfPoint(old[slot], s.shards)] = true
		}
		if slot < len(pts) {
			set[topk.ShardOfPoint(pts[slot], s.shards)] = true
		}
	}
	out := make([]int, 0, len(set))
	for sh := range set {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

// publishLocked installs a built batch as generation gen: the new
// snapshot becomes current and the pre-sequenced records enter the
// bounded in-memory log. Callers hold mu and have already made the
// batch durable when the store is persistent.
func (s *Store) publishLocked(gen Generation, pts []vec.Vector, recs []AppliedOp) Snapshot {
	s.snap = Snapshot{Gen: gen, Scorer: s.track(topk.NewScorerAt(pts, uint64(gen)))}
	s.log = append(s.log, recs...)
	s.seq = recs[len(recs)-1].Seq
	if len(s.log) > logLimit {
		tail := make([]AppliedOp, logLimit/2)
		copy(tail, s.log[len(s.log)-logLimit/2:])
		s.log = tail
	}
	return s.snap
}

// Apply applies a batch of ops atomically: either every op validates and
// the batch publishes one new generation, or the store is unchanged and
// the first offending op's error is returned. The returned Snapshot is
// the new generation; the Delta lists the slots (and, on a sharded
// store, the shards) incremental cache invalidation must drop. An empty
// batch is a no-op returning the current snapshot.
//
// On a durable store the batch is encoded as one WAL record and — under
// SyncAlways — fsynced before the generation publishes, so a batch whose
// Apply returned is recovered by the next Open even across a crash. A
// WAL write failure rejects the batch and leaves the store unchanged.
// Concurrent Apply calls serialize on validation and the WAL append but
// group-commit the fsync: one shared flush covers every batch appended
// before it, and the batches then publish strictly in generation order.
// No disk I/O ever runs under the read lock, so concurrent readers pin
// snapshots and read stats without stalling behind a flush or a
// compaction.
func (s *Store) Apply(ops []Op) (Snapshot, Delta, error) {
	s.writeMu.Lock()

	s.mu.RLock()
	cur, closed := s.snap, s.closed
	s.mu.RUnlock()

	if closed {
		s.writeMu.Unlock()
		return cur, Delta{}, ErrClosed
	}
	if len(ops) == 0 {
		s.writeMu.Unlock()
		return cur, Delta{From: cur.Gen, To: cur.Gen}, nil
	}

	// Build against the tail — the last built batch — so a batch queued
	// behind an in-flight group commit stacks correctly on top of it.
	old := s.tail.pts
	pts, recs, dirty, err := buildBatch(old, ops)
	if err != nil {
		s.writeMu.Unlock()
		return cur, Delta{}, err
	}
	gen := s.tail.gen + 1
	firstSeq := s.tail.seq + 1
	for i := range recs {
		recs[i].Seq = firstSeq + uint64(i)
		recs[i].Gen = gen
	}

	var ticket uint64
	if s.wal != nil {
		payload := encodeBatch(gen, firstSeq, recs)
		if len(payload) > maxRecordBytes {
			// Not a disk fault: the batch itself is too large to ever be
			// a valid WAL record (recovery would classify it as a torn
			// tail and drop it). Reject it before anything is written.
			s.writeMu.Unlock()
			return cur, Delta{}, fmt.Errorf("store: batch encodes to %d bytes, over the %d-byte WAL record limit; split it", len(payload), maxRecordBytes)
		}
		ticket, err = s.wal.append(payload)
		if err != nil {
			s.writeMu.Unlock()
			return cur, Delta{}, fmt.Errorf("%w: wal append: %v", ErrDurability, err)
		}
		s.walOps += len(recs)
	}

	// The batch is built (and written): claim its generation on the tail
	// and a slot in the publish backlog, then let the next writer in —
	// it can build and append while this batch waits on the fsync.
	s.tail.pts, s.tail.gen, s.tail.seq = pts, gen, recs[len(recs)-1].Seq
	s.pubMu.Lock()
	s.pending++
	s.pubMu.Unlock()
	s.writeMu.Unlock()

	if s.wal != nil {
		// Group commit: returns once a shared fsync covers this batch's
		// record (immediately under SyncNone).
		if err := s.wal.waitSync(ticket); err != nil {
			s.pubMu.Lock()
			s.pending--
			s.pubCond.Broadcast()
			s.pubMu.Unlock()
			return cur, Delta{}, fmt.Errorf("%w: wal fsync: %v", ErrDurability, err)
		}
	}

	// Publish strictly in generation order; the durable write (fsync
	// included) happened before readers can see the new generation.
	s.pubMu.Lock()
	for s.published != gen-1 {
		s.pubCond.Wait()
	}
	s.mu.Lock()
	snap := s.publishLocked(gen, pts, recs)
	s.mu.Unlock()
	s.published = gen
	s.pending--
	s.pubCond.Broadcast()
	s.pubMu.Unlock()

	dirtyList := make([]int, 0, len(dirty))
	for i := range dirty {
		dirtyList = append(dirtyList, i)
	}
	delta := Delta{From: gen - 1, To: gen, Dirty: dirtyList, ShardsTouched: s.shardsTouched(old, pts, dirty), Kind: classifyBatch(ops)}
	if delta.Kind == DeltaInsertOnly {
		// Inserts land at the tail in op order: the new slots are exactly
		// [oldLen, newLen), ascending — AdvanceInsert's contract.
		delta.Inserted = make([]int, 0, len(pts)-len(old))
		for slot := len(old); slot < len(pts); slot++ {
			delta.Inserted = append(delta.Inserted, slot)
		}
	}

	if s.wal != nil {
		s.writeMu.Lock()
		s.maintain()
		s.writeMu.Unlock()
	}
	return snap, delta, nil
}

// drainPending waits until every built batch has published. Callers
// hold writeMu, so no new builds can start; the in-flight ones need
// only pubMu and mu to finish.
func (s *Store) drainPending() {
	s.pubMu.Lock()
	for s.pending > 0 {
		s.pubCond.Wait()
	}
	s.pubMu.Unlock()
}

// Close syncs and closes the WAL. Further Apply calls fail with
// ErrClosed; reads keep serving the in-memory state. Closing an
// in-memory store only blocks writes. In-flight Apply calls waiting on
// a group commit are drained first — Close never strands an
// acknowledged-in-progress batch. Close is idempotent.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if wasClosed {
		return nil
	}
	// No new builds can start (writeMu is held and closed is set); wait
	// for the built backlog to flush and publish before closing the WAL.
	s.drainPending()
	var err error
	if s.wal != nil {
		err = s.wal.close()
	}
	if s.lock != nil {
		// Closing the fd drops the flock; another process may then open
		// the directory.
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Log returns a copy of the retained applied-ops with Seq > since
// (since=0 returns everything retained). Entries older than the
// retention limit are gone; callers detect the gap when the first
// returned Seq exceeds since+1.
func (s *Store) Log(since uint64) []AppliedOp {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := 0
	for lo < len(s.log) && s.log[lo].Seq <= since {
		lo++
	}
	out := append([]AppliedOp(nil), s.log[lo:]...)
	// Payload vectors are cloned so a consumer cannot mutate history.
	for i := range out {
		if out[i].Op.Point != nil {
			out[i].Op.Point = out[i].Op.Point.Clone()
		}
	}
	return out
}
