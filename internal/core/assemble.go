package core

import (
	"sort"

	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Assembler is the final pipeline stage of a TopRR solve: given the
// collected impact vertices Vall, it produces oR per Theorem 1 — the
// intersection of the option box with the impact halfspaces of every
// vertex. Implementations must be deterministic for a given Vall.
//
// Assemblers that also implement StreamAssembler consume impact
// vertices as the partition stage produces them; the solver prefers
// that path (see stream.go) and only buffers Vall for assemblers that
// lack it.
type Assembler interface {
	// Name identifies the assembler in stats and logs.
	Name() string
	// Assemble returns the exact H-representation of oR and, when it
	// fits within vertexBudget, its explicit geometry.
	Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput
}

// AssembleOutput is the result of the assemble stage.
type AssembleOutput struct {
	Constraints []geom.Halfspace // exact H-representation (always set)
	OR          *geom.Polytope   // explicit geometry, nil if over budget
	Clips       int              // halfspaces that actually cut during enumeration
	ShardClips  []int            // per-shard clip counts (ParallelClipAssembler only)
}

// ClipAssembler is the default assembler: incremental halfspace
// clipping of the option box.
//
// It always returns the exact H-representation (box constraints plus
// the deduplicated impact halfspaces). The explicit polytope is built
// by incremental clipping — halfspaces already satisfied by every
// current vertex are skipped, and deeper cuts are applied first so most
// later halfspaces hit that fast path — but with a small preference
// region the impact halfspaces are nearly parallel, and in high
// dimensions their intersection can have intractably many vertices; if
// the enumeration exceeds vertexBudget the polytope is abandoned (nil)
// while the H-representation stays exact.
type ClipAssembler struct{}

// Name implements Assembler.
func (ClipAssembler) Name() string { return "clip" }

// NewStream implements StreamAssembler.
func (ClipAssembler) NewStream(scorer *topk.Scorer, vertexBudget int) AssembleStream {
	return &clipStream{set: impactSet{scorer: scorer}, budget: vertexBudget}
}

// Assemble implements Assembler. It is the buffered equivalent of the
// streaming path: push everything, finish once.
func (a ClipAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	st := a.NewStream(scorer, vertexBudget)
	for _, iv := range vall {
		st.Push(iv)
	}
	return st.Finish()
}

// optionBox returns the [0,1]^d option-space box.
func optionBox(d int) *geom.Polytope {
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	return geom.NewBox(lo, hi)
}

// dedupImpact deduplicates the impact halfspaces of Vall on a quantized
// grid and orders them deepest-cut first (higher threshold binds more
// of the box), with a deterministic tie-break so runs are reproducible.
// Identity is the composite uint64 hash of the quantized halfspace —
// no per-vertex clone or string key is ever built. Both assemblers and
// the streaming path share this dedup, so their constraint lists are
// identical.
func dedupImpact(scorer *topk.Scorer, vall []ImpactVertex) []geom.Halfspace {
	set := impactSet{scorer: scorer}
	for _, iv := range vall {
		set.add(iv)
	}
	return set.sorted()
}

// clipFold runs the sequential incremental clip of impact against box
// inside an arena-backed geom.Fold: the explicit polytope (nil when the
// enumeration exceeds vertexBudget) and the number of halfspaces that
// actually cut.
func clipFold(box *geom.Polytope, impact []geom.Halfspace, vertexBudget int) (or *geom.Polytope, clips int) {
	f := geom.NewFold(box)
	defer f.Release()
	for _, h := range impact {
		if f.Clip(h) {
			clips++
		}
		if f.Current().NumVertices() > vertexBudget {
			return nil, clips
		}
	}
	return f.Detach(), clips
}

// ParallelClipAssembler is the sharded merge stage: the deduplicated
// impact halfspaces are split round-robin into one constraint chunk per
// shard, each chunk is clipped against the option box concurrently, and
// the per-shard polytopes are intersected — constraint intersection
// over the existing geom machinery — into the final region. Because
// halfspace intersection is commutative and associative, the result is
// exactly ClipAssembler's region, and the shared dedup keeps the
// H-representation identical too; only the explicit vertex enumeration
// may differ by float noise in degenerate cases. When an intermediate
// chunk polytope exceeds the vertex budget, the assembler falls back to
// the sequential fold, so whether OR geometry is present matches the
// unsharded assembler exactly as well. Per-shard clip counts
// land in AssembleOutput.ShardClips, summing to Clips (the
// intersection fold's cuts are attributed to the chunk that
// contributed the cutting halfspace; when a fallback runs the
// sequential fold instead, its cuts are attributed to shard 0).
type ParallelClipAssembler struct {
	// Shards is the chunk count (values < 2 fall back to the sequential
	// ClipAssembler path; values above topk.MaxShards are clamped).
	Shards int
}

// Name implements Assembler.
func (ParallelClipAssembler) Name() string { return "clip-sharded" }

// NewStream implements StreamAssembler.
func (a ParallelClipAssembler) NewStream(scorer *topk.Scorer, vertexBudget int) AssembleStream {
	return &clipStream{set: impactSet{scorer: scorer}, budget: vertexBudget, shards: a.Shards}
}

// Assemble implements Assembler, buffered equivalent of the stream.
func (a ParallelClipAssembler) Assemble(scorer *topk.Scorer, vall []ImpactVertex, vertexBudget int) AssembleOutput {
	st := a.NewStream(scorer, vertexBudget)
	for _, iv := range vall {
		st.Push(iv)
	}
	return st.Finish()
}

// sortedVall returns Vall in a deterministic order: lexicographic over
// the quantized vertex coordinates, independent of map iteration and of
// the order workers confirmed regions in.
func (s *solver) sortedVall() []ImpactVertex {
	out := make([]ImpactVertex, 0, len(s.vall))
	for _, iv := range s.vall {
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool {
		return lexLessQ(out[i].W, out[j].W, vallQuantum)
	})
	return out
}
