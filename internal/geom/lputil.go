package geom

import (
	"toprr/internal/lp"
	"toprr/internal/vec"
)

// ChebyshevCenter returns the center and radius of the largest ball
// inscribed in the region {x : A_i·x >= B_i for all i}. It reports
// ok = false when the region is empty or its inscribed radius is
// unbounded (the region must be bounded in every direction by the given
// halfspaces, as oR and wR always are via their box constraints).
//
// The LP is the classic one: maximize r subject to
// A_i·x - ||A_i||·r >= B_i, with x free and r >= 0 (r's nonnegativity
// follows from optimality whenever the region is nonempty).
func ChebyshevCenter(hs []Halfspace, dim int) (center vec.Vector, radius float64, ok bool) {
	cons := make([]lp.Constraint, 0, len(hs))
	for _, h := range hs {
		a := make(vec.Vector, dim+1)
		copy(a, h.A)
		a[dim] = -h.A.Norm()
		cons = append(cons, lp.Constraint{A: a, Rel: lp.GE, B: h.B})
	}
	obj := make(vec.Vector, dim+1)
	obj[dim] = 1
	res := lp.MaximizeFree(obj, cons)
	if res.Status != lp.Optimal || res.Value < 0 {
		return nil, 0, false
	}
	return res.X[:dim].Clone(), res.Value, true
}

// RemoveRedundant returns the subset of halfspaces that actually bound
// the region {x : A_i·x >= B_i} — i.e. it drops every constraint
// implied by the others. Each candidate is tested with one LP
// (minimize A_i·x over the remaining constraints); already-dropped
// constraints are excluded from later tests, which keeps the result
// correct because a dropped constraint is implied by the survivors.
// Exact duplicates are removed up front so mutual-implication pairs
// cannot eliminate each other.
//
// Cost is one LP per constraint; intended for post-processing oR's
// H-representation, not for inner loops.
func RemoveRedundant(hs []Halfspace, dim int) []Halfspace {
	// Deduplicate on a quantized key first.
	seen := make(map[string]bool, len(hs))
	uniq := make([]Halfspace, 0, len(hs))
	for _, h := range hs {
		n := h.Normalize()
		key := append(n.A.Clone(), n.B).Key(1e-9)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, h)
	}
	alive := make([]bool, len(uniq))
	for i := range alive {
		alive[i] = true
	}
	for i := range uniq {
		cons := make([]lp.Constraint, 0, len(uniq)-1)
		for j, h := range uniq {
			if j == i || !alive[j] {
				continue
			}
			cons = append(cons, lp.Constraint{A: h.A, Rel: lp.GE, B: h.B})
		}
		res := lp.MinimizeFree(uniq[i].A, cons)
		// Redundant iff the others already force A_i·x >= B_i.
		if res.Status == lp.Optimal && res.Value >= uniq[i].B-1e-9 {
			alive[i] = false
		}
	}
	out := make([]Halfspace, 0, len(uniq))
	for i, h := range uniq {
		if alive[i] {
			out = append(out, h)
		}
	}
	return out
}
