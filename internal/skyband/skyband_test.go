package skyband

import (
	"math/rand"
	"sort"
	"testing"

	"toprr/internal/dataset"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q vec.Vector
		want bool
	}{
		{vec.Of(0.5, 0.5), vec.Of(0.4, 0.4), true},
		{vec.Of(0.5, 0.5), vec.Of(0.5, 0.4), true},
		{vec.Of(0.5, 0.5), vec.Of(0.5, 0.5), false}, // equal: no strict edge
		{vec.Of(0.5, 0.3), vec.Of(0.4, 0.4), false}, // incomparable
		{vec.Of(0.4, 0.4), vec.Of(0.5, 0.5), false},
	}
	for i, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("case %d: Dominates(%v,%v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 2000; iter++ {
		a, b, c := randPt(rng, 3), randPt(rng, 3), randPt(rng, 3)
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("dominance not transitive: %v %v %v", a, b, c)
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("dominance not antisymmetric: %v %v", a, b)
		}
	}
}

func randPt(rng *rand.Rand, d int) vec.Vector {
	p := vec.New(d)
	for j := range p {
		p[j] = rng.Float64()
	}
	return p
}

// bruteKSkyband counts dominators directly.
func bruteKSkyband(pts []vec.Vector, k int) []int {
	var out []int
	for i, p := range pts {
		count := 0
		for j, q := range pts {
			if i != j && Dominates(q, p) {
				count++
			}
		}
		if count < k {
			out = append(out, i)
		}
	}
	return out
}

func TestKSkybandMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 20; iter++ {
		n := 50 + rng.Intn(100)
		d := 2 + rng.Intn(3)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = randPt(rng, d)
		}
		k := 1 + rng.Intn(4)
		got := KSkyband(pts, k)
		want := bruteKSkyband(pts, k)
		if !equalInts(got, want) {
			t.Fatalf("iter %d (n=%d d=%d k=%d): got %v want %v", iter, n, d, k, got, want)
		}
	}
}

func TestRDomBoxMatchesVertexTester(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	lo, hi := vec.Of(0.2, 0.1), vec.Of(0.3, 0.25)
	box := NewRDomBox(lo, hi)
	// Enumerate the box corners for the vertex-based tester.
	verts := []vec.Vector{
		vec.Of(0.2, 0.1), vec.Of(0.3, 0.1), vec.Of(0.2, 0.25), vec.Of(0.3, 0.25),
	}
	vt := NewRDomVerts(verts)
	for iter := 0; iter < 3000; iter++ {
		p, q := randPt(rng, 3), randPt(rng, 3)
		if box.RDominates(p, q) != vt.RDominates(p, q) {
			t.Fatalf("box and vertex testers disagree on %v vs %v", p, q)
		}
	}
}

func TestDominanceImpliesRDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rd := NewRDomBox(vec.Of(0.1, 0.1), vec.Of(0.4, 0.3))
	for iter := 0; iter < 3000; iter++ {
		p, q := randPt(rng, 3), randPt(rng, 3)
		// Make strict dominance likely.
		if Dominates(p, q) {
			// Strict dominance with real margins implies r-dominance.
			margin := true
			for j := range p {
				if p[j] < q[j]+1e-9 {
					margin = false
				}
			}
			if margin && !rd.RDominates(p, q) {
				t.Fatalf("strictly dominating %v should r-dominate %v", p, q)
			}
		}
	}
}

// bruteRSkyband verifies against a sampled ground truth: an option is
// excludable only if at least k others beat it at EVERY sampled weight
// vector of wR.
func TestRSkybandIsSupersetOfTopKResults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]vec.Vector, 300)
	for i := range pts {
		pts[i] = randPt(rng, 3)
	}
	lo, hi := vec.Of(0.3, 0.2), vec.Of(0.45, 0.35)
	k := 5
	band := RSkyband(pts, k, NewRDomBox(lo, hi))
	inBand := make(map[int]bool, len(band))
	for _, i := range band {
		inBand[i] = true
	}
	s := topk.NewScorer(pts)
	for iter := 0; iter < 500; iter++ {
		w := vec.Of(lo[0]+rng.Float64()*(hi[0]-lo[0]), lo[1]+rng.Float64()*(hi[1]-lo[1]))
		r := s.TopK(w, k, nil)
		for _, idx := range r.Ordered {
			if !inBand[idx] {
				t.Fatalf("top-%d member %d at w=%v missing from r-skyband", k, idx, w)
			}
		}
	}
}

func TestRSkybandSubsetOfKSkyband(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]vec.Vector, 400)
	for i := range pts {
		pts[i] = randPt(rng, 4)
	}
	k := 3
	rsky := RSkyband(pts, k, NewRDomBox(vec.Of(0.2, 0.2, 0.2), vec.Of(0.3, 0.3, 0.3)))
	ksky := KSkyband(pts, k)
	inK := make(map[int]bool, len(ksky))
	for _, i := range ksky {
		inK[i] = true
	}
	for _, i := range rsky {
		if !inK[i] {
			t.Fatalf("r-skyband member %d not in k-skyband", i)
		}
	}
	if len(rsky) >= len(ksky) {
		t.Errorf("r-skyband (%d) should be smaller than k-skyband (%d) for a small wR",
			len(rsky), len(ksky))
	}
}

func TestOnionLayersSquare(t *testing.T) {
	// Four corners + center: corners are layer 1, center is layer 2.
	pts := []vec.Vector{
		vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1), vec.Of(1, 1), vec.Of(0.5, 0.5),
	}
	l1 := OnionLayers(pts, 1)
	if !equalInts(l1, []int{0, 1, 2, 3}) {
		t.Errorf("layer 1 = %v, want the corners", l1)
	}
	l2 := OnionLayers(pts, 2)
	if !equalInts(l2, []int{0, 1, 2, 3, 4}) {
		t.Errorf("layers 1-2 = %v, want everything", l2)
	}
}

func TestOnionLayersCoverTopK(t *testing.T) {
	// k onion layers must contain the top-k for any weight vector — the
	// guarantee of the onion technique.
	rng := rand.New(rand.NewSource(33))
	pts := make([]vec.Vector, 120)
	for i := range pts {
		pts[i] = randPt(rng, 2)
	}
	k := 3
	onion := OnionLayers(pts, k)
	in := make(map[int]bool, len(onion))
	for _, i := range onion {
		in[i] = true
	}
	s := topk.NewScorer(pts)
	for iter := 0; iter < 200; iter++ {
		w := vec.Of(rng.Float64())
		for _, idx := range s.TopK(w, k, nil).Ordered {
			if !in[idx] {
				t.Fatalf("top-%d member %d at w=%v not covered by %d onion layers", k, idx, w, k)
			}
		}
	}
}

func TestFilterSizesOrdering(t *testing.T) {
	// On an independent dataset with a small wR, the paper's Figure 8
	// ordering must hold: |r-skyband| <= |k-skyband|.
	d := dataset.Generate(dataset.Independent, 3000, 4, 5)
	k := 10
	rd := NewRDomBox(vec.Of(0.2, 0.2, 0.2), vec.Of(0.25, 0.25, 0.25))
	rs := RSkyband(d.Pts, k, rd)
	ks := KSkyband(d.Pts, k)
	if len(rs) > len(ks) {
		t.Errorf("r-skyband %d > k-skyband %d", len(rs), len(ks))
	}
	if len(rs) < k {
		t.Errorf("r-skyband %d smaller than k=%d", len(rs), k)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sa := append([]int(nil), a...)
	sb := append([]int(nil), b...)
	sort.Ints(sa)
	sort.Ints(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
