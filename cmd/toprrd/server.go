package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"toprr/internal/geom"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// server is the HTTP front end over one engine. Every request runs
// under a per-request deadline; queries pin the dataset generation
// current when they arrive, so a request is never torn across an
// Apply landing mid-solve.
type server struct {
	engine  *toprr.Engine
	timeout time.Duration // per-request deadline (0 = none)
	start   time.Time
}

// newServer wires the /v1 API over an engine.
func newServer(engine *toprr.Engine, timeout time.Duration) http.Handler {
	s := &server{engine: engine, timeout: timeout, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/ops", s.handleOps)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// requestCtx derives the request context bounded by the server's
// per-request deadline.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// maxBodyBytes caps request bodies so one oversized POST cannot buffer
// the daemon into the ground; decode failures past the cap surface as
// ordinary 400s.
const maxBodyBytes = 32 << 20

// decodeBody decodes a JSON request body under the size cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v)
}

// errorJSON is every error response's body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// solveStatus maps a solve error to an HTTP status: request deadlines
// become 504, client disconnects 503, everything else a server error.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// queryJSON is the wire form of one TopRR query: rank threshold k and
// the preference box [lo, hi] in the (d-1)-dimensional preference
// space.
type queryJSON struct {
	K       int       `json:"k"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	Alg     string    `json:"alg,omitempty"`
	Workers int       `json:"workers,omitempty"`
}

// parseAlg maps the wire algorithm name to the solver constant.
func parseAlg(name string) (toprr.Algorithm, error) {
	switch strings.ToUpper(name) {
	case "", "TAS*", "TASSTAR", "TAS-STAR":
		return toprr.TASStar, nil
	case "TAS":
		return toprr.TAS, nil
	case "PAC":
		return toprr.PAC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

// prefBox builds the preference region, converting PrefBox's panic on an
// empty region into an error.
func prefBox(lo, hi []float64) (p *geom.Polytope, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invalid preference box: %v", r)
		}
	}()
	return toprr.PrefBox(vec.Vector(lo), vec.Vector(hi)), nil
}

// buildQuery validates a wire query against a pinned snapshot.
func buildQuery(snap toprr.Snapshot, qj queryJSON) (toprr.Query, error) {
	m := snap.Scorer.PrefDim()
	if len(qj.Lo) != m || len(qj.Hi) != m {
		return toprr.Query{}, fmt.Errorf("lo/hi need %d components (d-1), got %d/%d", m, len(qj.Lo), len(qj.Hi))
	}
	if qj.K <= 0 || qj.K > snap.Scorer.Len() {
		return toprr.Query{}, fmt.Errorf("k=%d out of range for %d options", qj.K, snap.Scorer.Len())
	}
	wr, err := prefBox(qj.Lo, qj.Hi)
	if err != nil {
		return toprr.Query{}, err
	}
	q := toprr.Query{K: qj.K, WR: wr}
	if qj.Alg != "" || qj.Workers > 0 {
		alg, err := parseAlg(qj.Alg)
		if err != nil {
			return toprr.Query{}, err
		}
		q.Options = &toprr.Options{Alg: alg, Workers: qj.Workers}
	}
	return q, nil
}

// constraintJSON is one halfspace a·o >= b of oR's H-representation.
type constraintJSON struct {
	A []float64 `json:"a"`
	B float64   `json:"b"`
}

// resultJSON is the wire form of one TopRR result: the exact
// H-representation of oR, its explicit vertices when enumerated within
// budget, and the solve instrumentation.
type resultJSON struct {
	Constraints []constraintJSON `json:"constraints"`
	Vertices    [][]float64      `json:"vertices,omitempty"`
	Stats       solveStatsJSON   `json:"stats"`
}

type solveStatsJSON struct {
	InputOptions    int     `json:"input_options"`
	FilteredOptions int     `json:"filtered_options"`
	Regions         int     `json:"regions"`
	Splits          int     `json:"splits"`
	VallSize        int     `json:"vall_size"`
	TopKQueries     int     `json:"topk_queries"`
	TopKMisses      int     `json:"topk_misses"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

func resultToJSON(res *toprr.Result) resultJSON {
	out := resultJSON{
		Constraints: make([]constraintJSON, len(res.ORConstraints)),
		Stats: solveStatsJSON{
			InputOptions:    res.Stats.InputOptions,
			FilteredOptions: res.Stats.FilteredOptions,
			Regions:         res.Stats.Regions,
			Splits:          res.Stats.Splits,
			VallSize:        res.Stats.VallSize,
			TopKQueries:     res.Stats.TopKQueries,
			TopKMisses:      res.Stats.TopKMisses,
			ElapsedMS:       float64(res.Stats.Elapsed) / float64(time.Millisecond),
		},
	}
	for i, h := range res.ORConstraints {
		out.Constraints[i] = constraintJSON{A: h.A, B: h.B}
	}
	if res.OR != nil {
		for _, v := range res.OR.VertexPoints() {
			out.Vertices = append(out.Vertices, v)
		}
	}
	return out
}

// handleSolve answers POST /v1/solve: one query against the generation
// current at arrival.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var qj queryJSON
	if err := decodeBody(w, r, &qj); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	snap := s.engine.Snapshot()
	q, err := buildQuery(snap, qj)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := s.engine.SolveAt(ctx, snap, q)
	if err != nil {
		writeErr(w, solveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64     `json:"generation"`
		Result     resultJSON `json:"result"`
	}{uint64(snap.Gen), resultToJSON(res)})
}

// handleBatch answers POST /v1/batch: every query of the batch runs
// against one pinned generation.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req struct {
		Queries []queryJSON `json:"queries"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	snap := s.engine.Snapshot()
	qs := make([]toprr.Query, len(req.Queries))
	for i, qj := range req.Queries {
		q, err := buildQuery(snap, qj)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qs[i] = q
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := s.engine.SolveBatchAt(ctx, snap, qs)
	if err != nil {
		writeErr(w, solveStatus(err), err)
		return
	}
	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = resultToJSON(res)
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64       `json:"generation"`
		Results    []resultJSON `json:"results"`
	}{uint64(snap.Gen), out})
}

// opJSON is the wire form of one dataset mutation.
type opJSON struct {
	Op    string    `json:"op"` // "insert", "delete" or "update"
	Index int       `json:"index,omitempty"`
	Point []float64 `json:"point,omitempty"`
}

func (oj opJSON) toOp() (toprr.Op, error) {
	switch strings.ToLower(oj.Op) {
	case "insert":
		return toprr.Insert(vec.Vector(oj.Point)), nil
	case "delete":
		return toprr.Delete(oj.Index), nil
	case "update":
		return toprr.Update(oj.Index, vec.Vector(oj.Point)), nil
	default:
		return toprr.Op{}, fmt.Errorf("unknown op %q (want insert, delete or update)", oj.Op)
	}
}

// appliedOpJSON is one op-log entry on the wire.
type appliedOpJSON struct {
	Seq        uint64    `json:"seq"`
	Generation uint64    `json:"generation"`
	Op         string    `json:"op"`
	Index      int       `json:"index"`
	Point      []float64 `json:"point,omitempty"`
	Moved      int       `json:"moved"` // delete: former index of the swapped-in option, -1 otherwise
}

// handleOps mutates the dataset (POST) or reads the applied-ops log
// (GET ?since=<seq>).
func (s *server) handleOps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Ops []opJSON `json:"ops"`
		}
		if err := decodeBody(w, r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
			return
		}
		if len(req.Ops) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("empty ops batch"))
			return
		}
		ops := make([]toprr.Op, len(req.Ops))
		for i, oj := range req.Ops {
			op, err := oj.toOp()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: %w", i, err))
				return
			}
			ops[i] = op
		}
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		gen, err := s.engine.Apply(ctx, ops)
		if err != nil {
			// Validation failures reject the whole batch atomically with
			// 400. Server-side faults are not the batch's fault: a
			// cancelled or timed-out request maps like the solve path, a
			// WAL write failure is a 500, and a closing engine a 503.
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				code = solveStatus(err)
			case errors.Is(err, toprr.ErrClosed):
				code = http.StatusServiceUnavailable
			case errors.Is(err, toprr.ErrDurability):
				code = http.StatusInternalServerError
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Generation uint64 `json:"generation"`
			Applied    int    `json:"applied"`
		}{uint64(gen), len(ops)})
	case http.MethodGet:
		var since uint64
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("since: %w", err))
				return
			}
			since = n
		}
		log := s.engine.Log(since)
		out := make([]appliedOpJSON, len(log))
		for i, e := range log {
			out[i] = appliedOpJSON{
				Seq:        e.Seq,
				Generation: uint64(e.Gen),
				Op:         e.Op.Kind.String(),
				Index:      e.Op.Index,
				Point:      e.Op.Point,
				Moved:      e.Moved,
			}
		}
		writeJSON(w, http.StatusOK, struct {
			Generation uint64          `json:"generation"`
			Ops        []appliedOpJSON `json:"ops"`
		}{uint64(s.engine.Generation()), out})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST or GET"))
	}
}

// handleStats answers GET /v1/stats: dataset shape, generation, shared
// cache occupancy, snapshot GC counters, durable-layer state and
// process-wide work counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	cs := s.engine.CacheStats()
	ps := s.engine.PersistStats()
	ctr := toprr.ReadCounters()
	writeJSON(w, http.StatusOK, struct {
		Generation     uint64  `json:"generation"`
		Options        int     `json:"options"`
		Dim            int     `json:"dim"`
		UptimeMS       float64 `json:"uptime_ms"`
		Hyperplanes    int     `json:"cache_hyperplanes"`
		TopKConfigs    int     `json:"cache_topk_configs"`
		TopKHits       int     `json:"cache_topk_hits"`
		TopKMisses     int     `json:"cache_topk_misses"`
		Evictions      int     `json:"cache_evictions"`
		LiveGens       int     `json:"live_generations"`
		RetainedBytes  int64   `json:"retained_snapshot_bytes"`
		Persistent     bool    `json:"persistent"`
		WALBytes       int64   `json:"wal_bytes"`
		WALSegments    int     `json:"wal_segments"`
		LastCompaction uint64  `json:"last_compaction_generation"`
		CompactError   string  `json:"wal_compact_error,omitempty"`
		Regions        int64   `json:"regions_processed"`
		LPSolves       int64   `json:"lp_solves"`
		QPSolves       int64   `json:"qp_solves"`
	}{
		Generation:     uint64(cs.Generation),
		Options:        s.engine.Len(),
		Dim:            s.engine.Dim(),
		UptimeMS:       float64(time.Since(s.start)) / float64(time.Millisecond),
		Hyperplanes:    cs.Hyperplanes,
		TopKConfigs:    cs.TopKConfigs,
		TopKHits:       cs.TopKHits,
		TopKMisses:     cs.TopKMisses,
		Evictions:      cs.Evictions,
		LiveGens:       cs.LiveGenerations,
		RetainedBytes:  cs.RetainedSnapshotBytes,
		Persistent:     ps.Persistent,
		WALBytes:       ps.WALBytes,
		WALSegments:    ps.WALSegments,
		LastCompaction: uint64(ps.LastCompaction),
		CompactError:   ps.CompactError,
		Regions:        ctr.RegionsProcessed,
		LPSolves:       ctr.LPSolves,
		QPSolves:       ctr.QPSolves,
	})
}
