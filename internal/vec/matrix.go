package vec

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix whose rows are the given vectors.
func MatrixFromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("vec: ragged rows in MatrixFromRows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector view (not a copy).
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := New(m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = m.Row(i).Dot(x)
	}
	return y
}

// Rank returns the numeric rank of the matrix using Gaussian elimination
// with partial pivoting and tolerance tol.
func (m *Matrix) Rank(tol float64) int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.Cols && rank < a.Rows; col++ {
		// Find the pivot row for this column.
		pivot, best := -1, tol
		for r := rank; r < a.Rows; r++ {
			if abs := math.Abs(a.At(r, col)); abs > best {
				pivot, best = r, abs
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(pivot, rank)
		pv := a.At(rank, col)
		for r := rank + 1; r < a.Rows; r++ {
			f := a.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < a.Cols; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(rank, c))
			}
		}
		rank++
	}
	return rank
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// SolveSquare solves the square linear system a*x = b by Gaussian
// elimination with partial pivoting. It returns false if the system is
// singular within tolerance tol.
func SolveSquare(a *Matrix, b Vector, tol float64) (Vector, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("vec: SolveSquare requires a square system")
	}
	aa := a.Clone()
	bb := b.Clone()
	for col := 0; col < n; col++ {
		pivot, best := -1, tol
		for r := col; r < n; r++ {
			if abs := math.Abs(aa.At(r, col)); abs > best {
				pivot, best = r, abs
			}
		}
		if pivot < 0 {
			return nil, false
		}
		aa.swapRows(pivot, col)
		bb[pivot], bb[col] = bb[col], bb[pivot]
		pv := aa.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aa.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aa.Set(r, c, aa.At(r, c)-f*aa.At(col, c))
			}
			bb[r] -= f * bb[col]
		}
	}
	x := New(n)
	for i := n - 1; i >= 0; i-- {
		s := bb[i]
		for j := i + 1; j < n; j++ {
			s -= aa.At(i, j) * x[j]
		}
		x[i] = s / aa.At(i, i)
	}
	return x, true
}

// AffinelyIndependent reports whether the given points are affinely
// independent, i.e. whether they span a simplex of dimension len(pts)-1.
func AffinelyIndependent(pts []Vector, tol float64) bool {
	if len(pts) <= 1 {
		return true
	}
	rows := make([]Vector, 0, len(pts)-1)
	for _, p := range pts[1:] {
		rows = append(rows, p.Sub(pts[0]))
	}
	return MatrixFromRows(rows).Rank(tol) == len(pts)-1
}

// OrthonormalBasisOrthogonalTo returns d-1 orthonormal vectors spanning
// the hyperplane orthogonal to the (nonzero) d-dimensional vector a.
// Used to express polytope facets in their own coordinate system when
// computing exact volumes.
func OrthonormalBasisOrthogonalTo(a Vector, tol float64) []Vector {
	d := len(a)
	n := a.Scale(1 / a.Norm())
	basis := make([]Vector, 0, d-1)
	for axis := 0; axis < d && len(basis) < d-1; axis++ {
		e := New(d)
		e[axis] = 1
		// Project out the normal and the basis collected so far.
		e = e.AddScaled(-e.Dot(n), n)
		for _, b := range basis {
			e = e.AddScaled(-e.Dot(b), b)
		}
		if norm := e.Norm(); norm > tol {
			basis = append(basis, e.Scale(1/norm))
		}
	}
	if len(basis) != d-1 {
		panic("vec: failed to build orthonormal basis (zero normal?)")
	}
	return basis
}

// ProjectToBasis expresses point p in the coordinate system given by the
// basis vectors (each of p's dimension), returning a len(basis)-vector.
func ProjectToBasis(p Vector, basis []Vector) Vector {
	out := New(len(basis))
	for i, b := range basis {
		out[i] = p.Dot(b)
	}
	return out
}
