package bench

// The shard-scaling experiment: the same query set solved on engines
// with S = 1, 2, 4 and 8 solve-plane shards, cold caches per engine, so
// BENCH_shards.json records the wall-clock trajectory of the sharded
// solve plane across commits.

import (
	"context"
	"fmt"
	"time"

	"toprr/internal/dataset"
	"toprr/pkg/toprr"
)

// ShardGrid is the shard counts the scaling experiment sweeps.
var ShardGrid = []int{1, 2, 4, 8}

// shardBenchK and shardBenchSigma pick a partition-heavy workload — a
// wide preference region and a deep rank threshold — so the measured
// phase is the one the shards parallelize (the recursion over per-shard
// caches), not the sequential prefilter sweep.
const (
	shardBenchK     = 20
	shardBenchSigma = 0.05
)

// ShardScaling measures mean solve time per shard count over one
// dataset and query set. Results are exact at every S (the property
// suite enforces it); the table records what the parallel fan-out buys
// — the speedup column needs a multi-core runner to move, since S
// shards solve with S workers on the channel scheduler.
func ShardScaling(s Scale) []*Table {
	ds := s.data(dataset.Independent, DefaultN, DefaultD)
	regions := s.Regions(DefaultD-1, shardBenchSigma, 1, 4242)
	t := &Table{
		ID:      "Shards",
		Caption: fmt.Sprintf("sharded solve plane, IND n=%s d=%d k=%d sigma=%.2f (cold caches per engine)", humanN(len(ds.Pts)), DefaultD, shardBenchK, shardBenchSigma),
		Header:  []string{"shards", "mean time", "speedup vs S=1", "failed"},
	}
	ctx := context.Background()
	var base time.Duration
	for _, shards := range ShardGrid {
		engine := toprr.NewEngine(ds.Pts, toprr.WithShards(shards))
		opts := s.options(toprr.TASStar)
		var total time.Duration
		solved, failed := 0, 0
		for _, wr := range regions {
			start := time.Now()
			if _, err := engine.Solve(ctx, toprr.Query{K: shardBenchK, WR: wr, Options: &opts}); err != nil {
				failed++
				continue
			}
			total += time.Since(start)
			solved++
		}
		row := []string{fmt.Sprintf("%d", shards), "-", "-", fmt.Sprintf("%d/%d", failed, len(regions))}
		if solved > 0 {
			mean := total / time.Duration(solved)
			row[1] = fmtDur(mean)
			if shards == 1 {
				base = mean
			}
			if base > 0 && mean > 0 {
				row[2] = fmt.Sprintf("%.2fx", float64(base)/float64(mean))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
