package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"toprr/internal/skyband"
	"toprr/internal/vec"
)

// TestUTKFilterCoversSampledTopK: every option observed in a top-k
// result at a sampled preference of wR must be in the UTK filter's
// output (the filter claims to be exact, so missing one would be a
// soundness bug), and the output must never exceed the r-skyband's.
func TestUTKFilterCoversSampledTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for iter := 0; iter < 5; iter++ {
		d := 2 + iter%3
		prob := randomProblem(rng, 100, d, 2+rng.Intn(5))
		out, err := UTKFilter(datasetPoints(prob), prob.K, prob.WR)
		if err != nil {
			t.Fatal(err)
		}
		inOut := make(map[int]bool, len(out))
		for i, idx := range out {
			inOut[idx] = true
			if i > 0 && out[i] <= out[i-1] {
				t.Fatalf("iter %d: output not strictly sorted: %v", iter, out)
			}
		}
		// Sampled preferences (and the extreme vertices of wR).
		ws := prob.WR.VertexPoints()
		for s := 0; s < 200; s++ {
			ws = append(ws, prob.WR.SamplePoint(rng))
		}
		for _, w := range ws {
			for _, idx := range prob.Scorer.TopK(w, prob.K, nil).Ordered {
				if !inOut[idx] {
					t.Fatalf("iter %d: option %d is top-%d at %v but missing from UTK filter %v",
						iter, idx, prob.K, w, out)
				}
			}
		}
		// Minimality relative to the r-skyband (the UTK filter must be
		// at least as tight).
		rd := skyband.NewRDomVerts(prob.WR.VertexPoints())
		sky := skyband.RSkyband(datasetPoints(prob), prob.K, rd)
		if len(out) > len(sky) {
			t.Fatalf("iter %d: |UTK| = %d > |r-skyband| = %d", iter, len(out), len(sky))
		}
	}
}

// TestUTKFilterDeterministic: two runs agree element-wise.
func TestUTKFilterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	prob := randomProblem(rng, 120, 3, 4)
	a, err := UTKFilter(datasetPoints(prob), prob.K, prob.WR)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UTKFilter(datasetPoints(prob), prob.K, prob.WR)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic output at %d: %v vs %v", i, a, b)
		}
	}
}

// TestUTKFilterContextCancelled: the filter honors cancellation.
func TestUTKFilterContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	prob := randomProblem(rng, 100, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := UTKFilterContext(ctx, datasetPoints(prob), prob.K, prob.WR); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestUTKPrefilterSolveMatches: plugging the UTK filter into the solve
// pipeline must not change oR, only (possibly) |D'|.
func TestUTKPrefilterSolveMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 3; iter++ {
		d := 2 + iter
		prob := randomProblem(rng, 100, d, 3)
		base, err := Solve(prob, Options{Alg: TASStar})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(prob, Options{Alg: TASStar, Prefilter: UTKPrefilter{}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.FilteredOptions > base.Stats.FilteredOptions {
			t.Errorf("iter %d: UTK |D'| = %d exceeds r-skyband |D'| = %d",
				iter, res.Stats.FilteredOptions, base.Stats.FilteredOptions)
		}
		for probe := 0; probe < 300; probe++ {
			o := vec.New(d)
			for j := range o {
				o[j] = rng.Float64()
			}
			if base.IsTopRanking(o) != res.IsTopRanking(o) {
				t.Fatalf("iter %d: UTK-prefiltered solve differs at %v", iter, o)
			}
		}
	}
}

// TestFilterSizes: the Lemma 5 root reduction can only shrink the
// candidate count, and both sizes stay within [k, n].
func TestFilterSizesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for iter := 0; iter < 6; iter++ {
		prob := randomProblem(rng, 150, 2+iter%3, 2+rng.Intn(6))
		sky, lem := FilterSizes(prob)
		if lem > sky {
			t.Fatalf("iter %d: Lemma 5 grew the candidate set: %d -> %d", iter, sky, lem)
		}
		if sky < prob.K || sky > prob.Scorer.Len() {
			t.Fatalf("iter %d: r-skyband size %d out of range [k=%d, n=%d]",
				iter, sky, prob.K, prob.Scorer.Len())
		}
		if lem < 0 {
			t.Fatalf("iter %d: negative Lemma 5 size %d", iter, lem)
		}
	}
}
