package toprr

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"toprr/internal/core"
	"toprr/internal/geom"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Engine serves TopRR queries over one fixed dataset. Unlike the
// package-level Solve, an Engine keeps reusable per-dataset state and
// shares it across queries:
//
//   - the scorer (the dataset is validated and wrapped once),
//   - interned splitting hyperplanes wHP(p_i, p_j), which depend only
//     on the option pair, and
//   - memoized top-k results keyed by (k, candidate-set) configuration,
//     so queries over nearby regions reuse each other's scoring work.
//
// An Engine is safe for concurrent use; Solve and SolveBatch may be
// called from many goroutines at once.
type Engine struct {
	scorer       *topk.Scorer
	defaults     Options
	hyperplanes  *core.HyperplaneCache
	caches       *topk.Registry
	batchWorkers int
}

// EngineOption configures a new Engine.
type EngineOption func(*Engine)

// WithDefaults sets the Options applied to queries that do not carry
// their own.
func WithDefaults(o Options) EngineOption {
	return func(e *Engine) { e.defaults = o }
}

// WithBatchWorkers bounds the number of queries SolveBatch runs
// concurrently (default: GOMAXPROCS).
func WithBatchWorkers(n int) EngineOption {
	return func(e *Engine) { e.batchWorkers = n }
}

// NewEngine builds an engine over a dataset of options in [0,1]^d.
func NewEngine(pts []vec.Vector, opts ...EngineOption) *Engine {
	e := &Engine{
		scorer:   topk.NewScorer(pts),
		defaults: Options{Alg: TASStar},
	}
	e.hyperplanes = core.NewHyperplaneCache(e.scorer)
	e.caches = topk.NewRegistry(e.scorer)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Scorer exposes the engine's dataset wrapper (for oracles and rank
// probes).
func (e *Engine) Scorer() *topk.Scorer { return e.scorer }

// Query is one TopRR request against an engine's dataset.
type Query struct {
	K       int            // rank threshold
	WR      *geom.Polytope // convex preference region
	Options *Options       // nil = the engine's defaults
}

// problem validates a query and binds it to the engine's dataset
// without re-wrapping the points.
func (e *Engine) problem(q Query) (Problem, error) {
	if q.WR == nil {
		return Problem{}, fmt.Errorf("toprr: query has no preference region")
	}
	if q.WR.Dim != e.scorer.PrefDim() {
		return Problem{}, fmt.Errorf("toprr: wR dimension %d, want %d", q.WR.Dim, e.scorer.PrefDim())
	}
	if q.K <= 0 || q.K > e.scorer.Len() {
		return Problem{}, fmt.Errorf("toprr: k=%d out of range for %d options", q.K, e.scorer.Len())
	}
	return Problem{Scorer: e.scorer, K: q.K, WR: q.WR}, nil
}

// options resolves a query's options and injects the engine's shared
// caches.
func (e *Engine) options(q Query) Options {
	opt := e.defaults
	if q.Options != nil {
		opt = *q.Options
	}
	opt.Hyperplanes = e.hyperplanes
	opt.TopKCaches = e.caches
	return opt
}

// Solve answers one query, honoring cancellation and deadlines on ctx.
func (e *Engine) Solve(ctx context.Context, q Query) (*Result, error) {
	p, err := e.problem(q)
	if err != nil {
		return nil, err
	}
	return core.SolveContext(ctx, p, e.options(q))
}

// SolveBatch answers a batch of queries concurrently (bounded by the
// engine's batch-worker count), amortizing the shared per-dataset
// caches across them. Results align with qs. On the first error the
// remaining queries are cancelled; the partial results computed so far
// are returned alongside the error (failed or cancelled slots are nil).
func (e *Engine) SolveBatch(ctx context.Context, qs []Query) ([]*Result, error) {
	results := make([]*Result, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := e.Solve(ctx, qs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel() // fail fast: stop dispatch and running solves
					continue
				}
				results[i] = res
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return results, fmt.Errorf("toprr: batch query %d: %w", firstIdx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// CacheStats reports the engine's cross-query cache occupancy: interned
// split hyperplanes, interned top-k cache configurations, and the
// cumulative top-k hit/miss totals across them.
type CacheStats struct {
	Hyperplanes int
	TopKConfigs int
	TopKHits    int
	TopKMisses  int
}

// CacheStats snapshots the engine's shared-cache occupancy.
func (e *Engine) CacheStats() CacheStats {
	hits, misses := e.caches.Stats()
	return CacheStats{
		Hyperplanes: e.hyperplanes.Len(),
		TopKConfigs: e.caches.Len(),
		TopKHits:    hits,
		TopKMisses:  misses,
	}
}
