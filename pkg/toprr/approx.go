package toprr

import (
	"fmt"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// certSlack is the margin the approximate fast path demands before
// certifying an answer from sketch bounds alone. The sketch's scores
// are computed with the same scalar kernel as the exact plane, so in
// principle no slack is needed; the margin absorbs rounding in the
// monotone threshold bound and errs toward falling back — the direction
// that costs time, never correctness.
const certSlack = 1e-9

// Estimate is an interval answer from the approximate fast path. The
// exact answer always lies in [Lo, Hi]. Certified reports that the
// sketch tier's deterministic bounds pinned the interval on their own;
// when they could not, the engine fell back to the exact plane — the
// interval then collapses to the exact answer and Certified is false.
// CacheStats.SketchCertified and SketchFallbacks count the two
// outcomes.
type Estimate struct {
	Lo, Hi    float64
	Certified bool
}

// ImpactQuery asks where a hypothetical new option would rank: at
// reduced preference W, how many existing options score strictly above
// a new option placed at P, plus one. K is the rank threshold the
// caller cares about — the estimate is certified as soon as the bounds
// decide K-membership, even if they don't pin the exact rank.
type ImpactQuery struct {
	W vec.Vector // reduced preference (d-1 components)
	P vec.Vector // option-space placement of the hypothetical option
	K int        // rank threshold of interest
}

// validatePref checks a reduced preference vector and rank threshold
// against a snapshot, mirroring RankAt's contract.
func validatePref(snap Snapshot, w vec.Vector, k int) error {
	if snap.Scorer == nil {
		return fmt.Errorf("toprr: zero snapshot (use Engine.Snapshot)")
	}
	if k <= 0 || k > snap.Scorer.Len() {
		return fmt.Errorf("toprr: k=%d out of range for %d options", k, snap.Scorer.Len())
	}
	if len(w) != snap.Scorer.PrefDim() {
		return fmt.Errorf("toprr: preference dimension %d, want %d", len(w), snap.Scorer.PrefDim())
	}
	sum := 0.0
	for j, wj := range w {
		if !(wj >= 0) {
			return fmt.Errorf("toprr: preference component %d = %v, want >= 0", j, wj)
		}
		sum += wj
	}
	if sum > 1 {
		return fmt.Errorf("toprr: preference components sum to %v, want <= 1", sum)
	}
	return nil
}

// ApproxRank bounds TopK(w) — the k-th highest score at reduced
// preference w over the current dataset — from the sketch tier. When
// the merged sketch's k-th monitored score exceeds the deterministic
// upper bound on every unmonitored option, the monitored set provably
// contains the true top k and the returned interval is the exact score
// (Certified true); the warm certified path allocates nothing. When the
// bounds cannot certify — heavy folding, k beyond the monitored budget,
// or a sketch generation behind the store — the call falls back to the
// exact plane (memoized when the generation matches) and returns the
// exact score with Certified false. Either way the exact TopK(w) lies
// in [Lo, Hi].
func (e *Engine) ApproxRank(w vec.Vector, k int) (Estimate, error) {
	snap := e.store.Snapshot()
	if err := validatePref(snap, w, k); err != nil {
		return Estimate{}, err
	}
	if m := e.sketches.MergedFor(snap.Scorer); m != nil {
		if sk, ok := m.KthBest(w, k); ok {
			if u := m.UpperUnmonitored(w); u+certSlack <= sk {
				// Every unmonitored option scores below the k-th monitored
				// one, so the monitored set contains the true top k and sk
				// is TopK(w) exactly (computed with the same scalar kernel
				// as the exact plane).
				e.sketchCertified.Add(1)
				return Estimate{Lo: sk, Hi: sk, Certified: true}, nil
			}
		}
	}
	e.sketchFallbacks.Add(1)
	var res *topk.Result
	if c := e.caches.GetFor(snap.Scorer, k, nil); c != nil {
		res, _ = c.Lookup(w)
	} else {
		res = snap.Scorer.TopK(w, k, nil)
	}
	return Estimate{Lo: res.KthScore, Hi: res.KthScore}, nil
}

// ApproxImpact bounds the rank a hypothetical new option placed at q.P
// would take at preference q.W: one plus the number of existing options
// scoring strictly above it. Lo counts the monitored entries above; Hi
// adds the folded members unless the threshold bound proves none of
// them can score above the placement. The estimate is certified as soon
// as the interval decides rank <= q.K one way or the other; otherwise
// the engine falls back to an exact scan of the snapshot and returns
// the exact rank with Certified false.
func (e *Engine) ApproxImpact(q ImpactQuery) (Estimate, error) {
	snap := e.store.Snapshot()
	if err := validatePref(snap, q.W, q.K); err != nil {
		return Estimate{}, err
	}
	if len(q.P) != snap.Scorer.Dim() {
		return Estimate{}, fmt.Errorf("toprr: option dimension %d, want %d", len(q.P), snap.Scorer.Dim())
	}
	sq := topk.ScorePoint(q.W, q.P)
	if m := e.sketches.MergedFor(snap.Scorer); m != nil {
		lo := 1 + m.CountAbove(q.W, sq)
		hi := lo
		if m.Folded() > 0 && m.UpperUnmonitored(q.W)+certSlack > sq {
			hi += m.Folded()
		}
		if hi <= q.K || lo > q.K {
			e.sketchCertified.Add(1)
			return Estimate{Lo: float64(lo), Hi: float64(hi), Certified: true}, nil
		}
	}
	e.sketchFallbacks.Add(1)
	sc := snap.Scorer
	rank := 1
	for i := 0; i < sc.Len(); i++ {
		if topk.ScorePoint(q.W, sc.Point(i)) > sq {
			rank++
		}
	}
	return Estimate{Lo: float64(rank), Hi: float64(rank)}, nil
}
