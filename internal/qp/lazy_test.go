package qp

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// TestLazyMatchesDense builds random projection problems with more
// constraints than the lazy threshold and cross-checks constraint
// generation against a direct dense solve on the same system.
func TestLazyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(3)
		m := lazyThreshold + 10 + rng.Intn(50)
		g := make([]vec.Vector, m)
		h := vec.New(m)
		for i := range g {
			g[i] = vec.New(n)
			for j := range g[i] {
				g[i][j] = rng.NormFloat64()
			}
			h[i] = 0.5 + rng.Float64() // origin strictly feasible
		}
		target := vec.New(n)
		for j := range target {
			target[j] = rng.NormFloat64() * 2
		}
		q := vec.New(n)
		c := vec.New(n)
		for j := range q {
			q[j] = 2
			c[j] = -2 * target[j]
		}
		lazy, err := SolveDiagonal(q, c, g, h, Options{})
		if err != nil {
			t.Fatalf("iter %d lazy: %v", iter, err)
		}
		dense, err := solveDense(q, c, g, h, Options{})
		if err != nil {
			t.Fatalf("iter %d dense: %v", iter, err)
		}
		// Both are projections of the target on the same convex set:
		// distances must agree (points may differ only on degenerate
		// faces, distances may not).
		if math.Abs(lazy.Dist(target)-dense.Dist(target)) > 1e-5 {
			t.Fatalf("iter %d: lazy dist %v vs dense dist %v",
				iter, lazy.Dist(target), dense.Dist(target))
		}
		// Feasibility of the lazy solution on every constraint.
		for i := range g {
			if g[i].Dot(lazy) > h[i]+1e-6 {
				t.Fatalf("iter %d: lazy solution violates constraint %d", iter, i)
			}
		}
	}
}

// TestLazyManyRedundant stresses the intended regime: thousands of
// near-parallel constraints of which only a handful bind.
func TestLazyManyRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 4
	m := 3000
	g := make([]vec.Vector, m)
	h := vec.New(m)
	for i := range g {
		// -(w·x) <= -thr, i.e. w·x >= thr with w near (.25,.25,.25,.25).
		w := vec.New(n)
		sum := 0.0
		for j := range w {
			w[j] = 0.25 + 0.01*rng.NormFloat64()
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
		g[i] = w.Scale(-1)
		h[i] = -(0.55 + 0.02*rng.Float64())
	}
	x, err := MinSquaredNorm(n, g, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if g[i].Dot(x) > h[i]+1e-6 {
			t.Fatalf("violated constraint %d", i)
		}
	}
	// The optimum must sit near the deepest threshold plane, not at 0.
	if x.Norm() < 0.2 {
		t.Errorf("suspicious optimum %v", x)
	}
}

// TestLazyInfeasible propagates infeasibility out of the outer loop.
func TestLazyInfeasible(t *testing.T) {
	n := 1
	m := lazyThreshold + 5
	g := make([]vec.Vector, m)
	h := vec.New(m)
	for i := range g {
		if i%2 == 0 {
			g[i] = vec.Of(1) // x <= -1
			h[i] = -1
		} else {
			g[i] = vec.Of(-1) // x >= 2
			h[i] = -2
		}
	}
	if _, err := MinSquaredNorm(n, g, h, Options{}); err == nil {
		t.Error("expected infeasibility")
	}
}
