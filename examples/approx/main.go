// Approx: the sketch tier's approximate fast path, end to end. A
// skewed market — a small elite every preference ranks above a large
// dominated mass — is exactly the shape the per-shard sketches exploit:
// the monitored entries capture the elite, the folded threshold bounds
// the mass, and
//
//   - ApproxRank answers certified, exact and allocation-free when the
//     k-th monitored score provably beats every folded option,
//   - the same call silently falls back to the exact plane when the
//     margin is too thin (here: k beyond the monitored budget), and
//   - ApproxImpact brackets a hypothetical option's rank and certifies
//     as soon as the interval decides top-k membership.
//
// On uniform data nothing certifies — the sketch cannot separate
// anything from the mass — and every call falls back. The closing
// CacheStats dump shows the tier's economy either way.
//
// Run with: go run ./examples/approx
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toprr/internal/topk"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// market builds n options in d dimensions: all but elite of them capped
// at 0.6 per coordinate, the elite drawn from [0.7, 1]^d so every valid
// preference ranks it above the mass.
func market(rng *rand.Rand, n, elite, d int) []vec.Vector {
	pts := make([]vec.Vector, 0, n)
	for i := 0; i < n-elite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64() * 0.6
		}
		pts = append(pts, p)
	}
	for i := 0; i < elite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.7 + rng.Float64()*0.3
		}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func main() {
	rng := rand.New(rand.NewSource(7))
	const (
		n, elite, d = 5000, 24, 4
		k           = 10
	)
	engine := toprr.NewEngine(market(rng, n, elite, d), toprr.WithShards(4))
	w := vec.Of(0.3, 0.25, 0.2) // reduced preference; w4 = 1 - Σ = 0.25

	// Certified: k is well inside the monitored elite, so the sketch
	// bounds pin the k-th score without touching the 5000-option
	// dataset.
	est, err := engine.ApproxRank(w, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ApproxRank k=%d:   [%.6f, %.6f] certified=%v\n",
		k, est.Lo, est.Hi, est.Certified)

	// The exact plane agrees — the certified answer IS the exact score.
	snap := engine.Snapshot()
	ids, err := engine.RankAt(snap, w, k)
	if err != nil {
		log.Fatal(err)
	}
	exact := topk.ScorePoint(w, snap.Scorer.Point(ids[k-1]))
	fmt.Printf("exact Rank k=%d:   %.6f (option %d)\n", k, exact, ids[k-1])

	// Fallback: k=200 exceeds the monitored budget, so the sketch
	// declines and the engine answers exactly — the interval collapses,
	// Certified is false, correctness is unchanged.
	est, err = engine.ApproxRank(w, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ApproxRank k=200: [%.6f, %.6f] certified=%v (exact fallback)\n",
		est.Lo, est.Hi, est.Certified)

	// Impact: an elite-grade placement is certainly top-k, a mass-grade
	// one certainly is not — both certify from the bounds alone.
	for _, p := range []vec.Vector{
		vec.Of(0.95, 0.95, 0.95, 0.95), // contender
		vec.Of(0.30, 0.30, 0.30, 0.30), // also-ran
	} {
		est, err = engine.ApproxImpact(toprr.ImpactQuery{W: w, P: p, K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ApproxImpact %v: rank in [%.0f, %.0f] certified=%v top-%d=%v\n",
			p, est.Lo, est.Hi, est.Certified, k, est.Hi <= float64(k))
	}

	cs := engine.CacheStats()
	fmt.Printf("\nsketch economy: %d monitored, %d folded, %d certified, %d fallbacks\n",
		cs.SketchEntries, cs.SketchFolded, cs.SketchCertified, cs.SketchFallbacks)
}
