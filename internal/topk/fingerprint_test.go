package topk

// Region-fingerprint properties: permutation invariance (the hash must
// not depend on the order constraints stream out of the assembler),
// sub-quantum stability (coefficients that agree within the cache
// plane's identity quantum fingerprint identically), and sensitivity
// (a coefficient nudged past the quantum, a constraint added, dropped,
// or duplicated must move the fingerprint — a collision here would
// suppress a standing-query notification). FuzzRegionFingerprint
// searches for collision-driven suppression on near-identical sets.

import (
	"math"
	"math/rand"
	"testing"

	"toprr/internal/vec"
)

// fpConstraints draws a random constraint set (a, b rows).
func fpConstraints(rng *rand.Rand, n, d int) ([]vec.Vector, []float64) {
	as := make([]vec.Vector, n)
	bs := make([]float64, n)
	for i := range as {
		a := vec.New(d)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		as[i] = a
		bs[i] = rng.NormFloat64()
	}
	return as, bs
}

// fpOf fingerprints the constraint rows in the given order.
func fpOf(as []vec.Vector, bs []float64, order []int) uint64 {
	var h RegionHash
	for _, i := range order {
		h.Add(as[i], bs[i])
	}
	return h.Sum()
}

func TestRegionHashPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 50; trial++ {
		n, d := 1+rng.Intn(12), 2+rng.Intn(4)
		as, bs := fpConstraints(rng, n, d)
		order := rng.Perm(n)
		want := fpOf(as, bs, rng.Perm(n))
		if got := fpOf(as, bs, order); got != want {
			t.Fatalf("trial %d: permuted set fingerprints %#x vs %#x", trial, got, want)
		}
	}
}

func TestRegionHashQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	as, bs := fpConstraints(rng, 6, 3)
	// Snap every coefficient to a quantization-bucket center, so a
	// sub-quantum wiggle provably stays inside its bucket (a random
	// coefficient can sit arbitrarily close to a rounding boundary).
	snap := func(x float64) float64 {
		return math.Round(x/FingerprintQuantum) * FingerprintQuantum
	}
	for i := range as {
		for j := range as[i] {
			as[i][j] = snap(as[i][j])
		}
		bs[i] = snap(bs[i])
	}
	order := make([]int, len(as))
	for i := range order {
		order[i] = i
	}
	base := fpOf(as, bs, order)

	// A sub-quantum wiggle on every coefficient is identity-preserving.
	wiggled := make([]vec.Vector, len(as))
	wb := append([]float64(nil), bs...)
	for i, a := range as {
		w := a.Clone()
		for j := range w {
			w[j] += FingerprintQuantum / 8
		}
		wiggled[i] = w
		wb[i] += FingerprintQuantum / 8
	}
	if got := fpOf(wiggled, wb, order); got != base {
		t.Fatalf("sub-quantum perturbation moved the fingerprint: %#x vs %#x", got, base)
	}

	// One coefficient past the quantum must move it.
	moved := append([]vec.Vector(nil), as...)
	moved[2] = as[2].Clone()
	moved[2][1] += 3 * FingerprintQuantum
	if got := fpOf(moved, bs, order); got == base {
		t.Fatalf("super-quantum perturbation kept the fingerprint %#x", base)
	}
}

func TestRegionHashSetSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	as, bs := fpConstraints(rng, 5, 3)
	full := make([]int, len(as))
	for i := range full {
		full[i] = i
	}
	base := fpOf(as, bs, full)

	if got := fpOf(as, bs, full[:len(full)-1]); got == base {
		t.Fatal("dropping a constraint kept the fingerprint")
	}
	if got := fpOf(as, bs, append(append([]int(nil), full...), 0)); got == base {
		t.Fatal("duplicating a constraint kept the fingerprint (multiset identity violated)")
	}
	var empty RegionHash
	if empty.Sum() == base {
		t.Fatal("empty set collides with a populated one")
	}
	var e2 RegionHash
	if e2.Sum() != empty.Sum() {
		t.Fatal("empty fingerprint is not deterministic")
	}
}

// FuzzRegionFingerprint drives the properties a notification plane
// leans on: permutation invariance, and no collision between a set and
// its single-coefficient super-quantum perturbation (which is exactly
// the "region moved but the fingerprint didn't" suppression hazard).
func FuzzRegionFingerprint(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(1), int64(7))
	f.Add(int64(99), uint8(1), uint8(2), uint8(0), int64(-3))
	f.Fuzz(func(t *testing.T, seed int64, nn, dd, pick uint8, bump int64) {
		n := 1 + int(nn)%16
		d := 2 + int(dd)%5
		rng := rand.New(rand.NewSource(seed))
		as, bs := fpConstraints(rng, n, d)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		base := fpOf(as, bs, order)

		if got := fpOf(as, bs, rng.Perm(n)); got != base {
			t.Fatalf("permutation moved fingerprint: %#x vs %#x", got, base)
		}

		// Nudge one (constraint, coefficient) by a whole number of quanta.
		steps := bump % 1000
		if steps == 0 {
			steps = 1
		}
		i := int(pick) % n
		j := int(pick/16) % (d + 1)
		pa := append([]vec.Vector(nil), as...)
		pb := append([]float64(nil), bs...)
		if j == d {
			pb[i] += float64(steps) * FingerprintQuantum
		} else {
			pa[i] = as[i].Clone()
			pa[i][j] += float64(steps) * FingerprintQuantum
		}
		// Quantization rounds via int64(round(x/quantum)): confirm the nudge
		// actually crossed a bucket before demanding divergence (float64
		// addition can swallow a small absolute step on large coefficients).
		crossed := false
		if j == d {
			crossed = vec.HashFold(0, pb[i], FingerprintQuantum) != vec.HashFold(0, bs[i], FingerprintQuantum)
		} else {
			crossed = pa[i].Hash(FingerprintQuantum) != as[i].Hash(FingerprintQuantum)
		}
		if !crossed {
			return
		}
		if got := fpOf(pa, pb, order); got == base {
			t.Fatalf("perturbed set collides with base: %#x (n=%d d=%d i=%d j=%d steps=%d)", base, n, d, i, j, steps)
		}
	})
}
