package toprr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"toprr/internal/store"
	"toprr/internal/vec"
)

// tenantPts builds a deterministic dataset of n options in [0,1]^3,
// varied by seed so tenants are distinguishable.
func tenantPts(seed int64, n int) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	return pts
}

// tenantQuery is a cheap query valid for any 3-dimensional tenant.
func tenantQuery() Query {
	return Query{K: 2, WR: PrefBox(vec.Of(0.2, 0.2), vec.Of(0.3, 0.3))}
}

// TestRegistryCreateGetDropList drives the basic lifecycle on a
// memory-only registry.
func TestRegistryCreateGetDropList(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, err := r.Create("alpha", tenantPts(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("alpha", tenantPts(1, 20)); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate create = %v, want ErrDatasetExists", err)
	}
	if _, err := r.Create("bad/name", tenantPts(1, 20)); err == nil {
		t.Fatal("create accepted a path-escaping name")
	}
	b, err := r.Create("beta", tenantPts(2, 30))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("tenants share an engine")
	}

	// Mutations are isolated per tenant.
	ctx := context.Background()
	if _, err := a.Apply(ctx, []Op{Insert(vec.Of(0.5, 0.5, 0.5))}); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != 2 || b.Generation() != 1 {
		t.Fatalf("generations = %d/%d, want 2/1", a.Generation(), b.Generation())
	}
	if a.Len() != 21 || b.Len() != 30 {
		t.Fatalf("lens = %d/%d, want 21/30", a.Len(), b.Len())
	}

	got, err := r.Get("alpha")
	if err != nil || got != a {
		t.Fatalf("Get(alpha) = %v, %v", got, err)
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("Get(missing) = %v, want ErrUnknownDataset", err)
	}

	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" || !infos[0].Open {
		t.Fatalf("List = %+v", infos)
	}

	if err := r.Drop("beta"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop("beta"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("double drop = %v, want ErrUnknownDataset", err)
	}
	if got := r.List(); len(got) != 1 {
		t.Fatalf("List after drop = %+v", got)
	}

	// Open = get-or-create.
	if eng, err := r.Open("alpha", nil); err != nil || eng != a {
		t.Fatalf("Open(existing) = %v, %v", eng, err)
	}
	if eng, err := r.Open("gamma", tenantPts(3, 10)); err != nil || eng.Len() != 10 {
		t.Fatalf("Open(new) = %v, %v", eng, err)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("alpha"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("Get after Close = %v, want ErrRegistryClosed", err)
	}
}

// TestRegistryMemoryRejectsTTL: idle eviction without a root would
// destroy tenants, so construction refuses it.
func TestRegistryMemoryRejectsTTL(t *testing.T) {
	if _, err := NewRegistry(WithIdleTTL(time.Minute)); err == nil {
		t.Fatal("memory-only registry accepted an idle TTL")
	}
}

// TestRegistryDiscoveryAndLazyOpen: a durable registry discovers the
// datasets a previous process left under its root and opens each
// lazily, recovering its generation and contents; Drop removes the
// directory.
func TestRegistryDiscoveryAndLazyOpen(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()

	r1, err := NewRegistry(WithRegistryRoot(root))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r1.Create("alpha", tenantPts(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Create("beta", tenantPts(2, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(ctx, []Op{Insert(vec.Of(0.9, 0.9, 0.9)), Delete(0)}); err != nil {
		t.Fatal(err)
	}
	wantPts := a.Scorer().Points()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same root knows both datasets without
	// opening them.
	r2, err := NewRegistry(WithRegistryRoot(root))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	infos := r2.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("discovered = %+v", infos)
	}
	for _, info := range infos {
		if info.Open {
			t.Fatalf("dataset %s open before first request", info.Name)
		}
	}

	// First request lazily recovers the dataset.
	a2, err := r2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Generation() != 2 || a2.Len() != len(wantPts) {
		t.Fatalf("recovered generation %d with %d options, want 2 with %d", a2.Generation(), a2.Len(), len(wantPts))
	}
	got := a2.Scorer().Points()
	for i := range wantPts {
		if !got[i].Equal(wantPts[i], 0) {
			t.Fatalf("slot %d = %v, want %v", i, got[i], wantPts[i])
		}
	}

	if err := r2.Drop("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "beta")); !os.IsNotExist(err) {
		t.Fatalf("dropped dataset dir survives: %v", err)
	}
	// The name is free again.
	if _, err := r2.Create("beta", tenantPts(4, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryIdleEviction: an engine untouched past the TTL is closed
// (List reports it evicted), and the next request transparently reopens
// it from disk with its mutations intact.
func TestRegistryIdleEviction(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(WithRegistryRoot(root), WithIdleTTL(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, err := r.Create("alpha", tenantPts(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(context.Background(), []Op{Insert(vec.Of(0.5, 0.6, 0.7))}); err != nil {
		t.Fatal(err)
	}

	// The janitor (or an explicit sweep) evicts once the TTL passes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.EvictIdle()
		if infos := r.List(); len(infos) == 1 && !infos[0].Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset never evicted: %+v", r.List())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Closed engine: reads still serve, writes refuse.
	if _, err := a.Apply(context.Background(), []Op{Insert(vec.Of(0.1, 0.2, 0.3))}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply on evicted engine = %v, want ErrClosed", err)
	}

	// Reopen on demand: same data, and a fresh engine instance.
	a2, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a2 == a {
		t.Fatal("eviction did not replace the engine instance")
	}
	if a2.Generation() != 2 || a2.Len() != 21 {
		t.Fatalf("reopened at generation %d with %d options, want 2 with 21", a2.Generation(), a2.Len())
	}
	if _, err := a2.Apply(context.Background(), []Op{Insert(vec.Of(0.1, 0.2, 0.3))}); err != nil {
		t.Fatalf("Apply after reopen: %v", err)
	}

	// An Acquire hold pins the tenant against eviction.
	eng, release, err := r.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := r.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d engines under an Acquire hold", n)
	}
	if _, err := eng.Apply(context.Background(), []Op{Insert(vec.Of(0.4, 0.4, 0.4))}); err != nil {
		t.Fatalf("Apply under hold: %v", err)
	}
	release()
	release() // idempotent
}

// TestRegistryCacheBudget: the process-wide cache budget re-apportions
// across resident engines as tenants come and go, and the sum of the
// shares never exceeds the budget.
func TestRegistryCacheBudget(t *testing.T) {
	const budget, entries = 120, 1000
	root := t.TempDir()
	r, err := NewRegistry(
		WithRegistryRoot(root),
		WithIdleTTL(10*time.Millisecond),
		WithCacheBudget(budget, entries))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	checkShares := func(wantOpen, wantShare int) {
		t.Helper()
		open, sum := 0, 0
		for _, ds := range r.Stats() {
			if !ds.Open {
				continue
			}
			open++
			sum += ds.MaxConfigs
			if ds.MaxConfigs != wantShare {
				t.Errorf("%s share = %d, want %d", ds.Name, ds.MaxConfigs, wantShare)
			}
		}
		if open != wantOpen {
			t.Errorf("open tenants = %d, want %d", open, wantOpen)
		}
		if sum > budget {
			t.Errorf("shares sum to %d, over budget %d", sum, budget)
		}
	}

	a, err := r.Create("a", tenantPts(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	checkShares(1, budget)
	if _, entriesGot := a.CacheLimits(); entriesGot != entries {
		t.Fatalf("entry cap = %d, want %d", entriesGot, entries)
	}

	if _, err := r.Create("b", tenantPts(2, 10)); err != nil {
		t.Fatal(err)
	}
	checkShares(2, budget/2)
	if _, err := r.Create("c", tenantPts(3, 10)); err != nil {
		t.Fatal(err)
	}
	checkShares(3, budget/3)

	if err := r.Drop("c"); err != nil {
		t.Fatal(err)
	}
	checkShares(2, budget/2)

	// Evict everything; reopening one tenant grants it the whole budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.EvictIdle()
		open := 0
		for _, ds := range r.Stats() {
			if ds.Open {
				open++
			}
		}
		if open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenants never evicted: %+v", r.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	checkShares(1, budget)
}

// TestRegistryConcurrent hammers one durable registry from many
// goroutines — solves, mutations, Acquire holds, creates, drops and
// idle eviction all interleaved — under -race. Engines held via Acquire
// must never refuse an Apply: eviction skips pinned tenants.
func TestRegistryConcurrent(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(
		WithRegistryRoot(root),
		WithIdleTTL(5*time.Millisecond),
		WithCacheBudget(64, 1<<12))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	names := []string{"a", "b", "c"}
	for i, name := range names {
		if _, err := r.Create(name, tenantPts(int64(i+1), 25)); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 30
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Per-dataset traffic: acquire, solve, mutate, release, repeat.
	for w := 0; w < len(names)*2; w++ {
		name := names[w%len(names)]
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				eng, release, err := r.Acquire(name)
				if err != nil {
					fail(fmt.Errorf("acquire %s: %w", name, err))
					return
				}
				if _, err := eng.Solve(ctx, tenantQuery()); err != nil {
					fail(fmt.Errorf("solve %s: %w", name, err))
				}
				if _, err := eng.Apply(ctx, []Op{Insert(vec.Of(rng.Float64(), rng.Float64(), rng.Float64()))}); err != nil {
					fail(fmt.Errorf("apply %s: %w", name, err))
				}
				release()
				if i%7 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(int64(w + 100))
	}

	// Churn: transient datasets created and dropped.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			name := fmt.Sprintf("tmp-%d", i%3)
			if _, err := r.Open(name, tenantPts(int64(i+50), 8)); err != nil {
				fail(fmt.Errorf("open %s: %w", name, err))
				continue
			}
			if err := r.Drop(name); err != nil && !errors.Is(err, ErrUnknownDataset) {
				fail(fmt.Errorf("drop %s: %w", name, err))
			}
		}
	}()

	// Evictor: sweeps constantly while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			r.EvictIdle()
			r.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every long-lived dataset took all its mutations: 25 bootstrap
	// options + 2 writers x iters inserts each.
	for _, name := range names {
		eng, err := r.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if want := 25 + 2*iters; eng.Len() != want {
			t.Errorf("%s has %d options, want %d", name, eng.Len(), want)
		}
	}

	// The shares still respect the budget after all the churn.
	sum := 0
	for _, ds := range r.Stats() {
		if ds.Open {
			sum += ds.MaxConfigs
		}
	}
	if sum > 64 {
		t.Errorf("post-churn shares sum to %d, over budget 64", sum)
	}
}

// TestRegistryStateVisibleToStore: the registry's on-disk layout is
// exactly the store-level contract — one subdirectory per dataset, each
// independently discoverable.
func TestRegistryStateVisibleToStore(t *testing.T) {
	root := t.TempDir()
	r, err := NewRegistry(WithRegistryRoot(root))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, name := range []string{"x", "y"} {
		if _, err := r.Create(name, tenantPts(int64(i+1), 5)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := store.DiscoverDatasets(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("DiscoverDatasets = %v", names)
	}
}
