package toprr

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"toprr/internal/core"
	"toprr/internal/geom"
	"toprr/internal/sketch"
	"toprr/internal/store"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Engine serves TopRR queries over a mutable, versioned dataset. Unlike
// the package-level Solve, an Engine keeps reusable per-dataset state
// and shares it across queries:
//
//   - the versioned store (generation-numbered copy-on-write snapshots
//     of the option set),
//   - interned splitting hyperplanes wHP(p_i, p_j), which depend only
//     on the option pair, and
//   - memoized top-k results keyed by (k, candidate-set) configuration,
//     so queries over nearby regions reuse each other's scoring work.
//
// Reads and writes are snapshot-isolated: Solve and SolveBatch pin the
// dataset generation current when they start (or the one given to
// SolveAt/SolveBatchAt) and never observe a concurrent Apply; the shared
// caches follow the store generation by generation with incremental
// invalidation, so a mutation drops only the entries whose options
// actually changed. An Engine is safe for concurrent use; any mix of
// Solve, SolveBatch and Apply calls may run from many goroutines at
// once.
type Engine struct {
	store        *store.Store
	defaults     Options
	batchWorkers int
	shards       int                 // shard count of the solve plane (>= 1 after OpenEngine)
	persist      store.PersistConfig // zero Dir = in-memory engine
	hyperplanes  *core.HyperplaneCache
	caches       *topk.Registry

	// Coordinator mode (fabric.go): the worker routing table and the
	// hedging remote plane threaded into the sharded caches. Both nil
	// without WithRemoteShards.
	remoteCfg   *RemoteShards
	fabric      *fabricRouter
	remotePlane *topk.RemotePlane

	// Sketch tier (approx.go): per-shard filtered-space-saving sketches
	// maintained on the mutation stream; gates the exact prefilter and
	// serves the approximate fast path. The counters feed CacheStats.
	sketches        *sketch.Plane
	sketchCertified atomic.Int64 // ApproxRank/ApproxImpact answered by sketch bounds alone
	sketchFallbacks atomic.Int64 // approximate queries that fell back to the exact plane

	// Cache advances must follow the store's generation order even
	// though concurrent Apply calls group-commit and return in fsync
	// order; advanced tracks the last generation whose delta reached the
	// caches and advanceCond parks out-of-order advancers.
	advanceMu   sync.Mutex
	advanceCond *sync.Cond
	advanced    Generation

	limitsMu   sync.Mutex // guards the cache-limit pair below
	maxConfigs int
	maxEntries int

	// Standing-query plane (watch.go): the notification hub fed one
	// signal per published generation, and the subscription cap.
	watch    *watchHub
	watchCap int
}

// EngineOption configures a new Engine.
type EngineOption func(*Engine)

// WithDefaults sets the Options applied to queries that do not carry
// their own.
func WithDefaults(o Options) EngineOption {
	return func(e *Engine) { e.defaults = o }
}

// WithPersistence makes the engine durable: every Apply batch is
// write-ahead-logged (fsynced by default) under dir before its
// generation publishes, and OpenEngine recovers the dataset from dir —
// base snapshot plus WAL replay — when it holds state from an earlier
// run. Compaction keeps replay bounded with the default thresholds; use
// WithPersistenceConfig to tune them. docs/PERSISTENCE.md specifies the
// recovery contract. Durable engines should be Closed; prefer
// OpenEngine over NewEngine so I/O failures surface as errors.
func WithPersistence(dir string) EngineOption {
	return func(e *Engine) { e.persist.Dir = dir }
}

// WithPersistenceConfig is WithPersistence with explicit WAL sync mode,
// compaction thresholds and segment size (zero fields keep the
// defaults).
func WithPersistenceConfig(cfg PersistConfig) EngineOption {
	return func(e *Engine) { e.persist = cfg }
}

// WithBatchWorkers bounds the number of queries SolveBatch runs
// concurrently (default: GOMAXPROCS).
func WithBatchWorkers(n int) EngineOption {
	return func(e *Engine) { e.batchWorkers = n }
}

// WithShards partitions the engine's solve plane into n shards: the
// option set splits into n stable subsets (hashed by option contents,
// so assignments survive swap-delete relocation), each with its own
// top-k memo — the hyperplane cache likewise stripes its lock and
// budget n ways, by option pair — and solves fan their work out
// over the shards — per-vertex evaluations merge exact per-shard
// partial results, queries default to n parallel workers on the channel
// scheduler, and the assemble stage intersects per-shard constraint
// chunks. Sharded and unsharded solves produce identical regions;
// sharding buys parallelism without cache-lock contention, per-shard
// incremental invalidation under mutations, and per-shard cache
// budgets.
//
// n = 0 (the default) derives the count from GOMAXPROCS (capped at 8);
// n = 1 disables sharding. A durable engine persists the count in its
// snapshot metadata, and a reopened dataset keeps its recorded layout —
// WithShards then only seeds fresh (or pre-shard) directories.
func WithShards(n int) EngineOption {
	return func(e *Engine) { e.shards = n }
}

// DefaultShards reports the shard count an engine built without
// WithShards (or with WithShards(0)) uses on this machine. Exposed so
// tooling that records benchmark environments (cmd/benchrunner) can
// stamp the effective shard count without constructing an engine.
func DefaultShards() int { return defaultShards() }

// defaultShards derives the GOMAXPROCS-based shard count used when
// WithShards is absent or zero.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// WithCacheLimits bounds the engine's shared top-k caches: maxConfigs
// caps the interned (k, candidate-set) configurations and
// maxEntriesPerConfig caps the memoized vertices of each. Zero keeps the
// built-in default for that limit. Past a limit the engine keeps
// serving — overflow work is computed without being retained — and the
// overflow shows up in CacheStats.Evictions.
func WithCacheLimits(maxConfigs, maxEntriesPerConfig int) EngineOption {
	return func(e *Engine) {
		e.maxConfigs = maxConfigs
		e.maxEntries = maxEntriesPerConfig
	}
}

// WithWatchCap bounds the engine's standing subscriptions
// (Engine.Watch): past the cap, Watch fails with
// ErrTooManySubscriptions until an active subscription closes. Zero
// keeps DefaultWatchCap; negative is rejected by OpenEngine.
func WithWatchCap(n int) EngineOption {
	return func(e *Engine) { e.watchCap = n }
}

// NewEngine builds an engine over an initial dataset of options in
// [0,1]^d, published as generation 1. It panics on an invalid dataset
// (empty, inconsistent dimensions, or components outside [0,1]), like
// NewProblem — and on any I/O error when a persistence option is set,
// so durable engines should prefer OpenEngine.
func NewEngine(pts []vec.Vector, opts ...EngineOption) *Engine {
	e, err := OpenEngine(pts, opts...)
	if err != nil {
		panic("toprr: " + err.Error())
	}
	return e
}

// OpenEngine is NewEngine returning errors instead of panicking. With a
// persistence option set it opens the data directory first: when the
// directory holds state from an earlier run, the dataset — generation
// number, options, op log — is recovered from it and pts serves only as
// the bootstrap for an empty directory (it may then be nil).
func OpenEngine(pts []vec.Vector, opts ...EngineOption) (*Engine, error) {
	e := &Engine{defaults: Options{Alg: TASStar}}
	for _, o := range opts {
		o(e)
	}
	if e.shards < 0 || e.shards > topk.MaxShards {
		return nil, fmt.Errorf("toprr: shard count %d out of range [0, %d]", e.shards, topk.MaxShards)
	}
	if e.watchCap < 0 {
		return nil, fmt.Errorf("toprr: watch cap %d, want >= 0", e.watchCap)
	}
	if e.watchCap == 0 {
		e.watchCap = DefaultWatchCap
	}
	if e.shards == 0 {
		e.shards = defaultShards()
	}
	var (
		st  *store.Store
		err error
	)
	if e.persist.Dir != "" {
		e.persist.Shards = e.shards
		st, err = store.Open(e.persist, pts)
	} else {
		st, err = store.NewSharded(pts, e.shards)
	}
	if err != nil {
		return nil, err
	}
	e.store = st
	// A reopened dataset keeps the shard layout its snapshot records;
	// the engine's configuration only seeds fresh directories.
	if n := st.Shards(); n > 0 {
		e.shards = n
	}
	snap := st.Snapshot()
	e.hyperplanes = core.NewShardedHyperplaneCache(snap.Scorer, e.shards)
	e.caches = topk.NewShardedRegistry(snap.Scorer, e.shards)
	// The sketch tier is rebuilt from the snapshot on every open — an
	// evicted and reopened tenant re-derives its per-shard sketches here
	// rather than persisting them.
	e.sketches = sketch.NewPlane(snap.Scorer, e.shards, 0)
	e.caches.SetLimits(e.maxConfigs, e.maxEntries)
	if e.remoteCfg != nil && len(e.remoteCfg.Workers) > 0 {
		// After the persisted shard layout is known — the assignment
		// validates against the count that actually applies.
		fr, ferr := newFabricRouter(e, *e.remoteCfg)
		if ferr != nil {
			st.Close()
			return nil, ferr
		}
		e.fabric = fr
		e.remotePlane = topk.NewRemotePlane(fr, e.remoteCfg.Hedge, e.shards)
		e.caches.SetRemote(e.remotePlane)
	}
	e.advanceCond = sync.NewCond(&e.advanceMu)
	e.advanced = snap.Gen
	e.watch = newWatchHub(e)
	return e, nil
}

// Shards reports the engine's shard count (1 = unsharded).
func (e *Engine) Shards() int { return e.shards }

// SetCacheLimits adjusts the cache limits of a live engine, with the
// same semantics as WithCacheLimits (zero keeps the current value for
// that limit). A Registry uses it to re-apportion a process-wide cache
// budget as tenants come and go. Lowering a limit is a soft bound: it
// applies to configurations interned from now on; already-interned
// caches drain through generation advances rather than being evicted
// mid-solve.
func (e *Engine) SetCacheLimits(maxConfigs, maxEntriesPerConfig int) {
	e.limitsMu.Lock()
	defer e.limitsMu.Unlock()
	if maxConfigs > 0 {
		e.maxConfigs = maxConfigs
	}
	if maxEntriesPerConfig > 0 {
		e.maxEntries = maxEntriesPerConfig
	}
	// Inside the critical section, so concurrent calls apply the caps in
	// the same order they update the reported fields — CacheLimits never
	// disagrees with what the registry enforces.
	e.caches.SetLimits(maxConfigs, maxEntriesPerConfig)
}

// CacheLimits reports the engine's configured cache limits (zero means
// the built-in default for that limit is in effect).
func (e *Engine) CacheLimits() (maxConfigs, maxEntriesPerConfig int) {
	e.limitsMu.Lock()
	defer e.limitsMu.Unlock()
	return e.maxConfigs, e.maxEntries
}

// Close releases the engine's durable resources: in-flight Apply calls
// drain, then the WAL is synced and closed, after which Apply fails and
// reads keep serving the in-memory state. Closing is idempotent, and a
// no-op beyond blocking writes for in-memory engines. A crash without
// Close loses nothing an Apply acknowledged under the default sync
// mode; Close exists so a clean shutdown releases file handles
// deterministically.
func (e *Engine) Close() error {
	// Stop the notification hub first: subscriptions close their Updates
	// channels (SSE handlers and other consumers drain out) before the
	// store refuses writes.
	e.watch.stop()
	if e.fabric != nil {
		// Close, not drain: callers that want in-flight remote fetches to
		// finish call DrainFabric first (cmd/toprrd does, through its
		// shutdown hook). Abandoned fetches fall back locally, so a hard
		// close never costs an answer.
		e.fabric.close()
	}
	return e.store.Close()
}

// Snapshot pins the current dataset generation: the returned view stays
// valid — and identical — no matter how many Apply calls land after it.
// Hand it to SolveAt/SolveBatchAt to answer several queries against one
// consistent generation.
func (e *Engine) Snapshot() Snapshot { return e.store.Snapshot() }

// Generation returns the current dataset generation.
func (e *Engine) Generation() Generation { return e.store.Generation() }

// Len returns the current number of options.
func (e *Engine) Len() int { return e.store.Len() }

// Dim returns the option-space dimensionality d.
func (e *Engine) Dim() int { return e.store.Dim() }

// Scorer exposes the current generation's dataset wrapper (for oracles
// and rank probes). Prefer Snapshot when the scorer must stay consistent
// with a solve.
func (e *Engine) Scorer() *topk.Scorer { return e.store.Snapshot().Scorer }

// Log returns the retained applied-ops with sequence number > since
// (since=0 returns everything retained).
func (e *Engine) Log(since uint64) []AppliedOp { return e.store.Log(since) }

// Apply mutates the dataset: the batch applies atomically and publishes
// one new generation, whose number is returned. In-flight solves are
// unaffected — they keep their pinned snapshot — and the engine's shared
// caches advance incrementally. The store classifies each batch
// (store.Delta.Kind) and the engine picks the repair strategy per
// delta: a pure-insert batch takes the patch path — interned
// hyperplanes all survive (no existing pair changed), and memoized
// top-k entries are patched by scoring only the inserted options at
// each memoized vertex — while a batch that deletes or updates option p
// drops only the hyperplanes and, on a sharded engine, only the
// per-shard top-k state of the shards owning p — not the warm state of
// the rest of the dataset. On error the dataset and the returned
// generation are unchanged.
//
// Concurrent Apply calls overlap: on a durable engine their WAL fsyncs
// group-commit behind one shared flush instead of serializing on the
// disk, and the cache advances then apply strictly in generation order.
// Reads never block writes.
func (e *Engine) Apply(ctx context.Context, ops []Op) (Generation, error) {
	if err := ctx.Err(); err != nil {
		return e.store.Generation(), err
	}
	snap, delta, err := e.store.Apply(ops)
	if err != nil {
		return e.store.Generation(), err
	}
	if delta.To != delta.From {
		// The store publishes generations in order, but concurrent Apply
		// callers can reach this point out of order; the gate replays
		// the deltas onto the caches in the order they were published.
		e.advanceMu.Lock()
		for e.advanced != delta.From {
			e.advanceCond.Wait()
		}
		suppress := false
		if delta.Kind == store.DeltaInsertOnly {
			e.hyperplanes.AdvanceInsert(snap.Scorer)
			sum := e.caches.AdvanceInsert(snap.Scorer, delta.Inserted)
			// The conservative region-delta signal: only a summary that
			// patched nothing, dropped nothing and honored the pure-insert
			// contract proves every standing region survived the batch.
			suppress = !sum.MaybeChanged()
			e.sketches.AdvanceInsert(snap.Scorer, delta.Inserted)
		} else {
			e.hyperplanes.Advance(snap.Scorer, delta.Dirty)
			e.caches.Advance(snap.Scorer, delta.Dirty)
			e.sketches.Advance(snap.Scorer, delta.ShardsTouched)
		}
		// Inside the gate, so the hub sees signals in publication order;
		// observe only flips flags (never solves), keeping the write path
		// free of notification work.
		e.watch.observe(suppress)
		e.advanced = delta.To
		e.advanceCond.Broadcast()
		e.advanceMu.Unlock()
		if e.fabric != nil {
			// Follow the mutation stream: push the new generation to each
			// worker in the background, so the next solves route remotely
			// instead of discovering staleness one refusal at a time. The
			// per-worker busy flag bounds this to one in-flight push.
			for _, fw := range e.fabric.workers {
				e.fabric.resync(fw, false)
			}
		}
	}
	return snap.Gen, nil
}

// Query is one TopRR request against an engine's dataset.
type Query struct {
	K       int            // rank threshold
	WR      *geom.Polytope // convex preference region
	Options *Options       // nil = the engine's defaults
}

// problem validates a query and binds it to one pinned dataset
// generation without re-wrapping the points.
func (e *Engine) problem(snap Snapshot, q Query) (Problem, error) {
	if snap.Scorer == nil {
		return Problem{}, fmt.Errorf("toprr: zero snapshot (use Engine.Snapshot)")
	}
	if q.WR == nil {
		return Problem{}, fmt.Errorf("toprr: query has no preference region")
	}
	if q.WR.Dim != snap.Scorer.PrefDim() {
		return Problem{}, fmt.Errorf("toprr: wR dimension %d, want %d", q.WR.Dim, snap.Scorer.PrefDim())
	}
	if q.K <= 0 || q.K > snap.Scorer.Len() {
		return Problem{}, fmt.Errorf("toprr: k=%d out of range for %d options", q.K, snap.Scorer.Len())
	}
	return Problem{Scorer: snap.Scorer, K: q.K, WR: q.WR}, nil
}

// options resolves a query's options and injects the engine's shared
// caches (which themselves verify the solve's pinned generation on
// every access) and the sharded solve plane: solves on a sharded engine
// run with the engine's shard count, fan out over the channel scheduler
// with one worker per shard unless the query pins its own worker count,
// and assemble through the per-shard constraint-intersection merge
// stage unless the query names its own assembler.
func (e *Engine) options(q Query) Options {
	opt := e.defaults
	if q.Options != nil {
		opt = *q.Options
	}
	opt.Hyperplanes = e.hyperplanes
	opt.TopKCaches = e.caches
	opt.Shards = e.shards
	if !opt.DisableSketchGate {
		opt.SketchGate = e.sketches.Gate
	}
	if e.shards > 1 {
		if opt.Workers == 0 {
			// One worker per shard, capped at the CPUs actually
			// available: extra workers on an oversubscribed box only buy
			// scheduling overhead, while extra shards still buy finer
			// invalidation and budget slicing.
			opt.Workers = e.shards
			if procs := runtime.GOMAXPROCS(0); opt.Workers > procs {
				opt.Workers = procs
			}
		}
		if opt.Assembler == nil {
			opt.Assembler = core.ParallelClipAssembler{Shards: e.shards}
		}
	}
	return opt
}

// Solve answers one query against the generation current when the call
// starts, honoring cancellation and deadlines on ctx.
func (e *Engine) Solve(ctx context.Context, q Query) (*Result, error) {
	return e.SolveAt(ctx, e.store.Snapshot(), q)
}

// SolveAt answers one query against a pinned snapshot, so a caller can
// run several queries — or interleave queries with its own bookkeeping —
// against one consistent dataset generation while writers proceed.
func (e *Engine) SolveAt(ctx context.Context, snap Snapshot, q Query) (*Result, error) {
	p, err := e.problem(snap, q)
	if err != nil {
		return nil, err
	}
	return core.SolveContext(ctx, p, e.options(q))
}

// Rank returns the top-k option indices — best first, ties broken by
// lower index — at reduced preference vector w (d-1 components; the
// last weight is implicitly 1 - sum) over the full current dataset. The
// ranking is memoized in the engine's shared cache plane under the
// whole-dataset configuration, so repeated rankings at the same
// preference are served without rescoring, and a pure-insert Apply
// repairs the memo by scoring only the inserted options
// (CacheStats.PatchedEntries) instead of dropping it.
func (e *Engine) Rank(w vec.Vector, k int) ([]int, error) {
	return e.RankAt(e.store.Snapshot(), w, k)
}

// RankAt is Rank against a pinned snapshot. Rankings at the current
// generation share the engine's memo; a pinned older generation scores
// directly against its own snapshot.
func (e *Engine) RankAt(snap Snapshot, w vec.Vector, k int) ([]int, error) {
	if err := validatePref(snap, w, k); err != nil {
		return nil, err
	}
	var res *topk.Result
	if c := e.caches.GetFor(snap.Scorer, k, nil); c != nil {
		res, _ = c.Lookup(w)
	} else {
		// The snapshot is pinned behind the registry's generation: score
		// against the snapshot itself, without publishing into the memo.
		res = snap.Scorer.TopK(w, k, nil)
	}
	return append([]int(nil), res.Ordered...), nil
}

// SolveBatch answers a batch of queries concurrently (bounded by the
// engine's batch-worker count), amortizing the shared per-dataset
// caches across them. The whole batch is answered against the single
// generation current when the call starts. Results align with qs. On
// the first error the remaining queries are cancelled; the partial
// results computed so far are returned alongside the error (failed or
// cancelled slots are nil).
func (e *Engine) SolveBatch(ctx context.Context, qs []Query) ([]*Result, error) {
	return e.SolveBatchAt(ctx, e.store.Snapshot(), qs)
}

// SolveBatchAt is SolveBatch against a pinned snapshot.
func (e *Engine) SolveBatchAt(ctx context.Context, snap Snapshot, qs []Query) ([]*Result, error) {
	results := make([]*Result, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := e.SolveAt(ctx, snap, qs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel() // fail fast: stop dispatch and running solves
					continue
				}
				results[i] = res
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return results, fmt.Errorf("toprr: batch query %d: %w", firstIdx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// CacheStats reports the engine's cross-query cache occupancy: interned
// split hyperplanes, interned top-k cache configurations, the cumulative
// top-k hit/miss totals across them, and the entries evicted so far
// (dropped by generation advances or refused at a configured cap). The
// snapshot is taken at the current generation.
//
// LiveGenerations and RetainedSnapshotBytes observe the store's
// copy-on-write snapshots: how many generations are still reachable
// (the current one plus any pinned by in-flight or leaked snapshots)
// and an upper bound on the bytes they retain. A live count that grows
// without bound while mutations flow marks a leaked pin; the counters
// move when the garbage collector reclaims a generation, so they trail
// drops by one GC cycle.
type CacheStats struct {
	Generation  Generation
	Hyperplanes int
	TopKConfigs int
	// Patch-on-insert counters (cumulative): PatchedEntries is memoized
	// top-k entries repaired by splicing an inserted option in,
	// PatchInserts the options applied through the patch path, and
	// UntouchedAdvances the insert batches in which no memoized top-k
	// changed — the region-delta signal that every standing result
	// region survived the batch unchanged.
	PatchedEntries    int
	PatchInserts      int
	UntouchedAdvances int

	TopKHits              int
	TopKMisses            int
	Evictions             int
	LiveGenerations       int
	RetainedSnapshotBytes int64

	// Sketch-tier counters. Occupancy (entries monitored across shards
	// and members folded into threshold bounds) is a snapshot; the rest
	// are cumulative: prefilter gate certifications and declines, options
	// the certificates excused from exact dominance tests, approximate
	// queries answered by sketch bounds alone, and those that fell back
	// to the exact plane.
	SketchEntries        int
	SketchFolded         int
	SketchGateHits       int
	SketchGateMisses     int
	SketchCertifiedSkips int
	SketchCertified      int
	SketchFallbacks      int

	// Fabric counters (cumulative, zero without coordinator mode):
	// partials served by remote workers, remote fetches abandoned to a
	// hedged local dispatch, remote attempts answered locally after an
	// error or refusal, and the bytes moved on the wire in both
	// directions (framing included).
	RemotePartials   int64
	HedgedDispatches int64
	Fallbacks        int64
	RemoteBytes      int64

	Shards int // the engine's shard count (1 = unsharded)
	// ShardStats breaks the shared caches down per shard — memoized
	// partials, hit/miss totals, and the hyperplane stripe occupancy —
	// on sharded engines (nil otherwise).
	ShardStats []ShardCacheStats
}

// ShardCacheStats is one shard's slice of an engine's shared caches.
type ShardCacheStats = topk.ShardCacheStats

// CacheStats snapshots the engine's shared-cache occupancy and snapshot
// GC counters.
func (e *Engine) CacheStats() CacheStats {
	hits, misses := e.caches.Stats()
	live, retained := e.store.GCStats()
	patched, pins, untouched := e.caches.PatchStats()
	cs := CacheStats{
		Generation:            e.store.Generation(),
		Hyperplanes:           e.hyperplanes.Len(),
		TopKConfigs:           e.caches.Len(),
		PatchedEntries:        patched,
		PatchInserts:          pins,
		UntouchedAdvances:     untouched,
		TopKHits:              hits,
		TopKMisses:            misses,
		Evictions:             e.hyperplanes.Evictions() + e.caches.Evictions(),
		LiveGenerations:       live,
		RetainedSnapshotBytes: retained,
		Shards:                e.shards,
		ShardStats:            e.caches.ShardStats(),
	}
	sk := e.sketches.Stats()
	cs.SketchEntries = sk.Entries
	cs.SketchFolded = sk.Folded
	cs.SketchGateHits = sk.GateHits
	cs.SketchGateMisses = sk.GateMisses
	cs.SketchCertifiedSkips = sk.CertifiedSkips
	cs.SketchCertified = int(e.sketchCertified.Load())
	cs.SketchFallbacks = int(e.sketchFallbacks.Load())
	if e.remotePlane != nil {
		fs := e.FabricStats()
		cs.RemotePartials = fs.RemotePartials
		cs.HedgedDispatches = fs.HedgedDispatches
		cs.Fallbacks = fs.Fallbacks
		cs.RemoteBytes = fs.BytesOut + fs.BytesIn
	}
	if cs.ShardStats != nil {
		for i, n := range e.hyperplanes.StripeLens() {
			if i < len(cs.ShardStats) {
				cs.ShardStats[i].Hyperplanes = n
			}
		}
	}
	return cs
}

// PersistStats snapshots the engine's durable layer: WAL size and
// segment count (the replay cost bound for the next boot) and the
// generation of the newest base snapshot. All-zero for in-memory
// engines.
func (e *Engine) PersistStats() PersistStats { return e.store.PersistStats() }
