package toprr_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"toprr/internal/fabric"
	"toprr/pkg/toprr"
)

// startWorker boots an in-process fabric worker on a loopback port and
// returns its address plus an idempotent kill function. The backend is
// the same EngineBackend cmd/toprr-worker serves, so the tests exercise
// the real wire path end to end.
func startWorker(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := fabric.NewServer(fabric.NewEngineBackend(fabric.BackendConfig{}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln) //nolint:errcheck
	}()
	var once sync.Once
	kill := func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}
	t.Cleanup(kill)
	return ln.Addr().String(), kill
}

// fleetFor spreads all shard indices round-robin over the worker
// addresses, so every worker owns a slice of each solve.
func fleetFor(addrs []string, shards int) map[string][]int {
	m := make(map[string][]int, len(addrs))
	for s := 0; s < shards; s++ {
		a := addrs[s%len(addrs)]
		m[a] = append(m[a], s)
	}
	return m
}

// TestFabricEngineMatchesOracle is the distributed-solve property
// suite: for S in {1, 2, 4, 8} and worker fleets of 0, 1 and 2
// processes, a coordinator engine must produce exactly the unsharded
// oracle's regions — fresh and across interleaved mutation batches —
// because remote partials are the same computation at the same
// generation, and every remote failure falls back to that computation
// locally.
func TestFabricEngineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for _, nw := range []int{0, 1, 2} {
		addrs := make([]string, 0, nw)
		for i := 0; i < nw; i++ {
			addr, _ := startWorker(t)
			addrs = append(addrs, addr)
		}
		d := 3
		pts := randomMarket(rng, 90+rng.Intn(60), d)
		oracle := toprr.NewEngine(pts, toprr.WithShards(1))

		engines := make(map[int]*toprr.Engine)
		for _, s := range []int{1, 2, 4, 8} {
			opts := []toprr.EngineOption{toprr.WithShards(s)}
			if nw > 0 {
				opts = append(opts, toprr.WithRemoteShards(toprr.RemoteShards{
					Workers: fleetFor(addrs, s),
					// One worker process serves every engine; the
					// handshake dataset keeps their states apart.
					Dataset: fmt.Sprintf("w%d-s%d", nw, s),
				}))
			}
			eng, err := toprr.OpenEngine(pts, opts...)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", nw, s, err)
			}
			t.Cleanup(func() { eng.Close() })
			engines[s] = eng
		}

		syncAll := func() {
			for s, eng := range engines {
				if err := eng.SyncRemote(ctx); err != nil {
					t.Fatalf("workers=%d shards=%d: sync: %v", nw, s, err)
				}
			}
		}
		syncAll()

		check := func(stage string) {
			for q := 0; q < 3; q++ {
				query := randomQuery(rng, d, 1+rng.Intn(5))
				query.Options = oracleOptions()
				want, err := oracle.Solve(ctx, query)
				if err != nil {
					t.Fatalf("workers=%d %s: oracle: %v", nw, stage, err)
				}
				for s, eng := range engines {
					got, err := eng.Solve(ctx, query)
					if err != nil {
						t.Fatalf("workers=%d shards=%d %s: %v", nw, s, stage, err)
					}
					if len(got.Vall) != len(want.Vall) {
						t.Fatalf("workers=%d shards=%d %s: |Vall| %d != %d", nw, s, stage, len(got.Vall), len(want.Vall))
					}
					if len(got.ORConstraints) != len(want.ORConstraints) {
						t.Fatalf("workers=%d shards=%d %s: constraints %d != %d", nw, s, stage, len(got.ORConstraints), len(want.ORConstraints))
					}
					sameRegion(t, fmt.Sprintf("workers=%d shards=%d %s", nw, s, stage), rng, d, got, want)
				}
			}
		}
		check("fresh")

		// Interleaved mutations: every engine applies the same batches;
		// the coordinator re-pins its workers and the distributed
		// answers must track the oracle generation for generation.
		for step := 0; step < 2; step++ {
			var ops []toprr.Op
			for o := 0; o < 1+rng.Intn(3); o++ {
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, toprr.Insert(randomPoint(rng, d)))
				case 1:
					ops = append(ops, toprr.Update(rng.Intn(oracle.Len()), randomPoint(rng, d)))
				default:
					if oracle.Len() > 40 {
						ops = append(ops, toprr.Delete(rng.Intn(oracle.Len())))
					} else {
						ops = append(ops, toprr.Insert(randomPoint(rng, d)))
					}
				}
			}
			if _, err := oracle.Apply(ctx, ops); err != nil {
				t.Fatal(err)
			}
			for s, eng := range engines {
				if _, err := eng.Apply(ctx, ops); err != nil {
					t.Fatalf("workers=%d shards=%d: %v", nw, s, err)
				}
			}
			syncAll()
			check("after mutations")
		}

		// Accounting: with a fleet, remote partials were actually
		// served, and the engine-level stats agree with the fabric's.
		for s, eng := range engines {
			fs := eng.FabricStats()
			cs := eng.CacheStats()
			if nw == 0 {
				if fs.Workers != 0 || fs.RemotePartials != 0 || cs.RemotePartials != 0 {
					t.Errorf("shards=%d: fabric counters without a fleet: %+v", s, fs)
				}
				continue
			}
			if want := len(fleetFor(addrs, s)); fs.Workers != want {
				t.Errorf("workers=%d shards=%d: FabricStats.Workers = %d, want %d", nw, s, fs.Workers, want)
			}
			if s == 1 {
				// An unsharded solve plane has nothing to scatter: the
				// fabric stays configured but idle.
				if fs.RemotePartials != 0 {
					t.Errorf("shards=1: unsharded plane served %d remote partials", fs.RemotePartials)
				}
				continue
			}
			if fs.RemotePartials == 0 {
				t.Errorf("workers=%d shards=%d: no remote partials served", nw, s)
			}
			if fs.BytesOut == 0 || fs.BytesIn == 0 {
				t.Errorf("workers=%d shards=%d: wire counters flat: %+v", nw, s, fs)
			}
			if cs.RemotePartials != fs.RemotePartials ||
				cs.HedgedDispatches != fs.HedgedDispatches ||
				cs.Fallbacks != fs.Fallbacks ||
				cs.RemoteBytes != fs.BytesOut+fs.BytesIn {
				t.Errorf("workers=%d shards=%d: CacheStats %+v disagrees with FabricStats %+v", nw, s, cs, fs)
			}
			remotes := int64(0)
			for _, ss := range cs.ShardStats {
				remotes += ss.RemotePartials
			}
			if remotes != fs.RemotePartials {
				t.Errorf("workers=%d shards=%d: per-shard remotes sum %d != %d", nw, s, remotes, fs.RemotePartials)
			}
		}
	}
}

// TestFabricWorkerKillFallsBackThenRecovers injects a worker kill
// mid-run: solves keep answering exactly (every shard falls back
// locally), and a restarted — state-empty — worker is re-pinned via the
// not-synced refusal until remote service resumes.
func TestFabricWorkerKillFallsBackThenRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ctx := context.Background()
	pts := randomMarket(rng, 120, 3)
	oracle := toprr.NewEngine(pts, toprr.WithShards(1))

	addr, kill := startWorker(t)
	eng, err := toprr.OpenEngine(pts, toprr.WithShards(4), toprr.WithRemoteShards(toprr.RemoteShards{
		Workers: map[string][]int{addr: {0, 1, 2, 3}},
		Dataset: "kill",
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SyncRemote(ctx); err != nil {
		t.Fatal(err)
	}

	solveCheck := func(stage string) {
		query := randomQuery(rng, 3, 2+rng.Intn(3))
		query.Options = oracleOptions()
		want, err := oracle.Solve(ctx, query)
		if err != nil {
			t.Fatalf("%s: oracle: %v", stage, err)
		}
		got, err := eng.Solve(ctx, query)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if len(got.Vall) != len(want.Vall) || len(got.ORConstraints) != len(want.ORConstraints) {
			t.Fatalf("%s: distributed solve diverged from oracle", stage)
		}
		sameRegion(t, stage, rng, 3, got, want)
	}

	solveCheck("warm")
	if eng.FabricStats().RemotePartials == 0 {
		t.Fatal("warm solve served no remote partials")
	}

	kill()
	falls := eng.FabricStats().Fallbacks
	solveCheck("worker down")
	if eng.FabricStats().Fallbacks <= falls {
		t.Fatal("worker kill did not register fallbacks")
	}

	// Restart on the same address with empty state. The coordinator's
	// client still believes the old generation is pushed; the worker's
	// not-synced refusal forces the re-pin, after which remote partials
	// flow again.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := fabric.NewServer(fabric.NewEngineBackend(fabric.BackendConfig{}))
	go srv2.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv2.Close() })

	before := eng.FabricStats().RemotePartials
	deadline := time.Now().Add(10 * time.Second)
	for eng.FabricStats().RemotePartials == before {
		if time.Now().After(deadline) {
			t.Fatal("remote service never resumed after worker restart")
		}
		solveCheck("restarted")
	}
}

// slowProxy forwards TCP to upstream, delaying every server-to-client
// chunk: the remote worker stays correct but slow, which is exactly the
// straggler the hedge timer exists for.
func slowProxy(t *testing.T, upstream string, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			u, err := net.Dial("tcp", upstream)
			if err != nil {
				c.Close()
				continue
			}
			go func() {
				io.Copy(u, c) //nolint:errcheck
				u.Close()
			}()
			go func() {
				buf := make([]byte, 4096)
				for {
					n, rerr := u.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := c.Write(buf[:n]); werr != nil {
							break
						}
					}
					if rerr != nil {
						break
					}
				}
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// TestFabricHedgesSlowWorker: a worker that answers correctly but
// slowly trips the hedge deadline fraction — the shard re-dispatches
// locally, the straggler is discarded, and the result is still exact.
func TestFabricHedgesSlowWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ctx := context.Background()
	pts := randomMarket(rng, 100, 3)
	oracle := toprr.NewEngine(pts, toprr.WithShards(1))

	addr, _ := startWorker(t)
	slow := slowProxy(t, addr, 150*time.Millisecond)
	eng, err := toprr.OpenEngine(pts, toprr.WithShards(2), toprr.WithRemoteShards(toprr.RemoteShards{
		Workers: map[string][]int{slow: {0, 1}},
		Dataset: "slow",
		Hedge:   5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SyncRemote(ctx); err != nil {
		t.Fatal(err)
	}

	query := randomQuery(rng, 3, 3)
	query.Options = oracleOptions()
	want, err := oracle.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vall) != len(want.Vall) {
		t.Fatalf("hedged solve |Vall| %d != %d", len(got.Vall), len(want.Vall))
	}
	sameRegion(t, "hedged", rng, 3, got, want)
	if fs := eng.FabricStats(); fs.HedgedDispatches == 0 {
		t.Fatalf("no hedged dispatches recorded: %+v", fs)
	}
}

// TestFabricStaleGenerationSolvesLocally: a solve pinned to a snapshot
// older than what the workers hold never takes a doomed round trip —
// the generation short-circuit answers it locally, exactly for the
// pinned scorer.
func TestFabricStaleGenerationSolvesLocally(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ctx := context.Background()
	pts := randomMarket(rng, 110, 3)

	addr, _ := startWorker(t)
	eng, err := toprr.OpenEngine(pts, toprr.WithShards(4), toprr.WithRemoteShards(toprr.RemoteShards{
		Workers: map[string][]int{addr: {0, 1, 2, 3}},
		Dataset: "stale",
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SyncRemote(ctx); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	pinned := toprr.NewEngine(snap.Scorer.Points(), toprr.WithShards(1))

	var ops []toprr.Op
	for i := 0; i < 5; i++ {
		ops = append(ops, toprr.Insert(randomPoint(rng, 3)))
	}
	if _, err := eng.Apply(ctx, ops); err != nil {
		t.Fatal(err)
	}
	if err := eng.SyncRemote(ctx); err != nil {
		t.Fatal(err)
	}

	remotes := eng.FabricStats().RemotePartials
	query := randomQuery(rng, 3, 2)
	query.Options = oracleOptions()
	want, err := pinned.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SolveAt(ctx, snap, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vall) != len(want.Vall) {
		t.Fatalf("pinned |Vall| %d != %d", len(got.Vall), len(want.Vall))
	}
	sameRegion(t, "pinned", rng, 3, got, want)
	// A pinned-old-generation solve runs on a solve-local cache the
	// remote plane is not attached to: no doomed round trips, no remote
	// partials — the workers hold the newer generation.
	if after := eng.FabricStats().RemotePartials; after != remotes {
		t.Fatalf("stale-generation solve took %d wire round trips", after-remotes)
	}

	// The current generation, by contrast, still scatters.
	cur, err := eng.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	curOracle := toprr.NewEngine(eng.Scorer().Points(), toprr.WithShards(1))
	curWant, err := curOracle.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "current", rng, 3, cur, curWant)
	if eng.FabricStats().RemotePartials == remotes {
		t.Fatal("current-generation solve served no remote partials")
	}
}

// TestFabricDrainKeepsSolving: DrainFabric quiesces the pool without
// taking the engine down — later solves answer locally and exactly.
func TestFabricDrainKeepsSolving(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ctx := context.Background()
	pts := randomMarket(rng, 100, 3)
	oracle := toprr.NewEngine(pts, toprr.WithShards(1))

	addr, _ := startWorker(t)
	eng, err := toprr.OpenEngine(pts, toprr.WithShards(2), toprr.WithRemoteShards(toprr.RemoteShards{
		Workers: map[string][]int{addr: {0, 1}},
		Dataset: "drain",
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.SyncRemote(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.DrainFabric(ctx); err != nil {
		t.Fatal(err)
	}

	query := randomQuery(rng, 3, 2)
	query.Options = oracleOptions()
	want, err := oracle.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Solve(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "drained", rng, 3, got, want)
	if fs := eng.FabricStats(); fs.RemotePartials != 0 && fs.Fallbacks == 0 {
		t.Fatalf("drained engine neither local-only nor falling back: %+v", fs)
	}
}

// TestFabricExternalWorkers runs the distributed-vs-oracle property
// check against real worker processes — cmd/toprr-worker binaries
// started outside this test and named by TOPRR_FABRIC_WORKERS
// (comma-separated host:port). It skips when the variable is unset, so
// the suite stays hermetic by default; CI's fabric lane builds the
// worker, boots two on localhost and runs this under -race.
func TestFabricExternalWorkers(t *testing.T) {
	spec := os.Getenv("TOPRR_FABRIC_WORKERS")
	if spec == "" {
		t.Skip("TOPRR_FABRIC_WORKERS not set (CI fabric lane only)")
	}
	addrs := strings.Split(spec, ",")
	rng := rand.New(rand.NewSource(37))
	ctx := context.Background()
	d := 3
	pts := randomMarket(rng, 140, d)
	oracle := toprr.NewEngine(pts, toprr.WithShards(1))

	for _, s := range []int{2, 4, 8} {
		eng, err := toprr.OpenEngine(pts, toprr.WithShards(s), toprr.WithRemoteShards(toprr.RemoteShards{
			Workers: fleetFor(addrs, s),
			Dataset: fmt.Sprintf("external-s%d", s),
		}))
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		defer eng.Close()
		if err := eng.SyncRemote(ctx); err != nil {
			t.Fatalf("shards=%d: sync %v: %v", s, addrs, err)
		}

		check := func(stage string) {
			for q := 0; q < 3; q++ {
				query := randomQuery(rng, d, 1+rng.Intn(5))
				query.Options = oracleOptions()
				want, err := oracle.Solve(ctx, query)
				if err != nil {
					t.Fatalf("shards=%d %s: oracle: %v", s, stage, err)
				}
				got, err := eng.Solve(ctx, query)
				if err != nil {
					t.Fatalf("shards=%d %s: %v", s, stage, err)
				}
				if len(got.Vall) != len(want.Vall) || len(got.ORConstraints) != len(want.ORConstraints) {
					t.Fatalf("shards=%d %s: distributed solve diverged from oracle", s, stage)
				}
				sameRegion(t, fmt.Sprintf("external shards=%d %s", s, stage), rng, d, got, want)
			}
		}
		check("fresh")

		var ops []toprr.Op
		for o := 0; o < 4; o++ {
			ops = append(ops, toprr.Insert(randomPoint(rng, d)))
		}
		for _, e := range []*toprr.Engine{oracle, eng} {
			if _, err := e.Apply(ctx, ops); err != nil {
				t.Fatalf("shards=%d: %v", s, err)
			}
		}
		if err := eng.SyncRemote(ctx); err != nil {
			t.Fatalf("shards=%d: re-sync: %v", s, err)
		}
		check("after mutations")

		if fs := eng.FabricStats(); fs.RemotePartials == 0 {
			t.Errorf("shards=%d: external workers served no remote partials: %+v", s, fs)
		}
		// Carry the mutated points forward so the next shard count's
		// engine and oracle start from the same market.
		pts = oracle.Scorer().Points()
	}
}

// TestWithRemoteShardsValidation: shard indices outside the engine's
// range, doubly-owned shards and empty addresses are rejected at
// OpenEngine time, naming the offender.
func TestWithRemoteShardsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := randomMarket(rng, 30, 3)
	cases := []struct {
		name    string
		workers map[string][]int
	}{
		{"out of range", map[string][]int{"127.0.0.1:1": {4}}},
		{"negative", map[string][]int{"127.0.0.1:1": {-1}}},
		{"empty addr", map[string][]int{"": {0}}},
	}
	for _, tc := range cases {
		if _, err := toprr.OpenEngine(pts, toprr.WithShards(4), toprr.WithRemoteShards(toprr.RemoteShards{Workers: tc.workers})); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Duplicate ownership needs two workers claiming one shard; the map
	// literal above cannot express it with one key.
	dup := map[string][]int{"127.0.0.1:1": {0, 1}, "127.0.0.1:2": {1}}
	if _, err := toprr.OpenEngine(pts, toprr.WithShards(4), toprr.WithRemoteShards(toprr.RemoteShards{Workers: dup})); err == nil {
		t.Error("doubly-owned shard accepted")
	}
}
