package toprr_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// randomMarket builds a dataset of n random options in [0,1]^d.
func randomMarket(rng *rand.Rand, n, d int) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	return pts
}

// randomQuery draws a feasible query region in the (d-1)-dim preference
// space.
func randomQuery(rng *rand.Rand, d, k int) toprr.Query {
	m := d - 1
	lo, hi := vec.New(m), vec.New(m)
	for j := 0; j < m; j++ {
		lo[j] = (0.1 + 0.5*rng.Float64()) * 0.8 / float64(m)
		hi[j] = lo[j] + 0.05/float64(m)
	}
	return toprr.Query{K: k, WR: toprr.PrefBox(lo, hi)}
}

// TestEngineMatchesPackageSolve: the engine's shared caches must not
// change any answer relative to one-shot solves.
func TestEngineMatchesPackageSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	pts := randomMarket(rng, 150, 3)
	engine := toprr.NewEngine(pts)
	for iter := 0; iter < 5; iter++ {
		q := randomQuery(rng, 3, 2+rng.Intn(4))
		got, err := engine.Solve(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := toprr.Solve(ctx, toprr.NewProblem(pts, q.K, q.WR), toprr.Options{Alg: toprr.TASStar})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 300; probe++ {
			o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
			if got.IsTopRanking(o) != want.IsTopRanking(o) {
				t.Fatalf("iter %d: engine solve differs at %v", iter, o)
			}
		}
	}
	cs := engine.CacheStats()
	if cs.TopKConfigs == 0 {
		t.Error("engine served queries without interning any top-k cache")
	}
}

// TestEngineSolveBatch: batch results align with their queries and
// match sequential engine solves; the shared caches see reuse.
func TestEngineSolveBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	pts := randomMarket(rng, 150, 3)
	engine := toprr.NewEngine(pts, toprr.WithBatchWorkers(4))

	queries := make([]toprr.Query, 8)
	for i := range queries {
		queries[i] = randomQuery(rng, 3, 2+i%3)
	}
	// Repeat one region so the batch provably shares top-k state.
	queries[7] = queries[0]

	results, err := engine.SolveBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	reference := toprr.NewEngine(pts)
	for i, q := range queries {
		if results[i] == nil {
			t.Fatalf("missing result %d", i)
		}
		want, err := reference.Solve(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 200; probe++ {
			o := vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
			if results[i].IsTopRanking(o) != want.IsTopRanking(o) {
				t.Fatalf("query %d: batch result differs at %v", i, o)
			}
		}
	}
	cs := engine.CacheStats()
	if cs.TopKHits == 0 {
		t.Error("batch with a repeated query produced no top-k cache hits")
	}
}

// TestEngineSolveBatchCancelled: a cancelled context aborts the batch
// with the context error.
func TestEngineSolveBatchCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomMarket(rng, 120, 3)
	engine := toprr.NewEngine(pts)
	queries := []toprr.Query{randomQuery(rng, 3, 3), randomQuery(rng, 3, 3)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.SolveBatch(ctx, queries); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEngineSolveBatchPartialResults: on the first error the batch
// reports the failing query's index in the wrapped error, keeps the
// results completed before the failure, and leaves failed or cancelled
// slots nil.
func TestEngineSolveBatchPartialResults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ctx := context.Background()
	pts := randomMarket(rng, 120, 3)
	// One worker makes completion order deterministic: query 0 finishes
	// before query 1 fails.
	engine := toprr.NewEngine(pts, toprr.WithBatchWorkers(1))

	qs := []toprr.Query{
		randomQuery(rng, 3, 2),
		randomQuery(rng, 3, 0), // invalid: k=0
		randomQuery(rng, 3, 2),
	}
	results, err := engine.SolveBatch(ctx, qs)
	if err == nil {
		t.Fatal("batch with an invalid query must error")
	}
	if !strings.Contains(err.Error(), "batch query 1") {
		t.Errorf("error %q does not name the failing query index", err)
	}
	if !strings.Contains(err.Error(), "k=0") {
		t.Errorf("error %q does not wrap the underlying failure", err)
	}
	if errors.Unwrap(err) == nil {
		t.Error("batch error should wrap the query error")
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d result slots for %d queries", len(results), len(qs))
	}
	if results[0] == nil {
		t.Error("query completed before the failure lost its result")
	}
	if results[1] != nil {
		t.Error("failed slot must be nil")
	}
	if results[2] != nil {
		t.Error("cancelled slot must be nil")
	}

	// Context cancellation: every slot nil, context error surfaced.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	results, err = engine.SolveBatch(cancelled, []toprr.Query{randomQuery(rng, 3, 2), randomQuery(rng, 3, 2)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("cancelled batch slot %d is non-nil", i)
		}
	}
}

// TestEngineRejectsBadQueries: invalid queries error instead of
// panicking, and a bad query fails the whole batch while leaving valid
// slots either solved or nil.
func TestEngineRejectsBadQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctx := context.Background()
	pts := randomMarket(rng, 50, 3)
	engine := toprr.NewEngine(pts)

	if _, err := engine.Solve(ctx, toprr.Query{K: 3}); err == nil {
		t.Error("nil wR should error")
	}
	if _, err := engine.Solve(ctx, randomQuery(rng, 3, 0)); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := engine.Solve(ctx, randomQuery(rng, 3, 51)); err == nil {
		t.Error("k>n should error")
	}
	bad := randomQuery(rng, 3, 0)
	if _, err := engine.SolveBatch(ctx, []toprr.Query{randomQuery(rng, 3, 2), bad}); err == nil {
		t.Error("batch with a bad query should error")
	}
}

// TestEngineQueryOptionsOverride: per-query options replace the engine
// defaults.
func TestEngineQueryOptionsOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	pts := randomMarket(rng, 100, 3)
	engine := toprr.NewEngine(pts, toprr.WithDefaults(toprr.Options{Alg: toprr.TASStar}))
	q := randomQuery(rng, 3, 3)
	q.Options = &toprr.Options{Alg: toprr.TAS, MaxRegions: 1}
	if _, err := engine.Solve(ctx, q); err == nil {
		t.Skip("instance trivially solvable within one region; override not observable")
	}
}
