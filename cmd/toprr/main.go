// Command toprr runs a single TopRR query: given a dataset (CSV file or
// generated on the fly), a value k and a preference box wR, it computes
// the top-ranking region oR and, optionally, the cost-optimal placement
// of a new option or the minimum-cost enhancement of an existing one.
//
// Usage:
//
//	toprr -dist IND -n 100000 -d 4 -k 10 -lo 0.3,0.25,0.2 -hi 0.31,0.26,0.21
//	toprr -data hotels.csv -k 5 -lo 0.2,0.2,0.2 -hi 0.25,0.25,0.25 -place
//	toprr -data laptops.csv -k 3 -lo 0.7 -hi 0.8 -enhance 0.3,0.8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func parseVec(s string) (vec.Vector, error) {
	if s == "" {
		return nil, fmt.Errorf("empty vector")
	}
	parts := strings.Split(s, ",")
	v := vec.New(len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %v", i+1, err)
		}
		v[i] = x
	}
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toprr:", err)
	os.Exit(1)
}

func main() {
	var (
		data    = flag.String("data", "", "CSV dataset file (default: generate synthetic)")
		dist    = flag.String("dist", "IND", "synthetic distribution when -data is absent")
		n       = flag.Int("n", 100000, "synthetic dataset size")
		d       = flag.Int("d", 4, "synthetic dimensionality")
		seed    = flag.Int64("seed", 7, "synthetic generator seed")
		k       = flag.Int("k", 10, "rank threshold")
		loS     = flag.String("lo", "", "wR lower corner, comma-separated (d-1 values)")
		hiS     = flag.String("hi", "", "wR upper corner, comma-separated (d-1 values)")
		algS    = flag.String("alg", "TAS*", "algorithm: PAC, TAS or TAS*")
		place   = flag.Bool("place", false, "report the cost-optimal new option (min sum of squares)")
		enhance = flag.String("enhance", "", "existing option to enhance at minimum cost, comma-separated")
		verbose = flag.Bool("v", false, "print oR vertices")
		workers = flag.Int("workers", 1, "parallel region-processing workers")
		timeout = flag.Duration("timeout", 0, "wall-clock budget for the query (0 = unlimited)")
	)
	flag.Parse()

	// The query is cancellable: Ctrl-C (and -timeout) propagate through
	// the context into the solver pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var ds *dataset.Dataset
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fatal(err)
		}
		ds, err = dataset.ReadCSV(f, *data)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		dd, err := dataset.ParseDistribution(*dist)
		if err != nil {
			fatal(err)
		}
		ds = dataset.Generate(dd, *n, *d, *seed)
	}

	lo, err := parseVec(*loS)
	if err != nil {
		fatal(fmt.Errorf("-lo: %v", err))
	}
	hi, err := parseVec(*hiS)
	if err != nil {
		fatal(fmt.Errorf("-hi: %v", err))
	}
	if len(lo) != ds.Dim()-1 || len(hi) != ds.Dim()-1 {
		fatal(fmt.Errorf("wR needs %d components (d-1), got %d/%d", ds.Dim()-1, len(lo), len(hi)))
	}
	if *k <= 0 || *k > ds.Len() {
		fatal(fmt.Errorf("-k=%d out of range for %d options", *k, ds.Len()))
	}

	var alg toprr.Algorithm
	switch strings.ToUpper(*algS) {
	case "PAC":
		alg = toprr.PAC
	case "TAS":
		alg = toprr.TAS
	case "TAS*", "TASSTAR", "TAS-STAR":
		alg = toprr.TASStar
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algS))
	}

	prob := toprr.NewProblem(ds.Pts, *k, toprr.PrefBox(lo, hi))
	// The -timeout budget covers the query itself, not dataset loading.
	solveCtx := ctx
	if *timeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := toprr.Solve(solveCtx, prob, toprr.Options{Alg: alg, Workers: *workers})
	if err != nil {
		fatal(fmt.Errorf("%w (after %v)", err, time.Since(start).Round(time.Millisecond)))
	}
	st := res.Stats
	fmt.Printf("dataset: %s (%d options, %d attributes)\n", ds.Name, ds.Len(), ds.Dim())
	fmt.Printf("query:   k=%d wR=[%v, %v] alg=%v\n", *k, lo, hi, alg)
	if res.OR != nil {
		fmt.Printf("result:  oR has %d vertices, %d facets\n", res.OR.NumVertices(), len(res.OR.Facets()))
	} else {
		fmt.Printf("result:  oR geometry beyond vertex budget; exact H-representation has %d constraints\n", len(res.ORConstraints))
	}
	fmt.Printf("stats:   |D'|=%d regions=%d splits=%d |Vall|=%d lemma5=%d lemma7=%d time=%v\n",
		st.FilteredOptions, st.Regions, st.Splits, st.VallSize, st.Lemma5Prunes, st.Lemma7Accepts, st.Elapsed)

	if *verbose && res.OR != nil {
		fmt.Println("oR vertices:")
		for _, v := range res.OR.VertexPoints() {
			fmt.Printf("  %v\n", v)
		}
	}
	if *place {
		o, err := res.CostOptimalNew()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cost-optimal new option: %v (cost %.4f)\n", o, o.Dot(o))
	}
	if *enhance != "" {
		p, err := parseVec(*enhance)
		if err != nil {
			fatal(fmt.Errorf("-enhance: %v", err))
		}
		if len(p) != ds.Dim() {
			fatal(fmt.Errorf("-enhance needs %d components", ds.Dim()))
		}
		q, cost, err := res.Enhance(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("enhancement: %v -> %v (modification cost %.4f)\n", p, q, cost)
	}
}
