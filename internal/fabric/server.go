package fabric

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Backend is the worker-side partial-solve plane the server exposes on
// the wire. Implementations must be safe for concurrent use: the server
// overlaps partial requests from pipelined connections.
type Backend interface {
	// Hello reports the generation (0 = unsynced) and shard count the
	// backend currently holds for a dataset.
	Hello(dataset string) (gen uint64, shards uint32, err error)
	// Sync atomically replaces the dataset's resident generation.
	Sync(dataset string, m SyncMsg) error
	// Partial answers one shard's partial top-k request. The request
	// names an exact generation; any other resident generation must be
	// refused with a Refusal{CodeGenMismatch} (or CodeNotSynced).
	Partial(dataset string, m PartialReq) (PartialResp, error)
	// Stats reports the dataset's worker-side counters.
	Stats(dataset string) StatsResp
}

// Refusal is a typed backend error the server forwards to the client as
// an Error frame with its code; any other backend error travels as
// CodeInternal.
type Refusal struct {
	Code uint32
	Msg  string
}

func (r Refusal) Error() string { return fmt.Sprintf("fabric refusal %d: %s", r.Code, r.Msg) }

// partialWorkers bounds the partial computations one connection runs
// concurrently; pipelined requests beyond it queue on the semaphore.
const partialWorkers = 4

// Server serves the fabric protocol over accepted connections.
type Server struct {
	backend Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a backend.
func NewServer(b Backend) *Server {
	return &Server{backend: b, conns: make(map[net.Conn]struct{})}
}

// Serve accepts and serves connections on ln until Close (or a listener
// error). It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("fabric: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Close stops accepting and tears down every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

// serveConn runs one connection: a Hello pins the dataset, then
// requests are served until the peer hangs up. Partial requests overlap
// (bounded by partialWorkers); responses interleave and the client
// matches them by request id.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	var wmu sync.Mutex // one response frame at a time
	reply := func(f Frame) bool {
		wmu.Lock()
		_, err := WriteFrame(c, f)
		wmu.Unlock()
		return err == nil
	}
	replyErr := func(reqID uint64, err error) bool {
		var ref Refusal
		if !errors.As(err, &ref) {
			ref = Refusal{Code: CodeInternal, Msg: err.Error()}
		}
		return reply(Frame{Type: FrameError, ReqID: reqID, Payload: ErrorMsg{Code: ref.Code, Msg: ref.Msg}.encode()})
	}

	// Handshake: the first frame must be a Hello naming the dataset.
	first, _, err := ReadFrame(c)
	if err != nil || first.Type != FrameHello {
		return
	}
	hello, err := decodeHello(first.Payload)
	if err != nil {
		return
	}
	dataset := hello.Dataset
	gen, shards, err := s.backend.Hello(dataset)
	if err != nil {
		replyErr(first.ReqID, err)
		return
	}
	if !reply(Frame{Type: FrameHelloAck, ReqID: first.ReqID, Payload: HelloAck{Gen: gen, Shards: shards}.encode()}) {
		return
	}

	sem := make(chan struct{}, partialWorkers)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		f, _, err := ReadFrame(c)
		if err != nil {
			return // EOF, peer reset, or a corrupt stream: hang up
		}
		switch f.Type {
		case FramePartialReq:
			req, err := decodePartialReq(f.Payload)
			if err != nil {
				replyErr(f.ReqID, Refusal{Code: CodeBadRequest, Msg: err.Error()})
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(reqID uint64, req PartialReq) {
				defer func() { <-sem; wg.Done() }()
				resp, err := s.backend.Partial(dataset, req)
				if err != nil {
					replyErr(reqID, err)
					return
				}
				reply(Frame{Type: FramePartialResp, ReqID: reqID, Payload: resp.encode()})
			}(f.ReqID, req)
		case FrameSync:
			m, err := decodeSync(f.Payload)
			if err != nil {
				replyErr(f.ReqID, Refusal{Code: CodeBadRequest, Msg: err.Error()})
				continue
			}
			// Syncs run inline: a generation swap must not interleave
			// with itself, and the backend orders it against in-flight
			// partials internally.
			if err := s.backend.Sync(dataset, m); err != nil {
				replyErr(f.ReqID, err)
				continue
			}
			reply(Frame{Type: FrameSyncAck, ReqID: f.ReqID, Payload: HelloAck{Gen: m.Gen, Shards: m.Shards}.encode()})
		case FrameStatsReq:
			reply(Frame{Type: FrameStatsResp, ReqID: f.ReqID, Payload: s.backend.Stats(dataset).encode()})
		default:
			replyErr(f.ReqID, Refusal{Code: CodeBadRequest, Msg: fmt.Sprintf("unexpected frame type %d", f.Type)})
		}
	}
}
