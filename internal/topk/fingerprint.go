package topk

// Region fingerprinting: a quantized, order-insensitive digest of a
// result region's constraint set, so "did this standing region move?"
// is answered by comparing two uint64s instead of materializing and
// diffing the old region. The per-constraint digest reuses the same
// quantized FNV-1a identity the cache planes key internal/oamap maps
// with (vec.Hash / vec.HashFold at FingerprintQuantum); constraints then
// combine commutatively — each per-constraint key passes through a
// strong 64-bit finalizer before summing and xor-folding — so
// permutations of the same constraint set fingerprint identically while
// near-identical sets (one coefficient nudged past the quantum, one
// constraint added or dropped) diverge with overwhelming probability.
// A collision suppresses a notification (~2^-64 per compared pair), the
// same accepted failure odds as the cache identity itself.

import "toprr/internal/vec"

// FingerprintQuantum is the coordinate quantum region fingerprints are
// computed under — the same 1e-10 the top-k memo keys vertices with, so
// a constraint set is "unchanged" exactly when every coefficient agrees
// within the precision the cache plane already treats as identity.
const FingerprintQuantum = 1e-10

// RegionHash accumulates the fingerprint of one constraint set. The
// zero value is ready to use; Add each halfspace a·x >= b, then read
// Sum. Adding the same constraints in any order yields the same sum.
type RegionHash struct {
	n   int
	sum uint64
	xor uint64
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// so structured FNV outputs decorrelate before the commutative combine
// (a raw sum of FNV digests would cancel on crafted pairs far more
// easily than a sum of avalanched ones).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add folds one constraint a·x >= b into the fingerprint.
func (h *RegionHash) Add(a vec.Vector, b float64) {
	k := mix64(vec.HashFold(a.Hash(FingerprintQuantum), b, FingerprintQuantum))
	h.n++
	h.sum += k
	h.xor ^= k
}

// Len reports the number of constraints added.
func (h *RegionHash) Len() int { return h.n }

// Sum returns the accumulated fingerprint. Distinct constraint
// multisets collide with probability ~2^-64; equal multisets (under
// quantization) always agree.
func (h *RegionHash) Sum() uint64 {
	return mix64(h.sum ^ mix64(h.xor) ^ uint64(h.n))
}
