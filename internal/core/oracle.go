package core

import (
	"math/rand"

	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Rank returns the rank a new option placed at o would attain in the
// dataset under reduced weight vector w: one plus the number of existing
// options scoring strictly higher. Scores within 1e-9 are treated as
// ties, consistent with Definition 2's non-strict inequality (a new
// option scoring exactly TopK(w) is in the top-k). It is the brute-force
// oracle used by tests and examples to validate TopRR output.
func Rank(scorer *topk.Scorer, w vec.Vector, o vec.Vector) int {
	so := topk.ScorePoint(w, o)
	rank := 1
	for i := 0; i < scorer.Len(); i++ {
		if scorer.Score(w, i) > so+1e-9 {
			rank++
		}
	}
	return rank
}

// VerifyTopRanking samples the preference region and checks that o ranks
// within the top k at every sample; it returns the first violating
// weight vector, or nil when all samples pass. Used as a probabilistic
// soundness oracle.
func VerifyTopRanking(p Problem, o vec.Vector, samples int, rng *rand.Rand) vec.Vector {
	for s := 0; s < samples; s++ {
		w := p.WR.SamplePoint(rng)
		if Rank(p.Scorer, w, o) > p.K {
			return w
		}
	}
	// Also check the region's vertices — the extreme preferences.
	for _, w := range p.WR.VertexPoints() {
		if Rank(p.Scorer, w, o) > p.K {
			return w
		}
	}
	return nil
}

// WitnessNonTopRanking searches Vall for a vertex certifying that o is
// NOT top-ranking (its score at the vertex falls below the k-th score).
// For points outside oR such a witness must exist by Theorem 1's
// maximality argument; it returns nil if none is found.
func (r *Result) WitnessNonTopRanking(o vec.Vector) vec.Vector {
	for _, iv := range r.Vall {
		if topk.ScorePoint(iv.W, o) < iv.KthScore-1e-9 {
			return iv.W
		}
	}
	return nil
}
