package toprr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"toprr/internal/store"
	"toprr/internal/vec"
)

// Registry errors, detectable with errors.Is.
var (
	// ErrUnknownDataset is returned for a dataset name the registry does
	// not hold.
	ErrUnknownDataset = errors.New("toprr: unknown dataset")
	// ErrDatasetExists is returned by Registry.Create for a name already
	// taken.
	ErrDatasetExists = errors.New("toprr: dataset already exists")
	// ErrRegistryClosed is returned by registry operations after Close.
	ErrRegistryClosed = errors.New("toprr: registry closed")
)

// Registry serves many named datasets from one process: each tenant is
// an independent Engine — its own generations, snapshot-isolated
// mutations and (under a durable registry) its own WAL/snapshot cycle
// in <root>/<name>/ — while the process shares compute and one cache
// budget across them.
//
// A durable registry (WithRegistryRoot / WithRegistryPersistence)
// discovers the datasets already under its root at construction and
// opens each lazily, on its first request. With WithIdleTTL it also
// evicts: an engine untouched for the TTL is closed — its memory,
// caches and WAL handle released — and transparently reopened from disk
// on the next request. A memory-only registry keeps every tenant
// resident (idle eviction would destroy data) and refuses a TTL.
//
// With WithCacheBudget the registry owns the process-wide top-k cache
// budget and re-apportions it whenever the set of resident engines
// changes, replacing per-engine WithCacheLimits tuning.
//
// A Registry is safe for concurrent use.
type Registry struct {
	root          string        // "" = memory-only
	ttl           time.Duration // idle-eviction TTL (0 = never evict)
	budgetConfigs int           // process-wide interned top-k configurations (0 = per-engine default)
	budgetEntries int           // per-configuration memoized-vertex cap (0 = per-engine default)
	shards        int           // default shard count for new datasets (0 = engine auto)
	watchCap      int           // per-tenant standing-subscription cap (0 = engine default)
	remote        map[string]RemoteShards
	persist       store.PersistConfig

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	stopJanitor chan struct{}
	janitorDone chan struct{}
}

// tenant is one named dataset's slot. engine is nil while the tenant is
// closed (idle-evicted, or discovered on boot and not yet requested);
// opening marks an in-flight open so concurrent requests wait on ready
// instead of opening twice.
type tenant struct {
	name     string
	engine   *Engine
	opening  bool
	ready    *sync.Cond // on Registry.mu; broadcast when an open finishes
	lastUse  time.Time
	refs     int   // in-flight Acquire holds; an evictor skips refs > 0
	closeErr error // last idle-eviction Close failure; cleared by a successful reopen
}

// RegistryOption configures a new Registry.
type RegistryOption func(*Registry)

// WithRegistryRoot makes the registry durable: every dataset lives in
// its own <root>/<name>/ directory with the default persistence
// configuration. Use WithRegistryPersistence to tune sync mode and
// compaction thresholds.
func WithRegistryRoot(root string) RegistryOption {
	return func(r *Registry) { r.root = root }
}

// WithRegistryPersistence is WithRegistryRoot with an explicit
// persistence template: cfg.Dir is the root, and the remaining fields
// (sync mode, compaction thresholds, segment size) apply to every
// dataset.
func WithRegistryPersistence(cfg PersistConfig) RegistryOption {
	return func(r *Registry) {
		r.root = cfg.Dir
		r.persist = cfg
	}
}

// WithIdleTTL enables idle eviction on a durable registry: an engine
// untouched for d is closed and reopened from disk on its next request.
// Requires a registry root; a memory-only registry cannot evict without
// destroying the tenant.
func WithIdleTTL(d time.Duration) RegistryOption {
	return func(r *Registry) { r.ttl = d }
}

// WithRegistryWatchCap bounds the standing subscriptions of each
// tenant (see Engine.Watch and WithWatchCap; 0 keeps the per-engine
// DefaultWatchCap). The cap is per tenant, not process-wide: every
// dataset's engine is opened with this limit.
func WithRegistryWatchCap(n int) RegistryOption {
	return func(r *Registry) { r.watchCap = n }
}

// WithRegistryShards sets the default shard count new datasets are
// created with (see WithShards; 0 keeps the per-engine GOMAXPROCS
// default). Datasets reopened from disk keep the shard layout their
// snapshots record regardless.
func WithRegistryShards(n int) RegistryOption {
	return func(r *Registry) { r.shards = n }
}

// WithRegistryRemote puts named tenants in coordinator mode (see
// WithRemoteShards): cfgs maps a dataset name to its worker fleet, and
// that tenant's engine — whenever it opens, including an idle-evicted
// reopen — routes the configured shards' partial solves to those
// workers. The handshake pins the tenant's own name as the dataset, so
// one worker process can serve many tenants. Datasets without an entry
// solve entirely in-process.
func WithRegistryRemote(cfgs map[string]RemoteShards) RegistryOption {
	return func(r *Registry) {
		if len(cfgs) == 0 {
			return
		}
		r.remote = make(map[string]RemoteShards, len(cfgs))
		for name, cfg := range cfgs {
			r.remote[name] = cfg
		}
	}
}

// WithCacheBudget sets the process-wide cache budget: totalConfigs
// interned top-k configurations divided evenly among the resident
// engines (each at least 1), re-apportioned as tenants open, close,
// evict and drop; entriesPerConfig caps each configuration's memoized
// vertices uniformly. Zero keeps the per-engine default for that knob.
func WithCacheBudget(totalConfigs, entriesPerConfig int) RegistryOption {
	return func(r *Registry) {
		r.budgetConfigs = totalConfigs
		r.budgetEntries = entriesPerConfig
	}
}

// NewRegistry builds a dataset registry. A durable registry discovers
// the datasets already under its root (each opens lazily on first
// request); a memory-only registry starts empty.
func NewRegistry(opts ...RegistryOption) (*Registry, error) {
	r := &Registry{tenants: make(map[string]*tenant)}
	for _, o := range opts {
		o(r)
	}
	if r.ttl < 0 {
		return nil, fmt.Errorf("toprr: negative idle TTL %v", r.ttl)
	}
	if r.ttl > 0 && r.root == "" {
		return nil, fmt.Errorf("toprr: idle eviction needs a registry root (a memory-only tenant cannot be reopened)")
	}
	if r.root != "" {
		names, err := store.DiscoverDatasets(r.root)
		if err != nil {
			return nil, err
		}
		now := time.Now()
		for _, name := range names {
			r.tenants[name] = r.newTenant(name, now)
		}
	}
	if r.ttl > 0 {
		interval := r.ttl / 2
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		r.stopJanitor = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor(interval)
	}
	return r, nil
}

func (r *Registry) newTenant(name string, now time.Time) *tenant {
	return &tenant{name: name, ready: sync.NewCond(&r.mu), lastUse: now}
}

// janitor sweeps idle engines until Close.
func (r *Registry) janitor(interval time.Duration) {
	defer close(r.janitorDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopJanitor:
			return
		case <-tick.C:
			r.EvictIdle()
		}
	}
}

// persistFor derives one dataset's persistence configuration from the
// registry template.
func (r *Registry) persistFor(name string) PersistConfig {
	cfg := r.persist
	cfg.Dir = store.DatasetDir(r.root, name)
	return cfg
}

// openEngineFor opens one tenant's engine outside the registry lock.
// shards > 0 overrides the registry default for a newly created
// dataset; reopened datasets keep their persisted layout either way.
func (r *Registry) openEngineFor(name string, boot []vec.Vector, shards int) (*Engine, error) {
	if shards == 0 {
		shards = r.shards
	}
	opts := []EngineOption{WithShards(shards)}
	if r.watchCap > 0 {
		opts = append(opts, WithWatchCap(r.watchCap))
	}
	if cfg, ok := r.remote[name]; ok {
		if cfg.Dataset == "" {
			cfg.Dataset = name
		}
		opts = append(opts, WithRemoteShards(cfg))
	}
	if r.root != "" {
		opts = append(opts, WithPersistenceConfig(r.persistFor(name)))
	}
	return OpenEngine(boot, opts...)
}

// rebalanceLocked re-apportions the cache budget over the resident
// engines: each gets an even share of the interned-configuration budget
// (at least 1) and the uniform per-configuration entry cap. Lowered
// shares are soft bounds — they steer what is interned from now on;
// already-warm caches drain through generation advances.
func (r *Registry) rebalanceLocked() {
	if r.budgetConfigs <= 0 && r.budgetEntries <= 0 {
		return
	}
	open := 0
	for _, t := range r.tenants {
		if t.engine != nil {
			open++
		}
	}
	if open == 0 {
		return
	}
	share := 0
	if r.budgetConfigs > 0 {
		share = r.budgetConfigs / open
		if share < 1 {
			share = 1
		}
	}
	for _, t := range r.tenants {
		if t.engine != nil {
			t.engine.SetCacheLimits(share, r.budgetEntries)
		}
	}
}

// engineLocked returns t's engine, reopening it from disk when the
// tenant is closed. Callers hold r.mu; the open itself runs unlocked,
// with t.opening serializing concurrent requests for the same tenant
// (waiters block on t.ready rather than opening twice).
func (r *Registry) engineLocked(t *tenant) (*Engine, error) {
	for t.opening {
		t.ready.Wait()
	}
	// Recheck both conditions after the wait: a Close or Drop may have
	// landed while this request was parked behind an in-flight open —
	// starting a fresh disk recovery just to close it again would stall
	// shutdown by one full replay per queued request.
	if r.closed {
		return nil, ErrRegistryClosed
	}
	if r.tenants[t.name] != t {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, t.name)
	}
	if t.engine != nil {
		return t.engine, nil
	}
	if r.root == "" {
		// Memory-only tenants are never evicted, so a nil engine cannot
		// happen; guard anyway.
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, t.name)
	}
	t.opening = true
	r.mu.Unlock()
	eng, err := r.openEngineFor(t.name, nil, 0) // state exists on disk; no bootstrap
	r.mu.Lock()
	t.opening = false
	t.ready.Broadcast()
	if err != nil {
		return nil, fmt.Errorf("toprr: reopen dataset %s: %w", t.name, err)
	}
	if r.closed {
		eng.Close()
		return nil, ErrRegistryClosed
	}
	if r.tenants[t.name] != t {
		// Dropped while opening: the directory is gone or going.
		eng.Close()
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, t.name)
	}
	t.engine = eng
	t.closeErr = nil // the reopen recovered whatever the failed close left
	r.rebalanceLocked()
	return eng, nil
}

// Create registers a new named dataset bootstrapped from pts and
// returns its engine. Under a durable registry the dataset persists in
// <root>/<name>/; Create fails with ErrDatasetExists when the name is
// taken (including by an undiscovered directory that appeared behind
// the registry's back).
func (r *Registry) Create(name string, pts []vec.Vector) (*Engine, error) {
	return r.CreateWithShards(name, pts, 0)
}

// CreateWithShards is Create with an explicit solve-plane shard count
// for the new dataset (see WithShards; 0 uses the registry default,
// falling back to the per-engine GOMAXPROCS derivation).
func (r *Registry) CreateWithShards(name string, pts []vec.Vector, shards int) (*Engine, error) {
	if err := store.ValidateDatasetName(name); err != nil {
		return nil, err
	}
	if shards < 0 || shards > MaxShards {
		return nil, fmt.Errorf("toprr: shard count %d out of range [0, %d]", shards, MaxShards)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	if _, ok := r.tenants[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDatasetExists, name)
	}
	// Placeholder with opening set, so concurrent Create/Get/Drop on the
	// same name wait for this construction instead of racing it.
	t := r.newTenant(name, time.Now())
	t.opening = true
	r.tenants[name] = t
	r.mu.Unlock()

	var (
		eng *Engine
		err error
	)
	if r.root != "" {
		if ok, herr := store.HasState(store.DatasetDir(r.root, name)); herr != nil {
			err = herr
		} else if ok {
			err = fmt.Errorf("%w: %s (directory already holds state)", ErrDatasetExists, name)
		}
	}
	if err == nil {
		eng, err = r.openEngineFor(name, pts, shards)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	t.opening = false
	t.ready.Broadcast()
	if err != nil {
		if r.tenants[name] == t {
			delete(r.tenants, name)
		}
		return nil, err
	}
	if r.closed {
		eng.Close()
		delete(r.tenants, name)
		return nil, ErrRegistryClosed
	}
	t.engine = eng
	t.lastUse = time.Now()
	r.rebalanceLocked()
	return eng, nil
}

// Acquire returns the named dataset's engine pinned against idle
// eviction until release is called (release is idempotent). The tenant
// reopens from disk first if it was evicted. Prefer Acquire over Get
// when the engine is used across its return — a request handler, say —
// so the evictor cannot close its WAL mid-request.
func (r *Registry) Acquire(name string) (*Engine, func(), error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrRegistryClosed
	}
	t, ok := r.tenants[name]
	if !ok {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownDataset, name)
	}
	eng, err := r.engineLocked(t)
	if err != nil {
		r.mu.Unlock()
		return nil, nil, err
	}
	t.refs++
	t.lastUse = time.Now()
	r.mu.Unlock()

	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			t.refs--
			t.lastUse = time.Now()
			r.mu.Unlock()
		})
	}
	return eng, release, nil
}

// Get returns the named dataset's engine, reopening it from disk when
// it was idle-evicted. The engine is not pinned: a later eviction may
// close it (reads keep serving; a subsequent Apply fails with
// ErrClosed, and a fresh Get reopens). Use Acquire to hold eviction off
// across a request.
func (r *Registry) Get(name string) (*Engine, error) {
	eng, release, err := r.Acquire(name)
	if err != nil {
		return nil, err
	}
	release()
	return eng, nil
}

// Open returns the named dataset's engine, creating the dataset from
// pts when it does not exist yet (pts is ignored for an existing
// dataset, like OpenEngine's bootstrap).
func (r *Registry) Open(name string, pts []vec.Vector) (*Engine, error) {
	eng, err := r.Get(name)
	if err == nil {
		return eng, nil
	}
	if !errors.Is(err, ErrUnknownDataset) {
		return nil, err
	}
	eng, err = r.Create(name, pts)
	if errors.Is(err, ErrDatasetExists) {
		// Lost a create race; the winner's engine serves.
		return r.Get(name)
	}
	return eng, err
}

// Drop deletes a dataset: its engine closes (in-flight reads finish
// against their pinned snapshots; in-flight Applies may fail with
// ErrClosed) and, under a durable registry, its directory is removed
// from disk. Dropping an unknown dataset returns ErrUnknownDataset.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}
	t, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDataset, name)
	}
	for t.opening {
		t.ready.Wait()
	}
	if r.closed {
		return ErrRegistryClosed
	}
	if r.tenants[name] != t {
		return fmt.Errorf("%w: %s", ErrUnknownDataset, name)
	}
	// The close and directory removal are disk I/O (a WAL fsync, an
	// unlink walk) and must not run under the registry lock, or every
	// other tenant's Acquire stalls behind them. Marking the tenant
	// busy (opening) keeps the name reserved meanwhile: concurrent
	// Creates see it taken, concurrent Acquires park on ready and find
	// the tenant gone when woken.
	eng := t.engine
	t.engine = nil
	t.opening = true
	r.rebalanceLocked()
	r.mu.Unlock()

	var err error
	if eng != nil {
		err = eng.Close()
	}
	if r.root != "" {
		if rerr := store.RemoveDataset(r.root, name); err == nil {
			err = rerr
		}
	}

	r.mu.Lock()
	t.opening = false
	t.ready.Broadcast()
	if r.tenants[name] == t {
		delete(r.tenants, name)
	}
	return err
}

// DatasetInfo is one tenant's directory entry.
type DatasetInfo struct {
	Name    string
	Open    bool // engine resident in memory (not idle-evicted)
	LastUse time.Time
}

// List returns the registry's datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, DatasetInfo{Name: t.name, Open: t.engine != nil, LastUse: t.lastUse})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DatasetStats is one tenant's observability snapshot. For an evicted
// (Open == false) tenant only Name, Open, LastUse and CloseErr are
// meaningful — stats are not worth paging a dataset back in for.
type DatasetStats struct {
	Name       string
	Open       bool
	LastUse    time.Time
	Options    int
	Dim        int
	Cache      CacheStats
	Persist    PersistStats
	MaxConfigs int   // apportioned interned-configuration share (0 = engine default)
	CloseErr   error // last idle-eviction Close failure (nil once reopened)
}

// EngineDatasetStats assembles one resident engine's DatasetStats
// block — the single place the per-engine counters are composed, shared
// by Registry.Stats and front ends that already hold an acquired
// engine.
func EngineDatasetStats(name string, eng *Engine) DatasetStats {
	maxConfigs, _ := eng.CacheLimits()
	return DatasetStats{
		Name:       name,
		Open:       true,
		Options:    eng.Len(),
		Dim:        eng.Dim(),
		Cache:      eng.CacheStats(),
		Persist:    eng.PersistStats(),
		MaxConfigs: maxConfigs,
	}
}

// Stats snapshots every tenant, sorted by name. Evicted tenants are
// listed but not reopened.
func (r *Registry) Stats() []DatasetStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetStats, 0, len(r.tenants))
	for _, t := range r.tenants {
		ds := DatasetStats{Name: t.name, LastUse: t.lastUse, CloseErr: t.closeErr}
		if t.engine != nil {
			ds = EngineDatasetStats(t.name, t.engine)
			ds.LastUse = t.lastUse
		}
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EvictIdle closes every engine idle past the TTL right now and returns
// how many it closed; the janitor calls it periodically, and tests call
// it for determinism. Engines with in-flight Acquire holds are skipped.
// A Close error on eviction is recorded as the tenant's
// DatasetStats.CloseErr (cleared by the next successful reopen): under
// SyncAlways nothing acknowledged is at risk — every Apply fsynced
// before returning — while under SyncNone a failed final sync leaves
// the unflushed tail to the OS writeback window, exactly like the crash
// window docs/PERSISTENCE.md describes for that mode.
func (r *Registry) EvictIdle() int {
	r.mu.Lock()
	if r.closed || r.ttl <= 0 || r.root == "" {
		r.mu.Unlock()
		return 0
	}
	now := time.Now()
	var victims []*tenant
	var engines []*Engine
	for _, t := range r.tenants {
		if t.engine == nil || t.opening || t.refs > 0 || now.Sub(t.lastUse) < r.ttl {
			continue
		}
		// Busy-mark the tenant so a racing Acquire waits for this close
		// instead of reopening the directory while its flock is still
		// held; the engines close after the lock drops — a WAL fsync
		// must never stall every other tenant's Acquire.
		t.opening = true
		engines = append(engines, t.engine)
		t.engine = nil
		victims = append(victims, t)
	}
	if len(victims) > 0 {
		r.rebalanceLocked()
	}
	r.mu.Unlock()

	errs := make([]error, len(engines))
	for i, e := range engines {
		errs[i] = e.Close()
	}

	if len(victims) > 0 {
		r.mu.Lock()
		for i, t := range victims {
			t.opening = false
			t.closeErr = errs[i]
			t.ready.Broadcast()
		}
		r.mu.Unlock()
	}
	return len(victims)
}

// Close shuts the registry down: the janitor stops, in-flight opens are
// waited out, and every resident engine closes (first Close error wins).
// Further registry operations fail with ErrRegistryClosed. Close is
// idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	// Wait out in-flight opens; each sees closed on reacquiring the lock
	// and closes its own engine.
	for again := true; again; {
		again = false
		for _, t := range r.tenants {
			if t.opening {
				again = true
				t.ready.Wait()
				break
			}
		}
	}
	var err error
	for _, t := range r.tenants {
		if t.engine != nil {
			if cerr := t.engine.Close(); err == nil {
				err = cerr
			}
			t.engine = nil
		}
	}
	r.mu.Unlock()
	if r.stopJanitor != nil {
		close(r.stopJanitor)
		<-r.janitorDone
	}
	return err
}
