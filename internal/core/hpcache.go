package core

import (
	"sync"

	"toprr/internal/geom"
	"toprr/internal/topk"
)

// HyperplaneCache interns the splitting hyperplanes wHP(p_i, p_j) of
// one dataset across queries. The hyperplane depends only on the option
// pair — not on the query region or k — so an engine serving many
// queries over the same dataset recomputes each pair at most once.
// The cache is bound to its dataset at construction; solves over a
// different dataset ignore it rather than read wrong geometry. Safe for
// concurrent use.
type HyperplaneCache struct {
	scorer *topk.Scorer
	mu     sync.RWMutex
	m      map[int64]hpEntry
}

type hpEntry struct {
	hs geom.Halfspace
	ok bool // false: score functions (numerically) parallel, no cut
}

// hyperplaneCacheLimit bounds interned pairs so a long-lived engine's
// memory does not grow with query diversity (up to O(|D'|^2) pairs
// exist); beyond the limit, hyperplanes are recomputed on demand.
const hyperplaneCacheLimit = 1 << 20

// NewHyperplaneCache builds an empty cache bound to one dataset.
func NewHyperplaneCache(scorer *topk.Scorer) *HyperplaneCache {
	return &HyperplaneCache{scorer: scorer, m: make(map[int64]hpEntry)}
}

// pairKey packs an ordered option pair (the hyperplane's halfspace
// orientation depends on the order).
func pairKey(i, j int) int64 { return int64(i)<<32 | int64(uint32(j)) }

// lookup returns the cached hyperplane for the ordered pair (i, j).
func (c *HyperplaneCache) lookup(i, j int) (hpEntry, bool) {
	c.mu.RLock()
	e, ok := c.m[pairKey(i, j)]
	c.mu.RUnlock()
	return e, ok
}

// store records the hyperplane for the ordered pair (i, j), unless the
// cache is full.
func (c *HyperplaneCache) store(i, j int, e hpEntry) {
	c.mu.Lock()
	if len(c.m) < hyperplaneCacheLimit {
		c.m[pairKey(i, j)] = e
	}
	c.mu.Unlock()
}

// Len reports the number of interned hyperplanes.
func (c *HyperplaneCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
