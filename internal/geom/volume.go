package geom

import (
	"math"
	"math/rand"
	"sort"

	"toprr/internal/vec"
)

// exactVolumeMaxDim bounds the exact recursive volume computation; the
// facet recursion visits O(F^d) sub-faces in the worst case, which is
// fine for the dimensionalities where explicit oR geometry exists but
// not beyond.
const exactVolumeMaxDim = 7

// Volume returns the (hyper)volume of the polytope. Up to
// exactVolumeMaxDim dimensions it is computed exactly by recursive
// facet-pyramid decomposition (vol = Σ facet_area · height / d around
// the centroid, with facet areas computed recursively in facet-local
// coordinates); higher dimensions fall back to a Monte Carlo estimate
// over the bounding box with the given sample count and a deterministic
// seed. Volume is a reporting facility — the TopRR algorithms themselves
// never depend on it.
func (p *Polytope) Volume(mcSamples int) float64 {
	if p.IsEmpty() {
		return 0
	}
	if p.Dim <= exactVolumeMaxDim {
		return p.exactVolume()
	}
	return p.volumeMC(mcSamples)
}

// exactVolume implements the recursive facet-pyramid decomposition.
func (p *Polytope) exactVolume() float64 {
	switch p.Dim {
	case 0:
		return 0
	case 1:
		lo, hi := p.BoundingBox()
		return hi[0] - lo[0]
	case 2:
		return polygonArea(p.VertexPoints())
	}
	if len(p.Verts) <= p.Dim { // lower-dimensional: zero volume
		return 0
	}
	c := p.Centroid()
	var vol float64
	seen := make(map[string]bool)
	for _, f := range p.Facets() {
		h := f.H.Normalize()
		key := append(h.A.Clone(), h.B).Key(1e-9)
		if seen[key] { // duplicated bounding halfspace: count once
			continue
		}
		seen[key] = true
		height := math.Abs(h.Eval(c))
		if height < Eps {
			continue
		}
		facetPoly := p.facetPolytope(f, h)
		if facetPoly == nil {
			continue
		}
		vol += facetPoly.exactVolume() * height / float64(p.Dim)
	}
	return vol
}

// facetPolytope builds the (Dim-1)-dimensional polytope of a facet in
// facet-local orthonormal coordinates: vertices are projected, and every
// other bounding halfspace is re-expressed in the local frame.
func (p *Polytope) facetPolytope(f Facet, h Halfspace) *Polytope {
	if len(f.VertexIx) < p.Dim {
		return nil
	}
	basis := vec.OrthonormalBasisOrthogonalTo(h.A, Eps)
	origin := p.Verts[f.VertexIx[0]].Point
	pts := make([]vec.Vector, 0, len(f.VertexIx))
	for _, vi := range f.VertexIx {
		pts = append(pts, vec.ProjectToBasis(p.Verts[vi].Point.Sub(origin), basis))
	}
	var hs []Halfspace
	for _, other := range p.HS {
		// Constraint other.A·x >= other.B restricted to the facet plane
		// x = origin + Σ t_i basis_i becomes a·t >= b with
		// a_i = other.A·basis_i and b = other.B - other.A·origin.
		a := vec.New(len(basis))
		for i, bvec := range basis {
			a[i] = other.A.Dot(bvec)
		}
		if a.NormInf() < Eps {
			continue // parallel to the facet (e.g. the facet itself)
		}
		hs = append(hs, Halfspace{A: a, B: other.B - other.A.Dot(origin)})
	}
	return newFromParts(p.Dim-1, hs, pts)
}

// polygonArea computes the area of the convex hull of the given coplanar
// 2-D points by sorting them around their centroid and applying the
// shoelace formula.
func polygonArea(pts []vec.Vector) float64 {
	if len(pts) < 3 {
		return 0
	}
	c := vec.Centroid(pts)
	ordered := append([]vec.Vector(nil), pts...)
	sort.Slice(ordered, func(i, j int) bool {
		ai := math.Atan2(ordered[i][1]-c[1], ordered[i][0]-c[0])
		aj := math.Atan2(ordered[j][1]-c[1], ordered[j][0]-c[0])
		return ai < aj
	})
	var area float64
	for i := range ordered {
		a, b := ordered[i], ordered[(i+1)%len(ordered)]
		area += a[0]*b[1] - b[0]*a[1]
	}
	return math.Abs(area) / 2
}

// volumeMC estimates the volume by rejection sampling over the bounding
// box with a fixed seed for reproducibility.
func (p *Polytope) volumeMC(samples int) float64 {
	if samples <= 0 {
		samples = 20000
	}
	lo, hi := p.BoundingBox()
	boxVol := 1.0
	for j := range lo {
		boxVol *= hi[j] - lo[j]
	}
	if boxVol <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(1))
	hit := 0
	x := vec.New(p.Dim)
	for s := 0; s < samples; s++ {
		for j := range x {
			x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		if p.Contains(x) {
			hit++
		}
	}
	return boxVol * float64(hit) / float64(samples)
}
