package toprr

import (
	"context"
	"math/rand"

	"toprr/internal/core"
	"toprr/internal/geom"
	"toprr/internal/lp"
	"toprr/internal/qp"
	"toprr/internal/store"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Core vocabulary, re-exported so callers never import internal/core.
type (
	// Problem is a TopRR instance: a dataset, a rank threshold k and a
	// convex preference region wR.
	Problem = core.Problem
	// Options tunes a solve; the zero value runs the paper's defaults.
	Options = core.Options
	// Result is the output of a TopRR solve.
	Result = core.Result
	// Stats is solver instrumentation.
	Stats = core.Stats
	// Algorithm selects a TopRR solver (PAC, TAS or TASStar).
	Algorithm = core.Algorithm
	// ImpactVertex is an element of Vall.
	ImpactVertex = core.ImpactVertex
	// Region is oR in H-representation, for downstream constraining.
	Region = core.Region
	// MarketImpactResult is the outcome of the budgeted market-impact
	// search.
	MarketImpactResult = core.MarketImpactResult
	// Prefilter is the candidate-filtering pipeline stage.
	Prefilter = core.Prefilter
	// Assembler is the oR-assembly pipeline stage.
	Assembler = core.Assembler
	// Traversal selects the region scheduling order of the partition
	// stage.
	Traversal = core.Traversal
)

// The three TopRR algorithms of the paper.
const (
	PAC     = core.PAC
	TAS     = core.TAS
	TASStar = core.TASStar
)

// MaxShards bounds the shard count of a sharded solve plane
// (WithShards, Registry.CreateWithShards).
const MaxShards = topk.MaxShards

// ShardStat is one shard's share of a solve's work (Stats.ShardStats).
type ShardStat = core.ShardStat

// ParallelClipAssembler is the sharded merge stage: per-shard
// constraint chunks clipped concurrently, then intersected into the
// final region. Sharded engines install it by default; set it
// explicitly to use the sharded merge with package-level Solve.
type ParallelClipAssembler = core.ParallelClipAssembler

// Versioned-store vocabulary, re-exported so callers never import
// internal/store. An Engine's dataset is a sequence of generations;
// Apply publishes a new one, Snapshot pins one for reading.
type (
	// Generation numbers dataset versions (the first is 1).
	Generation = store.Generation
	// Snapshot is an immutable view of one dataset generation.
	Snapshot = store.Snapshot
	// Op is one dataset mutation (insert, delete or update).
	Op = store.Op
	// OpKind discriminates dataset mutations.
	OpKind = store.OpKind
	// AppliedOp is one entry of the engine's op log.
	AppliedOp = store.AppliedOp
	// PersistConfig tunes a durable engine (WithPersistenceConfig):
	// data directory, WAL sync mode, compaction thresholds.
	PersistConfig = store.PersistConfig
	// PersistStats reports the durable layer's state (Engine.PersistStats).
	PersistStats = store.PersistStats
	// SyncMode selects the WAL durability level of a durable engine.
	SyncMode = store.SyncMode
)

// The three dataset mutations of Engine.Apply.
const (
	OpInsert = store.OpInsert
	OpDelete = store.OpDelete
	OpUpdate = store.OpUpdate
)

// The WAL sync modes of a durable engine: SyncAlways fsyncs every Apply
// before it returns; SyncNone leaves flushing to the OS page cache.
const (
	SyncAlways = store.SyncAlways
	SyncNone   = store.SyncNone
)

// ParseSyncMode maps a flag value ("always", "none") to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) { return store.ParseSyncMode(s) }

// HasPersistentState reports whether dir already holds a recoverable
// engine (OpenEngine will then ignore its bootstrap dataset), so
// callers can skip loading or generating one. A missing directory is
// simply empty state.
func HasPersistentState(dir string) (bool, error) { return store.HasState(dir) }

// ValidateDatasetName reports whether name is usable as a Registry
// dataset name (1-64 characters of [a-zA-Z0-9._-], starting with a
// letter or digit — a safe path component).
func ValidateDatasetName(name string) error { return store.ValidateDatasetName(name) }

// CheckDataset validates a bootstrap dataset — non-empty, consistent
// dimensions, components finite and in [0,1] — without building
// anything, so a front end can separate a caller's bad dataset (reject
// the request) from a server-side failure to store a good one.
func CheckDataset(pts []vec.Vector) error { return store.CheckDataset(pts) }

// MigrateLegacyLayout upgrades a pre-tenancy data directory (WAL and
// snapshots directly under root, as a single-dataset engine wrote them)
// into the registry layout by moving its files into <root>/<name>/. It
// reports whether a migration happened; a root already in registry
// layout is left untouched.
func MigrateLegacyLayout(root, name string) (bool, error) {
	return store.MigrateLegacyLayout(root, name)
}

// ErrClosed is returned by Engine.Apply after Engine.Close.
var ErrClosed = store.ErrClosed

// ErrDurability marks Apply failures where the batch validated fine but
// could not be write-ahead-logged (a disk fault): the dataset is
// unchanged and the error is the server's, not the request's.
var ErrDurability = store.ErrDurability

// Insert builds an op appending option p (a vendor ships a product).
func Insert(p vec.Vector) Op { return store.Insert(p) }

// Delete builds an op removing option i (a vendor withdraws a product).
// The last option moves into slot i so indices stay dense.
func Delete(i int) Op { return store.Delete(i) }

// Update builds an op replacing option i with p (a vendor upgrades a
// product).
func Update(i int, p vec.Vector) Op { return store.Update(i, p) }

// Region traversal orders for Options.Traversal.
const (
	DepthFirst    = core.DepthFirst
	BreadthFirst  = core.BreadthFirst
	PriorityOrder = core.PriorityOrder
)

// Pipeline stage strategies for Options.Prefilter.
type (
	// SkybandPrefilter is the default r-skyband candidate filter.
	SkybandPrefilter = core.SkybandPrefilter
	// UTKPrefilter computes the minimal candidate set via kIPR
	// partitioning (slower, smallest |D'|).
	UTKPrefilter = core.UTKPrefilter
	// NoPrefilter keeps every option active.
	NoPrefilter = core.NoPrefilter
	// ClipAssembler is the default incremental-clipping assembler.
	ClipAssembler = core.ClipAssembler
)

// NewProblem assembles a TopRR instance over the given options.
func NewProblem(pts []vec.Vector, k int, wr *geom.Polytope) Problem {
	return core.NewProblem(pts, k, wr)
}

// PrefBox builds a preference region wR as the axis-aligned box
// [lo, hi] in W, intersected with the validity constraints of the
// preference space.
func PrefBox(lo, hi vec.Vector) *geom.Polytope { return core.PrefBox(lo, hi) }

// Solve runs one TopRR query through the full pipeline, honoring
// cancellation and deadlines on ctx.
func Solve(ctx context.Context, p Problem, o Options) (*Result, error) {
	return core.SolveContext(ctx, p, o)
}

// SolveUnion solves TopRR for a non-convex clientele given as a union
// of convex preference regions: each piece is solved concurrently and
// the option regions are intersected (Section 3.1 of the paper).
func SolveUnion(ctx context.Context, pts []vec.Vector, k int, pieces []*geom.Polytope, opt Options) (Region, []*Result, error) {
	return core.SolveUnionContext(ctx, pts, k, pieces, opt)
}

// ReverseTopK computes the monochromatic reverse top-k of option pi
// over wR: the maximal subregions of wR where pi ranks among the top-k.
func ReverseTopK(ctx context.Context, pts []vec.Vector, k int, wr *geom.Polytope, pi int, opt Options) ([]*geom.Polytope, error) {
	return core.ReverseTopKContext(ctx, pts, k, wr, pi, opt)
}

// MarketImpact solves the budgeted market-impact search of Section 3.1:
// the smallest k such that option p can be upgraded within budget to
// rank among the top-k everywhere in wR.
func MarketImpact(ctx context.Context, pts []vec.Vector, wr *geom.Polytope, p vec.Vector, budget float64, maxK int, opt Options) (*MarketImpactResult, error) {
	return core.MarketImpactContext(ctx, pts, wr, p, budget, maxK, opt)
}

// UTKFilter computes exactly the options appearing in at least one
// top-k result over wR (the fourth filtering alternative of Section
// 6.3).
func UTKFilter(ctx context.Context, pts []vec.Vector, k int, wr *geom.Polytope) ([]int, error) {
	return core.UTKFilterContext(ctx, pts, k, wr)
}

// FilterSizes reports the candidate-set sizes behind Figure 12: |D'|
// after the r-skyband filter alone, and after root-level Lemma 5.
func FilterSizes(p Problem) (rSkyband, withLemma5 int) { return core.FilterSizes(p) }

// CostOptimalNew returns the cheapest placement in oR under the
// quadratic manufacturing-cost model.
func CostOptimalNew(or *geom.Polytope) (vec.Vector, error) { return core.CostOptimalNew(or) }

// Enhance returns the minimum-modification upgrade of an existing
// option p into oR.
func Enhance(or *geom.Polytope, p vec.Vector) (vec.Vector, float64, error) {
	return core.Enhance(or, p)
}

// Rank returns the rank a new option placed at o would attain under
// reduced weight vector w — the brute-force oracle for validation.
func Rank(scorer *topk.Scorer, w, o vec.Vector) int { return core.Rank(scorer, w, o) }

// VerifyTopRanking samples the preference region and checks that o
// ranks within the top k at every sample; it returns the first
// violating weight vector, or nil when all samples pass.
func VerifyTopRanking(p Problem, o vec.Vector, samples int, rng *rand.Rand) vec.Vector {
	return core.VerifyTopRanking(p, o, samples, rng)
}

// Counters is a snapshot of process-wide work counters, for benchmark
// and service instrumentation.
type Counters struct {
	RegionsProcessed int64 // regions examined by the partition stage
	LPSolves         int64 // simplex invocations
	QPSolves         int64 // quadratic-program solves
}

// ReadCounters snapshots the process-wide work counters. Deltas between
// two snapshots attribute work to the interval.
func ReadCounters() Counters {
	return Counters{
		RegionsProcessed: core.RegionsProcessed(),
		LPSolves:         lp.Solves(),
		QPSolves:         qp.Solves(),
	}
}

// Sub returns the counter delta c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		RegionsProcessed: c.RegionsProcessed - prev.RegionsProcessed,
		LPSolves:         c.LPSolves - prev.LPSolves,
		QPSolves:         c.QPSolves - prev.QPSolves,
	}
}
