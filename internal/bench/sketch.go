package bench

// The sketch-gate experiment: a dominated-heavy market (a small elite
// every preference ranks above a large mass) drives the two sketch
// surfaces per shard count. The exactness half solves pinned query
// regions gated and ungated and counts fingerprint divergences — the
// bit-identity contract says the count is always zero. The latency half
// times warm certified ApproxRank against uncached exact top-k at the
// same pinned preferences. Rows are gated by cmd/benchrunner -compare:
// zero violations, a nonzero certified-skip count, and approximate
// latency strictly below exact.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// SketchShardGrid is the shard counts the sketch experiment sweeps.
var SketchShardGrid = []int{1, 2, 8}

const (
	sketchBenchK     = DefaultK
	sketchElite      = 32  // options every preference ranks above the mass
	sketchPrefs      = 32  // pinned preferences cycled by the timing loops
	sketchApproxIter = 512 // ApproxRank calls timed
	sketchExactIter  = 64  // uncached exact top-k calls timed
)

// sketchMarket builds the dominated-heavy dataset: n-sketchElite mass
// options capped at 0.6 per coordinate under an elite inside [0.7,1]^d,
// shuffled so slot order carries no signal.
func sketchMarket(n, d int) []vec.Vector {
	rng := rand.New(rand.NewSource(81))
	pts := make([]vec.Vector, 0, n)
	for i := 0; i < n-sketchElite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64() * 0.6
		}
		pts = append(pts, p)
	}
	for i := 0; i < sketchElite; i++ {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.7 + rng.Float64()*0.3
		}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// sketchPrefSet draws the pinned reduced preferences both timing loops
// replay.
func sketchPrefSet(d int) []vec.Vector {
	rng := rand.New(rand.NewSource(82))
	ws := make([]vec.Vector, sketchPrefs)
	for i := range ws {
		w := vec.New(d - 1)
		for j := range w {
			w[j] = rng.Float64() / float64(d)
		}
		ws[i] = w
	}
	return ws
}

// Sketch measures the sketch tier per shard count: gate certifications
// and the options they excuse, gated-vs-ungated exactness violations
// (always zero), and certified ApproxRank latency against uncached
// exact top-k.
func Sketch(s Scale) []*Table {
	d := DefaultD
	pts := sketchMarket(s.n(DefaultN), d)
	ws := sketchPrefSet(d)
	regions := s.Regions(d-1, DefaultSigma, 1, 83)
	ctx := context.Background()

	t := &Table{
		ID: "Sketch",
		Caption: fmt.Sprintf("sketch gate and approximate fast path, dominated-heavy n=%s d=%d k=%d, %d regions, %d/%d timed calls",
			humanN(len(pts)), d, sketchBenchK, len(regions), sketchApproxIter, sketchExactIter),
		Header: []string{"shards", "gate hits", "skipped", "violations", "certified", "fallbacks", "approx ns", "exact ns", "speedup"},
	}

	for _, shards := range SketchShardGrid {
		engine := toprr.NewEngine(pts, toprr.WithShards(shards))
		ungated := toprr.Options{Alg: toprr.TASStar, DisableSketchGate: true}

		violations := 0
		for _, wr := range regions {
			q := toprr.Query{K: sketchBenchK, WR: wr}
			snap := engine.Snapshot()
			got, err := engine.SolveAt(ctx, snap, q)
			if err != nil {
				panic("bench: gated sketch solve failed: " + err.Error())
			}
			q.Options = &ungated
			want, err := engine.SolveAt(ctx, snap, q)
			if err != nil {
				panic("bench: ungated sketch solve failed: " + err.Error())
			}
			if toprr.RegionFingerprint(got) != toprr.RegionFingerprint(want) ||
				len(got.ORConstraints) != len(want.ORConstraints) {
				violations++
			}
		}
		cs := engine.CacheStats()
		gateHits, skipped := cs.SketchGateHits, cs.SketchCertifiedSkips

		// Warm both paths, then time them over the same pinned preferences.
		certified, fallbacks := 0, 0
		for _, w := range ws {
			est, err := engine.ApproxRank(w, sketchBenchK)
			if err != nil {
				panic("bench: ApproxRank failed: " + err.Error())
			}
			if est.Certified {
				certified++
			} else {
				fallbacks++
			}
		}
		start := time.Now()
		for i := 0; i < sketchApproxIter; i++ {
			if _, err := engine.ApproxRank(ws[i%len(ws)], sketchBenchK); err != nil {
				panic("bench: ApproxRank failed: " + err.Error())
			}
		}
		approxNS := time.Since(start).Nanoseconds() / sketchApproxIter

		sc := engine.Snapshot().Scorer
		start = time.Now()
		for i := 0; i < sketchExactIter; i++ {
			sc.TopK(ws[i%len(ws)], sketchBenchK, nil)
		}
		exactNS := time.Since(start).Nanoseconds() / sketchExactIter

		speedup := float64(exactNS) / float64(approxNS)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", gateHits),
			fmt.Sprintf("%d", skipped),
			fmt.Sprintf("%d", violations),
			fmt.Sprintf("%d", certified),
			fmt.Sprintf("%d", fallbacks),
			fmt.Sprintf("%d", approxNS),
			fmt.Sprintf("%d", exactNS),
			fmt.Sprintf("%.1f", speedup),
		})
	}

	return []*Table{t}
}
