// Command toprrd is the TopRR serving daemon: it loads (or generates) a
// dataset, builds an engine over the versioned store, and serves a JSON
// HTTP API until interrupted, then drains in-flight requests and exits.
//
//	toprrd -data laptops.csv -addr :8080
//	toprrd -dist ANTI -n 50000 -d 4 -req-timeout 10s
//	toprrd -data-dir /var/lib/toprrd -dist IND -n 50000 -d 4
//
// Endpoints:
//
//	POST /v1/solve   one TopRR query            {"k":3,"lo":[..],"hi":[..]}
//	POST /v1/batch   many queries, one snapshot {"queries":[{...},...]}
//	POST /v1/ops     dataset mutations          {"ops":[{"op":"insert","point":[..]},...]}
//	GET  /v1/ops     applied-ops log            ?since=<seq>
//	GET  /v1/stats   generation, cache, WAL and work counters
//
// Every query pins the dataset generation current at arrival; mutations
// publish new generations without disturbing in-flight solves.
//
// With -data-dir the daemon is durable: mutations are write-ahead-logged
// (fsynced per batch unless -wal-sync none) and compacted into base
// snapshots, and a restart replays the log — the daemon resumes at the
// generation it crashed at, not at the -data/-dist bootstrap, which then
// seeds only a first run over an empty directory. docs/PERSISTENCE.md
// specifies the recovery contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"toprr/internal/dataset"
	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toprrd:", err)
	os.Exit(1)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		data         = flag.String("data", "", "CSV dataset file (default: generate synthetic)")
		dist         = flag.String("dist", "IND", "synthetic distribution when -data is absent")
		n            = flag.Int("n", 100000, "synthetic dataset size")
		d            = flag.Int("d", 4, "synthetic dimensionality")
		seed         = flag.Int64("seed", 7, "synthetic generator seed")
		reqTimeout   = flag.Duration("req-timeout", 30*time.Second, "per-request deadline (0 = none)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		dataDir      = flag.String("data-dir", "", "durable data directory: WAL + base snapshots; empty = in-memory")
		walSync      = flag.String("wal-sync", "always", "WAL durability: always (fsync per batch) or none (OS page cache)")
		compactBytes = flag.Int64("compact-bytes", 0, "WAL bytes triggering snapshot/compaction (0 = default 64MiB)")
		compactOps   = flag.Int("compact-ops", 0, "WAL ops triggering snapshot/compaction (0 = default 32768)")
	)
	flag.Parse()

	var engineOpts []toprr.EngineOption
	hasState := false
	if *dataDir != "" {
		mode, err := toprr.ParseSyncMode(*walSync)
		if err != nil {
			fatal(fmt.Errorf("-wal-sync: %w", err))
		}
		engineOpts = append(engineOpts, toprr.WithPersistenceConfig(toprr.PersistConfig{
			Dir:          *dataDir,
			Sync:         mode,
			CompactBytes: *compactBytes,
			CompactOps:   *compactOps,
		}))
		// Recovery ignores the bootstrap dataset, so when the directory
		// already holds recoverable state, don't generate or parse one.
		st, err := toprr.HasPersistentState(*dataDir)
		if err != nil {
			fatal(err)
		}
		hasState = st
	}
	name := "recovered:" + *dataDir
	var pts []vec.Vector
	if !hasState {
		var ds *dataset.Dataset
		if *data != "" {
			f, err := os.Open(*data)
			if err != nil {
				fatal(err)
			}
			ds, err = dataset.ReadCSV(f, *data)
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else {
			dd, err := dataset.ParseDistribution(*dist)
			if err != nil {
				fatal(err)
			}
			if *n <= 0 || *d < 2 {
				fatal(fmt.Errorf("need -n > 0 and -d >= 2, got -n=%d -d=%d", *n, *d))
			}
			ds = dataset.Generate(dd, *n, *d, *seed)
		}
		name, pts = ds.Name, ds.Pts
	}
	engine, err := toprr.OpenEngine(pts, engineOpts...)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		ps := engine.PersistStats()
		if hasState {
			fmt.Fprintf(os.Stderr, "toprrd: data dir %s recovered to generation %d (wal %d bytes in %d segment(s), base snapshot at generation %d)\n",
				*dataDir, engine.Generation(), ps.WALBytes, ps.WALSegments, ps.LastCompaction)
		} else {
			fmt.Fprintf(os.Stderr, "toprrd: data dir %s initialized (base snapshot at generation %d)\n",
				*dataDir, ps.LastCompaction)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(engine, *reqTimeout),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "toprrd: serving %s (%d options x %d attributes, generation %d) on %s\n",
		name, engine.Len(), engine.Dim(), engine.Generation(), ln.Addr())
	if err := run(ctx, srv, ln, *drain); err != nil {
		engine.Close()
		fatal(err)
	}
	if err := engine.Close(); err != nil {
		fatal(fmt.Errorf("close: %w", err))
	}
	fmt.Fprintln(os.Stderr, "toprrd: drained, bye")
}

// run serves until the listener fails or ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get the drain
// budget to finish.
func run(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
