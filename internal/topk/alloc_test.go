package topk

// CI-enforced zero-allocation invariants for warm top-k lookups (see
// docs/PERFORMANCE.md): once a vertex's result is memoized, serving it
// again allocates nothing — the quantized uint64 hash key replaced the
// per-lookup string key.

import (
	"math/rand"
	"testing"

	"toprr/internal/race"
	"toprr/internal/vec"
)

func allocDataset(n, d int, seed int64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("alloc counts are inflated under -race")
	}
}

func TestAllocsWarmCacheLookup(t *testing.T) {
	skipUnderRace(t)
	c := NewCache(NewScorer(allocDataset(500, 4, 1)), 10, nil)
	w := vec.Of(0.3, 0.25, 0.2)
	c.Get(w) // warm
	allocs := testing.AllocsPerRun(100, func() {
		if r := c.Get(w); r == nil {
			t.Fatal("nil result")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Cache.Get allocates %.1f per run, want 0", allocs)
	}
}

func TestAllocsWarmShardedCacheLookup(t *testing.T) {
	skipUnderRace(t)
	c := NewShardedCache(NewScorer(allocDataset(500, 4, 2)), 10, nil, 4, 0, nil)
	w := vec.Of(0.3, 0.25, 0.2)
	c.Get(w) // warm the per-shard partials and the merged memo
	allocs := testing.AllocsPerRun(100, func() {
		if r := c.Get(w); r == nil {
			t.Fatal("nil result")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sharded Cache.Get allocates %.1f per run, want 0", allocs)
	}
}

// TestScoreIntoMatchesScorePoint pins the SoA scoring path to the
// scalar reference bit for bit, for both full-dataset and member-subset
// scoring.
func TestScoreIntoMatchesScorePoint(t *testing.T) {
	pts := allocDataset(300, 5, 3)
	s := NewScorer(pts)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		w := make(vec.Vector, 4)
		for j := range w {
			w[j] = rng.Float64() / 4
		}
		dst := make([]float64, len(pts))
		s.scoreInto(w, nil, dst)
		for i := range pts {
			if want := ScorePoint(w, pts[i]); dst[i] != want {
				t.Fatalf("full: score[%d] = %v, want %v", i, dst[i], want)
			}
		}
		members := []int{7, 3, 299, 0, 158}
		sub := make([]float64, len(members))
		s.scoreInto(w, members, sub)
		for t2, idx := range members {
			if want := ScorePoint(w, pts[idx]); sub[t2] != want {
				t.Fatalf("subset: score[%d] = %v, want %v", idx, sub[t2], want)
			}
		}
	}
}
