// Package oamap provides a small open-addressed hash map keyed by
// pre-hashed uint64 identities (vec.Vector.Hash and friends). The solve
// hot path interns hyperplanes and deduplicates impact vertices at high
// rates; Go's builtin map is close to optimal for lookups but its
// iteration order is randomized and its buckets churn pointers, so the
// hot structures use this map instead: linear probing over flat slices,
// no per-entry allocation after growth, and deterministic Range order
// (insertion order) so consumers that enumerate entries stay
// reproducible run to run.
//
// Keys are assumed to already be well-mixed hashes; the map applies a
// fixed multiplicative scramble before probing so adversarially-aligned
// keys still spread. The zero Map is ready to use. Maps are not
// goroutine-safe; callers provide their own locking (the hyperplane
// cache stripes do).
package oamap

const (
	slotEmpty uint8 = iota
	slotFull
	slotTombstone
)

// minCapacity is the table size allocated on first insert.
const minCapacity = 16

// maxLoadNum/maxLoadDen give the ~70% load factor beyond which the
// table grows (counting tombstones, which also lengthen probe chains).
const (
	maxLoadNum = 7
	maxLoadDen = 10
)

// Map is an open-addressed hash map from uint64 keys to values of type
// V. The zero value is an empty map ready for use.
type Map[V any] struct {
	states []uint8
	keys   []uint64
	vals   []V
	// order holds the insertion sequence of live keys (with lazily
	// compacted deletions) so Range is deterministic.
	order []uint64
	// live is the number of full slots; used counts full + tombstone
	// slots for the growth trigger.
	live int
	used int
	// dead counts deletions not yet compacted out of order.
	dead int
}

// scramble finishes the caller-provided hash with a Fibonacci-style
// multiply so linear probing sees well-spread high bits even when keys
// share low-bit structure.
func scramble(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	return k ^ (k >> 29)
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.live }

// Get returns the value stored under key and whether it was present.
func (m *Map[V]) Get(key uint64) (V, bool) {
	var zero V
	if m.live == 0 {
		return zero, false
	}
	mask := uint64(len(m.states) - 1)
	for i := scramble(key) & mask; ; i = (i + 1) & mask {
		switch m.states[i] {
		case slotEmpty:
			return zero, false
		case slotFull:
			if m.keys[i] == key {
				return m.vals[i], true
			}
		}
	}
}

// Put stores value under key, replacing any existing entry.
func (m *Map[V]) Put(key uint64, value V) {
	if len(m.states) == 0 || (m.used+1)*maxLoadDen > len(m.states)*maxLoadNum {
		m.grow()
	}
	mask := uint64(len(m.states) - 1)
	first := -1
	for i := scramble(key) & mask; ; i = (i + 1) & mask {
		switch m.states[i] {
		case slotEmpty:
			if first >= 0 {
				i = uint64(first) // reuse the tombstone seen earlier
			} else {
				m.used++
			}
			m.states[i] = slotFull
			m.keys[i] = key
			m.vals[i] = value
			m.live++
			m.order = append(m.order, key)
			return
		case slotTombstone:
			if first < 0 {
				first = int(i)
			}
		case slotFull:
			if m.keys[i] == key {
				m.vals[i] = value
				return
			}
		}
	}
}

// Delete removes key if present and reports whether it was.
func (m *Map[V]) Delete(key uint64) bool {
	if m.live == 0 {
		return false
	}
	var zero V
	mask := uint64(len(m.states) - 1)
	for i := scramble(key) & mask; ; i = (i + 1) & mask {
		switch m.states[i] {
		case slotEmpty:
			return false
		case slotFull:
			if m.keys[i] == key {
				m.states[i] = slotTombstone
				m.vals[i] = zero
				m.live--
				m.dead++
				// Compact order once deletions dominate it, keeping
				// Range linear amortized.
				if m.dead > len(m.order)/2 {
					m.compactOrder()
				}
				return true
			}
		}
	}
}

// Range calls fn for each live entry in insertion order, stopping early
// if fn returns false. fn must not mutate the map. If deletions are
// pending, the insertion log is compacted first so a key deleted and
// re-inserted is visited exactly once.
func (m *Map[V]) Range(fn func(key uint64, value V) bool) {
	if m.dead > 0 {
		m.compactOrder()
	}
	for _, k := range m.order {
		if v, ok := m.Get(k); ok {
			if !fn(k, v) {
				return
			}
		}
	}
}

// compactOrder drops deleted (and superseded duplicate) keys from the
// insertion log, preserving first-insertion order of live keys.
func (m *Map[V]) compactOrder() {
	kept := m.order[:0]
	emitted := make(map[uint64]struct{}, m.live)
	for _, k := range m.order {
		if _, dup := emitted[k]; dup {
			continue
		}
		if _, ok := m.Get(k); ok {
			emitted[k] = struct{}{}
			kept = append(kept, k)
		}
	}
	m.order = kept
	m.dead = 0
}

// grow doubles the table (or allocates it) and rehashes live entries.
func (m *Map[V]) grow() {
	newCap := minCapacity
	if len(m.states) > 0 {
		newCap = len(m.states) * 2
		// If most slots are tombstones, rehashing into the same size
		// is enough; avoid unbounded doubling under churn.
		if m.live*maxLoadDen <= len(m.states)*maxLoadNum/2 {
			newCap = len(m.states)
		}
	}
	oldStates, oldKeys, oldVals := m.states, m.keys, m.vals
	m.states = make([]uint8, newCap)
	m.keys = make([]uint64, newCap)
	m.vals = make([]V, newCap)
	m.used = 0
	mask := uint64(newCap - 1)
	for i, st := range oldStates {
		if st != slotFull {
			continue
		}
		k := oldKeys[i]
		for j := scramble(k) & mask; ; j = (j + 1) & mask {
			if m.states[j] == slotEmpty {
				m.states[j] = slotFull
				m.keys[j] = k
				m.vals[j] = oldVals[i]
				m.used++
				break
			}
		}
	}
	if m.dead > 0 {
		m.compactOrder()
	}
}
