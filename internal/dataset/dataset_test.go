package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"toprr/internal/vec"
)

type vecAlias = vec.Vector

func of(xs ...float64) vec.Vector { return vec.Of(xs...) }

// correlation returns the Pearson correlation of attributes a and b.
func correlation(d *Dataset, a, b int) float64 {
	n := float64(d.Len())
	var sa, sb, saa, sbb, sab float64
	for _, p := range d.Pts {
		sa += p[a]
		sb += p[b]
		saa += p[a] * p[a]
		sbb += p[b] * p[b]
		sab += p[a] * p[b]
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	return cov / math.Sqrt(va*vb)
}

func TestGenerateShapes(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated} {
		d := Generate(dist, 5000, 4, 42)
		if d.Len() != 5000 || d.Dim() != 4 {
			t.Fatalf("%v: wrong shape %dx%d", dist, d.Len(), d.Dim())
		}
		for _, p := range d.Pts {
			for _, x := range p {
				if x < 0 || x > 1 {
					t.Fatalf("%v: value %v out of unit range", dist, x)
				}
			}
		}
	}
}

func TestDistributionCorrelationCharacter(t *testing.T) {
	ind := Generate(Independent, 20000, 3, 7)
	cor := Generate(Correlated, 20000, 3, 7)
	anti := Generate(Anticorrelated, 20000, 3, 7)
	cInd := correlation(ind, 0, 1)
	cCor := correlation(cor, 0, 1)
	cAnti := correlation(anti, 0, 1)
	if math.Abs(cInd) > 0.05 {
		t.Errorf("IND correlation = %v, want ~0", cInd)
	}
	if cCor < 0.6 {
		t.Errorf("COR correlation = %v, want strongly positive", cCor)
	}
	if cAnti > -0.2 {
		t.Errorf("ANTI correlation = %v, want clearly negative", cAnti)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Anticorrelated, 100, 4, 99)
	b := Generate(Anticorrelated, 100, 4, 99)
	for i := range a.Pts {
		if !a.Pts[i].Equal(b.Pts[i], 0) {
			t.Fatal("same seed must give identical data")
		}
	}
	c := Generate(Anticorrelated, 100, 4, 100)
	same := true
	for i := range a.Pts {
		if !a.Pts[i].Equal(c.Pts[i], 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestSimulatedRealDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulated datasets")
	}
	cases := []struct {
		d    *Dataset
		n, k int
	}{
		{Hotel(), 418843, 4},
		{House(), 315265, 6},
		{NBA(), 21960, 8},
	}
	for _, c := range cases {
		if c.d.Len() != c.n || c.d.Dim() != c.k {
			t.Errorf("%s: shape %dx%d, want %dx%d", c.d.Name, c.d.Len(), c.d.Dim(), c.n, c.k)
		}
	}
	// NBA must be clearly more correlated than HOTEL (Table 6 character).
	nba := NBA()
	hotel := Hotel()
	if correlation(nba, 0, 1) <= correlation(hotel, 0, 1) {
		t.Error("NBA should be more correlated than HOTEL")
	}
}

func TestLaptops(t *testing.T) {
	d := Laptops()
	if d.Len() != 149 || d.Dim() != 2 {
		t.Fatalf("laptops shape %dx%d", d.Len(), d.Dim())
	}
	found := 0
	for i := range d.Pts {
		switch d.Label(i) {
		case "Apple MacBook Pro", "Acer Predator 15", "Lenovo ThinkPad X201", "Asus Chromebook Flip":
			found++
		}
	}
	if found != 4 {
		t.Errorf("pinned laptops found = %d, want 4", found)
	}
	if d.Label(200) != "p201" {
		t.Errorf("fallback label = %q", d.Label(200))
	}
}

func TestNormalize(t *testing.T) {
	d := &Dataset{Pts: []vecAlias{of(2, 10), of(4, 20), of(6, 10)}}
	d.Normalize()
	if !d.Pts[0].Equal(of(0, 0), 1e-12) || !d.Pts[1].Equal(of(0.5, 1), 1e-12) || !d.Pts[2].Equal(of(1, 0), 1e-12) {
		t.Errorf("normalized = %v", d.Pts)
	}
	// Constant attribute maps to zero.
	c := &Dataset{Pts: []vecAlias{of(5, 1), of(5, 2)}}
	c.Normalize()
	if c.Pts[0][0] != 0 || c.Pts[1][0] != 0 {
		t.Error("constant attribute should normalize to 0")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Laptops()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dim() != d.Dim() {
		t.Fatalf("round trip shape %dx%d", got.Len(), got.Dim())
	}
	for i := range d.Pts {
		if !d.Pts[i].Equal(got.Pts[i], 1e-12) {
			t.Fatalf("row %d: %v != %v", i, d.Pts[i], got.Pts[i])
		}
		if d.Label(i) != got.Label(i) {
			t.Fatalf("row %d label %q != %q", i, d.Label(i), got.Label(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), "bad"); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := ReadCSV(strings.NewReader("x\n"), "bad"); err == nil {
		t.Error("single non-numeric field should error")
	}
	d, err := ReadCSV(strings.NewReader("# comment\n\n0.1,0.2\n"), "ok")
	if err != nil || d.Len() != 1 {
		t.Errorf("comment/blank handling wrong: %v %v", d, err)
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]Distribution{"ind": Independent, "COR": Correlated, " anti ": Anticorrelated} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("zipf"); err == nil {
		t.Error("unknown distribution should error")
	}
	if Independent.String() != "IND" || Correlated.String() != "COR" || Anticorrelated.String() != "ANTI" {
		t.Error("distribution names wrong")
	}
}

func TestAntiPreservesSumSpread(t *testing.T) {
	// ANTI points should concentrate near sum = d/2 with clearly more
	// spread across attributes than COR points.
	anti := Generate(Anticorrelated, 2000, 4, 3)
	var sumDev float64
	for _, p := range anti.Pts {
		sumDev += math.Abs(p.Sum() - 2)
	}
	sumDev /= float64(anti.Len())
	if sumDev > 0.35 {
		t.Errorf("ANTI mean |sum - d/2| = %v, want small", sumDev)
	}
}
