package topk

import (
	"testing"

	"toprr/internal/vec"
)

func regPts() []vec.Vector {
	return []vec.Vector{
		vec.Of(0.1, 0.9),
		vec.Of(0.5, 0.5),
		vec.Of(0.9, 0.1),
		vec.Of(0.3, 0.6),
	}
}

// TestRegistryGetFor: interned caches are handed out only to the
// registry's current generation; other scorers fall back to nil.
func TestRegistryGetFor(t *testing.T) {
	sc := NewScorerAt(regPts(), 1)
	r := NewRegistry(sc)
	c := r.GetFor(sc, 2, []int{0, 1, 2})
	if c == nil {
		t.Fatal("GetFor with the registry's own scorer returned nil")
	}
	if r.GetFor(sc, 2, []int{2, 1, 0}) != c {
		t.Error("permuted active set should share the interned cache")
	}
	other := NewScorerAt(regPts(), 2)
	if r.GetFor(other, 2, []int{0, 1, 2}) != nil {
		t.Error("GetFor with a foreign scorer must return nil")
	}
}

// TestRegistryAdvance: advancing to a new generation keeps the memoized
// results of configurations untouched by the mutation, drops
// whole-dataset and dirty-touching configurations, and leaves the old
// generation's Cache objects intact for pinned readers.
func TestRegistryAdvance(t *testing.T) {
	sc1 := NewScorerAt(regPts(), 1)
	r := NewRegistry(sc1)

	clean := r.GetFor(sc1, 2, []int{0, 1, 2}) // avoids slot 3
	dirty := r.GetFor(sc1, 2, []int{1, 3})    // touches slot 3
	whole := r.GetFor(sc1, 2, nil)            // all options
	w := vec.Of(0.4)
	clean.Get(w)
	dirty.Get(w)
	whole.Get(w)
	if r.Len() != 3 {
		t.Fatalf("interned %d configs, want 3", r.Len())
	}

	// Generation 2: slot 3 updated.
	pts := regPts()
	pts[3] = vec.Of(0.8, 0.8)
	sc2 := NewScorerAt(pts, 2)
	r.Advance(sc2, []int{3})

	if r.Len() != 1 {
		t.Fatalf("after advance %d configs survive, want 1", r.Len())
	}
	if r.Scorer() != sc2 {
		t.Error("registry did not rebind to the new scorer")
	}
	survivor := r.GetFor(sc2, 2, []int{0, 1, 2})
	if survivor == nil {
		t.Fatal("surviving config not served to the new generation")
	}
	if survivor.Len() != 1 {
		t.Errorf("survivor lost its memoized results: len=%d", survivor.Len())
	}
	if _, hit := survivor.Lookup(w); !hit {
		t.Error("carried-forward result should hit")
	}
	// The survivor is carried by pointer (its active options are
	// bit-identical across generations, so old pinned solves and new
	// solves compute the same results over it), not copied.
	if survivor != clean {
		t.Error("untouched config should be carried forward by pointer")
	}
	if clean.Scorer() != sc2 {
		t.Error("carried cache was not rebound to the new scorer")
	}
	if r.Evictions() < 2 {
		t.Errorf("evictions = %d, want >= 2 (whole-dataset + dirty configs)", r.Evictions())
	}

	// Hit/miss totals stay monotone across the advance.
	hits, misses := r.Stats()
	if hits+misses < 3 {
		t.Errorf("stats lost retired counters: hits=%d misses=%d", hits, misses)
	}
}

// TestRegistryAdvanceInsertKeepsExplicitConfigs: an insert dirties only
// the appended slot, so every explicit-active-set configuration
// survives.
func TestRegistryAdvanceInsertKeepsExplicitConfigs(t *testing.T) {
	sc1 := NewScorerAt(regPts(), 1)
	r := NewRegistry(sc1)
	c := r.GetFor(sc1, 2, []int{0, 1, 2, 3})
	c.Get(vec.Of(0.4))

	pts := append(regPts(), vec.Of(0.2, 0.2))
	sc2 := NewScorerAt(pts, 2)
	r.Advance(sc2, []int{4})

	if r.Len() != 1 {
		t.Fatalf("explicit config dropped on insert: len=%d", r.Len())
	}
	if got := r.GetFor(sc2, 2, []int{0, 1, 2, 3}); got == nil || got.Len() != 1 {
		t.Error("insert should carry the explicit config's results forward")
	}
}

// TestRegistryLimits: SetLimits caps interned configs (refusals counted
// as evictions) and per-cache entries.
func TestRegistryLimits(t *testing.T) {
	sc := NewScorerAt(regPts(), 1)
	r := NewRegistry(sc)
	r.SetLimits(1, 1)

	a := r.Get(1, []int{0, 1})
	b := r.Get(2, []int{0, 1, 2}) // over the config cap: unregistered
	if r.Len() != 1 {
		t.Fatalf("config cap not enforced: len=%d", r.Len())
	}
	if r.Get(2, []int{0, 1, 2}) == b {
		t.Error("over-cap cache should not be interned")
	}
	if r.Evictions() == 0 {
		t.Error("config-cap refusals should count as evictions")
	}

	// Entry cap: second distinct vertex is computed but not memoized.
	a.Get(vec.Of(0.3))
	a.Get(vec.Of(0.6))
	if a.Len() != 1 {
		t.Errorf("entry cap not enforced: len=%d", a.Len())
	}
	if a.Evictions() != 1 {
		t.Errorf("entry-cap refusal not counted: %d", a.Evictions())
	}
}
