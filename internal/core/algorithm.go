package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"toprr/internal/geom"
	"toprr/internal/skyband"
	"toprr/internal/topk"
	"toprr/internal/vec"
)

// Solve runs the selected TopRR algorithm and returns the maximal
// top-ranking region oR together with instrumentation. The pipeline is
// the paper's: r-skyband pre-filtering (Section 6.3), recursive
// partitioning of wR (Sections 4-5), and assembly of oR from the impact
// halfspaces at the collected vertices (Theorem 1).
func Solve(p Problem, o Options) (*Result, error) {
	start := time.Now()
	o = o.withDefaults()
	s := &solver{
		prob: p,
		opt:  o,
		rng:  rand.New(rand.NewSource(o.Seed + 1)),
		vall: make(map[string]ImpactVertex),
	}
	s.stats.InputOptions = p.Scorer.Len()

	// Fast filtering: discard options that can never rank among the
	// top-k anywhere in wR.
	pts := s.points()
	rd := skyband.NewRDomVerts(p.WR.VertexPoints())
	active := skyband.RSkyband(pts, p.K, rd)
	s.stats.FilteredOptions = len(active)
	s.stats.ProcessedMin = len(active)

	root := regionCtx{region: p.WR, cache: s.newCache(p.K, active)}
	if err := s.drive(root, start); err != nil {
		return nil, err
	}

	constraints, or := s.assembleOR(o.ORVertexBudget)
	s.stats.VallSize = len(s.vall)
	s.stats.Elapsed = time.Since(start)
	res := &Result{OR: or, ORConstraints: constraints, Vall: s.sortedVall(), Stats: s.stats, Problem: p}
	return res, nil
}

// solver carries the state of one Solve call. The mutex guards every
// shared mutable field (stats, vall, collectSets, rng) so that process()
// may run concurrently from the parallel driver's workers.
type solver struct {
	prob        Problem
	opt         Options
	mu          sync.Mutex
	rng         *rand.Rand
	vall        map[string]ImpactVertex
	stats       Stats
	collectSets map[int]bool // non-nil when the UTK filter wants top-k set members
}

// addStats applies a mutation to the stats under the solver lock.
func (s *solver) addStats(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// budgetUsed reports regions+splits so far, under the lock.
func (s *solver) budgetUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Regions + s.stats.Splits
}

// regionCtx is a preference region awaiting processing together with its
// top-k context. Lemma 5 pruning gives children of a region a fresh
// cache with a smaller active set and decremented k.
type regionCtx struct {
	region *geom.Polytope
	cache  *topk.Cache
}

// newCache builds a top-k cache honoring the DisableTopKCache ablation.
func (s *solver) newCache(k int, active []int) *topk.Cache {
	if s.opt.DisableTopKCache {
		return topk.NewPassthroughCache(s.prob.Scorer, k, active)
	}
	return topk.NewCache(s.prob.Scorer, k, active)
}

func (s *solver) points() []vec.Vector {
	pts := make([]vec.Vector, s.prob.Scorer.Len())
	for i := range pts {
		pts[i] = s.prob.Scorer.Point(i)
	}
	return pts
}

// drive processes the region tree from root until exhaustion, honoring
// the recursion and wall-clock budgets, sequentially or with a worker
// pool when Options.Workers > 1 (the parallelism direction of the
// paper's future-work section; results are identical, traversal order
// and the Seed-dependent split choices may differ).
func (s *solver) drive(root regionCtx, start time.Time) error {
	if s.opt.Workers <= 1 {
		stack := []regionCtx{root}
		for len(stack) > 0 {
			rc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := s.checkBudget(start); err != nil {
				return err
			}
			children, err := s.process(rc)
			if err != nil {
				return err
			}
			stack = append(stack, children...)
		}
		return nil
	}
	var (
		qmu      sync.Mutex
		cond     = sync.NewCond(&qmu)
		queue    = []regionCtx{root}
		inflight int
		firstErr error
	)
	worker := func() {
		for {
			qmu.Lock()
			for len(queue) == 0 && inflight > 0 && firstErr == nil {
				cond.Wait()
			}
			if firstErr != nil || (len(queue) == 0 && inflight == 0) {
				qmu.Unlock()
				cond.Broadcast()
				return
			}
			rc := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			inflight++
			qmu.Unlock()

			children, err := s.process(rc)
			if err == nil {
				err = s.checkBudget(start)
			}

			qmu.Lock()
			inflight--
			if err != nil && firstErr == nil {
				firstErr = err
			}
			queue = append(queue, children...)
			cond.Broadcast()
			qmu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < s.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	return firstErr
}

// checkBudget enforces MaxRegions and Timeout.
func (s *solver) checkBudget(start time.Time) error {
	if s.budgetUsed() > s.opt.MaxRegions {
		return fmt.Errorf("core: exceeded MaxRegions=%d (k=%d)", s.opt.MaxRegions, s.prob.K)
	}
	if s.opt.Timeout > 0 && time.Since(start) > s.opt.Timeout {
		return fmt.Errorf("core: exceeded timeout %v (k=%d)", s.opt.Timeout, s.prob.K)
	}
	return nil
}

// process tests one region and either accepts it (recording its vertices
// in Vall) or splits it, returning the children to process.
func (s *solver) process(rc regionCtx) ([]regionCtx, error) {
	cache := rc.cache
	verts := rc.region.VertexPoints()

	// TAS*: Lemma 5 — discard consistent top-λ options, decrement k.
	if s.opt.Alg == TASStar && !s.opt.DisableLemma5 {
		cache = s.lemma5(verts, cache)
		n := len(cache.Active())
		s.addStats(func(st *Stats) {
			if n < st.ProcessedMin {
				st.ProcessedMin = n
			}
		})
	}

	results := make([]*topk.Result, len(verts))
	for i, v := range verts {
		results[i] = cache.Get(v)
	}
	_, misses := cache.Stats()
	s.addStats(func(st *Stats) {
		st.TopKQueries += len(verts)
		st.TopKMisses = misses // per-cache running total; coarse but indicative
	})

	va, vb := s.firstViolation(results)
	if va < 0 { // region passes the test
		s.accept(verts, results)
		return nil, nil
	}

	// TAS*: Lemma 7 — if all vertices share the same top-(k-1) set, the
	// impact halfspaces at the vertices already define the region's
	// TopRR solution; no further splitting is needed.
	if s.opt.Alg == TASStar && !s.opt.DisableLemma7 && s.sameTopKm1(results) {
		s.addStats(func(st *Stats) { st.Lemma7Accepts++ })
		s.accept(verts, results)
		return nil, nil
	}

	// Choose candidate splitting pairs and perform the first cut that
	// divides the region into two non-empty parts (Lemma 4 guarantees
	// one exists under general position).
	if children, ok := s.trySplit(rc.region, cache, s.splitCandidates(verts, results, va, vb)); ok {
		return children, nil
	}

	// Degenerate case: splits create vertices exactly on score-tie
	// hyperplanes, so the vertex-level top-k sets can disagree only
	// through ties while a genuine rank transition still crosses the
	// interior. Escalate to every pair (x, y) with x in the union of the
	// vertices' top-k sets and y any active option: if any such score
	// hyperplane strictly cuts the region, split on it. If none does,
	// every relevant score order is constant on the region's interior,
	// the interior is rank-invariant, and — because the k-th highest
	// score is a continuous function of w — the impact halfspaces at the
	// region's vertices are exact, so accepting is sound.
	if children, ok := s.trySplit(rc.region, cache, s.escalationPairs(results, cache)); ok {
		return children, nil
	}
	s.addStats(func(st *Stats) { st.DegenerateStops++ })
	s.accept(verts, results)
	return nil, nil
}

// trySplit attempts the candidate pairs in order and splits the region
// on the first hyperplane that strictly divides it. Candidates are
// screened with a cheap vertex-side count before paying for the full
// geometric split, so grazing hyperplanes (the common degenerate case)
// cost O(|V|) instead of a polytope construction.
func (s *solver) trySplit(region *geom.Polytope, cache *topk.Cache, pairs [][2]int) ([]regionCtx, bool) {
	for _, pair := range pairs {
		hs, ok := s.splitHyperplane(pair[0], pair[1])
		if !ok {
			continue
		}
		var nNeg, nPos int
		for _, v := range region.Verts {
			switch geom.Side(hs.Eval(v.Point)) {
			case -1:
				nNeg++
			case 1:
				nPos++
			}
			if nNeg > 0 && nPos > 0 {
				break
			}
		}
		if nNeg == 0 || nPos == 0 {
			continue
		}
		neg, pos := region.Split(hs)
		if neg.IsEmpty() || pos.IsEmpty() {
			continue
		}
		s.addStats(func(st *Stats) { st.Splits++ })
		return []regionCtx{
			{region: neg, cache: cache},
			{region: pos, cache: cache},
		}, true
	}
	return nil, false
}

// escalationPairs enumerates (union-of-top-k-sets x active) option pairs
// for the degenerate-split fallback, in a deterministic order so runs
// are reproducible.
func (s *solver) escalationPairs(results []*topk.Result, cache *topk.Cache) [][2]int {
	inUnion := make(map[int]bool)
	var union []int
	for _, r := range results {
		for _, idx := range r.Ordered {
			if !inUnion[idx] {
				inUnion[idx] = true
				union = append(union, idx)
			}
		}
	}
	sort.Ints(union)
	active := cache.Active()
	if active == nil {
		active = make([]int, s.prob.Scorer.Len())
		for i := range active {
			active[i] = i
		}
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, x := range union {
		for _, y := range active {
			if x == y {
				continue
			}
			key := [2]int{x, y}
			if y < x {
				key = [2]int{y, x}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// firstViolation returns indices of the first vertex pair violating the
// region test, or (-1, -1) if the region passes. For PAC the test is
// order-sensitive (identical ranked top-k result everywhere, strictly
// finer than kIPR); for TAS and TAS* it is the kIPR test of Lemma 3
// (same top-k set and same top-k-th option).
func (s *solver) firstViolation(results []*topk.Result) (int, int) {
	base := results[0]
	for i := 1; i < len(results); i++ {
		r := results[i]
		if s.opt.Alg == PAC {
			if r.OrderKey() != base.OrderKey() {
				return 0, i
			}
			continue
		}
		if !r.SameSet(base) || !r.SameKth(base) {
			return 0, i
		}
	}
	return -1, -1
}

// sameTopKm1 reports whether all vertices share the same top-(k-1) set
// (the hypothesis of Lemma 7). For k == 1 the condition is vacuous: the
// lemma degenerates to Lemma 6 and always applies.
func (s *solver) sameTopKm1(results []*topk.Result) bool {
	k := len(results[0].Ordered)
	if k == 1 {
		return true
	}
	base := prefixSetKey(results[0], k-1)
	for _, r := range results[1:] {
		if prefixSetKey(r, k-1) != base {
			return false
		}
	}
	return true
}

// prefixSetKey returns a canonical identity for the set of the first
// lambda entries of a top-k result.
func prefixSetKey(r *topk.Result, lambda int) string {
	ix := append([]int(nil), r.Ordered[:lambda]...)
	// Insertion sort: lambda is tiny.
	for i := 1; i < len(ix); i++ {
		for j := i; j > 0 && ix[j] < ix[j-1]; j-- {
			ix[j], ix[j-1] = ix[j-1], ix[j]
		}
	}
	var b []byte
	for _, x := range ix {
		b = append(b, []byte(fmt.Sprintf("%d,", x))...)
	}
	return string(b)
}

// lemma5 implements the consistent top-λ pruning of Section 5.1: if all
// vertices of the region share the same top-λ set for some λ < k, those
// λ options can be discarded and k reduced, without changing the TopRR
// output. It returns the (possibly new) top-k context.
func (s *solver) lemma5(verts []vec.Vector, cache *topk.Cache) *topk.Cache {
	k := cache.K()
	if k <= 1 {
		return cache
	}
	results := make([]*topk.Result, len(verts))
	for i, v := range verts {
		results[i] = cache.Get(v)
	}
	s.addStats(func(st *Stats) { st.TopKQueries += len(verts) })
	lambda := 0
	for l := k - 1; l >= 1; l-- {
		base := prefixSetKey(results[0], l)
		same := true
		for _, r := range results[1:] {
			if prefixSetKey(r, l) != base {
				same = false
				break
			}
		}
		if same {
			lambda = l
			break
		}
	}
	if lambda == 0 {
		return cache
	}
	// Φ = the common top-λ set (indices from the first vertex's result).
	phi := make(map[int]bool, lambda)
	for _, idx := range results[0].Ordered[:lambda] {
		phi[idx] = true
	}
	oldActive := cache.Active()
	newActive := make([]int, 0, len(oldActive)-lambda)
	if oldActive == nil {
		for i := 0; i < s.prob.Scorer.Len(); i++ {
			if !phi[i] {
				newActive = append(newActive, i)
			}
		}
	} else {
		for _, i := range oldActive {
			if !phi[i] {
				newActive = append(newActive, i)
			}
		}
	}
	s.addStats(func(st *Stats) { st.Lemma5Prunes += lambda })
	return s.newCache(k-lambda, newActive)
}

// accept records a confirmed region: its defining vertices (with their
// TopK scores) join Vall, and — when the UTK filter is collecting — the
// region's top-k set members are recorded.
func (s *solver) accept(verts []vec.Vector, results []*topk.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Regions++
	for i, v := range verts {
		key := v.Key(1e-10)
		if _, ok := s.vall[key]; !ok {
			s.vall[key] = ImpactVertex{W: v, KthScore: results[i].KthScore}
		}
	}
	if s.collectSets != nil {
		for _, r := range results {
			for _, idx := range r.Ordered {
				s.collectSets[idx] = true
			}
		}
	}
}

// splitCandidates produces the ordered list of option pairs to try as
// splitting hyperplanes, most preferred first, per Section 4.2.1 and the
// k-switch enhancement of Section 5.3.
func (s *solver) splitCandidates(verts []vec.Vector, results []*topk.Result, va, vb int) [][2]int {
	ra, rb := results[va], results[vb]
	if ra.SameSet(rb) {
		// Case 2: same top-k set, different top-k-th option (PAC can land
		// here with an order-only difference; pick the first inverted pair).
		if ra.Kth() != rb.Kth() {
			return [][2]int{{ra.Kth(), rb.Kth()}}
		}
		return s.orderInversionPairs(ra, rb)
	}
	// Case 1: different top-k sets.
	onlyA, onlyB := setDifferences(ra, rb)
	var cands [][2]int
	useKSwitch := s.opt.Alg == TASStar && !s.opt.DisableKSwitch
	if useKSwitch {
		if pair, ok := s.kSwitchPair(verts[va], verts[vb], ra, rb); ok {
			cands = append(cands, pair)
		} else if pair, ok := s.kSwitchPair(verts[vb], verts[va], rb, ra); ok {
			cands = append(cands, pair)
		}
	}
	// Generic Case-1 pairs (random order), used by PAC/TAS directly and
	// as fallback for TAS*.
	s.mu.Lock()
	perm := s.rng.Perm(len(onlyA) * len(onlyB))
	s.mu.Unlock()
	for _, t := range perm {
		cands = append(cands, [2]int{onlyA[t/len(onlyB)], onlyB[t%len(onlyB)]})
	}
	return cands
}

// setDifferences returns the options only in ra's set and only in rb's.
func setDifferences(ra, rb *topk.Result) (onlyA, onlyB []int) {
	inB := make(map[int]bool, len(rb.Ordered))
	for _, x := range rb.Ordered {
		inB[x] = true
	}
	inA := make(map[int]bool, len(ra.Ordered))
	for _, x := range ra.Ordered {
		inA[x] = true
		if !inB[x] {
			onlyA = append(onlyA, x)
		}
	}
	for _, x := range rb.Ordered {
		if !inA[x] {
			onlyB = append(onlyB, x)
		}
	}
	return onlyA, onlyB
}

// orderInversionPairs lists pairs whose relative order differs between
// the two results (used by PAC's order-sensitive refinement).
func (s *solver) orderInversionPairs(ra, rb *topk.Result) [][2]int {
	posB := make(map[int]int, len(rb.Ordered))
	for pos, x := range rb.Ordered {
		posB[x] = pos
	}
	var out [][2]int
	for i := 0; i < len(ra.Ordered); i++ {
		for j := i + 1; j < len(ra.Ordered); j++ {
			x, y := ra.Ordered[i], ra.Ordered[j]
			if posB[x] > posB[y] { // inverted relative order
				out = append(out, [2]int{x, y})
			}
		}
	}
	s.mu.Lock()
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	s.mu.Unlock()
	return out
}

// kSwitchPair implements Definition 4: pz1 is the top-k-th option at va;
// pz2 is the option of vb's top-k set that scores below pz1 at va but
// above it at vb, with the smallest score gap at va.
func (s *solver) kSwitchPair(va, vb vec.Vector, ra, rb *topk.Result) ([2]int, bool) {
	sc := s.prob.Scorer
	pz1 := ra.Kth()
	sa1 := sc.Score(va, pz1)
	sb1 := sc.Score(vb, pz1)
	best, bestGap := -1, 0.0
	for _, pz := range rb.Ordered {
		if pz == pz1 {
			continue
		}
		saz := sc.Score(va, pz)
		sbz := sc.Score(vb, pz)
		if saz < sa1 && sbz > sb1 {
			gap := sa1 - saz
			if best < 0 || gap < bestGap {
				best, bestGap = pz, gap
			}
		}
	}
	if best < 0 {
		return [2]int{}, false
	}
	return [2]int{pz1, best}, true
}

// splitHyperplane builds the preference-space hyperplane
// wHP(p_i, p_j) = {w : S_w(p_i) = S_w(p_j)} as a halfspace whose >= side
// is S_w(p_i) >= S_w(p_j). It reports false for (numerically) parallel
// score functions, which cannot cut any region.
func (s *solver) splitHyperplane(i, j int) (geom.Halfspace, bool) {
	sc := s.prob.Scorer
	p, q := sc.Point(i), sc.Point(j)
	m := sc.PrefDim()
	a := vec.New(m)
	for t := 0; t < m; t++ {
		a[t] = (p[t] - p[m]) - (q[t] - q[m])
	}
	if a.NormInf() < geom.Eps {
		return geom.Halfspace{}, false
	}
	return geom.NewHalfspace(a, -(p[m] - q[m])), true
}

// assembleOR applies Theorem 1: oR is the intersection of the option
// box with the impact halfspaces of every vertex in Vall.
//
// It always returns the exact H-representation (box constraints plus the
// deduplicated impact halfspaces). The explicit polytope is built by
// incremental clipping — halfspaces already satisfied by every current
// vertex are skipped, and deeper cuts are applied first so most later
// halfspaces hit that fast path — but with a small preference region the
// impact halfspaces are nearly parallel, and in high dimensions their
// intersection can have intractably many vertices; if the enumeration
// exceeds vertexBudget the polytope is abandoned (nil) while the
// H-representation stays exact.
func (s *solver) assembleOR(vertexBudget int) ([]geom.Halfspace, *geom.Polytope) {
	d := s.prob.Scorer.Dim()
	lo, hi := vec.New(d), vec.New(d)
	for j := range hi {
		hi[j] = 1
	}
	box := geom.NewBox(lo, hi)

	// Deduplicate impact halfspaces on a quantized grid and order them
	// deepest-cut first (higher threshold binds more of the box), with a
	// deterministic tie-break so runs are reproducible.
	type keyed struct {
		h   geom.Halfspace
		key string
	}
	seen := make(map[string]bool, len(s.vall))
	impactKeyed := make([]keyed, 0, len(s.vall))
	for _, iv := range s.vall {
		h := iv.ImpactHalfspace(s.prob.Scorer)
		key := append(h.A.Clone(), h.B).Key(1e-9)
		if seen[key] {
			continue
		}
		seen[key] = true
		impactKeyed = append(impactKeyed, keyed{h: h, key: key})
	}
	sort.Slice(impactKeyed, func(i, j int) bool {
		if impactKeyed[i].h.B != impactKeyed[j].h.B {
			return impactKeyed[i].h.B > impactKeyed[j].h.B
		}
		return impactKeyed[i].key < impactKeyed[j].key
	})
	impact := make([]geom.Halfspace, len(impactKeyed))
	for i, k := range impactKeyed {
		impact[i] = k.h
	}

	constraints := append(append([]geom.Halfspace(nil), box.HS...), impact...)

	or := box
	for _, h := range impact {
		next := or.Clip(h)
		if next != or {
			s.stats.ImpactClips++
		}
		or = next
		if or.NumVertices() > vertexBudget {
			return constraints, nil
		}
	}
	return constraints, or
}

// sortedVall returns Vall in a deterministic order.
func (s *solver) sortedVall() []ImpactVertex {
	keys := make([]string, 0, len(s.vall))
	for k := range s.vall {
		keys = append(keys, k)
	}
	// Insertion sort keeps this dependency-free; |Vall| is modest.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]ImpactVertex, len(keys))
	for i, k := range keys {
		out[i] = s.vall[k]
	}
	return out
}

// UTKFilter computes exactly the options that appear in the top-k result
// of at least one weight vector in wR — the fourth filtering alternative
// of Section 6.3 (after [30]). It partitions wR into kIPRs with plain
// TAS and unions the (constant) top-k set of each partition.
func UTKFilter(pts []vec.Vector, k int, wr *geom.Polytope) ([]int, error) {
	p := NewProblem(pts, k, wr)
	s := &solver{
		prob:        p,
		opt:         Options{Alg: TAS}.withDefaults(),
		rng:         rand.New(rand.NewSource(1)),
		vall:        make(map[string]ImpactVertex),
		collectSets: make(map[int]bool),
	}
	s.stats.InputOptions = p.Scorer.Len()
	rd := skyband.NewRDomVerts(p.WR.VertexPoints())
	active := skyband.RSkyband(s.points(), p.K, rd)
	s.stats.FilteredOptions = len(active)
	stack := []regionCtx{{region: p.WR, cache: s.newCache(p.K, active)}}
	for len(stack) > 0 {
		rc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.stats.Regions+s.stats.Splits > s.opt.MaxRegions {
			return nil, fmt.Errorf("core: UTK filter exceeded MaxRegions")
		}
		children, err := s.process(rc)
		if err != nil {
			return nil, err
		}
		stack = append(stack, children...)
	}
	out := make([]int, 0, len(s.collectSets))
	for idx := range s.collectSets {
		out = append(out, idx)
	}
	// Small insertion sort for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
