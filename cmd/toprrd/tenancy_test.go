package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// doJSON issues a method/url/body request and returns the response.
func doJSON(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// solveGen posts one cheap solve to a dataset route and returns the
// generation it ran against.
func solveGen(t *testing.T, base, route string) uint64 {
	t.Helper()
	resp := doJSON(t, http.MethodPost, base+route, queryJSON{K: 2, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s status = %d", route, resp.StatusCode)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	decodeJSON(t, resp, &out)
	return out.Generation
}

// listNames fetches GET /v1/datasets and returns the names in order.
func listNames(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Datasets []struct {
			Name string `json:"name"`
			Open bool   `json:"open"`
		} `json:"datasets"`
	}
	decodeJSON(t, resp, &out)
	names := make([]string, len(out.Datasets))
	for i, d := range out.Datasets {
		names[i] = d.Name
	}
	return names
}

// TestTenancyEndToEnd is the acceptance scenario: one daemon serves
// several named datasets with isolated mutations and per-dataset
// persistence directories that survive a restart, while the legacy
// /v1/* routes keep working against the default dataset.
func TestTenancyEndToEnd(t *testing.T) {
	root := t.TempDir()
	ts, reg := durableServer(t, root, testPts(40), toprr.PersistConfig{})

	// Create one tenant from explicit points and one from a synthetic
	// spec.
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{
		Name:   "alpha",
		Points: [][]float64{{0.9, 0.4, 0.5}, {0.7, 0.9, 0.2}, {0.3, 0.8, 0.7}, {0.2, 0.3, 0.9}, {0.6, 0.1, 0.4}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create alpha status = %d", resp.StatusCode)
	}
	var created struct {
		Name       string `json:"name"`
		Generation uint64 `json:"generation"`
		Options    int    `json:"options"`
		Dim        int    `json:"dim"`
	}
	decodeJSON(t, resp, &created)
	if created.Options != 5 || created.Dim != 3 || created.Generation != 1 {
		t.Fatalf("created alpha = %+v", created)
	}
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "beta", Dist: "IND", N: 30, D: 3, Seed: 11})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create beta status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	if names := listNames(t, ts.URL); len(names) != 3 || names[0] != "alpha" || names[1] != "beta" || names[2] != "default" {
		t.Fatalf("datasets = %v", names)
	}

	// Mutations land in exactly one tenant.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/alpha/ops", map[string]any{
		"ops": []opJSON{{Op: "insert", Point: []float64{0.95, 0.95, 0.95}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha ops status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if g := solveGen(t, ts.URL, "/v1/datasets/alpha/solve"); g != 2 {
		t.Fatalf("alpha solve generation = %d, want 2", g)
	}
	if g := solveGen(t, ts.URL, "/v1/datasets/beta/solve"); g != 1 {
		t.Fatalf("beta solve generation = %d, want 1 (mutation leaked across tenants)", g)
	}
	// The legacy route answers for the default dataset, untouched at
	// generation 1 with its own option count.
	if g := solveGen(t, ts.URL, "/v1/solve"); g != 1 {
		t.Fatalf("legacy solve generation = %d, want 1", g)
	}

	// Each tenant owns a persistence directory under the root.
	for _, name := range []string{"alpha", "beta", "default"} {
		if _, err := os.Stat(filepath.Join(root, name)); err != nil {
			t.Fatalf("missing per-dataset dir %s: %v", name, err)
		}
	}

	// The aggregate stats route breaks out every tenant.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Generation uint64             `json:"generation"` // legacy mirror of default
		Options    int                `json:"options"`
		Datasets   []datasetStatsJSON `json:"datasets"`
		Totals     statsTotals        `json:"totals"`
	}
	decodeJSON(t, resp, &stats)
	if stats.Totals.Datasets != 3 || stats.Totals.OpenDatasets != 3 {
		t.Fatalf("totals = %+v", stats.Totals)
	}
	if stats.Generation != 1 || stats.Options != 40 {
		t.Fatalf("legacy mirror = gen %d, %d options; want 1, 40", stats.Generation, stats.Options)
	}
	if len(stats.Datasets) != 3 || stats.Datasets[0].Name != "alpha" || stats.Datasets[0].Generation != 2 {
		t.Fatalf("per-dataset stats = %+v", stats.Datasets)
	}
	if want := 5 + 1 + 30 + 40; stats.Totals.Options != want {
		t.Fatalf("totals.Options = %d, want %d", stats.Totals.Options, want)
	}

	// The per-dataset stats route agrees.
	resp, err = http.Get(ts.URL + "/v1/datasets/alpha/stats")
	if err != nil {
		t.Fatal(err)
	}
	var alphaStats datasetStatsJSON
	decodeJSON(t, resp, &alphaStats)
	if alphaStats.Name != "alpha" || alphaStats.Generation != 2 || alphaStats.Options != 6 || !alphaStats.Persistent {
		t.Fatalf("alpha stats = %+v", alphaStats)
	}

	// Restart: a fresh registry over the same root serves all three
	// datasets at their pre-restart generations.
	ts.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	ts2, reg2 := durableServer(t, root, []vec.Vector{vec.Of(0.1, 0.1, 0.1)}, toprr.PersistConfig{})
	defer reg2.Close()
	defer ts2.Close()

	if names := listNames(t, ts2.URL); len(names) != 3 {
		t.Fatalf("datasets after restart = %v", names)
	}
	if g := solveGen(t, ts2.URL, "/v1/datasets/alpha/solve"); g != 2 {
		t.Fatalf("alpha generation after restart = %d, want 2", g)
	}
	if g := solveGen(t, ts2.URL, "/v1/datasets/beta/solve"); g != 1 {
		t.Fatalf("beta generation after restart = %d, want 1", g)
	}
	if g := solveGen(t, ts2.URL, "/v1/solve"); g != 1 {
		t.Fatalf("legacy solve after restart = %d, want 1", g)
	}

	// Deleting a tenant removes its directory and its routes.
	resp = doJSON(t, http.MethodDelete, ts2.URL+"/v1/datasets/beta", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete beta status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if _, err := os.Stat(filepath.Join(root, "beta")); !os.IsNotExist(err) {
		t.Fatalf("beta dir survives deletion: %v", err)
	}
	resp = doJSON(t, http.MethodPost, ts2.URL+"/v1/datasets/beta/solve", queryJSON{K: 1, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve on deleted dataset status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDaemonIdleEvictionReopens: a tenant evicted by the idle janitor
// pages back in transparently on its next request.
func TestDaemonIdleEvictionReopens(t *testing.T) {
	root := t.TempDir()
	reg, err := toprr.NewRegistry(
		toprr.WithRegistryRoot(root),
		toprr.WithIdleTTL(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Create("default", testPts(30)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(reg, time.Minute, 32<<20))
	defer ts.Close()

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/ops", map[string]any{
		"ops": []opJSON{{Op: "insert", Point: []float64{0.5, 0.5, 0.5}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wait until the janitor evicts the idle tenant.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reg.EvictIdle()
		if infos := reg.List(); len(infos) == 1 && !infos[0].Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("default never evicted: %+v", reg.List())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next request reopens from disk at the mutated generation.
	if g := solveGen(t, ts.URL, "/v1/solve"); g != 2 {
		t.Fatalf("post-eviction solve generation = %d, want 2", g)
	}
}

// TestHealthzAndRouteErrors covers the daemon-polish contract: a cheap
// liveness probe, JSON 404s for unknown routes, and JSON 405s for wrong
// methods.
func TestHealthzAndRouteErrors(t *testing.T) {
	ts, _ := testServer(t, 20, time.Minute)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var hz struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	decodeJSON(t, resp, &hz)
	if hz.Status != "ok" || hz.Datasets != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	checkErrBody := func(resp *http.Response, want int, what string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", what, resp.StatusCode, want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", what, ct)
		}
		var body errorJSON
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Errorf("%s lacks a JSON error body (%v)", what, err)
		}
	}

	// Unknown routes: top-level, under /v1, and an unknown dataset
	// subroute.
	for _, path := range []string{"/nope", "/v1/nope", "/v1/datasets/default/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		checkErrBody(resp, http.StatusNotFound, "GET "+path)
	}

	// Wrong methods get 405, not the mux's plain-text default.
	checkErrBody(doJSON(t, http.MethodPut, ts.URL+"/v1/solve", nil), http.StatusMethodNotAllowed, "PUT /v1/solve")
	checkErrBody(doJSON(t, http.MethodDelete, ts.URL+"/v1/stats", nil), http.StatusMethodNotAllowed, "DELETE /v1/stats")
	checkErrBody(doJSON(t, http.MethodPut, ts.URL+"/v1/datasets", nil), http.StatusMethodNotAllowed, "PUT /v1/datasets")
	checkErrBody(doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/default", nil), http.StatusMethodNotAllowed, "GET /v1/datasets/default")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/healthz", nil), http.StatusMethodNotAllowed, "POST /v1/healthz")

	// Dataset-route error mapping: bad names 400, unknown tenants 404,
	// duplicates 409, ambiguous create specs 400.
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/..%2Fescape/solve", nil), http.StatusBadRequest, "invalid name")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/ghost/solve", queryJSON{K: 1, Lo: []float64{0.2, 0.2}, Hi: []float64{0.3, 0.3}}), http.StatusNotFound, "unknown dataset")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "default", Dist: "IND", N: 10, D: 3}), http.StatusConflict, "duplicate create")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "x", Points: [][]float64{{0.5, 0.5, 0.5}}, Dist: "IND", N: 10, D: 3}), http.StatusBadRequest, "ambiguous create")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "x", Dist: "IND", N: maxCreateN + 1, D: 3}), http.StatusBadRequest, "oversized n")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "x", Points: [][]float64{{1.5, 0.5, 0.5}}}), http.StatusBadRequest, "point outside [0,1]")
	checkErrBody(doJSON(t, http.MethodPost, ts.URL+"/v1/datasets", createJSON{Name: "x", Points: [][]float64{{0.5, 0.5, 0.5}, {0.5, 0.5}}}), http.StatusBadRequest, "inconsistent dims")
}

// TestMaxBodyCap: the request-body cap rejects oversized POSTs as 400s
// instead of buffering them.
func TestMaxBodyCap(t *testing.T) {
	reg, _ := testRegistry(t, 20)
	ts := httptest.NewServer(newServer(reg, time.Minute, minBodyCap))
	defer ts.Close()

	big := make([]float64, 4096)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/solve", queryJSON{K: 1, Lo: big, Hi: big})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status = %d, want 400", resp.StatusCode)
	}
}

// TestValidateMaxBody: the -max-body flag refuses caps too small to
// carry any request.
func TestValidateMaxBody(t *testing.T) {
	for _, n := range []int64{-1, 0, 1, minBodyCap - 1} {
		if err := validateMaxBody(n); err == nil {
			t.Errorf("validateMaxBody(%d) = nil, want error", n)
		}
	}
	for _, n := range []int64{minBodyCap, 32 << 20} {
		if err := validateMaxBody(n); err != nil {
			t.Errorf("validateMaxBody(%d) = %v", n, err)
		}
	}
}
