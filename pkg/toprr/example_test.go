package toprr_test

import (
	"context"
	"fmt"

	"toprr/internal/vec"
	"toprr/pkg/toprr"
)

// A vendor ships one product and upgrades another while the engine
// keeps serving: the batch applies atomically and publishes exactly one
// new generation.
func ExampleEngine_Apply() {
	engine := toprr.NewEngine([]vec.Vector{
		vec.Of(0.2, 0.8),
		vec.Of(0.5, 0.5),
		vec.Of(0.8, 0.2),
	})
	gen, err := engine.Apply(context.Background(), []toprr.Op{
		toprr.Insert(vec.Of(0.6, 0.7)),    // ship a new product
		toprr.Update(0, vec.Of(0.3, 0.9)), // upgrade an existing one
	})
	if err != nil {
		fmt.Println("apply:", err)
		return
	}
	fmt.Printf("generation %d, %d options\n", gen, engine.Len())
	// Output: generation 2, 4 options
}

// Pinning a snapshot answers several queries against one consistent
// dataset generation, no matter how many mutations land in between.
func ExampleEngine_SolveAt() {
	ctx := context.Background()
	engine := toprr.NewEngine([]vec.Vector{
		vec.Of(0.2, 0.8),
		vec.Of(0.5, 0.5),
		vec.Of(0.8, 0.2),
	})

	snap := engine.Snapshot() // pin generation 1
	if _, err := engine.Apply(ctx, []toprr.Op{toprr.Insert(vec.Of(0.9, 0.9))}); err != nil {
		fmt.Println("apply:", err)
		return
	}

	// The pinned solve still answers for generation 1: the concurrent
	// insert is invisible to it.
	res, err := engine.SolveAt(ctx, snap, toprr.Query{
		K:  2,
		WR: toprr.PrefBox(vec.Of(0.3), vec.Of(0.7)),
	})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("pinned generation %d of %d, solved over %d options, oR has %d constraints\n",
		snap.Gen, engine.Generation(), res.Stats.InputOptions, len(res.ORConstraints))
	// Output: pinned generation 1 of 2, solved over 3 options, oR has 7 constraints
}
