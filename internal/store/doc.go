// Package store implements the versioned, mutable, durable dataset
// layer of the engine: a generation-numbered option store with
// copy-on-write snapshots, an applied-ops log, and an optional
// write-ahead log with snapshot/compaction.
//
// # Generations and snapshot isolation
//
// The paper's applications assume the option set changes — a vendor
// inserts a product, upgrades one, or withdraws one — while readers keep
// answering top-k and TopRR queries. The store reconciles the two sides
// with snapshot isolation:
//
//   - every mutation batch (Apply) produces a brand-new generation whose
//     points slice shares nothing mutable with earlier generations, and
//   - readers pin a Snapshot — an immutable per-generation
//     topk.Scorer — and keep computing against it no matter how many
//     generations writers publish underneath.
//
// The first published generation is 1; each successful Apply publishes
// exactly one successor. Pinning costs nothing beyond holding the
// Snapshot value: unchanged vectors are shared between generations
// (copy-on-write), and an unpinned generation is reclaimed by Go's
// garbage collector once the last solve holding it finishes. GCStats
// counts the generations still reachable — a count that grows without
// bound while mutations flow marks a leaked pin.
//
// # Deltas and cache invalidation
//
// Deletion uses swap-with-last semantics: the last option moves into the
// freed slot so indices stay dense. Each Apply reports the slots whose
// identity changed (the Delta), which the engine's generation-aware
// caches use for incremental — rather than wholesale — invalidation:
// only cache entries naming a dirty slot are dropped, plus whole-dataset
// entries (any op changes dataset membership). Entries over option
// subsets that avoid every dirty slot stay valid across the generation
// boundary, because their options are bit-identical in both generations.
//
// # Durability
//
// A store built by New is in-memory: a restart reverts to whatever the
// process loads next. A store built by Open is durable: every Apply
// batch is encoded as one checksummed record and appended to a
// write-ahead log before the generation publishes (fsynced first under
// SyncAlways), and Open recovers by loading the newest base snapshot
// file and replaying the WAL on top. A snapshot/compaction cycle
// rewrites the current generation as a fresh base snapshot once the WAL
// grows past configured byte/op thresholds and drops the replayed
// segments, keeping boot-time replay bounded. The precise recovery
// contract — what is durable when Apply returns, the record formats, and
// the crash windows — is specified in docs/PERSISTENCE.md.
package store
